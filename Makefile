# Standard-library-only Go module; these targets are the full local CI.

GO ?= go

.PHONY: check lint build vet staticcheck detlint test race bench bench-json bench-smoke bench-gate maybe-bench-gate campaign-smoke chaos-smoke flight-smoke serve-smoke chaos-serve-smoke clean

# check is the one-stop gate: lint (vet + detlint, + staticcheck when
# installed), build, full test suite, the race-detector pass over the
# concurrency-bearing packages, then a one-epoch scheduling-ablation
# smoke. Set BENCH_GATE=1 to also run the full performance gate
# (bench-gate, several minutes — see docs/PERFORMANCE.md).
check: lint build test race bench-smoke maybe-bench-gate

# lint bundles every static gate: go vet, the repo's own invariant
# linter (docs/STATIC_ANALYSIS.md), and staticcheck when present.
lint: vet detlint staticcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip quietly in
# environments that only have the Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# detlint enforces the repo's determinism and supervision invariants
# (unsorted map iteration into serialization sinks, wall-clock reads in
# deterministic packages, unseeded global randomness, unsupervised
# goroutines, undocumented metric names). Exit 1 on any finding — a
# hazard needs a reasoned //detlint:allow to land.
detlint:
	$(GO) run ./cmd/detlint ./...

test:
	$(GO) test ./...

# The obs registry, the fuzz stats, and the campaign engine are the
# shared-mutable-state hot spots; mutcheck rides along because the
# fuzzers call it from the same paths the race pass exercises, and the
# resilience layer (breaker, chaos injector) because its whole job is
# concurrent fault handling. detlint rides along so the invariant gate
# (including its repo-wide self-check test) is itself race-vetted.
race:
	$(GO) test -race ./internal/obs ./internal/fuzz ./internal/mutcheck \
		./internal/engine ./internal/resil ./internal/resil/chaos \
		./internal/sched ./internal/flight ./internal/detlint \
		./internal/serve ./internal/serve/heal

bench:
	$(GO) test -bench=. -benchmem .

# bench-json regenerates the committed performance records: the
# scheduling/cache ablation (BENCH_sched.json), the batched hot-loop
# bench (BENCH_hotloop.json), and the shared-coverage merge pair
# (BENCH_cover.json), all at the default seed and budget. README's
# Performance section and docs/PERFORMANCE.md quote these files;
# bench-gate compares fresh runs against them.
bench-json:
	$(GO) run ./cmd/experiments -run schedbench,hotloopbench,coverbench \
		-out BENCH_sched.json -hotloop-out BENCH_hotloop.json \
		-cover-out BENCH_cover.json

# bench-smoke is the check-gate variant: a tiny budget, throwaway
# output — proves the ablation path end to end without the full cost.
bench-smoke:
	$(GO) run ./cmd/experiments -run schedbench -schedbench-steps 400 \
		-out .bench-smoke.json
	@rm -f .bench-smoke.json

# bench-gate is the performance regression gate (docs/PERFORMANCE.md):
# the always-on allocation budget for the hot loop, then full-budget
# reruns of schedbench and hotloopbench compared against the committed
# BENCH_*.json — fails if steady-state ticks allocate, if edges/sec
# regresses more than 10%, or if any tick/edge/crash count drifts (a
# determinism break outranks any speedup). Opt into it from check with
# BENCH_GATE=1.
bench-gate:
	$(GO) test -run TestHotLoopAllocBudget -count=1 .
	$(GO) run ./cmd/experiments -run benchgate

maybe-bench-gate:
	@if [ "$(BENCH_GATE)" = "1" ]; then \
		$(MAKE) bench-gate; \
	else \
		echo "bench-gate skipped (set BENCH_GATE=1 to run the perf gate)"; \
	fi

# campaign-smoke proves the parallel engine end to end: a 4-worker
# checkpointed mini-campaign, then a resume from its snapshot with a
# doubled budget and witness reduction on the triaged bugs.
campaign-smoke:
	@rm -rf .smoke && mkdir .smoke
	$(GO) run ./cmd/mucfuzz -macro -steps 2000 -workers 4 \
		-checkpoint .smoke/campaign.json -triage-out .smoke/triage.json
	$(GO) run ./cmd/mucfuzz -macro -resume .smoke/campaign.json \
		-steps 4000 -workers 4 -reduce -triage-out .smoke/triage.json
	@rm -rf .smoke

# chaos-smoke proves fault tolerance end to end: a checkpointed campaign
# under the deterministic chaos harness (injected worker panics plus
# torn/failed checkpoint writes), then a resume — through the .prev
# fallback if the last generation was torn — with chaos still armed.
chaos-smoke:
	@rm -rf .chaos-smoke && mkdir .chaos-smoke
	$(GO) run ./cmd/mucfuzz -macro -steps 2000 -workers 4 \
		-checkpoint .chaos-smoke/campaign.json -checkpoint-every 1 -chaos 99
	$(GO) run ./cmd/mucfuzz -macro -resume .chaos-smoke/campaign.json \
		-steps 4000 -workers 4 -chaos 99
	@rm -rf .chaos-smoke

# flight-smoke proves the flight recorder end to end: a chaos campaign
# with the live console up, polled over HTTP (JSON snapshot + a taste of
# the SSE feed) while it runs, then the journal replayed through the
# post-campaign reporter — and the chaos retries must have tripped at
# least one watchdog anomaly into the journal.
flight-smoke:
	@rm -rf .flight-smoke && mkdir .flight-smoke
	$(GO) run ./cmd/mucfuzz -macro -streams 16 -steps 12000 -workers 4 \
		-chaos 99 -flight .flight-smoke/flight.jsonl \
		-debug-addr 127.0.0.1:6161 & \
	pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if curl -sf http://127.0.0.1:6161/debug/campaign \
			-o .flight-smoke/console.json; then up=1; break; fi; \
		sleep 0.2; done; \
	if [ "$$up" = 1 ]; then \
		curl -sf -m 2 http://127.0.0.1:6161/debug/campaign/stream \
			| head -c 4096 > .flight-smoke/sse.txt || true; \
	fi; \
	wait $$pid || { echo "flight-smoke: campaign failed"; exit 1; }; \
	[ "$$up" = 1 ] || { echo "flight-smoke: console never came up"; exit 1; }
	grep -q '"campaign"' .flight-smoke/console.json
	$(GO) run ./cmd/experiments -run flightreport \
		-flight-journal .flight-smoke/flight.jsonl
	grep -q '"kind":"anomaly"' .flight-smoke/flight.jsonl || \
		{ echo "flight-smoke: chaos raised no watchdog anomaly"; exit 1; }
	@rm -rf .flight-smoke

# serve-smoke proves fuzzing-as-a-service end to end: start the daemon,
# submit two tenants' jobs through the client CLI, poll status, SIGKILL
# the daemon mid-campaign, restart it over the same state dir, and
# require both jobs to finish with a triage report. Job ids are
# deterministic (j0001, j0002) because the ledger assigns sequential
# seqs.
serve-smoke:
	@rm -rf .serve-smoke && mkdir .serve-smoke
	$(GO) build -o .serve-smoke/mucfuzzd ./cmd/mucfuzzd
	$(GO) build -o .serve-smoke/mucfuzzctl ./cmd/mucfuzzctl
	@set -e; \
	ctl=".serve-smoke/mucfuzzctl -addr 127.0.0.1:8377"; \
	.serve-smoke/mucfuzzd -state .serve-smoke/state -addr 127.0.0.1:8377 \
		>.serve-smoke/d1.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if $$ctl health >/dev/null 2>&1; then up=1; break; fi; sleep 0.2; done; \
	[ "$$up" = 1 ] || { echo "serve-smoke: daemon never came up"; cat .serve-smoke/d1.log; exit 1; }; \
	$$ctl submit -tenant alpha -steps 6000 -streams 8; \
	$$ctl submit -tenant beta -steps 6000 -streams 8 -compiler clang; \
	started=0; for i in $$(seq 1 100); do \
		if $$ctl status j0001 | grep -q '"done": [1-9]'; then started=1; break; fi; \
		sleep 0.2; done; \
	[ "$$started" = 1 ] || { echo "serve-smoke: j0001 never progressed"; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	echo "serve-smoke: daemon SIGKILLed mid-campaign; restarting"; \
	.serve-smoke/mucfuzzd -state .serve-smoke/state -addr 127.0.0.1:8377 \
		>.serve-smoke/d2.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if $$ctl health >/dev/null 2>&1; then up=1; break; fi; sleep 0.2; done; \
	[ "$$up" = 1 ] || { echo "serve-smoke: daemon never came back"; cat .serve-smoke/d2.log; exit 1; }; \
	$$ctl watch j0001; \
	$$ctl watch j0002; \
	$$ctl results j0001 | grep -q '"' || { echo "serve-smoke: j0001 has no triage report"; exit 1; }; \
	$$ctl results j0002 | grep -q '"' || { echo "serve-smoke: j0002 has no triage report"; exit 1; }; \
	$$ctl list; \
	kill $$pid; wait $$pid 2>/dev/null || true
	@rm -rf .serve-smoke

# chaos-serve-smoke proves the self-healing service end to end: a
# baseline daemon completes two jobs clean; a second daemon runs the
# same two jobs plus a designated poison job with chaos armed (poison
# slice panics, checkpoint ENOSPC, torn ledger saves), is SIGKILLed
# mid-campaign, and restarted with chaos still armed. The poison job
# must land QUARANTINED while the survivors' flight journals and triage
# reports come out byte-identical to the baseline's.
chaos-serve-smoke:
	@rm -rf .chaos-serve-smoke && mkdir .chaos-serve-smoke
	$(GO) build -o .chaos-serve-smoke/mucfuzzd ./cmd/mucfuzzd
	$(GO) build -o .chaos-serve-smoke/mucfuzzctl ./cmd/mucfuzzctl
	@set -e; \
	ctl=".chaos-serve-smoke/mucfuzzctl -addr 127.0.0.1:8378"; \
	echo "chaos-serve-smoke: baseline daemon"; \
	.chaos-serve-smoke/mucfuzzd -state .chaos-serve-smoke/base -addr 127.0.0.1:8378 \
		>.chaos-serve-smoke/base.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if $$ctl health >/dev/null 2>&1; then up=1; break; fi; sleep 0.2; done; \
	[ "$$up" = 1 ] || { echo "chaos-serve-smoke: baseline never came up"; cat .chaos-serve-smoke/base.log; exit 1; }; \
	$$ctl submit -tenant alpha -steps 4000 -streams 8; \
	$$ctl submit -tenant beta -steps 4000 -streams 8 -compiler clang; \
	$$ctl watch j0001; \
	$$ctl watch j0002; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "chaos-serve-smoke: chaos daemon (poison job + ENOSPC + torn ledger)"; \
	chaosd=".chaos-serve-smoke/mucfuzzd -state .chaos-serve-smoke/chaos -addr 127.0.0.1:8378 \
		-chaos-poison-seq 3 -chaos-ckpt-enospc 5 -chaos-ledger-tear 3"; \
	$$chaosd >.chaos-serve-smoke/c1.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if $$ctl health >/dev/null 2>&1; then up=1; break; fi; sleep 0.2; done; \
	[ "$$up" = 1 ] || { echo "chaos-serve-smoke: chaos daemon never came up"; cat .chaos-serve-smoke/c1.log; exit 1; }; \
	$$ctl submit -tenant alpha -steps 4000 -streams 8; \
	$$ctl submit -tenant beta -steps 4000 -streams 8 -compiler clang; \
	$$ctl submit -tenant alpha -steps 2000 -streams 8; \
	started=0; for i in $$(seq 1 100); do \
		if $$ctl status j0001 | grep -q '"done": [1-9]'; then started=1; break; fi; \
		sleep 0.2; done; \
	[ "$$started" = 1 ] || { echo "chaos-serve-smoke: j0001 never progressed"; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	echo "chaos-serve-smoke: daemon SIGKILLed mid-campaign; restarting with chaos still armed"; \
	$$chaosd >.chaos-serve-smoke/c2.log 2>&1 & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
		if $$ctl health >/dev/null 2>&1; then up=1; break; fi; sleep 0.2; done; \
	[ "$$up" = 1 ] || { echo "chaos-serve-smoke: daemon never came back"; cat .chaos-serve-smoke/c2.log; exit 1; }; \
	$$ctl watch j0001; \
	$$ctl watch j0002; \
	quar=0; for i in $$(seq 1 100); do \
		if $$ctl status j0003 | grep -q '"state": "QUARANTINED"'; then quar=1; break; fi; \
		sleep 0.2; done; \
	[ "$$quar" = 1 ] || { echo "chaos-serve-smoke: poison job never quarantined"; $$ctl status j0003; exit 1; }; \
	$$ctl list | grep -q QUARANTINED || { echo "chaos-serve-smoke: QUARANTINED missing from list"; exit 1; }; \
	[ -s .chaos-serve-smoke/chaos/jobs/j0003/flight.jsonl ] || { echo "chaos-serve-smoke: poison job journal missing"; exit 1; }; \
	[ -s .chaos-serve-smoke/chaos/jobs/j0003/triage.json ] || { echo "chaos-serve-smoke: poison job triage missing"; exit 1; }; \
	for j in j0001 j0002; do \
		cmp .chaos-serve-smoke/base/jobs/$$j/flight.jsonl .chaos-serve-smoke/chaos/jobs/$$j/flight.jsonl \
			|| { echo "chaos-serve-smoke: $$j journal diverged from baseline"; exit 1; }; \
		cmp .chaos-serve-smoke/base/jobs/$$j/triage.json .chaos-serve-smoke/chaos/jobs/$$j/triage.json \
			|| { echo "chaos-serve-smoke: $$j triage diverged from baseline"; exit 1; }; \
	done; \
	echo "chaos-serve-smoke: survivors byte-identical, poison quarantined"; \
	kill $$pid; wait $$pid 2>/dev/null || true
	@rm -rf .chaos-serve-smoke

clean:
	$(GO) clean ./...
