# Standard-library-only Go module; these targets are the full local CI.

GO ?= go

.PHONY: check build vet staticcheck test race bench clean

# check is the one-stop gate: vet (+ staticcheck when installed), build,
# full test suite, then the race-detector pass over the
# concurrency-bearing packages.
check: vet staticcheck build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip quietly in
# environments that only have the Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The obs registry and the fuzz stats are the two shared-mutable-state
# hot spots; mutcheck rides along because the fuzzers call it from the
# same paths the race pass exercises.
race:
	$(GO) test -race ./internal/obs ./internal/fuzz ./internal/mutcheck

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
