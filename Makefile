# Standard-library-only Go module; these targets are the full local CI.

GO ?= go

.PHONY: check build vet test race bench clean

# check is the one-stop gate: vet, build, full test suite, then the
# race-detector pass over the concurrency-bearing packages.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The obs registry and the fuzz stats are the two shared-mutable-state
# hot spots; they get a dedicated -race pass.
race:
	$(GO) test -race ./internal/obs ./internal/fuzz

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
