package mutcheck

import (
	"fmt"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
)

// Mutant-validator check identifiers. Error checks mirror the front end
// (parse + sema) one-to-one; Warning checks are analyses the front end
// does not enforce.
const (
	CheckParseError      = "parse-error"
	CheckSemaError       = "sema-error" // fallback for unclassified sema messages
	CheckDivByZero       = "div-by-zero"
	CheckDuplicateLabel  = "duplicate-label"
	CheckDuplicateCase   = "duplicate-case"
	CheckConstIndexOOB   = "const-index-oob"
	CheckUnreachableCode = "unreachable-code"
	CheckUnusedVariable  = "unused-variable"
)

// Reject is the fuzzing hot-path entry point: it reports whether the
// compilersim front end would reject src, and under which check. It runs
// exactly cast.Parse + cast.Check — by construction it never rejects a
// program the simulated compiler accepts.
func Reject(src string) (check string, reject bool) {
	tu, err := cast.Parse(src)
	if err != nil {
		return CheckParseError, true
	}
	if err := cast.Check(tu); err != nil {
		if errs, ok := err.(cast.SemaErrors); ok && len(errs) > 0 {
			return classifySema(errs[0].Msg), true
		}
		return CheckSemaError, true
	}
	return "", false
}

// Analyze statically validates one candidate mutant: Error diagnostics
// reproduce the front end's parse/sema rejections (goal #6 evidence);
// Warning diagnostics come from the advisory passes and never imply
// rejection.
func Analyze(src string) []Diagnostic {
	tu, err := cast.Parse(src)
	if err != nil {
		return []Diagnostic{{
			Check: CheckParseError, Severity: Error, Goal: 6, Step: -1, Offset: -1,
			Message: err.Error(),
			Fix:     "the rewrite produced syntactically invalid text",
		}}
	}
	if err := cast.Check(tu); err != nil {
		var out []Diagnostic
		if errs, ok := err.(cast.SemaErrors); ok {
			for _, se := range errs {
				out = append(out, Diagnostic{
					Check: classifySema(se.Msg), Severity: Error, Goal: 6,
					Step: -1, Offset: se.Offset, Message: se.Msg,
				})
			}
			return out
		}
		return []Diagnostic{{Check: CheckSemaError, Severity: Error, Goal: 6,
			Step: -1, Offset: -1, Message: err.Error()}}
	}
	return AnalyzeTU(tu)
}

// AnalyzeTU runs the advisory passes over an already parsed-and-checked
// translation unit (the passes read sema annotations: resolved
// references and expression types).
func AnalyzeTU(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	out = append(out, checkDivByZero(tu)...)
	out = append(out, checkDuplicateLabels(tu)...)
	out = append(out, checkDuplicateCases(tu)...)
	out = append(out, checkConstIndexOOB(tu)...)
	out = append(out, checkUnreachable(tu)...)
	out = append(out, checkUnusedLocals(tu)...)
	return out
}

// classifySema maps a sema message to a stable check identifier so
// static_rejects_total{check} has bounded, meaningful label values.
func classifySema(msg string) string {
	switch {
	case strings.Contains(msg, "undeclared identifier"):
		return "undeclared-identifier"
	case strings.Contains(msg, "undeclared label"):
		return "undeclared-label"
	case strings.Contains(msg, "assigning to"), strings.Contains(msg, "initializing"),
		strings.Contains(msg, "incompatible type"), strings.Contains(msg, "invalid operands"),
		strings.Contains(msg, "invalid argument type"):
		return "type-mismatch"
	case strings.Contains(msg, "not assignable"), strings.Contains(msg, "const-qualified"),
		strings.Contains(msg, "address of an rvalue"), strings.Contains(msg, "cannot increment"):
		return "bad-lvalue"
	case strings.Contains(msg, "arguments"), strings.Contains(msg, "not a function"),
		strings.Contains(msg, "void expression"):
		return "call-error"
	case strings.Contains(msg, "member"):
		return "member-error"
	case strings.Contains(msg, "subscript"):
		return "subscript-error"
	case strings.Contains(msg, "'break'"), strings.Contains(msg, "'continue'"),
		strings.Contains(msg, "'case'"), strings.Contains(msg, "'default'"):
		return "misplaced-statement"
	case strings.Contains(msg, "redefinition"):
		return "redefinition"
	default:
		return CheckSemaError
	}
}

// constInt evaluates an integer constant expression, following the
// same shapes sema resolves for enum values: literals, parens, casts,
// unary and binary arithmetic, and enum-constant references.
func constInt(e cast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntegerLiteral:
		return x.Value, true
	case *cast.CharLiteral:
		return int64(x.Value), true
	case *cast.ParenExpr:
		return constInt(x.X)
	case *cast.CastExpr:
		return constInt(x.X)
	case *cast.DeclRefExpr:
		if ec, ok := x.Ref.(*cast.EnumConstantDecl); ok {
			return ec.Num, true
		}
	case *cast.UnaryOperator:
		v, ok := constInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case cast.UnPlus:
			return v, true
		case cast.UnMinus:
			return -v, true
		case cast.UnNot:
			return ^v, true
		case cast.UnLNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *cast.BinaryOperator:
		l, lok := constInt(x.LHS)
		r, rok := constInt(x.RHS)
		if !lok || !rok {
			return 0, false
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch x.Op {
		case cast.BinAdd:
			return l + r, true
		case cast.BinSub:
			return l - r, true
		case cast.BinMul:
			return l * r, true
		case cast.BinDiv:
			if r != 0 {
				return l / r, true
			}
		case cast.BinRem:
			if r != 0 {
				return l % r, true
			}
		case cast.BinAnd:
			return l & r, true
		case cast.BinOr:
			return l | r, true
		case cast.BinXor:
			return l ^ r, true
		case cast.BinShl:
			if r >= 0 && r < 64 {
				return l << uint(r), true
			}
		case cast.BinShr:
			if r >= 0 && r < 64 {
				return l >> uint(r), true
			}
		case cast.BinLT:
			return b2i(l < r), true
		case cast.BinGT:
			return b2i(l > r), true
		case cast.BinLE:
			return b2i(l <= r), true
		case cast.BinGE:
			return b2i(l >= r), true
		case cast.BinEQ:
			return b2i(l == r), true
		case cast.BinNE:
			return b2i(l != r), true
		}
	}
	return 0, false
}

func warn(check string, n cast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Check: check, Severity: Warning, Goal: 0, Step: -1,
		Offset: n.Range().Begin, Message: fmt.Sprintf(format, args...),
	}
}

func checkDivByZero(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	cast.Walk(tu, func(n cast.Node) bool {
		b, ok := n.(*cast.BinaryOperator)
		if !ok {
			return true
		}
		switch b.Op {
		case cast.BinDiv, cast.BinRem, cast.BinDivAssign, cast.BinRemAssign:
			if v, cok := constInt(b.RHS); cok && v == 0 {
				out = append(out, warn(CheckDivByZero, b,
					"right operand of %q is constant zero", b.Op.String()))
			}
		}
		return true
	})
	return out
}

func checkDuplicateLabels(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	for _, d := range tu.Decls {
		fd, ok := d.(*cast.FunctionDecl)
		if !ok || fd.Body == nil {
			continue
		}
		seen := map[string]bool{}
		cast.Walk(fd.Body, func(n cast.Node) bool {
			if l, lok := n.(*cast.LabelStmt); lok {
				if seen[l.Name] {
					out = append(out, warn(CheckDuplicateLabel, l,
						"duplicate label %q in function %q", l.Name, fd.Name))
				}
				seen[l.Name] = true
			}
			return true
		})
	}
	return out
}

func checkDuplicateCases(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	cast.Walk(tu, func(n cast.Node) bool {
		sw, ok := n.(*cast.SwitchStmt)
		if !ok {
			return true
		}
		seen := map[int64]bool{}
		cast.Walk(sw.Body, func(m cast.Node) bool {
			if inner, iok := m.(*cast.SwitchStmt); iok && inner != sw {
				return false // nested switch owns its own labels
			}
			if cs, cok := m.(*cast.CaseStmt); cok {
				if v, vok := constInt(cs.Value); vok {
					if seen[v] {
						out = append(out, warn(CheckDuplicateCase, cs,
							"duplicate case value %d", v))
					}
					seen[v] = true
				}
			}
			return true
		})
		return true
	})
	return out
}

func checkConstIndexOOB(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	cast.Walk(tu, func(n cast.Node) bool {
		sub, ok := n.(*cast.ArraySubscriptExpr)
		if !ok {
			return true
		}
		bt := sub.Base.Type()
		if bt.T == nil {
			return true
		}
		arr, aok := bt.Canonical().T.(*cast.ArrayType)
		if !aok || arr.Size <= 0 {
			return true
		}
		if idx, iok := constInt(sub.Index); iok && (idx < 0 || idx >= arr.Size) {
			out = append(out, warn(CheckConstIndexOOB, sub,
				"constant index %d is outside the array bound %d", idx, arr.Size))
		}
		return true
	})
	return out
}

func checkUnreachable(tu *cast.TranslationUnit) []Diagnostic {
	var out []Diagnostic
	cast.Walk(tu, func(n cast.Node) bool {
		cs, ok := n.(*cast.CompoundStmt)
		if !ok {
			return true
		}
		for i, st := range cs.Stmts {
			if !isJump(st) || i+1 >= len(cs.Stmts) {
				continue
			}
			next := cs.Stmts[i+1]
			if isReentry(next) {
				continue
			}
			out = append(out, warn(CheckUnreachableCode, next,
				"code after the %s cannot execute", st.Kind()))
			break // one report per block is enough
		}
		return true
	})
	return out
}

func isJump(s cast.Stmt) bool {
	switch s.(type) {
	case *cast.ReturnStmt, *cast.BreakStmt, *cast.ContinueStmt, *cast.GotoStmt:
		return true
	}
	return false
}

// isReentry reports whether control can re-enter at the statement even
// though its predecessor jumped away (labels and switch arms).
func isReentry(s cast.Stmt) bool {
	switch s.(type) {
	case *cast.LabelStmt, *cast.CaseStmt, *cast.DefaultStmt:
		return true
	}
	return false
}

func checkUnusedLocals(tu *cast.TranslationUnit) []Diagnostic {
	used := map[cast.Decl]bool{}
	cast.Walk(tu, func(n cast.Node) bool {
		if dr, ok := n.(*cast.DeclRefExpr); ok && dr.Ref != nil {
			used[dr.Ref] = true
		}
		return true
	})
	var out []Diagnostic
	for _, d := range tu.Decls {
		fd, ok := d.(*cast.FunctionDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cast.Walk(fd.Body, func(n cast.Node) bool {
			ds, ok := n.(*cast.DeclStmt)
			if !ok {
				return true
			}
			for _, ld := range ds.Decls {
				if v, vok := ld.(*cast.VarDecl); vok && !used[cast.Decl(v)] {
					out = append(out, warn(CheckUnusedVariable, v,
						"variable %q is declared but never used", v.Name))
				}
			}
			return true
		})
	}
	return out
}
