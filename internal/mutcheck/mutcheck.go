// Package mutcheck is the shift-left validation subsystem: static
// analysis over the two artifact classes MetaMut otherwise validates
// dynamically. The DSL linter (lint.go) inspects a mutdsl.Program
// without executing it and reports defects that would surface as
// goal #3/#5/#6 violations only after a compile-and-run QA round; the
// mutant validator (mutant.go) runs parse + sema + advisory passes over
// a candidate mutant so μCFuzz can reject compile-error mutants without
// spending a compilersim tick. Both passes emit the same structured
// Diagnostic, which the core refinement loop feeds back to the
// (simulated) LLM verbatim.
//
// Soundness contract: an Error-severity mutant diagnostic is emitted
// exactly when compilersim's front end (cast.Parse + cast.Check) would
// reject the program, so static rejection never discards a mutant the
// compiler under test accepts. The richer analyses that the front end
// does not enforce (constant division by zero, duplicate labels/cases,
// constant array-index overflow, unreachable code, unused locals) are
// Warning severity: advisory diagnostics for feedback and lint reports,
// never grounds for rejection.
package mutcheck

import "fmt"

// Severity ranks a diagnostic: Error predicts a hard validation failure
// (a goal violation or a compile-error mutant); Warning is advisory.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one static-analysis finding, from either pass.
type Diagnostic struct {
	// Check is the stable check identifier (e.g. "missing-empty-guard",
	// "parse-error"); it doubles as the obs label value.
	Check    string
	Severity Severity
	// Goal is the Section-3.3 validation goal this finding shifts left
	// (0 when the finding maps to no goal).
	Goal int
	// Step is the offending rewrite-step index for linter findings, -1
	// for program-level findings and all mutant findings.
	Step int
	// Offset is the byte offset into the analyzed source for mutant
	// findings, -1 for linter findings.
	Offset int
	// Message states the defect; Fix suggests the repair. Both are
	// written to be fed to the model as refinement feedback.
	Message string
	Fix     string
}

// String renders the diagnostic in a compiler-style one-line format.
func (d Diagnostic) String() string {
	loc := ""
	switch {
	case d.Step >= 0:
		loc = fmt.Sprintf(" step %d:", d.Step)
	case d.Offset >= 0:
		loc = fmt.Sprintf(" offset %d:", d.Offset)
	}
	s := fmt.Sprintf("%s:%s %s [%s]", d.Severity, loc, d.Message, d.Check)
	if d.Fix != "" {
		s += " — " + d.Fix
	}
	return s
}

// HasErrors reports whether any diagnostic is Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// FirstError returns the first Error-severity diagnostic. Linter output
// is ordered by goal, so for lint results this is the simplest unmet
// goal — the same staging Validate uses.
func FirstError(diags []Diagnostic) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Severity == Error {
			return d, true
		}
	}
	return Diagnostic{}, false
}
