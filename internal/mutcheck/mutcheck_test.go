package mutcheck

import (
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func prog(kind cast.NodeKind, steps ...mutdsl.Step) *mutdsl.Program {
	return &mutdsl.Program{
		Name:        "TestMutator",
		Description: "test mutator",
		TargetKind:  kind,
		Steps:       steps,
	}
}

func hasCheck(diags []Diagnostic, check string) bool {
	for _, d := range diags {
		if d.Check == check {
			return true
		}
	}
	return false
}

// Every probe's baseline must parse — a broken template would silently
// disable the payload check for its kind.
func TestProbesParse(t *testing.T) {
	for kind, pr := range probes {
		if _, err := cast.Parse(pr.prefix + pr.node + pr.suffix); err != nil {
			t.Errorf("%s probe does not parse: %v", kind, err)
		}
		if _, err := cast.Parse(pr.prefix + pr.alt + pr.suffix); err != nil {
			t.Errorf("%s probe with alt slot does not parse: %v", kind, err)
		}
	}
}

// The known-good rewrite for every kind must lint clean: the refinement
// loop relies on SafeStepsFor being a fixed point of the linter.
func TestSafeStepsLintClean(t *testing.T) {
	for k := cast.KindTranslationUnit; k <= cast.KindCommaExpr; k++ {
		p := prog(k, mutdsl.SafeStepsFor(k)...)
		if d, bad := FirstError(Lint(p)); bad {
			t.Errorf("SafeStepsFor(%s) lints dirty: %s", k, d)
		}
	}
}

func TestLintFlagShapes(t *testing.T) {
	base := func() *mutdsl.Program {
		return prog(cast.KindIfStmt, mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "if (1) { ", Post: " }"})
	}

	p := base()
	p.CrashBug = true
	d, ok := FirstError(Lint(p))
	if !ok || d.Check != CheckMissingEmptyGuard || d.Goal != 3 {
		t.Errorf("CrashBug: got %+v, want %s goal 3", d, CheckMissingEmptyGuard)
	}

	p = base()
	p.NoRewriteBug = true
	d, ok = FirstError(Lint(p))
	if !ok || d.Check != CheckNoRewrite || d.Goal != 5 {
		t.Errorf("NoRewriteBug: got %+v, want %s goal 5", d, CheckNoRewrite)
	}

	p = base()
	p.BadMutantBug = true
	d, ok = FirstError(Lint(p))
	if !ok || d.Check != CheckUncheckedRewrite || d.Goal != 6 {
		t.Errorf("BadMutantBug: got %+v, want %s goal 6", d, CheckUncheckedRewrite)
	}

	// Goal staging: with several defects the simplest goal is reported
	// first, matching Validate's order.
	p = base()
	p.CrashBug, p.BadMutantBug = true, true
	d, _ = FirstError(Lint(p))
	if d.Goal != 3 {
		t.Errorf("multi-defect program should report goal 3 first, got %d", d.Goal)
	}

	// A syntactically broken mutator cannot be analyzed at all.
	p = base()
	p.SyntaxErr = "missing semicolon"
	p.CrashBug = true
	if diags := Lint(p); len(diags) != 0 {
		t.Errorf("unparseable mutator should lint empty, got %v", diags)
	}
}

func TestLintBadPayloads(t *testing.T) {
	cases := []struct {
		name string
		p    *mutdsl.Program
	}{
		{"stmt text in expr slot", prog(cast.KindIntegerLiteral,
			mutdsl.Step{Op: mutdsl.OpReplaceWithText, Text: "return 0;"})},
		{"expr glue after a statement", prog(cast.KindReturnStmt,
			mutdsl.Step{Op: mutdsl.OpInsertAfter, Text: " + 0"})},
		{"unbalanced wrap", prog(cast.KindBinaryOperator,
			mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "((", Post: ")"})},
		{"delete declarator leaves junk", prog(cast.KindParmVarDecl,
			mutdsl.Step{Op: mutdsl.OpDeleteNode})},
	}
	for _, tc := range cases {
		d, ok := FirstError(Lint(tc.p))
		if !ok || d.Check != CheckBadPayload {
			t.Errorf("%s: got %+v, want %s", tc.name, d, CheckBadPayload)
		}
	}

	good := []*mutdsl.Program{
		prog(cast.KindIntegerLiteral, mutdsl.Step{Op: mutdsl.OpReplaceWithText, Text: "42"}),
		prog(cast.KindIfStmt, mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "if (1) { ", Post: " }"}),
		prog(cast.KindReturnStmt, mutdsl.Step{Op: mutdsl.OpInsertBefore, Text: ";"}),
		prog(cast.KindBinaryOperator, mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)"}),
		prog(cast.KindCompoundStmt, mutdsl.Step{Op: mutdsl.OpDuplicateAfter}),
		prog(cast.KindVarDecl, mutdsl.Step{Op: mutdsl.OpInsertAfter, Text: " /* added */"}),
	}
	for _, p := range good {
		if d, bad := FirstError(Lint(p)); bad {
			t.Errorf("%s on %s should lint clean, got %s", p.Steps[0].Op, p.TargetKind, d)
		}
	}
}

func TestLintNeverApplies(t *testing.T) {
	p := prog(cast.KindTranslationUnit, mutdsl.Step{Op: mutdsl.OpSwapWithSibling})
	d, ok := FirstError(Lint(p))
	if !ok || d.Check != CheckNeverApplies || d.Goal != 5 {
		t.Errorf("swap on translation unit: got %+v, want %s goal 5", d, CheckNeverApplies)
	}
}

func TestLintAdvisories(t *testing.T) {
	// Double swap cancels itself.
	p := prog(cast.KindExprStmt,
		mutdsl.Step{Op: mutdsl.OpSwapWithSibling},
		mutdsl.Step{Op: mutdsl.OpSwapWithSibling})
	diags := Lint(p)
	if !hasCheck(diags, CheckSelfCancelling) {
		t.Errorf("double swap: want %s, got %v", CheckSelfCancelling, diags)
	}
	if HasErrors(diags) {
		t.Errorf("double swap is advisory only, got errors in %v", diags)
	}

	// A destructive rewrite after another destructive rewrite is dropped
	// by the rewriter's overlap check.
	p = prog(cast.KindIfStmt,
		mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "if (1) { ", Post: " }"},
		mutdsl.Step{Op: mutdsl.OpDeleteNode})
	if !hasCheck(Lint(p), CheckDeadStep) {
		t.Errorf("wrap-then-delete: want %s", CheckDeadStep)
	}

	// Side-effect filtering is meaningless on statements.
	p = prog(cast.KindIfStmt, mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "if (1) { ", Post: " }"})
	p.RequireSideEffectFree = true
	if !hasCheck(Lint(p), CheckIneffectiveCheck) {
		t.Errorf("RequireSideEffectFree on IfStmt: want %s", CheckIneffectiveCheck)
	}
}

func TestAnalyzeErrorsMirrorFrontEnd(t *testing.T) {
	bad := []struct {
		src   string
		check string
	}{
		{"int main(void) { return 0 }", CheckParseError},
		{"int main(void) { return x; }", "undeclared-identifier"},
		{"struct S { int f; } s; int main(void) { int a = 1; a = s; return a; }", "type-mismatch"},
		{"int f(int x) { return x; } int main(void) { return f(1, 2); }", "call-error"},
	}
	for _, tc := range bad {
		diags := Analyze(tc.src)
		if !HasErrors(diags) {
			t.Errorf("%q: expected errors", tc.src)
			continue
		}
		if d, _ := FirstError(diags); d.Check != tc.check {
			t.Errorf("%q: got check %s, want %s", tc.src, d.Check, tc.check)
		}
		check, rejected := Reject(tc.src)
		if !rejected || check != tc.check {
			t.Errorf("Reject(%q) = (%s, %v), want (%s, true)", tc.src, check, rejected, tc.check)
		}
	}
}

func TestAdvisoryPasses(t *testing.T) {
	cases := []struct {
		name, src, check string
	}{
		{"div by zero", "int main(void) { int a = 4; a = a / 0; return a; }", CheckDivByZero},
		{"rem by folded zero", "int main(void) { int a = 4; a = a % (2 - 2); return a; }", CheckDivByZero},
		{"duplicate label", "int main(void) { l: ; l: ; return 0; }", CheckDuplicateLabel},
		{"duplicate case", "int main(void) { int a = 1; switch (a) { case 2: break; case 1 + 1: break; } return a; }", CheckDuplicateCase},
		{"const index oob", "int main(void) { int a[4]; a[0] = 1; return a[4]; }", CheckConstIndexOOB},
		{"unreachable code", "int main(void) { int a = 1; return a; a = 2; }", CheckUnreachableCode},
		{"unused variable", "int main(void) { int a = 1; int b = 2; return a; }", CheckUnusedVariable},
	}
	for _, tc := range cases {
		diags := Analyze(tc.src)
		if HasErrors(diags) {
			t.Errorf("%s: advisory input must not produce errors: %v", tc.name, diags)
		}
		if !hasCheck(diags, tc.check) {
			t.Errorf("%s: want %s in %v", tc.name, tc.check, diags)
		}
	}

	clean := "int main(void) { int a[4]; int i; for (i = 0; i < 4; i = i + 1) { a[i] = i; } return a[3]; }"
	if diags := Analyze(clean); len(diags) != 0 {
		t.Errorf("clean program should analyze empty, got %v", diags)
	}
}

// Acceptance: the validator reports zero false positives over the whole
// seed corpus — every corpus program analyzes without errors, matching
// the compiler's front end accepting all of them.
func TestSeedCorpusAnalyzesClean(t *testing.T) {
	corpus := seeds.Generate(120, 1)
	for i, src := range corpus {
		if check, rejected := Reject(src); rejected {
			t.Errorf("seed %d falsely rejected (%s)", i, check)
		}
		if diags := Analyze(src); HasErrors(diags) {
			t.Errorf("seed %d: unexpected errors %v", i, diags)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: CheckBadPayload, Severity: Error, Goal: 6, Step: 1,
		Offset: -1, Message: "bad text", Fix: "use valid text"}
	s := d.String()
	for _, want := range []string{"error", "step 1", "bad text", CheckBadPayload, "use valid text"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestLintConstantMatchPredicates: a step guard with no active clause
// always applies (constant-true), and one whose forbidden substring is
// contained in its required substring can never apply (constant-false).
// Both are advisory — they never block a mutator.
func TestLintConstantMatchPredicates(t *testing.T) {
	// Constant-true: the guard is decoration.
	p := prog(cast.KindIntegerLiteral,
		mutdsl.Step{Op: mutdsl.OpReplaceWithText, Text: "7", When: &mutdsl.Pred{}})
	diags := Lint(p)
	if !hasCheck(diags, CheckConstantMatch) {
		t.Errorf("vacuous guard: want %s, got %v", CheckConstantMatch, diags)
	}
	if HasErrors(diags) {
		t.Errorf("constant-match is advisory only, got errors in %v", diags)
	}

	// Constant-false: requires "x + y" but forbids "+".
	p = prog(cast.KindBinaryOperator,
		mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)",
			When: &mutdsl.Pred{Contains: "x + y", NotContains: "+"}})
	diags = Lint(p)
	if !hasCheck(diags, CheckConstantMatch) {
		t.Errorf("contradictory guard: want %s, got %v", CheckConstantMatch, diags)
	}
	if HasErrors(diags) {
		t.Errorf("constant-match is advisory only, got errors in %v", diags)
	}

	// A meaningful guard draws no finding; nor does an unguarded step.
	p = prog(cast.KindBinaryOperator,
		mutdsl.Step{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)",
			When: &mutdsl.Pred{Contains: "+", NotContains: "/"}},
		mutdsl.Step{Op: mutdsl.OpInsertAfter, Text: " + 0"})
	if diags := Lint(p); hasCheck(diags, CheckConstantMatch) {
		t.Errorf("meaningful guard flagged: %v", diags)
	}
}
