package mutcheck

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// FuzzMutantValidator drives the soundness contract: Analyze/Reject must
// never panic, and a static rejection must imply the compilersim front
// end also rejects — the validator may never discard a mutant the
// compiler under test accepts.
func FuzzMutantValidator(f *testing.F) {
	for _, s := range seeds.Generate(20, 1) {
		f.Add(s)
	}
	f.Add("")
	f.Add("int main(void) { return 0 }")
	f.Add("int x = ;")
	f.Add("int main(void) { int a[2]; return a[5] / 0; }")
	f.Add("struct S { int f; } s; int main(void) { return s; }")

	comp := compilersim.New("gcc", 12)
	opts := compilersim.DefaultOptions()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip()
		}
		diags := Analyze(src) // must not panic on any input
		_, rejected := Reject(src)
		if rejected != HasErrors(diags) {
			t.Fatalf("Reject=%v disagrees with Analyze errors=%v", rejected, HasErrors(diags))
		}
		res := comp.Compile(src, opts)
		if rejected && res.OK {
			t.Fatalf("validator rejected a program the compiler accepts:\n%s", src)
		}
	})
}
