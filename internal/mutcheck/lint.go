package mutcheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
)

// Linter check identifiers.
const (
	CheckMissingEmptyGuard = "missing-empty-guard" // goal #3
	CheckNoRewrite         = "no-rewrite"          // goal #5
	CheckNeverApplies      = "never-applies"       // goal #5
	CheckUncheckedRewrite  = "unchecked-rewrite"   // goal #6
	CheckBadPayload        = "bad-payload"         // goal #6
	CheckSelfCancelling    = "self-cancelling"     // advisory
	CheckDeadStep          = "dead-step"           // advisory
	CheckIneffectiveCheck  = "ineffective-check"   // advisory
	CheckConstantMatch     = "constant-match"      // advisory
)

// Lint statically analyzes a mutator implementation and returns its
// findings ordered by validation goal (simplest first, the staging
// Validate uses), Errors before Warnings within a goal. A program whose
// source does not parse (SyntaxErr) cannot be analyzed and lints empty —
// goal #1 stays with the compiler.
func Lint(p *mutdsl.Program) []Diagnostic {
	if p == nil || p.SyntaxErr != "" {
		return nil
	}
	var out []Diagnostic

	// Goal #3: the CrashBug shape is a mutate() that indexes the
	// collected instance vector without an emptiness check.
	if p.CrashBug {
		out = append(out, Diagnostic{
			Check: CheckMissingEmptyGuard, Severity: Error, Goal: 3, Step: -1, Offset: -1,
			Message: fmt.Sprintf("mutate() selects an instance without checking that any %s was collected; on inputs with no instance it dereferences an empty vector", p.TargetKind),
			Fix:     "guard the selection with an emptiness check and return false when no instance exists",
		})
	}

	// Goal #5: returns true without recording any rewrite.
	if p.NoRewriteBug {
		out = append(out, Diagnostic{
			Check: CheckNoRewrite, Severity: Error, Goal: 5, Step: -1, Offset: -1,
			Message: "mutate() returns true on every path without recording a rewrite; every output equals its input",
			Fix:     "record the rewrite against the selected node before returning true",
		})
	}

	// Goal #5: op/kind combinations that can never apply. A sibling of
	// the translation unit cannot exist, so sibling-relative rewrites
	// are dead on arrival.
	for i, s := range p.Steps {
		if (s.Op == mutdsl.OpSwapWithSibling || s.Op == mutdsl.OpReplaceWithCopy) &&
			p.TargetKind == cast.KindTranslationUnit {
			out = append(out, Diagnostic{
				Check: CheckNeverApplies, Severity: Error, Goal: 5, Step: i, Offset: -1,
				Message: fmt.Sprintf("step %d (%s) needs a second non-overlapping %s, but a translation unit has no sibling; the rewrite can never apply", i, s.Op, p.TargetKind),
				Fix:     "target a node kind that can occur more than once, or use a self-contained rewrite",
			})
		}
	}

	// Goal #6: the BadMutantBug shape is a rewrite whose source range
	// extends one token past the node (and that skips the applicability
	// checks), eating adjacent text.
	if p.BadMutantBug {
		out = append(out, Diagnostic{
			Check: CheckUncheckedRewrite, Severity: Error, Goal: 6, Step: -1, Offset: -1,
			Message: "the rewrite's source range extends past the node's end and consumes the adjacent token, so mutants fail to compile",
			Fix:     "clamp the replacement range to the node's own extent and keep the applicability checks before rewriting",
		})
	}

	// Goal #6: payloads that cannot parse in the target node's
	// grammatical context.
	out = append(out, lintPayloads(p)...)

	// Advisory findings.
	out = append(out, lintStepInteractions(p)...)
	out = append(out, lintMatchPredicates(p)...)
	if p.RequireSideEffectFree && !isExprKind(p.TargetKind) {
		out = append(out, Diagnostic{
			Check: CheckIneffectiveCheck, Severity: Warning, Goal: 0, Step: -1, Offset: -1,
			Message: fmt.Sprintf("the side-effect-freedom check only applies to expressions; it never filters a %s instance", p.TargetKind),
			Fix:     "drop the check or target an expression kind",
		})
	}

	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := out[i].Goal, out[j].Goal
		if gi == 0 {
			gi = 99 // goalless advisories sort last
		}
		if gj == 0 {
			gj = 99
		}
		if gi != gj {
			return gi < gj
		}
		return out[i].Severity > out[j].Severity // Error before Warning
	})
	return out
}

// Violates reports whether the linter finds an Error for the given goal —
// the static counterpart of Framework.ViolatesGoal, used to classify
// whether a repair actually fixed the reported defect.
func Violates(p *mutdsl.Program, goal int) bool {
	for _, d := range Lint(p) {
		if d.Severity == Error && d.Goal == goal {
			return true
		}
	}
	return false
}

// lintMatchPredicates flags per-step match predicates that are
// constant: a guard with no active clause passes every node (the
// condition is decoration), and a guard whose NotContains clause is a
// substring of its Contains clause can never hold — any text
// containing the one necessarily contains the other — so the step is
// dead on every input.
func lintMatchPredicates(p *mutdsl.Program) []Diagnostic {
	var out []Diagnostic
	for i, s := range p.Steps {
		w := s.When
		if w == nil {
			continue
		}
		switch {
		case w.Contains == "" && w.NotContains == "":
			out = append(out, Diagnostic{
				Check: CheckConstantMatch, Severity: Warning, Goal: 0, Step: i, Offset: -1,
				Message: fmt.Sprintf("step %d's match predicate has no active clause; it matches every instance (constant-true)", i),
				Fix:     "drop the guard or give it a Contains/NotContains clause",
			})
		case w.Contains != "" && w.NotContains != "" &&
			strings.Contains(w.Contains, w.NotContains):
			out = append(out, Diagnostic{
				Check: CheckConstantMatch, Severity: Warning, Goal: 5, Step: i, Offset: -1,
				Message: fmt.Sprintf("step %d's match predicate requires %q but forbids its substring %q; it can never hold (constant-false), so the step never applies", i, w.Contains, w.NotContains),
				Fix:     "make the clauses independent, or delete the dead step",
			})
		}
	}
	return out
}

// lintStepInteractions flags step pairs whose combination is provably
// pointless: a double swap restores the original program (and the
// rewriter drops the second pair of overlapping edits anyway), and any
// destructive rewrite after an earlier destructive rewrite of the same
// node is silently discarded by the overlap check.
func lintStepInteractions(p *mutdsl.Program) []Diagnostic {
	var out []Diagnostic
	destructiveSeen := -1
	for i, s := range p.Steps {
		if i > 0 && s.Op == mutdsl.OpSwapWithSibling &&
			p.Steps[i-1].Op == mutdsl.OpSwapWithSibling {
			out = append(out, Diagnostic{
				Check: CheckSelfCancelling, Severity: Warning, Goal: 5, Step: i, Offset: -1,
				Message: fmt.Sprintf("steps %d and %d swap the same pair twice, which restores the original program", i-1, i),
				Fix:     "drop one of the swaps",
			})
		} else if destructiveSeen >= 0 && isDestructive(s, p.TargetKind) {
			out = append(out, Diagnostic{
				Check: CheckDeadStep, Severity: Warning, Goal: 0, Step: i, Offset: -1,
				Message: fmt.Sprintf("step %d rewrites a range step %d already rewrote; the rewriter drops the overlapping edit, so step %d has no effect", i, destructiveSeen, i),
				Fix:     "compose the two rewrites into one step, or make the later step an insertion",
			})
		}
		if destructiveSeen < 0 && isDestructive(s, p.TargetKind) {
			destructiveSeen = i
		}
	}
	return out
}

// isDestructive reports whether the step replaces the node's own range
// (as opposed to inserting next to it). DuplicateAfter is an insertion
// for statements but a range replacement for everything else, mirroring
// Executable.applyStep.
func isDestructive(s mutdsl.Step, k cast.NodeKind) bool {
	switch s.Op {
	case mutdsl.OpReplaceWithText, mutdsl.OpWrapText, mutdsl.OpDeleteNode,
		mutdsl.OpSwapWithSibling, mutdsl.OpReplaceWithCopy:
		return true
	case mutdsl.OpDuplicateAfter:
		return !isStmtKind(k)
	}
	return false
}

func isStmtKind(k cast.NodeKind) bool {
	return k >= cast.KindCompoundStmt && k <= cast.KindNullStmt
}

func isExprKind(k cast.NodeKind) bool {
	return k >= cast.KindIntegerLiteral && k <= cast.KindCommaExpr
}
