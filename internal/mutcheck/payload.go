package mutcheck

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
)

// A probe is a minimal well-formed program with a designated slot that
// holds one node of the target kind, with the same source extent the
// parser assigns such a node (statements include their semicolon,
// declarators do not, a field declarator is just its name, ...). The
// linter textually applies each rewrite step to the slot and re-parses
// the whole probe with the repo's own front end — the snippet-harness
// trick of `clang -fsyntax-only` — so a payload that cannot parse in the
// node's grammatical context is caught without ever running the mutator.
type probe struct {
	prefix string
	node   string // the slot: source text of one target-kind node
	alt    string // text of a second, non-overlapping node of the same kind
	suffix string
}

func exprProbe(node, alt string) probe {
	return probe{
		prefix: "int p0;\nint pa[4];\nstruct PS { int f; } ps;\nint pf(int x) { return x; }\nint main(void) { p0 = ",
		suffix: "; return p0; }",
		node:   node, alt: alt,
	}
}

const (
	stmtPrefix = "int q0;\nint qa[4];\nint qf(int x) { return x; }\nint main(void) { q0 = qf(qa[0]); "
	stmtSuffix = " qlbl: q0 = q0 + 1; return q0; }"
)

func stmtProbe(node, alt string) probe {
	return probe{prefix: stmtPrefix, suffix: stmtSuffix, node: node, alt: alt}
}

// stmtProbeIn nests the slot inside an enclosing construct (a switch for
// case labels, a loop for break/continue).
func stmtProbeIn(open, node, alt, close string) probe {
	return probe{prefix: stmtPrefix + open, suffix: close + stmtSuffix, node: node, alt: alt}
}

// probes covers every kind whose slot extent and context we can state
// exactly. Kinds without a probe (brace initializers, compound
// literals) skip the payload check rather than risk a false positive.
var probes = map[cast.NodeKind]probe{
	cast.KindIntegerLiteral:     exprProbe("1", "2"),
	cast.KindFloatingLiteral:    exprProbe("1.5", "2.5"),
	cast.KindCharLiteral:        exprProbe("'c'", "'d'"),
	cast.KindStringLiteral:      exprProbe("\"s\"", "\"t\""),
	cast.KindDeclRefExpr:        exprProbe("p0", "ps"),
	cast.KindBinaryOperator:     exprProbe("p0 + 1", "p0 - 2"),
	cast.KindUnaryOperator:      exprProbe("-p0", "!p0"),
	cast.KindCallExpr:           exprProbe("pf(1)", "pf(2)"),
	cast.KindArraySubscriptExpr: exprProbe("pa[1]", "pa[2]"),
	cast.KindMemberExpr:         exprProbe("ps.f", "ps.f"),
	cast.KindCastExpr:           exprProbe("(int)p0", "(int)1"),
	cast.KindConditionalExpr:    exprProbe("p0 ? 1 : 2", "p0 ? 3 : 4"),
	cast.KindParenExpr:          exprProbe("(p0)", "(1)"),
	cast.KindSizeofExpr:         exprProbe("sizeof(int)", "sizeof(p0)"),
	cast.KindCommaExpr: {
		prefix: "int main(void) { int c0 = 1; ",
		node:   "c0 = 1, c0 = 2", alt: "c0 = 2, c0 = 3",
		suffix: "; return c0; }",
	},

	cast.KindCompoundStmt: stmtProbe("{ q0 = 1; }", "{ q0 = 2; }"),
	cast.KindDeclStmt:     stmtProbe("int qd = 1;", "int qe = 2;"),
	cast.KindExprStmt:     stmtProbe("q0 = 1;", "q0 = 2;"),
	cast.KindIfStmt:       stmtProbe("if (q0) { q0 = 1; }", "if (q0) { q0 = 2; }"),
	cast.KindWhileStmt:    stmtProbe("while (0) { q0 = 1; }", "while (0) { q0 = 2; }"),
	cast.KindDoStmt:       stmtProbe("do { q0 = 1; } while (0);", "do { q0 = 2; } while (0);"),
	cast.KindForStmt: stmtProbe("for (q0 = 0; q0 < 2; q0 = q0 + 1) { q0 = 3; }",
		"for (q0 = 1; q0 < 3; q0 = q0 + 1) { q0 = 4; }"),
	cast.KindSwitchStmt: stmtProbe("switch (q0) { case 1: q0 = 2; break; default: q0 = 3; }",
		"switch (q0) { case 2: break; default: q0 = 4; }"),
	cast.KindCaseStmt:     stmtProbeIn("switch (q0) { ", "case 1: q0 = 2;", "case 2: q0 = 3;", " default: break; }"),
	cast.KindDefaultStmt:  stmtProbeIn("switch (q0) { case 1: break; ", "default: q0 = 3;", "default: q0 = 4;", " }"),
	cast.KindBreakStmt:    stmtProbeIn("while (q0) { ", "break;", "break;", " }"),
	cast.KindContinueStmt: stmtProbeIn("while (q0) { ", "continue;", "continue;", " }"),
	cast.KindReturnStmt:   stmtProbe("return q0;", "return 0;"),
	cast.KindGotoStmt:     stmtProbe("goto qlbl;", "goto qlbl;"),
	cast.KindLabelStmt:    stmtProbe("qlbl2: q0 = 2;", "qlbl3: q0 = 3;"),
	cast.KindNullStmt:     stmtProbe(";", ";"),

	cast.KindFunctionDecl: {
		node: "int pfn(int x) { return x; }", alt: "int pfn2(int y) { return y; }",
		suffix: "\nint main(void) { return 0; }",
	},
	cast.KindVarDecl: {
		node: "int pvar = 1", alt: "int pvar2 = 2",
		suffix: ";\nint main(void) { return 0; }",
	},
	cast.KindParmVarDecl: {
		prefix: "void pfn(", node: "int pp", alt: "int pq",
		suffix: ") { }\nint main(void) { return 0; }",
	},
	cast.KindFieldDecl: {
		// A field declarator's extent is just its name.
		prefix: "struct PF { int ", node: "pf1", alt: "pf2",
		suffix: "; };\nint main(void) { return 0; }",
	},
	cast.KindRecordDecl: {
		node: "struct PR { int prf; }", alt: "struct PR2 { int prg; }",
		suffix: ";\nint main(void) { return 0; }",
	},
	cast.KindEnumDecl: {
		node: "enum PE { PE_A }", alt: "enum PE2 { PE_B }",
		suffix: ";\nint main(void) { return 0; }",
	},
	cast.KindEnumConstantDecl: {
		prefix: "enum PE { ", node: "PE_A", alt: "PE_B",
		suffix: " };\nint main(void) { return 0; }",
	},
	cast.KindTypedefDecl: {
		node: "typedef int PT", alt: "typedef int PU",
		suffix: ";\nint main(void) { return 0; }",
	},
	cast.KindTranslationUnit: {
		node: "int main(void) { return 0; }", alt: "int main(void) { return 0; }",
	},
}

// slotState tracks the textual effect of the steps applied so far:
// insertions accumulate around the slot; at most one destructive rewrite
// lands on it (the rewriter drops later overlapping edits).
type slotState struct {
	before, text, after string
	rewritten           bool
}

// applyToSlot mirrors Executable.applyStep on the probe's slot.
func applyToSlot(st *slotState, orig string, s mutdsl.Step, pr probe, k cast.NodeKind) {
	rewrite := func(t string) {
		if !st.rewritten {
			st.text, st.rewritten = t, true
		}
	}
	switch s.Op {
	case mutdsl.OpReplaceWithText:
		rewrite(s.Text)
	case mutdsl.OpWrapText:
		rewrite(s.Pre + orig + s.Post)
	case mutdsl.OpDeleteNode:
		if isStmtKind(k) {
			rewrite(";")
		} else {
			rewrite("0")
		}
	case mutdsl.OpInsertBefore:
		st.before += s.Text
	case mutdsl.OpInsertAfter:
		st.after += s.Text
	case mutdsl.OpDuplicateAfter:
		if isStmtKind(k) {
			st.after += " " + orig
		} else {
			rewrite("(" + orig + " + " + orig + ")")
		}
	case mutdsl.OpSwapWithSibling, mutdsl.OpReplaceWithCopy:
		rewrite(pr.alt)
	}
}

// lintPayloads checks each step's text against the target kind's
// grammatical context and reports the first step that turns the probe
// unparseable.
func lintPayloads(p *mutdsl.Program) []Diagnostic {
	pr, ok := probes[p.TargetKind]
	if !ok {
		return nil
	}
	// Guard against template drift: a probe that does not parse on its
	// own proves nothing about the payload.
	if _, err := cast.Parse(pr.prefix + pr.node + pr.suffix); err != nil {
		return nil
	}
	st := &slotState{text: pr.node}
	for i, s := range p.Steps {
		applyToSlot(st, pr.node, s, pr, p.TargetKind)
		candidate := pr.prefix + st.before + st.text + st.after + pr.suffix
		if _, err := cast.Parse(candidate); err != nil {
			return []Diagnostic{{
				Check: CheckBadPayload, Severity: Error, Goal: 6, Step: i, Offset: -1,
				Message: fmt.Sprintf("step %d (%s) emits text that cannot parse where a %s sits: %v", i, s.Op, p.TargetKind, err),
				Fix:     fmt.Sprintf("emit text that stays grammatically valid in a %s slot", p.TargetKind),
			}}
		}
	}
	return nil
}
