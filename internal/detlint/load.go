package detlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package: the unit an Analyzer
// runs over. Dependencies (stdlib and in-module alike) are imported
// from compiler export data, so only the target's own files carry
// syntax trees.
type Package struct {
	Path    string   // import path
	Name    string   // package name
	Dir     string   // directory holding the sources
	GoFiles []string // absolute paths of the parsed files

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolving the module from dir (any directory inside it). It shells
// out to `go list -export` so dependency packages are imported from
// the build cache's export data instead of being re-parsed — the same
// strategy the go vet driver uses, built here on the standard library
// alone because the module is dependency-free by policy.
//
// Only non-test Go files are loaded: detlint's invariants (stream-RNG
// randomness, logical-time determinism, supervised goroutines) bind
// the shipping campaign code, while tests legitimately sleep, read
// wall clocks, and perturb the global RNG to prove independence.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data and vendor remappings for every package in the
	// dependency closure.
	exports := make(map[string]string, len(listed))
	remap := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			remap[from] = to
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := remap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("detlint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("detlint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goList runs `go list -e -export -deps -json` over the patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,ImportMap,Export,DepOnly,Standard,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("detlint: go list: %v\n%s", err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("detlint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// checkPackage parses and type-checks one target package.
func checkPackage(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	paths := make([]string, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("detlint: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("detlint: type-checking %s:\n  %s",
			lp.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("detlint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:    lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		GoFiles: paths,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("detlint: no go.mod above %s", dir)
		}
		d = parent
	}
}
