package detlint

import "fmt"

// Names returns the names of every analyzer the suite ships, in the
// order the multichecker runs them. This is also the namespace
// //detlint:allow directives are validated against.
func Names() []string {
	return []string{"maporder", "wallclock", "globalrand", "supervisedgo", "metricname"}
}

// Suite returns the full analyzer set. documented is the metrics
// catalogue for metricname (see NewMetricname); nil skips the
// catalogue membership check.
func Suite(documented map[string]bool) []*Analyzer {
	return []*Analyzer{
		Maporder,
		Wallclock,
		Globalrand,
		Supervisedgo,
		NewMetricname(documented),
	}
}

// Select filters the suite down to the named analyzers.
func Select(all []*Analyzer, names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("detlint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
