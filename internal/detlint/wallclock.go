package detlint

import (
	"go/ast"
)

// Wallclock flags wall-clock reads inside the deterministic packages.
// The campaign's clock is logical — compile ticks, epochs, stream
// order — and a time.Now or time.Sleep smuggled into engine, flight,
// sched, fuzz, reduce, or mutators makes results depend on host speed
// and scheduling, which the byte-identical determinism suites cannot
// tolerate. Telemetry that genuinely measures wall time (epoch latency
// histograms, the status line's EMA clock) carries a
// //detlint:allow wallclock directive naming why, so the allowlist
// lives next to the code it excuses.
//
// Both calls and stored references (e.g. a Now func field defaulting
// to time.Now) are flagged: a captured clock escapes into
// deterministic code just as surely as a direct call.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "flags wall-clock use (time.Now/Since/Sleep/After/Tick/timers) " +
		"in deterministic packages",
	Run: runWallclock,
}

// deterministicPkgs are the packages whose outputs must be pure
// functions of seed and budget.
var deterministicPkgs = map[string]bool{
	"engine": true, "flight": true, "sched": true,
	"fuzz": true, "reduce": true, "mutators": true,
}

// wallclockFuncs are the time package entry points that read or wait
// on the wall clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallclock(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path, deterministicPkgs) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			name, ok := isPkgLevelUse(obj, "time")
			if !ok || !wallclockFuncs[name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic package %s; use the logical "+
					"clock (ticks/epochs) or add a //detlint:allow wallclock "+
					"directive naming the telemetry it feeds",
				name, pkgSegment(pass.Pkg.Path))
			return true
		})
	}
}
