package detlint_test

import (
	"path/filepath"
	"testing"

	"github.com/icsnju/metamut-go/internal/detlint"
)

// loadSuite loads the given patterns from the module root with the
// real metrics catalogue, the way cmd/detlint does.
func loadSuite(t *testing.T, patterns ...string) ([]*detlint.Package, []*detlint.Analyzer) {
	t.Helper()
	root, err := detlint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	documented, err := detlint.ParseMetricsDoc(filepath.Join(root, "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := detlint.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs, detlint.Suite(documented)
}

// TestSelfCheck: the multichecker runs clean over its own packages —
// the linter holds itself to the invariants it enforces. (The dirty
// fixtures under testdata are invisible to the wildcard, exactly as
// they are to every build command.)
func TestSelfCheck(t *testing.T) {
	pkgs, suite := loadSuite(t, "./internal/detlint/...", "./cmd/detlint")
	if diags := detlint.Run(pkgs, suite); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("detlint is not self-clean: %s", d)
		}
	}
}

// TestRepoInvariantsClean is the regression gate: the whole module
// must lint clean, so `go test ./...` — and therefore `make check` —
// fails the moment a determinism or supervision hazard lands without
// a reasoned //detlint:allow. TestGateCatchesDeterminismHazard proves
// the gate actually bites.
func TestRepoInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short")
	}
	pkgs, suite := loadSuite(t, "./...")
	if diags := detlint.Run(pkgs, suite); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("invariant violation: %s", d)
		}
	}
}

// TestGateCatchesDeterminismHazard demonstrates the gate on a known-
// dirty package: the wallclock fixture is exactly the regression —
// wall-clock reads in a deterministic package — and the suite must
// flag it.
func TestGateCatchesDeterminismHazard(t *testing.T) {
	root, err := detlint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := detlint.Load(root,
		"./internal/detlint/testdata/src/wallclock/engine")
	if err != nil {
		t.Fatal(err)
	}
	diags := detlint.Run(pkgs, detlint.Suite(nil))
	found := 0
	for _, d := range diags {
		if d.Analyzer == "wallclock" {
			found++
		}
	}
	if found == 0 {
		t.Fatal("gate failed to flag wall-clock reads in a deterministic package")
	}
}
