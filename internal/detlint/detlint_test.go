package detlint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOnly builds the minimal Package directive handling needs: no
// type information, just syntax and positions.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fixture", Name: f.Name.Name, Fset: fset,
		Files: []*ast.File{f}}
}

func knownAll() map[string]bool {
	m := map[string]bool{}
	for _, n := range Names() {
		m[n] = true
	}
	return m
}

// TestEmptyAllowReasonRejected pins the suppression contract: an
// allow without a reason is itself a diagnostic and never suppresses.
func TestEmptyAllowReasonRejected(t *testing.T) {
	pkg := parseOnly(t, `package p

func f() int {
	//detlint:allow wallclock
	return 1
}
`)
	dirs, bad := collectDirectives(pkg, knownAll())
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "has no reason") {
		t.Fatalf("want one no-reason diagnostic, got %v", bad)
	}
	if bad[0].Analyzer != "detlint" {
		t.Fatalf("directive diagnostics belong to pseudo-analyzer detlint, got %q", bad[0].Analyzer)
	}
	// The reasonless directive must not suppress a finding on the line
	// it would otherwise cover (line 5, the return).
	d := Diagnostic{Analyzer: "wallclock", Message: "time.Now"}
	d.Pos.Filename = "fixture.go"
	d.Pos.Line = 5
	if dirs.suppresses(d) {
		t.Fatal("reasonless allow suppressed a finding")
	}
}

// TestAllowSuppressesWithReason is the matching positive case, for
// both trailing and standalone directive placement.
func TestAllowSuppressesWithReason(t *testing.T) {
	pkg := parseOnly(t, `package p

func f() int {
	//detlint:allow wallclock latency telemetry only
	a := 1
	b := 2 //detlint:allow globalrand simulated jitter
	return a + b
}
`)
	dirs, bad := collectDirectives(pkg, knownAll())
	if len(bad) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", bad)
	}
	for _, tc := range []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"wallclock", 5, true},   // standalone directive covers next code line
		{"globalrand", 6, true},  // trailing directive covers its own line
		{"wallclock", 6, false},  // wrong analyzer
		{"globalrand", 5, false}, // wrong line
	} {
		d := Diagnostic{Analyzer: tc.analyzer}
		d.Pos.Filename = "fixture.go"
		d.Pos.Line = tc.line
		if got := dirs.suppresses(d); got != tc.want {
			t.Errorf("suppresses(%s@%d) = %v, want %v", tc.analyzer, tc.line, got, tc.want)
		}
	}
}

// TestUnknownAnalyzerDirective pins the namespace check.
func TestUnknownAnalyzerDirective(t *testing.T) {
	pkg := parseOnly(t, `package p

var x = 1 //detlint:allow nosuch reason text
`)
	_, bad := collectDirectives(pkg, knownAll())
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "unknown analyzer nosuch") {
		t.Fatalf("want unknown-analyzer diagnostic, got %v", bad)
	}
}

// TestReasonStopsAtEmbeddedComment: trailing commentary after "//" is
// not part of the reason, so a directive whose only "reason" is a
// comment is reasonless.
func TestReasonStopsAtEmbeddedComment(t *testing.T) {
	pkg := parseOnly(t, `package p

var x = 1 //detlint:allow wallclock // not actually a reason
`)
	_, bad := collectDirectives(pkg, knownAll())
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "has no reason") {
		t.Fatalf("want no-reason diagnostic, got %v", bad)
	}
}
