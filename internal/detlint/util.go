package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsPkgPath is the metrics registry package metricname watches for.
const obsPkgPath = "github.com/icsnju/metamut-go/internal/obs"

// pkgSegment returns the last import-path segment, the name detlint's
// package scoping matches on. Fixture packages live under
// testdata/src/<analyzer>/<segment>, so a fixture directory named
// "engine" is scoped exactly like the real internal/engine.
func pkgSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeObject resolves a call expression to the types.Object of its
// callee (function, method, or builtin), or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgLevelUse reports whether obj is a package-level object declared
// in the package with the given import path, returning its name.
func isPkgLevelUse(obj types.Object, pkgPath string) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// methodRecvNamed returns the defining named type of a method object,
// unwrapping a pointer receiver, or nil for non-methods.
func methodRecvNamed(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// namedIs reports whether named is the type pkgPath.name.
func namedIs(named *types.Named, pkgPath, name string) bool {
	return named != nil && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// pathHasSegment reports whether any of the names appears as a
// complete segment of the import path.
func pathHasSegment(path string, names map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		if names[seg] {
			return true
		}
	}
	return false
}
