package detlint

import (
	"go/ast"
	"strings"
)

// allowPrefix is the suppression directive. Grammar:
//
//	//detlint:allow <analyzer> <reason...>
//
// A trailing directive suppresses matching findings on its own line; a
// directive on a line of its own suppresses findings on the next code
// line (stacked directives share that line). The reason is mandatory.
const allowPrefix = "//detlint:allow"

// directive is one parsed //detlint:allow comment.
type directive struct {
	analyzer string
	reason   string
	line     int // the source line the directive applies to
}

// directiveSet indexes directives by (file, line).
type directiveSet map[string]map[int][]directive

func (s directiveSet) suppresses(d Diagnostic) bool {
	for _, dir := range s[d.Pos.Filename][d.Pos.Line] {
		if dir.analyzer == d.Analyzer && dir.reason != "" {
			return true
		}
	}
	return false
}

// collectDirectives parses every //detlint:allow comment in the
// package. Malformed directives — no analyzer name, a name no shipped
// analyzer answers to, or a missing reason — come back as diagnostics
// of the pseudo-analyzer "detlint"; they are the linter linting its
// own escape hatch, and they never suppress anything.
func collectDirectives(pkg *Package, known map[string]bool) (directiveSet, []Diagnostic) {
	set := directiveSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		lines := set[filename]
		if lines == nil {
			lines = map[int][]directive{}
			set[filename] = lines
		}
		// endOfLine[line] is true when a comment group's line also
		// holds code, i.e. the directive is trailing.
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			codeLines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //detlint:allowed — not ours
				}
				// The reason ends at an embedded "//": trailing
				// commentary (fixture // want expectations, editor
				// annotations) is not part of the audit trail.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "detlint", Pos: pos,
						Message: "allow directive names no analyzer",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Diagnostic{
						Analyzer: "detlint", Pos: pos,
						Message: "allow directive names unknown analyzer " + name,
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(
					strings.TrimSpace(rest), name))
				if reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "detlint", Pos: pos,
						Message: "allow directive for " + name +
							" has no reason; the reason is mandatory",
					})
					continue
				}
				line := pos.Line
				if !codeLines[line] {
					// Standalone directive: applies to the next code
					// line below (skipping further comment-only lines).
					for l := line + 1; ; l++ {
						if codeLines[l] {
							line = l
							break
						}
						if l > line+64 { // orphan directive at EOF etc.
							break
						}
					}
				}
				lines[line] = append(lines[line], directive{
					analyzer: name, reason: reason, line: line,
				})
			}
		}
	}
	return set, bad
}
