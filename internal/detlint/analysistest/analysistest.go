// Package analysistest runs a detlint analyzer over fixture packages
// and checks its diagnostics against `// want` expectations embedded
// in the fixture source, mirroring the x/tools package of the same
// name on the standard library alone.
//
// Fixtures live under the calling test's testdata/src/<dir>. A want
// comment trails the line it expects a diagnostic on and carries one
// double-quoted regular expression per expected diagnostic:
//
//	for k, v := range m { // want "map iteration reaches"
//
// Suppressed findings simply carry their //detlint:allow directive
// and no want; the harness fails on any unexpected diagnostic, so a
// suppression that stops working turns into a test failure.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/detlint"
)

// wantRe matches the expectation tail of a fixture line.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// expectation is one // want entry: a position plus a message regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads each testdata/src/<dir> fixture package (resolved relative
// to the calling test's working directory), runs the analyzers over
// all of them, and diffs diagnostics against the fixtures' // want
// comments both ways.
func Run(t *testing.T, analyzers []*detlint.Analyzer, dirs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, dir := range dirs {
		root := filepath.Join(cwd, "testdata", "src", dir)
		// Name every package directory explicitly: the go tool skips
		// testdata during wildcard expansion, but lists exact paths.
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			hasGo, _ := filepath.Glob(filepath.Join(path, "*.go"))
			if len(hasGo) > 0 {
				rel, err := filepath.Rel(cwd, path)
				if err != nil {
					return err
				}
				patterns = append(patterns, "./"+filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("analysistest: walking fixtures: %v", err)
		}
	}
	if len(patterns) == 0 {
		t.Fatalf("analysistest: no fixture packages under %v", dirs)
	}

	pkgs, err := detlint.Load(cwd, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range detlint.Run(pkgs, analyzers) {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants scans the fixture sources for // want comments.
func collectWants(pkgs []*detlint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.GoFiles {
			data, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				pats, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want: %v", file, i+1, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", file, i+1, err)
					}
					wants = append(wants, &expectation{file: file, line: i + 1, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of double- or back-quoted Go strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

// match consumes the first unused expectation matching d.
func match(wants []*expectation, d detlint.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}
