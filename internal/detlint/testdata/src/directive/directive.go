// Package directive is a detlint fixture for the //detlint:allow
// grammar itself: the escape hatch is linted too.
package directive

func missingReason() int {
	//detlint:allow wallclock // want "allow directive for wallclock has no reason"
	return 1
}

func unknownAnalyzer() int {
	//detlint:allow nosuchanalyzer because reasons // want "allow directive names unknown analyzer nosuchanalyzer"
	return 2
}

func missingAnalyzer() int {
	//detlint:allow // want "allow directive names no analyzer"
	return 3
}
