// Package metricname is a detlint fixture: family names handed to the
// obs registry, constant and documented or flagged.
package metricname

import "github.com/icsnju/metamut-go/internal/obs"

const family = "documented_total"

func register(reg *obs.Registry, dynamic string) {
	reg.Counter(family, "label")
	reg.Gauge("documented_gauge")
	reg.Counter(dynamic)                       // want "non-constant metric family name"
	reg.Counter("undocumented_total")          // want `family "undocumented_total" is not documented`
	reg.Histogram("undocumented_seconds", nil) // want `family "undocumented_seconds" is not documented`
	reg.Counter("fixture_private_total")       //detlint:allow metricname fixture-local family outside the catalogue
}

// snapshot lookalikes with a Counter method are not the registry.
type snapshot struct{}

func (snapshot) Counter(name string, labels ...string) int { return 0 }

func read(s snapshot, dyn string) int { return s.Counter(dyn) }
