// Package other is a detlint fixture outside wallclock's
// deterministic-package scope: the same clock reads draw no findings.
package other

import "time"

func tick() time.Time {
	return time.Now()
}

func nap() {
	time.Sleep(time.Millisecond)
}
