// Package engine is a detlint fixture: its directory name puts it in
// wallclock's deterministic-package scope, like the real
// internal/engine.
package engine

import "time"

func tick() time.Time {
	return time.Now() // want "time.Now in deterministic package engine"
}

func nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep in deterministic package engine"
}

// A stored clock reference escapes just like a call.
var clock = time.Now // want "time.Now in deterministic package engine"

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker in deterministic package engine"
}

// latency shows the telemetry allowlist: each wall-clock read carries
// a directive naming the histogram it feeds.
func latency() time.Duration {
	//detlint:allow wallclock latency telemetry for the obs histogram only
	start := time.Now()
	return time.Since(start) //detlint:allow wallclock latency telemetry for the obs histogram only
}

// Durations and types are not clock reads.
const timeout = 5 * time.Second

func format(t time.Time) string { return t.Format(time.RFC3339) }
