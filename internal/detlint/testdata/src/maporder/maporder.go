// Package maporder is a detlint fixture: map iterations that reach
// serialization sinks, next to the sorted-keys idiom that is the fix.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration reaches serialization sink fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func marshalUnsorted(m map[string]int) [][]byte {
	var out [][]byte
	for _, v := range m { // want "serialization sink json.Marshal"
		b, _ := json.Marshal(v)
		out = append(out, b)
	}
	return out
}

func encodeUnsorted(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m { // want "serialization sink .*Encoder.*Encode"
		enc.Encode(k)
	}
}

func buildUnsorted(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "serialization sink Builder.WriteString"
		b.WriteString(k)
	}
	return b.String()
}

// emitSorted is the blessed idiom: collect the keys, sort, range the
// slice. The sink sits inside a slice range, never a map range.
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// sumValues aggregates commutatively inside the loop; no sink, no
// finding.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// emitAudited shows a deliberate, documented exception.
func emitAudited(w io.Writer, m map[string]struct{}) {
	for k := range m { //detlint:allow maporder debug-only dump whose consumer sorts lines itself
		fmt.Fprintln(w, k)
	}
}
