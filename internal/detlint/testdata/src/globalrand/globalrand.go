// Package globalrand is a detlint fixture: global-source draws and
// crypto/rand next to the sanctioned seeded-RNG shape.
package globalrand

import (
	crand "crypto/rand"
	"math/rand"
)

func pick(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn bypasses the seeded per-stream RNG"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func token() []byte {
	b := make([]byte, 16)
	crand.Read(b) // want "crypto/rand.Read is nondeterministic"
	return b
}

// seeded is the sanctioned shape: an explicit seed, drawn through a
// *rand.Rand whose state the campaign owns.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// methods on a passed-in *rand.Rand are equally fine.
func draw(rng *rand.Rand) float64 { return rng.Float64() }

// jitter shows a documented exception.
func jitter() int {
	return rand.Intn(3) //detlint:allow globalrand fixture stand-in for simulated external-service jitter
}
