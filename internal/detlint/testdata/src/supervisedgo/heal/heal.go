// Package heal is a detlint fixture: its directory name puts it in
// supervisedgo's campaign-package scope, like the real
// internal/serve/heal — the daemon's supervision layer must itself be
// supervised.
package heal

func probe() {}

// guard is the supervision shape the daemon's governors delegate to.
func guard() {
	defer func() { _ = recover() }()
	probe()
}

func bareGovernor() {
	go probe() // want "unsupervised goroutine in campaign package heal"
}

func bareLadder() {
	go func() { // want "unsupervised goroutine in campaign package heal"
		probe()
	}()
}

func guardedGovernor() {
	go func() {
		defer func() { _ = recover() }()
		probe()
	}()
}

func delegatedGovernor() {
	go guard()
}
