// Package engine is a detlint fixture: its directory name puts it in
// supervisedgo's campaign-package scope, like the real
// internal/engine.
package engine

import "sync"

func work() {}

// supervised is the runStream shape: the recover lives one call deep.
func supervised() {
	defer func() { _ = recover() }()
	work()
}

func bareNamed() {
	go work() // want "unsupervised goroutine in campaign package engine"
}

func bareLiteral() {
	go func() { // want "unsupervised goroutine in campaign package engine"
		work()
	}()
}

func guardedLiteral() {
	go func() {
		defer func() { _ = recover() }()
		work()
	}()
}

// delegated mirrors the engine's dispatch loop: the goroutine body
// only hands work to a recover-guarded function.
func delegated() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		supervised()
	}()
	wg.Wait()
}

func guardedNamed() {
	go supervised()
}

type server interface{ Serve() error }

// audited shows a documented exception for an unresolvable callee.
func audited(srv server) {
	go srv.Serve() //detlint:allow supervisedgo fixture debug server; a panic here should crash loudly
}
