package detlint

import (
	"go/ast"
	"go/types"
)

// Maporder flags `for range` over a map whose body reaches a
// serialization or output sink: Go randomizes map iteration order, so
// any bytes emitted from inside such a loop differ run to run, which
// breaks the byte-identical journal/checkpoint/report contract the
// engine and flight recorder are built on. The blessed idiom is to
// collect the keys, sort them, and range over the sorted slice — a
// slice range, which this analyzer never flags.
//
// Sinks, checked anywhere inside the loop body:
//   - fmt.Fprint / Fprintf / Fprintln (ordered bytes to a writer)
//   - encoding/json Marshal / MarshalIndent and (*json.Encoder).Encode
//   - Write / WriteString / WriteByte / WriteRune methods (building
//     output or feeding a hash in iteration order)
//   - the flight journal emitters (Emit / EmitCampaign) and report
//     Render methods
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose body reaches a serialization sink " +
		"without a sorted-keys idiom in between",
	Run: runMaporder,
}

// maporderSinkMethods are method names that commit bytes in call
// order regardless of receiver type.
var maporderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Emit": true, "EmitCampaign": true, "Render": true,
}

func runMaporder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(info, rs.Body); sink != "" {
				pass.Reportf(rs.Pos(),
					"map iteration reaches serialization sink %s; "+
						"iterate a sorted key slice instead (map order is randomized)",
					sink)
			}
			return true
		})
	}
}

// findSink returns a description of the first serialization sink
// called inside body, or "".
func findSink(info *types.Info, body *ast.BlockStmt) (sink string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil {
			return true
		}
		if name, ok := isPkgLevelUse(obj, "fmt"); ok {
			switch name {
			case "Fprint", "Fprintf", "Fprintln":
				sink = "fmt." + name
			}
			return true
		}
		if name, ok := isPkgLevelUse(obj, "encoding/json"); ok {
			switch name {
			case "Marshal", "MarshalIndent":
				sink = "json." + name
			}
			return true
		}
		if recv := methodRecvNamed(obj); recv != nil {
			if namedIs(recv, "encoding/json", "Encoder") && obj.Name() == "Encode" {
				sink = "(*json.Encoder).Encode"
				return true
			}
			if maporderSinkMethods[obj.Name()] {
				sink = recv.Obj().Name() + "." + obj.Name()
			}
		}
		return true
	})
	return sink
}
