package detlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"os"
	"regexp"
	"strings"
)

// NewMetricname builds the metricname analyzer: every family name
// passed to the obs registry's Counter / Gauge / Histogram must be a
// compile-time string constant that appears in the metrics catalogue
// (docs/METRICS.md). TestMetricsDocMatchesRegistry already diffs the
// catalogue against a fully-exercised live registry, but only at test
// time and only for the campaign shapes the test exercises; this
// analyzer closes the gap before anything runs, and makes dynamically
// assembled family names — which would dodge the catalogue forever —
// impossible to write.
//
// documented is the set of known family names; nil skips the
// catalogue check and enforces only constancy (the CLI and the tests
// always pass the parsed catalogue). The obs package itself is exempt:
// its helpers (snapshot, export, spans) manipulate families
// generically.
func NewMetricname(documented map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "metricname",
		Doc: "flags non-constant or undocumented metric family names " +
			"passed to the obs registry",
	}
	a.Run = func(pass *Pass) { runMetricname(pass, documented) }
	return a
}

// registryMethods are the obs.Registry entry points whose first
// argument is a family name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

func runMetricname(pass *Pass, documented map[string]bool) {
	if pass.Pkg.Path == obsPkgPath {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObject(info, call)
			if obj == nil || !registryMethods[obj.Name()] {
				return true
			}
			if !namedIs(methodRecvNamed(obj), obsPkgPath, "Registry") {
				return true
			}
			arg := call.Args[0]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"non-constant metric family name passed to obs "+
						"Registry.%s; family names must be string constants "+
						"so the catalogue check can see them", obj.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if documented != nil && !documented[name] {
				pass.Reportf(arg.Pos(),
					"metric family %q is not documented in the metrics "+
						"catalogue (docs/METRICS.md); add a row or fix the name",
					name)
			}
			return true
		})
	}
}

// metricsDocRow matches the first two columns of a catalogue row,
// the same shape TestMetricsDocMatchesRegistry parses:
// | `name{label,label}` | kind | ...
var metricsDocRow = regexp.MustCompile(
	"^\\| `([a-z_]+)(?:\\{([a-z_,]+)\\})?` \\| (counter|gauge|histogram) \\|")

// ParseMetricsDoc reads the metrics catalogue and returns the set of
// documented family names.
func ParseMetricsDoc(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("detlint: metrics catalogue: %w", err)
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if m := metricsDocRow.FindStringSubmatch(line); m != nil {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("detlint: metrics catalogue %s has no family rows", path)
	}
	return out, nil
}
