package detlint_test

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/detlint"
	"github.com/icsnju/metamut-go/internal/detlint/analysistest"
)

// Each analyzer has a fixture package with at least one true positive
// (a // want expectation) and one suppressed finding (a
// //detlint:allow directive with a reason and no want); analysistest
// fails on unexpected diagnostics, so it proves both directions.

func TestMaporder(t *testing.T) {
	analysistest.Run(t, []*detlint.Analyzer{detlint.Maporder}, "maporder")
}

func TestWallclock(t *testing.T) {
	// The fixture tree holds an in-scope package (engine) and an
	// out-of-scope one (other) with identical clock reads.
	analysistest.Run(t, []*detlint.Analyzer{detlint.Wallclock}, "wallclock")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, []*detlint.Analyzer{detlint.Globalrand}, "globalrand")
}

func TestSupervisedgo(t *testing.T) {
	analysistest.Run(t, []*detlint.Analyzer{detlint.Supervisedgo}, "supervisedgo")
}

func TestMetricname(t *testing.T) {
	documented := map[string]bool{
		"documented_total": true,
		"documented_gauge": true,
	}
	analysistest.Run(t,
		[]*detlint.Analyzer{detlint.NewMetricname(documented)}, "metricname")
}

// TestDirectiveDiagnostics lints the escape hatch itself: a reasonless
// allow, an unknown analyzer, and a nameless directive each produce a
// (non-suppressible) diagnostic.
func TestDirectiveDiagnostics(t *testing.T) {
	analysistest.Run(t, detlint.Suite(nil), "directive")
}
