// Package detlint is the repo's invariant linter: a go/vet-style
// multichecker whose analyzers prove, at compile time, the properties
// the campaign's determinism and supervision tests can only spot one
// seed at a time — map iteration never reaches a serialization sink
// unsorted, deterministic packages never read the wall clock, the
// per-stream splitmix64 RNG is the sole randomness source, campaign
// goroutines run supervised, and every metric family name is a
// documented constant.
//
// Findings are suppressed site-by-site with a directive comment:
//
//	//detlint:allow <analyzer> <reason>
//
// The reason is mandatory — an allow without one is itself a
// diagnostic — so every exception to an invariant is written down
// next to the code that needs it. The analyzer suite, its fixtures,
// and the suppression contract are documented in
// docs/STATIC_ANALYSIS.md.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Reportf, analysistest-style fixtures) but is built on the
// standard library alone, honoring the module's no-dependency policy:
// packages are loaded with `go list -export` and type-checked against
// compiler export data (load.go).
package detlint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one invariant check, run independently over each
// loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run reports the analyzer's findings for one package through
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers over the packages, applies the
// //detlint:allow suppressions, and returns the surviving diagnostics
// sorted by position. Malformed directives (missing analyzer, unknown
// analyzer, empty reason) are reported as diagnostics of the pseudo-
// analyzer "detlint" and cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := knownNames(analyzers)
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg, known)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if !dirs.suppresses(d) {
						out = append(out, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// knownNames is the directive-validation namespace: the analyzers in
// this run plus every analyzer the suite ships, so a file linted with
// a single analyzer (fixtures, -run) can still carry allows for the
// others without tripping the unknown-name check.
func knownNames(active []*Analyzer) map[string]bool {
	known := map[string]bool{}
	for _, n := range Names() {
		known[n] = true
	}
	for _, a := range active {
		known[a.Name] = true
	}
	return known
}
