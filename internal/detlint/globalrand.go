package detlint

import (
	"go/ast"
	"go/types"
)

// Globalrand flags randomness that does not flow from the seeded
// per-stream splitmix64 RNG. The engine's reproducibility contract —
// one uint64 of checkpointable RNG state per stream, byte-identical
// results at any worker count — only holds because every random draw
// goes through a *rand.Rand the campaign seeded itself.
// TestStreamRNGIsSoleRandomnessSource proves that dynamically for one
// campaign shape; this analyzer proves it for every line of code:
//
//   - math/rand (and math/rand/v2) package-level draws use the
//     process-global source, whose state is shared, unseeded by us,
//     and invisible to checkpoints — flagged everywhere.
//   - crypto/rand is nondeterministic by design — flagged everywhere.
//   - rand.New(rand.NewSource(seed)) and *rand.Rand methods are the
//     sanctioned shape and are never flagged.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc: "flags global math/rand draws and any crypto/rand use; " +
		"randomness must come from the seeded per-stream RNG",
	Run: runGlobalrand,
}

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global source. Constructors (New, NewSource, NewZipf) and
// the Rand/Source types are fine: they carry an explicit seed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true,
}

func runGlobalrand(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				name, ok := isPkgLevelUse(obj, obj.Pkg().Path())
				if !ok || !globalRandFuncs[name] {
					return true
				}
				// Package-level *functions* draw from the global
				// source; same-named methods on *rand.Rand do not.
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
				if methodRecvNamed(obj) != nil {
					return true
				}
				pass.Reportf(sel.Pos(),
					"global %s.%s bypasses the seeded per-stream RNG; "+
						"draw from the campaign's *rand.Rand instead",
					obj.Pkg().Path(), name)
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is nondeterministic; campaign "+
						"randomness must come from the seeded per-stream RNG",
					obj.Name())
			}
			return true
		})
	}
}
