package detlint

import (
	"go/ast"
	"go/types"
)

// Supervisedgo flags `go` statements in campaign packages whose
// spawned work can panic without a supervisor. PR 4's discipline is
// that a mutator or worker panic is captured and booked (strike,
// quarantine, stream poisoning) — never allowed to unwind the fleet —
// and that only holds if every goroutine either defers a recover()
// itself or immediately delegates to a function that does (the
// engine's runStream shape). A bare `go doWork()` in engine, fuzz,
// flight, resil, or core is one panic away from killing a campaign
// that fault tolerance promised to finish.
var Supervisedgo = &Analyzer{
	Name: "supervisedgo",
	Doc: "flags go statements in campaign packages whose body neither " +
		"defers recover() nor calls a recover-guarded function",
	Run: runSupervisedgo,
}

// campaignPkgs are the packages running under the supervision
// discipline.
var campaignPkgs = map[string]bool{
	"engine": true, "fuzz": true, "flight": true,
	"resil": true, "core": true, "serve": true, "heal": true,
}

func runSupervisedgo(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path, campaignPkgs) {
		return
	}
	info := pass.Pkg.Info
	decls := packageFuncDecls(info, pass.Pkg.Files)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtSupervised(info, decls, gs) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"unsupervised goroutine in campaign package %s: the body "+
					"neither defers recover() nor calls a recover-guarded "+
					"function, so a panic unwinds the fleet",
				pkgSegment(pass.Pkg.Path))
			return true
		})
	}
}

// packageFuncDecls maps each function/method object defined in the
// package to its declaration, so supervision can be resolved through
// one level of delegation.
func packageFuncDecls(info *types.Info, files []*ast.File) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// goStmtSupervised reports whether the goroutine's work is guarded:
// the spawned function (literal or resolved declaration) defers a
// recover, or its body hands the fallible work to a same-package
// function that does.
func goStmtSupervised(info *types.Info, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) bool {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodySupervised(info, decls, fun.Body)
	default:
		if obj := calleeObject(info, gs.Call); obj != nil {
			if fd, ok := decls[obj]; ok && fd.Body != nil {
				return bodySupervised(info, decls, fd.Body)
			}
		}
	}
	return false
}

// bodySupervised reports whether body defers a recover() or calls a
// same-package function whose own body defers one.
func bodySupervised(info *types.Info, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	if hasDeferredRecover(info, body) {
		return true
	}
	supervised := false
	ast.Inspect(body, func(n ast.Node) bool {
		if supervised {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil {
			return true
		}
		if fd, ok := decls[obj]; ok && fd.Body != nil &&
			hasDeferredRecover(info, fd.Body) {
			supervised = true
		}
		return true
	})
	return supervised
}

// hasDeferredRecover reports whether body contains a defer whose
// function (a literal, or a call to recover itself) reaches recover().
func hasDeferredRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isRecoverCall(info, ds.Call) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isRecoverCall(info, call) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isRecoverCall reports whether call invokes the recover builtin.
func isRecoverCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}
