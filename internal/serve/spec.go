// Package serve is the fuzzing-as-a-service layer: a multi-tenant
// campaign coordinator that runs as a daemon (cmd/mucfuzzd), accepts
// job submissions over an HTTP/JSON API, multiplexes many concurrent
// campaigns over one shared worker fleet with per-tenant fair
// scheduling (deficit round-robin over engine epochs) and quota
// enforcement, and survives restarts — even SIGKILL — by persisting a
// job ledger plus the engine's checkpoint format. On boot every
// RUNNING job resumes from its last checkpoint, and each job's final
// crashes, stats, and flight journal are byte-identical to an
// uninterrupted run.
//
// The coordinator never invents randomness or ordering of its own:
// each job is a fully isolated engine.Campaign (own compiler instance,
// seed pool, streams, RNGs), so *when* its epochs are scheduled on the
// fleet cannot perturb *what* they compute. The fleet switches jobs
// only at epoch barriers (engine.RunSlice pause-at-barrier
// preemption), which is also where checkpoints happen — so the ledger
// plus the per-job checkpoint is always a consistent cut of the whole
// service.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
)

// JobSpecVersion guards the job schema. The single-shot CLI
// (mucfuzz -submit), the client CLI (mucfuzzctl submit), and the
// daemon all speak exactly this struct; bump on any layout change and
// reject others rather than guess.
const JobSpecVersion = 1

// JobSpec is the canonical campaign-job schema: everything that
// defines a macro campaign's identity and budget. A job's results are
// a pure function of its spec — the daemon adds no entropy — which is
// what makes `mucfuzz -macro` and a daemon-run job interchangeable.
type JobSpec struct {
	// SpecVersion must equal JobSpecVersion.
	SpecVersion int `json:"spec_version"`
	// Tenant names the submitting tenant (required; quota unit).
	Tenant string `json:"tenant"`
	// Name is an optional human label for the job.
	Name string `json:"name,omitempty"`
	// Compiler is the target profile: "gcc" or "clang".
	Compiler string `json:"compiler"`
	// MutatorSet selects the arsenal: "s", "u", or "all".
	MutatorSet string `json:"set"`
	// Seed derives the campaign's every stream RNG.
	Seed int64 `json:"seed"`
	// SeedCount is the generated seed-corpus size.
	SeedCount int `json:"seeds"`
	// Steps is the campaign budget (total compilations across streams).
	Steps int `json:"steps"`
	// Streams is the logical stream count (campaign identity).
	Streams int `json:"streams"`
	// StepsPerEpoch is the per-stream step count between barriers
	// (campaign identity; also the preemption granularity).
	StepsPerEpoch int `json:"steps_per_epoch"`
	// Sched is the mutator scheduling policy: "uniform" or "adaptive".
	Sched string `json:"sched"`
	// NoStatic disables the shift-left mutant filter (ablation).
	NoStatic bool `json:"no_static,omitempty"`
	// Reduce minimizes each triaged witness in the final report.
	Reduce bool `json:"reduce,omitempty"`
}

// Normalize fills defaults in place (mirroring the mucfuzz flag
// defaults, so a bare spec means the same campaign everywhere).
func (s *JobSpec) Normalize() {
	if s.SpecVersion == 0 {
		s.SpecVersion = JobSpecVersion
	}
	if s.Compiler == "" {
		s.Compiler = "gcc"
	}
	if s.MutatorSet == "" {
		s.MutatorSet = "s"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SeedCount <= 0 {
		s.SeedCount = 120
	}
	if s.Streams <= 0 {
		s.Streams = 16
	}
	if s.StepsPerEpoch <= 0 {
		s.StepsPerEpoch = 32
	}
	if s.Sched == "" {
		s.Sched = "adaptive"
	}
}

// Validate rejects specs the daemon could not run faithfully. Call
// after Normalize.
func (s *JobSpec) Validate() error {
	if s.SpecVersion != JobSpecVersion {
		return fmt.Errorf("serve: job spec version %d, this daemon speaks %d",
			s.SpecVersion, JobSpecVersion)
	}
	if s.Tenant == "" {
		return errors.New("serve: job spec has no tenant")
	}
	if s.Steps <= 0 {
		return errors.New("serve: job spec has no step budget")
	}
	switch s.Compiler {
	case "gcc", "clang":
	default:
		return fmt.Errorf("serve: unknown compiler profile %q (want gcc or clang)", s.Compiler)
	}
	switch s.MutatorSet {
	case "s", "u", "all":
	default:
		return fmt.Errorf("serve: unknown mutator set %q (want s, u, or all)", s.MutatorSet)
	}
	switch s.Sched {
	case "uniform", "adaptive":
	default:
		return fmt.Errorf("serve: unknown scheduling policy %q (want uniform or adaptive)", s.Sched)
	}
	return nil
}

// specJSON renders the spec for the per-job spec.json audit copy.
func specJSON(s JobSpec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
