package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/icsnju/metamut-go/internal/resil"
)

// flakyTransport refuses the first fail requests outright — the
// connection-refused shape of a daemon mid-restart — then delegates.
type flakyTransport struct {
	fail  int
	seen  int
	inner http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.seen++
	if f.seen <= f.fail {
		return nil, errors.New("dial tcp: connection refused")
	}
	return f.inner.RoundTrip(req)
}

func retryClient(srv *httptest.Server, fail int) (*Client, *flakyTransport) {
	ft := &flakyTransport{fail: fail, inner: http.DefaultTransport}
	return &Client{
		Addr: srv.URL,
		HTTP: &http.Client{Transport: ft},
		Retry: &resil.Policy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
		},
	}, ft
}

func TestClientRetriesTransientGetErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, 200, Health{Breaker: "closed", DiskLevel: "nominal"})
	}))
	defer srv.Close()

	c, ft := retryClient(srv, 2)
	h, err := c.Health()
	if err != nil {
		t.Fatalf("Health after transient failures: %v", err)
	}
	if h.Breaker != "closed" {
		t.Fatalf("health = %+v", h)
	}
	if ft.seen != 3 {
		t.Fatalf("transport saw %d attempts, want 3", ft.seen)
	}
}

func TestClientRetriesAreBounded(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()

	c, ft := retryClient(srv, 100)
	if _, err := c.Health(); err == nil {
		t.Fatal("persistently refused GET succeeded")
	}
	// MaxAttempts bounds total tries: the first call plus the retries
	// the policy grants.
	if ft.seen > 5 {
		t.Fatalf("transport saw %d attempts, want <= 5", ft.seen)
	}
}

func TestClientNeverRetriesPosts(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()

	c, ft := retryClient(srv, 100)
	if _, err := c.Submit(JobSpec{}); err == nil {
		t.Fatal("refused POST succeeded")
	}
	if ft.seen != 1 {
		t.Fatalf("POST saw %d attempts, want 1 (a lost submit may have been applied)", ft.seen)
	}
}

func TestClientNoPolicyFailsFast(t *testing.T) {
	ft := &flakyTransport{fail: 100, inner: http.DefaultTransport}
	c := &Client{Addr: "localhost:1", HTTP: &http.Client{Transport: ft}}
	if _, err := c.Health(); err == nil {
		t.Fatal("refused GET succeeded without a retry policy")
	}
	if ft.seen != 1 {
		t.Fatalf("no-policy GET saw %d attempts, want 1", ft.seen)
	}
}
