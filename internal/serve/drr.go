package serve

import (
	"sort"

	"github.com/icsnju/metamut-go/internal/serve/heal"
)

// drr is the per-tenant fair scheduler: deficit round-robin over engine
// epochs. Tenants sit in a fixed sorted ring; each visit credits the
// tenant one quantum of steps, and while its deficit covers the next
// epoch slice of its head job, that slice runs and the actual steps
// executed are charged back. Tenants with more jobs therefore split the
// same share a single-job tenant gets — the fleet's throughput divides
// by *tenant*, not by job — and an idle tenant's deficit resets so it
// cannot hoard credit and starve the ring later.
//
// The scheduler is deterministic (sorted ring, FIFO jobs within a
// tenant) so daemon logs and fairness tests are reproducible; note
// per-job *results* never depend on this ordering at all — jobs are
// isolated campaigns and only wall-clock completion order is at stake.
type drr struct {
	quantum  int
	cursor   int
	tenants  []string       // sorted ring
	deficits map[string]int // tenant → accumulated step credit
	queues   map[string][]string
	paused   map[string]bool // tenants the overload governor benched
}

// newDRR builds an empty scheduler. quantum is the step credit per
// ring visit (≤0 defaults to 512, a default epoch's worth).
func newDRR(quantum int) *drr {
	if quantum <= 0 {
		quantum = 512
	}
	return &drr{
		quantum:  quantum,
		deficits: map[string]int{},
		queues:   map[string][]string{},
		paused:   map[string]bool{},
	}
}

// Enqueue appends a job to its tenant's FIFO, adding the tenant to the
// ring on first sight.
func (d *drr) Enqueue(tenant, jobID string) {
	if _, ok := d.queues[tenant]; !ok {
		d.tenants = append(d.tenants, tenant)
		sort.Strings(d.tenants)
		// Re-find the cursor'd tenant? The ring only ever grows by
		// insertion; keeping the numeric cursor is fine — fairness is
		// long-run, not per-insertion.
	}
	d.queues[tenant] = append(d.queues[tenant], jobID)
}

// Remove deletes a job from its tenant's queue (cancellation).
func (d *drr) Remove(tenant, jobID string) {
	q := d.queues[tenant]
	for i, id := range q {
		if id == jobID {
			d.queues[tenant] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}

// Next picks the job owning the next epoch slice and charges cost
// steps against its tenant's deficit. cost reports the slice's step
// price for a job (streams × steps-per-epoch clamped to the remaining
// budget — exactly the engine's epochPlan, so the charge is precise).
// Returns "" when no tenant has runnable jobs.
//
// The picked job rotates to its tenant's queue tail, so a tenant's own
// jobs round-robin among themselves within the tenant's share.
func (d *drr) Next(cost func(jobID string) int) string {
	if len(d.tenants) == 0 {
		return ""
	}
	// Two full ring passes always suffice when slice costs stay near the
	// quantum: the first credits every non-empty tenant, so by the
	// second any of them can usually afford its head slice. The cursor
	// advances past a served tenant, so consecutive picks rotate the
	// ring instead of re-serving whoever was served last.
	n := len(d.tenants)
	for i := 0; i < 2*n; i++ {
		t := d.tenants[d.cursor%n]
		if d.paused[t] {
			// An overload-paused tenant is benched, not idle: it keeps
			// its deficit, so un-pausing restores it to exactly the
			// scheduling position it held.
			d.cursor++
			continue
		}
		q := d.queues[t]
		if len(q) == 0 {
			// Standard DRR: an idle queue forfeits its credit.
			d.deficits[t] = 0
			d.cursor++
			continue
		}
		if d.deficits[t] < d.quantum*n {
			// Cap accumulation so a long-blocked tenant cannot burst
			// unboundedly once it wakes.
			d.deficits[t] += d.quantum
		}
		job := q[0]
		c := cost(job)
		if c < 1 {
			c = 1
		}
		if d.deficits[t] >= c {
			d.deficits[t] -= c
			d.queues[t] = append(q[1:], job)
			d.cursor++
			return job
		}
		d.cursor++
	}
	// Every runnable tenant is still saving up (cost ≫ quantum). Serve
	// the most-credited one anyway rather than stall the fleet — ties
	// go to ring order from the cursor, and the served tenant's credit
	// resets, so oversized slices still rotate across tenants.
	best, bestDef := -1, -1
	for i := 0; i < n; i++ {
		idx := (d.cursor + i) % n
		t := d.tenants[idx]
		if !d.paused[t] && len(d.queues[t]) > 0 && d.deficits[t] > bestDef {
			best, bestDef = idx, d.deficits[t]
		}
	}
	if best < 0 {
		return ""
	}
	t := d.tenants[best]
	q := d.queues[t]
	job := q[0]
	d.deficits[t] = 0
	d.queues[t] = append(q[1:], job)
	d.cursor = best + 1
	return job
}

// Pending reports whether any tenant has runnable jobs. Paused tenants
// count: the overload governor guarantees at least one queued tenant
// stays unpaused, so pending work is never stranded behind a pause.
func (d *drr) Pending() bool {
	for _, q := range d.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// SetPaused replaces the benched-tenant set with the governor's latest
// pause plan.
func (d *drr) SetPaused(tenants []string) {
	d.paused = make(map[string]bool, len(tenants))
	for _, t := range tenants {
		d.paused[t] = true
	}
}

// Paused returns the benched tenants, sorted.
func (d *drr) Paused() []string {
	out := make([]string, 0, len(d.paused))
	for t := range d.paused {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Loads snapshots every ring tenant's scheduler load in ring (sorted)
// order, for the overload governor's pause planning.
func (d *drr) Loads() []heal.TenantLoad {
	out := make([]heal.TenantLoad, 0, len(d.tenants))
	for _, t := range d.tenants {
		out = append(out, heal.TenantLoad{
			Tenant:  t,
			Deficit: d.deficits[t],
			Queued:  len(d.queues[t]),
		})
	}
	return out
}
