package serve

import (
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/serve/heal"
)

// RegisterMetrics pre-registers every serve_* family — including the
// serve_heal_* supervision families — so metric snapshots and the
// METRICS.md reference see the full service surface from daemon start.
// Idempotent; nil registry is a no-op.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("serve_jobs_submitted_total")
	reg.Counter("serve_jobs_finished_total", "state")
	reg.Counter("serve_jobs_resumed_total")
	reg.Gauge("serve_jobs_active")
	reg.Gauge("serve_tenants")
	reg.Counter("serve_quota_rejections_total", "kind")
	reg.Counter("serve_slices_total")
	reg.Counter("serve_steps_total")
	reg.Counter("serve_sse_dropped_total")
	heal.RegisterMetrics(reg)
}

// metrics bundles the daemon's resolved handles (nil-registry safe).
type metrics struct {
	submitted  *obs.Counter
	finished   *obs.CounterVec
	resumed    *obs.Counter
	active     *obs.Gauge
	tenants    *obs.Gauge
	quota      *obs.CounterVec
	slices     *obs.Counter
	steps      *obs.Counter
	sseDropped *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	RegisterMetrics(reg)
	return metrics{
		submitted:  reg.Counter("serve_jobs_submitted_total").With(),
		finished:   reg.Counter("serve_jobs_finished_total", "state"),
		resumed:    reg.Counter("serve_jobs_resumed_total").With(),
		active:     reg.Gauge("serve_jobs_active").With(),
		tenants:    reg.Gauge("serve_tenants").With(),
		quota:      reg.Counter("serve_quota_rejections_total", "kind"),
		slices:     reg.Counter("serve_slices_total").With(),
		steps:      reg.Counter("serve_steps_total").With(),
		sseDropped: reg.Counter("serve_sse_dropped_total").With(),
	}
}
