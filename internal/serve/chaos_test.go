package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/icsnju/metamut-go/internal/resil/chaos"
	"github.com/icsnju/metamut-go/internal/serve/heal"
)

// newChaosDaemon builds a daemon with the serve chaos injector armed.
// Any coordinator panic that escapes slice supervision is a test
// failure: the acceptance bar is that injected faults strike jobs,
// never the daemon.
func newChaosDaemon(t *testing.T, dir string, fleet int, ccfg chaos.ServeConfig, hcfg heal.Config) (*Daemon, *chaos.ServeInjector) {
	t.Helper()
	inj := chaos.NewServeInjector(ccfg)
	d, err := New(Config{
		StateDir: dir,
		Fleet:    fleet,
		Heal:     hcfg,
		Chaos: &ChaosHooks{
			SliceStart:          inj.SliceStart,
			CheckpointTransform: inj.CheckpointTransform,
			LedgerTransform:     inj.LedgerTransform,
		},
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "coordinator panicked") {
				t.Errorf("daemon crashed under chaos: "+format, args...)
			}
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, inj
}

// TestDaemonChaosSurvivorsByteIdentical is the acceptance gate for the
// self-healing layer: with hash-scheduled slice panics, a designated
// poison job, transient checkpoint ENOSPC, and torn ledger saves all
// injected, the daemon must never crash, the poison job must land in
// QUARANTINED with its partial artifacts intact, and every surviving
// job's journal and triage must be byte-identical to an uninjected
// run — at fleet sizes 1, 4, and 16.
//
// Seed 21 with 1-in-5 panic sites is chosen so each surviving job
// takes exactly one recovered panic (strike 1 of 3) before finishing:
// every survivor exercises the replay-from-barrier path without any
// reaching the quarantine threshold.
func TestDaemonChaosSurvivorsByteIdentical(t *testing.T) {
	want := runUninterrupted(t, 1)

	ccfg := chaos.ServeConfig{
		Seed:            21,
		SlicePanicEvery: 5,
		PoisonJobSeq:    3, // j0003: alpha/33/64 — 4 epochs, slice 0 runs clean
		PoisonAfter:     1,
		// Transient: with N >= 2 at most one write attempt per checkpoint
		// fails, the engine's in-call retry heals it, and journal bytes
		// are unaffected (the checkpoint event lands only on success).
		CheckpointENOSPCEvery: 5,
		LedgerTearEvery:       3,
	}

	for _, fleet := range []int{1, 4, 16} {
		dir := t.TempDir()
		d, inj := newChaosDaemon(t, dir, fleet, ccfg, heal.Config{})
		ids := submitAll(t, d)
		go d.Run()
		recs := waitJobs(t, d, ids)
		d.Stop()

		poison := recs[ids[2]]
		if poison.State != Quarantined {
			t.Fatalf("fleet %d: poison job %s ended %s (%s), want QUARANTINED",
				fleet, poison.ID, poison.State, poison.Error)
		}
		if poison.Strikes != 3 {
			t.Errorf("fleet %d: poison job strikes = %d, want 3", fleet, poison.Strikes)
		}
		if !strings.Contains(poison.Error, "quarantined after 3 strikes") ||
			!strings.Contains(poison.Error, "poison-job panic") {
			t.Errorf("fleet %d: poison job error = %q", fleet, poison.Error)
		}
		// Slice 0 ran clean before the poison kicked in: the quarantined
		// job keeps its first epoch's progress, journal, and triage.
		if epoch := poison.Spec.Streams * poison.Spec.StepsPerEpoch; poison.Done != epoch {
			t.Errorf("fleet %d: poison job done = %d, want one clean epoch (%d)",
				fleet, poison.Done, epoch)
		}
		pdir := JobDir(dir, poison.ID)
		if j, err := os.ReadFile(filepath.Join(pdir, JournalFile)); err != nil || len(j) == 0 {
			t.Errorf("fleet %d: poison job journal missing or empty (%v)", fleet, err)
		}
		if _, err := os.Stat(filepath.Join(pdir, TriageFile)); err != nil {
			t.Errorf("fleet %d: poison job triage: %v", fleet, err)
		}

		for _, id := range []string{ids[0], ids[1], ids[3]} {
			rec := recs[id]
			if rec.State != Done {
				t.Fatalf("fleet %d: survivor %s ended %s (%s), want DONE",
					fleet, id, rec.State, rec.Error)
			}
			if got := artifactsFor(t, dir, rec); got != want[id] {
				t.Errorf("fleet %d: survivor %s diverged from uninjected run\n got: %+v\nwant: %+v",
					fleet, id, got, want[id])
			}
		}

		// The panic schedule is a pure function of (seed, job, attempt):
		// identical at every fleet size.
		f := inj.Faults()
		if f.PoisonPanics != 3 || f.SlicePanics != 3 {
			t.Errorf("fleet %d: faults = %+v, want 3 poison + 3 slice panics", fleet, f)
		}
		if f.ENOSPCWrites == 0 || f.TornLedgers == 0 {
			t.Errorf("fleet %d: faults = %+v, want ENOSPC and torn-ledger injections", fleet, f)
		}
	}
}

// TestDaemonFloodingTenantShed drives the overload governor: past the
// high-water mark, new admissions get a structured `overloaded` error
// with a Retry-After hint, malformed specs are still rejected as such,
// the already-admitted jobs complete normally, and admissions reopen
// once the load drains.
func TestDaemonFloodingTenantShed(t *testing.T) {
	dir := t.TempDir()
	d, _ := newChaosDaemon(t, dir, 2, chaos.ServeConfig{},
		heal.Config{HighWaterJobs: 2, RetryAfterSeconds: 7})

	var ids []string
	for _, spec := range []JobSpec{testSpec("alpha", 11, 32), testSpec("beta", 22, 32)} {
		id, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// The flooding tenant hits the shed wall, deterministically.
	for i := 0; i < 5; i++ {
		_, err := d.Submit(testSpec("flood", int64(100+i), 32))
		var se *Error
		if !errors.As(err, &se) || se.Code != CodeOverloaded {
			t.Fatalf("flood submit %d: err = %v, want %s", i, err, CodeOverloaded)
		}
		if se.Status != 503 || se.RetryAfter != 7 {
			t.Fatalf("flood submit %d: status %d retry-after %d, want 503/7", i, se.Status, se.RetryAfter)
		}
	}
	// Malformed specs are the client's fault even under overload.
	_, err := d.Submit(JobSpec{SpecVersion: 99, Tenant: "flood"})
	var se *Error
	if !errors.As(err, &se) || se.Code != CodeBadSpec {
		t.Fatalf("malformed submit: err = %v, want %s", err, CodeBadSpec)
	}

	go d.Run()
	recs := waitJobs(t, d, ids)
	for id, rec := range recs {
		if rec.State != Done {
			t.Fatalf("admitted job %s ended %s (%s), want DONE", id, rec.State, rec.Error)
		}
	}
	// Load drained: the same tenant is welcome again, in fixed order.
	if _, err := d.Submit(testSpec("flood", 200, 32)); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	d.Stop()
}

// TestDaemonDiskPressureLadder simulates a sustained full disk: every
// checkpoint write attempt fails, so the governor climbs the full
// degradation ladder — shed SSE, cap journals, stretch checkpoints,
// quarantine admissions — the job is struck out on checkpoint errors,
// and the daemon stays up and refuses new work instead of crash-looping.
func TestDaemonDiskPressureLadder(t *testing.T) {
	dir := t.TempDir()
	d, _ := newChaosDaemon(t, dir, 1,
		chaos.ServeConfig{CheckpointENOSPCEvery: 1},
		heal.Config{DiskTripAfter: 1, DiskClearAfter: 64})
	id, err := d.Submit(testSpec("alpha", 11, 32))
	if err != nil {
		t.Fatal(err)
	}
	go d.Run()
	recs := waitJobs(t, d, []string{id})
	rec := recs[id]
	if rec.State != Quarantined {
		t.Fatalf("job ended %s (%s), want QUARANTINED", rec.State, rec.Error)
	}
	if !strings.Contains(rec.Error, "checkpoint_error") {
		t.Errorf("quarantine cause = %q, want checkpoint_error", rec.Error)
	}
	if !rec.JournalCapped {
		t.Error("journal not capped despite sustained disk pressure")
	}
	if lvl := d.heal.Level(); lvl != heal.LevelQuarantineAdmissions {
		t.Fatalf("disk level = %s, want quarantine_admissions", lvl)
	}
	// The top rung sheds admissions outright, with the disk as reason.
	_, err = d.Submit(testSpec("beta", 22, 32))
	var se *Error
	if !errors.As(err, &se) || se.Code != CodeOverloaded || !strings.Contains(se.Message, "disk") {
		t.Fatalf("submit at top rung: err = %v, want %s (disk)", err, CodeOverloaded)
	}
	// Still alive and answering.
	if err := d.Cancel("j9999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
	d.Stop()
}

// TestDaemonRestartAfterTornLedgerAndENOSPC is the satellite extension
// of TestDaemonKillRestartByteIdentical: the first daemon generation
// runs with torn ledger saves and transient checkpoint ENOSPC injected,
// is killed mid-campaign (its primary ledger may be garbage), and a
// clean daemon over the same state dir must fall back to the .prev
// ledger generation, resume every job from its checkpoint, and finish
// byte-identical to an uninjected run.
func TestDaemonRestartAfterTornLedgerAndENOSPC(t *testing.T) {
	want := runUninterrupted(t, 1)

	dir := t.TempDir()
	d1, inj := newChaosDaemon(t, dir, 2, chaos.ServeConfig{
		CheckpointENOSPCEvery: 5,
		LedgerTearEvery:       2,
	}, heal.Config{})
	ids := submitAll(t, d1)
	go d1.Run()
	// Enough progress that checkpoint writes have crossed several ENOSPC
	// sites (one periodic checkpoint per 16-step epoch) and several torn
	// ledger generations are on disk, but well short of the 384-step
	// total budget.
	deadline := time.Now().Add(time.Minute)
	for !time.Now().After(deadline) {
		sum := 0
		for _, id := range ids {
			rec, _ := d1.Job(id)
			sum += rec.Done
		}
		if sum >= 176 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	d1.Kill()
	if f := inj.Faults(); f.ENOSPCWrites == 0 || f.TornLedgers == 0 {
		t.Fatalf("chaos generation injected nothing: %+v", f)
	}

	d2 := newTestDaemon(t, dir, 4)
	go d2.Run()
	recs := waitJobs(t, d2, ids)
	d2.Stop()
	for id, rec := range recs {
		if rec.State != Done {
			t.Fatalf("job %s ended %s (%s), want DONE", id, rec.State, rec.Error)
		}
		if got := artifactsFor(t, dir, rec); got != want[id] {
			t.Errorf("job %s diverged after chaos restart\n got: %+v\nwant: %+v", id, got, want[id])
		}
	}
}
