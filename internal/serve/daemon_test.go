package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/icsnju/metamut-go/internal/engine"
)

// testSpec is a small but real campaign: 2 streams × 8 steps/epoch, so
// a job spans several epochs and several preemption slices.
func testSpec(tenant string, seed int64, steps int) JobSpec {
	return JobSpec{
		SpecVersion: JobSpecVersion, Tenant: tenant,
		Compiler: "gcc", MutatorSet: "s", Sched: "adaptive",
		Seed: seed, SeedCount: 24, Steps: steps,
		Streams: 2, StepsPerEpoch: 8,
	}
}

func newTestDaemon(t *testing.T, dir string, fleet int) *Daemon {
	t.Helper()
	d, err := New(Config{StateDir: dir, Fleet: fleet, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// waitJobs polls until every id is terminal (the daemon loop must be
// running) and returns the final records.
func waitJobs(t *testing.T, d *Daemon, ids []string) map[string]JobRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	out := map[string]JobRecord{}
	for len(out) < len(ids) {
		if time.Now().After(deadline) {
			t.Fatalf("jobs %v did not finish; have %v", ids, out)
		}
		for _, id := range ids {
			if _, done := out[id]; done {
				continue
			}
			rec, ok := d.Job(id)
			if !ok {
				t.Fatalf("job %s vanished", id)
			}
			if rec.State.Terminal() {
				out[id] = rec
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return out
}

// jobArtifacts is everything a tenant can observe about a finished job:
// the durable record's results, the flight journal bytes, the triage
// report bytes.
type jobArtifacts struct {
	Done, Epochs, Edges, Crashes int
	Journal                      string
	Triage                       string
}

func artifactsFor(t *testing.T, stateDir string, rec JobRecord) jobArtifacts {
	t.Helper()
	dir := JobDir(stateDir, rec.ID)
	journal, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatalf("job %s journal: %v", rec.ID, err)
	}
	triage, err := os.ReadFile(filepath.Join(dir, TriageFile))
	if err != nil {
		t.Fatalf("job %s triage: %v", rec.ID, err)
	}
	return jobArtifacts{
		Done: rec.Done, Epochs: rec.Epochs, Edges: rec.Edges, Crashes: rec.Crashes,
		Journal: string(journal), Triage: string(triage),
	}
}

// submitAll submits the canonical 4-jobs-over-3-tenants workload.
func submitAll(t *testing.T, d *Daemon) []string {
	t.Helper()
	specs := []JobSpec{
		testSpec("alpha", 11, 96),
		testSpec("beta", 22, 128),
		testSpec("alpha", 33, 64),
		testSpec("gamma", 44, 96),
	}
	var ids []string
	for _, spec := range specs {
		id, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// runUninterrupted completes the workload on one daemon and returns
// each job's artifacts.
func runUninterrupted(t *testing.T, fleet int) map[string]jobArtifacts {
	t.Helper()
	dir := t.TempDir()
	d := newTestDaemon(t, dir, fleet)
	ids := submitAll(t, d)
	go d.Run()
	recs := waitJobs(t, d, ids)
	d.Stop()
	out := map[string]jobArtifacts{}
	for id, rec := range recs {
		if rec.State != Done {
			t.Fatalf("job %s ended %s (%s), want DONE", id, rec.State, rec.Error)
		}
		out[id] = artifactsFor(t, dir, rec)
	}
	return out
}

// TestDaemonKillRestartByteIdentical is the service-level extension of
// TestCheckpointResumeEqualsUninterrupted: submit N jobs across 3
// tenants, kill the daemon mid-campaign (no graceful bookkeeping),
// restart it over the same state dir, and require every job's results
// — counters, flight journal bytes, triage bytes — to equal an
// uninterrupted daemon's, at a different fleet size for good measure.
func TestDaemonKillRestartByteIdentical(t *testing.T) {
	want := runUninterrupted(t, 1)

	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, 2)
	ids := submitAll(t, d1)
	go d1.Run()
	// Let the fleet make real progress before the kill so resumed state
	// is non-trivial.
	deadline := time.Now().Add(time.Minute)
	for {
		rec, _ := d1.Job(ids[0])
		if rec.Done > 0 && rec.Done < rec.Spec.Steps {
			break
		}
		if rec.State.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	d1.Kill()

	d2 := newTestDaemon(t, dir, 4)
	go d2.Run()
	recs := waitJobs(t, d2, ids)
	d2.Stop()

	for id, rec := range recs {
		if rec.State != Done {
			t.Fatalf("restarted job %s ended %s (%s), want DONE", id, rec.State, rec.Error)
		}
		got := artifactsFor(t, dir, rec)
		ref := want[id]
		if got.Done != ref.Done || got.Epochs != ref.Epochs ||
			got.Edges != ref.Edges || got.Crashes != ref.Crashes {
			t.Errorf("job %s counters diverged after kill+restart:\ngot  %+v\nwant %+v",
				id, got, ref)
		}
		if got.Journal != ref.Journal {
			t.Errorf("job %s flight journal not byte-identical after kill+restart (%d vs %d bytes)",
				id, len(got.Journal), len(ref.Journal))
		}
		if got.Triage != ref.Triage {
			t.Errorf("job %s triage report diverged after kill+restart", id)
		}
	}
}

// TestDaemonFleetSizeInvariant runs the same workload uninterrupted at
// two fleet sizes: scheduling is throughput-only, never results.
func TestDaemonFleetSizeInvariant(t *testing.T) {
	a := runUninterrupted(t, 1)
	b := runUninterrupted(t, 4)
	for id, ra := range a {
		rb := b[id]
		if ra.Journal != rb.Journal || ra.Triage != rb.Triage ||
			ra.Done != rb.Done || ra.Edges != rb.Edges || ra.Crashes != rb.Crashes {
			t.Errorf("job %s results depend on fleet size", id)
		}
	}
}

// TestDaemonQuotaRejections exercises both quota axes and checks the
// structured error codes a client dispatches on.
func TestDaemonQuotaRejections(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{
		StateDir: dir, Fleet: 1,
		Quotas: Quotas{MaxActiveJobs: 1, MaxTotalSteps: 300},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()

	if _, err := d.Submit(testSpec("alpha", 1, 96)); err != nil {
		t.Fatal(err)
	}
	_, err = d.Submit(testSpec("alpha", 2, 96))
	var se *Error
	if !errors.As(err, &se) || se.Code != CodeQuotaConcurrency || se.Status != 429 {
		t.Fatalf("second concurrent job: err = %v, want %s/429", err, CodeQuotaConcurrency)
	}
	// Another tenant is unaffected by alpha's quotas but has its own
	// lifetime step budget.
	_, err = d.Submit(testSpec("beta", 3, 301))
	if !errors.As(err, &se) || se.Code != CodeQuotaSteps || se.Status != 429 {
		t.Fatalf("over-budget job: err = %v, want %s/429", err, CodeQuotaSteps)
	}
	if _, err := d.Submit(testSpec("beta", 3, 296)); err != nil {
		t.Fatal(err)
	}
	// Invalid specs are a 400, not a quota error.
	bad := testSpec("gamma", 5, 16)
	bad.Compiler = "tcc"
	_, err = d.Submit(bad)
	if !errors.As(err, &se) || se.Code != CodeBadSpec || se.Status != 400 {
		t.Fatalf("bad spec: err = %v, want %s/400", err, CodeBadSpec)
	}
}

// TestDaemonCancelMidCampaign cancels a running job and requires a
// CANCELLED terminal state, partial progress, and a triage report.
func TestDaemonCancelMidCampaign(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, dir, 1)
	id, err := d.Submit(testSpec("alpha", 7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	go d.Run()
	deadline := time.Now().Add(time.Minute)
	for {
		rec, _ := d.Job(id)
		if rec.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	rec := waitJobs(t, d, []string{id})[id]
	d.Stop()
	if rec.State != Cancelled {
		t.Fatalf("state = %s, want CANCELLED", rec.State)
	}
	if rec.Done <= 0 || rec.Done >= rec.Spec.Steps {
		t.Errorf("cancelled with done = %d of %d, want partial progress", rec.Done, rec.Spec.Steps)
	}
	if _, err := os.Stat(filepath.Join(JobDir(dir, id), TriageFile)); err != nil {
		t.Errorf("cancelled job has no triage report: %v", err)
	}
	// Cancelling a terminal job is a conflict.
	var se *Error
	if err := d.Cancel(id); !errors.As(err, &se) || se.Code != CodeConflict {
		t.Errorf("cancel of terminal job: err = %v, want %s", err, CodeConflict)
	}
}

// TestDaemonStateDirSingleWriter: a second daemon over the same state
// dir must fail fast with ErrLocked, not corrupt the first one's jobs.
func TestDaemonStateDirSingleWriter(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, 1)
	defer d1.Kill()
	_, err := New(Config{StateDir: dir, Fleet: 1, Logf: t.Logf})
	if !errors.Is(err, engine.ErrLocked) {
		t.Fatalf("second daemon: err = %v, want ErrLocked", err)
	}
}

// TestDaemonGracefulStopParksAndResumes: Stop releases locks and saves
// the ledger; a new daemon resumes the parked jobs to completion with
// results identical to an uninterrupted run.
func TestDaemonGracefulStopParksAndResumes(t *testing.T) {
	want := runUninterrupted(t, 2)

	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, 2)
	ids := submitAll(t, d1)
	go d1.Run()
	deadline := time.Now().Add(time.Minute)
	for {
		rec, _ := d1.Job(ids[1])
		if rec.Done > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	d1.Stop()

	d2 := newTestDaemon(t, dir, 1)
	go d2.Run()
	recs := waitJobs(t, d2, ids)
	d2.Stop()
	for id, rec := range recs {
		if rec.State != Done {
			t.Fatalf("job %s ended %s, want DONE", id, rec.State)
		}
		if got := artifactsFor(t, dir, rec); got != want[id] {
			t.Errorf("job %s diverged across graceful stop+resume", id)
		}
	}
}
