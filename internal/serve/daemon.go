package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators" // populate the mutator registry
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
	"github.com/icsnju/metamut-go/internal/serve/heal"
)

// Quotas bounds one tenant's service share. Zero values mean
// unlimited.
type Quotas struct {
	// MaxActiveJobs caps a tenant's non-terminal jobs.
	MaxActiveJobs int
	// MaxTotalSteps caps a tenant's lifetime submitted step budget.
	MaxTotalSteps int
}

// Config shapes a Daemon.
type Config struct {
	// StateDir holds the ledger and every job's state (required).
	StateDir string
	// Fleet is the shared worker-goroutine count each slice runs on
	// (default GOMAXPROCS via the engine). Throughput only — never
	// results.
	Fleet int
	// SliceEpochs is the preemption granularity: epochs a job runs
	// before the fleet may switch to another (default 1).
	SliceEpochs int
	// Quantum is the deficit-round-robin credit per tenant visit, in
	// steps (default 512).
	Quantum int
	// Quotas applies to every tenant.
	Quotas Quotas
	// Registry receives the serve_* families (nil disables telemetry).
	Registry *obs.Registry
	// Breaker tunes the admission circuit breaker: consecutive job
	// failures open it and submissions are deferred until a probe job
	// succeeds. Zero values take resil defaults.
	Breaker resil.BreakerConfig
	// Heal tunes the supervision layer: poison-job quarantine, overload
	// shedding, and disk-pressure degradation. Zero values take heal
	// defaults (overload shedding stays off until HighWaterJobs is set).
	Heal heal.Config
	// Chaos, when set, injects service-layer faults for the chaos
	// harness (see internal/resil/chaos.ServeInjector). Nil in
	// production.
	Chaos *ChaosHooks
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// ChaosHooks are the daemon's fault-injection points. Each hook may be
// nil; all are driven from the coordinator goroutine.
type ChaosHooks struct {
	// SliceStart runs at the top of every slice, before the campaign is
	// touched — a panic here is recoverable by construction and
	// exercises the slice supervision path.
	SliceStart func(jobSeq, attempt int)
	// CheckpointTransform is handed to every job's engine config
	// (rewrites or rejects checkpoint bytes per write attempt).
	CheckpointTransform func([]byte) ([]byte, error)
	// LedgerTransform rewrites or rejects ledger bytes per save.
	LedgerTransform func([]byte) ([]byte, error)
}

// job is one admitted job's live runtime. The coordinator goroutine
// owns camp/comp exclusively; rec and the flags are guarded by
// Daemon.mu (HTTP handlers read rec and the flight recorder only —
// never the campaign, which is mid-epoch most of the time).
type job struct {
	rec     *JobRecord
	dir     string
	camp    *engine.Campaign
	comp    *compilersim.Compiler
	frec    *flight.Recorder
	journal *os.File
	gate    *gateWriter // journal tap the disk governor can cap
	reg     *obs.Registry
	cancel  bool // cancellation requested; honored at the next barrier

	// slices counts slice attempts this daemon generation (the chaos
	// harness's per-job site counter; restart-relative by design).
	slices int
	// anoms tallies watchdog detections by kind since the last slice
	// verdict. Written by the flight OnAnomaly hook and read post-slice
	// — both on the coordinator goroutine, so no extra locking.
	anoms map[string]int
	// jerrNoted latches the job's first journal write error so the disk
	// governor books it as one fault, not one per slice forever.
	jerrNoted bool
}

// gateWriter wraps a job's journal file so disk-pressure degradation
// can flip it to discard mode (journal capped). The cap is one-way for
// a job's lifetime: resuming appends after a gap would corrupt the
// restart repair that trusts the journal to be a valid prefix.
type gateWriter struct {
	mu      sync.Mutex
	w       io.Writer
	discard bool
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.discard {
		return len(p), nil
	}
	return g.w.Write(p)
}

// SetDiscard caps the journal: writes report success and go nowhere.
func (g *gateWriter) SetDiscard(v bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.discard = v
}

// Daemon is the multi-tenant campaign coordinator.
type Daemon struct {
	cfg  Config
	m    metrics
	lock *engine.Lock // state-dir single-writer guard

	mu     sync.Mutex
	ledger *Ledger
	jobs   map[string]*job // live runtimes for non-terminal jobs
	drr    *drr
	heal   *heal.Supervisor

	breaker *resil.Breaker

	running atomic.Bool // Run entered; Stop/Kill tear down directly if not
	wake    chan struct{}
	stop    chan struct{}
	kill    chan struct{}
	done    chan struct{}
}

// New opens (or creates) the state directory, takes its single-writer
// lock, loads the ledger, and resumes every non-terminal job from its
// last checkpoint. Call Run to start serving slices.
func New(cfg Config) (*Daemon, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	if cfg.SliceEpochs <= 0 {
		cfg.SliceEpochs = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	lock, err := engine.AcquireLock(filepath.Join(cfg.StateDir, "daemon"))
	if err != nil {
		return nil, err
	}
	ledger, err := LoadLedger(cfg.StateDir)
	if err != nil {
		lock.Release()
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		m:       newMetrics(cfg.Registry),
		lock:    lock,
		ledger:  ledger,
		jobs:    map[string]*job{},
		drr:     newDRR(cfg.Quantum),
		heal:    heal.New(cfg.Heal, cfg.Registry),
		breaker: resil.NewBreaker(cfg.Breaker, nil),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		kill:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		lock.Release()
		return nil, err
	}
	d.refreshGauges()
	return d, nil
}

// recover rebuilds runtimes for every non-terminal ledger job: resumed
// from checkpoint when one exists, restarted from scratch when the
// daemon died before the first barrier, finalized directly when it
// died after the final barrier but before the bookkeeping.
func (d *Daemon) recover() error {
	recs := append([]*JobRecord(nil), d.ledger.Jobs...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	resumed := 0
	for _, rec := range recs {
		if rec.State.Terminal() {
			continue
		}
		j, err := d.buildRuntime(rec)
		if err != nil {
			rec.State = Failed
			rec.Error = err.Error()
			d.m.finished.With(string(Failed)).Inc()
			d.cfg.Logf("serve: job %s failed to recover: %v", rec.ID, err)
			continue
		}
		if j.camp.Finished() {
			// Killed between the final checkpoint and the terminal
			// bookkeeping: finish the paperwork now.
			d.finalizeComplete(j)
			resumed++
			continue
		}
		d.jobs[rec.ID] = j
		d.drr.Enqueue(rec.Tenant, rec.ID)
		if rec.Done > 0 || rec.State == Running {
			resumed++
		}
	}
	if resumed > 0 {
		d.m.resumed.Add(int64(resumed))
		d.cfg.Logf("serve: resumed %d jobs from %s", resumed, d.cfg.StateDir)
	}
	return d.ledger.Save(d.cfg.StateDir)
}

// buildRuntime constructs a job's isolated campaign — compiler, seed
// pool, mutator arsenal, flight recorder, engine — resuming from its
// checkpoint when one exists. The job's results depend only on its
// spec: the daemon contributes no randomness and no ordering.
func (d *Daemon) buildRuntime(rec *JobRecord) (*job, error) {
	spec := rec.Spec
	spec.Normalize()
	dir := JobDir(d.cfg.StateDir, rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ckptPath := filepath.Join(dir, CheckpointFile)
	ok := false

	version := 14
	if spec.Compiler == "clang" {
		version = 18
	}
	reg := obs.NewRegistry()
	fuzz.RegisterMetrics(reg)
	engine.RegisterMetrics(reg)
	sched.RegisterMetrics(reg)
	resil.RegisterMetrics(reg)
	flight.RegisterMetrics(reg)
	comp := compilersim.New(spec.Compiler, version)
	comp.Instrument(reg)
	comp.EnableMutantCache(4096)

	var mutators []*muast.Mutator
	switch spec.MutatorSet {
	case "s":
		mutators = muast.BySet(muast.Supervised)
	case "u":
		mutators = muast.BySet(muast.Unsupervised)
	default:
		mutators = muast.All()
	}
	pool := seeds.Generate(spec.SeedCount, spec.Seed)

	// A checkpoint on disk decides resume vs fresh start; either way
	// the journal is first repaired to exactly the barrier the
	// campaign will continue from.
	snap, usedPath, loadErr := engine.LoadWithFallback(ckptPath)
	journalPath := filepath.Join(dir, JournalFile)
	snapDone := 0
	var journalPrefix []byte
	if loadErr == nil {
		snapDone = snap.Done
		ckptData, err := os.ReadFile(usedPath)
		if err != nil {
			return nil, err
		}
		journalPrefix, err = repairJournal(journalPath, snap, len(ckptData))
		if err != nil {
			return nil, fmt.Errorf("serve: job %s journal repair: %w", rec.ID, err)
		}
	} else if !os.IsNotExist(loadErr) {
		d.cfg.Logf("serve: job %s checkpoint unreadable (%v); restarting from scratch", rec.ID, loadErr)
	}
	if loadErr != nil {
		// No usable checkpoint: the job restarts from step zero and the
		// journal with it.
		if err := atomicWrite(journalPath, nil); err != nil {
			return nil, err
		}
	}
	journalF, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer func() {
		if !ok {
			journalF.Close()
		}
	}()

	armNames := make([]string, len(mutators))
	for i, mu := range mutators {
		armNames[i] = mu.Name
	}
	gate := &gateWriter{w: journalF}
	if d.heal.CapJournals() {
		// Admitted mid-degradation: the journal starts (and stays)
		// capped so it never carries a gap.
		gate.SetDiscard(true)
		rec.JournalCapped = true
	}
	// anoms feeds the supervisor: the hook runs on the barrier goroutine
	// (the coordinator, mid-slice) and the post-slice verdict reads the
	// tally on the same goroutine.
	anoms := map[string]int{}
	frec := flight.NewRecorder(flight.Config{
		Streams:    spec.Streams,
		TotalSteps: spec.Steps,
		Seed:       spec.Seed,
		Done:       snapDone,
		Registry:   reg,
		Journal:    gate,
		ArmNames:   armNames,
		OnAnomaly: func(ev flight.Event) {
			if kind, _ := ev.Data["watchdog"].(string); kind != "" {
				anoms[kind]++
			}
		},
	})
	// The resumed recorder replays the repaired prefix so its anomaly
	// detectors' epoch counters and latches continue where the killed
	// run's left off — anomalies land at absolute journal positions.
	frec.RestoreWatchdogs(journalPrefix)
	for k := range anoms {
		delete(anoms, k)
	}

	mcfg := fuzz.DefaultMacroConfig()
	mcfg.StaticFilter = !spec.NoStatic
	var factoryErr error
	factory := func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) engine.Worker {
		w := fuzz.NewMacroFuzzer(fmt.Sprintf("%s-%d", rec.ID, stream), comp,
			mutators, pool, rng, cov, mcfg)
		s, serr := sched.New(spec.Sched, len(mutators))
		if serr != nil {
			factoryErr = serr
		} else {
			w.Sched = s
		}
		w.Stats().Instrument(reg)
		w.InstrumentSched(reg)
		w.AttachFlight(frec.Stream(stream))
		return w
	}
	ecfg := engine.Config{
		Streams:         spec.Streams,
		Workers:         d.cfg.Fleet,
		StepsPerEpoch:   spec.StepsPerEpoch,
		TotalSteps:      spec.Steps,
		Seed:            spec.Seed,
		CheckpointPath:  ckptPath,
		CheckpointEvery: 1,
		Registry:        reg,
		Flight:          frec,
	}
	if d.cfg.Chaos != nil {
		ecfg.CheckpointTransform = d.cfg.Chaos.CheckpointTransform
	}
	var camp *engine.Campaign
	if loadErr == nil {
		// The snapshot owns the identity fields.
		rcfg := ecfg
		rcfg.Seed, rcfg.Streams, rcfg.StepsPerEpoch = 0, 0, 0
		camp, err = engine.Resume(ckptPath, rcfg, factory)
	} else {
		camp = engine.New(ecfg, factory)
	}
	if err == nil {
		err = factoryErr
	}
	if err == nil {
		// New defers a lock failure to the first RunSlice; a daemon must
		// reject the job at admission instead.
		err = camp.LockErr()
	}
	if err != nil {
		if camp != nil {
			camp.Unlock()
		}
		return nil, err
	}
	ok = true
	return &job{
		rec: rec, dir: dir, camp: camp, comp: comp,
		frec: frec, journal: journalF, gate: gate, reg: reg,
		anoms: anoms,
	}, nil
}

// Submit admits a job: quota and breaker checks, ledger entry, runtime
// construction, scheduler enqueue. Returns the assigned job id.
func (d *Daemon) Submit(spec JobSpec) (string, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return "", &Error{Code: CodeBadSpec, Message: err.Error(), Status: 400}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if reason, retry, shed := d.heal.ShedAdmission(d.liveLocked()); shed {
		return "", &Error{Code: CodeOverloaded, Status: 503, RetryAfter: retry,
			Message: fmt.Sprintf(
				"serve: admission shed (%s); retry in %ds", reason, retry)}
	}
	if !d.breaker.Allow() {
		d.m.quota.With("admission").Inc()
		return "", &Error{Code: CodeAdmission, Status: 503, Message: fmt.Sprintf(
			"serve: admission breaker is %s after consecutive job failures; retry later",
			d.breaker.State())}
	}
	q := d.cfg.Quotas
	if q.MaxActiveJobs > 0 && d.ledger.Active(spec.Tenant) >= q.MaxActiveJobs {
		d.m.quota.With("concurrency").Inc()
		return "", &Error{Code: CodeQuotaConcurrency, Status: 429, Message: fmt.Sprintf(
			"serve: tenant %q already has %d active jobs (quota %d)",
			spec.Tenant, d.ledger.Active(spec.Tenant), q.MaxActiveJobs)}
	}
	if q.MaxTotalSteps > 0 && d.ledger.Committed(spec.Tenant)+spec.Steps > q.MaxTotalSteps {
		d.m.quota.With("steps").Inc()
		return "", &Error{Code: CodeQuotaSteps, Status: 429, Message: fmt.Sprintf(
			"serve: tenant %q has committed %d of %d lifetime steps; a %d-step job does not fit",
			spec.Tenant, d.ledger.Committed(spec.Tenant), q.MaxTotalSteps, spec.Steps)}
	}

	id := fmt.Sprintf("j%04d", d.ledger.NextSeq)
	rec := &JobRecord{
		ID: id, Seq: d.ledger.NextSeq, Tenant: spec.Tenant,
		State: Pending, Spec: spec,
	}
	d.ledger.NextSeq++
	// A torn ledger save can roll admissions back to the .prev
	// generation, re-issuing a sequence number whose job directory
	// already has artifacts. Wipe them: a fresh job must never resume a
	// forgotten job's checkpoint.
	dir := JobDir(d.cfg.StateDir, id)
	for _, f := range []string{
		CheckpointFile, CheckpointFile + engine.PrevSuffix,
		JournalFile, TriageFile, SpecFile,
	} {
		os.Remove(filepath.Join(dir, f))
	}
	j, err := d.buildRuntime(rec)
	if err != nil {
		return "", &Error{Code: CodeInternal, Status: 500, Message: err.Error()}
	}
	if data, merr := specJSON(spec); merr == nil {
		atomicWrite(filepath.Join(j.dir, SpecFile), data)
	}
	d.ledger.Jobs = append(d.ledger.Jobs, rec)
	d.ledger.Commit(spec.Tenant, spec.Steps)
	d.jobs[id] = j
	d.drr.Enqueue(spec.Tenant, id)
	d.saveLedgerLocked()
	d.m.submitted.Inc()
	d.refreshGauges()
	d.pingLocked()
	d.cfg.Logf("serve: job %s admitted (tenant %s, %d steps)", id, spec.Tenant, spec.Steps)
	return id, nil
}

// Cancel requests a job stop at its next barrier. Terminal jobs are a
// conflict; queued jobs cancel immediately.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := d.ledger.Job(id)
	if rec == nil {
		return &Error{Code: CodeNotFound, Status: 404, Message: fmt.Sprintf("serve: no job %s", id)}
	}
	if rec.State.Terminal() {
		return &Error{Code: CodeConflict, Status: 409, Message: fmt.Sprintf(
			"serve: job %s is already %s", id, rec.State)}
	}
	j := d.jobs[id]
	if j == nil {
		return &Error{Code: CodeInternal, Status: 500, Message: fmt.Sprintf(
			"serve: job %s has no runtime", id)}
	}
	j.cancel = true
	d.pingLocked()
	return nil
}

// Job returns a copy of the job's ledger record.
func (d *Daemon) Job(id string) (JobRecord, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := d.ledger.Job(id)
	if rec == nil {
		return JobRecord{}, false
	}
	return *rec, true
}

// Jobs returns record copies, optionally filtered by tenant, in
// submission order.
func (d *Daemon) Jobs(tenant string) []JobRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []JobRecord
	for _, rec := range d.ledger.Jobs {
		if tenant == "" || rec.Tenant == tenant {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Console returns the job's live flight console (nil for jobs with no
// runtime — terminal or unknown).
func (d *Daemon) Console(id string) *flight.ConsoleState {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.frec.Console()
}

// Run executes the coordinator loop until Stop (graceful) or Kill
// (abandon). It is the only goroutine that touches campaigns.
func (d *Daemon) Run() {
	d.running.Store(true)
	defer close(d.done)
	defer func() {
		if r := recover(); r != nil {
			d.cfg.Logf("serve: coordinator panicked: %v (state is durable; restart the daemon)", r)
		}
	}()
	for {
		select {
		case <-d.kill:
			return
		case <-d.stop:
			d.shutdown()
			return
		default:
		}
		d.mu.Lock()
		d.governLocked()
		id := d.drr.Next(d.sliceCostLocked)
		if id == "" {
			d.mu.Unlock()
			select {
			case <-d.wake:
			case <-d.stop:
				continue
			case <-d.kill:
				continue
			}
			continue
		}
		j := d.jobs[id]
		if j == nil {
			// Finalized while queued (shouldn't happen — finalize
			// removes from the scheduler — but never crash the loop).
			d.mu.Unlock()
			continue
		}
		if j.cancel {
			d.finalizeLocked(j, Cancelled, nil)
			d.mu.Unlock()
			continue
		}
		if j.rec.State == Pending {
			j.rec.State = Running
			d.saveLedgerLocked()
		}
		// The disk governor's checkpoint cadence applies between
		// slices, from this goroutine only — the campaign is quiescent.
		j.camp.SetCheckpointEvery(d.heal.CheckpointEvery())
		d.mu.Unlock()

		// The slice runs outside the daemon lock: status reads stay
		// responsive while the fleet fuzzes. Only this goroutine
		// touches the campaign.
		fin, err := d.runSlice(j)

		d.mu.Lock()
		d.m.slices.Inc()
		d.heal.TickSlice()
		prev := j.rec.Done
		d.refreshRecordLocked(j)
		d.m.steps.Add(int64(j.rec.Done - prev))
		d.noteSliceHealthLocked(j, err)
		quar, cause := d.strikeLocked(j, err, fin)
		switch {
		case quar:
			d.finalizeLocked(j, Quarantined, cause)
			d.breaker.Failure()
		case err != nil:
			// Faulted but under the strike limit: the job stays
			// scheduled and its next slice replays from the last
			// barrier.
			d.cfg.Logf("serve: job %s slice fault (strike %d/%d): %v",
				j.rec.ID, d.heal.Strikes(j.rec.ID), d.heal.Config().StrikeLimit, err)
			d.saveLedgerLocked()
		case j.cancel:
			d.finalizeLocked(j, Cancelled, nil)
		case fin:
			d.finalizeLocked(j, Done, nil)
			d.breaker.Success()
		default:
			d.saveLedgerLocked()
		}
		d.mu.Unlock()
	}
}

// liveLocked counts non-terminal ledger jobs. Callers hold d.mu.
func (d *Daemon) liveLocked() int {
	n := 0
	for _, rec := range d.ledger.Jobs {
		if !rec.State.Terminal() {
			n++
		}
	}
	return n
}

// governLocked re-evaluates the overload pause plan before every
// scheduling decision. The plan always leaves at least the tenant
// floor runnable, so pending work is never stranded behind a pause.
// Callers hold d.mu.
func (d *Daemon) governLocked() {
	before := d.drr.Paused()
	plan := d.heal.PausePlan(d.liveLocked(), d.drr.Loads())
	d.drr.SetPaused(plan)
	if len(plan) != len(before) {
		d.cfg.Logf("serve: overload pause plan now %v", plan)
	}
}

// saveLedgerLocked persists the ledger through the chaos hook (when
// armed) and books a save failure as disk pressure. Callers hold d.mu.
func (d *Daemon) saveLedgerLocked() {
	var transform func([]byte) ([]byte, error)
	if d.cfg.Chaos != nil {
		transform = d.cfg.Chaos.LedgerTransform
	}
	if err := d.ledger.SaveWith(d.cfg.StateDir, transform); err != nil {
		d.cfg.Logf("serve: ledger save: %v", err)
		d.diskFaultLocked("ledger")
	}
}

// noteSliceHealthLocked feeds the disk governor one slice's verdict:
// checkpoint write failures and the job's first journal write error
// are faults; a slice with neither is clean. Callers hold d.mu; the
// campaign is quiescent.
func (d *Daemon) noteSliceHealthLocked(j *job, err error) {
	if errors.Is(err, errSlicePanicked) {
		// The campaign was never entered (or died before its barrier):
		// LastSlice is the previous slice's report, and a panic says
		// nothing about the disk either way.
		return
	}
	sr := j.camp.LastSlice()
	faulted := false
	if sr.CheckpointFailures > 0 {
		faulted = true
		d.cfg.Logf("serve: job %s: %d checkpoint write failures (last: %v)",
			j.rec.ID, sr.CheckpointFailures, sr.CheckpointErr)
		d.diskFaultLocked("checkpoint")
	}
	if !j.jerrNoted {
		if jerr := j.frec.JournalErr(); jerr != nil {
			j.jerrNoted = true
			faulted = true
			d.cfg.Logf("serve: job %s: journal write error: %v", j.rec.ID, jerr)
			d.diskFaultLocked("journal")
		}
	}
	if !faulted {
		if lvl, down := d.heal.CleanSlice(); down {
			d.applyDiskLevelLocked(lvl)
		}
	}
}

// diskFaultLocked books one disk fault and applies any resulting
// escalation. Callers hold d.mu.
func (d *Daemon) diskFaultLocked(kind string) {
	if lvl, up := d.heal.DiskFault(kind); up {
		d.applyDiskLevelLocked(lvl)
	}
}

// applyDiskLevelLocked enacts a degradation-level change on every live
// job: at shed_sse and above, live journal taps are dropped (and
// subscribe refuses new ones); at cap_journals and above, journals go
// discard-only — one-way per job. Checkpoint stretching and admission
// quarantine are enforced at their use sites. Callers hold d.mu.
func (d *Daemon) applyDiskLevelLocked(lvl heal.Level) {
	d.cfg.Logf("serve: disk-pressure level now %s", lvl)
	ids := make([]string, 0, len(d.jobs))
	for id := range d.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := d.jobs[id]
		if lvl >= heal.LevelShedSSE {
			if n := j.frec.DropSubscribers(); n > 0 {
				d.cfg.Logf("serve: job %s: dropped %d live journal taps", id, n)
			}
		}
		if lvl >= heal.LevelCapJournals && !j.rec.JournalCapped {
			j.gate.SetDiscard(true)
			j.rec.JournalCapped = true
			d.cfg.Logf("serve: job %s: flight journal capped", id)
		}
	}
}

// strikeLocked turns one slice's outcome into supervision strikes and
// reports whether the job crossed the quarantine threshold (with the
// terminal cause). Cause order is fixed — slice verdict, stream
// poisons, then strike-listed anomalies sorted by kind — so the strike
// schedule is a pure function of the slice sequence. Callers hold d.mu.
func (d *Daemon) strikeLocked(j *job, err error, fin bool) (bool, error) {
	sr := j.camp.LastSlice()
	var causes []string
	switch {
	case errors.Is(err, errSlicePanicked):
		causes = append(causes, "slice_panic")
	case err != nil && sr.CheckpointErr != nil:
		causes = append(causes, "checkpoint_error")
	case err != nil:
		causes = append(causes, "slice_error")
	}
	if err == nil && !fin && sr.Poisoned > 0 {
		causes = append(causes, "stream_poison")
	}
	kinds := make([]string, 0, len(j.anoms))
	for k := range j.anoms {
		if d.heal.AnomalyStrikes(k) {
			kinds = append(kinds, k)
		}
		delete(j.anoms, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		causes = append(causes, "anomaly_"+k)
	}
	for _, cause := range causes {
		if d.heal.StrikeJob(j.rec.ID, cause) {
			j.rec.Strikes = d.heal.Strikes(j.rec.ID)
			if err != nil {
				return true, fmt.Errorf("quarantined after %d strikes (%s): %w",
					j.rec.Strikes, cause, err)
			}
			return true, fmt.Errorf("quarantined after %d strikes (%s)",
				j.rec.Strikes, cause)
		}
	}
	if len(causes) > 0 {
		j.rec.Strikes = d.heal.Strikes(j.rec.ID)
	}
	return false, nil
}

// errSlicePanicked marks a slice ended by a recovered panic, so the
// supervisor can book the strike under its own cause.
var errSlicePanicked = errors.New("job slice panicked")

// runSlice executes one preemption slice under supervision: a panic
// that escapes the engine's own guards strikes the job, never the
// daemon. The chaos hook fires before the campaign is touched, so an
// injected panic is recoverable by construction — the retried slice
// replays from the same barrier.
func (d *Daemon) runSlice(j *job) (fin bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errSlicePanicked, r)
		}
	}()
	attempt := j.slices
	j.slices++
	if d.cfg.Chaos != nil && d.cfg.Chaos.SliceStart != nil {
		d.cfg.Chaos.SliceStart(j.rec.Seq, attempt)
	}
	return j.camp.RunSlice(context.Background(), d.cfg.SliceEpochs)
}

// sliceCostLocked prices a job's next slice for the fair scheduler:
// its per-epoch step plan times the slice length, clamped to the
// remaining budget. Callers hold d.mu.
func (d *Daemon) sliceCostLocked(id string) int {
	j := d.jobs[id]
	if j == nil {
		return 1
	}
	spec := j.rec.Spec
	per := spec.Streams * spec.StepsPerEpoch * d.cfg.SliceEpochs
	if rem := spec.Steps - j.rec.Done; per > rem {
		per = rem
	}
	return per
}

// refreshRecordLocked mirrors the campaign's barrier state into the
// durable record. Callers hold d.mu; the campaign must be quiescent
// (between slices).
func (d *Daemon) refreshRecordLocked(j *job) {
	j.rec.Done = j.camp.Done()
	j.rec.Epochs = j.camp.Epoch()
	agg := j.camp.MergedStats()
	j.rec.Edges = agg.Coverage.Count()
	j.rec.Crashes = len(agg.Crashes)
	if n := j.frec.Dropped(); n > j.rec.SSEDropped {
		d.m.sseDropped.Add(n - j.rec.SSEDropped)
		j.rec.SSEDropped = n
	}
}

// finalizeLocked retires a job: terminal flight event (unless the
// engine already journaled completion), triage report, journal close,
// lock release, scheduler removal, ledger update. Callers hold d.mu
// and must be the coordinator goroutine (the campaign is touched).
func (d *Daemon) finalizeLocked(j *job, state JobState, cause error) {
	d.refreshRecordLocked(j)
	if state != Done {
		// An interrupted job's journal gets its end event here — the
		// engine only journals completion for spent budgets.
		j.frec.End(j.rec.Done, j.rec.Edges, j.rec.Crashes)
	}
	d.writeTriage(j)
	j.journal.Close()
	j.camp.Unlock()
	d.drr.Remove(j.rec.Tenant, j.rec.ID)
	delete(d.jobs, j.rec.ID)
	j.rec.State = state
	if cause != nil {
		j.rec.Error = cause.Error()
	}
	d.m.finished.With(string(state)).Inc()
	d.refreshGauges()
	d.saveLedgerLocked()
	d.cfg.Logf("serve: job %s %s (%d/%d steps, %d edges, %d crashes)",
		j.rec.ID, state, j.rec.Done, j.rec.Spec.Steps, j.rec.Edges, j.rec.Crashes)
}

// finalizeComplete finishes the paperwork for a job whose campaign
// completed before a kill wiped the bookkeeping: reconstruct the
// journal's end event, re-run triage, mark DONE. Called from recover
// (coordinator not yet running).
func (d *Daemon) finalizeComplete(j *job) {
	d.refreshRecordLocked(j)
	j.journal.Close()
	if err := appendEndEvent(filepath.Join(j.dir, JournalFile),
		j.camp.Epoch(), j.rec.Done, j.rec.Edges, j.rec.Crashes); err != nil {
		d.cfg.Logf("serve: job %s end-event repair: %v", j.rec.ID, err)
	}
	d.writeTriage(j)
	j.camp.Unlock()
	j.rec.State = Done
	d.m.finished.With(string(Done)).Inc()
	d.cfg.Logf("serve: job %s completed before restart; bookkeeping finished", j.rec.ID)
}

// writeTriage renders and persists the job's triage report. Guarded:
// a triage panic after a failed slice must not take the daemon down.
func (d *Daemon) writeTriage(j *job) {
	defer func() {
		if r := recover(); r != nil {
			d.cfg.Logf("serve: job %s triage panicked: %v", j.rec.ID, r)
		}
	}()
	rep := j.camp.Triage(j.comp, engine.TriageConfig{
		Reduce:   j.rec.Spec.Reduce,
		Registry: j.reg,
	})
	if err := rep.WriteJSON(filepath.Join(j.dir, TriageFile)); err != nil {
		d.cfg.Logf("serve: job %s triage write: %v", j.rec.ID, err)
	}
}

// refreshGauges recomputes the active-job and tenant gauges from the
// ledger. Callers hold d.mu (or run before the loop starts).
func (d *Daemon) refreshGauges() {
	active := 0
	tenants := map[string]bool{}
	for _, rec := range d.ledger.Jobs {
		if !rec.State.Terminal() {
			active++
			tenants[rec.Tenant] = true
		}
	}
	d.m.active.Set(int64(active))
	d.m.tenants.Set(int64(len(tenants)))
}

// pingLocked wakes the coordinator if it is parked. Callers hold d.mu.
func (d *Daemon) pingLocked() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Stop shuts the coordinator down gracefully: the in-flight slice
// finishes (checkpointing at its barrier), every live job's journal is
// flushed closed, locks release, and the ledger is saved. A daemon
// whose Run never started (e.g. its listener failed to bind) tears
// down directly; Stop must not race Run's first instruction. The
// daemon cannot be restarted in-process; build a new one over the
// state dir.
func (d *Daemon) Stop() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	if !d.running.Load() {
		d.shutdown()
		return
	}
	<-d.done
}

// shutdown is Stop's loop-side half: persist and release everything.
func (d *Daemon) shutdown() {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.jobs))
	for id := range d.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := d.jobs[id]
		j.journal.Close()
		j.camp.Unlock()
	}
	if err := d.ledger.Save(d.cfg.StateDir); err != nil {
		d.cfg.Logf("serve: ledger save: %v", err)
	}
	d.lock.Release()
	d.cfg.Logf("serve: daemon stopped (%d jobs parked at their barriers)", len(ids))
}

// Kill abandons the coordinator without any graceful bookkeeping — the
// test double for SIGKILL. The in-flight slice (if any) completes
// first (the loop only observes the kill between slices), then
// everything is dropped on the floor: no ledger save, no journal
// close, no triage. Lock files are removed — the one cleanup a real
// process death performs implicitly, since a dead pid's locks are
// stale-stealable while this still-live test process's are not.
func (d *Daemon) Kill() {
	select {
	case <-d.kill:
	default:
		close(d.kill)
	}
	d.pingLockedUnguarded()
	if d.running.Load() {
		<-d.done
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, j := range d.jobs {
		j.camp.Unlock()
	}
	d.lock.Release()
}

// pingLockedUnguarded wakes a parked loop without holding d.mu (Kill
// and Stop race the park legitimately; the channel is buffered).
func (d *Daemon) pingLockedUnguarded() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}
