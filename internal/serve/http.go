package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"github.com/icsnju/metamut-go/internal/flight"
)

// Error codes carried in structured API error responses. Quota
// rejections and admission deferrals are distinguishable from spec
// mistakes so clients can decide between "fix the request" and "retry
// later".
const (
	CodeBadSpec          = "bad_spec"
	CodeQuotaConcurrency = "quota_concurrency"
	CodeQuotaSteps       = "quota_steps"
	CodeAdmission        = "admission_deferred"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeInternal         = "internal"
	CodeOverloaded       = "overloaded"
)

// Error is the service's structured error: a machine-readable code,
// a human message, and the HTTP status it maps to. It serializes as
//
//	{"error": {"code": "quota_steps", "message": "..."}}
//
// Overload sheds additionally carry RetryAfter, a hint in seconds the
// handler mirrors into a Retry-After header.
type Error struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
	Status     int    `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// writeError renders any error as the structured JSON shape; non-*Error
// causes become internal errors.
func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if !errors.As(err, &se) {
		se = &Error{Code: CodeInternal, Message: err.Error(), Status: 500}
	}
	w.Header().Set("Content-Type", "application/json")
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
	}
	w.WriteHeader(se.Status)
	json.NewEncoder(w).Encode(map[string]*Error{"error": se})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// StatusResponse is GET /jobs/{id}/status: the durable record plus —
// for live jobs — the flight console snapshot.
type StatusResponse struct {
	Job     JobRecord            `json:"job"`
	Console *flight.ConsoleState `json:"console,omitempty"`
}

// SubmitResponse is POST /jobs.
type SubmitResponse struct {
	ID string `json:"id"`
}

// Health is GET /healthz.
type Health struct {
	ActiveJobs int    `json:"active_jobs"`
	Tenants    int    `json:"tenants"`
	Breaker    string `json:"breaker"`
	// DiskLevel is the supervisor's disk-pressure degradation rung
	// ("nominal" when healthy; see internal/serve/heal).
	DiskLevel string `json:"disk_level"`
	// PausedTenants lists tenants benched by the overload governor.
	PausedTenants []string `json:"paused_tenants,omitempty"`
}

// subscribe taps a live job's flight journal. Terminal jobs have no
// live feed — their full journal is on disk and in /results.
func (d *Daemon) subscribe(id string) (<-chan []byte, func(), error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec := d.ledger.Job(id)
	if rec == nil {
		return nil, nil, &Error{Code: CodeNotFound, Status: 404, Message: fmt.Sprintf("serve: no job %s", id)}
	}
	j := d.jobs[id]
	if j == nil {
		return nil, nil, &Error{Code: CodeConflict, Status: 409, Message: fmt.Sprintf(
			"serve: job %s is %s; its journal is complete (see /jobs/%s/results)", id, rec.State, id)}
	}
	if d.heal.ShedSSE() {
		return nil, nil, &Error{Code: CodeOverloaded, Status: 503,
			RetryAfter: d.heal.Config().RetryAfterSeconds,
			Message: fmt.Sprintf("serve: live journal taps shed (disk level %s)",
				d.heal.Level())}
	}
	ch, cancel := j.frec.Subscribe()
	return ch, cancel, nil
}

// Handler mounts the service API:
//
//	POST /jobs              submit a JobSpec, returns {"id": ...}
//	GET  /jobs[?tenant=T]   list job records
//	GET  /jobs/{id}         one job record
//	GET  /jobs/{id}/status  record + live flight console
//	GET  /jobs/{id}/stream  SSE flight journal feed (live jobs)
//	POST /jobs/{id}/cancel  stop at the next barrier
//	GET  /jobs/{id}/results triage report (terminal jobs)
//	GET  /healthz           daemon health
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleList)
	mux.HandleFunc("GET /jobs/{id}", d.handleJob)
	mux.HandleFunc("GET /jobs/{id}/status", d.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", d.handleStream)
	mux.HandleFunc("POST /jobs/{id}/cancel", d.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/results", d.handleResults)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, &Error{Code: CodeBadSpec, Status: 400, Message: "serve: bad job spec JSON: " + err.Error()})
		return
	}
	id, err := d.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResponse{ID: id})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := d.Jobs(r.URL.Query().Get("tenant"))
	if jobs == nil {
		jobs = []JobRecord{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, ok := d.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &Error{Code: CodeNotFound, Status: 404, Message: "serve: no job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := d.Job(id)
	if !ok {
		writeError(w, &Error{Code: CodeNotFound, Status: 404, Message: "serve: no job " + id})
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{Job: rec, Console: d.Console(id)})
}

// handleStream reuses the flight journal encoder: each SSE data payload
// is exactly one journal line, same as /debug/campaign/stream.
func (d *Daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := d.subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &Error{Code: CodeInternal, Status: 500, Message: "serve: streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, ": flight journal stream\n\n")
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case line, open := <-ch:
			if !open {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			flusher.Flush()
		}
	}
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := d.Cancel(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

// handleResults serves the persisted triage report. Only terminal jobs
// have one — a live job's answer is still being computed.
func (d *Daemon) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := d.Job(id)
	if !ok {
		writeError(w, &Error{Code: CodeNotFound, Status: 404, Message: "serve: no job " + id})
		return
	}
	if !rec.State.Terminal() {
		writeError(w, &Error{Code: CodeConflict, Status: 409, Message: fmt.Sprintf(
			"serve: job %s is %s; results arrive in a terminal state", id, rec.State)})
		return
	}
	data, err := os.ReadFile(filepath.Join(JobDir(d.cfg.StateDir, id), TriageFile))
	if err != nil {
		writeError(w, &Error{Code: CodeInternal, Status: 500, Message: "serve: triage report unavailable: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (d *Daemon) handleHealth(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	active := 0
	tenants := map[string]bool{}
	for _, rec := range d.ledger.Jobs {
		if !rec.State.Terminal() {
			active++
			tenants[rec.Tenant] = true
		}
	}
	h := Health{
		ActiveJobs:    active,
		Tenants:       len(tenants),
		Breaker:       d.breaker.State().String(),
		DiskLevel:     d.heal.Level().String(),
		PausedTenants: d.drr.Paused(),
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}
