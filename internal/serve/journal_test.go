package serve

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/icsnju/metamut-go/internal/engine"
)

const (
	jlEpoch1 = `{"epoch":1,"stream":0,"kind":"epoch","data":{"done":16}}` + "\n"
	jlCkpt1  = `{"epoch":1,"stream":-1,"kind":"checkpoint","data":{"bytes":90,"done":16}}` + "\n"
	jlEpoch2 = `{"epoch":2,"stream":0,"kind":"epoch","data":{"done":32}}` + "\n"
	jlCkpt2  = `{"epoch":2,"stream":-1,"kind":"checkpoint","data":{"bytes":111,"done":32}}` + "\n"
	jlEpoch3 = `{"epoch":3,"stream":0,"kind":"epoch","data":{"done":48}}` + "\n"
	jlEnd    = `{"epoch":3,"stream":-1,"kind":"end","data":{"crashes":1,"done":48,"edges":9}}` + "\n"
)

func writeJournal(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), JournalFile)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readJournal(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRepairDropsEpochsPastCheckpoint(t *testing.T) {
	// Killed after journaling epoch 3 but the surviving checkpoint is at
	// epoch 2: the resumed campaign re-executes epoch 3 and re-journals
	// it, so repair must drop the stale copy (and the stale end event).
	path := writeJournal(t, jlEpoch1+jlCkpt1+jlEpoch2+jlCkpt2+jlEpoch3+jlEnd)
	snap := &engine.Snapshot{Epoch: 2, Done: 32}
	if _, err := repairJournal(path, snap, 111); err != nil {
		t.Fatal(err)
	}
	want := jlEpoch1 + jlCkpt1 + jlEpoch2 + jlCkpt2
	if got := readJournal(t, path); got != want {
		t.Errorf("repaired journal:\n%qwant:\n%q", got, want)
	}
}

func TestRepairDropsTornTrailingLine(t *testing.T) {
	torn := `{"epoch":3,"stream":0,"ki`
	path := writeJournal(t, jlEpoch1+jlCkpt1+jlEpoch2+jlCkpt2+torn)
	snap := &engine.Snapshot{Epoch: 2, Done: 32}
	if _, err := repairJournal(path, snap, 111); err != nil {
		t.Fatal(err)
	}
	want := jlEpoch1 + jlCkpt1 + jlEpoch2 + jlCkpt2
	if got := readJournal(t, path); got != want {
		t.Errorf("repaired journal:\n%qwant:\n%q", got, want)
	}
}

func TestRepairReappendsMissingConfirmation(t *testing.T) {
	// Killed between the checkpoint file install and its journal
	// confirmation line: repair reconstructs the line bit-for-bit from
	// the snapshot, so the continued journal matches an uninterrupted
	// run's.
	path := writeJournal(t, jlEpoch1+jlCkpt1+jlEpoch2)
	snap := &engine.Snapshot{Epoch: 2, Done: 32}
	if _, err := repairJournal(path, snap, 111); err != nil {
		t.Fatal(err)
	}
	want := jlEpoch1 + jlCkpt1 + jlEpoch2 + jlCkpt2
	if got := readJournal(t, path); got != want {
		t.Errorf("repaired journal:\n%qwant:\n%q", got, want)
	}
}

func TestRepairFreshStartTruncatesNothing(t *testing.T) {
	// No checkpoint progress (snap.Done 0 never happens in practice —
	// the engine checkpoints only after an epoch — but repair must not
	// invent a confirmation for it).
	path := writeJournal(t, "")
	snap := &engine.Snapshot{Epoch: 0, Done: 0}
	if _, err := repairJournal(path, snap, 50); err != nil {
		t.Fatal(err)
	}
	if got := readJournal(t, path); got != "" {
		t.Errorf("repaired empty journal = %q, want empty", got)
	}
}

func TestAppendEndEvent(t *testing.T) {
	path := writeJournal(t, jlEpoch1+jlCkpt1)
	if err := appendEndEvent(path, 3, 48, 9, 1); err != nil {
		t.Fatal(err)
	}
	want := jlEpoch1 + jlCkpt1 + jlEnd
	if got := readJournal(t, path); got != want {
		t.Errorf("after appendEndEvent:\n%qwant:\n%q", got, want)
	}
}
