package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// contract spins up a daemon with its coordinator loop and an httptest
// server over its Handler, plus a Client pointed at it.
func contract(t *testing.T, quotas Quotas) (*Daemon, *Client) {
	t.Helper()
	d, err := New(Config{StateDir: t.TempDir(), Fleet: 1, Quotas: quotas, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		d.Kill()
		srv.Close()
	})
	go d.Run()
	return d, &Client{Addr: srv.URL}
}

func wantAPIError(t *testing.T, err error, code string, status int) {
	t.Helper()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *serve.Error %s/%d", err, err, code, status)
	}
	if se.Code != code || se.Status != status {
		t.Fatalf("err = %s/%d (%s), want %s/%d", se.Code, se.Status, se.Message, code, status)
	}
}

// TestHTTPContract drives every endpoint through the thin client: the
// full submit → status → stream → results lifecycle plus each error
// shape a tenant can trigger.
func TestHTTPContract(t *testing.T) {
	_, c := contract(t, Quotas{MaxActiveJobs: 2, MaxTotalSteps: 100000})

	// Unknown job: 404 not_found everywhere.
	_, err := c.Job("j9999")
	wantAPIError(t, err, CodeNotFound, 404)
	_, err = c.Status("j9999")
	wantAPIError(t, err, CodeNotFound, 404)
	err = c.Cancel("j9999")
	wantAPIError(t, err, CodeNotFound, 404)
	_, err = c.Results("j9999")
	wantAPIError(t, err, CodeNotFound, 404)

	// Invalid spec: 400 bad_spec.
	bad := testSpec("alpha", 1, 64)
	bad.Sched = "psychic"
	_, err = c.Submit(bad)
	wantAPIError(t, err, CodeBadSpec, 400)

	// Happy path: submit, observe, wait, fetch results.
	id, err := c.Submit(testSpec("alpha", 5, 160))
	if err != nil {
		t.Fatal(err)
	}
	if id != "j0001" {
		t.Errorf("first job id = %q, want j0001", id)
	}
	rec, err := c.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "alpha" || rec.Spec.Steps != 160 {
		t.Errorf("record = %+v, want tenant alpha, 160 steps", rec)
	}
	// Results before terminal: 409 conflict.
	if _, err := c.Results(id); err != nil {
		wantAPIError(t, err, CodeConflict, 409)
	} else if r, _ := c.Job(id); !r.State.Terminal() {
		t.Error("results served for a non-terminal job")
	}

	final, err := c.Wait(id, time.Millisecond, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Done != 160 {
		t.Fatalf("final record = %+v, want DONE with 160 steps", final)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Job.State != Done {
		t.Errorf("status job state = %s, want DONE", st.Job.State)
	}
	raw, err := c.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Streams int `json:"streams"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("results are not JSON: %v", err)
	}
	if res.Streams != rec.Spec.Streams {
		t.Errorf("triage streams = %d, want %d", res.Streams, rec.Spec.Streams)
	}

	// Terminal job: stream 409, cancel 409.
	err = c.Cancel(id)
	wantAPIError(t, err, CodeConflict, 409)

	// List with and without tenant filter.
	if _, err := c.Submit(testSpec("beta", 6, 64)); err != nil {
		t.Fatal(err)
	}
	all, err := c.Jobs("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("list = %d jobs, want 2", len(all))
	}
	beta, err := c.Jobs("beta")
	if err != nil {
		t.Fatal(err)
	}
	if len(beta) != 1 || beta[0].Tenant != "beta" {
		t.Errorf("tenant filter returned %+v, want beta's one job", beta)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Breaker != "closed" {
		t.Errorf("health breaker = %q, want closed", h.Breaker)
	}
}

// TestHTTPQuotaRejection: quota errors surface over the wire with
// their structured code and 429.
func TestHTTPQuotaRejection(t *testing.T) {
	_, c := contract(t, Quotas{MaxTotalSteps: 100})
	_, err := c.Submit(testSpec("alpha", 1, 101))
	wantAPIError(t, err, CodeQuotaSteps, 429)
}

// TestHTTPCancelDuringEpoch cancels over the wire while the fleet is
// mid-campaign and polls the public API to the CANCELLED state.
func TestHTTPCancelDuringEpoch(t *testing.T) {
	_, c := contract(t, Quotas{})
	id, err := c.Submit(testSpec("alpha", 9, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		rec, err := c.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(id, time.Millisecond, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Cancelled {
		t.Fatalf("state after cancel = %s, want CANCELLED", final.State)
	}
	if _, err := c.Results(id); err != nil {
		t.Errorf("cancelled job has no results: %v", err)
	}
}

// TestHTTPStreamSSE taps a live job's journal feed and checks the SSE
// framing: a comment header, then one journal line per data frame.
func TestHTTPStreamSSE(t *testing.T) {
	d, c := contract(t, Quotas{})
	id, err := c.Submit(testSpec("alpha", 3, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", c.url("/jobs/"+id+"/stream"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream response = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("first SSE line = %q, want comment header", sc.Text())
	}
	var ev struct {
		Kind string `json:"kind"`
	}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("SSE data frame is not a journal line: %q (%v)", line, err)
		}
		break
	}
	if ev.Kind == "" {
		t.Fatalf("no data frame before stream end: %v", sc.Err())
	}
	cancel() // client hangs up; the handler must unwind

	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(id, time.Millisecond, time.Minute, nil); err != nil {
		t.Fatal(err)
	}
	// Terminal job: the live feed is gone, 409 points at /results.
	resp2, err := http.Get(c.url("/jobs/" + id + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 409 {
		t.Fatalf("stream of terminal job = %d, want 409", resp2.StatusCode)
	}
}
