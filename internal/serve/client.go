package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/icsnju/metamut-go/internal/resil"
)

// Client is the thin HTTP client the CLIs use to speak to a daemon.
// It speaks exactly the JobSpec/JobRecord schema the daemon persists —
// there is no separate wire format to drift.
type Client struct {
	// Addr is the daemon address, with or without the http:// scheme.
	Addr string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retry, when set, retries idempotent (GET) requests that fail at
	// the transport layer — refused connections while a daemon restarts
	// mid-watch, not HTTP error responses — with the policy's bounded
	// seeded backoff. POSTs are never retried: a submit or cancel whose
	// response was lost may still have been applied.
	Retry *resil.Policy
	// RetrySeed seeds the backoff jitter (0 is a valid seed).
	RetrySeed int64
}

func (c *Client) url(path string) string {
	addr := c.Addr
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/") + path
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one request and decodes the JSON response into out (nil out
// returns the raw body instead). Structured API errors come back as
// *Error with their code and status intact. With Retry set, transport
// failures on GETs are retried under the policy's backoff; the last
// error surfaces when attempts run out.
func (c *Client) do(method, path string, body, out any) ([]byte, error) {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = data
	}
	var retrier *resil.Retrier
	if c.Retry != nil && method == http.MethodGet {
		retrier = c.Retry.Retrier("serve_client", c.RetrySeed)
	}
	var resp *http.Response
	for {
		var reqBody io.Reader
		if payload != nil {
			reqBody = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.url(path), reqBody)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = c.http().Do(req)
		if err == nil {
			break
		}
		if retrier == nil {
			return nil, err
		}
		delay, ok := retrier.Next()
		if !ok {
			return nil, err
		}
		time.Sleep(delay)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var wrapped struct {
			Error *Error `json:"error"`
		}
		if json.Unmarshal(data, &wrapped) == nil && wrapped.Error != nil {
			wrapped.Error.Status = resp.StatusCode
			return nil, wrapped.Error
		}
		return nil, fmt.Errorf("serve: %s %s: %s: %s", method, path,
			resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return data, nil
	}
	return data, json.Unmarshal(data, out)
}

// Submit posts a job spec and returns the assigned id.
func (c *Client) Submit(spec JobSpec) (string, error) {
	var resp SubmitResponse
	_, err := c.do("POST", "/jobs", spec, &resp)
	return resp.ID, err
}

// Job fetches one job record.
func (c *Client) Job(id string) (JobRecord, error) {
	var rec JobRecord
	_, err := c.do("GET", "/jobs/"+id, nil, &rec)
	return rec, err
}

// Jobs lists job records, optionally for one tenant.
func (c *Client) Jobs(tenant string) ([]JobRecord, error) {
	path := "/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var recs []JobRecord
	_, err := c.do("GET", path, nil, &recs)
	return recs, err
}

// Status fetches the record plus the live flight console.
func (c *Client) Status(id string) (StatusResponse, error) {
	var st StatusResponse
	_, err := c.do("GET", "/jobs/"+id+"/status", nil, &st)
	return st, err
}

// Cancel asks the daemon to stop the job at its next barrier.
func (c *Client) Cancel(id string) error {
	_, err := c.do("POST", "/jobs/"+id+"/cancel", nil, nil)
	return err
}

// Results fetches a terminal job's triage report (raw JSON).
func (c *Client) Results(id string) ([]byte, error) {
	return c.do("GET", "/jobs/"+id+"/results", nil, nil)
}

// Health fetches daemon health.
func (c *Client) Health() (Health, error) {
	var h Health
	_, err := c.do("GET", "/healthz", nil, &h)
	return h, err
}

// Wait polls until the job reaches a terminal state (or timeout ≤ 0 for
// no limit), invoking tick — if non-nil — with each observed record.
func (c *Client) Wait(id string, interval, timeout time.Duration, tick func(JobRecord)) (JobRecord, error) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		rec, err := c.Job(id)
		if err != nil {
			return rec, err
		}
		if tick != nil {
			tick(rec)
		}
		if rec.State.Terminal() {
			return rec, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return rec, fmt.Errorf("serve: job %s still %s after %s", id, rec.State, timeout)
		}
		time.Sleep(interval)
	}
}
