package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// LedgerVersion guards the on-disk ledger format.
const LedgerVersion = 1

// JobState is a job's lifecycle state. The machine is
//
//	PENDING → RUNNING → DONE
//	                  → FAILED
//	                  → QUARANTINED
//	PENDING/RUNNING   → CANCELLED
//
// Terminal states (DONE, FAILED, CANCELLED, QUARANTINED) deliver a
// triage report of whatever the campaign found; only DONE means the
// full budget ran. QUARANTINED is the supervision verdict: the job's
// slices faulted past the strike limit and the daemon stopped
// rescheduling it, preserving its ledger entry, partial triage, and
// flight journal.
type JobState string

// Job lifecycle states.
const (
	Pending     JobState = "PENDING"
	Running     JobState = "RUNNING"
	Done        JobState = "DONE"
	Failed      JobState = "FAILED"
	Cancelled   JobState = "CANCELLED"
	Quarantined JobState = "QUARANTINED"
)

// Terminal reports whether the state accepts no further work.
func (s JobState) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled || s == Quarantined
}

// JobRecord is one job's ledger entry: the spec plus the coordinator's
// accounting. Everything here is durable — the record is what restart
// recovery trusts.
type JobRecord struct {
	ID     string   `json:"id"`
	Seq    int      `json:"seq"` // submission order (FIFO within a tenant)
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	Spec   JobSpec  `json:"spec"`
	// Done/Epochs/Edges/Crashes mirror the campaign's last barrier.
	Done    int `json:"done"`
	Epochs  int `json:"epochs"`
	Edges   int `json:"edges"`
	Crashes int `json:"crashes"`
	// Error carries the failure cause for FAILED jobs and the final
	// strike cause for QUARANTINED ones.
	Error string `json:"error,omitempty"`
	// Strikes is the job's accumulated supervision strike count.
	Strikes int `json:"strikes,omitempty"`
	// JournalCapped records that disk-pressure degradation discarded
	// part of this job's flight journal: the on-disk journal is a valid
	// prefix, not the full stream, and stays capped for the job's
	// lifetime (resuming appends after a gap would corrupt repair).
	JournalCapped bool `json:"journal_capped,omitempty"`
	// SSEDropped is the lifetime count of journal events dropped from
	// this job's live SSE taps (slow or shed subscribers).
	SSEDropped int64 `json:"sse_dropped,omitempty"`
}

// Ledger is the daemon's durable job table. It is a plain value —
// the Daemon serializes access — persisted atomically as one JSON file
// so a kill at any instant leaves either the old or the new ledger,
// never a torn one.
type Ledger struct {
	Version int          `json:"version"`
	NextSeq int          `json:"next_seq"`
	Jobs    []*JobRecord `json:"jobs"`
	// StepsCommitted tracks each tenant's lifetime submitted step
	// budget (the quota denominator), serialized as sorted pairs so the
	// encoding is deterministic.
	StepsCommitted []TenantSteps `json:"steps_committed,omitempty"`
}

// TenantSteps is one tenant's lifetime committed step budget.
type TenantSteps struct {
	Tenant string `json:"tenant"`
	Steps  int    `json:"steps"`
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{Version: LedgerVersion, NextSeq: 1}
}

// Job returns the record with the given id, or nil.
func (l *Ledger) Job(id string) *JobRecord {
	for _, j := range l.Jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// Committed returns the tenant's lifetime committed steps.
func (l *Ledger) Committed(tenant string) int {
	for _, ts := range l.StepsCommitted {
		if ts.Tenant == tenant {
			return ts.Steps
		}
	}
	return 0
}

// Commit books a tenant's submitted step budget against its lifetime
// quota, keeping the pairs sorted by tenant.
func (l *Ledger) Commit(tenant string, steps int) {
	for i := range l.StepsCommitted {
		if l.StepsCommitted[i].Tenant == tenant {
			l.StepsCommitted[i].Steps += steps
			return
		}
	}
	l.StepsCommitted = append(l.StepsCommitted, TenantSteps{Tenant: tenant, Steps: steps})
	sort.Slice(l.StepsCommitted, func(i, j int) bool {
		return l.StepsCommitted[i].Tenant < l.StepsCommitted[j].Tenant
	})
}

// Active counts a tenant's non-terminal jobs (the concurrency quota).
func (l *Ledger) Active(tenant string) int {
	n := 0
	for _, j := range l.Jobs {
		if j.Tenant == tenant && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// ledgerPath names the ledger file inside a state directory.
func ledgerPath(stateDir string) string {
	return filepath.Join(stateDir, "ledger.json")
}

// JobDir names one job's state directory (checkpoint, flight journal,
// spec, triage report).
func JobDir(stateDir, id string) string {
	return filepath.Join(stateDir, "jobs", id)
}

// Per-job file names inside JobDir.
const (
	CheckpointFile = "checkpoint.json"
	JournalFile    = "flight.jsonl"
	TriageFile     = "triage.json"
	SpecFile       = "spec.json"
)

// LedgerPrevSuffix names the previous-generation ledger kept beside
// the primary. A save that lands torn (short write on a full disk) is
// survivable: LoadLedger falls back to the .prev generation, which at
// worst forgets the most recent admissions or state transitions —
// recovery then re-parks those jobs from their own checkpoints. Two
// consecutive torn generations defeat the fallback, which is why the
// chaos injector's tear period must stay >= 2.
const LedgerPrevSuffix = ".prev"

// LoadLedger reads the ledger from a state directory; a missing file
// is an empty ledger (first boot). A corrupt or unreadable primary
// falls back to the .prev generation before giving up.
func LoadLedger(stateDir string) (*Ledger, error) {
	l, err := loadLedgerFile(ledgerPath(stateDir))
	if err == nil {
		return l, nil
	}
	if prev, perr := loadLedgerFile(ledgerPath(stateDir) + LedgerPrevSuffix); perr == nil {
		return prev, nil
	}
	if os.IsNotExist(err) {
		return NewLedger(), nil
	}
	return nil, err
}

func loadLedgerFile(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("serve: ledger %s: %w", path, err)
	}
	if l.Version != LedgerVersion {
		return nil, fmt.Errorf("serve: ledger %s: version %d, want %d",
			path, l.Version, LedgerVersion)
	}
	return &l, nil
}

// Save writes the ledger atomically (temp file + rename in the state
// directory), rotating the previous generation to .prev first.
func (l *Ledger) Save(stateDir string) error {
	return l.SaveWith(stateDir, nil)
}

// SaveWith is Save with a fault-injection hook: transform, when
// non-nil, may rewrite or reject the serialized bytes before they hit
// disk (the chaos harness tears them). The .prev rotation happens
// before the new write, so a torn save leaves the previous generation
// intact for LoadLedger's fallback.
func (l *Ledger) SaveWith(stateDir string, transform func([]byte) ([]byte, error)) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if transform != nil {
		if data, err = transform(data); err != nil {
			return err
		}
	}
	path := ledgerPath(stateDir)
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+LedgerPrevSuffix); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(stateDir, ".ledger-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
