package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/icsnju/metamut-go/internal/engine"
)

// repairJournal rewinds a job's flight journal to the barrier its
// resumed checkpoint captured, so the journal a killed-and-restarted
// job finally produces is byte-identical to an uninterrupted run's.
//
// The engine journals an epoch's events *before* installing that
// epoch's checkpoint and journals the checkpoint confirmation *after*,
// so a SIGKILL can leave the journal either ahead of the checkpoint
// (epochs the resumed campaign will re-execute and re-journal) or
// exactly one confirmation line behind it. Repair therefore:
//
//  1. drops any torn trailing line (no terminating newline),
//  2. drops every event from epochs after the checkpoint's,
//  3. drops a stale end event (the resumed run re-emits it),
//  4. re-appends the checkpoint confirmation for the resumed barrier
//     when the kill landed between the file install and the journal
//     write — reconstructed bit-for-bit from the snapshot on disk.
//
// ckptBytes is the resumed checkpoint file's size (the confirmation
// line's payload). Returns the repaired journal bytes — the prefix the
// resumed recorder must replay to restore its watchdog memory.
func repairJournal(path string, snap *engine.Snapshot, ckptBytes int) ([]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, err
	}

	var out bytes.Buffer
	sawCkpt := false
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Epoch int    `json:"epoch"`
			Kind  string `json:"kind"`
			Data  struct {
				Done int `json:"done"`
			} `json:"data"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			// A torn trailing write; everything after it is gone too
			// (the journal is append-only, so nothing valid follows a
			// torn line).
			break
		}
		if ev.Epoch > snap.Epoch {
			break
		}
		if ev.Kind == "end" {
			// The job will re-run its tail and re-emit completion.
			continue
		}
		if ev.Kind == "checkpoint" && ev.Epoch == snap.Epoch && ev.Data.Done == snap.Done {
			sawCkpt = true
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	if !sawCkpt && snap.Done > 0 {
		// Killed between checkpoint install and its journal line: the
		// confirmation the uninterrupted run would carry. Field order
		// matches flight's encoder (struct order, then sorted map keys).
		fmt.Fprintf(&out, `{"epoch":%d,"stream":-1,"kind":"checkpoint","data":{"bytes":%d,"done":%d}}`,
			snap.Epoch, ckptBytes, snap.Done)
		out.WriteByte('\n')
	}
	return out.Bytes(), atomicWrite(path, out.Bytes())
}

// appendEndEvent writes the terminal end line for a job that was
// killed after its final checkpoint but before (or during) journaling
// completion — the one event repair cannot re-derive from epochs,
// reconstructed from the finished campaign's merged stats.
func appendEndEvent(path string, epoch, done, edges, crashes int) error {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	line := fmt.Sprintf(`{"epoch":%d,"stream":-1,"kind":"end","data":{"crashes":%d,"done":%d,"edges":%d}}`,
		epoch, crashes, done, edges) + "\n"
	return atomicWrite(path, append(data, line...))
}

// atomicWrite replaces path with data via temp file + rename in the
// same directory.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
