// Package heal is the daemon's deterministic self-healing layer: the
// supervision tree that turns the flight recorder's observe-only
// watchdogs and the engine's per-slice supervision reports into
// bounded corrective action. It owns three governors:
//
//   - Poison-job quarantine. A job whose slices repeatedly fault —
//     escaped panics, poisoned streams, strike-listed anomalies — gets
//     the same strike/parole treatment mutators get (resil.Quarantine),
//     and lands in the QUARANTINED terminal state with its ledger
//     entry, partial triage, and flight journal preserved, instead of
//     poisoning the shared fleet forever.
//
//   - Overload shedding. Above a configured live-job high-water mark,
//     new admissions are shed with a structured `overloaded` error and
//     a Retry-After hint, and low-deficit tenants are paused so the
//     fleet drains instead of thrashing. Re-admission happens in a
//     fixed order (sorted tenants) the moment load drops.
//
//   - Disk-pressure degradation. ENOSPC and short writes against the
//     ledger, checkpoints, or flight journals walk a declared shedding
//     ladder — drop SSE buffers → cap journals → widen the checkpoint
//     interval → quarantine new admissions — with hysteresis in both
//     directions, so a full disk degrades service instead of
//     crash-looping the daemon.
//
// Everything here is a pure function of the event sequence the daemon
// feeds it — logical slice ticks, fault kinds, queue depths — never of
// wall-clock time or goroutine interleaving. The supervisor is owned
// by the daemon's coordinator (under its lock) and is deliberately not
// concurrency-safe on its own, mirroring resil.Quarantine.
package heal

import (
	"sort"

	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
)

// Level is the disk-pressure degradation rung. Escalation sheds in
// declared order; de-escalation re-admits in the reverse order.
type Level int

// The degradation ladder, cheapest shedding first.
const (
	// LevelNominal: no disk pressure observed.
	LevelNominal Level = iota
	// LevelShedSSE: live SSE journal taps are dropped and new ones are
	// refused — subscriber buffers are the cheapest memory to reclaim
	// and the feed is an observability convenience, not state.
	LevelShedSSE
	// LevelCapJournals: flight-journal appends are discarded (the
	// in-memory ring and console keep working). A capped journal is
	// incomplete from the cap point on and stays capped for that job —
	// resuming appends after a gap would corrupt restart repair.
	LevelCapJournals
	// LevelStretchCheckpoints: the periodic checkpoint cadence widens
	// by Config.CheckpointStretch, trading restart granularity for
	// write volume. Results are unaffected; only the resume point of a
	// kill during this level is coarser.
	LevelStretchCheckpoints
	// LevelQuarantineAdmissions: new submissions are shed with an
	// `overloaded` error until the disk recovers. Running jobs keep
	// draining their budgets.
	LevelQuarantineAdmissions
)

// String names the level for logs, health, and the disk-level gauge.
func (l Level) String() string {
	switch l {
	case LevelNominal:
		return "nominal"
	case LevelShedSSE:
		return "shed_sse"
	case LevelCapJournals:
		return "cap_journals"
	case LevelStretchCheckpoints:
		return "stretch_checkpoints"
	case LevelQuarantineAdmissions:
		return "quarantine_admissions"
	}
	return "unknown"
}

// maxLevel is the ladder's top rung.
const maxLevel = LevelQuarantineAdmissions

// Config tunes the supervisor. The zero value takes the defaults noted
// per field; overload shedding stays disarmed until HighWaterJobs is
// set.
type Config struct {
	// StrikeLimit is how many faulty slices a job accumulates before it
	// is quarantined (default 3, mirroring resil.Quarantine).
	StrikeLimit int
	// AnomalyStrikes lists flight watchdog kinds that count as strikes
	// against the job they fire in (e.g. "quarantine_storm"). Empty
	// keeps every watchdog observe-only.
	AnomalyStrikes []string
	// HighWaterJobs is the live (non-terminal) job count at which new
	// admissions are shed and low-deficit tenants pause (0 disables
	// overload shedding).
	HighWaterJobs int
	// TenantFloor is how many tenants stay runnable under overload
	// pausing (default 1; never less — pausing everyone would deadlock
	// the drain the pause exists to enable).
	TenantFloor int
	// RetryAfterSeconds is the Retry-After hint attached to shed
	// admissions (default 30).
	RetryAfterSeconds int
	// DiskTripAfter is how many consecutive disk faults escalate the
	// degradation ladder one rung (default 2).
	DiskTripAfter int
	// DiskClearAfter is how many consecutive clean slices de-escalate
	// one rung (default 8) — deliberately slower than escalation so a
	// flapping disk settles at a stable level.
	DiskClearAfter int
	// CheckpointStretch is the checkpoint-cadence multiplier applied at
	// LevelStretchCheckpoints (default 8).
	CheckpointStretch int
}

func (c Config) withDefaults() Config {
	if c.StrikeLimit <= 0 {
		c.StrikeLimit = 3
	}
	if c.TenantFloor <= 0 {
		c.TenantFloor = 1
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 30
	}
	if c.DiskTripAfter <= 0 {
		c.DiskTripAfter = 2
	}
	if c.DiskClearAfter <= 0 {
		c.DiskClearAfter = 8
	}
	if c.CheckpointStretch <= 1 {
		c.CheckpointStretch = 8
	}
	return c
}

// TenantLoad is one tenant's scheduler load snapshot, fed to PausePlan
// by the daemon's deficit-round-robin scheduler.
type TenantLoad struct {
	Tenant  string
	Deficit int
	Queued  int
}

// RegisterMetrics pre-registers every serve_heal_* family so metric
// snapshots carry the full supervision schema from daemon start.
// Idempotent; nil registry is a no-op.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("serve_heal_strikes_total", "cause")
	reg.Counter("serve_heal_quarantines_total")
	reg.Counter("serve_heal_shed_total", "reason")
	reg.Counter("serve_heal_disk_faults_total", "kind")
	reg.Gauge("serve_heal_disk_level")
	reg.Gauge("serve_heal_paused_tenants")
	reg.Counter("serve_heal_tenant_pauses_total")
	reg.Gauge("serve_heal_checkpoint_stretch")
}

// Supervisor is the daemon's supervision-tree root. All methods must
// be called with the daemon's lock held (single logical owner); the
// supervisor adds no locking of its own.
type Supervisor struct {
	cfg     Config
	strikes map[string]bool // anomaly kinds that strike (from cfg)
	quar    *resil.Quarantine

	level  Level
	faults int // consecutive disk faults at the current level
	clean  int // consecutive clean slices at the current level

	paused map[string]bool // current pause plan (for delta metrics)

	mStrikes *obs.CounterVec
	mQuar    *obs.Counter
	mShed    *obs.CounterVec
	mFaults  *obs.CounterVec
	mLevel   *obs.Gauge
	mPaused  *obs.Gauge
	mPauses  *obs.Counter
	mStretch *obs.Gauge
}

// New builds a supervisor. reg may be nil (metrics no-op).
func New(cfg Config, reg *obs.Registry) *Supervisor {
	cfg = cfg.withDefaults()
	RegisterMetrics(reg)
	s := &Supervisor{
		cfg:     cfg,
		strikes: map[string]bool{},
		paused:  map[string]bool{},
		quar: resil.NewQuarantine(resil.QuarantineConfig{
			StrikeLimit: cfg.StrikeLimit,
		}, nil),
		mStrikes: reg.Counter("serve_heal_strikes_total", "cause"),
		mQuar:    reg.Counter("serve_heal_quarantines_total").With(),
		mShed:    reg.Counter("serve_heal_shed_total", "reason"),
		mFaults:  reg.Counter("serve_heal_disk_faults_total", "kind"),
		mLevel:   reg.Gauge("serve_heal_disk_level").With(),
		mPaused:  reg.Gauge("serve_heal_paused_tenants").With(),
		mPauses:  reg.Counter("serve_heal_tenant_pauses_total").With(),
		mStretch: reg.Gauge("serve_heal_checkpoint_stretch").With(),
	}
	for _, kind := range cfg.AnomalyStrikes {
		s.strikes[kind] = true
	}
	s.mStretch.Set(1)
	return s
}

// Config returns the resolved configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// Level returns the current disk-pressure degradation rung.
func (s *Supervisor) Level() Level { return s.level }

// TickSlice advances the supervisor's logical clock: the daemon calls
// it once per completed slice (the quarantine clock unit).
func (s *Supervisor) TickSlice() { s.quar.Tick() }

// StrikeJob books one supervision fault of the given cause against a
// job and reports whether this strike pushed it over the quarantine
// threshold. The daemon finalizes a quarantined job immediately, so
// parole never comes into play for jobs.
func (s *Supervisor) StrikeJob(id, cause string) bool {
	s.mStrikes.With(cause).Inc()
	if s.quar.Strike(id) {
		s.mQuar.Inc()
		return true
	}
	return false
}

// Strikes returns a job's accumulated strike count.
func (s *Supervisor) Strikes(id string) int { return s.quar.Strikes(id) }

// AnomalyStrikes reports whether a flight watchdog kind is configured
// to count as a strike.
func (s *Supervisor) AnomalyStrikes(kind string) bool { return s.strikes[kind] }

// ShedAdmission decides whether a new submission must be shed given
// the current live-job count. It returns the shed reason ("disk" or
// "overload"), the Retry-After hint in seconds, and whether to shed.
func (s *Supervisor) ShedAdmission(live int) (reason string, retryAfter int, shed bool) {
	if s.level >= LevelQuarantineAdmissions {
		s.mShed.With("disk").Inc()
		return "disk", s.cfg.RetryAfterSeconds, true
	}
	if s.cfg.HighWaterJobs > 0 && live >= s.cfg.HighWaterJobs {
		s.mShed.With("overload").Inc()
		return "overload", s.cfg.RetryAfterSeconds, true
	}
	return "", 0, false
}

// ShedSSE reports whether live journal taps are currently shed (disk
// level at or above LevelShedSSE).
func (s *Supervisor) ShedSSE() bool { return s.level >= LevelShedSSE }

// CapJournals reports whether flight-journal appends are currently
// discarded.
func (s *Supervisor) CapJournals() bool { return s.level >= LevelCapJournals }

// CheckpointEvery returns the checkpoint cadence the disk governor
// currently prescribes: 1 at nominal levels, Config.CheckpointStretch
// at LevelStretchCheckpoints and above.
func (s *Supervisor) CheckpointEvery() int {
	if s.level >= LevelStretchCheckpoints {
		return s.cfg.CheckpointStretch
	}
	return 1
}

// DiskFault records one disk-pressure event (kind: "ledger",
// "checkpoint", or "journal") and returns the level plus whether the
// ladder escalated. DiskTripAfter consecutive faults climb one rung.
func (s *Supervisor) DiskFault(kind string) (Level, bool) {
	s.mFaults.With(kind).Inc()
	s.clean = 0
	s.faults++
	if s.faults < s.cfg.DiskTripAfter || s.level >= maxLevel {
		return s.level, false
	}
	s.faults = 0
	s.level++
	s.noteLevel()
	return s.level, true
}

// CleanSlice records a slice that completed without disk faults and
// returns the level plus whether the ladder de-escalated.
// DiskClearAfter consecutive clean slices descend one rung.
func (s *Supervisor) CleanSlice() (Level, bool) {
	s.faults = 0
	if s.level == LevelNominal {
		return s.level, false
	}
	s.clean++
	if s.clean < s.cfg.DiskClearAfter {
		return s.level, false
	}
	s.clean = 0
	s.level--
	s.noteLevel()
	return s.level, true
}

func (s *Supervisor) noteLevel() {
	s.mLevel.Set(int64(s.level))
	if s.level >= LevelStretchCheckpoints {
		s.mStretch.Set(int64(s.cfg.CheckpointStretch))
	} else {
		s.mStretch.Set(1)
	}
}

// PausePlan returns the tenants to pause given the live-job count and
// every tenant's scheduler load. Under overload (live at or above
// HighWaterJobs) it keeps the TenantFloor highest-deficit tenants with
// queued jobs runnable — they are closest to earning their next slice,
// so the fleet drains fastest — and pauses the rest that have queued
// jobs. Ties break toward the lexicographically smaller tenant, and the
// returned plan is sorted, so the plan (and the re-admission order when
// load drops: everything unpauses at once, and the scheduler's sorted
// ring takes over) is deterministic. Not overloaded → nil.
func (s *Supervisor) PausePlan(live int, loads []TenantLoad) []string {
	var plan []string
	if s.cfg.HighWaterJobs > 0 && live >= s.cfg.HighWaterJobs {
		runnable := make([]TenantLoad, 0, len(loads))
		for _, tl := range loads {
			if tl.Queued > 0 {
				runnable = append(runnable, tl)
			}
		}
		sort.Slice(runnable, func(i, j int) bool {
			if runnable[i].Deficit != runnable[j].Deficit {
				return runnable[i].Deficit > runnable[j].Deficit
			}
			return runnable[i].Tenant < runnable[j].Tenant
		})
		if len(runnable) > s.cfg.TenantFloor {
			for _, tl := range runnable[s.cfg.TenantFloor:] {
				plan = append(plan, tl.Tenant)
			}
			sort.Strings(plan)
		}
	}
	next := make(map[string]bool, len(plan))
	for _, t := range plan {
		next[t] = true
		if !s.paused[t] {
			s.mPauses.Inc()
		}
	}
	s.paused = next
	s.mPaused.Set(int64(len(next)))
	return plan
}
