package heal

import (
	"reflect"
	"testing"
)

func TestStrikeQuarantineThreshold(t *testing.T) {
	s := New(Config{StrikeLimit: 3}, nil)
	for i := 0; i < 2; i++ {
		if s.StrikeJob("j0001", "slice_panic") {
			t.Fatalf("strike %d quarantined early", i+1)
		}
	}
	if !s.StrikeJob("j0001", "slice_panic") {
		t.Fatal("third strike did not quarantine")
	}
	if got := s.Strikes("j0001"); got != 3 {
		t.Fatalf("Strikes = %d, want 3", got)
	}
	if s.Strikes("j0002") != 0 {
		t.Fatal("unrelated job has strikes")
	}
}

func TestAnomalyStrikeList(t *testing.T) {
	s := New(Config{AnomalyStrikes: []string{"quarantine_storm"}}, nil)
	if !s.AnomalyStrikes("quarantine_storm") {
		t.Fatal("listed kind not striking")
	}
	if s.AnomalyStrikes("retry_spike") {
		t.Fatal("unlisted kind strikes")
	}
}

func TestDiskLadderHysteresis(t *testing.T) {
	s := New(Config{DiskTripAfter: 2, DiskClearAfter: 3}, nil)
	if lvl, up := s.DiskFault("checkpoint"); up || lvl != LevelNominal {
		t.Fatalf("one fault escalated to %s", lvl)
	}
	if lvl, up := s.DiskFault("checkpoint"); !up || lvl != LevelShedSSE {
		t.Fatalf("second fault: level %s, escalated %v", lvl, up)
	}
	// A clean slice resets the fault streak but not the level.
	if lvl, down := s.CleanSlice(); down || lvl != LevelShedSSE {
		t.Fatalf("one clean slice de-escalated to %s", lvl)
	}
	if _, up := s.DiskFault("ledger"); up {
		t.Fatal("fault streak survived the clean slice")
	}
	// Climb the rest of the ladder.
	for s.Level() < LevelQuarantineAdmissions {
		s.DiskFault("ledger")
	}
	if lvl, up := s.DiskFault("ledger"); up || lvl != LevelQuarantineAdmissions {
		t.Fatalf("escalated past the top rung to %s", lvl)
	}
	// De-escalate one rung after DiskClearAfter clean slices.
	for i := 0; i < 2; i++ {
		if _, down := s.CleanSlice(); down {
			t.Fatalf("de-escalated after %d clean slices", i+1)
		}
	}
	if lvl, down := s.CleanSlice(); !down || lvl != LevelStretchCheckpoints {
		t.Fatalf("third clean slice: level %s, de-escalated %v", lvl, down)
	}
}

func TestLevelEffects(t *testing.T) {
	s := New(Config{DiskTripAfter: 1, CheckpointStretch: 8}, nil)
	if s.ShedSSE() || s.CapJournals() || s.CheckpointEvery() != 1 {
		t.Fatal("nominal level has effects")
	}
	s.DiskFault("ledger") // → shed_sse
	if !s.ShedSSE() || s.CapJournals() {
		t.Fatalf("level %s: ShedSSE=%v CapJournals=%v", s.Level(), s.ShedSSE(), s.CapJournals())
	}
	s.DiskFault("ledger") // → cap_journals
	if !s.CapJournals() || s.CheckpointEvery() != 1 {
		t.Fatalf("level %s: CapJournals=%v CheckpointEvery=%d", s.Level(), s.CapJournals(), s.CheckpointEvery())
	}
	s.DiskFault("ledger") // → stretch_checkpoints
	if s.CheckpointEvery() != 8 {
		t.Fatalf("CheckpointEvery = %d, want 8", s.CheckpointEvery())
	}
	if _, _, shed := s.ShedAdmission(0); shed {
		t.Fatal("admissions shed below the top rung")
	}
	s.DiskFault("ledger") // → quarantine_admissions
	reason, retry, shed := s.ShedAdmission(0)
	if !shed || reason != "disk" || retry != 30 {
		t.Fatalf("ShedAdmission = (%q, %d, %v), want (disk, 30, true)", reason, retry, shed)
	}
}

func TestOverloadShedding(t *testing.T) {
	s := New(Config{HighWaterJobs: 3, RetryAfterSeconds: 7}, nil)
	if _, _, shed := s.ShedAdmission(2); shed {
		t.Fatal("shed below the high-water mark")
	}
	reason, retry, shed := s.ShedAdmission(3)
	if !shed || reason != "overload" || retry != 7 {
		t.Fatalf("ShedAdmission = (%q, %d, %v), want (overload, 7, true)", reason, retry, shed)
	}
}

func TestPausePlanDeterministicAndFloored(t *testing.T) {
	loads := []TenantLoad{
		{Tenant: "alpha", Deficit: 10, Queued: 2},
		{Tenant: "beta", Deficit: 40, Queued: 1},
		{Tenant: "gamma", Deficit: 10, Queued: 3},
		{Tenant: "idle", Deficit: 99, Queued: 0},
	}
	s := New(Config{HighWaterJobs: 4, TenantFloor: 1}, nil)
	if plan := s.PausePlan(3, loads); plan != nil {
		t.Fatalf("not overloaded but paused %v", plan)
	}
	// Overloaded: beta (highest deficit) stays; alpha and gamma tie on
	// deficit, and the tie breaks toward the smaller tenant name for
	// the keep, so both land in the sorted pause plan. Idle tenants
	// (nothing queued) are never paused — there is nothing to pause.
	plan := s.PausePlan(4, loads)
	if want := []string{"alpha", "gamma"}; !reflect.DeepEqual(plan, want) {
		t.Fatalf("PausePlan = %v, want %v", plan, want)
	}
	// The same inputs replan identically.
	if again := s.PausePlan(4, loads); !reflect.DeepEqual(again, plan) {
		t.Fatalf("replan diverged: %v vs %v", again, plan)
	}
	// Floor always keeps at least one queued tenant runnable even when
	// the floor exceeds what is left over.
	s2 := New(Config{HighWaterJobs: 1, TenantFloor: 3}, nil)
	if plan := s2.PausePlan(5, loads[:2]); plan != nil {
		t.Fatalf("floor 3 over 2 tenants paused %v", plan)
	}
	// Load dropping clears the plan.
	if plan := s.PausePlan(1, loads); plan != nil {
		t.Fatalf("recovered but still paused %v", plan)
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{
		LevelNominal:              "nominal",
		LevelShedSSE:              "shed_sse",
		LevelCapJournals:          "cap_journals",
		LevelStretchCheckpoints:   "stretch_checkpoints",
		LevelQuarantineAdmissions: "quarantine_admissions",
		Level(99):                 "unknown",
	}
	for lvl, s := range want {
		if lvl.String() != s {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, lvl.String(), s)
		}
	}
}
