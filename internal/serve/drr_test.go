package serve

import (
	"reflect"
	"testing"

	"github.com/icsnju/metamut-go/internal/serve/heal"
)

func constCost(n int) func(string) int {
	return func(string) int { return n }
}

// Fairness divides the fleet by tenant, not by job: a tenant with two
// queued jobs gets the same slice share as a single-job tenant, and its
// own jobs round-robin inside that share.
func TestDRRFairSplitByTenant(t *testing.T) {
	d := newDRR(10)
	d.Enqueue("alpha", "a1")
	d.Enqueue("alpha", "a2")
	d.Enqueue("beta", "b1")

	perTenant := map[string]int{}
	perJob := map[string]int{}
	for i := 0; i < 40; i++ {
		id := d.Next(constCost(10))
		if id == "" {
			t.Fatalf("pick %d: scheduler stalled with runnable jobs", i)
		}
		perJob[id]++
		if id == "b1" {
			perTenant["beta"]++
		} else {
			perTenant["alpha"]++
		}
	}
	if perTenant["alpha"] != 20 || perTenant["beta"] != 20 {
		t.Errorf("tenant split = %v, want 20/20", perTenant)
	}
	if perJob["a1"] != 10 || perJob["a2"] != 10 {
		t.Errorf("alpha's jobs split = %v, want 10 each", perJob)
	}
}

// An idle tenant must not bank credit while it has nothing to run and
// then starve the ring when a job finally arrives.
func TestDRRIdleTenantForfeitsDeficit(t *testing.T) {
	d := newDRR(10)
	d.Enqueue("alpha", "a1")
	d.Enqueue("beta", "b1")
	// Drain beta so it sits idle while alpha keeps running.
	d.Remove("beta", "b1")
	for i := 0; i < 50; i++ {
		if id := d.Next(constCost(10)); id != "a1" {
			t.Fatalf("pick %d = %q, want a1 (only runnable job)", i, id)
		}
	}
	if d.deficits["beta"] != 0 {
		t.Fatalf("idle beta banked deficit %d, want 0", d.deficits["beta"])
	}
	// Re-queued beta competes fairly, without a stored-credit burst.
	d.Enqueue("beta", "b1")
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		counts[d.Next(constCost(10))]++
	}
	if counts["a1"] != 10 || counts["b1"] != 10 {
		t.Errorf("post-idle split = %v, want 10/10", counts)
	}
}

// A slice costing far more than the quantum must still get served —
// the fleet never stalls while a runnable job exists.
func TestDRRLargeCostDoesNotStall(t *testing.T) {
	d := newDRR(10)
	d.Enqueue("alpha", "a1")
	d.Enqueue("beta", "b1")
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		id := d.Next(constCost(100000))
		if id == "" {
			t.Fatalf("pick %d: stalled on large slice cost", i)
		}
		seen[id] = true
	}
	if !seen["a1"] || !seen["b1"] {
		t.Errorf("large-cost fallback served only %v, want both tenants", seen)
	}
}

func TestDRRRemoveAndPending(t *testing.T) {
	d := newDRR(0)
	if d.Pending() {
		t.Fatal("empty scheduler reports pending work")
	}
	d.Enqueue("alpha", "a1")
	d.Enqueue("alpha", "a2")
	d.Remove("alpha", "a1")
	if id := d.Next(constCost(1)); id != "a2" {
		t.Fatalf("after remove, Next = %q, want a2", id)
	}
	d.Remove("alpha", "a2")
	if d.Pending() {
		t.Fatal("drained scheduler reports pending work")
	}
	if id := d.Next(constCost(1)); id != "" {
		t.Fatalf("drained scheduler served %q", id)
	}
}

// The schedule is a pure function of the operation sequence — daemon
// logs and fairness behavior must be reproducible.
func TestDRRDeterministic(t *testing.T) {
	run := func() []string {
		d := newDRR(7)
		d.Enqueue("gamma", "g1")
		d.Enqueue("alpha", "a1")
		d.Enqueue("beta", "b1")
		d.Enqueue("alpha", "a2")
		var picks []string
		for i := 0; i < 30; i++ {
			picks = append(picks, d.Next(constCost(5)))
		}
		return picks
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("schedule not deterministic:\n%v\n%v", a, b)
	}
}

// A paused tenant is benched — never served, deficit preserved — and
// un-pausing restores it to its exact scheduling position. Loads
// snapshots the ring in sorted order for the overload governor.
func TestDRRPausedTenants(t *testing.T) {
	d := newDRR(10)
	d.Enqueue("alpha", "a1")
	d.Enqueue("beta", "b1")
	d.SetPaused([]string{"alpha"})
	if got := d.Paused(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("Paused = %v, want [alpha]", got)
	}
	for i := 0; i < 10; i++ {
		if id := d.Next(constCost(10)); id != "b1" {
			t.Fatalf("pick %d served %q with alpha paused", i, id)
		}
	}
	if !d.Pending() {
		t.Fatal("paused work no longer pending")
	}
	// Benched, alpha banked nothing but also forfeited nothing: after
	// un-pausing the split returns to fair.
	d.SetPaused(nil)
	perTenant := map[string]int{}
	for i := 0; i < 20; i++ {
		id := d.Next(constCost(10))
		if id == "" {
			t.Fatalf("pick %d stalled after unpause", i)
		}
		perTenant[id]++
	}
	if perTenant["a1"] != 10 || perTenant["b1"] != 10 {
		t.Errorf("post-unpause split = %v, want 10/10", perTenant)
	}

	loads := d.Loads()
	want := []heal.TenantLoad{
		{Tenant: "alpha", Deficit: d.deficits["alpha"], Queued: 1},
		{Tenant: "beta", Deficit: d.deficits["beta"], Queued: 1},
	}
	if !reflect.DeepEqual(loads, want) {
		t.Errorf("Loads = %v, want %v", loads, want)
	}
}

// All-paused is the governor's job to prevent; the scheduler itself
// must simply serve nothing rather than misbehave.
func TestDRRAllPausedServesNothing(t *testing.T) {
	d := newDRR(10)
	d.Enqueue("alpha", "a1")
	d.SetPaused([]string{"alpha"})
	if id := d.Next(constCost(1)); id != "" {
		t.Fatalf("all-paused scheduler served %q", id)
	}
}
