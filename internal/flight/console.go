package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/obs"
)

// ConsoleState is the /debug/campaign payload: a stable-ordered JSON
// view of campaign progress assembled from the last barrier. All
// journal-derived fields are deterministic for a given barrier; the
// latency table is live wall-clock telemetry joined in from the
// metrics registry (it never enters the journal).
type ConsoleState struct {
	Campaign  ConsoleCampaign `json:"campaign"`
	Progress  ConsoleProgress `json:"progress"`
	Streams   []StreamInfo    `json:"streams,omitempty"`
	Sched     []ConsoleArm    `json:"sched,omitempty"`
	Triage    []CrashBucket   `json:"triage,omitempty"`
	Mutators  []MutatorYield  `json:"mutators,omitempty"`
	Anomalies []Event         `json:"anomalies,omitempty"`
	Latency   []LatencyRow    `json:"latency,omitempty"`
}

// ConsoleCampaign is the campaign's identity block.
type ConsoleCampaign struct {
	Seed    int64 `json:"seed"`
	Streams int   `json:"streams"`
	Total   int   `json:"total_steps"`
}

// ConsoleProgress is the campaign's position block.
type ConsoleProgress struct {
	Epoch    int `json:"epoch"`
	Done     int `json:"done"`
	Total    int `json:"total"`
	Edges    int `json:"edges"`
	Crashes  int `json:"crashes"`
	Poisoned int `json:"poisoned,omitempty"`
}

// ConsoleArm is one mutator's scheduler posterior aggregated across
// streams (sum of picks; mean reward in milli-units).
type ConsoleArm struct {
	Name      string `json:"m"`
	Picks     int64  `json:"picks"`
	MeanMilli int64  `json:"mw"`
}

// LatencyRow is one histogram series rendered as a stage-latency line.
type LatencyRow struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
}

// Console assembles the current console state. Safe to call at any
// time; between barriers it reflects the last completed epoch.
func (r *Recorder) Console() *ConsoleState {
	if r == nil {
		return &ConsoleState{}
	}
	var latency []LatencyRow
	if r.cfg.Registry != nil {
		latency = LatencyRows(r.cfg.Registry.Snapshot())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &ConsoleState{
		Campaign: ConsoleCampaign{Seed: r.cfg.Seed, Streams: r.cfg.Streams,
			Total: r.cfg.TotalSteps},
		Latency: latency,
	}
	st.Progress = ConsoleProgress{Epoch: r.epochs, Done: r.last.Done,
		Total: r.last.Total, Edges: r.last.Edges}
	for _, si := range r.last.Streams {
		st.Progress.Crashes += si.Crashes
		if si.Poisoned {
			st.Progress.Poisoned++
		}
	}
	st.Streams = append(st.Streams, r.last.Streams...)
	st.Sched = r.schedAggregateLocked(20)
	for _, sig := range r.crashSigs {
		st.Triage = append(st.Triage, *r.crashes[sig])
	}
	sort.SliceStable(st.Triage, func(i, j int) bool {
		if st.Triage[i].Hits != st.Triage[j].Hits {
			return st.Triage[i].Hits > st.Triage[j].Hits
		}
		return st.Triage[i].Signature < st.Triage[j].Signature
	})
	for _, y := range r.yields {
		st.Mutators = append(st.Mutators, *y)
	}
	sort.Slice(st.Mutators, func(i, j int) bool {
		a, b := st.Mutators[i], st.Mutators[j]
		if a.Crash != b.Crash {
			return a.Crash > b.Crash
		}
		if a.Cov != b.Cov {
			return a.Cov > b.Cov
		}
		return a.Name < b.Name
	})
	if len(st.Mutators) > 20 {
		st.Mutators = st.Mutators[:20]
	}
	st.Anomalies = append(st.Anomalies, r.anomalies...)
	return st
}

// schedAggregateLocked folds every stream's posterior (from the last
// barrier) into per-mutator totals, top-k by mean reward. Callers hold
// r.mu.
func (r *Recorder) schedAggregateLocked(k int) []ConsoleArm {
	names := r.cfg.ArmNames
	if len(names) == 0 {
		return nil
	}
	picks := make([]int64, len(names))
	rewards := make([]float64, len(names))
	seen := false
	for _, si := range r.last.Streams {
		st := si.Sched
		if st == nil || len(st.Picks) != len(names) {
			continue
		}
		for i := range names {
			picks[i] += st.Picks[i]
			rewards[i] += st.Rewards[i]
		}
		seen = true
	}
	if !seen {
		return nil
	}
	var arms []int
	for i := range names {
		if picks[i] > 0 {
			arms = append(arms, i)
		}
	}
	mean := func(i int) float64 { return rewards[i] / float64(picks[i]) }
	sort.SliceStable(arms, func(x, y int) bool {
		mx, my := mean(arms[x]), mean(arms[y])
		if mx != my {
			return mx > my
		}
		return arms[x] < arms[y]
	})
	if len(arms) > k {
		arms = arms[:k]
	}
	out := make([]ConsoleArm, 0, len(arms))
	for _, i := range arms {
		out = append(out, ConsoleArm{Name: names[i], Picks: picks[i],
			MeanMilli: int64(1000 * mean(i))})
	}
	return out
}

// LatencyRows renders every histogram series of a metrics snapshot as
// stage-latency lines (milliseconds; quantiles are bucket upper
// bounds). Sorted by name, so output order is stable.
func LatencyRows(snap *obs.Snapshot) []LatencyRow {
	if snap == nil {
		return nil
	}
	var rows []LatencyRow
	for _, fam := range snap.Hists {
		for _, ser := range fam.Series {
			if ser.Count == 0 {
				continue
			}
			name := fam.Name
			if len(ser.LabelValues) > 0 {
				name += "{" + strings.Join(ser.LabelValues, ",") + "}"
			}
			rows = append(rows, LatencyRow{
				Name:   name,
				Count:  ser.Count,
				MeanMs: 1000 * ser.Sum / float64(ser.Count),
				P50Ms:  1000 * histQuantile(fam.Buckets, ser.Counts, ser.Count, 0.50),
				P95Ms:  1000 * histQuantile(fam.Buckets, ser.Counts, ser.Count, 0.95),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// histQuantile returns the upper bound of the bucket containing the
// q-quantile observation (the +Inf bucket reports the largest finite
// bound — an underestimate, but bounded).
func histQuantile(buckets []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || len(counts) == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(buckets) {
				return buckets[i]
			}
			break
		}
	}
	if len(buckets) == 0 {
		return 0
	}
	return buckets[len(buckets)-1]
}

// Routes returns the console endpoints to mount on the obs debug
// server: /debug/campaign (JSON snapshot) and /debug/campaign/stream
// (SSE journal feed). Nil recorder → no routes.
func Routes(r *Recorder) []obs.Route {
	if r == nil {
		return nil
	}
	return []obs.Route{
		{Pattern: "/debug/campaign", Handler: http.HandlerFunc(r.handleConsole)},
		{Pattern: "/debug/campaign/stream", Handler: http.HandlerFunc(r.handleSSE)},
	}
}

func (r *Recorder) handleConsole(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Console())
}

// Subscribe attaches a live journal tap: every appended event's JSON
// line is sent (non-blocking; slow subscribers drop events, counted in
// flight_sse_dropped_total). Call cancel to detach.
func (r *Recorder) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 1024)
	if r == nil {
		close(ch)
		return ch, func() {}
	}
	r.mu.Lock()
	r.subs[ch] = true
	r.mClients.Set(int64(len(r.subs)))
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if r.subs[ch] {
			delete(r.subs, ch)
			r.mClients.Set(int64(len(r.subs)))
		}
		r.mu.Unlock()
	}
	return ch, cancel
}

// handleSSE streams journal events as Server-Sent Events, reusing the
// journal encoder: each `data:` payload is exactly one journal line.
func (r *Recorder) handleSSE(w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "flight: streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := r.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, ": flight journal stream\n\n")
	flusher.Flush()
	for {
		select {
		case <-req.Context().Done():
			return
		case line, open := <-ch:
			if !open {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			flusher.Flush()
		}
	}
}
