package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// WatchdogConfig tunes the anomaly detectors. Every detector is a
// deterministic function of the event stream — it counts epochs, ticks,
// and edges, never wall time — so detections land at the same journal
// position in every equivalent run. Detectors raise
// flight_anomalies_total{kind} and an "anomaly" journal event; they
// never kill the run.
type WatchdogConfig struct {
	// Disable turns every watchdog off.
	Disable bool
	// StallEpochs flags a stream whose tick count has not advanced for
	// this many consecutive epochs (default 4; kind "stalled_stream").
	StallEpochs int
	// PlateauEpochs flags the campaign when global coverage has not
	// grown for this many consecutive epochs (default 8; kind
	// "coverage_plateau").
	PlateauEpochs int
	// QuarantineStorm flags an epoch carrying at least this many
	// quarantine admissions (default 3; kind "quarantine_storm").
	QuarantineStorm int
	// StarvationTicks flags a stream whose adaptive posterior still has
	// never-picked arms after this many scheduler ticks — the epsilon
	// floor should have sampled everything long before (default 2000;
	// kind "sched_starvation"; fires once per stream).
	StarvationTicks int
	// RetrySpike flags an epoch that granted at least this many task
	// retries (default 4; kind "retry_spike") — the chaos harness's
	// recoverable worker panics trip this one.
	RetrySpike int
	// BaselineEdgesPer1k is the committed BENCH_sched.json throughput
	// baseline (edges per 1000 ticks); 0 disables the regression
	// watchdog (kind "throughput_regression"; fires once).
	BaselineEdgesPer1k float64
	// RegressionFraction is the fraction of baseline below which the
	// campaign's edges-per-1k-ticks counts as a regression (default 0.5).
	RegressionFraction float64
	// RegressionMinTicks delays the regression judgment until the
	// campaign has spent this many total ticks (default 2000).
	RegressionMinTicks int
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.StallEpochs <= 0 {
		c.StallEpochs = 4
	}
	if c.PlateauEpochs <= 0 {
		c.PlateauEpochs = 8
	}
	if c.QuarantineStorm <= 0 {
		c.QuarantineStorm = 3
	}
	if c.StarvationTicks <= 0 {
		c.StarvationTicks = 2000
	}
	if c.RetrySpike <= 0 {
		c.RetrySpike = 4
	}
	if c.RegressionFraction <= 0 || c.RegressionFraction >= 1 {
		c.RegressionFraction = 0.5
	}
	if c.RegressionMinTicks <= 0 {
		c.RegressionMinTicks = 2000
	}
	return c
}

// watchdogState is the detectors' memory between barriers.
type watchdogState struct {
	lastTicks map[int]int
	stallFor  map[int]int
	stalled   map[int]bool
	starved   map[int]bool

	sawEdges     bool
	lastEdges    int
	plateauFor   int
	plateauFired bool

	regressionFired bool
}

func (w *watchdogState) init() {
	w.lastTicks = map[int]int{}
	w.stallFor = map[int]int{}
	w.stalled = map[int]bool{}
	w.starved = map[int]bool{}
}

// watchdogsLocked runs every detector against one barrier summary.
// Detection order is fixed (stall by stream, plateau, storm,
// starvation by stream, retry spike, regression) so anomaly events
// land at a deterministic journal position. Callers hold r.mu.
func (r *Recorder) watchdogsLocked(info EpochInfo, quarantines int) {
	cfg := r.cfg.Watchdogs
	if cfg.Disable {
		return
	}
	wd := &r.wd

	totalTicks := 0
	for _, si := range info.Streams {
		totalTicks += si.Ticks
	}

	for _, si := range info.Streams {
		if si.Poisoned {
			// A poisoned stream is already reported by the engine; its
			// frozen ticks are not a stall.
			delete(wd.stallFor, si.Stream)
			continue
		}
		if last, seen := wd.lastTicks[si.Stream]; seen && si.Ticks == last {
			wd.stallFor[si.Stream]++
		} else {
			wd.stallFor[si.Stream] = 0
			wd.stalled[si.Stream] = false
		}
		wd.lastTicks[si.Stream] = si.Ticks
		if wd.stallFor[si.Stream] >= cfg.StallEpochs && !wd.stalled[si.Stream] {
			wd.stalled[si.Stream] = true
			r.anomalyLocked(info.Epoch, si.Stream, "stalled_stream", map[string]any{
				"epochs": wd.stallFor[si.Stream], "ticks": si.Ticks,
			})
		}
	}

	if wd.sawEdges && info.Edges == wd.lastEdges {
		wd.plateauFor++
	} else {
		wd.plateauFor = 0
		wd.plateauFired = false
	}
	wd.sawEdges = true
	wd.lastEdges = info.Edges
	if wd.plateauFor >= cfg.PlateauEpochs && !wd.plateauFired {
		wd.plateauFired = true
		r.anomalyLocked(info.Epoch, -1, "coverage_plateau", map[string]any{
			"epochs": wd.plateauFor, "edges": info.Edges,
		})
	}

	if quarantines >= cfg.QuarantineStorm {
		r.anomalyLocked(info.Epoch, -1, "quarantine_storm", map[string]any{
			"count": quarantines,
		})
	}

	for _, si := range info.Streams {
		st := si.Sched
		if st == nil || len(st.Picks) == 0 || si.Poisoned || wd.starved[si.Stream] {
			continue
		}
		if st.Ticks < int64(cfg.StarvationTicks) {
			continue
		}
		zero, first := 0, -1
		for i, p := range st.Picks {
			if p == 0 {
				zero++
				if first < 0 {
					first = i
				}
			}
		}
		if zero == 0 {
			continue
		}
		wd.starved[si.Stream] = true
		data := map[string]any{"arms": zero, "ticks": st.Ticks}
		if first >= 0 && first < len(r.cfg.ArmNames) {
			data["first"] = r.cfg.ArmNames[first]
		}
		r.anomalyLocked(info.Epoch, si.Stream, "sched_starvation", data)
	}

	if info.Retries >= cfg.RetrySpike {
		r.anomalyLocked(info.Epoch, -1, "retry_spike", map[string]any{
			"count": info.Retries,
		})
	}

	if cfg.BaselineEdgesPer1k > 0 && !wd.regressionFired &&
		totalTicks >= cfg.RegressionMinTicks {
		rate := 1000 * float64(info.Edges) / float64(totalTicks)
		if rate < cfg.RegressionFraction*cfg.BaselineEdgesPer1k {
			wd.regressionFired = true
			r.anomalyLocked(info.Epoch, -1, "throughput_regression", map[string]any{
				"edges_per_1k":    int(math.Round(rate)),
				"baseline_per_1k": int(math.Round(cfg.BaselineEdgesPer1k)),
				"floor_milli":     int(math.Round(1000 * cfg.RegressionFraction)),
			})
		}
	}
}

// RestoreWatchdogs rebuilds the detectors' inter-barrier memory by
// replaying a journal prefix — the repaired journal a resumed campaign
// continues appending to. A fresh Recorder starts its
// consecutive-epoch counters and fired-once latches at zero, so
// without this a restart would shift every later anomaly to a
// restart-relative journal position (or re-fire latched ones) and the
// continued journal would diverge from an uninterrupted run's. The
// replay mirrors watchdogsLocked's bookkeeping exactly but emits
// nothing: every detection inside the prefix is already journaled.
//
// Safe on a nil recorder. Torn or foreign lines are skipped — the
// caller has already repaired the journal to a valid prefix.
func (r *Recorder) RestoreWatchdogs(journal []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg := r.cfg.Watchdogs
	wd := &r.wd
	for _, line := range bytes.Split(journal, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		switch ev.Kind {
		case "stream":
			s := ev.Stream
			if ev.Data["poisoned"] == true {
				delete(wd.stallFor, s)
				continue
			}
			if last, seen := wd.lastTicks[s]; seen && ev.Tick == last {
				wd.stallFor[s]++
			} else {
				wd.stallFor[s] = 0
				wd.stalled[s] = false
			}
			wd.lastTicks[s] = ev.Tick
			if wd.stallFor[s] >= cfg.StallEpochs {
				wd.stalled[s] = true
			}
		case "epoch":
			edges := 0
			if v, ok := ev.Data["edges"].(float64); ok {
				edges = int(v)
			}
			if wd.sawEdges && edges == wd.lastEdges {
				wd.plateauFor++
			} else {
				wd.plateauFor = 0
				wd.plateauFired = false
			}
			wd.sawEdges = true
			wd.lastEdges = edges
			if wd.plateauFor >= cfg.PlateauEpochs {
				wd.plateauFired = true
			}
		case "anomaly":
			switch ev.Data["watchdog"] {
			case "sched_starvation":
				wd.starved[ev.Stream] = true
			case "throughput_regression":
				wd.regressionFired = true
			}
		}
	}
}

// anomalyLocked records one detection: journal event, anomaly log, and
// flight_anomalies_total{kind}. Callers hold r.mu.
func (r *Recorder) anomalyLocked(epoch, stream int, kind string, data map[string]any) {
	data["watchdog"] = kind
	ev := Event{Epoch: epoch, Stream: stream, Kind: "anomaly", Data: data}
	r.anomalies = append(r.anomalies, ev)
	r.appendLocked(ev)
	r.mAnoms.With(kind).Inc()
	if r.cfg.OnAnomaly != nil {
		r.cfg.OnAnomaly(ev)
	}
}

// BenchBaseline extracts the committed throughput baseline
// (edges per 1000 ticks) for a scheduler policy from a
// BENCH_sched.json file, preferring the cache-enabled variant of the
// policy, then the bare one.
func BenchBaseline(path, schedKind string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var bench struct {
		Variants []struct {
			Name       string  `json:"name"`
			Sched      string  `json:"sched"`
			EdgesPer1k float64 `json:"edges_per_1k_ticks"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		return 0, fmt.Errorf("flight: parse baseline %s: %w", path, err)
	}
	if schedKind == "" {
		schedKind = "uniform"
	}
	best := -1.0
	for _, v := range bench.Variants {
		if v.Name == schedKind+"+cache" {
			return v.EdgesPer1k, nil
		}
		if v.Sched == schedKind && v.EdgesPer1k > best {
			best = v.EdgesPer1k
		}
	}
	if best > 0 {
		return best, nil
	}
	return 0, fmt.Errorf("flight: baseline %s has no %q variant", path, schedKind)
}
