// Package flight is the campaign flight recorder: a causal, replayable
// record of everything significant a fuzzing campaign does — epoch
// barriers, checkpoints, mutator rewards, quarantine and breaker
// transitions, crash discoveries — plus the live ops console served
// from it and deterministic anomaly watchdogs over it.
//
// The journal is keyed by *logical* time only: campaign/epoch/stream
// causal IDs and per-stream ticks (compiler invocations), never
// wall-clock. Mid-epoch events are buffered per stream and drained in
// stream order at the epoch barrier, so a fixed seed produces a
// byte-identical journal at any worker count, and the journal of an
// interrupted-and-resumed campaign concatenates to the journal of an
// uninterrupted one. Wall-clock observability (latency histograms,
// spans) stays in internal/obs where it belongs; the console may join
// the two, the journal never does.
//
// Metric families (pre-registered by RegisterMetrics):
//
//	flight_events_total{kind}          journal events appended, by kind
//	flight_anomalies_total{kind}       watchdog detections, by kind
//	flight_journal_bytes               bytes written to the journal
//	flight_journal_rotations_total     size-cap rotations of the journal
//	flight_sse_clients                 live /debug/campaign/stream subscribers
//	flight_sse_dropped_total           events dropped on slow subscribers
package flight

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/sched"
)

// Event is one journal record. Epoch is the 1-based epoch the event
// belongs to, Stream the logical stream (-1 for campaign-level
// events), Tick the emitting stream's logical clock at emission (0 for
// barrier-level events). Data holds kind-specific fields; only
// deterministic values (ints, strings, bools, sorted-key maps, arrays)
// may go in — never wall-clock readings. encoding/json sorts map keys,
// so a given Event always marshals to the same bytes.
type Event struct {
	Epoch  int            `json:"epoch"`
	Stream int            `json:"stream"`
	Tick   int            `json:"tick,omitempty"`
	Kind   string         `json:"kind"`
	Data   map[string]any `json:"data,omitempty"`
}

// Config shapes a Recorder.
type Config struct {
	// Streams is the campaign's logical stream count.
	Streams int
	// TotalSteps is the campaign budget (for the header event and ETA).
	TotalSteps int
	// Seed is the campaign seed (header event).
	Seed int64
	// Done is the steps already completed when the recorder starts —
	// non-zero on checkpoint resume, which suppresses the header event
	// so resumed journals concatenate byte-identically.
	Done int
	// Registry receives the flight_* metric families (nil disables).
	Registry *obs.Registry
	// Journal receives JSONL event lines (nil disables persistence;
	// the ring buffer and console still work). An *obs.RotatingWriter
	// additionally feeds flight_journal_rotations_total.
	Journal io.Writer
	// RingSize caps the in-memory event ring the console and in-process
	// reports read from (default 65536; oldest events drop first).
	RingSize int
	// ArmNames are the mutator names backing scheduler arm indices, in
	// arm order — used to label posterior summaries. May be nil.
	ArmNames []string
	// Watchdogs tunes the anomaly detectors.
	Watchdogs WatchdogConfig
	// OnAnomaly, when set, receives each watchdog detection as it is
	// journaled — the hook that lets a supervisor turn observe-only
	// watchdogs into corrective action. It runs on the barrier goroutine
	// with the recorder's lock held: it must be fast and must not call
	// back into the Recorder. RestoreWatchdogs replays do not re-fire it
	// (their detections were already journaled by the interrupted run).
	OnAnomaly func(Event)
}

// Stream buffers one logical stream's mid-epoch events. Only the
// goroutine executing the stream may call Emit; the recorder drains
// the buffer at the epoch barrier (the engine's join provides the
// happens-before edge). All methods are nil-safe.
type Stream struct {
	rec *Recorder
	id  int
	buf []Event
}

// Emit buffers one event at the stream's current logical tick. The
// epoch is stamped at the barrier when the buffer is drained.
func (s *Stream) Emit(tick int, kind string, data map[string]any) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, Event{Stream: s.id, Tick: tick, Kind: kind, Data: data})
}

// Recorder is the campaign flight recorder. All exported methods are
// nil-safe, so an un-instrumented campaign pays only nil checks.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	streams []*Stream
	global  []Event // campaign-level events buffered until the barrier
	ring    []Event
	written int64
	jerr    error
	last    EpochInfo
	epochs  int // last completed epoch number observed

	anomalies []Event
	crashes   map[string]*CrashBucket
	crashSigs []string // insertion order of crash buckets
	yields    map[string]*MutatorYield

	subs    map[chan []byte]bool
	dropped int64 // events dropped on slow subscribers

	wd watchdogState

	mEvents  *obs.CounterVec
	mAnoms   *obs.CounterVec
	mBytes   *obs.Gauge
	mRot     *obs.Counter
	mClients *obs.Gauge
	mDropped *obs.Counter
}

// EpochInfo is what the engine reports at each barrier.
type EpochInfo struct {
	Epoch   int `json:"epoch"`
	Done    int `json:"done"`
	Total   int `json:"total"`
	Edges   int `json:"edges"` // merged global coverage edges
	Retries int `json:"retries,omitempty"`
	// Poisoned lists streams newly poisoned this epoch, sorted.
	Poisoned []int        `json:"poisoned,omitempty"`
	Streams  []StreamInfo `json:"streams"`
}

// StreamInfo is one stream's barrier summary.
type StreamInfo struct {
	Stream   int  `json:"stream"`
	Ticks    int  `json:"ticks"`
	Total    int  `json:"total"` // mutants produced
	Crashes  int  `json:"crashes"`
	Edges    int  `json:"edges"` // private coverage edges
	Pool     int  `json:"pool,omitempty"`
	Poisoned bool `json:"poisoned,omitempty"`
	// Sched is the stream's scheduler posterior at the barrier. It is
	// summarized into the journal and console, not serialized raw.
	Sched *sched.State `json:"-"`
}

// CrashBucket is one unique crash signature's triage bucket,
// aggregated from crash events (hits count per-stream discoveries).
type CrashBucket struct {
	Signature   string `json:"sig"`
	Component   string `json:"component,omitempty"`
	Class       string `json:"class,omitempty"`
	Via         string `json:"via,omitempty"`
	Hits        int    `json:"hits"`
	FirstEpoch  int    `json:"first_epoch"`
	FirstStream int    `json:"first_stream"`
	FirstTick   int    `json:"first_tick"`
}

// MutatorYield aggregates one mutator's reward events.
type MutatorYield struct {
	Name    string `json:"name"`
	Rewards int    `json:"rewards"`
	Cov     int    `json:"cov"`
	Crash   int    `json:"crash"`
}

// RegisterMetrics pre-registers every flight_* family so the first
// metrics snapshot carries the full schema.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("flight_events_total", "kind")
	reg.Counter("flight_anomalies_total", "kind")
	reg.Gauge("flight_journal_bytes")
	reg.Counter("flight_journal_rotations_total")
	reg.Gauge("flight_sse_clients")
	reg.Counter("flight_sse_dropped_total")
}

// NewRecorder builds a recorder and, when the campaign starts fresh
// (cfg.Done == 0), writes the campaign header event.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1 << 16
	}
	cfg.Watchdogs = cfg.Watchdogs.withDefaults()
	r := &Recorder{
		cfg:     cfg,
		crashes: map[string]*CrashBucket{},
		yields:  map[string]*MutatorYield{},
		subs:    map[chan []byte]bool{},
	}
	RegisterMetrics(cfg.Registry)
	reg := cfg.Registry // nil-tolerant handles
	r.mEvents = reg.Counter("flight_events_total", "kind")
	r.mAnoms = reg.Counter("flight_anomalies_total", "kind")
	r.mBytes = reg.Gauge("flight_journal_bytes").With()
	r.mRot = reg.Counter("flight_journal_rotations_total").With()
	r.mClients = reg.Gauge("flight_sse_clients").With()
	r.mDropped = reg.Counter("flight_sse_dropped_total").With()
	if rw, ok := cfg.Journal.(*obs.RotatingWriter); ok && rw != nil {
		rw.OnRotate = r.mRot.Inc
	}
	for i := 0; i < cfg.Streams; i++ {
		r.streams = append(r.streams, &Stream{rec: r, id: i})
	}
	r.wd.init()
	if cfg.Done == 0 {
		r.mu.Lock()
		r.appendLocked(Event{Stream: -1, Kind: "campaign", Data: map[string]any{
			"seed": cfg.Seed, "streams": cfg.Streams, "total": cfg.TotalSteps,
		}})
		r.mu.Unlock()
	}
	return r
}

// Stream returns the emitter for one logical stream (nil when out of
// range or on a nil recorder — emissions then no-op).
func (r *Recorder) Stream(i int) *Stream {
	if r == nil || i < 0 || i >= len(r.streams) {
		return nil
	}
	return r.streams[i]
}

// EmitCampaign buffers a campaign-level event (stream -1) to be
// journaled at the next barrier. Safe for concurrent use — this is the
// entry point for hooks that fire off the stream goroutines, like
// breaker transitions.
func (r *Recorder) EmitCampaign(kind string, data map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.global = append(r.global, Event{Stream: -1, Kind: kind, Data: data})
	r.mu.Unlock()
}

// BreakerHook adapts a recorder into a resil.Breaker transition hook
// journaling open/close transitions as campaign-level events.
func BreakerHook(r *Recorder) func(from, to resil.State) {
	return func(from, to resil.State) {
		r.EmitCampaign("breaker", map[string]any{
			"from": from.String(), "to": to.String(),
		})
	}
}

// EndEpoch drains every stream's buffered events (in stream order),
// journals the barrier summaries, and runs the watchdogs. The engine
// calls it exactly once per epoch, after the coverage merge.
func (r *Recorder) EndEpoch(info EpochInfo) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	quarantines := 0
	for _, s := range r.streams {
		for i := range s.buf {
			ev := s.buf[i]
			ev.Epoch = info.Epoch
			if ev.Kind == "quarantine" {
				quarantines++
			}
			r.noteLocked(ev)
			r.appendLocked(ev)
		}
		s.buf = s.buf[:0]
	}
	for _, ev := range r.global {
		ev.Epoch = info.Epoch
		r.appendLocked(ev)
	}
	r.global = r.global[:0]

	crashes := 0
	for _, si := range info.Streams {
		crashes += si.Crashes
	}
	for _, si := range info.Streams {
		data := map[string]any{"total": si.Total, "edges": si.Edges}
		if si.Crashes > 0 {
			data["crashes"] = si.Crashes
		}
		if si.Pool > 0 {
			data["pool"] = si.Pool
		}
		if si.Poisoned {
			data["poisoned"] = true
		}
		if top := schedTop(si.Sched, r.cfg.ArmNames, 3); len(top) > 0 {
			data["sched"] = top
		}
		r.appendLocked(Event{Epoch: info.Epoch, Stream: si.Stream,
			Tick: si.Ticks, Kind: "stream", Data: data})
	}
	ed := map[string]any{"done": info.Done, "total": info.Total, "edges": info.Edges}
	if crashes > 0 {
		ed["crashes"] = crashes
	}
	if info.Retries > 0 {
		ed["retries"] = info.Retries
	}
	if len(info.Poisoned) > 0 {
		ed["poisoned"] = info.Poisoned
	}
	r.appendLocked(Event{Epoch: info.Epoch, Stream: -1, Kind: "epoch", Data: ed})

	r.watchdogsLocked(info, quarantines)

	r.last = info
	r.epochs = info.Epoch
}

// Checkpoint journals one successful checkpoint write.
func (r *Recorder) Checkpoint(epoch, done, bytes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.appendLocked(Event{Epoch: epoch, Stream: -1, Kind: "checkpoint",
		Data: map[string]any{"done": done, "bytes": bytes}})
	r.mu.Unlock()
}

// End journals campaign completion. Interrupted campaigns write no end
// event — the resumed run's completion provides it, keeping the
// concatenated journal identical to an uninterrupted one.
func (r *Recorder) End(done, edges, crashes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.appendLocked(Event{Epoch: r.epochs, Stream: -1, Kind: "end",
		Data: map[string]any{"done": done, "edges": edges, "crashes": crashes}})
	r.mu.Unlock()
}

// Events returns a copy of the in-memory event ring (oldest first;
// capped at Config.RingSize).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.ring...)
}

// Anomalies returns a copy of every watchdog detection so far.
func (r *Recorder) Anomalies() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.anomalies...)
}

// JournalErr returns the first journal write error (nil when every
// event landed or no journal is attached).
func (r *Recorder) JournalErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jerr
}

// appendLocked journals, rings, counts, and broadcasts one event.
// Callers hold r.mu.
func (r *Recorder) appendLocked(ev Event) {
	line, err := json.Marshal(&ev)
	if err != nil {
		return // undeterministic payloads never reach here by contract
	}
	if r.cfg.Journal != nil && r.jerr == nil {
		if _, werr := r.cfg.Journal.Write(append(line, '\n')); werr != nil {
			r.jerr = werr
		} else {
			r.written += int64(len(line) + 1)
			r.mBytes.Set(r.written)
		}
	}
	if len(r.ring) >= r.cfg.RingSize {
		n := copy(r.ring, r.ring[len(r.ring)-r.cfg.RingSize+1:])
		r.ring = r.ring[:n]
	}
	r.ring = append(r.ring, ev)
	r.mEvents.With(ev.Kind).Inc()
	for ch := range r.subs {
		select {
		case ch <- line:
		default:
			r.dropped++
			r.mDropped.Inc()
		}
	}
}

// Dropped returns how many events have been dropped on slow
// subscribers so far — the counter behind flight_sse_dropped_total,
// exposed so a daemon can surface per-job tap lossiness.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DropSubscribers detaches and closes every live journal subscriber —
// the first rung of a disk-pressure shedding ladder: the per-subscriber
// buffers are the cheapest thing to give back. New subscriptions remain
// possible; gate them at the caller. Returns how many were dropped.
func (r *Recorder) DropSubscribers() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.subs)
	for ch := range r.subs {
		delete(r.subs, ch)
		close(ch)
	}
	r.mClients.Set(0)
	return n
}

// noteLocked updates the console aggregates from one drained stream
// event. Callers hold r.mu.
func (r *Recorder) noteLocked(ev Event) {
	switch ev.Kind {
	case "crash":
		sig, _ := ev.Data["sig"].(string)
		if sig == "" {
			return
		}
		b := r.crashes[sig]
		if b == nil {
			comp, _ := ev.Data["component"].(string)
			class, _ := ev.Data["class"].(string)
			via, _ := ev.Data["via"].(string)
			b = &CrashBucket{Signature: sig, Component: comp, Class: class,
				Via: via, FirstEpoch: ev.Epoch, FirstStream: ev.Stream,
				FirstTick: ev.Tick}
			r.crashes[sig] = b
			r.crashSigs = append(r.crashSigs, sig)
		}
		b.Hits++
	case "reward":
		name, _ := ev.Data["m"].(string)
		if name == "" {
			return
		}
		y := r.yields[name]
		if y == nil {
			y = &MutatorYield{Name: name}
			r.yields[name] = y
		}
		y.Rewards++
		if b, _ := ev.Data["cov"].(bool); b {
			y.Cov++
		}
		if b, _ := ev.Data["crash"].(bool); b {
			y.Crash++
		}
	}
}

// schedTop summarizes a posterior into its top-k arms by mean reward:
// [{"m": name, "picks": n, "mw": milli-mean}, …], ties broken by arm
// index. Returns nil for empty or unnamed posteriors.
func schedTop(st *sched.State, names []string, k int) []map[string]any {
	if st == nil || len(st.Picks) == 0 || len(names) != len(st.Picks) {
		return nil
	}
	var arms []int
	for i, p := range st.Picks {
		if p > 0 {
			arms = append(arms, i)
		}
	}
	if len(arms) == 0 {
		return nil
	}
	mean := func(i int) float64 { return st.Rewards[i] / float64(st.Picks[i]) }
	sort.SliceStable(arms, func(x, y int) bool {
		mx, my := mean(arms[x]), mean(arms[y])
		if mx != my {
			return mx > my
		}
		return arms[x] < arms[y]
	})
	if len(arms) > k {
		arms = arms[:k]
	}
	out := make([]map[string]any, 0, len(arms))
	for _, i := range arms {
		out = append(out, map[string]any{
			"m":     names[i],
			"picks": st.Picks[i],
			"mw":    int64(math.Round(1000 * mean(i))),
		})
	}
	return out
}
