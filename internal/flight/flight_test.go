package flight

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/sched"
)

// barrier fabricates one EpochInfo with uniform per-stream summaries —
// the watchdog tests drive the recorder with synthetic barriers instead
// of a live campaign.
func barrier(epoch, done, edges int, streams ...StreamInfo) EpochInfo {
	return EpochInfo{Epoch: epoch, Done: done, Total: 1000, Edges: edges,
		Streams: streams}
}

func anomalyKinds(r *Recorder) []string {
	var kinds []string
	for _, ev := range r.Anomalies() {
		kinds = append(kinds, ev.Data["watchdog"].(string))
	}
	return kinds
}

func TestHeaderOnlyOnFreshStart(t *testing.T) {
	var fresh, resumed bytes.Buffer
	NewRecorder(Config{Streams: 2, TotalSteps: 100, Seed: 7, Journal: &fresh})
	NewRecorder(Config{Streams: 2, TotalSteps: 100, Seed: 7, Done: 50, Journal: &resumed})
	if !bytes.Contains(fresh.Bytes(), []byte(`"kind":"campaign"`)) {
		t.Errorf("fresh recorder wrote no campaign header: %q", fresh.String())
	}
	if resumed.Len() != 0 {
		t.Errorf("resumed recorder (Done=50) wrote %q, want nothing", resumed.String())
	}
}

// TestEndEpochDrainOrder: mid-epoch stream events are journaled in
// stream order at the barrier with the barrier's epoch stamped on,
// regardless of emission interleaving, followed by the per-stream
// summaries and the epoch event.
func TestEndEpochDrainOrder(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(Config{Streams: 3, TotalSteps: 100, Journal: &buf})
	// Emit "out of order" by stream: 2 first, then 0, then 1.
	r.Stream(2).Emit(5, "cov", map[string]any{"edges": 9})
	r.Stream(0).Emit(3, "cov", map[string]any{"edges": 4})
	r.Stream(1).Emit(7, "crash", map[string]any{"sig": "a|b"})
	r.EndEpoch(barrier(1, 48, 13,
		StreamInfo{Stream: 0, Ticks: 16}, StreamInfo{Stream: 1, Ticks: 16},
		StreamInfo{Stream: 2, Ticks: 16}))

	var got []Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte{'\n'}) {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		got = append(got, ev)
	}
	wantKinds := []string{"campaign", "cov", "crash", "cov",
		"stream", "stream", "stream", "epoch"}
	wantStreams := []int{-1, 0, 1, 2, 0, 1, 2, -1}
	if len(got) != len(wantKinds) {
		t.Fatalf("journal has %d events, want %d", len(got), len(wantKinds))
	}
	for i, ev := range got {
		if ev.Kind != wantKinds[i] || ev.Stream != wantStreams[i] {
			t.Errorf("event %d = %s/stream%d, want %s/stream%d",
				i, ev.Kind, ev.Stream, wantKinds[i], wantStreams[i])
		}
		if ev.Kind != "campaign" && ev.Epoch != 1 {
			t.Errorf("event %d (%s) stamped epoch %d, want 1", i, ev.Kind, ev.Epoch)
		}
	}
}

func TestRingCapEvictsOldest(t *testing.T) {
	r := NewRecorder(Config{Streams: 1, RingSize: 8})
	for i := 0; i < 30; i++ {
		r.Checkpoint(1, i, 100)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	if done := evs[len(evs)-1].Data["done"]; done != 29 {
		t.Errorf("newest ring event done=%v, want 29", done)
	}
}

func TestWatchdogStalledStreamFiresAndRearms(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Streams: 2, Registry: reg})
	live := func(ticks0, ticks1 int) []StreamInfo {
		return []StreamInfo{{Stream: 0, Ticks: ticks0}, {Stream: 1, Ticks: ticks1}}
	}
	// Stream 1 advances every epoch; stream 0 freezes at 100.
	r.EndEpoch(barrier(1, 10, 5, live(100, 100)...))
	for e := 2; e <= 5; e++ { // 4 consecutive frozen epochs for stream 0
		r.EndEpoch(barrier(e, 10*e, 5+e, live(100, 100*e)...))
	}
	if got := anomalyKinds(r); len(got) != 1 || got[0] != "stalled_stream" {
		t.Fatalf("anomalies after 4 frozen epochs = %v, want [stalled_stream]", got)
	}
	if ev := r.Anomalies()[0]; ev.Stream != 0 || ev.Epoch != 5 {
		t.Errorf("stall attributed to stream %d epoch %d, want stream 0 epoch 5",
			ev.Stream, ev.Epoch)
	}
	// Stream 0 moves again (re-arms the detector), then freezes again.
	r.EndEpoch(barrier(6, 60, 12, live(120, 600)...))
	for e := 7; e <= 10; e++ {
		r.EndEpoch(barrier(e, 10*e, 6+e, live(120, 100*e)...))
	}
	if got := anomalyKinds(r); len(got) != 2 {
		t.Fatalf("detector did not re-arm after progress: %v", got)
	}
	if v := reg.Counter("flight_anomalies_total", "kind").With("stalled_stream").Value(); v != 2 {
		t.Errorf("flight_anomalies_total{stalled_stream} = %d, want 2", v)
	}
}

func TestWatchdogSkipsPoisonedStreams(t *testing.T) {
	r := NewRecorder(Config{Streams: 1})
	for e := 1; e <= 10; e++ { // frozen forever, but poisoned
		r.EndEpoch(barrier(e, 10*e, 5,
			StreamInfo{Stream: 0, Ticks: 100, Poisoned: true}))
	}
	for _, kind := range anomalyKinds(r) {
		if kind == "stalled_stream" {
			t.Error("poisoned stream reported as stalled")
		}
	}
}

func TestWatchdogCoveragePlateau(t *testing.T) {
	r := NewRecorder(Config{Streams: 1})
	si := StreamInfo{Stream: 0}
	for e := 1; e <= 9; e++ {
		si.Ticks = 100 * e
		r.EndEpoch(barrier(e, 10*e, 42, si)) // edges never move
	}
	got := anomalyKinds(r)
	if len(got) != 1 || got[0] != "coverage_plateau" {
		t.Fatalf("anomalies = %v, want [coverage_plateau]", got)
	}
	if ep := r.Anomalies()[0].Epoch; ep != 9 {
		t.Errorf("plateau fired at epoch %d, want 9 (8 flat epochs after baseline)", ep)
	}
	// Once fired it stays quiet until edges grow again.
	si.Ticks = 1000
	r.EndEpoch(barrier(10, 100, 42, si))
	if n := len(r.Anomalies()); n != 1 {
		t.Errorf("plateau re-fired without coverage growth: %d anomalies", n)
	}
}

func TestWatchdogQuarantineStorm(t *testing.T) {
	r := NewRecorder(Config{Streams: 1})
	for i := 0; i < 3; i++ {
		r.Stream(0).Emit(10+i, "quarantine", map[string]any{"id": i})
	}
	r.EndEpoch(barrier(1, 16, 5, StreamInfo{Stream: 0, Ticks: 16}))
	got := anomalyKinds(r)
	if len(got) != 1 || got[0] != "quarantine_storm" {
		t.Fatalf("anomalies = %v, want [quarantine_storm]", got)
	}
	if c := r.Anomalies()[0].Data["count"]; c != 3 {
		t.Errorf("storm count = %v, want 3", c)
	}
}

func TestWatchdogRetrySpike(t *testing.T) {
	r := NewRecorder(Config{Streams: 1})
	info := barrier(1, 16, 5, StreamInfo{Stream: 0, Ticks: 16})
	info.Retries = 3 // below default threshold 4
	r.EndEpoch(info)
	if n := len(r.Anomalies()); n != 0 {
		t.Fatalf("3 retries raised %d anomalies, threshold is 4", n)
	}
	info = barrier(2, 32, 5, StreamInfo{Stream: 0, Ticks: 32})
	info.Retries = 5
	r.EndEpoch(info)
	got := anomalyKinds(r)
	if len(got) != 1 || got[0] != "retry_spike" {
		t.Fatalf("anomalies = %v, want [retry_spike]", got)
	}
}

func TestWatchdogSchedStarvation(t *testing.T) {
	r := NewRecorder(Config{Streams: 1, ArmNames: []string{"a", "b", "c"}})
	post := &sched.State{Kind: "adaptive", Arms: 3, Ticks: 2500,
		Picks: []int64{1200, 0, 1300}, Rewards: []float64{10, 0, 20}}
	r.EndEpoch(barrier(1, 16, 5,
		StreamInfo{Stream: 0, Ticks: 2500, Sched: post}))
	got := anomalyKinds(r)
	if len(got) != 1 || got[0] != "sched_starvation" {
		t.Fatalf("anomalies = %v, want [sched_starvation]", got)
	}
	data := r.Anomalies()[0].Data
	if data["arms"] != 1 || data["first"] != "b" {
		t.Errorf("starvation data = %v, want arms=1 first=b", data)
	}
	// Fires once per stream, even while the arm stays unpicked.
	r.EndEpoch(barrier(2, 32, 6,
		StreamInfo{Stream: 0, Ticks: 2600, Sched: post}))
	if n := len(r.Anomalies()); n != 1 {
		t.Errorf("starvation fired %d times for one stream, want 1", n)
	}
}

func TestWatchdogThroughputRegression(t *testing.T) {
	r := NewRecorder(Config{Streams: 1,
		Watchdogs: WatchdogConfig{BaselineEdgesPer1k: 1000}})
	// 500 ticks: below RegressionMinTicks, no judgment yet.
	r.EndEpoch(barrier(1, 500, 10, StreamInfo{Stream: 0, Ticks: 500}))
	if n := len(r.Anomalies()); n != 0 {
		t.Fatalf("regression judged before RegressionMinTicks: %d anomalies", n)
	}
	// 2500 ticks at 10 edges → 4 edges/1k, far below the 500 floor.
	r.EndEpoch(barrier(2, 2500, 10, StreamInfo{Stream: 0, Ticks: 2500}))
	got := anomalyKinds(r)
	if len(got) != 1 || got[0] != "throughput_regression" {
		t.Fatalf("anomalies = %v, want [throughput_regression]", got)
	}
	data := r.Anomalies()[0].Data
	if data["edges_per_1k"] != 4 || data["baseline_per_1k"] != 1000 ||
		data["floor_milli"] != 500 {
		t.Errorf("regression data = %v", data)
	}
	// Fires once.
	r.EndEpoch(barrier(3, 3000, 10, StreamInfo{Stream: 0, Ticks: 3000}))
	if n := len(r.Anomalies()); n != 1 {
		t.Errorf("regression fired %d times, want 1", n)
	}
}

func TestWatchdogDisable(t *testing.T) {
	r := NewRecorder(Config{Streams: 1,
		Watchdogs: WatchdogConfig{Disable: true, BaselineEdgesPer1k: 1000}})
	for i := 0; i < 5; i++ {
		r.Stream(0).Emit(i, "quarantine", map[string]any{"id": i})
	}
	for e := 1; e <= 12; e++ { // frozen ticks, flat edges, huge retries
		info := barrier(e, 10*e, 5, StreamInfo{Stream: 0, Ticks: 5000})
		info.Retries = 99
		r.EndEpoch(info)
	}
	if n := len(r.Anomalies()); n != 0 {
		t.Errorf("disabled watchdogs raised %d anomalies", n)
	}
}

func TestBenchBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `{"variants":[
		{"name":"uniform","sched":"uniform","edges_per_1k_ticks":1500.5},
		{"name":"uniform+cache","sched":"uniform","edges_per_1k_ticks":1629.0},
		{"name":"adaptive","sched":"adaptive","edges_per_1k_ticks":1700.25}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := BenchBaseline(path, "uniform"); err != nil || got != 1629.0 {
		t.Errorf("uniform baseline = %v, %v; want cache variant 1629.0", got, err)
	}
	if got, err := BenchBaseline(path, ""); err != nil || got != 1629.0 {
		t.Errorf("empty kind baseline = %v, %v; want uniform+cache 1629.0", got, err)
	}
	// No adaptive+cache variant: best bare adaptive match wins.
	if got, err := BenchBaseline(path, "adaptive"); err != nil || got != 1700.25 {
		t.Errorf("adaptive baseline = %v, %v; want 1700.25", got, err)
	}
	if _, err := BenchBaseline(path, "thompson"); err == nil {
		t.Error("unknown policy resolved to a baseline, want error")
	}
	if _, err := BenchBaseline(filepath.Join(t.TempDir(), "gone.json"), "uniform"); err == nil {
		t.Error("missing baseline file did not error")
	}
}

func TestBenchBaselineCommittedFile(t *testing.T) {
	// The repo's committed ablation record must stay consumable — it is
	// what `mucfuzz -flight-baseline BENCH_sched.json` arms the
	// regression watchdog with.
	for _, kind := range []string{"uniform", "adaptive"} {
		got, err := BenchBaseline("../../BENCH_sched.json", kind)
		if err != nil {
			t.Fatalf("BENCH_sched.json unusable for %q: %v", kind, err)
		}
		if got <= 0 {
			t.Errorf("%q baseline = %v, want > 0", kind, got)
		}
	}
}

func TestSchedTop(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	st := &sched.State{Picks: []int64{10, 0, 5, 20},
		Rewards: []float64{5, 0, 4, 2}} // means: 0.5, -, 0.8, 0.1
	top := schedTop(st, names, 2)
	if len(top) != 2 {
		t.Fatalf("schedTop returned %d arms, want 2", len(top))
	}
	if top[0]["m"] != "c" || top[0]["mw"] != int64(800) {
		t.Errorf("top arm = %v, want c/800", top[0])
	}
	if top[1]["m"] != "a" || top[1]["picks"] != int64(10) {
		t.Errorf("second arm = %v, want a/10 picks", top[1])
	}
	if schedTop(nil, names, 3) != nil {
		t.Error("nil posterior should summarize to nil")
	}
	if schedTop(st, names[:2], 3) != nil {
		t.Error("name/arm length mismatch should summarize to nil")
	}
	if schedTop(&sched.State{Picks: make([]int64, 4), Rewards: make([]float64, 4)},
		names, 3) != nil {
		t.Error("all-zero posterior should summarize to nil")
	}
}

// feedConsole drives one recorder through a deterministic event
// sequence covering triage, yields, posteriors, and an anomaly.
func feedConsole(r *Recorder) {
	r.Stream(0).Emit(3, "reward", map[string]any{"m": "swap", "cov": true})
	r.Stream(0).Emit(5, "crash", map[string]any{
		"sig": "x|y", "component": "Parser", "class": "ICE", "via": "swap"})
	r.Stream(1).Emit(2, "reward", map[string]any{"m": "hoist", "crash": true})
	r.Stream(1).Emit(4, "crash", map[string]any{
		"sig": "x|y", "component": "Parser", "class": "ICE", "via": "swap"})
	post := &sched.State{Picks: []int64{6, 10}, Rewards: []float64{3, 1}}
	info := barrier(1, 32, 7,
		StreamInfo{Stream: 0, Ticks: 16, Total: 20, Crashes: 1, Edges: 5,
			Pool: 9, Sched: post},
		StreamInfo{Stream: 1, Ticks: 16, Total: 19, Crashes: 1, Edges: 4,
			Sched: post})
	info.Retries = 5 // trips retry_spike so Anomalies is non-empty
	r.EndEpoch(info)
}

func TestConsoleDeterministicAndAggregated(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder(Config{Streams: 2, TotalSteps: 100, Seed: 9,
			ArmNames: []string{"swap", "hoist"}})
		feedConsole(r)
		return r
	}
	a, b := build().Console(), build().Console()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("identical campaigns render different console JSON:\n%s\n%s", aj, bj)
	}

	if a.Progress.Done != 32 || a.Progress.Edges != 7 || a.Progress.Crashes != 2 {
		t.Errorf("progress = %+v", a.Progress)
	}
	if len(a.Triage) != 1 || a.Triage[0].Hits != 2 || a.Triage[0].Via != "swap" {
		t.Errorf("triage = %+v, want one x|y bucket with 2 hits via swap", a.Triage)
	}
	if len(a.Mutators) != 2 || a.Mutators[0].Name != "hoist" {
		// hoist has a crash credit, which outranks swap's coverage credit.
		t.Errorf("mutators = %+v, want hoist first", a.Mutators)
	}
	// Both streams share the posterior: picks double, means survive.
	if len(a.Sched) != 2 || a.Sched[0].Name != "swap" || a.Sched[0].Picks != 12 ||
		a.Sched[0].MeanMilli != 500 {
		t.Errorf("sched = %+v, want swap first with 12 picks mean 500m", a.Sched)
	}
	if len(a.Anomalies) != 1 {
		t.Errorf("console carries %d anomalies, want 1", len(a.Anomalies))
	}
	if (*Recorder)(nil).Console() == nil {
		t.Error("nil recorder console must be non-nil")
	}
}

func TestHandleConsoleEndpoint(t *testing.T) {
	r := NewRecorder(Config{Streams: 2, TotalSteps: 100, Seed: 9,
		ArmNames: []string{"swap", "hoist"}})
	feedConsole(r)
	routes := Routes(r)
	if len(routes) != 2 {
		t.Fatalf("Routes returned %d routes, want 2", len(routes))
	}
	if Routes(nil) != nil {
		t.Error("nil recorder should mount no routes")
	}
	rec := httptest.NewRecorder()
	r.handleConsole(rec, httptest.NewRequest("GET", "/debug/campaign", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var st ConsoleState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("console payload is not JSON: %v", err)
	}
	if st.Campaign.Seed != 9 || st.Progress.Done != 32 {
		t.Errorf("decoded console = %+v", st)
	}
}

func TestSubscribeDeliversJournalLines(t *testing.T) {
	r := NewRecorder(Config{Streams: 1})
	ch, cancel := r.Subscribe()
	defer cancel()
	r.Checkpoint(2, 64, 1234)
	select {
	case line := <-ch:
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil || ev.Kind != "checkpoint" {
			t.Errorf("subscriber got %q (%v), want a checkpoint event", line, err)
		}
	default:
		t.Fatal("subscriber channel empty after an append")
	}
	cancel()
	cancel() // idempotent
	r.Checkpoint(3, 96, 1234)
	select {
	case _, open := <-ch:
		if open {
			t.Error("cancelled subscriber still receives events")
		}
	default: // nothing delivered: also fine
	}
}

func TestSubscribeSlowConsumerDrops(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Streams: 1, Registry: reg})
	_, cancel := r.Subscribe()
	defer cancel()
	for i := 0; i < 1100; i++ { // channel buffers 1024; the rest drop
		r.Checkpoint(1, i, 10)
	}
	if v := reg.Counter("flight_sse_dropped_total").With().Value(); v == 0 {
		t.Error("no drops counted for a saturated subscriber")
	}
	if v := reg.Gauge("flight_sse_clients").With().Value(); v != 1 {
		t.Errorf("flight_sse_clients = %d, want 1", v)
	}
	cancel()
	if v := reg.Gauge("flight_sse_clients").With().Value(); v != 0 {
		t.Errorf("flight_sse_clients after cancel = %d, want 0", v)
	}
}

// sseRecorder is a goroutine-safe http.ResponseWriter+Flusher: the SSE
// handler writes from its own goroutine while the test polls the body
// (httptest.ResponseRecorder is not safe for that).
type sseRecorder struct {
	mu     sync.Mutex
	header http.Header
	buf    bytes.Buffer
}

func (r *sseRecorder) Header() http.Header { return r.header }
func (r *sseRecorder) WriteHeader(int)     {}
func (r *sseRecorder) Flush()              {}
func (r *sseRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Write(p)
}
func (r *sseRecorder) Body() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.String()
}

func TestSSEHandlerStreamsEvents(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(Config{Streams: 1, Registry: reg})
	req := httptest.NewRequest("GET", "/debug/campaign/stream", nil)
	ctx, cancelReq := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	rec := &sseRecorder{header: http.Header{}}
	done := make(chan struct{})
	go func() {
		r.handleSSE(rec, req)
		close(done)
	}()
	// Wait for the handler to subscribe, then emit and disconnect.
	clients := reg.Gauge("flight_sse_clients").With()
	for i := 0; clients.Value() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if clients.Value() == 0 {
		t.Fatal("SSE handler never subscribed")
	}
	r.Checkpoint(1, 10, 99)
	for i := 0; !strings.Contains(rec.Body(), "checkpoint") && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancelReq()
	<-done
	body := rec.Body()
	if !strings.HasPrefix(body, ": flight journal stream\n\n") {
		t.Errorf("SSE preamble missing: %q", body)
	}
	if !strings.Contains(body, `data: {"epoch":1,"stream":-1,"kind":"checkpoint"`) {
		t.Errorf("SSE body missing checkpoint event: %q", body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type = %q", ct)
	}
}

func TestBreakerHookJournalsTransitions(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(Config{Streams: 1, Journal: &buf})
	hook := BreakerHook(r)
	hook(resil.Closed, resil.Open)
	r.EndEpoch(barrier(1, 16, 3, StreamInfo{Stream: 0, Ticks: 16}))
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"breaker"`)) {
		t.Errorf("breaker transition not journaled: %s", buf.String())
	}
	var ev Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte{'\n'}) {
		json.Unmarshal(line, &ev)
		if ev.Kind == "breaker" {
			break
		}
	}
	if ev.Data["from"] != "closed" || ev.Data["to"] != "open" || ev.Epoch != 1 {
		t.Errorf("breaker event = %+v", ev)
	}
}

func TestJournalErrorIsSticky(t *testing.T) {
	r := NewRecorder(Config{Streams: 1, Journal: failWriter{}})
	if err := r.JournalErr(); err == nil {
		t.Fatal("failed header write not surfaced by JournalErr")
	}
	r.Checkpoint(1, 10, 5) // must not panic or reset the error
	if err := r.JournalErr(); err == nil || err.Error() != "disk gone" {
		t.Errorf("JournalErr = %v, want sticky 'disk gone'", err)
	}
	if len(r.Events()) == 0 {
		t.Error("ring stopped recording after a journal error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errDiskGone }

var errDiskGone = errors.New("disk gone")

func TestStatusLine(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStatus()
	s.Now = func() time.Time { return now }

	first := s.Line(0, 1000, 0, 0, 95.0)
	if !strings.Contains(first, "warming up") {
		t.Errorf("first line = %q, want warming-up marker", first)
	}
	now = now.Add(10 * time.Second) // 100 steps and 50 edges in 10s
	line := s.Line(100, 1000, 50, 1, 95.0)
	if !strings.Contains(line, "10.0 steps/s") || !strings.Contains(line, "5.0 edges/s") {
		t.Errorf("line = %q, want 10.0 steps/s and 5.0 edges/s", line)
	}
	if !strings.Contains(line, "eta 1m30s") { // 900 remaining / 10 per s
		t.Errorf("line = %q, want eta 1m30s", line)
	}
	// Three flat-coverage updates raise the stall flag.
	for i := 0; i < 3; i++ {
		now = now.Add(10 * time.Second)
		line = s.Line(100+(i+1)*10, 1000, 50, 1, 95.0)
	}
	if !strings.Contains(line, "[STALL]") {
		t.Errorf("line = %q, want [STALL] after 3 flat updates", line)
	}
	now = now.Add(10 * time.Second)
	if line = s.Line(140, 1000, 60, 1, 95.0); strings.Contains(line, "[STALL]") {
		t.Errorf("line = %q, stall flag should clear on new coverage", line)
	}
}

func TestReportTimelineCompression(t *testing.T) {
	events := []Event{{Stream: -1, Kind: "campaign",
		Data: map[string]any{"seed": 1, "streams": 2, "total": 10000}}}
	for e := 1; e <= 40; e++ {
		events = append(events, Event{Epoch: e, Stream: -1, Kind: "epoch",
			Data: map[string]any{"done": 100 * e, "total": 10000, "edges": 5 * e}})
	}
	rep := BuildReport(events)
	if len(rep.Epochs) != 40 {
		t.Fatalf("report has %d epoch rows, want 40", len(rep.Epochs))
	}
	out := rep.Render()
	if !strings.Contains(out, "omitted") {
		t.Errorf("40-epoch timeline not compressed:\n%s", out)
	}
	if !strings.Contains(out, "interrupted") {
		t.Errorf("endless journal should render as interrupted:\n%s", out)
	}
	// Rendering is a pure function of the events.
	if out != BuildReport(events).Render() {
		t.Error("Render is not deterministic")
	}
}

func TestReadJournalRejectsMalformedLines(t *testing.T) {
	in := strings.NewReader(`{"epoch":1,"stream":-1,"kind":"epoch"}` + "\n\n{not json\n")
	if _, err := ReadJournal(in); err == nil ||
		!strings.Contains(err.Error(), "line 3") {
		t.Errorf("malformed line error = %v, want line 3 reference", err)
	}
	events, err := ReadJournal(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty journal = %v, %v", events, err)
	}
}

// TestRestoreWatchdogsContinuesCounters: a recorder rebuilt over a
// journal prefix (checkpoint resume) must fire the same anomalies at
// the same epochs as one that lived through the whole campaign —
// counters continue, fired latches survive, and journal bytes match.
func TestRestoreWatchdogsContinuesCounters(t *testing.T) {
	live := func(ticks0, ticks1 int) []StreamInfo {
		return []StreamInfo{{Stream: 0, Ticks: ticks0}, {Stream: 1, Ticks: ticks1}}
	}
	drive := func(r *Recorder, from, to int) {
		// Stream 0 freezes at 100 after epoch 1; stream 1 advances, and
		// coverage grows so only the stall detector is in play.
		for e := from; e <= to; e++ {
			r.EndEpoch(barrier(e, 10*e, 5+e, live(100, 100*e)...))
		}
	}
	var whole bytes.Buffer
	ref := NewRecorder(Config{Streams: 2, Journal: &whole})
	drive(ref, 1, 8)

	// Interrupted at epoch 3 — two frozen epochs banked, stall not yet
	// fired — and resumed by a fresh recorder.
	var prefix bytes.Buffer
	first := NewRecorder(Config{Streams: 2, Journal: &prefix})
	drive(first, 1, 3)
	var tail bytes.Buffer
	resumed := NewRecorder(Config{Streams: 2, Done: 30, Journal: &tail})
	resumed.RestoreWatchdogs(prefix.Bytes())
	drive(resumed, 4, 8)

	wantTail := strings.TrimPrefix(whole.String(), prefix.String())
	if wantTail == whole.String() {
		t.Fatal("prefix journal is not a prefix of the uninterrupted journal")
	}
	if tail.String() != wantTail {
		t.Errorf("resumed journal tail diverged:\ngot  %q\nwant %q", tail.String(), wantTail)
	}
	if got := anomalyKinds(resumed); len(got) != 1 || got[0] != "stalled_stream" {
		t.Fatalf("resumed anomalies = %v, want [stalled_stream]", got)
	}
	if ev := resumed.Anomalies()[0]; ev.Epoch != 5 {
		t.Errorf("resumed stall fired at epoch %d, want 5 (absolute)", ev.Epoch)
	}

	// A restart after the stall fired must not re-fire it.
	var tail2 bytes.Buffer
	again := NewRecorder(Config{Streams: 2, Done: 60, Journal: &tail2})
	again.RestoreWatchdogs(append(prefix.Bytes(), tail.Bytes()...))
	drive(again, 9, 10)
	if got := anomalyKinds(again); len(got) != 0 {
		t.Errorf("latched stall re-fired after restore: %v", got)
	}
}
