package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/obs"
)

// ReadJournal parses a JSONL flight journal back into events. Blank
// lines are skipped; a malformed line is an error (journals are
// machine-written, so damage means truncation or corruption worth
// surfacing).
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var out []Event
	n := 0
	for sc.Scan() {
		n++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("flight: journal line %d: %w", n, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Report is the replayed, aggregated view of one campaign journal.
type Report struct {
	Seed    int64 `json:"seed"`
	Streams int   `json:"streams"`
	Total   int   `json:"total_steps"`

	Epochs      []EpochRow     `json:"epochs,omitempty"`
	Mutators    []MutatorYield `json:"mutators,omitempty"`
	Crashes     []CrashRow     `json:"crashes,omitempty"`
	Anomalies   []AnomalyRow   `json:"anomalies,omitempty"`
	Checkpoints int            `json:"checkpoints"`
	Quarantines int            `json:"quarantines"`
	Paroles     int            `json:"paroles"`
	Breaker     int            `json:"breaker_transitions"`

	Ended        bool `json:"ended"`
	FinalDone    int  `json:"final_done"`
	FinalEdges   int  `json:"final_edges"`
	FinalCrashes int  `json:"final_crashes"`
}

// EpochRow is one barrier in the timeline.
type EpochRow struct {
	Epoch    int   `json:"epoch"`
	Done     int   `json:"done"`
	Edges    int   `json:"edges"`
	Crashes  int   `json:"crashes"`
	Retries  int   `json:"retries,omitempty"`
	Poisoned []int `json:"poisoned,omitempty"`
}

// CrashRow is one per-stream first discovery.
type CrashRow struct {
	Epoch     int    `json:"epoch"`
	Stream    int    `json:"stream"`
	Tick      int    `json:"tick"`
	Signature string `json:"sig"`
	Component string `json:"component,omitempty"`
	Class     string `json:"class,omitempty"`
	Via       string `json:"via,omitempty"`
}

// AnomalyRow is one watchdog detection.
type AnomalyRow struct {
	Epoch    int    `json:"epoch"`
	Stream   int    `json:"stream"`
	Watchdog string `json:"watchdog"`
	Detail   string `json:"detail,omitempty"`
}

// evInt reads a numeric Data field, tolerating both the in-memory int
// and the JSON-round-tripped float64 representation.
func evInt(d map[string]any, key string) int {
	switch v := d[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}

func evStr(d map[string]any, key string) string {
	s, _ := d[key].(string)
	return s
}

func evBool(d map[string]any, key string) bool {
	b, _ := d[key].(bool)
	return b
}

func evInts(d map[string]any, key string) []int {
	switch v := d[key].(type) {
	case []int:
		return append([]int(nil), v...)
	case []any:
		out := make([]int, 0, len(v))
		for _, e := range v {
			if f, ok := e.(float64); ok {
				out = append(out, int(f))
			}
		}
		return out
	}
	return nil
}

// BuildReport replays a journal (or a recorder's event ring) into a
// Report. It accepts partial journals — an interrupted campaign simply
// has Ended false.
func BuildReport(events []Event) *Report {
	rep := &Report{}
	yields := map[string]*MutatorYield{}
	for _, ev := range events {
		switch ev.Kind {
		case "campaign":
			rep.Seed = int64(evInt(ev.Data, "seed"))
			rep.Streams = evInt(ev.Data, "streams")
			rep.Total = evInt(ev.Data, "total")
		case "epoch":
			rep.Epochs = append(rep.Epochs, EpochRow{
				Epoch:    ev.Epoch,
				Done:     evInt(ev.Data, "done"),
				Edges:    evInt(ev.Data, "edges"),
				Crashes:  evInt(ev.Data, "crashes"),
				Retries:  evInt(ev.Data, "retries"),
				Poisoned: evInts(ev.Data, "poisoned"),
			})
		case "reward":
			name := evStr(ev.Data, "m")
			if name == "" {
				continue
			}
			y := yields[name]
			if y == nil {
				y = &MutatorYield{Name: name}
				yields[name] = y
			}
			y.Rewards++
			if evBool(ev.Data, "cov") {
				y.Cov++
			}
			if evBool(ev.Data, "crash") {
				y.Crash++
			}
		case "crash":
			rep.Crashes = append(rep.Crashes, CrashRow{
				Epoch:     ev.Epoch,
				Stream:    ev.Stream,
				Tick:      ev.Tick,
				Signature: evStr(ev.Data, "sig"),
				Component: evStr(ev.Data, "component"),
				Class:     evStr(ev.Data, "class"),
				Via:       evStr(ev.Data, "via"),
			})
		case "anomaly":
			rep.Anomalies = append(rep.Anomalies, AnomalyRow{
				Epoch:    ev.Epoch,
				Stream:   ev.Stream,
				Watchdog: evStr(ev.Data, "watchdog"),
				Detail:   detailString(ev.Data),
			})
		case "checkpoint":
			rep.Checkpoints++
		case "quarantine":
			rep.Quarantines++
		case "parole":
			rep.Paroles++
		case "breaker":
			rep.Breaker++
		case "end":
			rep.Ended = true
			rep.FinalDone = evInt(ev.Data, "done")
			rep.FinalEdges = evInt(ev.Data, "edges")
			rep.FinalCrashes = evInt(ev.Data, "crashes")
		}
	}
	for _, y := range yields {
		rep.Mutators = append(rep.Mutators, *y)
	}
	sort.Slice(rep.Mutators, func(i, j int) bool {
		a, b := rep.Mutators[i], rep.Mutators[j]
		if a.Crash != b.Crash {
			return a.Crash > b.Crash
		}
		if a.Cov != b.Cov {
			return a.Cov > b.Cov
		}
		if a.Rewards != b.Rewards {
			return a.Rewards > b.Rewards
		}
		return a.Name < b.Name
	})
	return rep
}

// detailString renders an anomaly's payload (minus the watchdog key)
// as sorted "k=v" pairs.
func detailString(d map[string]any) string {
	keys := make([]string, 0, len(d))
	for k := range d {
		if k != "watchdog" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, d[k]))
	}
	return strings.Join(parts, " ")
}

// Render formats the report as stable human-readable text: equal
// reports render to equal strings.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight report — seed %d, %d streams, budget %d steps\n",
		r.Seed, r.Streams, r.Total)

	fmt.Fprintf(&b, "\ntimeline (%d epochs):\n", len(r.Epochs))
	if len(r.Epochs) > 0 {
		fmt.Fprintf(&b, "  %6s %8s %8s %8s %8s  %s\n",
			"epoch", "done", "edges", "crashes", "retries", "poisoned")
		rows := r.Epochs
		const maxRows = 24
		if len(rows) > maxRows {
			head, tail := rows[:maxRows/2], rows[len(rows)-maxRows/2:]
			for _, row := range head {
				b.WriteString(epochLine(row))
			}
			fmt.Fprintf(&b, "  %6s (%d epochs omitted)\n", "⋯", len(rows)-maxRows)
			rows = tail
		}
		for _, row := range rows {
			b.WriteString(epochLine(row))
		}
	}

	fmt.Fprintf(&b, "\ntop mutators by reward (%d earned rewards):\n", len(r.Mutators))
	top := r.Mutators
	if len(top) > 15 {
		top = top[:15]
	}
	for i, y := range top {
		fmt.Fprintf(&b, "  %2d. %-28s rewards=%-5d cov=%-5d crash=%d\n",
			i+1, y.Name, y.Rewards, y.Cov, y.Crash)
	}

	fmt.Fprintf(&b, "\ncrashes (%d per-stream first discoveries):\n", len(r.Crashes))
	for _, c := range r.Crashes {
		fmt.Fprintf(&b, "  epoch %-4d stream %-3d tick %-6d %s/%s via=%s sig=%.12s\n",
			c.Epoch, c.Stream, c.Tick, c.Component, c.Class, c.Via, c.Signature)
	}

	fmt.Fprintf(&b, "\nanomalies (%d):\n", len(r.Anomalies))
	for _, a := range r.Anomalies {
		where := "campaign"
		if a.Stream >= 0 {
			where = fmt.Sprintf("stream %d", a.Stream)
		}
		fmt.Fprintf(&b, "  epoch %-4d %-10s %-22s %s\n", a.Epoch, where, a.Watchdog, a.Detail)
	}

	fmt.Fprintf(&b, "\ncheckpoints=%d quarantines=%d paroles=%d breaker_transitions=%d\n",
		r.Checkpoints, r.Quarantines, r.Paroles, r.Breaker)
	if r.Ended {
		fmt.Fprintf(&b, "end: done=%d edges=%d crashes=%d\n",
			r.FinalDone, r.FinalEdges, r.FinalCrashes)
	} else {
		b.WriteString("end: (no end event — campaign interrupted or journal truncated)\n")
	}
	return b.String()
}

func epochLine(row EpochRow) string {
	retries, poisoned := "-", "-"
	if row.Retries > 0 {
		retries = fmt.Sprintf("%d", row.Retries)
	}
	if len(row.Poisoned) > 0 {
		parts := make([]string, len(row.Poisoned))
		for i, s := range row.Poisoned {
			parts[i] = fmt.Sprintf("%d", s)
		}
		poisoned = strings.Join(parts, ",")
	}
	return fmt.Sprintf("  %6d %8d %8d %8d %8s  %s\n",
		row.Epoch, row.Done, row.Edges, row.Crashes, retries, poisoned)
}

// RenderLatency renders the stage-latency table from a metrics
// snapshot — the wall-clock companion the journal deliberately omits.
func RenderLatency(snap *obs.Snapshot) string {
	rows := LatencyRows(snap)
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nstage latency (from metrics snapshot):\n")
	fmt.Fprintf(&b, "  %-40s %10s %12s %12s %12s\n",
		"stage", "count", "mean_ms", "p50_ms", "p95_ms")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-40s %10d %12.3f %12.3f %12.3f\n",
			row.Name, row.Count, row.MeanMs, row.P50Ms, row.P95Ms)
	}
	return b.String()
}
