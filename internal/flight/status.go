package flight

import (
	"fmt"
	"time"
)

// Status renders the interactive fuzzer status line: progress, an
// exponentially smoothed throughput (steps/s and edges/s), an ETA
// derived from the remaining budget, and a stall flag when coverage
// stops moving. It is presentation-only — it never feeds the journal,
// so its wall-clock readings cannot perturb determinism.
type Status struct {
	// Now is the clock, overridable in tests (defaults to time.Now).
	Now func() time.Time

	alpha     float64
	primed    bool
	lastAt    time.Time
	lastDone  int
	lastEdges int
	stepRate  float64 // steps/s EMA
	edgeRate  float64 // edges/s EMA
	flatFor   int     // consecutive updates with no new edges
}

// NewStatus returns a status line tracker with smoothing factor 0.4.
func NewStatus() *Status {
	//detlint:allow wallclock status-line EMA clock; presentation-only and overridable in tests
	return &Status{Now: time.Now, alpha: 0.4}
}

// Line folds one observation into the EMAs and renders the status
// line. The first call only records the baseline and reports rates as
// warming up.
func (s *Status) Line(done, total, edges, crashes int, compilablePct float64) string {
	now := s.Now()
	head := fmt.Sprintf("steps %d/%d  edges %d  crashes %d  compilable %.1f%%",
		done, total, edges, crashes, compilablePct)
	if !s.primed {
		s.primed = true
		s.lastAt, s.lastDone, s.lastEdges = now, done, edges
		return head + "  (warming up)"
	}
	dt := now.Sub(s.lastAt).Seconds()
	if dt > 0 {
		stepInst := float64(done-s.lastDone) / dt
		edgeInst := float64(edges-s.lastEdges) / dt
		if s.stepRate == 0 && s.edgeRate == 0 {
			s.stepRate, s.edgeRate = stepInst, edgeInst
		} else {
			s.stepRate += s.alpha * (stepInst - s.stepRate)
			s.edgeRate += s.alpha * (edgeInst - s.edgeRate)
		}
	}
	if edges > s.lastEdges {
		s.flatFor = 0
	} else {
		s.flatFor++
	}
	s.lastAt, s.lastDone, s.lastEdges = now, done, edges

	line := fmt.Sprintf("%s  %.1f steps/s  %.1f edges/s", head, s.stepRate, s.edgeRate)
	if remaining := total - done; remaining > 0 && s.stepRate > 0 {
		eta := time.Duration(float64(remaining)/s.stepRate) * time.Second
		line += "  eta " + eta.Truncate(time.Second).String()
	}
	if s.flatFor >= 3 {
		line += "  [STALL]"
	}
	return line
}
