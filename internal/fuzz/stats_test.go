package fuzz

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func TestStatsZeroValues(t *testing.T) {
	s := NewStats("x")
	if s.CompilableRatio() != 0 {
		t.Error("empty ratio not 0")
	}
	if s.UniqueCrashes() != 0 || len(s.CrashTimeline()) != 0 {
		t.Error("empty stats report crashes")
	}
	if len(s.CrashesByComponent()) != 0 {
		t.Error("empty component map not empty")
	}
}

func TestStatsRecordAccounting(t *testing.T) {
	s := NewStats("x")
	okRes := compilersim.Result{OK: true, Coverage: cover.NewMap()}
	okRes.Coverage.Set(1)
	if !s.Record("a", "m", okRes) {
		t.Error("first new edge not reported")
	}
	if s.Record("a", "m", okRes) {
		t.Error("same edges reported as new twice")
	}
	badRes := compilersim.Result{OK: false, Coverage: cover.NewMap()}
	s.Record("b", "m", badRes)
	if s.Total != 3 || s.Compilable != 2 {
		t.Errorf("total=%d compilable=%d", s.Total, s.Compilable)
	}
	if r := s.CompilableRatio(); r < 66 || r > 67 {
		t.Errorf("ratio = %.2f", r)
	}
}

func TestSharedCoverageConcurrent(t *testing.T) {
	shared := NewSharedCoverage()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				m := cover.NewMap()
				m.Set(rng.Uint32())
				shared.MergeIfNew(m)
			}
		}(int64(w))
	}
	wg.Wait()
	if shared.Count() == 0 {
		t.Fatal("no edges merged")
	}
}

func TestMacroFlagSampling(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	cfg := DefaultMacroConfig()
	f := NewMacroFuzzer("m", comp, muast.All(), seeds.Generate(10, 1),
		rand.New(rand.NewSource(3)), NewSharedCoverage(), cfg)
	levels := map[int]int{}
	disabled := 0
	for i := 0; i < 400; i++ {
		o := f.sampleOptions()
		levels[o.OptLevel]++
		disabled += len(o.DisabledPasses)
	}
	for lvl := 0; lvl <= 3; lvl++ {
		if levels[lvl] == 0 {
			t.Errorf("-O%d never sampled", lvl)
		}
	}
	if disabled == 0 {
		t.Error("pass-disabling flags never sampled")
	}
	// With sampling disabled, options are fixed.
	cfg.SampleFlags = false
	f2 := NewMacroFuzzer("m2", comp, muast.All(), seeds.Generate(10, 1),
		rand.New(rand.NewSource(3)), NewSharedCoverage(), cfg)
	for i := 0; i < 20; i++ {
		o := f2.sampleOptions()
		if o.OptLevel != 2 || len(o.DisabledPasses) != 0 {
			t.Fatalf("fixed options expected, got %+v", o)
		}
	}
}

func TestUncheckedRewriteProducesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := seeds.Generate(5, 1)[4]
	produced := 0
	for i := 0; i < 30; i++ {
		if out, ok := uncheckedRewrite(src, rng); ok {
			produced++
			if out == src {
				t.Error("unchecked rewrite was a no-op")
			}
		}
	}
	if produced == 0 {
		t.Fatal("unchecked rewrite never applied")
	}
}

func TestMergedCrashesKeepsEarliest(t *testing.T) {
	mk := func(tick int) *MacroFuzzer {
		m := &MacroFuzzer{stats: NewStats("w")}
		m.stats.Crashes["sig"] = &CrashInfo{FirstTick: tick}
		return m
	}
	merged := MergedCrashes([]*MacroFuzzer{mk(50), mk(10), mk(30)})
	if merged["sig"].FirstTick != 10 {
		t.Errorf("earliest = %d, want 10", merged["sig"].FirstTick)
	}
}
