package fuzz

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func TestStatsZeroValues(t *testing.T) {
	s := NewStats("x")
	if s.CompilableRatio() != 0 {
		t.Error("empty ratio not 0")
	}
	if s.UniqueCrashes() != 0 || len(s.CrashTimeline()) != 0 {
		t.Error("empty stats report crashes")
	}
	if len(s.CrashesByComponent()) != 0 {
		t.Error("empty component map not empty")
	}
}

func TestStatsRecordAccounting(t *testing.T) {
	s := NewStats("x")
	okRes := compilersim.Result{OK: true, Coverage: cover.NewMap()}
	okRes.Coverage.Set(1)
	if !s.Record("a", "m", okRes) {
		t.Error("first new edge not reported")
	}
	if s.Record("a", "m", okRes) {
		t.Error("same edges reported as new twice")
	}
	badRes := compilersim.Result{OK: false, Coverage: cover.NewMap()}
	s.Record("b", "m", badRes)
	if s.Total != 3 || s.Compilable != 2 {
		t.Errorf("total=%d compilable=%d", s.Total, s.Compilable)
	}
	if r := s.CompilableRatio(); r < 66 || r > 67 {
		t.Errorf("ratio = %.2f", r)
	}
}

func TestSharedCoverageConcurrent(t *testing.T) {
	shared := NewSharedCoverage()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				m := cover.NewMap()
				m.Set(rng.Uint32())
				shared.MergeIfNew(m)
			}
		}(int64(w))
	}
	wg.Wait()
	if shared.Count() == 0 {
		t.Fatal("no edges merged")
	}
}

func TestMacroFlagSampling(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	cfg := DefaultMacroConfig()
	f := NewMacroFuzzer("m", comp, muast.All(), seeds.Generate(10, 1),
		rand.New(rand.NewSource(3)), NewSharedCoverage(), cfg)
	levels := map[int]int{}
	disabled := 0
	for i := 0; i < 400; i++ {
		o := f.sampleOptions()
		levels[o.OptLevel]++
		disabled += len(o.DisabledPasses)
	}
	for lvl := 0; lvl <= 3; lvl++ {
		if levels[lvl] == 0 {
			t.Errorf("-O%d never sampled", lvl)
		}
	}
	if disabled == 0 {
		t.Error("pass-disabling flags never sampled")
	}
	// With sampling disabled, options are fixed.
	cfg.SampleFlags = false
	f2 := NewMacroFuzzer("m2", comp, muast.All(), seeds.Generate(10, 1),
		rand.New(rand.NewSource(3)), NewSharedCoverage(), cfg)
	for i := 0; i < 20; i++ {
		o := f2.sampleOptions()
		if o.OptLevel != 2 || len(o.DisabledPasses) != 0 {
			t.Fatalf("fixed options expected, got %+v", o)
		}
	}
}

func TestUncheckedRewriteProducesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := seeds.Generate(5, 1)[4]
	produced := 0
	for i := 0; i < 30; i++ {
		if out, ok := uncheckedRewrite(src, rng); ok {
			produced++
			if out == src {
				t.Error("unchecked rewrite was a no-op")
			}
		}
	}
	if produced == 0 {
		t.Fatal("unchecked rewrite never applied")
	}
}

func TestMergedCrashesKeepsEarliest(t *testing.T) {
	mk := func(tick int) *MacroFuzzer {
		m := &MacroFuzzer{stats: NewStats("w")}
		m.stats.Crashes["sig"] = &CrashInfo{FirstTick: tick}
		return m
	}
	merged := MergedCrashes([]*MacroFuzzer{mk(50), mk(10), mk(30)})
	if merged["sig"].FirstTick != 10 {
		t.Errorf("earliest = %d, want 10", merged["sig"].FirstTick)
	}
}

func TestMergeFrom(t *testing.T) {
	a := NewStats("a")
	a.Total, a.Compilable, a.Ticks = 10, 7, 10
	a.Crashes["s1"] = &CrashInfo{FirstTick: 40}
	a.Crashes["s2"] = &CrashInfo{FirstTick: 5}
	a.Coverage.Set(1)

	b := NewStats("b")
	b.Total, b.Compilable, b.Ticks = 4, 1, 4
	b.Crashes["s1"] = &CrashInfo{FirstTick: 8} // earlier discovery wins
	b.Crashes["s3"] = &CrashInfo{FirstTick: 2}
	b.Coverage.Set(2)

	m := NewStats("m")
	m.MergeFrom(a)
	m.MergeFrom(b)
	m.MergeFrom(nil) // no-op

	if m.Total != 14 || m.Compilable != 8 || m.Ticks != 14 {
		t.Errorf("totals = %d/%d/%d, want 14/8/14", m.Total, m.Compilable, m.Ticks)
	}
	if m.UniqueCrashes() != 3 {
		t.Errorf("crashes = %d, want 3", m.UniqueCrashes())
	}
	if m.Crashes["s1"].FirstTick != 8 {
		t.Errorf("s1 FirstTick = %d, want earliest 8", m.Crashes["s1"].FirstTick)
	}
	if m.Coverage.Count() != 2 {
		t.Errorf("coverage = %d, want 2", m.Coverage.Count())
	}
	// Sources must be untouched.
	if a.Total != 10 || b.UniqueCrashes() != 2 || a.Crashes["s1"].FirstTick != 40 {
		t.Error("MergeFrom mutated a source")
	}
}

func TestRecordInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStats("f1")
	s.Instrument(reg)

	okRes := compilersim.Result{OK: true, Coverage: cover.NewMap()}
	okRes.Coverage.Set(7)
	s.Record("src", "MutA", okRes)
	s.Record("src", "MutA+MutB", okRes) // Havoc chain credits MutA
	crashRes := compilersim.Result{
		Coverage: cover.NewMap(),
		Crash: &compilersim.CrashReport{
			Component: compilersim.FrontEnd,
			Message:   "boom",
			Frames:    [2]string{"f", "g"},
		},
	}
	s.Record("src", "MutB", crashRes)

	snap := reg.Snapshot()
	if got := snap.Counter("compile_ticks"); got != 3 {
		t.Errorf("compile_ticks = %d, want 3", got)
	}
	if got := snap.Counter("mutants_total", "MutA", "ok"); got != 2 {
		t.Errorf("mutants_total{MutA,ok} = %d, want 2 (chain credited to head)", got)
	}
	if got := snap.Counter("mutants_total", "MutB", "crash"); got != 1 {
		t.Errorf("mutants_total{MutB,crash} = %d, want 1", got)
	}
	if got := snap.Counter("crashes_unique_total", "f1"); got != 1 {
		t.Errorf("crashes_unique_total = %d, want 1", got)
	}
}

func TestResultOutcomeLabels(t *testing.T) {
	rep := &compilersim.CrashReport{}
	cases := []struct {
		res  compilersim.Result
		want string
	}{
		{compilersim.Result{OK: true}, "ok"},
		{compilersim.Result{Hang: true, Crash: rep}, "hang"},
		{compilersim.Result{Crash: rep}, "crash"},
		{compilersim.Result{}, "reject"},
	}
	for _, c := range cases {
		if got := resultOutcome(c.res); got != c.want {
			t.Errorf("resultOutcome(%+v) = %q, want %q", c.res, got, c.want)
		}
	}
	if primaryMutator("A+B+C") != "A" || primaryMutator("A") != "A" {
		t.Error("primaryMutator mishandled chains")
	}
}

// TestInstrumentedFuzzersConcurrent drives independent fuzzers from
// separate goroutines against one shared registry — the macro-campaign
// shape — and must stay clean under -race.
func TestInstrumentedFuzzersConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	comp := compilersim.New("gcc", 14)
	comp.Instrument(reg)
	pool := seeds.Generate(20, 1)
	const workers, steps = 4, 60

	var wg sync.WaitGroup
	fs := make([]*MuCFuzz, workers)
	for i := 0; i < workers; i++ {
		fs[i] = NewMuCFuzz(fmt.Sprintf("w%d", i), comp, muast.All(), pool,
			rand.New(rand.NewSource(int64(i))))
		fs[i].Stats().Instrument(reg)
		wg.Add(1)
		go func(f *MuCFuzz) {
			defer wg.Done()
			for f.Stats().Ticks < steps {
				f.Step()
			}
		}(fs[i])
	}
	wg.Wait()

	total := 0
	for _, f := range fs {
		total += f.Stats().Ticks
	}
	snap := reg.Snapshot()
	if got := snap.Counter("compile_ticks"); got != int64(total) {
		t.Errorf("compile_ticks = %d, want %d", got, total)
	}
	if got := snap.CounterSum("mutants_total"); got != int64(total) {
		t.Errorf("mutants_total sum = %d, want %d", got, total)
	}
	if got := snap.CounterSum("compile_results_total"); got != int64(total) {
		t.Errorf("compile_results_total sum = %d, want %d", got, total)
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(5, 1)
	f := NewMacroFuzzer("m", comp, muast.All(), pool,
		rand.New(rand.NewSource(2)), NewSharedCoverage(), DefaultMacroConfig())
	got := f.Corpus()
	if !reflect.DeepEqual(got, pool) {
		t.Fatal("Corpus does not reflect the seed pool")
	}
	got[0] = "int mutated;"
	if f.Corpus()[0] == got[0] {
		t.Error("Corpus aliases the internal pool")
	}
	f.SetCorpus([]string{"int main(void) { return 0; }"})
	if len(f.Corpus()) != 1 {
		t.Errorf("SetCorpus pool size = %d, want 1", len(f.Corpus()))
	}

	mc := NewMuCFuzz("u", comp, muast.All(), pool, rand.New(rand.NewSource(2)))
	if !reflect.DeepEqual(mc.Corpus(), pool) {
		t.Fatal("MuCFuzz.Corpus does not reflect the seed pool")
	}
	mc.SetCorpus(pool[:2])
	if mc.PoolSize() != 2 {
		t.Errorf("MuCFuzz.SetCorpus pool size = %d, want 2", mc.PoolSize())
	}
}

func TestSetCoverageSwapsSink(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	shared := NewSharedCoverage()
	f := NewMacroFuzzer("m", comp, muast.All(), seeds.Generate(5, 1),
		rand.New(rand.NewSource(2)), shared, DefaultMacroConfig())
	if f.Coverage() != CoverageSink(shared) {
		t.Fatal("Coverage does not return the constructor sink")
	}
	repl := NewSharedCoverage()
	f.SetCoverage(repl)
	if f.Coverage() != CoverageSink(repl) {
		t.Fatal("SetCoverage did not swap the sink")
	}
	// A nil sink disables pool admission but must not panic.
	f.SetCoverage(nil)
	for i := 0; i < 30; i++ {
		f.Step()
	}
}
