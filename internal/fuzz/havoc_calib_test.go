package fuzz

import (
	"math/rand"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// TestHavocAdvantage is a calibration probe (kept as a regular test so it
// documents the expected direction): stacked mutation rounds should find
// at least as many unique crashes as single-step mutation across seeds.
func TestHavocAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	pool := seeds.Generate(60, 1)
	comp := compilersim.New("gcc", 14)
	run := func(havocMax int, seed int64) int {
		cfg := DefaultMacroConfig()
		cfg.HavocMax = havocMax
		w := NewMacroFuzzer("m", comp, muast.All(), pool,
			rand.New(rand.NewSource(seed)), NewSharedCoverage(), cfg)
		for w.Stats().Ticks < 3000 {
			w.Step()
		}
		return w.Stats().UniqueCrashes()
	}
	single, stacked := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		single += run(1, seed)
		stacked += run(4, seed)
	}
	t.Logf("single=%d stacked=%d (summed over 3 seeds)", single, stacked)
	if stacked < single {
		t.Errorf("stacked havoc (%d) found fewer crashes than single-step (%d)",
			stacked, single)
	}
}
