package fuzz

import (
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/sched"
)

// FlightEmitter receives a fuzzer's structured campaign events. It is
// the narrow seam between the fuzzers and the flight recorder
// (internal/flight provides the implementation); defining it here keeps
// fuzz free of a flight dependency. Every emission is a pure function
// of stream state — tick counts and outcomes, never wall clock — so a
// recorded stream replays identically at any worker count.
type FlightEmitter interface {
	// Emit books one event at the stream's current logical tick.
	Emit(tick int, kind string, data map[string]any)
}

// AttachFlight connects μCFuzz to a flight recorder stream: quarantine
// admissions/paroles, scheduler rewards that earned coverage or a
// crash, new unique crashes, and pool admissions all become journal
// events. Call before the first Step; a nil emitter is ignored.
func (f *MuCFuzz) AttachFlight(em FlightEmitter) {
	if em == nil {
		return
	}
	f.flight = em
	f.Quarantine.OnEvent = func(kind, id string) {
		em.Emit(f.stats.Ticks, kind, map[string]any{"id": id})
	}
	f.Sched.SetObserver(rewardObserver(em, f.stats, f.mutators))
}

// AttachFlight connects a macro worker to a flight recorder stream
// (see MuCFuzz.AttachFlight).
func (f *MacroFuzzer) AttachFlight(em FlightEmitter) {
	if em == nil {
		return
	}
	f.flight = em
	f.Quarantine.OnEvent = func(kind, id string) {
		em.Emit(f.stats.Ticks, kind, map[string]any{"id": id})
	}
	f.Sched.SetObserver(rewardObserver(em, f.stats, f.mutators))
}

// rewardObserver journals scheduler rewards worth replaying: only
// picks that earned new coverage or a crash (zero-reward and fault
// observations would swamp the journal without adding signal).
func rewardObserver(em FlightEmitter, st *Stats, mutators []*muast.Mutator) sched.Observer {
	return func(arm int, r sched.Reward) {
		if (!r.NewCoverage && !r.Crash) || arm < 0 || arm >= len(mutators) {
			return
		}
		data := map[string]any{"m": mutators[arm].Name}
		if r.NewCoverage {
			data["cov"] = true
		}
		if r.Crash {
			data["crash"] = true
		}
		em.Emit(st.Ticks, "reward", data)
	}
}

// emitCrash journals one first-discovery of a unique crash signature.
func emitCrash(em FlightEmitter, st *Stats, cr *compilersim.CrashReport, via string) {
	em.Emit(st.Ticks, "crash", map[string]any{
		"sig":       cr.Signature(),
		"component": cr.Component.String(),
		"class":     cr.Kind.String(),
		"via":       primaryMutator(via),
	})
}

// emitAdmission journals one pool admission (new coverage kept).
func emitAdmission(em FlightEmitter, st *Stats, via string, pool int) {
	em.Emit(st.Ticks, "cov", map[string]any{
		"via":   primaryMutator(via),
		"pool":  pool,
		"edges": st.Coverage.Count(),
	})
}

// RegisterMetrics pre-registers every metric family the fuzzers emit,
// so /metrics and snapshots show the full schema from campaign start
// rather than families popping into existence at first increment.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("compile_ticks")
	reg.Counter("mutants_total", "mutator", "outcome")
	reg.Counter("crashes_unique_total", "fuzzer")
	reg.Gauge("coverage_edges", "fuzzer")
	reg.Counter("static_rejects_total", "check")
	reg.Counter("mutator_panics_total", "mutator")
	reg.Counter("mutator_fuel_exhausted_total", "mutator")
}
