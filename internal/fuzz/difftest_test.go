package fuzz

import (
	"math/rand"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// TestDifferentialOnMutants is the miscompilation-detection channel over
// the mutation search space: every compilable mutant must execute
// identically at -O0 and -O2. A disagreement would be an optimizer bug in
// the simulated compiler (the differential harness already caught one
// during development: the sprintf→strlen fold dropping the buffer write).
func TestDifferentialOnMutants(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(40, 5)
	rng := rand.New(rand.NewSource(17))
	mus := muast.All()
	checked := 0
	for trial := 0; trial < 500; trial++ {
		src := pool[rng.Intn(len(pool))]
		mu := mus[rng.Intn(len(mus))]
		mgr, err := muast.NewManager(src, rng)
		if err != nil {
			t.Fatalf("seed invalid: %v", err)
		}
		mutant, ok := mu.Apply(src, mgr)
		if !ok {
			continue
		}
		res0, e0 := comp.RunCompiled(mutant, compilersim.Options{OptLevel: 0})
		if !res0.OK {
			continue
		}
		res2, e2 := comp.RunCompiled(mutant, compilersim.Options{OptLevel: 2})
		if !res2.OK {
			continue // -O2-only crash: the fuzzer's channel, not ours
		}
		checked++
		if e0.Status != e2.Status ||
			(e0.Status == compilersim.ExecOK && e0.Return != e2.Return) {
			t.Errorf("mutant via %s diverges: -O0 %v/%d(%s) vs -O2 %v/%d(%s)\n%s",
				mu.Name, e0.Status, e0.Return, e0.TrapMsg,
				e2.Status, e2.Return, e2.TrapMsg, mutant)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d/500 mutants were executable", checked)
	}
	t.Logf("differentially executed %d mutants", checked)
}
