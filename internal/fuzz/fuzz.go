// Package fuzz implements the paper's coverage-guided fuzzers: μCFuzz
// (Algorithm 1), the long-running macro fuzzer with its engineering
// enhancements (Havoc, compiler-flag sampling, shared coverage, resource
// limits), and the crash bookkeeping (dedup by top-two stack frames)
// shared by every evaluated technique.
package fuzz

import (
	"math/rand"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/sched"
)

// CrashInfo records the first discovery of a unique crash.
type CrashInfo struct {
	Report    compilersim.CrashReport
	FirstTick int
	// Input is the crashing program (kept for triage).
	Input string
	// Via names the mutator or generator that produced the input.
	Via string
}

// Stats is the common accounting every fuzzer maintains. One "tick" is
// one compiler invocation — the evaluation's virtual clock.
type Stats struct {
	Name string
	// Total and Compilable mutant counts (Table 5).
	Total      int
	Compilable int
	// StaticRejects counts mutants the mutcheck front-end analysis
	// discarded before they consumed a compiler tick (subset of
	// Total - Compilable).
	StaticRejects int
	// Ticks consumed so far.
	Ticks int
	// Panics counts mutator applications the supervisor recovered from
	// a panic; FuelExhausted counts applications the μAST fuel watchdog
	// cut off. Both feed the quarantine and neither consumes a tick.
	Panics        int
	FuelExhausted int
	// Crashes maps signature -> first-discovery info (Figures 8, 9;
	// Table 4).
	Crashes map[string]*CrashInfo
	// Coverage is the cumulative edge map (Figure 7).
	Coverage *cover.Map

	// Observability handles, resolved once by Instrument (all nil when
	// telemetry is off, so Record stays allocation-free).
	obsTicks         *obs.Counter
	obsMutants       *obs.CounterVec
	obsCrashes       *obs.Counter
	obsEdges         *obs.Gauge
	obsStaticRejects *obs.CounterVec
	obsPanics        *obs.CounterVec
	obsFuel          *obs.CounterVec
	obsBatchFlushes  *obs.Counter
	obsBatchRewards  *obs.Counter
}

// NewStats returns empty accounting for a named fuzzer.
func NewStats(name string) *Stats {
	return &Stats{Name: name, Crashes: map[string]*CrashInfo{},
		Coverage: cover.NewMap()}
}

// Instrument attaches live telemetry: every Record updates
// compile_ticks, mutants_total{mutator,outcome},
// crashes_unique_total{fuzzer}, and coverage_edges{fuzzer}. A nil
// registry leaves the stats uninstrumented.
func (s *Stats) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obsTicks = reg.Counter("compile_ticks").With()
	s.obsMutants = reg.Counter("mutants_total", "mutator", "outcome")
	s.obsCrashes = reg.Counter("crashes_unique_total", "fuzzer").With(s.Name)
	s.obsEdges = reg.Gauge("coverage_edges", "fuzzer").With(s.Name)
	s.obsStaticRejects = reg.Counter("static_rejects_total", "check")
	s.obsPanics = reg.Counter("mutator_panics_total", "mutator")
	s.obsFuel = reg.Counter("mutator_fuel_exhausted_total", "mutator")
	s.obsBatchFlushes = reg.Counter("batch_reward_flushes_total", "fuzzer").With(s.Name)
	s.obsBatchRewards = reg.Counter("batch_rewards_total", "fuzzer").With(s.Name)
}

// resultOutcome labels one compilation for mutants_total.
func resultOutcome(res compilersim.Result) string {
	switch {
	case res.OK:
		return "ok"
	case res.Hang:
		return "hang"
	case res.Crash != nil:
		return "crash"
	default:
		return "reject"
	}
}

// primaryMutator reduces a Havoc chain ("CopyExpr+DuplicateBranch") to
// its first mutator, bounding mutants_total's label cardinality.
func primaryMutator(via string) string {
	if i := strings.IndexByte(via, '+'); i >= 0 {
		return via[:i]
	}
	return via
}

// Record books one compilation outcome. Returns true when the input
// covered new edges.
func (s *Stats) Record(src, via string, res compilersim.Result) bool {
	s.Total++
	s.Ticks++
	if res.OK {
		s.Compilable++
	}
	s.obsTicks.Inc()
	if s.obsMutants != nil {
		s.obsMutants.With(primaryMutator(via), resultOutcome(res)).Inc()
	}
	if res.Crash != nil {
		sig := res.Crash.Signature()
		if _, dup := s.Crashes[sig]; !dup {
			s.Crashes[sig] = &CrashInfo{
				Report:    *res.Crash,
				FirstTick: s.Ticks,
				Input:     src,
				Via:       via,
			}
			s.obsCrashes.Inc()
		}
	}
	isNew := s.Coverage.HasNew(res.Coverage)
	s.Coverage.Merge(res.Coverage)
	if isNew {
		s.obsEdges.Set(int64(s.Coverage.Count()))
	}
	return isNew
}

// RecordStaticReject books one mutant the static analysis discarded
// before compilation. The mutant counts toward Total (it was produced)
// but consumes no compiler tick — that is the saving being measured.
func (s *Stats) RecordStaticReject(via, check string) {
	s.Total++
	s.StaticRejects++
	if s.obsMutants != nil {
		s.obsMutants.With(primaryMutator(via), "static-reject").Inc()
	}
	if s.obsStaticRejects != nil {
		s.obsStaticRejects.With(check).Inc()
	}
}

// RecordMutatorFault books one supervised mutator application that
// ended in a recovered panic (or, with fuel true, a fuel-watchdog cut).
// The offense consumes no tick — the mutant was never produced.
func (s *Stats) RecordMutatorFault(via string, fuel bool) {
	if fuel {
		s.FuelExhausted++
		if s.obsFuel != nil {
			s.obsFuel.With(primaryMutator(via)).Inc()
		}
		return
	}
	s.Panics++
	if s.obsPanics != nil {
		s.obsPanics.With(primaryMutator(via)).Inc()
	}
}

// MergeFrom folds another fuzzer's accounting into s: totals add up,
// crashes union with the earliest discovery winning, coverage maps
// merge. This is the one tested aggregation path the macro fuzzer's
// per-worker stats flow through.
func (s *Stats) MergeFrom(o *Stats) {
	if o == nil {
		return
	}
	s.Total += o.Total
	s.Compilable += o.Compilable
	s.StaticRejects += o.StaticRejects
	s.Ticks += o.Ticks
	s.Panics += o.Panics
	s.FuelExhausted += o.FuelExhausted
	for sig, c := range o.Crashes {
		if prev, ok := s.Crashes[sig]; !ok || c.FirstTick < prev.FirstTick {
			s.Crashes[sig] = c
		}
	}
	if o.Coverage != nil {
		s.Coverage.Merge(o.Coverage)
	}
}

// CompilableRatio returns the Table 5 ratio in percent.
func (s *Stats) CompilableRatio() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Compilable) / float64(s.Total)
}

// UniqueCrashes returns the crash count.
func (s *Stats) UniqueCrashes() int { return len(s.Crashes) }

// CrashesByComponent buckets unique crashes per compiler component
// (Table 4).
func (s *Stats) CrashesByComponent() map[compilersim.Component]int {
	out := map[compilersim.Component]int{}
	for _, c := range s.Crashes {
		out[c.Report.Component]++
	}
	return out
}

// CrashTimeline returns (tick, cumulative unique crashes) points sorted
// by tick (Figure 9).
func (s *Stats) CrashTimeline() [][2]int {
	ticks := make([]int, 0, len(s.Crashes))
	for _, c := range s.Crashes {
		ticks = append(ticks, c.FirstTick)
	}
	sort.Ints(ticks)
	out := make([][2]int, len(ticks))
	for i, t := range ticks {
		out[i] = [2]int{t, i + 1}
	}
	return out
}

// Fuzzer is one technique under evaluation: each Step produces and
// compiles exactly one test program.
type Fuzzer interface {
	Name() string
	Step()
	Stats() *Stats
}

// DefaultUncheckedRate calibrates mutator fallibility. The paper's 118
// LLM-synthesized mutators are validated against unit tests but are not
// sound: 26-28% of μCFuzz's mutants fail to compile (Table 5). Our Go
// reimplementations are more defensive (<1% invalid output), so the
// fuzzers emulate the original imperfection by following a fraction of
// mutations with an *unchecked* rewrite — a copy of one expression over
// another with every semantic check skipped, exactly the class of error
// the paper's refinement loop kept fixing (Table 1 row #6).
const DefaultUncheckedRate = 0.68

// DefaultQuarantine tunes the fuzzers' mutator quarantine: three
// offenses bench a mutator for 512 steps, after which it is paroled
// with a clean record.
func DefaultQuarantine() resil.QuarantineConfig {
	return resil.QuarantineConfig{StrikeLimit: 3, Parole: 512}
}

// safeApply is supervised mutator application: a panic inside the
// mutator — including the μAST fuel watchdog cutting off a runaway
// traversal — is recovered and reported instead of killing the fuzzing
// stream. fuel distinguishes watchdog cuts from genuine panics.
func safeApply(mu *muast.Mutator, src string, mgr *muast.Manager) (mutant string, ok bool, faulted, fuel bool) {
	defer func() {
		if r := recover(); r != nil {
			mutant, ok, faulted = "", false, true
			_, fuel = r.(muast.FuelExhausted)
		}
	}()
	mutant, ok = mu.Apply(src, mgr)
	return
}

// uncheckedRewrite performs a completely unvalidated expression-over-
// expression splice on src. ok is false when src has no two expressions
// to splice.
func uncheckedRewrite(src string, rng *rand.Rand) (string, bool) {
	mgr, err := muast.NewManager(src, rng)
	if err != nil {
		return "", false
	}
	return spliceWith(mgr, rng)
}

// uncheckedRewriteArena is uncheckedRewrite over a caller-owned AST
// arena. Splice inputs are freshly minted mutant strings, so routing
// them through the global parse cache is all misses and pure pollution;
// an arena parse costs zero steady-state allocations instead. The
// manager and every node it hands out die before this returns, which is
// what makes borrowing from the arena safe — only the rewritten string
// (owned) escapes.
func uncheckedRewriteArena(src string, rng *rand.Rand, arena *cast.Arena) (string, bool) {
	arena.Reset()
	tu, err := cast.ParseAndCheckArena(src, arena)
	if err != nil {
		return "", false
	}
	return spliceWith(muast.NewManagerFromTU(tu, rng), rng)
}

// spliceWith draws the expression pair and performs the splice.
func spliceWith(mgr *muast.Manager, rng *rand.Rand) (string, bool) {
	exprs := mgr.Exprs(nil, nil)
	if len(exprs) < 2 {
		return "", false
	}
	dst := exprs[rng.Intn(len(exprs))]
	from := exprs[rng.Intn(len(exprs))]
	if dst == from || dst.Range().Contains(from.Range()) ||
		from.Range().Contains(dst.Range()) {
		return "", false
	}
	text := mgr.GetSourceText(from)
	if text == mgr.GetSourceText(dst) {
		return "", false // identical spelling: would be a no-op splice
	}
	if !mgr.ReplaceNode(dst, text) {
		return "", false
	}
	return mgr.Apply(), true
}

// ---------------------------------------------------------------------
// μCFuzz — Algorithm 1
// ---------------------------------------------------------------------

// MuCFuzz is the paper's micro coverage-guided fuzzer. Each iteration
// picks a random pool program, shuffles the mutators, and applies them in
// order until one produces a mutant covering a new branch, which is then
// added back to the pool (Algorithm 1).
type MuCFuzz struct {
	comp     *compilersim.Compiler
	cx       *compilersim.Context
	opts     compilersim.Options
	mutators []*muast.Mutator
	pool     []string
	rng      *rand.Rand
	stats    *Stats
	// MaxMutatorTries bounds the inner loop; Algorithm 1 tries every
	// mutator, which we cap for throughput on large mutator sets.
	MaxMutatorTries int
	// MaxProgramSize drops runaway mutants (resource limiting).
	MaxProgramSize int
	// UncheckedRate emulates mutator fallibility (see
	// DefaultUncheckedRate).
	UncheckedRate float64
	// Blind disables coverage guidance (Algorithm 1 line 8): mutants are
	// admitted to the pool at a small fixed rate instead. Ablation only.
	Blind bool
	// StaticFilter discards mutants the mutcheck front-end analysis
	// rejects before they consume a compiler tick. Off by default; the
	// mucfuzz CLI enables it (and exposes -no-static to turn it off).
	StaticFilter bool
	// Quarantine benches mutators that keep panicking or exhausting
	// their fuel budget (strike/parole discipline). Per-instance and
	// tick-driven, so it never perturbs the deterministic schedule.
	Quarantine *resil.Quarantine
	// Sched ranks the mutators each tick. The default Uniform policy
	// reproduces Algorithm 1's shuffle bit-for-bit (same stream-RNG
	// draws); swap in sched.NewAdaptive for bandit-weighted selection.
	// Arms index into the mutator slice in constructor order.
	Sched sched.Scheduler
	// Batch defers scheduler reward observation: with Batch >= 2, up to
	// Batch (arm, reward) pairs are buffered and flushed — as contiguous
	// same-arm runs, in original order — through Sched.ObserveBatch at
	// the end of the step (or when the buffer fills). Batching is purely
	// an execution-strategy knob: the try-order comes from one Order()
	// call at the top of the step, before any observation lands, and
	// ObserveBatch replays observations in order, so the schedule and
	// posterior stay byte-identical to Batch <= 1 (see
	// internal/engine/sched_determinism_test.go).
	Batch int

	allowedFn func(int) bool
	// Deferred-reward scratch (parallel slices so a contiguous same-arm
	// run flushes as rewVals[i:j] without copying).
	rewArms []int
	rewVals []sched.Reward
	// spliceArena backs the unchecked-rewrite parses (see
	// uncheckedRewriteArena).
	spliceArena *cast.Arena
	// flight, when attached, journals crashes, pool admissions,
	// rewards, and quarantine churn (see AttachFlight).
	flight FlightEmitter
}

// NewMuCFuzz builds a μCFuzz instance over the given mutator set.
func NewMuCFuzz(name string, comp *compilersim.Compiler, mutators []*muast.Mutator,
	seedPool []string, rng *rand.Rand) *MuCFuzz {
	pool := make([]string, len(seedPool))
	copy(pool, seedPool)
	f := &MuCFuzz{
		comp:            comp,
		cx:              comp.NewContext(),
		opts:            compilersim.DefaultOptions(),
		mutators:        mutators,
		pool:            pool,
		rng:             rng,
		stats:           NewStats(name),
		MaxMutatorTries: 8,
		MaxProgramSize:  1 << 16,
		UncheckedRate:   DefaultUncheckedRate,
		Quarantine:      resil.NewQuarantine(DefaultQuarantine(), nil),
		Sched:           sched.NewUniform(len(mutators)),
		spliceArena:     cast.NewArena(),
	}
	f.allowedFn = f.armAllowed
	return f
}

// armAllowed reports whether the arm's mutator is off the quarantine
// bench — the filter handed to the scheduler each tick.
func (f *MuCFuzz) armAllowed(i int) bool {
	return f.Quarantine.Allowed(f.mutators[i].Name)
}

// SchedState serializes the scheduler posterior (checkpointing).
func (f *MuCFuzz) SchedState() *sched.State { return f.Sched.State() }

// SetSchedState restores the scheduler posterior (checkpoint resume).
func (f *MuCFuzz) SetSchedState(st *sched.State) error { return f.Sched.Restore(st) }

// InstrumentSched attaches per-mutator scheduler telemetry
// (sched_picks_total, sched_weight).
func (f *MuCFuzz) InstrumentSched(reg *obs.Registry) {
	names := make([]string, len(f.mutators))
	for i, mu := range f.mutators {
		names[i] = mu.Name
	}
	f.Sched.Instrument(reg, names)
}

// Name returns the fuzzer's display name.
func (f *MuCFuzz) Name() string { return f.stats.Name }

// Stats exposes the accounting.
func (f *MuCFuzz) Stats() *Stats { return f.stats }

// PoolSize returns the current program-pool size.
func (f *MuCFuzz) PoolSize() int { return len(f.pool) }

// observe books one scheduler reward, immediately (Batch <= 1) or into
// the deferred buffer (flushed at step end, or when Batch pairs are
// pending).
func (f *MuCFuzz) observe(arm int, r sched.Reward) {
	if f.Batch <= 1 {
		f.Sched.Observe(arm, r)
		return
	}
	f.rewArms = append(f.rewArms, arm)
	f.rewVals = append(f.rewVals, r)
	if len(f.rewArms) >= f.Batch {
		f.flushRewards()
	}
}

// flushRewards drains the deferred reward buffer through ObserveBatch,
// one contiguous same-arm run at a time, in original order — the
// replay contract that keeps the posterior bit-identical to unbatched
// Observe calls.
func (f *MuCFuzz) flushRewards() {
	for i := 0; i < len(f.rewArms); {
		j := i + 1
		for j < len(f.rewArms) && f.rewArms[j] == f.rewArms[i] {
			j++
		}
		f.Sched.ObserveBatch(f.rewArms[i], f.rewVals[i:j])
		f.stats.obsBatchFlushes.Inc()
		f.stats.obsBatchRewards.Add(int64(j - i))
		i = j
	}
	f.rewArms = f.rewArms[:0]
	f.rewVals = f.rewVals[:0]
}

// Step runs one iteration of Algorithm 1: it stops after the first
// mutant that covers a new branch (adding it to the pool), or after
// MaxMutatorTries mutants. With Batch >= 2 any rewards still buffered
// when the iteration ends are flushed before Step returns, so the
// scheduler posterior is fully up to date between steps (checkpoints
// taken at epoch barriers see no pending rewards).
func (f *MuCFuzz) Step() {
	f.stepInner()
	if len(f.rewArms) > 0 {
		f.flushRewards()
	}
}

func (f *MuCFuzz) stepInner() {
	f.Quarantine.Tick()
	if len(f.pool) == 0 {
		return
	}
	p := f.pool[f.rng.Intn(len(f.pool))]
	// The try-order comes from the scheduler, driven only by the stream
	// RNG: Uniform is Algorithm 1's shuffle (one Perm, identical draws),
	// Adaptive ranks arms by posterior reward. Either way the schedule
	// is a pure function of stream state — reproducible under the
	// engine at any worker count. Order() runs before any reward from
	// this step lands, which is what makes deferred (batched)
	// observation indistinguishable from immediate observation.
	order := f.Sched.Order(f.rng, f.allowedFn)
	tries := 0
	// One mutation manager serves every try of the step: all tries
	// mutate the same pool program p, so the manager is built once
	// (one parse via the cache, one parent-map derivation) and
	// Reset — which restores it to freshly-constructed state — recycles
	// it between tries.
	var mgr *muast.Manager
	for _, mi := range order {
		if tries >= f.MaxMutatorTries {
			return
		}
		mu := f.mutators[mi]
		if !f.Quarantine.Allowed(mu.Name) {
			continue // benched offender; costs nothing, like inapplicable
		}
		if mgr == nil {
			var err error
			mgr, err = muast.NewManager(p, f.rng)
			if err != nil {
				return // pool entry no longer parses (should not happen)
			}
		} else {
			mgr.Reset()
		}
		mutant, ok, faulted, fuel := safeApply(mu, p, mgr)
		if faulted {
			f.stats.RecordMutatorFault(mu.Name, fuel)
			f.Quarantine.Strike(mu.Name)
			f.observe(mi, sched.Reward{Fault: true})
			continue
		}
		if !ok {
			// Not applicable to this program: zero reward, but the try
			// still counts — otherwise a never-applying arm keeps its
			// untried (+Inf) UCB score and the bandit re-picks it forever.
			f.observe(mi, sched.Reward{})
			continue // try the next (free)
		}
		if f.rng.Float64() < f.UncheckedRate {
			if spliced, sok := uncheckedRewriteArena(mutant, f.rng, f.spliceArena); sok {
				mutant = spliced
			}
		}
		if len(mutant) > f.MaxProgramSize {
			continue
		}
		if f.StaticFilter {
			if check, rejected := mutcheck.Reject(mutant); rejected {
				tries++
				f.stats.RecordStaticReject(mu.Name, check)
				f.observe(mi, sched.Reward{CompileError: true})
				continue
			}
		}
		tries++
		nCrash := len(f.stats.Crashes)
		// Compile through the per-stream context: the result is borrowed
		// (coverage aliases context storage until the next compile), and
		// Stats.Record merges the coverage immediately, which is the copy.
		res := f.cx.Compile(mutant, f.opts)
		isNew := f.stats.Record(mutant, mu.Name, res)
		if f.flight != nil && len(f.stats.Crashes) > nCrash {
			emitCrash(f.flight, f.stats, res.Crash, mu.Name)
		}
		f.observe(mi, sched.Reward{
			NewCoverage:  isNew,
			Crash:        res.Crash != nil,
			CompileError: !res.OK && res.Crash == nil,
		})
		if f.Blind {
			// Ablation: no coverage feedback; admit a fixed fraction.
			if res.OK && f.rng.Float64() < 0.05 {
				f.pool = append(f.pool, mutant)
				return
			}
			continue
		}
		if isNew && res.OK {
			f.pool = append(f.pool, mutant)
			if f.flight != nil {
				emitAdmission(f.flight, f.stats, mu.Name, len(f.pool))
			}
			return
		}
	}
}

// ---------------------------------------------------------------------
// Macro fuzzer
// ---------------------------------------------------------------------

// CoverageSink is where a macro worker publishes each compilation's
// coverage and learns whether it found anything new — the pool-admission
// signal. The campaign engine swaps in per-epoch views that satisfy
// this interface; standalone workers use a SharedCoverage.
type CoverageSink interface {
	// MergeIfNew merges m and reports whether it contained unseen edges.
	MergeIfNew(m *cover.Map) bool
}

// SharedCoverage is the cross-process (here: cross-goroutine) coverage
// map of the macro fuzzer (enhancement #3 in Section 3.4). It is lock-
// striped (cover.Sharded): steady-state merges that cover nothing new
// take only read locks, and concurrent writers contend per stripe
// instead of on one global mutex (see the BenchmarkSharedCoverage pair).
type SharedCoverage struct {
	sh cover.Sharded
}

// NewSharedCoverage returns an empty shared map.
func NewSharedCoverage() *SharedCoverage {
	return &SharedCoverage{}
}

// MergeIfNew merges m and reports whether it contained unseen edges.
func (s *SharedCoverage) MergeIfNew(m *cover.Map) bool {
	return s.sh.MergeIfNew(m)
}

// Count returns the number of covered edges.
func (s *SharedCoverage) Count() int {
	return s.sh.Count()
}

// Snapshot copies the current shared map (checkpointing, reporting).
func (s *SharedCoverage) Snapshot() *cover.Map {
	return s.sh.Snapshot()
}

// MacroConfig tunes the macro fuzzer's enhancements.
type MacroConfig struct {
	// HavocMax is the maximum number of mutation rounds applied per
	// mutant (enhancement #2).
	HavocMax int
	// SampleFlags enables random compiler-command-line sampling
	// (enhancement #1).
	SampleFlags bool
	// MaxProgramSize is the resource limit (enhancement #4).
	MaxProgramSize int
	// UncheckedRate emulates mutator fallibility (see
	// DefaultUncheckedRate).
	UncheckedRate float64
	// StaticFilter discards statically-invalid mutants before they
	// consume a compiler tick (see MuCFuzz.StaticFilter).
	StaticFilter bool
}

// DefaultMacroConfig mirrors the long-running campaign settings.
func DefaultMacroConfig() MacroConfig {
	return MacroConfig{HavocMax: 4, SampleFlags: true, MaxProgramSize: 1 << 16,
		UncheckedRate: DefaultUncheckedRate}
}

// MacroFuzzer is the long-term bug-hunting fuzzer of Section 3.4.
type MacroFuzzer struct {
	comp     *compilersim.Compiler
	cx       *compilersim.Context
	mutators []*muast.Mutator
	pool     []string
	rng      *rand.Rand
	stats    *Stats
	shared   CoverageSink
	cfg      MacroConfig
	// Quarantine benches panicking/fuel-exhausting mutators (see
	// MuCFuzz.Quarantine).
	Quarantine *resil.Quarantine
	// Sched picks the mutator for each havoc round (see MuCFuzz.Sched);
	// the default Uniform policy reproduces the legacy rng.Intn draw.
	Sched sched.Scheduler

	allowedFn func(int) bool
	armBuf    []int // applied-arm scratch, reused across steps
	// spliceArena backs the unchecked-rewrite parses (see
	// uncheckedRewriteArena).
	spliceArena *cast.Arena
	// flight, when attached, journals crashes, pool admissions,
	// rewards, and quarantine churn (see AttachFlight).
	flight FlightEmitter
}

// NewMacroFuzzer builds a macro fuzzer worker; workers on the same
// compiler share coverage via shared (nil disables pool admission until
// a sink is attached with SetCoverage).
func NewMacroFuzzer(name string, comp *compilersim.Compiler,
	mutators []*muast.Mutator, seedPool []string, rng *rand.Rand,
	shared CoverageSink, cfg MacroConfig) *MacroFuzzer {
	pool := make([]string, len(seedPool))
	copy(pool, seedPool)
	f := &MacroFuzzer{
		comp: comp, cx: comp.NewContext(),
		mutators: mutators, pool: pool, rng: rng,
		stats: NewStats(name), shared: shared, cfg: cfg,
		Quarantine:  resil.NewQuarantine(DefaultQuarantine(), nil),
		Sched:       sched.NewUniform(len(mutators)),
		spliceArena: cast.NewArena(),
	}
	f.allowedFn = f.armAllowed
	return f
}

// armAllowed reports whether the arm's mutator is off the quarantine
// bench.
func (f *MacroFuzzer) armAllowed(i int) bool {
	return f.Quarantine.Allowed(f.mutators[i].Name)
}

// SchedState serializes the scheduler posterior (checkpointing).
func (f *MacroFuzzer) SchedState() *sched.State { return f.Sched.State() }

// SetSchedState restores the scheduler posterior (checkpoint resume).
func (f *MacroFuzzer) SetSchedState(st *sched.State) error { return f.Sched.Restore(st) }

// InstrumentSched attaches per-mutator scheduler telemetry.
func (f *MacroFuzzer) InstrumentSched(reg *obs.Registry) {
	names := make([]string, len(f.mutators))
	for i, mu := range f.mutators {
		names[i] = mu.Name
	}
	f.Sched.Instrument(reg, names)
}

// Name returns the worker's name.
func (f *MacroFuzzer) Name() string { return f.stats.Name }

// Stats exposes the accounting.
func (f *MacroFuzzer) Stats() *Stats { return f.stats }

// sampleOptions draws a random compiler command line (enhancement #1).
func (f *MacroFuzzer) sampleOptions() compilersim.Options {
	if !f.cfg.SampleFlags {
		return compilersim.DefaultOptions()
	}
	opts := compilersim.Options{OptLevel: f.rng.Intn(4)}
	flagPool := []string{"loopvec", "strbuiltin", "cse", "simplify", "dce"}
	for _, fl := range flagPool {
		if f.rng.Float64() < 0.15 {
			opts.DisabledPasses = append(opts.DisabledPasses, fl)
		}
	}
	return opts
}

// Step runs one macro-fuzzer iteration: Havoc-style stacked mutations,
// flag sampling, shared-coverage pool admission, and size limits.
func (f *MacroFuzzer) Step() {
	f.Quarantine.Tick()
	if len(f.pool) == 0 {
		return
	}
	p := f.pool[f.rng.Intn(len(f.pool))]
	rounds := 1 + f.rng.Intn(f.cfg.HavocMax)
	cur := p
	via := ""
	applied := f.armBuf[:0]
	for i := 0; i < rounds; i++ {
		// The scheduler picks each round's mutator from the stream RNG:
		// Uniform is the legacy rng.Intn draw, Adaptive is
		// epsilon-greedy over posterior reward.
		mi := f.Sched.Pick(f.rng, f.allowedFn)
		if mi < 0 {
			continue // every arm benched; the round is spent
		}
		mu := f.mutators[mi]
		if !f.Quarantine.Allowed(mu.Name) {
			continue // benched offender; the round is spent, like a no-op
		}
		mgr, err := muast.NewManager(cur, f.rng)
		if err != nil {
			break // intermediate mutant went invalid; stop stacking
		}
		mutant, ok, faulted, fuel := safeApply(mu, cur, mgr)
		if faulted {
			f.stats.RecordMutatorFault(mu.Name, fuel)
			f.Quarantine.Strike(mu.Name)
			f.Sched.Observe(mi, sched.Reward{Fault: true})
			continue
		}
		if !ok {
			// Zero reward so the arm's untried (+Inf) UCB score decays;
			// see the μCFuzz counterpart.
			f.Sched.Observe(mi, sched.Reward{})
			continue
		}
		if len(mutant) > f.cfg.MaxProgramSize {
			break // resource limit: drop oversized offspring
		}
		cur = mutant
		applied = append(applied, mi)
		if via != "" {
			via += "+"
		}
		via += mu.Name
	}
	f.armBuf = applied
	if cur == p {
		return
	}
	if f.rng.Float64() < f.cfg.UncheckedRate {
		if spliced, sok := uncheckedRewriteArena(cur, f.rng, f.spliceArena); sok {
			cur = spliced
		}
	}
	if f.cfg.StaticFilter {
		if check, rejected := mutcheck.Reject(cur); rejected {
			f.stats.RecordStaticReject(via, check)
			for _, mi := range applied {
				f.Sched.Observe(mi, sched.Reward{CompileError: true})
			}
			return
		}
	}
	nCrash := len(f.stats.Crashes)
	// Per-stream context compile; the borrowed coverage is merged by
	// Record and by the shared sink below before the next compile.
	// Reward observation is NOT batched here: Pick reads the posterior
	// every havoc round, so deferring Observe would change the picks.
	res := f.cx.Compile(cur, f.sampleOptions())
	f.stats.Record(cur, via, res)
	if f.flight != nil && len(f.stats.Crashes) > nCrash {
		emitCrash(f.flight, f.stats, res.Crash, via)
	}
	admitted := res.OK && f.shared != nil && f.shared.MergeIfNew(res.Coverage)
	if admitted {
		f.pool = append(f.pool, cur)
		if f.flight != nil {
			emitAdmission(f.flight, f.stats, via, len(f.pool))
		}
	}
	// The single end-of-step compile outcome is attributed to every
	// mutator in the havoc chain.
	rw := sched.Reward{
		NewCoverage:  admitted,
		Crash:        res.Crash != nil,
		CompileError: !res.OK && res.Crash == nil,
	}
	for _, mi := range applied {
		f.Sched.Observe(mi, rw)
	}
}

// Corpus returns a copy of the worker's current program pool
// (checkpointing).
func (f *MacroFuzzer) Corpus() []string {
	out := make([]string, len(f.pool))
	copy(out, f.pool)
	return out
}

// SetCorpus replaces the program pool (checkpoint restore).
func (f *MacroFuzzer) SetCorpus(pool []string) {
	f.pool = make([]string, len(pool))
	copy(f.pool, pool)
}

// PoolSize returns the current program-pool size.
func (f *MacroFuzzer) PoolSize() int { return len(f.pool) }

// Coverage returns the worker's current coverage sink.
func (f *MacroFuzzer) Coverage() CoverageSink { return f.shared }

// SetCoverage swaps the coverage sink — the campaign engine uses this
// to substitute per-epoch deterministic views for the shared map.
func (f *MacroFuzzer) SetCoverage(sink CoverageSink) { f.shared = sink }

// Corpus returns a copy of μCFuzz's current program pool.
func (f *MuCFuzz) Corpus() []string {
	out := make([]string, len(f.pool))
	copy(out, f.pool)
	return out
}

// SetCorpus replaces μCFuzz's program pool (checkpoint restore).
func (f *MuCFuzz) SetCorpus(pool []string) {
	f.pool = make([]string, len(pool))
	copy(f.pool, pool)
}

// The old RunParallel/RunParallelProgress round-robin loop — parallel in
// name only — lived here; true goroutine parallelism with deterministic
// epoch-based coverage sync is internal/engine's job now (the engine
// package keeps compatibility shims under the same names).

// MergedCrashes unions workers' unique crashes (earliest discovery wins).
func MergedCrashes(workers []*MacroFuzzer) map[string]*CrashInfo {
	agg := NewStats("merged")
	for _, w := range workers {
		agg.MergeFrom(w.stats)
	}
	return agg.Crashes
}
