package fuzz

import (
	"math/rand"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func testPool(t testing.TB, n int) []string {
	t.Helper()
	return seeds.Generate(n, 42)
}

func TestMuCFuzzGrowsCoverageAndPool(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	f := NewMuCFuzz("muCFuzz.s", comp, muast.BySet(muast.Supervised),
		testPool(t, 20), rand.New(rand.NewSource(7)))
	for i := 0; i < 120; i++ {
		f.Step()
	}
	st := f.Stats()
	if st.Total == 0 {
		t.Fatal("no mutants produced")
	}
	if st.Coverage.Count() == 0 {
		t.Fatal("no coverage accumulated")
	}
	if f.PoolSize() <= 20 {
		t.Errorf("pool did not grow beyond seeds: %d", f.PoolSize())
	}
	ratio := st.CompilableRatio()
	if ratio < 50 {
		t.Errorf("compilable ratio %.1f%%, want semantic-aware >= 50%%", ratio)
	}
	t.Logf("mutants=%d compilable=%.1f%% edges=%d crashes=%d pool=%d",
		st.Total, ratio, st.Coverage.Count(), st.UniqueCrashes(), f.PoolSize())
}

func TestMuCFuzzFindsDeepCrashes(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	f := NewMuCFuzz("muCFuzz.s", comp, muast.BySet(muast.Supervised),
		testPool(t, 30), rand.New(rand.NewSource(11)))
	deepCrashes := func() int {
		n := 0
		for _, c := range f.Stats().Crashes {
			if c.Report.Component != compilersim.FrontEnd {
				n++
			}
		}
		return n
	}
	for i := 0; i < 4000 && deepCrashes() == 0; i++ {
		f.Step()
	}
	st := f.Stats()
	if st.UniqueCrashes() == 0 {
		t.Fatalf("found no crashes in %d mutants", st.Total)
	}
	deep := 0
	for _, c := range st.Crashes {
		if c.Report.Component != compilersim.FrontEnd {
			deep++
		}
		if c.Via == "" {
			t.Error("crash without attribution")
		}
	}
	if deep == 0 {
		t.Error("semantic-aware mutators found only front-end crashes")
	}
	t.Logf("crashes=%d (deep=%d) after %d mutants", st.UniqueCrashes(), deep, st.Total)
}

func TestCrashDedupBySignature(t *testing.T) {
	s := NewStats("x")
	crash := &compilersim.CrashReport{
		BugID: "b1", Frames: [2]string{"f1", "f2"},
	}
	res := compilersim.Result{Crash: crash, Coverage: newEmptyCov()}
	s.Record("src1", "m1", res)
	s.Record("src2", "m2", res)
	if s.UniqueCrashes() != 1 {
		t.Fatalf("unique crashes = %d, want 1 (same top-2 frames)", s.UniqueCrashes())
	}
	if s.Crashes["f1|f2"].Via != "m1" {
		t.Error("first discovery should be kept")
	}
	crash2 := &compilersim.CrashReport{
		BugID: "b2", Frames: [2]string{"f1", "other"},
	}
	s.Record("src3", "m3", compilersim.Result{Crash: crash2, Coverage: newEmptyCov()})
	if s.UniqueCrashes() != 2 {
		t.Fatalf("unique crashes = %d, want 2", s.UniqueCrashes())
	}
}

func TestCrashTimelineMonotonic(t *testing.T) {
	comp := compilersim.New("clang", 18)
	f := NewMuCFuzz("m", comp, muast.All(), testPool(t, 20),
		rand.New(rand.NewSource(3)))
	for i := 0; i < 600; i++ {
		f.Step()
	}
	tl := f.Stats().CrashTimeline()
	for i := 1; i < len(tl); i++ {
		if tl[i][0] < tl[i-1][0] || tl[i][1] != tl[i-1][1]+1 {
			t.Fatalf("timeline not monotone: %v", tl)
		}
	}
}

func TestMacroFuzzerHavocAndFlags(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	shared := NewSharedCoverage()
	var workers []*MacroFuzzer
	for i := 0; i < 4; i++ {
		workers = append(workers, NewMacroFuzzer("macro", comp, muast.All(),
			testPool(t, 10), rand.New(rand.NewSource(int64(100+i))), shared,
			DefaultMacroConfig()))
	}
	// Scheduling is internal/engine's job; here we exercise the worker
	// mechanics (havoc, flag sampling, shared-coverage admission) alone.
	for i := 0; i < 400; i++ {
		workers[i%len(workers)].Step()
	}
	total := 0
	for _, w := range workers {
		total += w.Stats().Total
	}
	if total == 0 {
		t.Fatal("macro fuzzer produced nothing")
	}
	if shared.Count() == 0 {
		t.Fatal("shared coverage empty")
	}
	merged := MergedCrashes(workers)
	t.Logf("macro: %d mutants, %d shared edges, %d unique crashes",
		total, shared.Count(), len(merged))
}

func TestMacroResourceLimit(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	cfg := DefaultMacroConfig()
	cfg.MaxProgramSize = 64 // absurdly small: everything oversized
	f := NewMacroFuzzer("macro", comp, muast.All(), testPool(t, 5),
		rand.New(rand.NewSource(1)), NewSharedCoverage(), cfg)
	for i := 0; i < 50; i++ {
		f.Step()
	}
	if f.Stats().Total != 0 {
		t.Errorf("oversized mutants were compiled: %d", f.Stats().Total)
	}
}

func newEmptyCov() *cover.Map { return cover.NewMap() }

func TestStaticFilterSavesTicks(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	f := NewMuCFuzz("muCFuzz.static", comp, muast.BySet(muast.Supervised),
		testPool(t, 20), rand.New(rand.NewSource(7)))
	f.StaticFilter = true
	for i := 0; i < 120; i++ {
		f.Step()
	}
	st := f.Stats()
	if st.StaticRejects == 0 {
		t.Fatal("static filter rejected nothing (unchecked rewrites should trip it)")
	}
	if st.Ticks != st.Total-st.StaticRejects {
		t.Errorf("ticks=%d, want Total-StaticRejects=%d (rejects must not tick)",
			st.Ticks, st.Total-st.StaticRejects)
	}
	// Soundness downstream of mutcheck's contract: everything that
	// reached the compiler and everything rejected stays consistent —
	// compilable counts only ticked mutants.
	if st.Compilable > st.Ticks {
		t.Errorf("compilable=%d > ticks=%d", st.Compilable, st.Ticks)
	}
	t.Logf("mutants=%d static-rejects=%d ticks=%d compilable=%.1f%%",
		st.Total, st.StaticRejects, st.Ticks, st.CompilableRatio())
}

func TestStaticRejectMergeFrom(t *testing.T) {
	a, b := NewStats("a"), NewStats("b")
	a.RecordStaticReject("M1", "parse-error")
	b.RecordStaticReject("M2", "sema-error")
	b.RecordStaticReject("M2+M3", "parse-error")
	a.MergeFrom(b)
	if a.Total != 3 || a.StaticRejects != 3 || a.Ticks != 0 {
		t.Errorf("merged total=%d rejects=%d ticks=%d, want 3/3/0",
			a.Total, a.StaticRejects, a.Ticks)
	}
}
