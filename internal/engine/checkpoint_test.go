package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// TestCheckpointResumeEqualsUninterrupted is the checkpoint contract:
// kill a campaign mid-flight, resume it from the snapshot, and the
// final merged state is identical to a run that was never interrupted.
func TestCheckpointResumeEqualsUninterrupted(t *testing.T) {
	pool := seeds.Generate(12, 5)
	cfg := Config{Streams: 6, Workers: 3, StepsPerEpoch: 12,
		TotalSteps: 1200, Seed: 99}

	// Reference: one uninterrupted run.
	ref := New(cfg, macroFactory(compilersim.New("gcc", 14), pool))
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	// Interrupted: cancel at the third barrier; the engine finishes the
	// in-flight epoch, snapshots, and returns ErrInterrupted.
	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	icfg := cfg
	icfg.CheckpointPath = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	epochs := 0
	icfg.OnEpoch = func(done, total int) {
		if epochs++; epochs == 3 {
			cancel()
		}
	}
	ic := New(icfg, macroFactory(compilersim.New("gcc", 14), pool))
	err := ic.Run(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if ic.Done() >= cfg.TotalSteps || ic.Done() == 0 {
		t.Fatalf("interrupted at done=%d, want mid-campaign", ic.Done())
	}

	// Resume from the snapshot and finish.
	rc, err := Resume(ckpt, Config{Workers: 5},
		macroFactory(compilersim.New("gcc", 14), pool))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Done() != ic.Done() || rc.Epoch() != ic.Epoch() {
		t.Fatalf("resumed at done=%d epoch=%d, checkpoint had done=%d epoch=%d",
			rc.Done(), rc.Epoch(), ic.Done(), ic.Epoch())
	}
	if err := rc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rc); got != want {
		t.Errorf("interrupt+resume diverged from uninterrupted run:\n got %s\nwant %s",
			got, want)
	}
}

// TestResumeExtendsBudget: a completed campaign's final snapshot can be
// resumed with a larger TotalSteps and keeps fuzzing.
func TestResumeExtendsBudget(t *testing.T) {
	pool := seeds.Generate(10, 5)
	ckpt := filepath.Join(t.TempDir(), "c.json")
	cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 10,
		TotalSteps: 200, Seed: 3, CheckpointPath: ckpt}
	c := New(cfg, macroFactory(compilersim.New("gcc", 14), pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rc, err := Resume(ckpt, Config{TotalSteps: 400},
		macroFactory(compilersim.New("gcc", 14), pool))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Done() != 200 {
		t.Fatalf("resumed done = %d, want 200", rc.Done())
	}
	if err := rc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rc.Done() != 400 {
		t.Errorf("extended run done = %d, want 400", rc.Done())
	}
	// The extension must equal a straight 400-step run.
	full := New(Config{Streams: 4, Workers: 2, StepsPerEpoch: 10,
		TotalSteps: 400, Seed: 3},
		macroFactory(compilersim.New("gcc", 14), pool))
	if err := full.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fingerprint(rc) != fingerprint(full) {
		t.Error("extended campaign diverged from straight 400-step run")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	pool := seeds.Generate(10, 5)
	reg := obs.NewRegistry()
	ckpt := filepath.Join(t.TempDir(), "c.json")
	cfg := Config{Streams: 3, Workers: 3, StepsPerEpoch: 15,
		TotalSteps: 300, Seed: 21, CheckpointPath: ckpt, Registry: reg}
	c := New(cfg, mucFactory(compilersim.New("gcc", 14), pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion || snap.Done != 300 || snap.Seed != 21 {
		t.Errorf("snapshot fields off: %+v", snap)
	}
	if len(snap.StreamStates) != 3 {
		t.Fatalf("stream states = %d, want 3", len(snap.StreamStates))
	}
	for i, ss := range snap.StreamStates {
		if len(ss.Corpus) == 0 {
			t.Errorf("stream %d: empty corpus", i)
		}
		if ss.Stats.Ticks == 0 {
			t.Errorf("stream %d: no ticks recorded", i)
		}
	}
	// Coverage must round-trip exactly.
	m, err := decodeCoverage(snap.Coverage)
	if err != nil {
		t.Fatal(err)
	}
	g := c.CoverageSnapshot()
	if m.HasNew(g) || g.HasNew(m) {
		t.Error("global coverage did not round-trip")
	}
	if n := reg.Snapshot().Counter("engine_checkpoints_total"); n == 0 {
		t.Error("engine_checkpoints_total never incremented")
	}
	if b := reg.Gauge("engine_checkpoint_bytes").With().Value(); b == 0 {
		t.Error("engine_checkpoint_bytes not set")
	}
}

func TestResumeRejectsContradictions(t *testing.T) {
	pool := seeds.Generate(5, 5)
	ckpt := filepath.Join(t.TempDir(), "c.json")
	cfg := Config{Streams: 2, StepsPerEpoch: 5, TotalSteps: 20, Seed: 8,
		CheckpointPath: ckpt}
	c := New(cfg, macroFactory(compilersim.New("gcc", 14), pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	fac := macroFactory(compilersim.New("gcc", 14), pool)
	for _, bad := range []Config{
		{Seed: 9},
		{Streams: 4},
		{StepsPerEpoch: 7},
	} {
		if _, err := Resume(ckpt, bad, fac); err == nil {
			t.Errorf("Resume accepted contradicting config %+v", bad)
		}
	}
}

// TestResumeFromCorruptCheckpoint: a torn or tampered latest generation
// must not lose the campaign — Resume falls back to the rotated .prev
// and the finished run still equals an uninterrupted one (it merely
// re-fuzzes the last interval deterministically).
func TestResumeFromCorruptCheckpoint(t *testing.T) {
	pool := seeds.Generate(12, 5)
	cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 10,
		TotalSteps: 400, Seed: 17}

	ref := New(cfg, macroFactory(compilersim.New("gcc", 14), pool))
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	for name, corrupt := range map[string]func(path string){
		"torn-write": func(path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(path, data[:len(data)/3], 0o644)
		},
		"tampered-contents": func(path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Valid JSON, wrong contents: claim more progress than the
			// checksum was computed over.
			data = bytes.Replace(data, []byte(`"done":`), []byte(`"done":9`), 1)
			os.WriteFile(path, data, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "campaign.json")
			icfg := cfg
			icfg.CheckpointPath = ckpt
			ctx, cancel := context.WithCancel(context.Background())
			epochs := 0
			icfg.OnEpoch = func(done, total int) {
				if epochs++; epochs == 4 {
					cancel()
				}
			}
			ic := New(icfg, macroFactory(compilersim.New("gcc", 14), pool))
			if err := ic.Run(ctx); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted run returned %v", err)
			}
			if _, err := os.Stat(ckpt + PrevSuffix); err != nil {
				t.Fatalf("no rotated generation: %v", err)
			}
			corrupt(ckpt)
			if _, err := Load(ckpt); !errors.Is(err, ErrCorrupt) && name == "tampered-contents" {
				t.Fatalf("Load(tampered) = %v, want ErrCorrupt", err)
			}

			reg := obs.NewRegistry()
			rc, err := Resume(ckpt, Config{Registry: reg},
				macroFactory(compilersim.New("gcc", 14), pool))
			if err != nil {
				t.Fatalf("Resume did not fall back to .prev: %v", err)
			}
			if rc.Done() >= ic.Done() {
				t.Fatalf("fallback resumed at done=%d, want an earlier generation than %d",
					rc.Done(), ic.Done())
			}
			if n := reg.Snapshot().Counter("engine_checkpoint_fallbacks_total"); n != 1 {
				t.Errorf("engine_checkpoint_fallbacks_total = %d, want 1", n)
			}
			if err := rc.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(rc); got != want {
				t.Errorf("corrupt-fallback run diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load invented a snapshot from a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("Load accepted malformed JSON")
	}
	wrongVer := filepath.Join(dir, "ver.json")
	os.WriteFile(wrongVer, []byte(`{"version":99,"streams":1,"stream_states":[{}]}`), 0o644)
	if _, err := Load(wrongVer); err == nil {
		t.Error("Load accepted a future snapshot version")
	}
}
