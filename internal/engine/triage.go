package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/reduce"
)

// TriagedBug is one deduplicated crash with its earliest witness and,
// when reduction succeeded, a minimized reproducer.
type TriagedBug struct {
	Rank      int                     `json:"rank"`
	Signature string                  `json:"signature"`
	Report    compilersim.CrashReport `json:"report"`
	// FirstTick is the earliest per-stream tick the crash appeared at;
	// Stream is the stream that holds that discovery.
	FirstTick int `json:"first_tick"`
	Stream    int `json:"stream"`
	// Hits counts how many streams found the signature independently —
	// a proxy for how easy the bug is to trigger.
	Hits int    `json:"hits"`
	Via  string `json:"via"`
	// Witness is the original crashing program.
	Witness string `json:"witness"`
	// Minimized is the reduced witness ("" when no fixed option set
	// reproduced the crash, e.g. it needed sampled pass-disabling
	// flags). ReduceOptLevel is the -O level the oracle reproduced at
	// (-1 when reduction was skipped); ReductionSteps counts oracle
	// invocations spent.
	Minimized      string `json:"minimized,omitempty"`
	ReduceOptLevel int    `json:"reduce_opt_level"`
	ReductionSteps int    `json:"reduction_steps"`
}

// TriageReport ranks a campaign's unique crashes.
type TriageReport struct {
	Compiler string        `json:"compiler"`
	Streams  int           `json:"streams"`
	Bugs     []*TriagedBug `json:"bugs"`
}

// TriageConfig tunes the pipeline.
type TriageConfig struct {
	// Reduce enables automatic witness minimization via internal/reduce.
	Reduce bool
	// ReduceCfg bounds each reduction (zero value → reduce.DefaultConfig).
	ReduceCfg reduce.Config
	// Registry receives triage telemetry (triage_reduced_total, spans).
	Registry *obs.Registry
}

// Triage buckets every stream's crashes by signature (earliest
// discovery wins; ties go to the lower stream), ranks them — deeper
// component first, then earlier discovery — and optionally minimizes
// each witness. comp must be the compiler the campaign fuzzed, since
// reduction replays candidates against it.
func Triage(workers []Worker, comp *compilersim.Compiler, tcfg TriageConfig) *TriageReport {
	sp := tcfg.Registry.Span("engine_triage")
	rep := &TriageReport{Streams: len(workers)}
	if comp != nil {
		rep.Compiler = fmt.Sprintf("%s-%d", comp.Name, comp.Version)
	}
	byStream := map[string]*TriagedBug{}
	for s, w := range workers {
		for sig, ci := range w.Stats().Crashes {
			b, ok := byStream[sig]
			if !ok {
				byStream[sig] = &TriagedBug{
					Signature:      sig,
					Report:         ci.Report,
					FirstTick:      ci.FirstTick,
					Stream:         s,
					Hits:           1,
					Via:            ci.Via,
					Witness:        ci.Input,
					ReduceOptLevel: -1,
				}
				continue
			}
			b.Hits++
			if ci.FirstTick < b.FirstTick {
				b.Report, b.FirstTick, b.Stream = ci.Report, ci.FirstTick, s
				b.Via, b.Witness = ci.Via, ci.Input
			}
		}
	}
	for _, b := range byStream {
		rep.Bugs = append(rep.Bugs, b)
	}
	sort.Slice(rep.Bugs, func(i, j int) bool {
		a, b := rep.Bugs[i], rep.Bugs[j]
		if a.Report.Component != b.Report.Component {
			return a.Report.Component > b.Report.Component // deeper first
		}
		if a.FirstTick != b.FirstTick {
			return a.FirstTick < b.FirstTick
		}
		return a.Signature < b.Signature
	})
	for i, b := range rep.Bugs {
		b.Rank = i + 1
	}
	if tcfg.Reduce && comp != nil {
		rcfg := tcfg.ReduceCfg
		if rcfg == (reduce.Config{}) {
			rcfg = reduce.DefaultConfig()
		}
		reduced := tcfg.Registry.Counter("triage_reduced_total").With()
		for _, b := range rep.Bugs {
			minimizeBug(b, comp, rcfg, reduced)
		}
	}
	sp.EndWith(map[string]any{"bugs": len(rep.Bugs)})
	return rep
}

// minimizeBug reduces one witness. Crashes are found under randomly
// sampled compiler options which the campaign does not record, so the
// oracle probes the fixed -O levels most likely to reproduce (2, 3, 1,
// 0, no passes disabled) and reduces under the first that does.
func minimizeBug(b *TriagedBug, comp *compilersim.Compiler,
	rcfg reduce.Config, reduced *obs.Counter) {
	for _, lvl := range [...]int{2, 3, 1, 0} {
		oracle := reduce.CrashOracle(comp, compilersim.Options{OptLevel: lvl}, b.Signature)
		if !oracle(b.Witness) {
			continue
		}
		res := reduce.Reduce(b.Witness, oracle, rcfg)
		b.Minimized = res.Output
		b.ReduceOptLevel = lvl
		b.ReductionSteps = res.Tried
		reduced.Inc()
		return
	}
}

// Triage runs the pipeline over the campaign's streams.
func (c *Campaign) Triage(comp *compilersim.Compiler, tcfg TriageConfig) *TriageReport {
	if tcfg.Registry == nil {
		tcfg.Registry = c.reg
	}
	return Triage(c.workers, comp, tcfg)
}

// Render formats the report as a ranked text table.
func (r *TriageReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Triage: %d unique bugs", len(r.Bugs))
	if r.Compiler != "" {
		fmt.Fprintf(&sb, " in %s", r.Compiler)
	}
	fmt.Fprintf(&sb, " across %d streams\n", r.Streams)
	if len(r.Bugs) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%4s  %-9s  %-18s  %9s  %4s  %-24s  %s\n",
		"rank", "component", "kind", "tick", "hits", "via", "witness")
	for _, b := range r.Bugs {
		wit := fmt.Sprintf("%dB", len(b.Witness))
		if b.Minimized != "" {
			wit = fmt.Sprintf("%dB -> %dB (%d oracle calls at -O%d)",
				len(b.Witness), len(b.Minimized), b.ReductionSteps, b.ReduceOptLevel)
		}
		via := b.Via
		if len(via) > 24 {
			via = via[:21] + "..."
		}
		fmt.Fprintf(&sb, "%4d  %-9s  %-18s  %9d  %4d  %-24s  %s\n",
			b.Rank, b.Report.Component, b.Report.Kind, b.FirstTick, b.Hits, via, wit)
	}
	return sb.String()
}

// WriteJSON writes the report atomically (temp file + rename).
func (r *TriageReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".triage-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
