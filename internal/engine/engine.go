// Package engine runs parallel fuzzing campaigns. It decouples the
// campaign's *logical* shape — a fixed number of deterministic streams,
// each with its own RNG, corpus, and coverage view — from the *physical*
// worker fleet executing them, so a fixed seed yields the identical
// merged crash set and stats at any worker count and any goroutine
// interleaving, while throughput still scales with workers.
//
// The trick is epoch-based coverage sync: during an epoch every stream
// fuzzes against a frozen private view of global coverage (seeded from
// the last barrier) and records its discoveries in a private delta.
// At the barrier the deltas merge into the global map in stream order,
// every view is refreshed, and only then may the next epoch start.
// Nothing a stream does mid-epoch can observe another stream's
// concurrent activity, which is exactly what makes the schedule
// irrelevant to the outcome.
//
// Barriers are also where checkpoints happen: the engine only observes
// cancellation between epochs, so a snapshot always captures a clean
// epoch boundary and resuming re-executes the remaining epochs
// identically to an uninterrupted run.
//
// Stream execution is supervised: a panic in a worker is caught in the
// executing goroutine and never takes down the fleet. A task that dies
// before its first step of the epoch mutated nothing and is simply
// re-dispatched (up to TaskRetries — this is how recoverable chaos
// faults stay byte-identical to a fault-free run); a task that dies
// mid-step has corrupted its stream's trajectory, so the stream is
// poisoned — retired from scheduling, recorded in the checkpoint — while
// the remaining streams keep fuzzing.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/obs"
)

// Worker is one fuzzing stream's executor. Both fuzz.MuCFuzz and
// fuzz.MacroFuzzer satisfy it.
type Worker interface {
	Name() string
	Step()
	Stats() *fuzz.Stats
	// Corpus and SetCorpus expose the program pool for checkpointing.
	Corpus() []string
	SetCorpus([]string)
}

// Factory builds the worker for one stream. rng is the stream's private
// deterministic generator (its state is checkpointed); cov is the
// stream's epoch-local coverage view — pass it as the shared sink when
// building coverage-sharing workers (fuzz.NewMacroFuzzer), ignore it
// for self-guided ones (fuzz.NewMuCFuzz).
type Factory func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) Worker

// Config shapes a campaign. Streams, StepsPerEpoch, and Seed are part
// of the campaign's identity — two runs agreeing on them (and
// TotalSteps) produce identical results at any Workers value.
type Config struct {
	// Streams is the number of logical fuzzing streams (default 16).
	Streams int
	// Workers is the number of goroutines executing streams (default
	// GOMAXPROCS, clamped to Streams). Affects throughput only.
	Workers int
	// StepsPerEpoch is how many steps each stream runs between coverage
	// barriers (default 32). Smaller epochs propagate coverage faster;
	// larger ones synchronize less.
	StepsPerEpoch int
	// TotalSteps is the campaign budget, summed across streams.
	TotalSteps int
	// Seed derives every stream's RNG.
	Seed int64
	// CheckpointPath, when set, makes the engine write an atomic
	// snapshot every CheckpointEvery epochs (default: every epoch), on
	// cancellation, and at completion.
	CheckpointPath string
	// CheckpointEvery is the epoch interval between periodic snapshots.
	CheckpointEvery int
	// Registry receives engine telemetry (nil disables it).
	Registry *obs.Registry
	// Flight, when set, receives the campaign's structured event journal:
	// the engine emits one barrier summary per epoch (stream progress,
	// scheduler posteriors, retries, poisonings), a checkpoint event per
	// successful snapshot write, and an end event at completion. Stream
	// workers are attached separately (fuzzer AttachFlight in the
	// factory). Everything emitted is keyed by logical time only, so the
	// journal is byte-identical at any worker count.
	Flight *flight.Recorder
	// OnEpoch, when set, is called after every barrier with the steps
	// completed so far and the total budget.
	OnEpoch func(done, total int)
	// OnStreamStart, when set, is called in the executing worker
	// goroutine right before a stream's first step of the epoch, inside
	// the supervision scope. The chaos harness injects worker panics
	// here; attempt counts re-dispatches of the same (epoch, stream)
	// task so injectors can fail only the first try.
	OnStreamStart func(epoch, stream, attempt int)
	// CheckpointTransform, when set, intercepts the serialized snapshot
	// just before each write attempt — the chaos harness tears or fails
	// writes here. An error counts as a failed write attempt.
	CheckpointTransform func(data []byte) ([]byte, error)
	// TaskRetries bounds re-dispatches of a stream task whose worker
	// panicked before stepping (default 2). Panics after the first step
	// are never retried — the stream is poisoned instead.
	TaskRetries int
	// CheckpointRetries bounds write attempts per checkpoint (default 3).
	CheckpointRetries int
}

func (cfg *Config) normalize() {
	if cfg.Streams <= 0 {
		cfg.Streams = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Streams {
		cfg.Workers = cfg.Streams
	}
	if cfg.StepsPerEpoch <= 0 {
		cfg.StepsPerEpoch = 32
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.TaskRetries <= 0 {
		cfg.TaskRetries = 2
	}
	if cfg.CheckpointRetries <= 0 {
		cfg.CheckpointRetries = 3
	}
}

// view is a stream's private window onto global coverage during one
// epoch: merged = global-at-last-barrier ∪ own discoveries (the
// admission signal), delta = own discoveries only (what the barrier
// publishes). No locks — only the owning stream touches it mid-epoch.
type view struct {
	merged *cover.Map
	delta  *cover.Map
}

// MergeIfNew implements fuzz.CoverageSink against the frozen view.
func (v *view) MergeIfNew(m *cover.Map) bool {
	if !v.merged.HasNew(m) {
		return false
	}
	v.merged.Merge(m)
	v.delta.Merge(m)
	return true
}

// Campaign is one parallel fuzzing campaign.
type Campaign struct {
	cfg     Config
	workers []Worker
	// sources are the engine-owned RNG states, nil when workers were
	// adopted with their own generators (shim path) — such campaigns
	// cannot checkpoint.
	sources []*mix64
	views   []*view
	global  *cover.Map
	epoch   int
	done    int
	// poisoned maps retired streams to why they died; their planned
	// steps still count toward the budget so the campaign terminates.
	poisoned map[int]PoisonInfo
	// ckptDone is the done-count of the last successful checkpoint (-1
	// before any): writing the same barrier twice would rotate a real
	// generation out of .prev for an identical copy.
	ckptDone int
	// ended latches the flight end event so repeated RunSlice calls on
	// a completed campaign never journal a second one.
	ended bool
	// slice is the supervision report for the RunSlice call in progress
	// (or the last completed one); see SliceReport.
	slice SliceReport
	// locks are the single-writer guards on the campaign's checkpoint
	// state (see AcquireLock); lockErr defers a New-time acquisition
	// failure to the first RunSlice, which has an error to return.
	locks   []*Lock
	lockErr error

	reg          *obs.Registry
	mEpochSec    *obs.Histogram
	mSyncSec     *obs.Histogram
	mQueue       *obs.Gauge
	mStepsDone   *obs.Gauge
	mCkptBytes   *obs.Gauge
	mEpochs      *obs.Counter
	mCkpts       *obs.Counter
	mCkptFails   *obs.Counter
	mTaskRetries *obs.Counter
	mPoisoned    *obs.Counter
}

// PoisonInfo records why and when a stream was retired.
type PoisonInfo struct {
	Epoch  int    `json:"epoch"`
	Reason string `json:"reason"`
}

// New builds a campaign, creating one worker per stream via factory.
// A campaign with a CheckpointPath takes the path's single-writer lock
// (see AcquireLock) so two processes cannot corrupt the same state; an
// acquisition failure surfaces as ErrLocked from the first Run or
// RunSlice call (New itself has no error to return).
func New(cfg Config, factory Factory) *Campaign {
	cfg.normalize()
	c := &Campaign{cfg: cfg, global: cover.NewMap(), poisoned: map[int]PoisonInfo{}, ckptDone: -1}
	c.acquireLocks(cfg.CheckpointPath)
	c.instrument()
	for i := 0; i < cfg.Streams; i++ {
		src := &mix64{state: streamSeed(cfg.Seed, i)}
		v := &view{merged: cover.NewMap(), delta: cover.NewMap()}
		c.sources = append(c.sources, src)
		c.views = append(c.views, v)
		c.workers = append(c.workers, factory(i, rand.New(src), v))
	}
	return c
}

// Adopt wraps pre-built workers (one per stream) into a campaign. The
// workers keep their own RNGs, so determinism across worker counts
// still holds, but the campaign cannot checkpoint (the engine cannot
// serialize foreign generator state) — CheckpointPath must be empty.
// Coverage-sharing workers must implement SetCoverage; their sinks are
// swapped for engine views for the duration of Run (the shim in this
// package restores and back-fills them).
func Adopt(cfg Config, workers []Worker) (*Campaign, error) {
	if cfg.CheckpointPath != "" {
		return nil, errors.New("engine: adopted campaigns cannot checkpoint (foreign RNG state)")
	}
	cfg.Streams = len(workers)
	cfg.normalize()
	c := &Campaign{cfg: cfg, global: cover.NewMap(), workers: workers, poisoned: map[int]PoisonInfo{}, ckptDone: -1}
	c.instrument()
	for range workers {
		c.views = append(c.views, &view{merged: cover.NewMap(), delta: cover.NewMap()})
	}
	for i, w := range workers {
		if cs, ok := w.(interface{ SetCoverage(fuzz.CoverageSink) }); ok {
			cs.SetCoverage(c.views[i])
		}
	}
	return c, nil
}

// RegisterMetrics pre-registers every engine metric family (including
// event-gated ones like resume fallbacks and triage reductions), so
// metric snapshots and the METRICS.md reference see the full engine
// surface from campaign start. Idempotent; nil registry is a no-op.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Histogram("engine_epoch_seconds", nil)
	reg.Histogram("engine_sync_seconds", obs.ExpBuckets(1e-6, 4, 12))
	reg.Gauge("engine_queue_depth")
	reg.Gauge("engine_steps_done")
	reg.Gauge("engine_checkpoint_bytes")
	reg.Counter("engine_epochs_total")
	reg.Counter("engine_checkpoints_total")
	reg.Counter("engine_checkpoint_failures_total")
	reg.Counter("engine_task_retries_total")
	reg.Counter("engine_streams_poisoned_total")
	reg.Counter("engine_checkpoint_fallbacks_total")
	reg.Counter("triage_reduced_total")
}

func (c *Campaign) instrument() {
	reg := c.cfg.Registry // nil registry → every handle no-ops
	c.reg = reg
	RegisterMetrics(reg)
	c.mEpochSec = reg.Histogram("engine_epoch_seconds", nil).With()
	c.mSyncSec = reg.Histogram("engine_sync_seconds", obs.ExpBuckets(1e-6, 4, 12)).With()
	c.mQueue = reg.Gauge("engine_queue_depth").With()
	c.mStepsDone = reg.Gauge("engine_steps_done").With()
	c.mCkptBytes = reg.Gauge("engine_checkpoint_bytes").With()
	c.mEpochs = reg.Counter("engine_epochs_total").With()
	c.mCkpts = reg.Counter("engine_checkpoints_total").With()
	c.mCkptFails = reg.Counter("engine_checkpoint_failures_total").With()
	c.mTaskRetries = reg.Counter("engine_task_retries_total").With()
	c.mPoisoned = reg.Counter("engine_streams_poisoned_total").With()
}

// Done returns the steps completed so far.
func (c *Campaign) Done() int { return c.done }

// Config returns the campaign's normalized configuration (defaults
// resolved, snapshot fields inherited on resume).
func (c *Campaign) Config() Config { return c.cfg }

// Epoch returns the number of completed epochs.
func (c *Campaign) Epoch() int { return c.epoch }

// Workers exposes the stream workers (read-only use between runs).
func (c *Campaign) Workers() []Worker { return c.workers }

// CoverageSnapshot returns a copy of the merged global coverage map.
func (c *Campaign) CoverageSnapshot() *cover.Map { return c.global.Clone() }

// Poisoned returns a copy of the retired-stream records.
func (c *Campaign) Poisoned() map[int]PoisonInfo {
	out := make(map[int]PoisonInfo, len(c.poisoned))
	for s, info := range c.poisoned {
		out[s] = info
	}
	return out
}

// ErrInterrupted reports that Run stopped at an epoch barrier because
// its context was cancelled. If the campaign has a checkpoint path the
// snapshot on disk resumes exactly where it left off.
var ErrInterrupted = errors.New("engine: campaign interrupted")

// Run executes epochs until the budget is spent or ctx is cancelled.
// Cancellation is only observed at barriers: the in-flight epoch always
// completes and is checkpointed, which is what makes interrupt+resume
// equal an uninterrupted run.
func (c *Campaign) Run(ctx context.Context) error {
	_, err := c.RunSlice(ctx, 0)
	return err
}

// Finished reports whether the campaign's budget is spent.
func (c *Campaign) Finished() bool { return c.done >= c.cfg.TotalSteps }

// SliceReport summarizes the supervision-relevant outcomes of the most
// recent RunSlice call: epochs completed, streams newly poisoned, task
// retries granted, and checkpoint write failures (with the last write
// error). A daemon's supervision layer reads it between slices to
// decide strikes and disk-pressure transitions without parsing logs.
type SliceReport struct {
	Epochs             int
	Poisoned           int
	Retries            int
	CheckpointFailures int
	CheckpointErr      error
}

// LastSlice returns the report for the most recent RunSlice call. Only
// the goroutine driving the campaign may call it, and only while the
// campaign is quiescent (between slices).
func (c *Campaign) LastSlice() SliceReport { return c.slice }

// SetCheckpointEvery retunes the periodic snapshot cadence (n < 1
// means every epoch). Only the goroutine driving the campaign may call
// it, between slices — the daemon's disk-pressure governor widens the
// interval here when checkpoint writes start failing.
func (c *Campaign) SetCheckpointEvery(n int) {
	if n < 1 {
		n = 1
	}
	c.cfg.CheckpointEvery = n
}

// RunSlice executes up to maxEpochs epochs (0 or negative: until the
// budget is spent) and pauses at the next barrier. It returns
// finished=true once the budget is spent, after writing the final
// checkpoint and the flight end event. A paused campaign is exactly a
// quiescent one — every stream sits at the barrier, the periodic
// checkpoint cadence has run — so a caller may interleave slices of
// many campaigns over one goroutine fleet (pause-at-barrier
// preemption) without perturbing any campaign's results: per-campaign
// outcomes depend only on seed, streams, and budget, never on when its
// epochs are scheduled.
func (c *Campaign) RunSlice(ctx context.Context, maxEpochs int) (finished bool, err error) {
	c.slice = SliceReport{}
	if c.lockErr != nil {
		return false, c.lockErr
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ran := 0
	for c.done < c.cfg.TotalSteps {
		if ctx.Err() != nil {
			if err := c.Checkpoint(); err != nil {
				c.slice.CheckpointFailures++
				c.slice.CheckpointErr = err
				c.Unlock()
				return false, errors.Join(ErrInterrupted, err)
			}
			c.Unlock()
			return false, ErrInterrupted
		}
		if maxEpochs > 0 && ran >= maxEpochs {
			return false, nil
		}
		c.runEpoch()
		ran++
		c.slice.Epochs++
		if c.cfg.OnEpoch != nil {
			c.cfg.OnEpoch(c.done, c.cfg.TotalSteps)
		}
		if c.cfg.CheckpointPath != "" && c.epoch%c.cfg.CheckpointEvery == 0 {
			// A periodic snapshot failing is not worth killing a healthy
			// campaign over: the failure is counted and the next interval
			// (or the final snapshot below) tries again.
			if err := c.Checkpoint(); err != nil {
				c.mCkptFails.Inc()
				c.slice.CheckpointFailures++
				c.slice.CheckpointErr = err
			}
		}
	}
	if c.cfg.CheckpointPath != "" {
		// Final snapshot: resumable later with a larger TotalSteps.
		if err := c.Checkpoint(); err != nil {
			c.slice.CheckpointFailures++
			c.slice.CheckpointErr = err
			c.Unlock()
			return false, err
		}
	}
	if rec := c.cfg.Flight; rec != nil && !c.ended {
		agg := c.MergedStats()
		rec.End(c.done, agg.Coverage.Count(), len(agg.Crashes))
	}
	c.ended = true
	c.Unlock()
	return true, nil
}

// acquireLocks takes the single-writer lock on every distinct non-empty
// path, recording the first failure for RunSlice to surface.
func (c *Campaign) acquireLocks(paths ...string) {
	seen := map[string]bool{}
	for _, p := range paths {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		lk, err := AcquireLock(p)
		if err != nil {
			c.lockErr = err
			return
		}
		c.locks = append(c.locks, lk)
	}
}

// LockErr reports a deferred lock-acquisition failure from New (Resume
// surfaces the same condition as its own error). Callers that must know
// before the first RunSlice — a daemon admitting a job — check this.
func (c *Campaign) LockErr() error { return c.lockErr }

// Unlock releases the campaign's checkpoint locks. RunSlice calls it on
// every completing or failing return; a coordinator abandoning a paused
// campaign (cancellation, shutdown) calls it directly. Idempotent.
func (c *Campaign) Unlock() {
	for _, lk := range c.locks {
		lk.Release()
	}
	c.locks = nil
}

// epochPlan returns each stream's step count for the epoch starting at
// global step `done`. A pure function of the campaign shape and `done`,
// so a resumed campaign re-derives the identical remaining schedule.
func epochPlan(streams, stepsPerEpoch, totalSteps, done int) []int {
	n := streams * stepsPerEpoch
	if rem := totalSteps - done; n > rem {
		n = rem
	}
	plan := make([]int, streams)
	base, extra := n/streams, n%streams
	for s := range plan {
		plan[s] = base
		if s < extra {
			plan[s]++
		}
	}
	return plan
}

// streamOutcome reports how one supervised stream task ended.
type streamOutcome struct {
	stream   int
	stepped  int // steps executed before completion or panic
	panicked bool
	panicVal any
}

// runEpoch executes one epoch: runnable (non-poisoned) streams are
// dealt to worker goroutines through a channel (any interleaving is
// fine — each stream only touches its own state and view), panicked
// tasks are retried or poisoned, then the barrier merges deltas in
// stream order and refreshes every view from the new global map.
func (c *Campaign) runEpoch() {
	//detlint:allow wallclock epoch latency telemetry (engine_epoch_seconds); never feeds campaign decisions
	epochStart := time.Now()
	plan := epochPlan(c.cfg.Streams, c.cfg.StepsPerEpoch, c.cfg.TotalSteps, c.done)

	var pending []int
	for s, n := range plan {
		if n > 0 && !c.isPoisoned(s) {
			pending = append(pending, s)
		}
	}
	attempts := make(map[int]int)
	retries := 0
	for len(pending) > 0 {
		var retry []int
		for _, out := range c.dispatch(pending, plan, attempts) {
			if !out.panicked {
				continue
			}
			if out.stepped == 0 && attempts[out.stream] < c.cfg.TaskRetries {
				// Died before its first step: no stream state was
				// touched, so re-dispatching replays it exactly.
				attempts[out.stream]++
				c.mTaskRetries.Inc()
				retries++
				c.slice.Retries++
				retry = append(retry, out.stream)
				continue
			}
			c.poison(out.stream, out.panicVal)
		}
		sort.Ints(retry)
		pending = retry
	}

	//detlint:allow wallclock barrier-merge latency telemetry (engine_sync_seconds); never feeds campaign decisions
	syncStart := time.Now()
	for _, v := range c.views {
		c.global.Merge(v.delta)
	}
	for _, v := range c.views {
		v.merged = c.global.Clone()
		v.delta.Reset()
	}
	c.mSyncSec.Observe(time.Since(syncStart).Seconds()) //detlint:allow wallclock observes the sync latency histogram only

	// Every planned step counts as spent budget — including a poisoned
	// stream's forfeited remainder — so the campaign always terminates.
	for _, n := range plan {
		c.done += n
	}
	c.epoch++
	c.mEpochs.Inc()
	c.mStepsDone.Set(int64(c.done))
	c.mEpochSec.Observe(time.Since(epochStart).Seconds()) //detlint:allow wallclock observes the epoch latency histogram only
	c.emitBarrier(retries)
}

// emitBarrier publishes the completed epoch to the flight recorder:
// per-stream progress (with scheduler posteriors and pool sizes where
// the worker exposes them), merged coverage, retries, and the
// cumulative poisoned set. Runs single-threaded between epochs, so
// everything it reads is quiescent.
func (c *Campaign) emitBarrier(retries int) {
	rec := c.cfg.Flight
	if rec == nil {
		return
	}
	info := flight.EpochInfo{
		Epoch: c.epoch, Done: c.done, Total: c.cfg.TotalSteps, Retries: retries,
	}
	// Merged edges must include self-guided streams' private maps
	// (μCFuzz never publishes into the global map).
	agg := cover.NewMap()
	agg.Merge(c.global)
	for s, w := range c.workers {
		st := w.Stats()
		si := flight.StreamInfo{
			Stream: s, Ticks: st.Ticks, Total: st.Total,
			Crashes: len(st.Crashes), Edges: st.Coverage.Count(),
			Poisoned: c.isPoisoned(s),
		}
		if pw, ok := w.(interface{ PoolSize() int }); ok {
			si.Pool = pw.PoolSize()
		}
		if sw, ok := w.(SchedWorker); ok {
			si.Sched = sw.SchedState()
		}
		agg.Merge(st.Coverage)
		info.Streams = append(info.Streams, si)
	}
	info.Edges = agg.Count()
	for s := range c.poisoned {
		info.Poisoned = append(info.Poisoned, s)
	}
	sort.Ints(info.Poisoned)
	rec.EndEpoch(info)
}

// dispatch runs one round of stream tasks across the worker fleet and
// collects every task's outcome.
func (c *Campaign) dispatch(streams []int, plan []int, attempts map[int]int) []streamOutcome {
	c.mQueue.Set(int64(len(streams)))
	tasks := make(chan int)
	results := make(chan streamOutcome, len(streams))
	workers := c.cfg.Workers
	if workers > len(streams) {
		workers = len(streams)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range tasks {
				results <- c.runStream(s, plan[s], attempts[s])
				c.mQueue.Add(-1)
			}
		}()
	}
	for _, s := range streams {
		tasks <- s
	}
	close(tasks)
	wg.Wait()
	close(results)
	outs := make([]streamOutcome, 0, len(streams))
	for out := range results {
		outs = append(outs, out)
	}
	return outs
}

// runStream executes one stream's planned steps under supervision: a
// panic (from the worker, a mutator, or the chaos hook) is captured
// instead of unwinding the fleet.
func (c *Campaign) runStream(s, n, attempt int) (out streamOutcome) {
	out.stream = s
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.panicVal = r
		}
	}()
	if c.cfg.OnStreamStart != nil {
		c.cfg.OnStreamStart(c.epoch, s, attempt)
	}
	wkr := c.workers[s]
	for i := 0; i < n; i++ {
		wkr.Step()
		out.stepped++
	}
	return out
}

func (c *Campaign) isPoisoned(s int) bool {
	_, ok := c.poisoned[s]
	return ok
}

// poison retires a stream whose worker died mid-step. Its accumulated
// stats and corpus stay merged into campaign results; it just stops
// being scheduled.
func (c *Campaign) poison(s int, val any) {
	c.poisoned[s] = PoisonInfo{Epoch: c.epoch, Reason: fmt.Sprintf("%v", val)}
	c.mPoisoned.Inc()
	c.slice.Poisoned++
}

// MergedStats folds every stream's accounting into one Stats: totals
// add, crashes union with the earliest discovery winning (ties go to
// the lower stream — streams merge in order), coverage is the global
// map plus any self-guided streams' private maps.
func (c *Campaign) MergedStats() *fuzz.Stats {
	agg := fuzz.NewStats("campaign")
	for _, w := range c.workers {
		agg.MergeFrom(w.Stats())
	}
	agg.Coverage.Merge(c.global)
	return agg
}
