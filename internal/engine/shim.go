package engine

import (
	"context"

	"github.com/icsnju/metamut-go/internal/fuzz"
)

// RunParallel drives pre-built macro workers for totalSteps steps total
// — the drop-in replacement for the old fuzz.RunParallel round-robin
// loop, now actually parallel. Each worker becomes one stream, so
// results are deterministic for a fixed worker set regardless of how
// the goroutines interleave.
func RunParallel(workers []*fuzz.MacroFuzzer, totalSteps int) {
	RunParallelProgress(workers, totalSteps, 0, nil)
}

// RunParallelProgress is RunParallel with a progress callback, invoked
// at epoch barriers with the cumulative step count. Unlike the old
// sequential loop's exact `every`-step cadence, calls land on epoch
// boundaries: they are monotone and the final call reports totalSteps.
// `every` sizes the epoch (steps between barriers across all workers).
func RunParallelProgress(workers []*fuzz.MacroFuzzer, totalSteps, every int,
	progress func(done int)) {
	if len(workers) == 0 || totalSteps <= 0 {
		return
	}
	if every <= 0 {
		every = len(workers) * 32
	}
	spe := every / len(workers)
	if spe <= 0 {
		spe = 1
	}
	ws := make([]Worker, len(workers))
	origSinks := make([]fuzz.CoverageSink, len(workers))
	for i, w := range workers {
		ws[i] = w
		origSinks[i] = w.Coverage()
	}
	cfg := Config{
		Workers:       len(workers),
		StepsPerEpoch: spe,
		TotalSteps:    totalSteps,
	}
	if progress != nil {
		cfg.OnEpoch = func(done, total int) { progress(done) }
	}
	c, err := Adopt(cfg, ws)
	if err != nil {
		panic(err) // unreachable: Adopt only rejects checkpoint configs
	}
	_ = c.Run(context.Background())
	// Hand the workers back as the caller left them: original sinks
	// restored and back-filled with everything the campaign found, so
	// the caller's SharedCoverage reflects the run.
	global := c.CoverageSnapshot()
	for i, w := range workers {
		if origSinks[i] != nil {
			origSinks[i].MergeIfNew(global)
		}
		w.SetCoverage(origSinks[i])
	}
}
