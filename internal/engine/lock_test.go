package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLockExcludesSecondWriter: while a live process holds the lock, a
// second acquisition fails with ErrLocked and a message naming the
// holder.
func TestLockExcludesSecondWriter(t *testing.T) {
	state := filepath.Join(t.TempDir(), "campaign.json")
	l, err := AcquireLock(state)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	if _, err := AcquireLock(state); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire returned %v, want ErrLocked", err)
	} else if !strings.Contains(err.Error(), fmt.Sprint(os.Getpid())) {
		t.Errorf("error %q does not name the holding pid", err)
	}
}

// TestLockReleaseAllowsReacquire: releasing hands the state to the next
// writer.
func TestLockReleaseAllowsReacquire(t *testing.T) {
	state := filepath.Join(t.TempDir(), "campaign.json")
	l, err := AcquireLock(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(state)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	l2.Release()
}

// TestLockStealsStaleLock: a lock file left by a dead process (the
// SIGKILLed-daemon case) must not wedge the campaign forever.
func TestLockStealsStaleLock(t *testing.T) {
	state := filepath.Join(t.TempDir(), "campaign.json")
	// A pid far above any real pid_max stands in for a dead owner.
	if err := os.WriteFile(state+LockSuffix, []byte("1073741824\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLock(state)
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	defer l.Release()

	data, err := os.ReadFile(state + LockSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != fmt.Sprint(os.Getpid()) {
		t.Errorf("stolen lock records pid %s, want ours (%d)", got, os.Getpid())
	}
}

// TestLockGarbageContentIsStale: an unreadable lock file (torn write)
// counts as stale, not held.
func TestLockGarbageContentIsStale(t *testing.T) {
	state := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(state+LockSuffix, []byte("not-a-pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLock(state)
	if err != nil {
		t.Fatalf("garbage lock not replaced: %v", err)
	}
	l.Release()
}

// TestLockNilSafe: nil locks release and report paths without panics
// (callers hold a nil lock when no checkpoint path is configured).
func TestLockNilSafe(t *testing.T) {
	var l *Lock
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if l.Path() != "" {
		t.Fatal("nil lock has a path")
	}
}
