package engine

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/sched"
)

// SnapshotVersion guards the checkpoint format. Bump on any change to
// the Snapshot layout; Load rejects other versions rather than guess.
// Version 2 added the sha256 integrity checksum, the rotated .prev
// generation, and per-stream poison records. Version 3 added per-stream
// scheduler posteriors.
const SnapshotVersion = 3

// PrevSuffix names the rotated previous checkpoint generation: every
// successful write first moves the existing file to path+PrevSuffix, so
// a corrupted latest generation always has a fallback.
const PrevSuffix = ".prev"

// ErrCorrupt reports that a checkpoint file failed its integrity check
// (missing or mismatched checksum) — typically a torn write.
var ErrCorrupt = errors.New("engine: checkpoint failed integrity check")

// Snapshot is the versioned on-disk form of a campaign at an epoch
// barrier: everything needed to resume bit-identically — campaign
// identity, progress, the global coverage map, and per-stream RNG
// state, corpus, and accounting.
type Snapshot struct {
	Version       int   `json:"version"`
	Seed          int64 `json:"seed"`
	Streams       int   `json:"streams"`
	StepsPerEpoch int   `json:"steps_per_epoch"`
	TotalSteps    int   `json:"total_steps"`
	Epoch         int   `json:"epoch"`
	Done          int   `json:"done"`
	// Coverage is the global map: base64 of the little-endian words.
	Coverage     string        `json:"coverage"`
	StreamStates []StreamState `json:"stream_states"`
	// Poisoned lists streams retired by the supervisor, sorted by
	// stream, so a resumed campaign keeps them off the schedule.
	Poisoned []PoisonState `json:"poisoned,omitempty"`
	// Checksum is the hex sha256 of this snapshot's canonical JSON with
	// Checksum itself empty; Load rejects mismatches with ErrCorrupt.
	Checksum string `json:"checksum"`
}

// PoisonState is one retired stream's record in the checkpoint.
type PoisonState struct {
	Stream int    `json:"stream"`
	Epoch  int    `json:"epoch"`
	Reason string `json:"reason"`
}

// checksum computes the snapshot's integrity hash: sha256 over the
// canonical JSON with the Checksum field blanked. json.Marshal of a
// struct is deterministic (fields in declaration order, no maps in the
// snapshot), so the hash round-trips through encode/decode.
func (s *Snapshot) checksum() (string, error) {
	cp := *s
	cp.Checksum = ""
	data, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Seal stamps the integrity checksum onto the snapshot.
func (s *Snapshot) Seal() error {
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	s.Checksum = sum
	return nil
}

// VerifyIntegrity recomputes the checksum and returns ErrCorrupt on a
// missing or mismatched value.
func (s *Snapshot) VerifyIntegrity() error {
	if s.Checksum == "" {
		return fmt.Errorf("%w: no checksum", ErrCorrupt)
	}
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	if sum != s.Checksum {
		return fmt.Errorf("%w: checksum %.12s… does not match contents", ErrCorrupt, s.Checksum)
	}
	return nil
}

// StreamState is one stream's checkpointed state.
type StreamState struct {
	// RNG is the stream's splitmix64 state (the full generator state).
	RNG    uint64     `json:"rng"`
	Corpus []string   `json:"corpus"`
	Stats  StatsState `json:"stats"`
	// Sched is the stream's mutator-scheduler posterior, present when
	// the worker implements SchedWorker. Resuming an adaptive campaign
	// without it would diverge from the uninterrupted run.
	Sched *sched.State `json:"sched,omitempty"`
}

// SchedWorker is the optional Worker extension for mutator schedulers
// whose posteriors must ride the checkpoint (both fuzz.MuCFuzz and
// fuzz.MacroFuzzer implement it).
type SchedWorker interface {
	SchedState() *sched.State
	SetSchedState(*sched.State) error
}

// StatsState serializes fuzz.Stats. The stream's private coverage map
// is included because self-guided workers (μCFuzz) use it as their
// pool-admission signal — resuming without it would diverge.
type StatsState struct {
	Total         int          `json:"total"`
	Compilable    int          `json:"compilable"`
	StaticRejects int          `json:"static_rejects"`
	Ticks         int          `json:"ticks"`
	Panics        int          `json:"panics,omitempty"`
	FuelExhausted int          `json:"fuel_exhausted,omitempty"`
	Coverage      string       `json:"coverage"`
	Crashes       []CrashState `json:"crashes"`
}

// CrashState is one unique crash, sorted by signature for a stable
// serialization.
type CrashState struct {
	Signature string                  `json:"signature"`
	Report    compilersim.CrashReport `json:"report"`
	FirstTick int                     `json:"first_tick"`
	Input     string                  `json:"input"`
	Via       string                  `json:"via"`
}

func encodeCoverage(m *cover.Map) string {
	words := m.Words()
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func decodeCoverage(s string) (*cover.Map, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("coverage: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("coverage: %d bytes is not a word array", len(buf))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	m := cover.NewMap()
	m.SetWords(words)
	return m, nil
}

func statsState(st *fuzz.Stats) StatsState {
	out := StatsState{
		Total:         st.Total,
		Compilable:    st.Compilable,
		StaticRejects: st.StaticRejects,
		Ticks:         st.Ticks,
		Panics:        st.Panics,
		FuelExhausted: st.FuelExhausted,
		Coverage:      encodeCoverage(st.Coverage),
	}
	sigs := make([]string, 0, len(st.Crashes))
	for sig := range st.Crashes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		ci := st.Crashes[sig]
		out.Crashes = append(out.Crashes, CrashState{
			Signature: sig,
			Report:    ci.Report,
			FirstTick: ci.FirstTick,
			Input:     ci.Input,
			Via:       ci.Via,
		})
	}
	return out
}

func restoreStats(st *fuzz.Stats, ss StatsState) error {
	cov, err := decodeCoverage(ss.Coverage)
	if err != nil {
		return err
	}
	st.Total = ss.Total
	st.Compilable = ss.Compilable
	st.StaticRejects = ss.StaticRejects
	st.Ticks = ss.Ticks
	st.Panics = ss.Panics
	st.FuelExhausted = ss.FuelExhausted
	st.Coverage = cov
	st.Crashes = make(map[string]*fuzz.CrashInfo, len(ss.Crashes))
	for _, cs := range ss.Crashes {
		st.Crashes[cs.Signature] = &fuzz.CrashInfo{
			Report:    cs.Report,
			FirstTick: cs.FirstTick,
			Input:     cs.Input,
			Via:       cs.Via,
		}
	}
	return nil
}

// Snapshot captures the campaign's current barrier state.
func (c *Campaign) Snapshot() (*Snapshot, error) {
	if c.sources == nil {
		return nil, errors.New("engine: adopted campaigns cannot checkpoint (foreign RNG state)")
	}
	snap := &Snapshot{
		Version:       SnapshotVersion,
		Seed:          c.cfg.Seed,
		Streams:       c.cfg.Streams,
		StepsPerEpoch: c.cfg.StepsPerEpoch,
		TotalSteps:    c.cfg.TotalSteps,
		Epoch:         c.epoch,
		Done:          c.done,
		Coverage:      encodeCoverage(c.global),
	}
	for i, w := range c.workers {
		ss := StreamState{
			RNG:    c.sources[i].state,
			Corpus: w.Corpus(),
			Stats:  statsState(w.Stats()),
		}
		if sw, ok := w.(SchedWorker); ok {
			ss.Sched = sw.SchedState()
		}
		snap.StreamStates = append(snap.StreamStates, ss)
	}
	var streams []int
	for s := range c.poisoned {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	for _, s := range streams {
		info := c.poisoned[s]
		snap.Poisoned = append(snap.Poisoned, PoisonState{
			Stream: s, Epoch: info.Epoch, Reason: info.Reason,
		})
	}
	if err := snap.Seal(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Checkpoint writes the current snapshot atomically (temp file + rename
// in the target directory) to cfg.CheckpointPath, rotating any existing
// checkpoint to the .prev generation first. A crash mid-write leaves
// both prior generations intact. Failed write attempts are retried up
// to cfg.CheckpointRetries times and counted in
// engine_checkpoint_failures_total.
func (c *Campaign) Checkpoint() error {
	if c.cfg.CheckpointPath == "" {
		return nil
	}
	if c.ckptDone == c.done {
		// The last successful write already captured this barrier;
		// rewriting it would only rotate a distinct generation out of
		// .prev for an identical copy.
		return nil
	}
	sp := c.reg.Span("engine_checkpoint")
	snap, err := c.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.CheckpointRetries; attempt++ {
		out := data
		if c.cfg.CheckpointTransform != nil {
			var terr error
			if out, terr = c.cfg.CheckpointTransform(data); terr != nil {
				lastErr = terr
				c.mCkptFails.Inc()
				continue
			}
		}
		if err := installCheckpoint(c.cfg.CheckpointPath, out); err != nil {
			lastErr = err
			c.mCkptFails.Inc()
			continue
		}
		c.ckptDone = c.done
		c.mCkpts.Inc()
		c.mCkptBytes.Set(int64(len(out)))
		if c.cfg.Flight != nil {
			c.cfg.Flight.Checkpoint(c.epoch, c.done, len(out))
		}
		sp.EndWith(map[string]any{"bytes": len(out), "epoch": c.epoch, "done": c.done})
		return nil
	}
	sp.End()
	return lastErr
}

// installCheckpoint atomically replaces path with data: temp file in
// the same directory, rotation of the existing file to .prev, then
// rename. Nothing on disk changes unless the temp write fully succeeds.
func installCheckpoint(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if _, err := os.Stat(path); err == nil {
		// Best-effort rotation: a failure here only costs the fallback.
		os.Rename(path, path+PrevSuffix)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load reads and validates a checkpoint file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d",
			path, snap.Version, SnapshotVersion)
	}
	if snap.Streams <= 0 || len(snap.StreamStates) != snap.Streams {
		return nil, fmt.Errorf("checkpoint %s: %d stream states for %d streams",
			path, len(snap.StreamStates), snap.Streams)
	}
	if err := snap.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return &snap, nil
}

// LoadWithFallback reads the checkpoint at path, falling back to the
// rotated .prev generation when the primary is missing or fails
// validation (torn write, checksum mismatch). It returns the snapshot
// and the path it actually came from; on total failure it reports the
// primary's error.
func LoadWithFallback(path string) (*Snapshot, string, error) {
	snap, err := Load(path)
	if err == nil {
		return snap, path, nil
	}
	if prev, perr := Load(path + PrevSuffix); perr == nil {
		return prev, path + PrevSuffix, nil
	}
	return nil, "", err
}

// Resume rebuilds a campaign from a checkpoint. A corrupted primary
// generation falls back to the rotated .prev (counted in
// engine_checkpoint_fallbacks_total) — re-fuzzing one checkpoint
// interval beats losing the campaign. The snapshot defines the campaign
// identity: explicitly-set cfg fields that contradict it (Seed,
// Streams, StepsPerEpoch) are an error, zero values inherit from the
// snapshot. TotalSteps may exceed the snapshot's to extend the
// campaign; zero keeps the original budget.
//
// Resume takes the checkpoint's single-writer lock before reading, so
// two daemons (or a daemon plus a CLI run) racing for the same campaign
// state fail fast with ErrLocked instead of corrupting it. The lock is
// released when the campaign completes or fails, or via Unlock.
func Resume(path string, cfg Config, factory Factory) (*Campaign, error) {
	guard := &Campaign{}
	guard.acquireLocks(path, cfg.CheckpointPath)
	if guard.lockErr != nil {
		return nil, fmt.Errorf("engine: cannot resume %s: %w", path, guard.lockErr)
	}
	ok := false
	defer func() {
		if !ok {
			guard.Unlock()
		}
	}()
	snap, usedPath, err := LoadWithFallback(path)
	if err != nil {
		return nil, err
	}
	if usedPath != path {
		cfg.Registry.Counter("engine_checkpoint_fallbacks_total").With().Inc()
	}
	if cfg.Seed != 0 && cfg.Seed != snap.Seed {
		return nil, fmt.Errorf("engine: -seed %d contradicts checkpoint seed %d", cfg.Seed, snap.Seed)
	}
	if cfg.Streams != 0 && cfg.Streams != snap.Streams {
		return nil, fmt.Errorf("engine: %d streams contradicts checkpoint's %d", cfg.Streams, snap.Streams)
	}
	if cfg.StepsPerEpoch != 0 && cfg.StepsPerEpoch != snap.StepsPerEpoch {
		return nil, fmt.Errorf("engine: steps-per-epoch %d contradicts checkpoint's %d",
			cfg.StepsPerEpoch, snap.StepsPerEpoch)
	}
	cfg.Seed, cfg.Streams, cfg.StepsPerEpoch = snap.Seed, snap.Streams, snap.StepsPerEpoch
	if cfg.TotalSteps == 0 {
		cfg.TotalSteps = snap.TotalSteps
	}
	cfg.normalize()

	global, err := decodeCoverage(snap.Coverage)
	if err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg, global: global, epoch: snap.Epoch, done: snap.Done,
		poisoned: map[int]PoisonInfo{}, ckptDone: -1}
	for _, ps := range snap.Poisoned {
		c.poisoned[ps.Stream] = PoisonInfo{Epoch: ps.Epoch, Reason: ps.Reason}
	}
	c.instrument()
	for i := 0; i < cfg.Streams; i++ {
		ss := snap.StreamStates[i]
		src := &mix64{state: ss.RNG}
		v := &view{merged: global.Clone(), delta: cover.NewMap()}
		w := factory(i, rand.New(src), v)
		w.SetCorpus(ss.Corpus)
		if err := restoreStats(w.Stats(), ss.Stats); err != nil {
			return nil, fmt.Errorf("stream %d: %w", i, err)
		}
		if ss.Sched != nil {
			sw, ok := w.(SchedWorker)
			if !ok {
				return nil, fmt.Errorf("stream %d: checkpoint carries scheduler state but the worker has no scheduler", i)
			}
			if err := sw.SetSchedState(ss.Sched); err != nil {
				return nil, fmt.Errorf("stream %d: %w", i, err)
			}
		}
		c.sources = append(c.sources, src)
		c.views = append(c.views, v)
		c.workers = append(c.workers, w)
	}
	c.locks = guard.locks
	ok = true
	return c, nil
}
