package engine

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/fuzz"
)

// SnapshotVersion guards the checkpoint format. Bump on any change to
// the Snapshot layout; Load rejects other versions rather than guess.
const SnapshotVersion = 1

// Snapshot is the versioned on-disk form of a campaign at an epoch
// barrier: everything needed to resume bit-identically — campaign
// identity, progress, the global coverage map, and per-stream RNG
// state, corpus, and accounting.
type Snapshot struct {
	Version       int    `json:"version"`
	Seed          int64  `json:"seed"`
	Streams       int    `json:"streams"`
	StepsPerEpoch int    `json:"steps_per_epoch"`
	TotalSteps    int    `json:"total_steps"`
	Epoch         int    `json:"epoch"`
	Done          int    `json:"done"`
	// Coverage is the global map: base64 of the little-endian words.
	Coverage     string        `json:"coverage"`
	StreamStates []StreamState `json:"stream_states"`
}

// StreamState is one stream's checkpointed state.
type StreamState struct {
	// RNG is the stream's splitmix64 state (the full generator state).
	RNG    uint64     `json:"rng"`
	Corpus []string   `json:"corpus"`
	Stats  StatsState `json:"stats"`
}

// StatsState serializes fuzz.Stats. The stream's private coverage map
// is included because self-guided workers (μCFuzz) use it as their
// pool-admission signal — resuming without it would diverge.
type StatsState struct {
	Total         int          `json:"total"`
	Compilable    int          `json:"compilable"`
	StaticRejects int          `json:"static_rejects"`
	Ticks         int          `json:"ticks"`
	Coverage      string       `json:"coverage"`
	Crashes       []CrashState `json:"crashes"`
}

// CrashState is one unique crash, sorted by signature for a stable
// serialization.
type CrashState struct {
	Signature string                  `json:"signature"`
	Report    compilersim.CrashReport `json:"report"`
	FirstTick int                     `json:"first_tick"`
	Input     string                  `json:"input"`
	Via       string                  `json:"via"`
}

func encodeCoverage(m *cover.Map) string {
	words := m.Words()
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func decodeCoverage(s string) (*cover.Map, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("coverage: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("coverage: %d bytes is not a word array", len(buf))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	m := cover.NewMap()
	m.SetWords(words)
	return m, nil
}

func statsState(st *fuzz.Stats) StatsState {
	out := StatsState{
		Total:         st.Total,
		Compilable:    st.Compilable,
		StaticRejects: st.StaticRejects,
		Ticks:         st.Ticks,
		Coverage:      encodeCoverage(st.Coverage),
	}
	sigs := make([]string, 0, len(st.Crashes))
	for sig := range st.Crashes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		ci := st.Crashes[sig]
		out.Crashes = append(out.Crashes, CrashState{
			Signature: sig,
			Report:    ci.Report,
			FirstTick: ci.FirstTick,
			Input:     ci.Input,
			Via:       ci.Via,
		})
	}
	return out
}

func restoreStats(st *fuzz.Stats, ss StatsState) error {
	cov, err := decodeCoverage(ss.Coverage)
	if err != nil {
		return err
	}
	st.Total = ss.Total
	st.Compilable = ss.Compilable
	st.StaticRejects = ss.StaticRejects
	st.Ticks = ss.Ticks
	st.Coverage = cov
	st.Crashes = make(map[string]*fuzz.CrashInfo, len(ss.Crashes))
	for _, cs := range ss.Crashes {
		st.Crashes[cs.Signature] = &fuzz.CrashInfo{
			Report:    cs.Report,
			FirstTick: cs.FirstTick,
			Input:     cs.Input,
			Via:       cs.Via,
		}
	}
	return nil
}

// Snapshot captures the campaign's current barrier state.
func (c *Campaign) Snapshot() (*Snapshot, error) {
	if c.sources == nil {
		return nil, errors.New("engine: adopted campaigns cannot checkpoint (foreign RNG state)")
	}
	snap := &Snapshot{
		Version:       SnapshotVersion,
		Seed:          c.cfg.Seed,
		Streams:       c.cfg.Streams,
		StepsPerEpoch: c.cfg.StepsPerEpoch,
		TotalSteps:    c.cfg.TotalSteps,
		Epoch:         c.epoch,
		Done:          c.done,
		Coverage:      encodeCoverage(c.global),
	}
	for i, w := range c.workers {
		snap.StreamStates = append(snap.StreamStates, StreamState{
			RNG:    c.sources[i].state,
			Corpus: w.Corpus(),
			Stats:  statsState(w.Stats()),
		})
	}
	return snap, nil
}

// Checkpoint writes the current snapshot atomically (temp file + rename
// in the target directory) to cfg.CheckpointPath. A crash mid-write
// leaves the previous checkpoint intact.
func (c *Campaign) Checkpoint() error {
	if c.cfg.CheckpointPath == "" {
		return nil
	}
	sp := c.reg.Span("engine_checkpoint")
	snap, err := c.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.cfg.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.mCkpts.Inc()
	c.mCkptBytes.Set(int64(len(data)))
	sp.EndWith(map[string]any{"bytes": len(data), "epoch": c.epoch, "done": c.done})
	return nil
}

// Load reads and validates a checkpoint file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d",
			path, snap.Version, SnapshotVersion)
	}
	if snap.Streams <= 0 || len(snap.StreamStates) != snap.Streams {
		return nil, fmt.Errorf("checkpoint %s: %d stream states for %d streams",
			path, len(snap.StreamStates), snap.Streams)
	}
	return &snap, nil
}

// Resume rebuilds a campaign from a checkpoint. The snapshot defines
// the campaign identity: explicitly-set cfg fields that contradict it
// (Seed, Streams, StepsPerEpoch) are an error, zero values inherit from
// the snapshot. TotalSteps may exceed the snapshot's to extend the
// campaign; zero keeps the original budget.
func Resume(path string, cfg Config, factory Factory) (*Campaign, error) {
	snap, err := Load(path)
	if err != nil {
		return nil, err
	}
	if cfg.Seed != 0 && cfg.Seed != snap.Seed {
		return nil, fmt.Errorf("engine: -seed %d contradicts checkpoint seed %d", cfg.Seed, snap.Seed)
	}
	if cfg.Streams != 0 && cfg.Streams != snap.Streams {
		return nil, fmt.Errorf("engine: %d streams contradicts checkpoint's %d", cfg.Streams, snap.Streams)
	}
	if cfg.StepsPerEpoch != 0 && cfg.StepsPerEpoch != snap.StepsPerEpoch {
		return nil, fmt.Errorf("engine: steps-per-epoch %d contradicts checkpoint's %d",
			cfg.StepsPerEpoch, snap.StepsPerEpoch)
	}
	cfg.Seed, cfg.Streams, cfg.StepsPerEpoch = snap.Seed, snap.Streams, snap.StepsPerEpoch
	if cfg.TotalSteps == 0 {
		cfg.TotalSteps = snap.TotalSteps
	}
	cfg.normalize()

	global, err := decodeCoverage(snap.Coverage)
	if err != nil {
		return nil, err
	}
	c := &Campaign{cfg: cfg, global: global, epoch: snap.Epoch, done: snap.Done}
	c.instrument()
	for i := 0; i < cfg.Streams; i++ {
		ss := snap.StreamStates[i]
		src := &mix64{state: ss.RNG}
		v := &view{merged: global.Clone(), delta: cover.NewMap()}
		w := factory(i, rand.New(src), v)
		w.SetCorpus(ss.Corpus)
		if err := restoreStats(w.Stats(), ss.Stats); err != nil {
			return nil, fmt.Errorf("stream %d: %w", i, err)
		}
		c.sources = append(c.sources, src)
		c.views = append(c.views, v)
		c.workers = append(c.workers, w)
	}
	return c, nil
}
