package engine

import (
	"context"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// TestDeterministicAcrossWorkerCounts is the engine's core contract:
// a fixed seed produces the byte-identical merged crash set, coverage,
// and totals whether the streams run on 1, 4, or 16 goroutines. Run
// with -race in the gate, this doubles as the engine's concurrency
// test: 16 workers over 8 streams exercise the task hand-off and
// barrier paths under the race detector.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	pool := seeds.Generate(15, 9)
	runAt := func(workers int) string {
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 8, Workers: workers, StepsPerEpoch: 16,
			TotalSteps: 2000, Seed: 1234}
		c := New(cfg, macroFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	base := runAt(1)
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	for _, w := range []int{4, 16} {
		if got := runAt(w); got != base {
			t.Errorf("workers=%d diverged from workers=1:\n got %s\nwant %s",
				w, got, base)
		}
	}
	t.Logf("fingerprint (stable across 1/4/16 workers): %.120s...", base)
}

// TestDeterministicMuCFuzzStreams repeats the contract for self-guided
// workers, whose pool admission runs off private stats coverage rather
// than the shared view.
func TestDeterministicMuCFuzzStreams(t *testing.T) {
	pool := seeds.Generate(15, 9)
	runAt := func(workers int) string {
		comp := compilersim.New("clang", 18)
		cfg := Config{Streams: 6, Workers: workers, StepsPerEpoch: 20,
			TotalSteps: 900, Seed: 77}
		c := New(cfg, mucFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	base := runAt(1)
	for _, w := range []int{3, 6} {
		if got := runAt(w); got != base {
			t.Errorf("workers=%d diverged from workers=1:\n got %s\nwant %s",
				w, got, base)
		}
	}
}

// TestEpochSizeChangesAreVisible guards against the determinism test
// passing vacuously: StepsPerEpoch is part of the campaign identity, so
// changing it must change the outcome (coverage propagates at a
// different cadence). If this ever fails the fingerprints above would
// be insensitive to the sync schedule and prove nothing.
func TestEpochSizeChangesAreVisible(t *testing.T) {
	pool := seeds.Generate(15, 9)
	runWith := func(spe int) string {
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 8, Workers: 4, StepsPerEpoch: spe,
			TotalSteps: 2000, Seed: 1234}
		c := New(cfg, macroFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	if runWith(16) == runWith(125) {
		t.Error("outcome insensitive to epoch size — sync schedule may be dead code")
	}
}
