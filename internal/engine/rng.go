package engine

// mix64 is a splitmix64 PRNG implementing math/rand.Source64. The
// engine uses it instead of the stdlib source because its entire state
// is one uint64, which checkpoints can capture and restore exactly —
// the stdlib's lagged-Fibonacci source carries a 607-word table with no
// way to read it back. rand.Rand adds no hidden state on top of its
// source for the methods the fuzzers use (Intn, Perm, Float64, ...);
// only Read buffers, and nothing here calls Read.
type mix64 struct {
	state uint64
}

const golden = 0x9e3779b97f4a7c15

// Uint64 advances the stream (splitmix64 finalizer over a Weyl
// sequence).
func (s *mix64) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source.
func (s *mix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed satisfies rand.Source.
func (s *mix64) Seed(seed int64) { s.state = uint64(seed) }

// streamSeed derives stream i's initial RNG state from the campaign
// seed. Each stream gets an independent, well-separated stream: the
// (i+1) multiplier keeps stream 0 distinct from the raw seed, and the
// finalizer decorrelates adjacent streams.
func streamSeed(seed int64, stream int) uint64 {
	z := uint64(seed) ^ (uint64(stream)+1)*golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
