package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// adaptiveMacroFactory builds macro streams running the bandit
// scheduler instead of the uniform default.
func adaptiveMacroFactory(comp *compilersim.Compiler, pool []string) Factory {
	return func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) Worker {
		w := fuzz.NewMacroFuzzer(fmt.Sprintf("s%d", stream), comp, muast.All(),
			pool, rng, cov, fuzz.DefaultMacroConfig())
		w.Sched = sched.NewAdaptive(len(muast.All()), sched.DefaultConfig())
		return w
	}
}

// adaptiveMucFactory builds self-guided adaptive μCFuzz streams.
func adaptiveMucFactory(comp *compilersim.Compiler, pool []string) Factory {
	return func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) Worker {
		w := fuzz.NewMuCFuzz(fmt.Sprintf("u%d", stream), comp, muast.All(), pool, rng)
		w.Sched = sched.NewAdaptive(len(muast.All()), sched.DefaultConfig())
		return w
	}
}

// TestAdaptiveSchedDeterministicAcrossWorkerCounts extends the engine's
// core contract to the bandit scheduler: per-stream posteriors fed only
// by the stream RNG must yield byte-identical merged results at any
// worker count.
func TestAdaptiveSchedDeterministicAcrossWorkerCounts(t *testing.T) {
	pool := seeds.Generate(15, 9)
	runAt := func(workers int) string {
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 8, Workers: workers, StepsPerEpoch: 16,
			TotalSteps: 2000, Seed: 1234}
		c := New(cfg, adaptiveMacroFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	base := runAt(1)
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	for _, w := range []int{4, 16} {
		if got := runAt(w); got != base {
			t.Errorf("workers=%d diverged from workers=1:\n got %s\nwant %s",
				w, got, base)
		}
	}
}

// TestAdaptiveSchedChangesTheCampaign guards the test above against
// passing vacuously: the bandit must actually alter the schedule
// relative to the uniform policy at the same seed.
func TestAdaptiveSchedChangesTheCampaign(t *testing.T) {
	pool := seeds.Generate(15, 9)
	run := func(factory func(*compilersim.Compiler, []string) Factory) string {
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 16,
			TotalSteps: 1200, Seed: 1234}
		c := New(cfg, factory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	if run(macroFactory) == run(adaptiveMacroFactory) {
		t.Error("adaptive scheduling indistinguishable from uniform — bandit may be dead code")
	}
}

// TestAdaptiveSchedCheckpointResumeEqualsUninterrupted proves the
// posterior rides the checkpoint: kill an adaptive campaign mid-flight,
// resume it, and the final state matches an uninterrupted run. Uses
// self-guided μCFuzz streams so both fuzzer kinds' SchedState paths are
// covered across the two determinism tests.
func TestAdaptiveSchedCheckpointResumeEqualsUninterrupted(t *testing.T) {
	pool := seeds.Generate(12, 5)
	cfg := Config{Streams: 6, Workers: 3, StepsPerEpoch: 12,
		TotalSteps: 900, Seed: 99}

	ref := New(cfg, adaptiveMucFactory(compilersim.New("gcc", 14), pool))
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	icfg := cfg
	icfg.CheckpointPath = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	epochs := 0
	icfg.OnEpoch = func(done, total int) {
		if epochs++; epochs == 3 {
			cancel()
		}
	}
	ic := New(icfg, adaptiveMucFactory(compilersim.New("gcc", 14), pool))
	if err := ic.Run(ctx); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}

	// The snapshot must carry a non-trivial adaptive posterior.
	snap, err := Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range snap.StreamStates {
		if ss.Sched == nil || ss.Sched.Kind != "adaptive" {
			t.Fatalf("stream %d snapshot has no adaptive scheduler state: %+v", i, ss.Sched)
		}
		if ss.Sched.Ticks == 0 {
			t.Fatalf("stream %d posterior is empty mid-campaign", i)
		}
	}

	rc, err := Resume(ckpt, Config{Workers: 5},
		adaptiveMucFactory(compilersim.New("gcc", 14), pool))
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rc); got != want {
		t.Errorf("interrupt+resume diverged from uninterrupted adaptive run:\n got %s\nwant %s",
			got, want)
	}
}

// batchedMucFactory builds self-guided μCFuzz streams with the given
// reward-batching width (and the scheduler policy picked by kind).
func batchedMucFactory(comp *compilersim.Compiler, pool []string, kind string, batch int) Factory {
	return func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) Worker {
		w := fuzz.NewMuCFuzz(fmt.Sprintf("u%d", stream), comp, muast.All(), pool, rng)
		s, err := sched.New(kind, len(muast.All()))
		if err != nil {
			panic(err)
		}
		w.Sched = s
		w.Batch = batch
		return w
	}
}

// TestBatchedObserveByteIdenticalToUnbatched pins the hot-loop batching
// contract: deferring rewards to the end of the step (Batch=8) must
// produce byte-identical merged crashes, coverage, and totals to the
// per-mutant path (Batch=1), for both scheduler policies, at every
// worker count. It can hold only because Order() is computed before any
// reward of the step lands and ObserveBatch replays rewards in order —
// a drift here means one of those two invariants broke.
func TestBatchedObserveByteIdenticalToUnbatched(t *testing.T) {
	pool := seeds.Generate(12, 5)
	run := func(kind string, batch, workers int) string {
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 8, Workers: workers, StepsPerEpoch: 16,
			TotalSteps: 1600, Seed: 4321}
		c := New(cfg, batchedMucFactory(comp, pool, kind, batch))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	for _, kind := range []string{"uniform", "adaptive"} {
		want := run(kind, 1, 1)
		if want == "" {
			t.Fatalf("%s: empty fingerprint", kind)
		}
		for _, workers := range []int{1, 4, 16} {
			if got := run(kind, 8, workers); got != want {
				t.Errorf("%s batch=8 workers=%d diverged from batch=1 workers=1:\n got %s\nwant %s",
					kind, workers, got, want)
			}
		}
	}
}

// TestBatchedObserveCheckpointResumeEqualsUninterrupted extends the
// resume contract to batched streams: interrupting a Batch=8 adaptive
// campaign and resuming it lands on the same bytes as running it
// straight through. Pending in-step rewards never cross the epoch
// barrier (Step flushes before returning), so nothing batched needs to
// ride the snapshot.
func TestBatchedObserveCheckpointResumeEqualsUninterrupted(t *testing.T) {
	pool := seeds.Generate(12, 5)
	factory := func() Factory {
		return batchedMucFactory(compilersim.New("gcc", 14), pool, "adaptive", 8)
	}
	cfg := Config{Streams: 6, Workers: 3, StepsPerEpoch: 12,
		TotalSteps: 900, Seed: 7788}

	ref := New(cfg, factory())
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	icfg := cfg
	icfg.CheckpointPath = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	epochs := 0
	icfg.OnEpoch = func(done, total int) {
		if epochs++; epochs == 3 {
			cancel()
		}
	}
	ic := New(icfg, factory())
	if err := ic.Run(ctx); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	rc, err := Resume(ckpt, Config{Workers: 5}, factory())
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(rc); got != want {
		t.Errorf("batched interrupt+resume diverged from uninterrupted run:\n got %s\nwant %s",
			got, want)
	}
}

// TestResumeRejectsSchedPolicyMismatch pins the contradiction check: a
// checkpoint written by an adaptive campaign cannot be resumed with
// uniform workers (the posterior would be silently dropped).
func TestResumeRejectsSchedPolicyMismatch(t *testing.T) {
	pool := seeds.Generate(10, 3)
	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	cfg := Config{Streams: 2, Workers: 1, StepsPerEpoch: 8,
		TotalSteps: 64, Seed: 5, CheckpointPath: ckpt, CheckpointEvery: 1}
	c := New(cfg, adaptiveMucFactory(compilersim.New("gcc", 14), pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, err := Resume(ckpt, Config{TotalSteps: 128},
		mucFactory(compilersim.New("gcc", 14), pool))
	if err == nil {
		t.Fatal("uniform workers resumed an adaptive checkpoint")
	}
}

// TestStreamRNGIsSoleRandomnessSource pins the reproducibility property
// behind -sched uniform under the engine: fuzzer scheduling must never
// read the global math/rand state, so perturbing it between runs cannot
// change the outcome.
func TestStreamRNGIsSoleRandomnessSource(t *testing.T) {
	pool := seeds.Generate(10, 3)
	run := func(perturb int) string {
		for i := 0; i < perturb; i++ {
			rand.Int() // advance the global source between campaigns
		}
		comp := compilersim.New("gcc", 14)
		cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 10,
			TotalSteps: 400, Seed: 21}
		c := New(cfg, mucFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c)
	}
	if run(0) != run(997) {
		t.Error("campaign outcome depends on global math/rand state")
	}
}
