package engine

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// ErrLocked reports that another live process holds a campaign state
// lock. Checkpoint files are single-writer by design: two processes
// (two daemons, or a daemon plus a CLI run) checkpointing the same
// campaign would interleave generations and corrupt both the primary
// and the .prev fallback.
var ErrLocked = errors.New("engine: campaign state locked")

// LockSuffix names the lock file guarding a campaign state path.
const LockSuffix = ".lock"

// Lock is a held single-writer guard over a campaign state path
// (checkpoint file or daemon state directory). Release it when the
// owning campaign is done with the state.
type Lock struct {
	path string // the lock file itself
}

// AcquireLock takes the single-writer lock for statePath by creating
// statePath+LockSuffix exclusively, recording the owning pid. A lock
// held by a live process is an error (ErrLocked, naming the pid and
// the lock file); a lock left behind by a dead process — a SIGKILLed
// daemon, say — is stale and is silently replaced. Callers that
// checkpoint or resume campaign state (engine.Resume callers included)
// should hold the lock for the life of the campaign.
func AcquireLock(statePath string) (*Lock, error) {
	lockPath := statePath + LockSuffix
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(lockPath)
				return nil, werr
			}
			return &Lock{path: lockPath}, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, err
		}
		data, rerr := os.ReadFile(lockPath)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				continue // raced with a release; try again
			}
			return nil, rerr
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("%w: %s is held by running process %d "+
				"(a second writer would corrupt the campaign state; stop it "+
				"or point this one at a different -checkpoint/-state path)",
				ErrLocked, lockPath, pid)
		}
		// Unreadable pid or dead owner: the lock is stale debris from a
		// killed process. Remove it and race for the replacement.
		os.Remove(lockPath)
	}
	return nil, fmt.Errorf("%w: %s kept reappearing (livelocked with another starter?)",
		ErrLocked, lockPath)
}

// Release drops the lock. Safe to call once per acquired lock; a nil
// lock is a no-op.
func (l *Lock) Release() error {
	if l == nil {
		return nil
	}
	return os.Remove(l.path)
}

// Path returns the lock file's path (diagnostics, tests).
func (l *Lock) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// pidAlive reports whether a process with the given pid exists (signal
// 0 probes existence without delivering anything).
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	// EPERM means the process exists but belongs to someone else.
	return errors.Is(err, syscall.EPERM)
}
