package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// macroFactory builds the standard test campaign: macro fuzzers over
// one shared (stateless, race-safe) compiler.
func macroFactory(comp *compilersim.Compiler, pool []string) Factory {
	return func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) Worker {
		return fuzz.NewMacroFuzzer(fmt.Sprintf("s%d", stream), comp, muast.All(),
			pool, rng, cov, fuzz.DefaultMacroConfig())
	}
}

// mucFactory builds self-guided μCFuzz streams (no shared sink).
func mucFactory(comp *compilersim.Compiler, pool []string) Factory {
	return func(stream int, rng *rand.Rand, _ fuzz.CoverageSink) Worker {
		return fuzz.NewMuCFuzz(fmt.Sprintf("u%d", stream), comp, muast.All(), pool, rng)
	}
}

// fingerprint condenses everything the campaign is supposed to
// reproduce deterministically: the merged crash set (signature, tick,
// attribution, exact witness), coverage, and totals.
func fingerprint(c *Campaign) string {
	st := c.MergedStats()
	lines := make([]string, 0, len(st.Crashes))
	for sig, ci := range st.Crashes {
		lines = append(lines, fmt.Sprintf("%s|%d|%s|%08x",
			sig, ci.FirstTick, ci.Via, cover.HashString(ci.Input)))
	}
	sort.Strings(lines)
	return fmt.Sprintf("crashes=%v cov=%d total=%d compilable=%d ticks=%d rejects=%d",
		lines, st.Coverage.Count(), st.Total, st.Compilable, st.Ticks, st.StaticRejects)
}

func TestCampaignRunsBudget(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(10, 1)
	reg := obs.NewRegistry()
	cfg := Config{Streams: 6, Workers: 3, StepsPerEpoch: 10, TotalSteps: 333,
		Seed: 7, Registry: reg}
	c := New(cfg, macroFactory(comp, pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Done() != 333 {
		t.Errorf("done = %d, want 333", c.Done())
	}
	st := c.MergedStats()
	if st.Total == 0 || st.Coverage.Count() == 0 {
		t.Fatalf("campaign produced nothing: %+v", st)
	}
	// 333 steps at 60/epoch → 5 full epochs + 1 partial.
	wantEpochs := int64(6)
	snap := reg.Snapshot()
	if got := snap.Counter("engine_epochs_total"); got != wantEpochs {
		t.Errorf("engine_epochs_total = %d, want %d", got, wantEpochs)
	}
	if got := reg.Gauge("engine_steps_done").With().Value(); got != 333 {
		t.Errorf("engine_steps_done = %d, want 333", got)
	}
	if got := reg.Gauge("engine_queue_depth").With().Value(); got != 0 {
		t.Errorf("engine_queue_depth = %d after run, want 0", got)
	}
	if got := reg.Histogram("engine_epoch_seconds", nil).With().Count(); got != wantEpochs {
		t.Errorf("engine_epoch_seconds count = %d, want %d", got, wantEpochs)
	}
	if got := reg.Histogram("engine_sync_seconds", nil).With().Count(); got != wantEpochs {
		t.Errorf("engine_sync_seconds count = %d, want %d", got, wantEpochs)
	}
}

func TestEpochPlan(t *testing.T) {
	sum := func(xs []int) int {
		n := 0
		for _, x := range xs {
			n += x
		}
		return n
	}
	// Full epoch: everyone gets StepsPerEpoch.
	plan := epochPlan(4, 8, 1000, 0)
	if sum(plan) != 32 {
		t.Errorf("full epoch sum = %d, want 32", sum(plan))
	}
	for s, n := range plan {
		if n != 8 {
			t.Errorf("stream %d: %d steps, want 8", s, n)
		}
	}
	// Final partial epoch: remainder distributed, sum exact.
	plan = epochPlan(4, 8, 1000, 990)
	if sum(plan) != 10 {
		t.Errorf("partial epoch sum = %d, want 10", sum(plan))
	}
	// Pure function of done: identical inputs, identical plan.
	a := epochPlan(7, 5, 999, 35)
	b := epochPlan(7, 5, 999, 35)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("epochPlan not deterministic")
		}
	}
}

func TestOnEpochProgressMonotone(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(5, 1)
	var calls []int
	cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 25, TotalSteps: 450,
		Seed: 3, OnEpoch: func(done, total int) {
			if total != 450 {
				t.Errorf("total = %d, want 450", total)
			}
			calls = append(calls, done)
		}}
	c := New(cfg, macroFactory(comp, pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress callbacks")
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not monotone: %v", calls)
		}
	}
	if last := calls[len(calls)-1]; last != 450 {
		t.Errorf("final progress = %d, want 450", last)
	}
}

func TestMuCFuzzStreams(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(20, 1)
	cfg := Config{Streams: 4, Workers: 4, StepsPerEpoch: 25, TotalSteps: 600, Seed: 11}
	c := New(cfg, mucFactory(comp, pool))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.MergedStats()
	if st.Coverage.Count() == 0 {
		t.Fatal("self-guided streams accumulated no coverage")
	}
	// Self-guided pools must have grown somewhere.
	grew := false
	for _, w := range c.Workers() {
		if len(w.Corpus()) > 20 {
			grew = true
		}
	}
	if !grew {
		t.Error("no μCFuzz stream grew its pool")
	}
}

func TestMix64RoundTrip(t *testing.T) {
	src := &mix64{state: streamSeed(42, 3)}
	rng := rand.New(src)
	for i := 0; i < 100; i++ {
		rng.Intn(1000)
		rng.Float64()
	}
	saved := src.state
	var a [20]int
	for i := range a {
		a[i] = rng.Intn(1 << 20)
	}
	src.state = saved
	rng2 := rand.New(src)
	for i := range a {
		if got := rng2.Intn(1 << 20); got != a[i] {
			t.Fatalf("draw %d: restored stream diverged (%d != %d)", i, got, a[i])
		}
	}
}

func TestStreamSeedsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 256; i++ {
		s := streamSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d share seed %x", prev, i, s)
		}
		seen[s] = i
	}
	if streamSeed(42, 0) == streamSeed(43, 0) {
		t.Error("different campaign seeds collide on stream 0")
	}
}

func TestShimRunParallelProgress(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(10, 42)
	shared := fuzz.NewSharedCoverage()
	var workers []*fuzz.MacroFuzzer
	for i := 0; i < 4; i++ {
		workers = append(workers, fuzz.NewMacroFuzzer("macro", comp, muast.All(),
			pool, rand.New(rand.NewSource(int64(100+i))), shared,
			fuzz.DefaultMacroConfig()))
	}
	var calls []int
	RunParallelProgress(workers, 400, 100, func(done int) { calls = append(calls, done) })
	if len(calls) == 0 || calls[len(calls)-1] != 400 {
		t.Fatalf("progress calls = %v, want final 400", calls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not monotone: %v", calls)
		}
	}
	total := 0
	for _, w := range workers {
		total += w.Stats().Total
		// The engine must hand workers back with their original sink.
		if w.Coverage() != fuzz.CoverageSink(shared) {
			t.Error("worker sink not restored after shim run")
		}
	}
	if total == 0 {
		t.Fatal("shim campaign produced nothing")
	}
	// ... and the caller's shared map back-filled with the findings.
	if shared.Count() == 0 {
		t.Fatal("original shared coverage not back-filled")
	}
}

func TestShimDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		comp := compilersim.New("gcc", 14)
		pool := seeds.Generate(10, 42)
		shared := fuzz.NewSharedCoverage()
		var ws []*fuzz.MacroFuzzer
		for i := 0; i < 3; i++ {
			ws = append(ws, fuzz.NewMacroFuzzer("macro", comp, muast.All(),
				pool, rand.New(rand.NewSource(int64(i))), shared,
				fuzz.DefaultMacroConfig()))
		}
		RunParallel(ws, 300)
		agg := fuzz.NewStats("agg")
		for _, w := range ws {
			agg.MergeFrom(w.Stats())
		}
		sigs := make([]string, 0, len(agg.Crashes))
		for sig, ci := range agg.Crashes {
			sigs = append(sigs, fmt.Sprintf("%s@%d", sig, ci.FirstTick))
		}
		sort.Strings(sigs)
		return fmt.Sprintf("%v total=%d cov=%d", sigs, agg.Total, shared.Count())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("shim runs diverged:\n%s\n%s", a, b)
	}
}

func TestAdoptRejectsCheckpoint(t *testing.T) {
	if _, err := Adopt(Config{CheckpointPath: "x.json"}, nil); err == nil {
		t.Fatal("Adopt accepted a checkpoint path")
	}
}
