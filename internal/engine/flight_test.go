package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/flight"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/sched"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// flightFactory builds flight-attached adaptive macro streams — the
// full emission surface: rewards, crashes, pool admissions, quarantine
// churn, and scheduler posteriors.
func flightFactory(comp *compilersim.Compiler, pool []string, rec *flight.Recorder) Factory {
	return func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) Worker {
		w := fuzz.NewMacroFuzzer(fmt.Sprintf("s%d", stream), comp, muast.All(),
			pool, rng, cov, fuzz.DefaultMacroConfig())
		if s, err := sched.New("adaptive", len(muast.All())); err == nil {
			w.Sched = s
		}
		w.AttachFlight(rec.Stream(stream))
		return w
	}
}

func armNames() []string {
	all := muast.All()
	names := make([]string, len(all))
	for i, mu := range all {
		names[i] = mu.Name
	}
	return names
}

// TestFlightJournalDeterministicAcrossWorkers is the recorder's core
// contract: for a fixed seed the journal is byte-identical whether the
// streams run on 1, 4, or 16 goroutines — logical time only, stream
// buffers drained in stream order at each barrier.
func TestFlightJournalDeterministicAcrossWorkers(t *testing.T) {
	pool := seeds.Generate(15, 9)
	runAt := func(workers int) []byte {
		comp := compilersim.New("gcc", 14)
		var buf bytes.Buffer
		rec := flight.NewRecorder(flight.Config{
			Streams: 8, TotalSteps: 2000, Seed: 1234,
			Journal: &buf, ArmNames: armNames(),
		})
		cfg := Config{Streams: 8, Workers: workers, StepsPerEpoch: 16,
			TotalSteps: 2000, Seed: 1234, Flight: rec}
		c := New(cfg, flightFactory(comp, pool, rec))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := runAt(1)
	if len(base) == 0 {
		t.Fatal("empty journal")
	}
	for _, want := range []string{`"kind":"campaign"`, `"kind":"epoch"`,
		`"kind":"stream"`, `"kind":"reward"`, `"kind":"end"`} {
		if !bytes.Contains(base, []byte(want)) {
			t.Errorf("journal missing %s events", want)
		}
	}
	for _, w := range []int{4, 16} {
		got := runAt(w)
		if !bytes.Equal(got, base) {
			t.Errorf("workers=%d journal diverged from workers=1 (%d vs %d bytes)",
				w, len(got), len(base))
		}
	}
	t.Logf("journal stable across 1/4/16 workers: %d bytes, %d lines",
		len(base), bytes.Count(base, []byte{'\n'}))
}

// TestFlightJournalResumeConcat checks the second identity: an
// interrupted campaign's journal plus its resumed continuation's
// journal concatenate to exactly the uninterrupted run's journal (the
// resume recorder writes no second campaign header, and the interrupt
// checkpoint dedups against the barrier checkpoint).
func TestFlightJournalResumeConcat(t *testing.T) {
	pool := seeds.Generate(15, 9)
	const totalSteps = 2000

	full := func() []byte {
		comp := compilersim.New("gcc", 14)
		var buf bytes.Buffer
		rec := flight.NewRecorder(flight.Config{
			Streams: 8, TotalSteps: totalSteps, Seed: 1234,
			Journal: &buf, ArmNames: armNames(),
		})
		cfg := Config{Streams: 8, Workers: 4, StepsPerEpoch: 16,
			TotalSteps: totalSteps, Seed: 1234, Flight: rec,
			CheckpointPath:  filepath.Join(t.TempDir(), "full.ckpt"),
			CheckpointEvery: 1,
		}
		c := New(cfg, flightFactory(comp, pool, rec))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	ckpt := filepath.Join(t.TempDir(), "split.ckpt")

	part1 := func() []byte {
		comp := compilersim.New("gcc", 14)
		var buf bytes.Buffer
		rec := flight.NewRecorder(flight.Config{
			Streams: 8, TotalSteps: totalSteps, Seed: 1234,
			Journal: &buf, ArmNames: armNames(),
		})
		ctx, cancel := context.WithCancel(context.Background())
		cfg := Config{Streams: 8, Workers: 4, StepsPerEpoch: 16,
			TotalSteps: totalSteps, Seed: 1234, Flight: rec,
			CheckpointPath: ckpt, CheckpointEvery: 1,
			OnEpoch: func(done, total int) {
				if done >= total/2 {
					cancel()
				}
			},
		}
		c := New(cfg, flightFactory(comp, pool, rec))
		err := c.Run(ctx)
		cancel()
		if err != ErrInterrupted {
			t.Fatalf("want ErrInterrupted, got %v", err)
		}
		if c.Done() >= totalSteps {
			t.Fatalf("campaign finished (%d steps) before interruption", c.Done())
		}
		return buf.Bytes()
	}()

	part2 := func() []byte {
		comp := compilersim.New("gcc", 14)
		snap, err := Load(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rec := flight.NewRecorder(flight.Config{
			Streams: 8, TotalSteps: totalSteps, Seed: 1234, Done: snap.Done,
			Journal: &buf, ArmNames: armNames(),
		})
		cfg := Config{Workers: 4, TotalSteps: totalSteps, Flight: rec,
			CheckpointPath: ckpt, CheckpointEvery: 1}
		c, err := Resume(ckpt, cfg, flightFactory(comp, pool, rec))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	joined := append(append([]byte(nil), part1...), part2...)
	if !bytes.Equal(joined, full) {
		t.Errorf("part1+part2 journal (%d bytes) != uninterrupted journal (%d bytes)",
			len(joined), len(full))
	}
}

// TestFlightReportRoundTrip replays a campaign journal through
// ReadJournal/BuildReport and checks the report agrees with both the
// campaign's ground truth and the in-memory event ring.
func TestFlightReportRoundTrip(t *testing.T) {
	pool := seeds.Generate(15, 9)
	comp := compilersim.New("gcc", 14)
	var buf bytes.Buffer
	rec := flight.NewRecorder(flight.Config{
		Streams: 8, TotalSteps: 2000, Seed: 1234,
		Journal: &buf, ArmNames: armNames(),
	})
	cfg := Config{Streams: 8, Workers: 4, StepsPerEpoch: 16,
		TotalSteps: 2000, Seed: 1234, Flight: rec}
	c := New(cfg, flightFactory(comp, pool, rec))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	events, err := flight.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := flight.BuildReport(events)

	st := c.MergedStats()
	if rep.Seed != 1234 || rep.Streams != 8 || rep.Total != 2000 {
		t.Errorf("header mismatch: %+v", rep)
	}
	if !rep.Ended || rep.FinalDone != 2000 {
		t.Errorf("end mismatch: ended=%v done=%d", rep.Ended, rep.FinalDone)
	}
	if rep.FinalCrashes != len(st.Crashes) {
		t.Errorf("report crashes %d, campaign %d", rep.FinalCrashes, len(st.Crashes))
	}
	if rep.FinalEdges != st.Coverage.Count() {
		t.Errorf("report edges %d, campaign %d", rep.FinalEdges, st.Coverage.Count())
	}
	// Crash rows are per-stream first discoveries; their distinct
	// signatures must equal the campaign's merged unique crash set.
	sigs := map[string]bool{}
	for _, cr := range rep.Crashes {
		sigs[cr.Signature] = true
	}
	if len(sigs) != len(st.Crashes) {
		t.Errorf("crash rows cover %d signatures, campaign has %d",
			len(sigs), len(st.Crashes))
	}
	if len(rep.Epochs) != c.Epoch() {
		t.Errorf("epoch rows %d, campaign epochs %d", len(rep.Epochs), c.Epoch())
	}

	// The journal replay and the in-memory ring must tell one story.
	ringRep := flight.BuildReport(rec.Events())
	if got, want := rep.Render(), ringRep.Render(); got != want {
		t.Errorf("journal-replayed report differs from ring-built report:\n%s\n---\n%s",
			got, want)
	}
	if r := rep.Render(); !strings.Contains(r, "flight report") ||
		!strings.Contains(r, "timeline") {
		t.Errorf("render missing sections:\n%s", r)
	}
}

// TestFlightCheckpointEvents: each successful snapshot write emits
// exactly one checkpoint event, and chaos-free campaigns raise no
// anomalies at default thresholds.
func TestFlightCheckpointEvents(t *testing.T) {
	pool := seeds.Generate(15, 9)
	comp := compilersim.New("gcc", 14)
	var buf bytes.Buffer
	rec := flight.NewRecorder(flight.Config{
		Streams: 4, TotalSteps: 640, Seed: 5,
		Journal: &buf, ArmNames: armNames(),
	})
	cfg := Config{Streams: 4, Workers: 2, StepsPerEpoch: 16,
		TotalSteps: 640, Seed: 5, Flight: rec,
		CheckpointPath: filepath.Join(t.TempDir(), "c.ckpt"), CheckpointEvery: 2}
	c := New(cfg, flightFactory(comp, pool, rec))
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := flight.BuildReport(rec.Events())
	// 10 epochs, every 2nd checkpointed; the final barrier's write is
	// deduped into the periodic one.
	if rep.Checkpoints == 0 {
		t.Error("no checkpoint events journaled")
	}
	if got := bytes.Count(buf.Bytes(), []byte(`"kind":"checkpoint"`)); got != rep.Checkpoints {
		t.Errorf("journal has %d checkpoint events, report counted %d", got, rep.Checkpoints)
	}
	if n := len(rec.Anomalies()); n != 0 {
		t.Errorf("fault-free campaign raised %d anomalies", n)
	}
}
