package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/reduce"
	"github.com/icsnju/metamut-go/internal/seeds"
)

var crashy struct {
	once sync.Once
	comp *compilersim.Compiler
	c    *Campaign
	err  error
}

// crashyCampaign runs a budget big enough (deterministically) to bank
// several unique crashes. The run is expensive, so the triage tests —
// all read-only over the campaign — share one instance.
func crashyCampaign(t *testing.T) (*Campaign, *compilersim.Compiler) {
	t.Helper()
	crashy.once.Do(func() {
		crashy.comp = compilersim.New("gcc", 14)
		cfg := Config{Streams: 8, Workers: 4, StepsPerEpoch: 25,
			TotalSteps: 6000, Seed: 2024}
		crashy.c = New(cfg, macroFactory(crashy.comp, seeds.Generate(20, 7)))
		crashy.err = crashy.c.Run(context.Background())
	})
	if crashy.err != nil {
		t.Fatal(crashy.err)
	}
	if crashy.c.MergedStats().UniqueCrashes() == 0 {
		t.Skip("seed found no crashes — bump the budget")
	}
	return crashy.c, crashy.comp
}

func TestTriageRankingAndDedup(t *testing.T) {
	c, comp := crashyCampaign(t)
	rep := c.Triage(comp, TriageConfig{})
	if len(rep.Bugs) != c.MergedStats().UniqueCrashes() {
		t.Errorf("triage has %d bugs, merged stats %d",
			len(rep.Bugs), c.MergedStats().UniqueCrashes())
	}
	if rep.Compiler != "gcc-14" || rep.Streams != 8 {
		t.Errorf("report header off: %+v", rep)
	}
	seen := map[string]bool{}
	for i, b := range rep.Bugs {
		if b.Rank != i+1 {
			t.Errorf("bug %d: rank %d", i, b.Rank)
		}
		if seen[b.Signature] {
			t.Errorf("signature %q appears twice", b.Signature)
		}
		seen[b.Signature] = true
		if b.Witness == "" || b.Via == "" || b.FirstTick <= 0 {
			t.Errorf("bug %d incomplete: %+v", i, b)
		}
		if b.Hits < 1 || b.Hits > rep.Streams {
			t.Errorf("bug %d: hits = %d", i, b.Hits)
		}
		if i > 0 {
			prev := rep.Bugs[i-1]
			if b.Report.Component > prev.Report.Component {
				t.Errorf("rank %d (%v) outranks deeper %v", b.Rank,
					prev.Report.Component, b.Report.Component)
			}
			if b.Report.Component == prev.Report.Component &&
				b.FirstTick < prev.FirstTick {
				t.Errorf("rank %d: later tick ranked above earlier", b.Rank)
			}
		}
	}
}

func TestTriageEarliestDiscoveryWins(t *testing.T) {
	c, comp := crashyCampaign(t)
	rep := c.Triage(comp, TriageConfig{})
	for _, b := range rep.Bugs {
		// The bug's FirstTick must be the minimum across all streams
		// holding that signature, and the witness must come from the
		// stream credited with the discovery.
		for s, w := range c.Workers() {
			ci, ok := w.Stats().Crashes[b.Signature]
			if !ok {
				continue
			}
			if ci.FirstTick < b.FirstTick {
				t.Errorf("%q: stream %d found it at %d, triage says %d",
					b.Signature, s, ci.FirstTick, b.FirstTick)
			}
		}
		ci := c.Workers()[b.Stream].Stats().Crashes[b.Signature]
		if ci == nil || ci.Input != b.Witness {
			t.Errorf("%q: witness not from credited stream %d", b.Signature, b.Stream)
		}
	}
}

func TestTriageReduction(t *testing.T) {
	c, comp := crashyCampaign(t)
	reg := obs.NewRegistry()
	rep := c.Triage(comp, TriageConfig{
		Reduce:    true,
		ReduceCfg: reduce.Config{MaxOracleCalls: 300, MaxPasses: 4},
		Registry:  reg,
	})
	reducedN := 0
	for _, b := range rep.Bugs {
		if b.Minimized == "" {
			continue // crash only reproduces under sampled flags; fine
		}
		reducedN++
		if len(b.Minimized) > len(b.Witness) {
			t.Errorf("%q: minimized witness grew", b.Signature)
		}
		if b.ReductionSteps <= 0 {
			t.Errorf("%q: reduction recorded no oracle calls", b.Signature)
		}
		// The minimized witness must still reproduce the signature at
		// the recorded opt level.
		res := comp.Compile(b.Minimized,
			compilersim.Options{OptLevel: b.ReduceOptLevel})
		if res.Crash == nil || res.Crash.Signature() != b.Signature {
			t.Errorf("%q: minimized witness no longer crashes", b.Signature)
		}
	}
	if reducedN == 0 {
		t.Error("no bug reduced — opt-level fallback never reproduced anything")
	}
	if got := reg.Snapshot().Counter("triage_reduced_total"); got != int64(reducedN) {
		t.Errorf("triage_reduced_total = %d, want %d", got, reducedN)
	}
}

func TestTriageRenderAndJSON(t *testing.T) {
	c, comp := crashyCampaign(t)
	rep := c.Triage(comp, TriageConfig{})
	text := rep.Render()
	if !strings.Contains(text, "unique bugs") || !strings.Contains(text, "rank") {
		t.Errorf("render missing header:\n%s", text)
	}
	for _, b := range rep.Bugs[:1] {
		if !strings.Contains(text, b.Report.Component.String()) {
			t.Errorf("render missing component of top bug:\n%s", text)
		}
	}
	path := filepath.Join(t.TempDir(), "triage.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back TriageReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Bugs) != len(rep.Bugs) || back.Compiler != rep.Compiler {
		t.Error("JSON report did not round-trip")
	}
}

func TestTriageEmpty(t *testing.T) {
	rep := Triage(nil, nil, TriageConfig{})
	if len(rep.Bugs) != 0 {
		t.Fatal("empty triage invented bugs")
	}
	if !strings.Contains(rep.Render(), "0 unique bugs") {
		t.Error("empty render off")
	}
}
