// Package obs is the campaign-wide observability layer: a dependency-
// free, concurrency-safe metrics registry (counters, gauges, fixed-
// bucket histograms, each organized into labeled families), lightweight
// span tracing with an optional JSONL journal, and snapshot/export
// plumbing (JSON, expvar, and a pprof debug server).
//
// The paper's evaluation is built entirely on measurement — per-stage
// LLM cost (Tables 1-3), compilable ratio (Table 5), coverage growth
// (Figure 7), crash timelines (Figures 8-9) — and this package turns
// those one-shot post-hoc numbers into live telemetry a long campaign
// can stream. The conventional families are:
//
//	compile_ticks                       compiler invocations (the virtual clock)
//	mutants_total{mutator,outcome}      per-mutator compile outcomes
//	coverage_edges{fuzzer}              cumulative edge count per fuzzer
//	crashes_unique_total{fuzzer}        unique crash discoveries
//	compile_results_total{compiler,outcome}
//	compiler_crashes_total{compiler,component}
//	llm_tokens{stage}                   token spend per pipeline stage
//	llm_calls_total{method,result}      simulated API calls and throttling
//	llm_faults_total{class}             injected implementation defects
//	invocations_total{outcome}          MetaMut invocation outcomes
//	refinement_fixes_total{goal}        refinement-loop repairs (Table 1)
//	span_seconds{span}                  stage durations from span tracing
//
// The parallel campaign engine (internal/engine) adds its own
// families: engine_epoch_seconds and engine_sync_seconds (epoch and
// barrier-merge cost histograms), engine_queue_depth and
// engine_steps_done (live progress gauges), engine_epochs_total,
// engine_checkpoints_total and engine_checkpoint_bytes (snapshot
// accounting), engine_checkpoint_failures_total and
// engine_checkpoint_fallbacks_total (write faults and .prev recoveries),
// engine_task_retries_total and engine_streams_poisoned_total (stream
// supervision), and triage_reduced_total (witnesses minimized during
// crash triage).
//
// The resilience layer (internal/resil) adds the fault-tolerance
// families: resil_retries_total{stage} (bounded backoff retries),
// resil_breaker_state, resil_breaker_trips_total and
// resil_deferred_total (circuit breaker over the LLM client),
// resil_quarantines_total{id} and resil_paroles_total{id} (mutator
// quarantine), plus mutator_panics_total{mutator},
// mutator_fuel_exhausted_total{mutator} and mutdsl_fuel_exhausted_total
// (supervised mutator execution and interpreter fuel watchdogs).
//
// The adaptive scheduler (internal/sched) adds
// sched_picks_total{mutator} (arm selections) and
// sched_weight{mutator} (posterior mean reward in milli-units), and
// the compiler simulator's mutant dedup cache adds
// mutant_cache_hits_total (compilations answered from cache).
//
// The complete catalogue, with units and emitting packages, lives in
// docs/METRICS.md; a test diffs that file against a fully-exercised
// live registry so it cannot drift.
//
// Everything is nil-tolerant: methods on a nil *Registry (and on the
// nil handles it returns) are no-ops, so instrumented code pays almost
// nothing when observability is off. Handles (*Counter, *Gauge,
// *Histogram) should be resolved once and reused on hot paths.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// labelSep joins label values into a family-map key; it cannot occur in
// reasonable label values (ASCII unit separator).
const labelSep = "\x1f"

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. coverage edges, pool
// size). Safe for concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// vec is the shared machinery of a labeled family: label names plus a
// lock-guarded map from joined label values to the metric handle.
type vec[T any] struct {
	name   string
	labels []string
	mu     sync.RWMutex
	m      map[string]*T
}

// with returns the handle for the given label values, creating it on
// first use. The read-lock fast path keeps resolved-series lookups
// cheap under the macro fuzzer's parallel workers.
func (v *vec[T]) with(values []string) *T {
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[key]; ok {
		return h
	}
	h = new(T)
	v.m[key] = h
	return h
}

// series returns a deterministic (sorted by key) view of the family.
func (v *vec[T]) series() ([]string, []*T) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	handles := make([]*T, len(keys))
	for i, k := range keys {
		handles[i] = v.m[k]
	}
	return keys, handles
}

// CounterVec is a labeled family of counters, e.g.
// mutants_total{mutator,outcome}.
type CounterVec struct {
	vec[Counter]
}

// With returns the counter for the given label values (nil on a nil
// family, which is itself a no-op handle).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.with(values)
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	vec[Gauge]
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.with(values)
}

// Registry holds the metric families of one campaign plus the optional
// trace journal. The zero value is not usable; use NewRegistry. A nil
// *Registry is a valid "observability off" instance: every method
// no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*CounterVec
	gauges   map[string]*GaugeVec
	hists    map[string]*HistogramVec
	journal  atomic.Pointer[Journal]
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*CounterVec{},
		gauges:   map[string]*GaugeVec{},
		hists:    map[string]*HistogramVec{},
		start:    time.Now(),
	}
}

// Counter returns (creating if needed) the counter family with the
// given name and label names. The first registration fixes the label
// set; later calls return the existing family regardless of labels.
func (r *Registry) Counter(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.counters[name]; ok {
		return f
	}
	f = &CounterVec{vec[Counter]{name: name, labels: labels, m: map[string]*Counter{}}}
	r.counters[name] = f
	return f
}

// Gauge returns (creating if needed) the gauge family.
func (r *Registry) Gauge(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.gauges[name]; ok {
		return f
	}
	f = &GaugeVec{vec[Gauge]{name: name, labels: labels, m: map[string]*Gauge{}}}
	r.gauges[name] = f
	return f
}

// Histogram returns (creating if needed) the histogram family. The
// bucket upper bounds are fixed at first registration; pass nil to use
// DefaultDurationBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.hists[name]; ok {
		return f
	}
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	f = &HistogramVec{
		vec:     vec[Histogram]{name: name, labels: labels, m: map[string]*Histogram{}},
		buckets: append([]float64(nil), buckets...),
	}
	r.hists[name] = f
	return f
}

// SetJournal attaches (or, with nil, detaches) the structured-event
// journal spans and instrumented code append to.
func (r *Registry) SetJournal(j *Journal) {
	if r != nil {
		r.journal.Store(j)
	}
}

// Journal returns the attached journal, or nil.
func (r *Registry) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.journal.Load()
}

// Uptime returns the time since the registry was created.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}
