package obs

import (
	"context"
	"time"
)

// Span measures one pipeline stage. Ending a span records its duration
// into the span_seconds{span} histogram and, when a journal is
// attached, appends a structured event. Spans are cheap enough for
// per-invocation stages (invent, synthesize, refine) but are not meant
// for the per-tick fuzzing hot path — counters cover that.
type Span struct {
	reg    *Registry
	name   string
	parent string
	start  time.Time
}

type spanCtxKey struct{}

// StartSpan begins a named span, deriving the parent from ctx (if a
// span is already active there) and returning a ctx carrying the new
// span. Safe on a nil registry: the returned span no-ops.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	parent := ""
	if ctx != nil {
		if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
			parent = p.name
		}
	} else {
		ctx = context.Background()
	}
	sp := &Span{reg: r, name: name, parent: parent, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// Span is the context-free shorthand for StartSpan.
func (r *Registry) Span(name string) *Span {
	_, sp := r.StartSpan(nil, name)
	return sp
}

// End completes the span and returns its duration (0 on nil).
func (s *Span) End() time.Duration {
	return s.EndWith(nil)
}

// EndWith completes the span, attaching extra fields to the journal
// event (e.g. the invocation outcome).
func (s *Span) EndWith(fields map[string]any) time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram("span_seconds", nil, "span").With(s.name).Observe(d.Seconds())
	if j := s.reg.Journal(); j != nil {
		rec := make(map[string]any, len(fields)+3)
		for k, v := range fields {
			rec[k] = v
		}
		rec["span"] = s.name
		if s.parent != "" {
			rec["parent"] = s.parent
		}
		rec["dur_us"] = d.Microseconds()
		j.Event("span", rec)
	}
	return d
}
