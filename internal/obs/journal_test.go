package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenRotatingMissingParentDir(t *testing.T) {
	_, err := OpenRotating(filepath.Join(t.TempDir(), "nope", "j.jsonl"), 0)
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("missing parent error = %v, want clear does-not-exist message", err)
	}
	file := filepath.Join(t.TempDir(), "plainfile")
	if werr := os.WriteFile(file, []byte("x"), 0o644); werr != nil {
		t.Fatal(werr)
	}
	_, err = OpenRotating(filepath.Join(file, "j.jsonl"), 0)
	if err == nil {
		t.Error("file-as-parent accepted, want error")
	}
}

func TestRotatingWriterRotatesAtCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	w, err := OpenRotating(path, 25)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	w.OnRotate = func() { fired++ }

	rec := []byte("0123456789\n") // 11 bytes; 3rd write exceeds the 25-byte cap
	for i := 0; i < 3; i++ {
		if _, err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want 1", got)
	}
	if fired != 1 {
		t.Errorf("OnRotate fired %d times, want 1", fired)
	}
	if got := w.Size(); got != int64(len(rec)) {
		t.Errorf("current generation holds %d bytes, want %d", got, len(rec))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	old, err := os.ReadFile(path + RotatedSuffix)
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := bytes.Repeat(rec, 2); !bytes.Equal(old, want) {
		t.Errorf("rotated file = %q, want two records", old)
	}
	if !bytes.Equal(cur, rec) {
		t.Errorf("current file = %q, want one record", cur)
	}
}

func TestRotatingWriterOversizeRecordLandsWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := OpenRotating(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	big := []byte("this-record-is-larger-than-the-cap\n")
	if _, err := w.Write([]byte("ab\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, big) {
		t.Errorf("oversize record torn or lost: current file = %q", cur)
	}
}

func TestRotatingWriterReplacesPreviousRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := OpenRotating(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"aa\n", "bb\n", "cc\n"} { // two rotations
		if _, err := w.Write([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Rotations(); got != 2 {
		t.Fatalf("rotations = %d, want 2", got)
	}
	w.Close()
	old, err := os.ReadFile(path + RotatedSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if string(old) != "bb\n" {
		t.Errorf("kept rotation = %q, want the most recent generation bb", old)
	}
	if _, err := os.Stat(path + ".2"); err == nil {
		t.Error("more than one rotated generation kept on disk")
	}
}

func TestJournalStickyErrorAndDropped(t *testing.T) {
	j := NewJournal(failingWriter{})
	for i := 0; i < 3; i++ {
		j.Event("tick", map[string]any{"i": i})
	}
	j.Flush()
	if err := j.Err(); err == nil {
		t.Fatal("write failures not surfaced by Err")
	}
	// The buffered writer absorbs small events; after Flush the failure
	// is sticky and later events count as dropped.
	j.Event("tick", map[string]any{"i": 99})
	if j.Err() == nil {
		t.Error("error cleared by a later event")
	}
	if j.Dropped() == 0 {
		t.Error("no events counted as dropped despite a dead writer")
	}
	// Unmarshalable payloads drop without poisoning the journal.
	var buf bytes.Buffer
	ok := NewJournal(&buf)
	ok.Event("bad", map[string]any{"ch": make(chan int)})
	ok.Event("good", map[string]any{"i": 1})
	if err := ok.Flush(); err != nil {
		t.Fatal(err)
	}
	if ok.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1 (the unmarshalable event)", ok.Dropped())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"good"`)) {
		t.Errorf("good event lost: %q", buf.String())
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, os.ErrClosed
}
