package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Journal appends structured events as JSON lines (one object per
// line). Spans write their completions here; instrumented code may add
// its own events. Safe for concurrent use; a nil *Journal no-ops.
type Journal struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
}

// NewJournal wraps an arbitrary writer (the caller keeps ownership of
// closing it unless it is also an io.Closer handed to OpenJournal).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w), start: time.Now()}
}

// OpenJournal creates (truncating) a JSONL journal file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJournal(f)
	j.c = f
	return j, nil
}

// Event appends one line carrying the event kind, a millisecond offset
// from journal creation, and the given fields. Reserved field names
// "kind" and "t_ms" are overwritten. encoding/json sorts map keys, so
// lines are deterministic for a given payload.
func (j *Journal) Event(kind string, fields map[string]any) {
	if j == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["kind"] = kind
	rec["t_ms"] = time.Since(j.start).Milliseconds()
	line, err := json.Marshal(rec)
	if err != nil {
		return // unmarshalable attachment: drop the event, never crash
	}
	j.mu.Lock()
	j.w.Write(line)
	j.w.WriteByte('\n')
	j.mu.Unlock()
}

// Flush forces buffered lines out.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// Close flushes and closes the underlying file (if OpenJournal created
// one).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
