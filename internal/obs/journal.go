package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal appends structured events as JSON lines (one object per
// line). Spans write their completions here; instrumented code may add
// its own events. Safe for concurrent use; a nil *Journal no-ops.
//
// Write failures are sticky: the first error is recorded and surfaced
// by Err, Flush, and Close instead of being silently dropped, so a
// full disk or a vanished directory is diagnosable after the fact.
type Journal struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	start   time.Time
	err     error // first write/flush error, sticky
	dropped int64 // events lost to marshal or write errors
}

// NewJournal wraps an arbitrary writer (the caller keeps ownership of
// closing it unless it is also an io.Closer handed to OpenJournal).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w), start: time.Now()}
}

// OpenJournal creates (truncating) a JSONL journal file. A missing
// parent directory is reported as a clear error up front rather than
// surfacing later as dropped events.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalCapped(path, 0)
}

// OpenJournalCapped creates a JSONL journal file whose size is capped
// at maxBytes: when an append would exceed the cap, the current file is
// fsynced, closed, and renamed to path+".1" (replacing any previous
// rotation), and writing continues in a fresh file at path. maxBytes 0
// disables rotation.
func OpenJournalCapped(path string, maxBytes int64) (*Journal, error) {
	rw, err := OpenRotating(path, maxBytes)
	if err != nil {
		return nil, err
	}
	j := NewJournal(rw)
	j.c = rw
	return j, nil
}

// Event appends one line carrying the event kind, a millisecond offset
// from journal creation, and the given fields. Reserved field names
// "kind" and "t_ms" are overwritten. encoding/json sorts map keys, so
// lines are deterministic for a given payload.
func (j *Journal) Event(kind string, fields map[string]any) {
	if j == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["kind"] = kind
	rec["t_ms"] = time.Since(j.start).Milliseconds()
	line, err := json.Marshal(rec)
	if err != nil {
		j.mu.Lock()
		j.dropped++
		j.mu.Unlock()
		return // unmarshalable attachment: drop the event, never crash
	}
	j.mu.Lock()
	_, werr := j.w.Write(line)
	if werr == nil {
		werr = j.w.WriteByte('\n')
	}
	if werr != nil {
		j.dropped++
		if j.err == nil {
			j.err = werr
		}
	}
	j.mu.Unlock()
}

// Err returns the first write error the journal has seen (nil when
// every event landed). Dropped returns how many events were lost to
// marshal or write failures.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Dropped returns the number of events lost to marshal/write errors.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Flush forces buffered lines out. It returns the journal's sticky
// error if one occurred earlier.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.w.Flush()
	if j.err == nil {
		j.err = ferr
	}
	return j.err
}

// Close flushes and closes the underlying file (if OpenJournal created
// one).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RotatingWriter is a size-capped file writer: when an append would
// push the current file past MaxBytes, the file is fsynced, closed,
// and renamed to path+".1" (replacing any previous rotation), and a
// fresh file is created at path. Rotation happens only between Write
// calls, so writers that emit one record per call never see a record
// torn across generations. Safe for concurrent use.
type RotatingWriter struct {
	// OnRotate, when set, is called (outside the lock) after each
	// completed rotation — e.g. to bump a rotation counter metric.
	OnRotate func()

	mu        sync.Mutex
	path      string
	max       int64
	f         *os.File
	n         int64 // bytes written to the current generation
	rotations int64
}

// RotatedSuffix names the single rotated generation kept on disk.
const RotatedSuffix = ".1"

// OpenRotating creates (truncating) a size-capped writer at path.
// maxBytes 0 disables rotation. A missing parent directory is a clear
// error here, not a silent failure at first write.
func OpenRotating(path string, maxBytes int64) (*RotatingWriter, error) {
	dir := filepath.Dir(path)
	if fi, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("obs: journal directory %q does not exist: %w", dir, err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("obs: journal parent %q is not a directory", dir)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create journal %q: %w", path, err)
	}
	return &RotatingWriter{path: path, max: maxBytes, f: f}, nil
}

// Write appends p, rotating first when the current generation is
// non-empty and p would push it past the cap. A single record larger
// than the cap still lands whole (in its own generation).
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	rotated := false
	if w.max > 0 && w.n > 0 && w.n+int64(len(p)) > w.max {
		if err := w.rotate(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
		rotated = true
	}
	n, err := w.f.Write(p)
	w.n += int64(n)
	cb := w.OnRotate
	w.mu.Unlock()
	if rotated && cb != nil {
		cb()
	}
	return n, err
}

// rotate fsyncs and closes the current generation, renames it to
// path+RotatedSuffix, and opens a fresh file. Callers hold w.mu.
func (w *RotatingWriter) rotate() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("obs: fsync before rotation: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("obs: close before rotation: %w", err)
	}
	if err := os.Rename(w.path, w.path+RotatedSuffix); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	f, err := os.Create(w.path)
	if err != nil {
		return fmt.Errorf("obs: reopen journal after rotation: %w", err)
	}
	w.f = f
	w.n = 0
	w.rotations++
	return nil
}

// Rotations returns how many rotations have completed.
func (w *RotatingWriter) Rotations() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotations
}

// Size returns the byte count of the current generation.
func (w *RotatingWriter) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Close fsyncs and closes the current generation.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
