package obs

import (
	"flag"
	"fmt"
	"net/http"
	"os"
)

// CLIOptions carries the standard observability flags every campaign
// CLI exposes (mucfuzz, metamut, experiments).
type CLIOptions struct {
	// StatsInterval prints a one-line live status every N steps
	// (0 disables); each CLI decides what a "step" is.
	StatsInterval int
	// MetricsOut writes a final JSON snapshot to this file on exit.
	MetricsOut string
	// TraceOut appends JSONL span/trace events to this file.
	TraceOut string
	// DebugAddr serves /debug/metrics, /debug/vars and /debug/pprof.
	DebugAddr string
}

// BindCLIFlags registers the standard flags on the default flag set
// and returns the options they fill (read after flag.Parse).
func BindCLIFlags() *CLIOptions {
	o := &CLIOptions{}
	flag.IntVar(&o.StatsInterval, "stats-interval", 0,
		"print a live status line every N steps (0 disables)")
	flag.StringVar(&o.MetricsOut, "metrics-out", "",
		"write a final JSON metrics snapshot to this file")
	flag.StringVar(&o.TraceOut, "trace-out", "",
		"write JSONL span/trace events to this file")
	flag.StringVar(&o.DebugAddr, "debug-addr", "",
		"serve /debug/metrics and /debug/pprof on this address (e.g. :6060)")
	return o
}

// Activate wires the options into the registry: opens the trace
// journal, starts the debug server (mounting any extra routes, e.g.
// the flight recorder's console endpoints), and publishes the registry
// under the given expvar name. The returned shutdown function writes
// the final metrics snapshot and closes the journal; call it exactly
// once (e.g. via defer) after the campaign finishes.
func (o *CLIOptions) Activate(reg *Registry, expvarName string, extra ...Route) (func() error, error) {
	var journal *Journal
	var srv *http.Server
	if o.TraceOut != "" {
		j, err := OpenJournal(o.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: open trace journal: %w", err)
		}
		journal = j
		reg.SetJournal(j)
	}
	if o.DebugAddr != "" {
		s, addr, err := reg.ServeDebug(o.DebugAddr, extra...)
		if err != nil {
			journal.Close()
			return nil, fmt.Errorf("obs: debug server: %w", err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "[obs] debug server on http://%s/debug/metrics\n", addr)
	}
	reg.PublishExpvar(expvarName)
	shutdown := func() error {
		var err error
		if o.MetricsOut != "" {
			err = reg.Snapshot().WriteJSON(o.MetricsOut)
		}
		if cerr := journal.Close(); err == nil {
			err = cerr
		}
		if srv != nil {
			srv.Close()
		}
		return err
	}
	return shutdown, nil
}
