package obs

import (
	"math"
	"strings"
	"sync/atomic"
)

// DefaultDurationBuckets spans 100µs to ~100s exponentially — wide
// enough for both real stage durations and the simulated LLM waits
// (Table 3's 11-123s range).
var DefaultDurationBuckets = ExpBuckets(1e-4, 4, 11)

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous (an implicit +Inf bucket is always appended by
// the histogram itself).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start with the
// given width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Histogram is a fixed-bucket histogram. A value lands in the first
// bucket whose upper bound is >= the value (Prometheus "le"
// semantics); values above every bound land in the implicit +Inf
// bucket. Safe for concurrent use and on a nil receiver.
type Histogram struct {
	buckets []float64      // upper bounds, ascending
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// BucketCounts returns the per-bucket counts; the final entry is the
// +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramVec is a labeled family of histograms sharing one bucket
// layout (e.g. span_seconds{span}).
type HistogramVec struct {
	vec[Histogram]
	buckets []float64
}

// With returns the histogram for the given label values, creating it
// with the family's bucket layout on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[key]; ok {
		return h
	}
	h = &Histogram{
		buckets: v.buckets,
		counts:  make([]atomic.Int64, len(v.buckets)+1),
	}
	v.m[key] = h
	return h
}
