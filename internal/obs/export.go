package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Snapshot is a point-in-time, JSON-serializable view of a registry.
// Families and series are sorted, so equal registry states produce
// byte-identical JSON.
type Snapshot struct {
	TakenAt  time.Time    `json:"taken_at"`
	UptimeMs int64        `json:"uptime_ms"`
	Counters []Family     `json:"counters"`
	Gauges   []Family     `json:"gauges"`
	Hists    []HistFamily `json:"histograms"`
}

// Family is one counter or gauge family.
type Family struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Series []Series `json:"series"`
}

// Series is one labeled value inside a family.
type Series struct {
	LabelValues []string `json:"label_values,omitempty"`
	Value       int64    `json:"value"`
}

// HistFamily is one histogram family; all series share Buckets.
type HistFamily struct {
	Name    string       `json:"name"`
	Labels  []string     `json:"labels,omitempty"`
	Buckets []float64    `json:"buckets"`
	Series  []HistSeries `json:"series"`
}

// HistSeries is one labeled histogram: Counts aligns with the family's
// Buckets plus a final +Inf entry.
type HistSeries struct {
	LabelValues []string `json:"label_values,omitempty"`
	Counts      []int64  `json:"counts"`
	Count       int64    `json:"count"`
	Sum         float64  `json:"sum"`
}

// splitKey reverses the label-value join; an empty key is the single
// unlabeled series.
func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, labelSep)
}

// Snapshot captures the current state of every family.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{TakenAt: time.Now()}
	if r == nil {
		return snap
	}
	snap.UptimeMs = r.Uptime().Milliseconds()

	r.mu.RLock()
	counters := make([]*CounterVec, 0, len(r.counters))
	for _, f := range r.counters {
		counters = append(counters, f)
	}
	gauges := make([]*GaugeVec, 0, len(r.gauges))
	for _, f := range r.gauges {
		gauges = append(gauges, f)
	}
	hists := make([]*HistogramVec, 0, len(r.hists))
	for _, f := range r.hists {
		hists = append(hists, f)
	}
	r.mu.RUnlock()

	snap.Counters = make([]Family, 0, len(counters))
	for _, f := range counters {
		fam := Family{Name: f.name, Labels: f.labels}
		keys, handles := f.series()
		for i, k := range keys {
			fam.Series = append(fam.Series, Series{
				LabelValues: splitKey(k), Value: handles[i].Value()})
		}
		snap.Counters = append(snap.Counters, fam)
	}
	snap.Gauges = make([]Family, 0, len(gauges))
	for _, f := range gauges {
		fam := Family{Name: f.name, Labels: f.labels}
		keys, handles := f.series()
		for i, k := range keys {
			fam.Series = append(fam.Series, Series{
				LabelValues: splitKey(k), Value: handles[i].Value()})
		}
		snap.Gauges = append(snap.Gauges, fam)
	}
	snap.Hists = make([]HistFamily, 0, len(hists))
	for _, f := range hists {
		fam := HistFamily{Name: f.name, Labels: f.labels, Buckets: f.buckets}
		keys, handles := f.series()
		for i, k := range keys {
			h := handles[i]
			fam.Series = append(fam.Series, HistSeries{
				LabelValues: splitKey(k), Counts: h.BucketCounts(),
				Count: h.Count(), Sum: h.Sum()})
		}
		snap.Hists = append(snap.Hists, fam)
	}
	sortFamilies(snap)
	return snap
}

func sortFamilies(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
}

// Counter returns the named counter series' value from the snapshot
// (0 when absent) — a convenience for tests and status lines.
func (s *Snapshot) Counter(name string, labelValues ...string) int64 {
	for _, f := range s.Counters {
		if f.Name != name {
			continue
		}
		for _, ser := range f.Series {
			if equalValues(ser.LabelValues, labelValues) {
				return ser.Value
			}
		}
	}
	return 0
}

// CounterSum returns the sum over every series of a counter family.
func (s *Snapshot) CounterSum(name string) int64 {
	var total int64
	for _, f := range s.Counters {
		if f.Name != name {
			continue
		}
		for _, ser := range f.Series {
			total += ser.Value
		}
	}
	return total
}

// FamilyInfo describes one registered metric family independent of its
// current values — the shape docs/METRICS.md documents and the
// metrics-doc test diffs against.
type FamilyInfo struct {
	Name   string   // family name, e.g. "mutants_total"
	Kind   string   // "counter", "gauge", or "histogram"
	Labels []string // label names in registration order (nil if unlabeled)
}

// Families enumerates every registered family sorted by name. Families
// exist from registration (the first Counter/Gauge/Histogram call), so
// pre-registering event-gated metrics makes them visible here even
// before any event fires.
func (r *Registry) Families() []FamilyInfo {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]FamilyInfo, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, f := range r.counters {
		out = append(out, FamilyInfo{Name: f.name, Kind: "counter", Labels: f.labels})
	}
	for _, f := range r.gauges {
		out = append(out, FamilyInfo{Name: f.name, Kind: "gauge", Labels: f.labels})
	}
	for _, f := range r.hists {
		out = append(out, FamilyInfo{Name: f.name, Kind: "histogram", Labels: f.labels})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func equalValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// expvarPublished guards against expvar.Publish's panic on duplicate
// names when several registries (tests) publish in one process.
var expvarPublished sync.Map

// PublishExpvar exposes the registry under the given expvar name; the
// standard /debug/vars handler then serves it. Re-publishing a taken
// name is a no-op (the first registry wins).
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, dup := expvarPublished.LoadOrStore(name, true); dup {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Route is one extra handler mounted on the debug server — how
// subsystems (e.g. the flight recorder's /debug/campaign) extend the
// standard endpoint set without owning the server.
type Route struct {
	Pattern string
	Handler http.Handler
}

// ServeDebug starts an HTTP debug server on addr (e.g. ":6060")
// serving the live snapshot at /debug/metrics, expvar at /debug/vars,
// the pprof suite under /debug/pprof/, and any extra routes. It
// returns the server and its actual listen address (useful with ":0");
// the caller owns shutdown via srv.Close.
func (r *Registry) ServeDebug(addr string, extra ...Route) (*http.Server, string, error) {
	if r == nil {
		return nil, "", nil
	}
	mux := http.NewServeMux()
	for _, rt := range extra {
		if rt.Pattern != "" && rt.Handler != nil {
			mux.Handle(rt.Pattern, rt.Handler)
		}
	}
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
