package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mutants_total", "mutator", "outcome").With("AddElseBranch", "ok")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same label values resolve to the same handle.
	again := r.Counter("mutants_total").With("AddElseBranch", "ok")
	if again != c {
		t.Error("same series resolved to a different handle")
	}
	g := r.Gauge("coverage_edges", "fuzzer").With("f1")
	g.Set(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Errorf("gauge = %d, want 70", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every call on a nil registry (and the nil handles it returns) must
	// be a silent no-op — this is the "observability off" contract.
	r.Counter("x", "l").With("v").Inc()
	r.Gauge("y").With().Set(3)
	r.Histogram("z", nil, "l").With("v").Observe(1)
	r.Span("s").EndWith(map[string]any{"k": "v"})
	ctx, sp := r.StartSpan(context.Background(), "s")
	if ctx == nil || sp != nil {
		t.Error("nil registry StartSpan should pass ctx through with a nil span")
	}
	r.SetJournal(nil)
	if r.Journal() != nil || r.Uptime() != 0 {
		t.Error("nil registry leaked state")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var j *Journal
	j.Event("e", nil)
	if err := j.Close(); err != nil {
		t.Errorf("nil journal close: %v", err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Mix resolved-handle and per-iteration lookups so both the
			// fast path and family creation race against each other.
			mine := r.Counter("ticks").With()
			for i := 0; i < perWorker; i++ {
				mine.Inc()
				r.Counter("mutants_total", "mutator", "outcome").
					With("m", []string{"ok", "reject"}[i%2]).Inc()
				r.Gauge("edges", "fuzzer").With("f").Set(int64(i))
				r.Histogram("lat", []float64{0.5, 1}, "stage").
					With("s").Observe(float64(i % 3))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("ticks"); got != workers*perWorker {
		t.Errorf("ticks = %d, want %d", got, workers*perWorker)
	}
	if got := snap.CounterSum("mutants_total"); got != workers*perWorker {
		t.Errorf("mutants_total sum = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("lat", nil, "stage").With("s")
	if h.Count() != workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4}, "l").With("v")
	// Prometheus "le" semantics: a value equal to an upper bound belongs
	// to that bucket; anything above the last bound is +Inf.
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	// le=1:{0.5,1} le=2:{1.0001,2} le=4:{3.9,4} +Inf:{4.0001,100}
	want := []int64{2, 2, 2, 2}
	got := h.BucketCounts()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); sum < 116.4 || sum > 116.41 {
		t.Errorf("sum = %v, want ~116.4002", sum)
	}
}

func TestBucketLayouts(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if !reflect.DeepEqual(exp, []float64{1, 2, 4, 8}) {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(1, 3, 3)
	if !reflect.DeepEqual(lin, []float64{1, 4, 7}) {
		t.Errorf("LinearBuckets = %v", lin)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "a", "b").With("x", "y").Add(7)
	r.Counter("c").With("x", "z").Add(1)
	r.Gauge("g").With().Set(-4)
	r.Histogram("h", []float64{1, 2}, "l").With("v").Observe(1.5)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("c", "x", "y") != 7 || back.Counter("c", "x", "z") != 1 {
		t.Errorf("counter series lost in round trip: %s", data)
	}
	if len(back.Gauges) != 1 || back.Gauges[0].Series[0].Value != -4 {
		t.Errorf("gauge lost in round trip: %s", data)
	}
	if len(back.Hists) != 1 || back.Hists[0].Series[0].Count != 1 ||
		back.Hists[0].Series[0].Sum != 1.5 {
		t.Errorf("histogram lost in round trip: %s", data)
	}

	// Determinism: equal registry state must serialize byte-identically
	// once the capture timestamps are normalized.
	snap2 := r.Snapshot()
	snap.TakenAt, snap2.TakenAt = time.Time{}, time.Time{}
	snap.UptimeMs, snap2.UptimeMs = 0, 0
	d1, _ := json.Marshal(snap)
	d2, _ := json.Marshal(snap2)
	if !bytes.Equal(d1, d2) {
		t.Errorf("snapshots differ:\n%s\n%s", d1, d2)
	}
}

func TestSpanTimingMonotonic(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("stage")
	time.Sleep(5 * time.Millisecond)
	d := sp.End()
	if d < 5*time.Millisecond {
		t.Errorf("span duration %v < slept 5ms", d)
	}
	h := r.Histogram("span_seconds", nil, "span").With("stage")
	if h.Count() != 1 {
		t.Fatalf("span_seconds count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.005 {
		t.Errorf("span_seconds sum = %v, want >= 0.005", h.Sum())
	}
	// Durations never decrease across sequential spans' accumulated sum.
	sp2 := r.Span("stage")
	d2 := sp2.End()
	if d2 < 0 {
		t.Errorf("negative duration %v", d2)
	}
	if h.Count() != 2 {
		t.Errorf("second span not recorded")
	}
}

func TestSpanParentFromContext(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetJournal(NewJournal(&buf))
	ctx, outer := r.StartSpan(context.Background(), "outer")
	_, inner := r.StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	r.Journal().Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d journal lines, want 2", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("invalid JSONL: %v", err)
	}
	if ev["span"] != "inner" || ev["parent"] != "outer" {
		t.Errorf("inner event = %v, want span=inner parent=outer", ev)
	}
}

func TestJournalJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Event("span", map[string]any{"span": "fuzz", "n": 3})
	j.Event("note", nil)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if _, ok := ev["kind"]; !ok {
			t.Errorf("line %q missing kind", line)
		}
		if _, ok := ev["t_ms"]; !ok {
			t.Errorf("line %q missing t_ms", line)
		}
	}
}

func TestJournalConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Event("e", map[string]any{"w": id, "i": i})
			}
		}(w)
	}
	wg.Wait()
	j.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved write corrupted line %q", line)
		}
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("compile_ticks").With().Add(42)
	srv, addr, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counter("compile_ticks") != 42 {
		t.Errorf("served snapshot missing counter: %s", body)
	}
	if resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof cmdline status = %d", resp.StatusCode)
		}
	} else {
		t.Errorf("pprof endpoint: %v", err)
	}
}
