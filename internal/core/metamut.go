// Package core implements the MetaMut framework — the paper's primary
// contribution (Figure 1): ❶ mutator invention, ❷ implementation
// synthesis against the μAST template, and ❸ validation and refinement
// driven by the six staged goals. It also carries the campaign runners
// (supervised M_s and unsupervised M_u) and the cost accounting behind
// Tables 1-3.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
)

// Goal numbers the six validation goals of Section 3.3.
type Goal int

// Validation goals, from simplest to most complex.
const (
	GoalCompiles     Goal = 1 // μ compiles
	GoalTerminates   Goal = 2 // μ terminates (not hang)
	GoalReturns      Goal = 3 // μ returns (not crash)
	GoalOutputs      Goal = 4 // μ outputs something
	GoalChanges      Goal = 5 // μ changes something
	GoalValidMutants Goal = 6 // μ creates compilable mutants
	goalAllMet       Goal = 0
)

var goalDescriptions = map[Goal]string{
	GoalCompiles:     "mutator does not compile",
	GoalTerminates:   "mutator hangs",
	GoalReturns:      "mutator crashes",
	GoalOutputs:      "mutator outputs nothing",
	GoalChanges:      "mutator does not rewrite",
	GoalValidMutants: "mutator creates compile-error mutant",
}

// Outcome classifies one MetaMut invocation.
type Outcome int

// Invocation outcomes. Valid mutators join the working set; the Invalid*
// classes reproduce Section 4.1's failure taxonomy; APIError covers the
// throttling/timeouts that killed 24 of 100 unsupervised invocations.
// Deferred marks an invocation the circuit breaker refused to start or
// finish during a throttle storm — unlike APIError it is retryable, and
// the supervised campaign re-queues it.
const (
	Valid Outcome = iota
	InvalidRefinementFailed
	InvalidMismatch
	InvalidUnthorough
	InvalidDuplicate
	APIError
	Deferred
)

var outcomeNames = [...]string{
	"valid", "refinement-failed", "mismatched-implementation",
	"unthorough-tests", "duplicate", "api-error", "deferred",
}

// String returns the outcome label.
func (o Outcome) String() string { return outcomeNames[o] }

// Cost aggregates one invocation's spend, split by pipeline step
// (Table 2's rows).
type Cost struct {
	InventionTokens      int
	ImplementationTokens int
	BugFixTokens         int

	InventionTime      time.Duration
	ImplementationTime time.Duration
	BugFixTime         time.Duration

	// WaitTime / PrepareTime split the same wall clock the other way
	// (Table 3): awaiting responses vs. compiling, running, and
	// collecting feedback.
	WaitTime    time.Duration
	PrepareTime time.Duration

	// QA rounds per step. Invention and implementation are one round
	// each by construction; bug-fixing includes the test-generation
	// round plus one round per repair.
	QAInvention      int
	QAImplementation int
	QABugFix         int
}

// TotalTokens sums all steps.
func (c Cost) TotalTokens() int {
	return c.InventionTokens + c.ImplementationTokens + c.BugFixTokens
}

// TotalTime sums all steps.
func (c Cost) TotalTime() time.Duration {
	return c.InventionTime + c.ImplementationTime + c.BugFixTime
}

// TotalQA sums QA rounds.
func (c Cost) TotalQA() int { return c.QAInvention + c.QAImplementation + c.QABugFix }

// DollarCost estimates the API spend at GPT-4 ChatCompletion pricing
// (the paper's ~$0.5/mutator figure).
func (c Cost) DollarCost() float64 {
	// Blended prompt/completion rate ≈ $0.06 per 1K tokens.
	return float64(c.TotalTokens()) / 1000 * 0.06
}

// Result is one MetaMut invocation's full record.
type Result struct {
	Invention llm.Invention
	Program   *mutdsl.Program // final implementation (nil on API error)
	Outcome   Outcome
	Cost      Cost
	// FixedByGoal counts refinement-loop repairs per goal (Table 1).
	FixedByGoal map[Goal]int
	// StaticCatches counts defect episodes the mutcheck linter reported
	// before any compile-and-run round; DynamicCatches counts episodes
	// only the dynamic validator saw. An episode is a maximal streak of
	// refinement rounds reporting the same goal — one defect resisting
	// repair for many rounds is counted once. Together they measure the
	// shift-left pipeline's reach.
	StaticCatches  map[Goal]int
	DynamicCatches map[Goal]int
	// Expert marks supervised-campaign author interventions.
	ExpertInterventions int
}

// Framework wires the pipeline together.
type Framework struct {
	Client llm.Client
	Params llm.Params
	// MaxRepairAttempts terminates the automatic fix procedure
	// (the paper uses 27).
	MaxRepairAttempts int
	// TestsPerMutator is the size of the generated unit-test suite.
	TestsPerMutator int
	// CoarseFeedback disables the staged goal ordering (ablation): the
	// model only ever hears "the mutant does not work" instead of the
	// simplest unmet goal's precise feedback.
	CoarseFeedback bool
	// NoStatic disables the mutcheck linter pass (ablation): every
	// defect costs a full compile-and-run QA round, reproducing the
	// paper's dynamic-only validation loop.
	NoStatic bool
	// Obs receives campaign telemetry (invocation spans,
	// invocations_total{outcome}, refinement_fixes_total{goal}, prepare
	// and simulated-wait accounting). nil disables instrumentation;
	// wire the same registry into the llm client via llm.Instrument to
	// also capture per-call token telemetry.
	Obs *obs.Registry
	// Retry bounds the supervised campaign's retry-through-API-error
	// loops (synthesize / generate-tests / fix). The zero value uses the
	// resil defaults (5 attempts, 250ms..30s exponential backoff).
	Retry resil.Policy
	// MaxDeferrals bounds how many times the supervised campaign
	// re-queues an invocation the circuit breaker deferred (default 3);
	// past it the invocation ends Deferred.
	MaxDeferrals int
	rng          *rand.Rand
	retrySeq     int64
}

// New returns a framework over the given model with the paper's
// configuration (temperature 0.8, top-p 0.95, 27 repair attempts).
func New(client llm.Client, seed int64) *Framework {
	return &Framework{
		Client:            client,
		Params:            llm.DefaultParams(),
		MaxRepairAttempts: 27,
		TestsPerMutator:   3,
		MaxDeferrals:      3,
		rng:               rand.New(rand.NewSource(seed)),
	}
}

// retrier opens one stage's bounded attempt budget. Its jitter seed is
// a private sequence counter — never the framework rng, whose draw
// order calibrates the simulated campaigns.
func (f *Framework) retrier(stage string) *resil.Retrier {
	f.retrySeq++
	p := f.Retry
	if p.Registry == nil {
		p.Registry = f.Obs
	}
	return p.Retrier(stage, f.retrySeq)
}

// prepareTime samples the request-preparation time (compile mutator, run
// over tests, collect feedback): Table 3 reports 0-69s, median 9s.
func (f *Framework) prepareTime() time.Duration {
	v := 9 * math.Exp(0.8*f.rng.NormFloat64())
	if v > 69 {
		v = 69
	}
	return time.Duration(v * float64(time.Second))
}

// GenerateOne runs the full Figure-1 pipeline once: invention →
// synthesis → validation/refinement → (simulated) manual verification.
// priorNames feeds the invention prompt's sampling hints.
func (f *Framework) GenerateOne(priorNames []string) Result {
	sp := f.Obs.Span("invocation")
	res := f.generateOne(priorNames)
	sp.EndWith(map[string]any{"outcome": res.Outcome.String(),
		"tokens": res.Cost.TotalTokens(), "qa": res.Cost.TotalQA()})
	f.recordInvocation(res)
	return res
}

// recordInvocation books one finished invocation's telemetry.
func (f *Framework) recordInvocation(res Result) {
	if f.Obs == nil {
		return
	}
	f.Obs.Counter("invocations_total", "outcome").With(res.Outcome.String()).Inc()
	fixes := f.Obs.Counter("refinement_fixes_total", "goal")
	for g, n := range res.FixedByGoal {
		fixes.With(goalDescriptions[g]).Add(int64(n))
	}
	f.Obs.Histogram("invocation_qa_rounds", obs.LinearBuckets(1, 4, 10)).
		With().Observe(float64(res.Cost.TotalQA()))
}

// stageSpan opens a named pipeline-stage span (no-op when Obs is nil).
func (f *Framework) stageSpan(name string) *obs.Span { return f.Obs.Span(name) }

// recordPrepare books one refinement round's simulated prepare time
// (Table 3 row 2).
func (f *Framework) recordPrepare(d time.Duration) {
	f.Obs.Histogram("prepare_seconds", nil).With().Observe(d.Seconds())
}

// diagnose returns the simplest unmet validation goal with its feedback
// and whether it was found statically. The mutcheck linter runs first —
// on a mutator whose source compiles — and a lint Error becomes the QA
// feedback without spending the compile-and-run round; only when the
// linter is clean (or disabled via NoStatic) does the dynamic validator
// run, charging the paper's prepare time.
func (f *Framework) diagnose(prog *mutdsl.Program, tests []string, res *Result) (Goal, string, bool) {
	if !f.NoStatic {
		if _, err := mutdsl.Compile(prog); err == nil {
			if d, ok := mutcheck.FirstError(mutcheck.Lint(prog)); ok {
				msg := fmt.Sprintf("static analysis (%s): %s — %s", d.Check, d.Message, d.Fix)
				return Goal(d.Goal), msg, true
			}
		}
	}
	prep := f.prepareTime()
	res.Cost.BugFixTime += prep
	res.Cost.PrepareTime += prep
	f.recordPrepare(prep)
	goal, feedback := f.Validate(prog, tests)
	return goal, feedback, false
}

// recordCatch books one defect *episode* — the first refinement round
// that reports a given goal; consecutive rounds re-reporting the same
// goal are the same defect resisting repair, not new detections. lastGoal
// is the previous round's goal (goalAllMet on the first round).
func (f *Framework) recordCatch(goal, lastGoal Goal, static bool, res *Result) {
	if goal == lastGoal {
		return
	}
	if static {
		res.StaticCatches[goal]++
		if f.Obs != nil {
			f.Obs.Counter("static_catches_total", "goal").
				With(goalDescriptions[goal]).Inc()
		}
		llm.RecordStaticSavings(f.Obs, int(goal))
		return
	}
	res.DynamicCatches[goal]++
}

// recordInputParseFailure counts test programs the mutator could not
// even read (the input failed to parse, so no goal is assessable).
func (f *Framework) recordInputParseFailure() {
	if f.Obs != nil {
		f.Obs.Counter("mutator_input_parse_failures_total").With().Inc()
	}
}

// recordFuelExhausted counts a validation application that was cut off
// by the interpreter's fuel budget (mutdsl_fuel_exhausted_total).
func (f *Framework) recordFuelExhausted() {
	if f.Obs != nil {
		f.Obs.Counter("mutdsl_fuel_exhausted_total").With().Inc()
	}
}

func (f *Framework) generateOne(priorNames []string) Result {
	res := Result{FixedByGoal: map[Goal]int{},
		StaticCatches: map[Goal]int{}, DynamicCatches: map[Goal]int{}}

	// ❶ Mutator invention (one QA round).
	sp := f.stageSpan("invent")
	inv, usage, err := f.Client.Invent(llm.Actions, llm.Structures, priorNames, f.Params)
	sp.End()
	res.Cost.QAInvention = 1
	res.Cost.InventionTokens = usage.TotalTokens()
	res.Cost.InventionTime = usage.Wait
	res.Cost.WaitTime += usage.Wait
	if err != nil {
		res.Outcome = apiOutcome(err)
		return res
	}
	res.Invention = inv

	// ❷ Implementation synthesis (one QA round).
	sp = f.stageSpan("synthesize")
	prog, usage, err := f.Client.Synthesize(inv, f.Params)
	sp.End()
	res.Cost.QAImplementation = 1
	res.Cost.ImplementationTokens = usage.TotalTokens()
	res.Cost.ImplementationTime = usage.Wait
	res.Cost.WaitTime += usage.Wait
	if err != nil {
		res.Outcome = apiOutcome(err)
		return res
	}
	res.Program = prog

	// ❸ Validation and refinement. Test generation is the loop's first
	// QA round.
	sp = f.stageSpan("generate-tests")
	tests, usage, err := f.Client.GenerateTests(inv, f.TestsPerMutator, f.Params)
	sp.End()
	res.Cost.QABugFix++
	res.Cost.BugFixTokens += usage.TotalTokens()
	res.Cost.BugFixTime += usage.Wait
	res.Cost.WaitTime += usage.Wait
	if err != nil {
		res.Outcome = apiOutcome(err)
		return res
	}

	refineSpan := f.stageSpan("refine")
	defer refineSpan.End()
	lastGoal := goalAllMet
	for attempt := 0; ; attempt++ {
		goal, feedback, static := f.diagnose(prog, tests, &res)
		if goal == goalAllMet {
			break
		}
		f.recordCatch(goal, lastGoal, static, &res)
		lastGoal = goal
		if attempt >= f.MaxRepairAttempts {
			res.Outcome = InvalidRefinementFailed
			res.Program = prog
			return res
		}
		reportGoal, reportMsg := goal, feedback
		if f.CoarseFeedback {
			reportGoal = GoalValidMutants
			reportMsg = "the mutator does not work as described"
		}
		fixed, usage, err := f.Client.Fix(prog, int(reportGoal), reportMsg, f.Params)
		res.Cost.QABugFix++
		res.Cost.BugFixTokens += usage.TotalTokens()
		res.Cost.BugFixTime += usage.Wait
		res.Cost.WaitTime += usage.Wait
		if err != nil {
			res.Outcome = apiOutcome(err)
			return res
		}
		// Classify the repair (Table 1): a fix is credited only when the
		// specific defect was repaired. For goal #1 every resolved compile
		// error counts — a repair that introduces a *different* compile
		// error still fixed the reported one. Statically-reported defects
		// are re-checked with the linter, dynamic ones by re-running.
		switch {
		case static:
			if mutcheck.Violates(prog, int(goal)) && !mutcheck.Violates(fixed, int(goal)) {
				res.FixedByGoal[goal]++
			}
		case goal == GoalCompiles:
			if prog.SyntaxErr != "" && fixed.SyntaxErr != prog.SyntaxErr {
				res.FixedByGoal[goal]++
			}
		default:
			if f.ViolatesGoal(prog, tests, goal) && !f.ViolatesGoal(fixed, tests, goal) {
				res.FixedByGoal[goal]++
			}
		}
		prog = fixed
	}
	res.Program = prog

	// Manual verification (Section 4: two authors independently check
	// every likely-valid mutator).
	rates, hasRates := clientRates(f.Client)
	switch {
	case isDuplicateName(prog.Name, priorNames):
		res.Outcome = InvalidDuplicate
	case hasRates && f.rng.Float64() < rates.Mismatch:
		res.Outcome = InvalidMismatch
	case hasRates && f.rng.Float64() < rates.Unthorough:
		res.Outcome = InvalidUnthorough
	default:
		res.Outcome = Valid
	}
	return res
}

// apiOutcome classifies an LLM-call error: a breaker denial is a
// retryable deferral, anything else is the paper's terminal APIError.
func apiOutcome(err error) Outcome {
	if errors.Is(err, resil.ErrOpen) {
		return Deferred
	}
	return APIError
}

// clientRates surfaces the fault calibration of simulated models, looking
// through wrappers like llm.Recorder and llm.Guarded.
func clientRates(c llm.Client) (llm.FaultRates, bool) {
	switch x := c.(type) {
	case *llm.SimClient:
		return x.Rates(), true
	case *llm.Recorder:
		return clientRates(x.Inner)
	case *llm.Guarded:
		return clientRates(x.Inner)
	}
	return llm.FaultRates{}, false
}

// ViolatesGoal checks a single validation goal in isolation. Goals #2-#6
// are unassessable (reported as not violated) while the mutator does not
// compile.
func (f *Framework) ViolatesGoal(prog *mutdsl.Program, tests []string, goal Goal) bool {
	exe, err := mutdsl.Compile(prog)
	if goal == GoalCompiles {
		return err != nil
	}
	if err != nil {
		return false
	}
	anyWrote, anyChanged, badMutant := false, false, false
	hang, crash := false, false
	for _, test := range tests {
		out := exe.Apply(test, rand.New(rand.NewSource(int64(len(test)))))
		if out.ParseFailed {
			continue // the mutator never ran; no goal is assessable
		}
		if out.FuelExhausted {
			hang = true
			continue
		}
		if out.Crash {
			crash = true
			continue
		}
		if out.Wrote {
			anyWrote = true
		}
		if out.Changed {
			anyChanged = true
			if _, cerr := cast.ParseAndCheck(out.Output); cerr != nil {
				badMutant = true
			}
		}
	}
	switch goal {
	case GoalTerminates:
		return hang
	case GoalReturns:
		return crash
	case GoalOutputs:
		return !anyWrote
	case GoalChanges:
		return anyWrote && !anyChanged
	case GoalValidMutants:
		return badMutant
	}
	return false
}

func isDuplicateName(name string, prior []string) bool {
	for _, p := range prior {
		if p == name {
			return true
		}
	}
	return false
}

// Validate checks the six goals in order (simplest first) and returns
// the first unmet goal with its feedback message, or goalAllMet.
func (f *Framework) Validate(prog *mutdsl.Program, tests []string) (Goal, string) {
	// Goal #1: μ compiles.
	exe, err := mutdsl.Compile(prog)
	if err != nil {
		return GoalCompiles, err.Error()
	}
	anyWrote, anyChanged := false, false
	for _, test := range tests {
		// Deterministic per-application stream so validation is stable.
		out := exe.Apply(test, rand.New(rand.NewSource(int64(len(test)))))
		if out.ParseFailed {
			// The test itself is invalid; the mutator never ran. Count
			// it and keep the application out of every goal's evidence.
			f.recordInputParseFailure()
			continue
		}
		switch {
		case out.FuelExhausted:
			f.recordFuelExhausted()
			return GoalTerminates, fmt.Sprintf(
				"fuel exhausted: mutator burned its %d-unit budget without terminating\n<stack trace: %s::mutate>",
				exe.Fuel(), prog.Name)
		case out.Crash:
			return GoalReturns, out.CrashMsg
		}
		if out.Wrote {
			anyWrote = true
		}
		if out.Changed {
			anyChanged = true
			// Goal #6: the mutant must compile.
			if _, cerr := cast.ParseAndCheck(out.Output); cerr != nil {
				return GoalValidMutants, fmt.Sprintf(
					"mutant fails to compile: %v", cerr)
			}
		}
	}
	if !anyWrote {
		return GoalOutputs, "mutator produced no output on any test case"
	}
	if !anyChanged {
		return GoalChanges, "mutator changed nothing on any test case"
	}
	return goalAllMet, ""
}
