package core

import (
	"errors"
	"sort"
	"time"

	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/mutcheck"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/resil"
)

// RunUnsupervised executes the fully-automatic campaign: n MetaMut
// invocations with no human intervention (the paper runs 100, yielding
// 50 valid mutators). Valid mutator names feed back into the invention
// prompt's sampling hints.
func (f *Framework) RunUnsupervised(n int) []Result {
	return f.RunUnsupervisedProgress(n, nil)
}

// RunUnsupervisedProgress is RunUnsupervised with a live-status hook:
// progress (when non-nil) is invoked after every invocation with its
// 1-based index and result.
func (f *Framework) RunUnsupervisedProgress(n int, progress func(i int, res Result)) []Result {
	var results []Result
	var priorNames []string
	for i := 0; i < n; i++ {
		res := f.GenerateOne(priorNames)
		results = append(results, res)
		if res.Outcome == Valid {
			priorNames = append(priorNames, res.Program.Name)
		}
		if progress != nil {
			progress(i+1, res)
		}
	}
	return results
}

// RunSupervised executes the expert-in-the-loop campaign over the target
// mutator set (the paper's M_s, 68 mutators over ~two weeks): the expert
// provides the invention (a refined prompt outcome bound to a concrete
// registry mutator) and rescues any invocation the automatic loop cannot
// finish — debugging the implementation, adding test cases, or fixing
// the μAST APIs.
// Invocations the circuit breaker defers (Outcome Deferred) are re-queued
// at the back of the campaign, up to MaxDeferrals times each, so a
// throttle storm delays mutators instead of dropping them.
func (f *Framework) RunSupervised(target []*muast.Mutator) []Result {
	type job struct {
		mu        *muast.Mutator
		deferrals int
	}
	queue := make([]job, 0, len(target))
	for _, mu := range target {
		queue = append(queue, job{mu: mu})
	}
	var results []Result
	var priorNames []string
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		res := f.generateSupervisedOne(j.mu, priorNames)
		if res.Outcome == Deferred && j.deferrals < f.MaxDeferrals {
			queue = append(queue, job{mu: j.mu, deferrals: j.deferrals + 1})
			continue
		}
		results = append(results, res)
		if res.Outcome == Valid {
			priorNames = append(priorNames, j.mu.Name)
		}
	}
	return results
}

func (f *Framework) generateSupervisedOne(mu *muast.Mutator, priorNames []string) Result {
	sp := f.Obs.Span("invocation")
	res := f.supervisedOne(mu, priorNames)
	sp.EndWith(map[string]any{"outcome": res.Outcome.String(),
		"mutator": mu.Name, "tokens": res.Cost.TotalTokens()})
	f.recordInvocation(res)
	return res
}

// recordRetry counts an expert retry through an API error
// (llm_retries_total{stage}).
func (f *Framework) recordRetry(stage string) {
	if f.Obs != nil {
		f.Obs.Counter("llm_retries_total", "stage").With(stage).Inc()
	}
}

func (f *Framework) supervisedOne(mu *muast.Mutator, priorNames []string) Result {
	res := Result{FixedByGoal: map[Goal]int{},
		StaticCatches: map[Goal]int{}, DynamicCatches: map[Goal]int{}}
	inv := llm.Invention{
		Name:        mu.Name,
		Description: mu.Description,
		Creative:    mu.Creative,
	}
	res.Invention = inv
	res.Cost.QAInvention = 1

	// The expert retries through API errors with bounded, seeded backoff
	// rather than looping forever; a breaker denial defers the whole
	// invocation and an exhausted budget abandons it as APIError.
	sp := f.stageSpan("synthesize")
	var prog *mutdsl.Program
	rt := f.retrier(llm.StageImplementation)
	for {
		p, usage, err := f.Client.Synthesize(inv, f.Params)
		res.Cost.QAImplementation++
		res.Cost.ImplementationTokens += usage.TotalTokens()
		res.Cost.ImplementationTime += usage.Wait
		res.Cost.WaitTime += usage.Wait
		if err == nil {
			prog = p
			break
		}
		if errors.Is(err, resil.ErrOpen) {
			sp.End()
			res.Outcome = Deferred
			return res
		}
		f.recordRetry(llm.StageImplementation)
		if wait, ok := rt.Next(); ok {
			res.Cost.WaitTime += wait
			continue
		}
		sp.End()
		res.Outcome = APIError
		return res
	}
	sp.End()
	prog.Name = mu.Name
	prog.Description = mu.Description

	sp = f.stageSpan("generate-tests")
	var tests []string
	rt = f.retrier(llm.StageTestGen)
	for {
		t, usage, err := f.Client.GenerateTests(inv, f.TestsPerMutator, f.Params)
		res.Cost.QABugFix++
		res.Cost.BugFixTokens += usage.TotalTokens()
		res.Cost.BugFixTime += usage.Wait
		res.Cost.WaitTime += usage.Wait
		if err == nil {
			tests = t
			break
		}
		if errors.Is(err, resil.ErrOpen) {
			sp.End()
			res.Outcome = Deferred
			return res
		}
		f.recordRetry(llm.StageTestGen)
		if wait, ok := rt.Next(); ok {
			res.Cost.WaitTime += wait
			continue
		}
		sp.End()
		res.Outcome = APIError
		return res
	}
	sp.End()

	refineSpan := f.stageSpan("refine")
	defer refineSpan.End()
	lastGoal := goalAllMet
	rt = f.retrier(llm.StageBugFix)
	for attempt := 0; ; attempt++ {
		goal, feedback, static := f.diagnose(prog, tests, &res)
		if goal == goalAllMet {
			break
		}
		f.recordCatch(goal, lastGoal, static, &res)
		lastGoal = goal
		if attempt >= f.MaxRepairAttempts {
			// Expert intervention: diagnose and fix directly.
			res.ExpertInterventions++
			if f.Obs != nil {
				f.Obs.Counter("expert_interventions_total").With().Inc()
			}
			prog = expertFix(prog)
			continue
		}
		fixed, usage, err := f.Client.Fix(prog, int(goal), feedback, f.Params)
		res.Cost.QABugFix++
		res.Cost.BugFixTokens += usage.TotalTokens()
		res.Cost.BugFixTime += usage.Wait
		res.Cost.WaitTime += usage.Wait
		if err != nil {
			if errors.Is(err, resil.ErrOpen) {
				res.Outcome = Deferred
				return res
			}
			f.recordRetry(llm.StageBugFix)
			if wait, ok := rt.Next(); ok {
				res.Cost.WaitTime += wait
				continue // expert retries through throttling
			}
			res.Outcome = APIError
			return res
		}
		rt = f.retrier(llm.StageBugFix) // fresh budget per successful round
		if static {
			if mutcheck.Violates(prog, int(goal)) && !mutcheck.Violates(fixed, int(goal)) {
				res.FixedByGoal[goal]++
			}
		} else if f.ViolatesGoal(prog, tests, goal) && !f.ViolatesGoal(fixed, tests, goal) {
			res.FixedByGoal[goal]++
		}
		prog = fixed
	}
	res.Program = prog
	// The expert also repairs post-hoc mismatches, so every supervised
	// mutator ends Valid (all 68 M_s mutators are confirmed valid).
	res.Outcome = Valid
	return res
}

// expertFix is the author stepping in: all residual defects removed, and
// — unlike the LLM's flag-level repairs — an inherently broken rewrite is
// replaced with a known-good implementation for the target kind. Without
// this, a "Destruct FunctionDecl"-style invention could never converge.
func expertFix(p *mutdsl.Program) *mutdsl.Program {
	fixed := p.Clone()
	fixed.SyntaxErr = ""
	fixed.HangBug = false
	fixed.CrashBug = false
	fixed.NoOutputBug = false
	fixed.NoRewriteBug = false
	fixed.BadMutantBug = false
	fixed.Steps = mutdsl.SafeStepsFor(fixed.TargetKind)
	return fixed
}

// ---------------------------------------------------------------------
// Campaign statistics (Tables 1-3, Section 4.1)
// ---------------------------------------------------------------------

// Summary is a min/max/median/mean row as printed in Tables 2 and 3.
type Summary struct {
	Min, Max, Median, Mean float64
}

// Summarize computes a Summary over values; the zero Summary for empty
// input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: sorted[len(sorted)/2],
		Mean:   sum / float64(len(sorted)),
	}
}

// CampaignStats aggregates a campaign's results.
type CampaignStats struct {
	Results []Result

	Invocations int
	ByOutcome   map[Outcome]int
	// FixedByGoal reproduces Table 1: refinement-loop repairs by goal.
	FixedByGoal map[Goal]int
	// StaticCatches / DynamicCatches split defect detections between the
	// mutcheck linter and the compile-and-run validator; TokensSaved is
	// the estimated feedback-token spend the static rounds avoided.
	StaticCatches  map[Goal]int
	DynamicCatches map[Goal]int
	TokensSaved    int

	// Token/QA/time summaries over valid mutators (Table 2's rows).
	TokensInvention      Summary
	TokensImplementation Summary
	TokensBugFix         Summary
	TokensTotal          Summary
	QABugFix             Summary
	QATotal              Summary
	TimeInvention        Summary // seconds
	TimeImplementation   Summary
	TimeBugFix           Summary
	TimeTotal            Summary

	// Wait/prepare per valid mutator (Table 3), in seconds per QA round.
	WaitPerRound    Summary
	PreparePerRound Summary

	// MeanDollarCost is the ~$0.5 figure.
	MeanDollarCost float64
}

// Analyze computes the campaign statistics.
func Analyze(results []Result) *CampaignStats {
	st := &CampaignStats{
		Results:        results,
		Invocations:    len(results),
		ByOutcome:      map[Outcome]int{},
		FixedByGoal:    map[Goal]int{},
		StaticCatches:  map[Goal]int{},
		DynamicCatches: map[Goal]int{},
	}
	var tokInv, tokImpl, tokFix, tokTot []float64
	var qaFix, qaTot []float64
	var tInv, tImpl, tFix, tTot []float64
	var waits, preps []float64
	dollars := 0.0
	valid := 0
	for _, r := range results {
		st.ByOutcome[r.Outcome]++
		for g, n := range r.FixedByGoal {
			st.FixedByGoal[g] += n
		}
		for g, n := range r.StaticCatches {
			st.StaticCatches[g] += n
			st.TokensSaved += llm.DynamicFeedbackTokens[int(g)] * n
		}
		for g, n := range r.DynamicCatches {
			st.DynamicCatches[g] += n
		}
		if r.Outcome != Valid {
			continue
		}
		valid++
		c := r.Cost
		tokInv = append(tokInv, float64(c.InventionTokens))
		tokImpl = append(tokImpl, float64(c.ImplementationTokens))
		tokFix = append(tokFix, float64(c.BugFixTokens))
		tokTot = append(tokTot, float64(c.TotalTokens()))
		qaFix = append(qaFix, float64(c.QABugFix))
		qaTot = append(qaTot, float64(c.TotalQA()))
		tInv = append(tInv, c.InventionTime.Seconds())
		tImpl = append(tImpl, c.ImplementationTime.Seconds())
		tFix = append(tFix, c.BugFixTime.Seconds())
		tTot = append(tTot, c.TotalTime().Seconds())
		rounds := float64(c.TotalQA())
		if rounds > 0 {
			waits = append(waits, c.WaitTime.Seconds()/rounds)
			preps = append(preps, c.PrepareTime.Seconds()/rounds)
		}
		dollars += c.DollarCost()
	}
	st.TokensInvention = Summarize(tokInv)
	st.TokensImplementation = Summarize(tokImpl)
	st.TokensBugFix = Summarize(tokFix)
	st.TokensTotal = Summarize(tokTot)
	st.QABugFix = Summarize(qaFix)
	st.QATotal = Summarize(qaTot)
	st.TimeInvention = Summarize(tInv)
	st.TimeImplementation = Summarize(tImpl)
	st.TimeBugFix = Summarize(tFix)
	st.TimeTotal = Summarize(tTot)
	st.WaitPerRound = Summarize(waits)
	st.PreparePerRound = Summarize(preps)
	if valid > 0 {
		st.MeanDollarCost = dollars / float64(valid)
	}
	return st
}

// ValidCount returns the number of valid mutators.
func (st *CampaignStats) ValidCount() int { return st.ByOutcome[Valid] }

// SurvivedInvocations returns invocations that were not killed by API
// errors (the paper's "remaining 76") or left deferred by the breaker.
func (st *CampaignStats) SurvivedInvocations() int {
	return st.Invocations - st.ByOutcome[APIError] - st.ByOutcome[Deferred]
}

// TotalFixes returns the Table-1 grand total.
func (st *CampaignStats) TotalFixes() int {
	n := 0
	for _, v := range st.FixedByGoal {
		n += v
	}
	return n
}

// MeanGenerationTime returns the wall-clock mean per valid mutator.
func (st *CampaignStats) MeanGenerationTime() time.Duration {
	return time.Duration(st.TimeTotal.Mean * float64(time.Second))
}
