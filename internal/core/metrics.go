package core

import "github.com/icsnju/metamut-go/internal/obs"

// RegisterMetrics pre-registers every metric family the generation
// pipeline emits, so snapshots (and docs/METRICS.md's live-registry
// test) see the full schema even before the first invocation fires.
// Families here must match the inline registration sites in
// metamut.go and campaign.go exactly — obs fixes a family's labels at
// first registration, so a drift fails loudly.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("invocations_total", "outcome")
	reg.Counter("refinement_fixes_total", "goal")
	reg.Histogram("invocation_qa_rounds", obs.LinearBuckets(1, 4, 10))
	reg.Histogram("prepare_seconds", nil)
	reg.Counter("static_catches_total", "goal")
	reg.Counter("mutator_input_parse_failures_total")
	reg.Counter("mutdsl_fuel_exhausted_total")
	reg.Counter("expert_interventions_total")
	reg.Counter("llm_retries_total", "stage")
}
