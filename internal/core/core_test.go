package core

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/mutdsl"
)

func TestUnsupervisedCampaignShape(t *testing.T) {
	fw := New(llm.NewSimClient(2024), 77)
	results := fw.RunUnsupervised(100)
	st := Analyze(results)

	if st.Invocations != 100 {
		t.Fatalf("invocations = %d", st.Invocations)
	}
	apiErr := st.ByOutcome[APIError]
	if apiErr < 8 || apiErr > 40 {
		t.Errorf("API errors = %d, want near the paper's 24/100", apiErr)
	}
	survived := st.SurvivedInvocations()
	valid := st.ValidCount()
	validRate := float64(valid) / float64(survived)
	if validRate < 0.45 || validRate > 0.85 {
		t.Errorf("valid rate = %.2f (%d/%d), want near the paper's 65.8%%",
			validRate, valid, survived)
	}
	// Table 1 shape: goal #1 fixes dominate, then goal #6; zero goal #2.
	fx := st.FixedByGoal
	if fx[GoalTerminates] != 0 {
		t.Errorf("hang fixes = %d, paper reports 0", fx[GoalTerminates])
	}
	if fx[GoalCompiles] == 0 || fx[GoalValidMutants] == 0 {
		t.Fatalf("missing fix classes: %v", fx)
	}
	if fx[GoalCompiles] < fx[GoalValidMutants] {
		t.Errorf("goal#1 fixes (%d) should outnumber goal#6 (%d)",
			fx[GoalCompiles], fx[GoalValidMutants])
	}
	if fx[GoalValidMutants] < fx[GoalOutputs] {
		t.Errorf("goal#6 fixes (%d) should outnumber goal#4 (%d)",
			fx[GoalValidMutants], fx[GoalOutputs])
	}
	t.Logf("outcomes=%v fixes=%v total fixes=%d", st.ByOutcome, fx, st.TotalFixes())
}

func TestCostAccountingShape(t *testing.T) {
	fw := New(llm.NewSimClient(9), 5)
	st := Analyze(fw.RunUnsupervised(100))

	// Table 2 shape checks (loose bands around the paper's numbers).
	if st.TokensInvention.Mean < 500 || st.TokensInvention.Mean > 2500 {
		t.Errorf("invention tokens mean = %.0f, want ~1158", st.TokensInvention.Mean)
	}
	if st.TokensImplementation.Mean < 1200 || st.TokensImplementation.Mean > 4500 {
		t.Errorf("implementation tokens mean = %.0f, want ~2501",
			st.TokensImplementation.Mean)
	}
	if st.TokensTotal.Mean < 3000 || st.TokensTotal.Mean > 20000 {
		t.Errorf("total tokens mean = %.0f, want ~8595", st.TokensTotal.Mean)
	}
	// Bug-fixing should dominate generation time (81.2% in the paper).
	frac := st.TimeBugFix.Mean / st.TimeTotal.Mean
	if frac < 0.5 {
		t.Errorf("bug-fixing time fraction = %.2f, want the dominant share", frac)
	}
	// ~$0.5 per mutator.
	if st.MeanDollarCost < 0.15 || st.MeanDollarCost > 1.5 {
		t.Errorf("mean cost = $%.2f, want ~$0.5", st.MeanDollarCost)
	}
	// Table 3: wait dominates prepare on average.
	if st.WaitPerRound.Mean <= st.PreparePerRound.Mean {
		t.Errorf("wait/round %.1fs should exceed prepare/round %.1fs",
			st.WaitPerRound.Mean, st.PreparePerRound.Mean)
	}
	t.Logf("tokens total mean=%.0f qa total mean=%.1f time total mean=%.0fs $=%.2f wait=%.0fs prep=%.0fs",
		st.TokensTotal.Mean, st.QATotal.Mean, st.TimeTotal.Mean,
		st.MeanDollarCost, st.WaitPerRound.Mean, st.PreparePerRound.Mean)
}

func TestSupervisedCampaignAllValid(t *testing.T) {
	fw := New(llm.NewSimClient(5), 3)
	target := muast.BySet(muast.Supervised)
	results := fw.RunSupervised(target)
	if len(results) != len(target) {
		t.Fatalf("results = %d, want %d", len(results), len(target))
	}
	interventions := 0
	for i, r := range results {
		if r.Outcome != Valid {
			t.Errorf("supervised result %d outcome = %v", i, r.Outcome)
		}
		if r.Program == nil || r.Program.Name != target[i].Name {
			t.Errorf("result %d not bound to %s", i, target[i].Name)
		}
		interventions += r.ExpertInterventions
	}
	if interventions == 0 {
		t.Error("expert never intervened across 68 supervised mutators (suspicious)")
	}
}

func TestValidateGoalsOrdering(t *testing.T) {
	fw := New(llm.NewSimClient(1), 1)
	tests := []string{
		"int main(void) { int a = 1 + 2; int b = a * 3; return a + b; }",
	}
	// A program with every defect must fail at goal #1 first.
	prog := &mutdsl.Program{
		Name: "X", Description: "d", TargetKind: cast.KindBinaryOperator,
		Steps:     []mutdsl.Step{{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)"}},
		SyntaxErr: "boom", HangBug: true, CrashBug: true, NoOutputBug: true,
	}
	goal, _ := fw.Validate(prog, tests)
	if goal != GoalCompiles {
		t.Fatalf("first unmet goal = %v, want #1", goal)
	}
	prog.SyntaxErr = ""
	goal, _ = fw.Validate(prog, tests)
	if goal != GoalTerminates {
		t.Fatalf("next unmet goal = %v, want #2", goal)
	}
	prog.HangBug = false
	goal, _ = fw.Validate(prog, tests)
	if goal != GoalOutputs { // crash needs an empty instance list; outputs checked next
		t.Logf("goal after hang fix: %v", goal)
	}
	prog.NoOutputBug = false
	prog.CrashBug = false
	goal, _ = fw.Validate(prog, tests)
	if goal != 0 {
		t.Fatalf("healthy mutator fails goal %v", goal)
	}
}

func TestBadMutantDetected(t *testing.T) {
	fw := New(llm.NewSimClient(1), 1)
	tests := []string{
		"int main(void) { int a = 1 + 2; int b = a * 3; return a + b; }",
	}
	prog := &mutdsl.Program{
		Name: "Y", Description: "d", TargetKind: cast.KindBinaryOperator,
		Steps:        []mutdsl.Step{{Op: mutdsl.OpWrapText, Pre: "(", Post: " + 0)"}},
		BadMutantBug: true,
	}
	goal, feedback := fw.Validate(prog, tests)
	if goal != GoalValidMutants {
		t.Fatalf("goal = %v (%s), want #6", goal, feedback)
	}
}
