package core

import (
	"testing"

	"github.com/icsnju/metamut-go/internal/llm"
)

// TestStaticAnalysisCatchRate is the shift-left acceptance gate: over a
// deterministic seeded campaign, the mutcheck linter must report at
// least half of all goal #3/#5/#6 defects before any compile-and-run
// round spends prepare time.
func TestStaticAnalysisCatchRate(t *testing.T) {
	fw := New(llm.NewSimClient(2024), 77)
	st := Analyze(fw.RunUnsupervised(80))

	static, dynamic := 0, 0
	for _, g := range []Goal{GoalReturns, GoalChanges, GoalValidMutants} {
		static += st.StaticCatches[g]
		dynamic += st.DynamicCatches[g]
	}
	if static+dynamic == 0 {
		t.Fatal("campaign injected no goal #3/#5/#6 defects (suspicious)")
	}
	rate := float64(static) / float64(static+dynamic)
	t.Logf("static=%d dynamic=%d rate=%.2f tokens saved=%d",
		static, dynamic, rate, st.TokensSaved)
	if rate < 0.5 {
		t.Errorf("static catch rate = %.2f (%d/%d), want >= 0.5",
			rate, static, static+dynamic)
	}
	if st.TokensSaved <= 0 {
		t.Errorf("TokensSaved = %d, want > 0 with %d static catches",
			st.TokensSaved, static)
	}
	// Goal #1 (syntax) and #2 (halting) remain dynamic-only.
	if st.StaticCatches[GoalCompiles] != 0 || st.StaticCatches[GoalTerminates] != 0 {
		t.Errorf("goals #1/#2 must stay dynamic, got static catches %v",
			st.StaticCatches)
	}
}

// TestNoStaticAblation checks the -no-static ablation: with the linter
// disabled every defect is caught dynamically and the campaign still
// converges to the same loose validity band.
func TestNoStaticAblation(t *testing.T) {
	fw := New(llm.NewSimClient(2024), 77)
	fw.NoStatic = true
	st := Analyze(fw.RunUnsupervised(80))

	for g, n := range st.StaticCatches {
		if n != 0 {
			t.Errorf("NoStatic campaign recorded static catch goal %v ×%d", g, n)
		}
	}
	if st.TokensSaved != 0 {
		t.Errorf("NoStatic campaign saved %d tokens, want 0", st.TokensSaved)
	}
	dynamic := 0
	for _, n := range st.DynamicCatches {
		dynamic += n
	}
	if dynamic == 0 {
		t.Error("NoStatic campaign caught nothing dynamically")
	}
	survived := st.SurvivedInvocations()
	if survived > 0 {
		rate := float64(st.ValidCount()) / float64(survived)
		if rate < 0.4 || rate > 0.9 {
			t.Errorf("NoStatic valid rate = %.2f, out of loose band", rate)
		}
	}
}
