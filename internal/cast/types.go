package cast

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the builtin scalar types.
type BasicKind int

// Builtin scalar kinds, ordered by integer conversion rank where that is
// meaningful.
const (
	Void BasicKind = iota
	Bool
	Char
	SChar
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	LongLong
	ULongLong
	Float
	Double
	LongDouble
	ComplexDouble
)

var basicNames = [...]string{
	Void: "void", Bool: "_Bool", Char: "char", SChar: "signed char",
	UChar: "unsigned char", Short: "short", UShort: "unsigned short",
	Int: "int", UInt: "unsigned int", Long: "long", ULong: "unsigned long",
	LongLong: "long long", ULongLong: "unsigned long long",
	Float: "float", Double: "double", LongDouble: "long double",
	ComplexDouble: "_Complex double",
}

// String returns the C spelling of the basic kind.
func (k BasicKind) String() string { return basicNames[k] }

// Type is the interface implemented by all C types.
type Type interface {
	// CString renders the type as it would be spelled in a cast, e.g.
	// "unsigned int" or "struct s *".
	CString() string
	typeNode()
}

// BasicType is a builtin scalar type.
type BasicType struct{ K BasicKind }

func (t *BasicType) CString() string { return t.K.String() }
func (*BasicType) typeNode()         {}

// PointerType is a pointer to Elem.
type PointerType struct{ Elem QualType }

func (t *PointerType) CString() string { return t.Elem.CString() + " *" }
func (*PointerType) typeNode()         {}

// ArrayType is a (possibly multi-dimensional via nesting) array.
// Size < 0 means an incomplete array type ("[]").
type ArrayType struct {
	Elem QualType
	Size int64
}

func (t *ArrayType) CString() string {
	if t.Size < 0 {
		return t.Elem.CString() + " []"
	}
	return fmt.Sprintf("%s [%d]", t.Elem.CString(), t.Size)
}
func (*ArrayType) typeNode() {}

// RecordType is a struct or union type, referring to its declaration.
type RecordType struct{ Decl *RecordDecl }

func (t *RecordType) CString() string {
	kw := "struct"
	if t.Decl.IsUnion {
		kw = "union"
	}
	if t.Decl.Name == "" {
		return kw + " <anonymous>"
	}
	return kw + " " + t.Decl.Name
}
func (*RecordType) typeNode() {}

// EnumType is an enumerated type.
type EnumType struct{ Decl *EnumDecl }

func (t *EnumType) CString() string {
	if t.Decl.Name == "" {
		return "enum <anonymous>"
	}
	return "enum " + t.Decl.Name
}
func (*EnumType) typeNode() {}

// FuncType is a function type.
type FuncType struct {
	Ret      QualType
	Params   []QualType
	Variadic bool
}

func (t *FuncType) CString() string {
	var parts []string
	for _, p := range t.Params {
		parts = append(parts, p.CString())
	}
	if t.Variadic {
		parts = append(parts, "...")
	}
	return fmt.Sprintf("%s (%s)", t.Ret.CString(), strings.Join(parts, ", "))
}
func (*FuncType) typeNode() {}

// TypedefType is a named alias; Underlying is fully resolved.
type TypedefType struct {
	Name       string
	Underlying QualType
}

func (t *TypedefType) CString() string { return t.Name }
func (*TypedefType) typeNode()         {}

// Qualifiers is a bitmask of type qualifiers.
type Qualifiers uint8

// Qualifier bits.
const (
	QualConst Qualifiers = 1 << iota
	QualVolatile
	QualRestrict
)

func (q Qualifiers) String() string {
	var parts []string
	if q&QualConst != 0 {
		parts = append(parts, "const")
	}
	if q&QualVolatile != 0 {
		parts = append(parts, "volatile")
	}
	if q&QualRestrict != 0 {
		parts = append(parts, "restrict")
	}
	return strings.Join(parts, " ")
}

// QualType pairs a type with its qualifiers. The zero QualType is "no
// type" (unresolved).
type QualType struct {
	T Type
	Q Qualifiers
}

// IsNil reports whether the QualType carries no type.
func (qt QualType) IsNil() bool { return qt.T == nil }

// CString renders the qualified type in cast position.
func (qt QualType) CString() string {
	if qt.T == nil {
		return "<nil>"
	}
	if qt.Q == 0 {
		return qt.T.CString()
	}
	return qt.Q.String() + " " + qt.T.CString()
}

// WithQuals returns the type with extra qualifiers added.
func (qt QualType) WithQuals(q Qualifiers) QualType {
	return QualType{T: qt.T, Q: qt.Q | q}
}

// Unqualified strips all qualifiers.
func (qt QualType) Unqualified() QualType { return QualType{T: qt.T} }

// Canonical resolves typedef chains.
func (qt QualType) Canonical() QualType {
	q := qt.Q
	t := qt.T
	for {
		td, ok := t.(*TypedefType)
		if !ok {
			return QualType{T: t, Q: q}
		}
		q |= td.Underlying.Q
		t = td.Underlying.T
	}
}

// Basic returns the canonical basic kind, or (0, false) if the type is not
// a basic type.
func (qt QualType) Basic() (BasicKind, bool) {
	if qt.IsNil() {
		return 0, false
	}
	bt, ok := qt.Canonical().T.(*BasicType)
	if !ok {
		return 0, false
	}
	return bt.K, true
}

// IsVoid reports whether the type is void.
func (qt QualType) IsVoid() bool { k, ok := qt.Basic(); return ok && k == Void }

// IsInteger reports whether the type is an integer (including _Bool, char
// and enum types).
func (qt QualType) IsInteger() bool {
	if qt.IsNil() {
		return false
	}
	if _, ok := qt.Canonical().T.(*EnumType); ok {
		return true
	}
	k, ok := qt.Basic()
	return ok && k >= Bool && k <= ULongLong
}

// IsFloating reports whether the type is a real floating type.
func (qt QualType) IsFloating() bool {
	k, ok := qt.Basic()
	return ok && (k == Float || k == Double || k == LongDouble)
}

// IsComplex reports whether the type is a complex floating type.
func (qt QualType) IsComplex() bool {
	k, ok := qt.Basic()
	return ok && k == ComplexDouble
}

// IsArithmetic reports whether the type is integer or floating.
func (qt QualType) IsArithmetic() bool {
	return qt.IsInteger() || qt.IsFloating() || qt.IsComplex()
}

// IsPointer reports whether the canonical type is a pointer.
func (qt QualType) IsPointer() bool {
	if qt.IsNil() {
		return false
	}
	_, ok := qt.Canonical().T.(*PointerType)
	return ok
}

// IsArray reports whether the canonical type is an array.
func (qt QualType) IsArray() bool {
	if qt.IsNil() {
		return false
	}
	_, ok := qt.Canonical().T.(*ArrayType)
	return ok
}

// IsRecord reports whether the canonical type is a struct or union.
func (qt QualType) IsRecord() bool {
	if qt.IsNil() {
		return false
	}
	_, ok := qt.Canonical().T.(*RecordType)
	return ok
}

// IsFunc reports whether the canonical type is a function type.
func (qt QualType) IsFunc() bool {
	if qt.IsNil() {
		return false
	}
	_, ok := qt.Canonical().T.(*FuncType)
	return ok
}

// IsScalar reports whether the type is arithmetic or pointer — i.e. usable
// in a boolean context.
func (qt QualType) IsScalar() bool { return qt.IsArithmetic() || qt.IsPointer() }

// IsUnsigned reports whether the type is an unsigned integer type.
func (qt QualType) IsUnsigned() bool {
	k, ok := qt.Basic()
	if !ok {
		return false
	}
	switch k {
	case Bool, UChar, UShort, UInt, ULong, ULongLong:
		return true
	}
	return false
}

// PointeeType returns the pointed-to type for pointers, or decayed element
// type for arrays; ok is false otherwise.
func (qt QualType) PointeeType() (QualType, bool) {
	switch t := qt.Canonical().T.(type) {
	case *PointerType:
		return t.Elem, true
	case *ArrayType:
		return t.Elem, true
	}
	return QualType{}, false
}

// Decay converts array types to pointer-to-element and function types to
// pointer-to-function, per C's usual conversions.
func (qt QualType) Decay() QualType {
	switch t := qt.Canonical().T.(type) {
	case *ArrayType:
		return QualType{T: &PointerType{Elem: t.Elem}}
	case *FuncType:
		return QualType{T: &PointerType{Elem: QualType{T: t}}}
	}
	return qt
}

// Size returns the byte size of the type under an LP64 model, or -1 for
// incomplete types.
func (qt QualType) Size() int64 {
	switch t := qt.Canonical().T.(type) {
	case *BasicType:
		switch t.K {
		case Void:
			return -1
		case Bool, Char, SChar, UChar:
			return 1
		case Short, UShort:
			return 2
		case Int, UInt, Float:
			return 4
		case Long, ULong, LongLong, ULongLong, Double:
			return 8
		case LongDouble, ComplexDouble:
			return 16
		}
	case *PointerType:
		return 8
	case *ArrayType:
		if t.Size < 0 {
			return -1
		}
		es := t.Elem.Size()
		if es < 0 {
			return -1
		}
		return es * t.Size
	case *RecordType:
		if !t.Decl.Complete {
			return -1
		}
		var total, maxAlign, maxField int64 = 0, 1, 0
		for _, f := range t.Decl.Fields {
			fs := f.Ty.Size()
			if fs < 0 {
				return -1
			}
			al := fieldAlign(f.Ty)
			if al > maxAlign {
				maxAlign = al
			}
			if t.Decl.IsUnion {
				if fs > maxField {
					maxField = fs
				}
			} else {
				total = roundUp(total, al) + fs
			}
		}
		if t.Decl.IsUnion {
			total = maxField
		}
		if total == 0 {
			return 0
		}
		return roundUp(total, maxAlign)
	case *EnumType:
		return 4
	case *FuncType:
		return -1
	}
	return -1
}

func fieldAlign(qt QualType) int64 {
	sz := qt.Size()
	switch {
	case sz <= 0:
		return 1
	case sz >= 8:
		return 8
	default:
		// Round down to power of two.
		al := int64(1)
		for al*2 <= sz {
			al *= 2
		}
		return al
	}
}

func roundUp(n, align int64) int64 { return (n + align - 1) / align * align }

// basicSingletons interns one BasicType per kind: basic types are
// immutable and compared by kind, so every producer (parser, checker,
// arithmetic conversions) can share these instead of allocating.
var basicSingletons = func() [ComplexDouble + 1]*BasicType {
	var t [ComplexDouble + 1]*BasicType
	for k := range t {
		t[k] = &BasicType{K: BasicKind(k)}
	}
	return t
}()

// basicTy returns the interned unqualified QualType for a basic kind.
func basicTy(k BasicKind) QualType {
	if k < 0 || int(k) >= len(basicSingletons) {
		return QualType{T: &BasicType{K: k}}
	}
	return QualType{T: basicSingletons[k]}
}

// Convenience constructors for common types.
var (
	VoidTy          = basicTy(Void)
	BoolTy          = basicTy(Bool)
	CharTy          = basicTy(Char)
	IntTy           = basicTy(Int)
	UIntTy          = basicTy(UInt)
	LongTy          = basicTy(Long)
	ULongTy         = basicTy(ULong)
	LongLongTy      = basicTy(LongLong)
	ULongLongTy     = basicTy(ULongLong)
	ShortTy         = basicTy(Short)
	UShortTy        = basicTy(UShort)
	UCharTy         = basicTy(UChar)
	FloatTy         = basicTy(Float)
	DoubleTy        = basicTy(Double)
	LongDoubleTy    = basicTy(LongDouble)
	ComplexDoubleTy = basicTy(ComplexDouble)
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem QualType) QualType {
	return QualType{T: &PointerType{Elem: elem}}
}

// ArrayOf returns an array type of size n over elem.
func ArrayOf(elem QualType, n int64) QualType {
	return QualType{T: &ArrayType{Elem: elem, Size: n}}
}

// SameType reports structural equality of canonical types, ignoring
// top-level qualifiers.
func SameType(a, b QualType) bool {
	a, b = a.Canonical(), b.Canonical()
	if a.T == nil || b.T == nil {
		return a.T == b.T
	}
	switch at := a.T.(type) {
	case *BasicType:
		bt, ok := b.T.(*BasicType)
		return ok && at.K == bt.K
	case *PointerType:
		bt, ok := b.T.(*PointerType)
		return ok && SameType(at.Elem, bt.Elem)
	case *ArrayType:
		bt, ok := b.T.(*ArrayType)
		return ok && at.Size == bt.Size && SameType(at.Elem, bt.Elem)
	case *RecordType:
		bt, ok := b.T.(*RecordType)
		return ok && at.Decl == bt.Decl
	case *EnumType:
		bt, ok := b.T.(*EnumType)
		return ok && at.Decl == bt.Decl
	case *FuncType:
		bt, ok := b.T.(*FuncType)
		if !ok || at.Variadic != bt.Variadic || len(at.Params) != len(bt.Params) {
			return false
		}
		if !SameType(at.Ret, bt.Ret) {
			return false
		}
		for i := range at.Params {
			if !SameType(at.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// UsualArithmeticConversion computes the common type of two arithmetic
// operands per (a simplified model of) C's usual arithmetic conversions.
func UsualArithmeticConversion(a, b QualType) QualType {
	if a.IsComplex() || b.IsComplex() {
		return ComplexDoubleTy
	}
	ak, aok := a.Basic()
	bk, bok := b.Basic()
	if !aok {
		if a.IsInteger() { // enum
			ak, aok = Int, true
		}
	}
	if !bok {
		if b.IsInteger() {
			bk, bok = Int, true
		}
	}
	if !aok || !bok {
		return IntTy
	}
	if ak < bk {
		ak = bk
	}
	if ak < Int {
		ak = Int // integer promotion
	}
	return basicTy(ak)
}

// FormatAsDecl renders a declaration of name with type qt, e.g.
// FormatAsDecl(int[4], "x") == "int x[4]". It handles the inside-out C
// declarator syntax for pointers, arrays and functions.
func FormatAsDecl(qt QualType, name string) string {
	if qt.IsNil() {
		return name
	}
	return formatDeclarator(qt, name)
}

func formatDeclarator(qt QualType, inner string) string {
	prefix := ""
	if qt.Q != 0 {
		prefix = qt.Q.String() + " "
	}
	switch t := qt.T.(type) {
	case *BasicType:
		if inner == "" {
			return prefix + t.K.String()
		}
		return prefix + t.K.String() + " " + inner
	case *TypedefType:
		if inner == "" {
			return prefix + t.Name
		}
		return prefix + t.Name + " " + inner
	case *RecordType, *EnumType:
		s := qt.T.CString()
		if qt.Q != 0 {
			s = qt.Q.String() + " " + s
		}
		if inner == "" {
			return s
		}
		return s + " " + inner
	case *PointerType:
		in := "*" + prefix + inner
		if needsParens(t.Elem.T) {
			in = "(" + in + ")"
		}
		return formatDeclarator(t.Elem, in)
	case *ArrayType:
		dim := "[]"
		if t.Size >= 0 {
			dim = fmt.Sprintf("[%d]", t.Size)
		}
		return formatDeclarator(t.Elem, prefix+inner+dim)
	case *FuncType:
		var parts []string
		for _, p := range t.Params {
			parts = append(parts, FormatAsDecl(p, ""))
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		if len(parts) == 0 {
			parts = []string{"void"}
		}
		return formatDeclarator(t.Ret,
			prefix+inner+"("+strings.Join(parts, ", ")+")")
	}
	return inner
}

func needsParens(t Type) bool {
	switch t.(type) {
	case *ArrayType, *FuncType:
		return true
	}
	return false
}

// DefaultValueExpr returns a C expression spelling a reasonable default
// value of type qt ("0", "0.0", "{0}", ...). Used by mutators that replace
// removed results, mirroring Figure 4 of the paper.
func DefaultValueExpr(qt QualType) string {
	switch {
	case qt.IsNil() || qt.IsVoid():
		return ""
	case qt.IsFloating() || qt.IsComplex():
		return "0.0"
	case qt.IsPointer():
		return "0"
	case qt.IsRecord() || qt.IsArray():
		return "{0}"
	default:
		return "0"
	}
}
