package cast

import (
	"strings"
	"testing"
)

// TestSemaPointerArithmetic covers the pointer-type rules used heavily by
// the pointer-rewriting mutators.
func TestSemaPointerArithmetic(t *testing.T) {
	good := []string{
		"int f(int *p) { return *(p + 3); }",
		"int f(int *p, int *q) { return (int)(p - q); }",
		"int f(int *p) { return p[0] + 1; }",
		"char f(char *s) { return *(s + 1); }",
		"int f(int a[4]) { return *(a + 2); }",
		"int f(int *p) { int *q = p + 1; return *q; }",
		"long f(int *p) { return (long)p; }",
		"int f(void) { int x = 1; int *p = &x; return *p; }",
		"int f(void) { int a[2][3]; int (*row)[3] = a; return row[1][2]; }",
	}
	for _, src := range good {
		if _, err := ParseAndCheck(src); err != nil {
			t.Errorf("ParseAndCheck(%q): %v", src, err)
		}
	}
	bad := []struct{ src, want string }{
		{"int f(int *p, int *q) { return (int)(p * q); }", "invalid operands"},
		{"int f(int *p, int *q) { return (int)(p + q); }", "invalid operands"},
		{"int f(void) { int x; return *x; }", "indirection requires pointer"},
		{"int f(void) { return *3; }", "indirection requires pointer"},
	}
	for _, tc := range bad {
		_, err := ParseAndCheck(tc.src)
		if err == nil {
			t.Errorf("ParseAndCheck(%q) passed", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q error %q missing %q", tc.src, err, tc.want)
		}
	}
}

func TestSemaFunctionPointers(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int apply(int (*op)(int, int), int x, int y) { return op(x, y); }
int main(void) { return apply(add, 1, 2); }
`
	if _, err := ParseAndCheck(src); err != nil {
		t.Fatalf("function pointers rejected: %v", err)
	}
	// (*f)(args) — the CallViaPointerDeref mutator's output shape.
	src2 := `
int add(int a, int b) { return a + b; }
int main(void) { return (*add)(1, 2); }
`
	if _, err := ParseAndCheck(src2); err != nil {
		t.Fatalf("(*f)(args) rejected: %v", err)
	}
}

func TestSemaEnumsAsInts(t *testing.T) {
	src := `
enum color { RED, GREEN = 5, BLUE };
int f(enum color c) { return c + RED; }
int main(void) {
    enum color c = GREEN;
    switch (c) {
    case RED: return 0;
    case GREEN: return 1;
    default: return 2;
    }
}
`
	tu, err := ParseAndCheck(src)
	if err != nil {
		t.Fatalf("enum program rejected: %v", err)
	}
	// Enumerator values resolve.
	ed := tu.Decls[0].(*EnumDecl)
	wants := map[string]int64{"RED": 0, "GREEN": 5, "BLUE": 6}
	for _, c := range ed.Constants {
		if c.Num != wants[c.Name] {
			t.Errorf("%s = %d, want %d", c.Name, c.Num, wants[c.Name])
		}
	}
}

func TestSemaTypedefChains(t *testing.T) {
	src := `
typedef int myint;
typedef myint myint2;
typedef myint2 *pmyint2;
myint2 f(pmyint2 p) { return *p + 1; }
int main(void) { myint x = 3; return f(&x); }
`
	if _, err := ParseAndCheck(src); err != nil {
		t.Fatalf("typedef chain rejected: %v", err)
	}
}

func TestSemaStringAndCharTypes(t *testing.T) {
	tu, err := ParseAndCheck(`
int main(void) {
    const char *s = "abc";
    char c = 'x';
    return s[1] + c;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	Walk(tu, func(n Node) bool {
		switch x := n.(type) {
		case *StringLiteral:
			// "abc" has type char[4].
			at, ok := x.Type().T.(*ArrayType)
			if !ok || at.Size != 4 {
				t.Errorf("string literal type = %s", x.Type().CString())
			}
		case *CharLiteral:
			if k, _ := x.Type().Basic(); k != Int {
				t.Errorf("char literal type = %s, want int", x.Type().CString())
			}
		}
		return true
	})
}

func TestSemaVariadicCalls(t *testing.T) {
	good := []string{
		`int main(void) { printf("%d %s", 1, "x"); return 0; }`,
		`int main(void) { printf("plain"); return 0; }`,
		`int own(int first, ...); int main(void) { return own(1, 2, 3); }`,
	}
	for _, src := range good {
		if _, err := ParseAndCheck(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestSemaCommaAndConditionalTypes(t *testing.T) {
	tu, err := ParseAndCheck(`
int main(void) {
    int a = 1;
    double d = a > 0 ? 1.5 : 2;
    int c = (a, 7);
    return (int)d + c;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var condTy, commaTy QualType
	Walk(tu, func(n Node) bool {
		switch x := n.(type) {
		case *ConditionalExpr:
			condTy = x.Type()
		case *CommaExpr:
			commaTy = x.Type()
		}
		return true
	})
	if !condTy.IsFloating() {
		t.Errorf("mixed conditional type = %s, want double", condTy.CString())
	}
	if k, _ := commaTy.Basic(); k != Int {
		t.Errorf("comma type = %s, want int", commaTy.CString())
	}
}

func TestSemaIncompleteStruct(t *testing.T) {
	if _, err := ParseAndCheck(
		"struct s; int f(struct s *p) { return p->field; }"); err == nil {
		t.Error("member access through incomplete struct accepted")
	}
	if _, err := ParseAndCheck(
		"struct s; struct s *id(struct s *p) { return p; }"); err != nil {
		t.Errorf("opaque pointer use rejected: %v", err)
	}
}

func TestSemaScoping(t *testing.T) {
	// Inner declarations shadow outer ones; siblings do not leak.
	good := `
int x = 1;
int f(void) {
    int x = 2;
    { int x = 3; x++; }
    return x;
}
int main(void) { return f() + x; }
`
	if _, err := ParseAndCheck(good); err != nil {
		t.Fatalf("shadowing rejected: %v", err)
	}
	leak := `
int f(void) {
    { int inner = 3; inner++; }
    return inner;
}
`
	if _, err := ParseAndCheck(leak); err == nil {
		t.Error("block-local variable visible after its block")
	}
	forScope := `
int f(void) {
    for (int i = 0; i < 3; i++) { }
    return i;
}
`
	if _, err := ParseAndCheck(forScope); err == nil {
		t.Error("for-init variable visible after the loop")
	}
}

func TestSemaErrorLimit(t *testing.T) {
	// A program with very many errors must not blow up the diagnostic
	// list.
	var sb strings.Builder
	sb.WriteString("int main(void) {\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("undeclared_a = undeclared_b;\n")
	}
	sb.WriteString("return 0; }\n")
	tu, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	cerr := Check(tu)
	if cerr == nil {
		t.Fatal("undeclared uses accepted")
	}
	if se, ok := cerr.(SemaErrors); ok && len(se) > maxSemaErrors {
		t.Errorf("diagnostics = %d, cap is %d", len(se), maxSemaErrors)
	}
}

func TestImplicitFunctionDeclaration(t *testing.T) {
	tu, err := ParseAndCheck(`
int main(void) {
    int x = mystery(1, 2, 3);
    return x + mystery(4);
}
`)
	if err != nil {
		t.Fatalf("implicit declarations rejected: %v", err)
	}
	// Both calls resolve to the same implicit int(...) declaration.
	var callees []*FunctionDecl
	Walk(tu, func(n Node) bool {
		if ce, ok := n.(*CallExpr); ok && ce.Callee != nil {
			callees = append(callees, ce.Callee)
		}
		return true
	})
	if len(callees) != 2 || callees[0] != callees[1] {
		t.Errorf("implicit decl not shared: %v", callees)
	}
}
