package cast

import (
	"fmt"
	"strings"
	"sync"
)

// SemaError is a single semantic diagnostic.
type SemaError struct {
	Offset int // byte offset into the source
	Msg    string
}

func (e SemaError) Error() string { return fmt.Sprintf("@%d: %s", e.Offset, e.Msg) }

// SemaErrors aggregates the diagnostics of one Check run.
type SemaErrors []SemaError

func (es SemaErrors) Error() string {
	var parts []string
	for i, e := range es {
		if i == 8 {
			parts = append(parts, fmt.Sprintf("... and %d more", len(es)-8))
			break
		}
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "; ")
}

// maxSemaErrors bounds diagnostics per run.
const maxSemaErrors = 40

// sema performs name resolution and type checking. Instances are pooled;
// per-run state is reset in Check and derived allocations (implicit
// decls, decayed pointer types, function types) come from the checked
// unit's arena when it has one.
type sema struct {
	tu *TranslationUnit
	// arena is tu's arena (nil for hand-built units); sema draws derived
	// types and implicit declarations from it so a pooled parse+check
	// cycle stays allocation-free.
	arena  *Arena
	scopes []map[string]Decl
	errs   SemaErrors
	// curFn is the function currently being checked.
	curFn *FunctionDecl
	// labels declared / used per function.
	labels     map[string]bool
	labelUses  map[string]int
	switchDep  int
	loopDep    int
	implicitly map[string]*FunctionDecl
	// probeOnly suppresses diagnostic formatting and only counts errors
	// (CheckBinopTypes/CheckAssignmentTypes run thousands of probes per
	// mutation step; formatting them would dominate the hot loop).
	probeOnly bool
	errCount  int
}

var semaPool = sync.Pool{New: func() any { return &sema{} }}

// Check resolves names and types in tu and verifies the program against a
// practical subset of C's semantic rules — the rules a mutated program is
// most likely to break (undeclared names, void-result uses, bad operand
// types, arity errors, const violations, missing labels). It returns nil
// when the program is semantically valid, or a SemaErrors value.
func Check(tu *TranslationUnit) error {
	s := semaPool.Get().(*sema)
	s.tu = tu
	s.arena = tu.arena
	s.scopes = pushScopeMap(s.scopes[:0])
	if s.implicitly == nil {
		s.implicitly = map[string]*FunctionDecl{}
	} else {
		clear(s.implicitly)
	}
	s.errs = s.errs[:0]
	s.switchDep, s.loopDep, s.errCount = 0, 0, 0
	for _, d := range tu.Decls {
		s.checkTopDecl(d)
	}
	var err error
	if len(s.errs) > 0 {
		// Copy on return: the backing array goes back to the pool.
		out := make(SemaErrors, len(s.errs))
		copy(out, s.errs)
		err = out
	}
	s.tu, s.arena, s.curFn = nil, nil, nil
	semaPool.Put(s)
	return err
}

// builtinProtos gives the libc functions that seeds and mutants may call
// without declaring.
var builtinProtos = []struct {
	name     string
	ret      QualType
	params   []QualType
	variadic bool
}{
	{"printf", IntTy, []QualType{PointerTo(CharTy)}, true},
	{"sprintf", IntTy, []QualType{PointerTo(CharTy), PointerTo(CharTy)}, true},
	{"snprintf", IntTy, []QualType{PointerTo(CharTy), ULongTy, PointerTo(CharTy)}, true},
	{"fprintf", IntTy, []QualType{PointerTo(VoidTy), PointerTo(CharTy)}, true},
	{"scanf", IntTy, []QualType{PointerTo(CharTy)}, true},
	{"memset", PointerTo(VoidTy), []QualType{PointerTo(VoidTy), IntTy, ULongTy}, false},
	{"memcpy", PointerTo(VoidTy), []QualType{PointerTo(VoidTy), PointerTo(VoidTy), ULongTy}, false},
	{"memcmp", IntTy, []QualType{PointerTo(VoidTy), PointerTo(VoidTy), ULongTy}, false},
	{"strlen", ULongTy, []QualType{PointerTo(CharTy)}, false},
	{"strcpy", PointerTo(CharTy), []QualType{PointerTo(CharTy), PointerTo(CharTy)}, false},
	{"strcmp", IntTy, []QualType{PointerTo(CharTy), PointerTo(CharTy)}, false},
	{"strcat", PointerTo(CharTy), []QualType{PointerTo(CharTy), PointerTo(CharTy)}, false},
	{"abort", VoidTy, nil, false},
	{"exit", VoidTy, []QualType{IntTy}, false},
	{"malloc", PointerTo(VoidTy), []QualType{ULongTy}, false},
	{"calloc", PointerTo(VoidTy), []QualType{ULongTy, ULongTy}, false},
	{"free", VoidTy, []QualType{PointerTo(VoidTy)}, false},
	{"rand", IntTy, nil, false},
	{"srand", VoidTy, []QualType{UIntTy}, false},
	{"abs", IntTy, []QualType{IntTy}, false},
	{"labs", LongTy, []QualType{LongTy}, false},
	{"putchar", IntTy, []QualType{IntTy}, false},
	{"puts", IntTy, []QualType{PointerTo(CharTy)}, false},
	{"atoi", IntTy, []QualType{PointerTo(CharTy)}, false},
	{"fabs", DoubleTy, []QualType{DoubleTy}, false},
	{"sqrt", DoubleTy, []QualType{DoubleTy}, false},
	{"pow", DoubleTy, []QualType{DoubleTy}, false},
}

// builtinScope holds the shared builtin declarations, consulted by lookup
// as a read-only fallback below every real scope. Built once at init —
// per-Check re-declaration was the single largest allocation site in the
// mutation hot loop. The decls (and their precomputed cachedType) are
// shared across goroutines and must never be mutated.
var builtinScope = func() map[string]Decl {
	m := make(map[string]Decl, len(builtinProtos))
	for _, b := range builtinProtos {
		fd := &FunctionDecl{Name: b.name, Ret: b.ret, Variadic: b.variadic}
		ft := &FuncType{Ret: b.ret, Variadic: b.variadic}
		for i, pt := range b.params {
			fd.Params = append(fd.Params, &ParmVarDecl{Ty: pt, Index: i})
			ft.Params = append(ft.Params, pt)
		}
		fd.cachedType = ft
		m[b.name] = fd
	}
	return m
}()

func (s *sema) errorf(n Node, format string, args ...any) {
	s.errCount++
	if s.probeOnly || len(s.errs) >= maxSemaErrors {
		return
	}
	off := 0
	if n != nil {
		off = n.Range().Begin
	}
	s.errs = append(s.errs, SemaError{Offset: off,
		Msg: fmt.Sprintf(format, args...)})
}

func (s *sema) push() { s.scopes = pushScopeMap(s.scopes) }
func (s *sema) pop()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *sema) declare(name string, d Decl) {
	if name == "" {
		return
	}
	s.scopes[len(s.scopes)-1][name] = d
}

func (s *sema) lookup(name string) (Decl, bool) {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if d, ok := s.scopes[i][name]; ok {
			return d, true
		}
	}
	if d, ok := builtinScope[name]; ok {
		return d, true
	}
	return nil, false
}

// decay applies array/function-to-pointer decay, drawing the pointer type
// from the arena (deduped) when one is available.
func (s *sema) decay(qt QualType) QualType {
	if s.arena != nil {
		return s.arena.decay(qt)
	}
	return qt.Decay()
}

// ptrTo builds a pointer type, arena-owned when possible.
func (s *sema) ptrTo(t QualType) QualType {
	if s.arena != nil {
		return QualType{T: s.arena.pointerTo(t)}
	}
	return PointerTo(t)
}

func (s *sema) checkTopDecl(d Decl) {
	switch x := d.(type) {
	case *FunctionDecl:
		// Allow redeclaration: a prototype followed by a definition.
		if prev, ok := s.scopes[0][x.Name]; ok {
			if pf, ok := prev.(*FunctionDecl); ok && pf.IsDefinition() && x.IsDefinition() {
				s.errorf(x, "redefinition of function %q", x.Name)
			}
		}
		s.declare(x.Name, x)
		if x.IsDefinition() {
			s.checkFunctionBody(x)
		}
	case *VarDecl:
		s.declare(x.Name, x)
		if x.Init != nil {
			s.checkExpr(x.Init)
			s.checkInitCompat(x, x.Ty, x.Init)
		}
	case *RecordDecl:
		if x.Name != "" {
			s.declare("struct "+x.Name, x)
		}
	case *EnumDecl:
		for _, c := range x.Constants {
			s.declare(c.Name, c)
			if c.Value != nil {
				s.checkExpr(c.Value)
			}
		}
	case *TypedefDecl:
		// Types were resolved at parse time.
	}
}

func (s *sema) checkFunctionBody(fd *FunctionDecl) {
	s.curFn = fd
	if s.labels == nil {
		s.labels = map[string]bool{}
		s.labelUses = map[string]int{}
	} else {
		clear(s.labels)
		clear(s.labelUses)
	}
	s.push()
	for _, pv := range fd.Params {
		s.declare(pv.Name, pv)
	}
	// Pre-scan labels: goto may jump forward.
	Walk(fd.Body, func(n Node) bool {
		if ls, ok := n.(*LabelStmt); ok {
			s.labels[ls.Name] = true
		}
		return true
	})
	s.checkStmt(fd.Body)
	for lbl, n := range s.labelUses {
		if !s.labels[lbl] && n > 0 {
			s.errorf(fd, "use of undeclared label %q in function %q", lbl, fd.Name)
		}
	}
	s.pop()
	s.curFn = nil
}

func (s *sema) checkStmt(st Stmt) {
	if st == nil {
		return
	}
	switch x := st.(type) {
	case *CompoundStmt:
		s.push()
		for _, inner := range x.Stmts {
			s.checkStmt(inner)
		}
		s.pop()
	case *DeclStmt:
		for _, d := range x.Decls {
			switch vd := d.(type) {
			case *VarDecl:
				if vd.Init != nil {
					s.checkExpr(vd.Init)
					s.checkInitCompat(vd, vd.Ty, vd.Init)
				}
				s.declare(vd.Name, vd)
			case *EnumDecl:
				for _, c := range vd.Constants {
					s.declare(c.Name, c)
				}
			case *FunctionDecl:
				s.declare(vd.Name, vd)
			}
		}
	case *ExprStmt:
		s.checkExpr(x.X)
	case *IfStmt:
		s.checkCondExpr(x.Cond)
		s.checkStmt(x.Then)
		s.checkStmt(x.Else)
	case *WhileStmt:
		s.checkCondExpr(x.Cond)
		s.loopDep++
		s.checkStmt(x.Body)
		s.loopDep--
	case *DoStmt:
		s.loopDep++
		s.checkStmt(x.Body)
		s.loopDep--
		s.checkCondExpr(x.Cond)
	case *ForStmt:
		s.push()
		s.checkStmt(x.Init)
		if x.Cond != nil {
			s.checkCondExpr(x.Cond)
		}
		if x.Post != nil {
			s.checkExpr(x.Post)
		}
		s.loopDep++
		s.checkStmt(x.Body)
		s.loopDep--
		s.pop()
	case *SwitchStmt:
		s.checkExpr(x.Cond)
		if t := x.Cond.Type(); !t.IsNil() && !t.IsInteger() {
			s.errorf(x.Cond, "switch condition has non-integer type %s", t.CString())
		}
		s.switchDep++
		s.checkStmt(x.Body)
		s.switchDep--
	case *CaseStmt:
		if s.switchDep == 0 {
			s.errorf(x, "'case' label not within a switch statement")
		}
		s.checkExpr(x.Value)
		s.checkStmt(x.Body)
	case *DefaultStmt:
		if s.switchDep == 0 {
			s.errorf(x, "'default' label not within a switch statement")
		}
		s.checkStmt(x.Body)
	case *BreakStmt:
		if s.loopDep == 0 && s.switchDep == 0 {
			s.errorf(x, "'break' outside of loop or switch")
		}
	case *ContinueStmt:
		if s.loopDep == 0 {
			s.errorf(x, "'continue' outside of loop")
		}
	case *ReturnStmt:
		if x.Value != nil {
			s.checkExpr(x.Value)
			if s.curFn != nil && s.curFn.Ret.IsVoid() {
				s.errorf(x, "void function %q should not return a value", s.curFn.Name)
			}
			if vt := x.Value.Type(); !vt.IsNil() && vt.IsVoid() {
				s.errorf(x, "returning void expression from function %q", s.curFn.Name)
			}
		}
	case *GotoStmt:
		s.labelUses[x.Label]++
	case *LabelStmt:
		s.checkStmt(x.Body)
	case *NullStmt:
	}
}

// checkCondExpr checks an expression used in boolean context.
func (s *sema) checkCondExpr(e Expr) {
	s.checkExpr(e)
	if t := e.Type(); !t.IsNil() && !s.decay(t).IsScalar() {
		s.errorf(e, "condition has non-scalar type %s", t.CString())
	}
}

// checkInitCompat verifies an initializer fits the declared type.
func (s *sema) checkInitCompat(at Node, ty QualType, init Expr) {
	if il, ok := init.(*InitListExpr); ok {
		// Brace init: element-check only for scalar over-nesting.
		if ty.IsArray() || ty.IsRecord() {
			return
		}
		if len(il.Inits) > 1 {
			s.errorf(at, "excess elements in scalar initializer")
		}
		return
	}
	// A char array may be initialized from a string literal.
	if _, isStr := init.(*StringLiteral); isStr && ty.IsArray() {
		if et, ok := ty.PointeeType(); ok {
			if k, kok := et.Basic(); kok && (k == Char || k == SChar || k == UChar) {
				return
			}
		}
	}
	it := init.Type()
	if it.IsNil() {
		return
	}
	if !s.assignCompatible(ty, it) {
		s.errorf(at, "initializing %s with an expression of incompatible type %s",
			ty.CString(), it.CString())
	}
}

// assignCompatible implements C's (permissive) assignment compatibility.
func (s *sema) assignCompatible(to, from QualType) bool {
	if to.IsNil() || from.IsNil() {
		return true
	}
	from = s.decay(from)
	switch {
	case from.IsVoid():
		return false
	case to.IsArithmetic() && from.IsArithmetic():
		return true
	case to.IsPointer() && from.IsPointer():
		return true // C permits with a warning; allow
	case to.IsPointer() && from.IsInteger():
		return true // integer-to-pointer: warning in C
	case to.IsInteger() && from.IsPointer():
		return true
	case to.IsRecord() && from.IsRecord():
		return SameType(to, from)
	case to.IsArray():
		return false // arrays are not assignable
	}
	return to.IsArithmetic() == from.IsArithmetic() && SameType(to, from)
}

// isLvalue reports whether e designates an object.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *DeclRefExpr:
		_, isFn := x.Ref.(*FunctionDecl)
		_, isEC := x.Ref.(*EnumConstantDecl)
		return !isFn && !isEC
	case *UnaryOperator:
		return x.Op == UnDeref
	case *ArraySubscriptExpr, *MemberExpr, *StringLiteral, *CompoundLiteralExpr:
		return true
	case *ParenExpr:
		return isLvalue(x.X)
	}
	return false
}

// isConstQualified reports whether assigning to e violates const.
func isConstQualified(e Expr) bool {
	switch x := e.(type) {
	case *DeclRefExpr:
		switch d := x.Ref.(type) {
		case *VarDecl:
			return d.Ty.Q&QualConst != 0
		case *ParmVarDecl:
			return d.Ty.Q&QualConst != 0
		}
	case *ParenExpr:
		return isConstQualified(x.X)
	case *UnaryOperator:
		if x.Op == UnDeref {
			if pt, ok := x.X.Type().Decay().PointeeType(); ok {
				return pt.Q&QualConst != 0
			}
		}
	case *ArraySubscriptExpr:
		if pt, ok := x.Base.Type().Decay().PointeeType(); ok {
			return pt.Q&QualConst != 0
		}
	case *MemberExpr:
		if x.FieldDecl != nil && x.FieldDecl.Ty.Q&QualConst != 0 {
			return true
		}
		return isConstQualified(x.Base)
	}
	return false
}

// intLitType classifies an integer literal's type from its suffix without
// allocating. The lexer guarantees u/U/l/L appear only in the trailing
// suffix run, so scanning that run matches the historical
// lowercase-and-Contains logic byte for byte.
func intLitType(text string) QualType {
	i := len(text)
	for i > 0 {
		switch text[i-1] {
		case 'u', 'U', 'l', 'L':
			i--
			continue
		}
		break
	}
	suf := text[i:]
	lc := func(j int) byte {
		c := suf[j]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		return c
	}
	contains := func(pat string) bool {
		for s0 := 0; s0 <= len(suf)-len(pat); s0++ {
			ok := true
			for k := 0; k < len(pat); k++ {
				if lc(s0+k) != pat[k] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	switch {
	case contains("ull") || (contains("u") && contains("ll")):
		return ULongLongTy
	case contains("ll"):
		return LongLongTy
	case contains("ul"):
		return ULongTy
	case len(suf) > 0 && lc(len(suf)-1) == 'l':
		return LongTy
	case len(suf) > 0 && lc(len(suf)-1) == 'u':
		return UIntTy
	}
	return IntTy
}

func (s *sema) checkExpr(e Expr) QualType {
	if e == nil {
		return QualType{}
	}
	switch x := e.(type) {
	case *IntegerLiteral:
		ty := intLitType(x.Text)
		x.SetType(ty)
		return ty
	case *FloatingLiteral:
		ty := DoubleTy
		if n := len(x.Text); n > 0 && (x.Text[n-1] == 'f' || x.Text[n-1] == 'F') {
			ty = FloatTy
		}
		x.SetType(ty)
		return ty
	case *CharLiteral:
		x.SetType(IntTy) // char literals have type int in C
		return IntTy
	case *StringLiteral:
		var ty QualType
		if s.arena != nil {
			at := s.arena.arrayTypes.get()
			at.Elem, at.Size = CharTy, int64(len(x.Value))+1
			ty = QualType{T: at}
		} else {
			ty = ArrayOf(CharTy, int64(len(x.Value))+1)
		}
		x.SetType(ty)
		return ty
	case *DeclRefExpr:
		return s.checkDeclRef(x)
	case *ParenExpr:
		t := s.checkExpr(x.X)
		x.SetType(t)
		return t
	case *UnaryOperator:
		return s.checkUnary(x)
	case *BinaryOperator:
		return s.checkBinary(x)
	case *CallExpr:
		return s.checkCall(x)
	case *ArraySubscriptExpr:
		return s.checkSubscript(x)
	case *MemberExpr:
		return s.checkMember(x)
	case *CastExpr:
		s.checkExpr(x.X)
		if x.To.IsRecord() && !x.X.Type().IsNil() && !SameType(x.To, x.X.Type()) {
			s.errorf(x, "conversion to non-scalar type %s requested", x.To.CString())
		}
		x.SetType(x.To)
		return x.To
	case *ConditionalExpr:
		s.checkCondExpr(x.Cond)
		t1 := s.checkExpr(x.Then)
		t2 := s.checkExpr(x.Else)
		var t QualType
		switch {
		case t1.IsArithmetic() && t2.IsArithmetic():
			t = UsualArithmeticConversion(t1, t2)
		case !t1.IsNil():
			t = s.decay(t1)
		default:
			t = s.decay(t2)
		}
		x.SetType(t)
		return t
	case *SizeofExpr:
		if x.X != nil {
			s.checkExpr(x.X)
		}
		x.SetType(ULongTy)
		return ULongTy
	case *InitListExpr:
		for _, in := range x.Inits {
			s.checkExpr(in)
		}
		return QualType{}
	case *CompoundLiteralExpr:
		s.checkExpr(x.Init)
		if k, ok := x.To.Basic(); ok && k != Void {
			// Scalar compound literal must have exactly one scalar init.
			if len(x.Init.Inits) > 0 {
				if _, isList := x.Init.Inits[0].(*InitListExpr); isList {
					s.errorf(x, "braces around scalar initializer of type %s", x.To.CString())
				}
			}
			if len(x.Init.Inits) > 1 {
				s.errorf(x, "excess elements in scalar initializer")
			}
		}
		x.SetType(x.To)
		return x.To
	case *CommaExpr:
		s.checkExpr(x.LHS)
		t := s.checkExpr(x.RHS)
		x.SetType(t)
		return t
	}
	return QualType{}
}

func (s *sema) checkDeclRef(x *DeclRefExpr) QualType {
	d, ok := s.lookup(x.Name)
	if !ok {
		s.errorf(x, "use of undeclared identifier %q", x.Name)
		x.SetType(IntTy)
		return IntTy
	}
	x.Ref = d
	var t QualType
	switch dd := d.(type) {
	case *VarDecl:
		t = dd.Ty
	case *ParmVarDecl:
		t = dd.Ty
	case *FunctionDecl:
		ft := dd.cachedType
		if ft == nil {
			ft = s.funcTypeOf(dd)
			// Builtins precompute cachedType; everything else reaching
			// here is owned by the unit being checked (same lifetime as
			// the FuncType we just built), so memoizing is safe.
			dd.cachedType = ft
		}
		t = QualType{T: ft}
	case *EnumConstantDecl:
		t = IntTy
	}
	x.SetType(t)
	return t
}

// funcTypeOf derives the FuncType of a declaration, arena-owned when the
// checked unit has an arena.
func (s *sema) funcTypeOf(dd *FunctionDecl) *FuncType {
	if s.arena != nil {
		a := s.arena
		ft := a.funcTypes.get()
		ft.Ret, ft.Variadic = dd.Ret, dd.Variadic
		qmark := len(a.scQTs)
		for _, pv := range dd.Params {
			a.scQTs = append(a.scQTs, pv.Ty)
		}
		ft.Params = cutList(&a.qtLists, &a.scQTs, qmark)
		return ft
	}
	ft := &FuncType{Ret: dd.Ret, Variadic: dd.Variadic}
	for _, pv := range dd.Params {
		ft.Params = append(ft.Params, pv.Ty)
	}
	return ft
}

func (s *sema) checkUnary(x *UnaryOperator) QualType {
	t := s.checkExpr(x.X)
	var res QualType
	switch x.Op {
	case UnPlus, UnMinus:
		if !t.IsNil() && !s.decay(t).IsArithmetic() {
			s.errorf(x, "invalid argument type %s to unary %s", t.CString(), x.Op)
		}
		res = UsualArithmeticConversion(t, IntTy)
		if t.IsFloating() || t.IsComplex() {
			res = t.Unqualified()
		}
	case UnNot:
		if !t.IsNil() && !t.IsInteger() {
			s.errorf(x, "invalid argument type %s to unary ~", t.CString())
		}
		res = UsualArithmeticConversion(t, IntTy)
	case UnLNot:
		if !t.IsNil() && !s.decay(t).IsScalar() {
			s.errorf(x, "invalid argument type %s to unary !", t.CString())
		}
		res = IntTy
	case UnDeref:
		pt, ok := s.decay(t).PointeeType()
		if !ok {
			s.errorf(x, "indirection requires pointer operand (%s invalid)", t.CString())
			res = IntTy
		} else {
			res = pt
		}
	case UnAddr:
		if !isLvalue(x.X) {
			s.errorf(x, "cannot take the address of an rvalue")
		}
		res = s.ptrTo(t)
	case UnPreInc, UnPreDec, UnPostInc, UnPostDec:
		if !isLvalue(x.X) {
			s.errorf(x, "expression is not assignable (%s operand)", x.Op)
		} else if isConstQualified(x.X) {
			s.errorf(x, "cannot modify const-qualified operand")
		}
		if !t.IsNil() && !s.decay(t).IsScalar() {
			s.errorf(x, "cannot increment value of type %s", t.CString())
		}
		res = t.Unqualified()
	}
	x.SetType(res)
	return res
}

func (s *sema) checkBinary(x *BinaryOperator) QualType {
	lt := s.checkExpr(x.LHS)
	rt := s.checkExpr(x.RHS)
	res := s.binaryResultType(x, x.Op, lt, rt)
	x.SetType(res)
	return res
}

// binaryResultType validates operand types and returns the result type,
// reporting diagnostics on x. In probeOnly mode it counts diagnostics
// without formatting them.
func (s *sema) binaryResultType(x Node, op BinOp, lt, rt QualType) QualType {
	ltD, rtD := s.decay(lt), s.decay(rt)
	bad := func() QualType {
		if s.probeOnly {
			s.errCount++
		} else {
			s.errorf(x, "invalid operands to binary %s (%s and %s)",
				op, lt.CString(), rt.CString())
		}
		return IntTy
	}
	if lt.IsNil() || rt.IsNil() {
		return IntTy
	}
	if op.IsAssignment() {
		if lhs, ok := x.(*BinaryOperator); ok {
			if !isLvalue(lhs.LHS) {
				s.errorf(x, "expression is not assignable")
			} else if isConstQualified(lhs.LHS) {
				s.errorf(x, "cannot assign to const-qualified lvalue")
			}
			if lt.IsArray() {
				s.errorf(x, "array type %s is not assignable", lt.CString())
			}
		}
		if op == BinAssign {
			if !s.assignCompatible(lt, rt) {
				if s.probeOnly {
					s.errCount++
				} else {
					s.errorf(x, "assigning to %s from incompatible type %s",
						lt.CString(), rt.CString())
				}
			}
			return lt.Unqualified()
		}
		// Compound assignments require arithmetic (or ptr += int).
		under := compoundUnderlying(op)
		if ltD.IsPointer() && (under == BinAdd || under == BinSub) && rtD.IsInteger() {
			return lt.Unqualified()
		}
		if !ltD.IsArithmetic() || !rtD.IsArithmetic() {
			return bad()
		}
		if (under == BinRem || under.IsBitwise()) &&
			(!ltD.IsInteger() || !rtD.IsInteger()) {
			return bad()
		}
		return lt.Unqualified()
	}
	switch {
	case op == BinAdd:
		if ltD.IsPointer() && rtD.IsInteger() {
			return ltD
		}
		if rtD.IsPointer() && ltD.IsInteger() {
			return rtD
		}
		if ltD.IsArithmetic() && rtD.IsArithmetic() {
			return UsualArithmeticConversion(ltD, rtD)
		}
		return bad()
	case op == BinSub:
		if ltD.IsPointer() && rtD.IsInteger() {
			return ltD
		}
		if ltD.IsPointer() && rtD.IsPointer() {
			return LongTy // ptrdiff_t
		}
		if ltD.IsArithmetic() && rtD.IsArithmetic() {
			return UsualArithmeticConversion(ltD, rtD)
		}
		return bad()
	case op == BinMul || op == BinDiv:
		if ltD.IsArithmetic() && rtD.IsArithmetic() {
			return UsualArithmeticConversion(ltD, rtD)
		}
		return bad()
	case op == BinRem || op.IsBitwise():
		if ltD.IsInteger() && rtD.IsInteger() {
			return UsualArithmeticConversion(ltD, rtD)
		}
		return bad()
	case op.IsComparison():
		if (ltD.IsArithmetic() && rtD.IsArithmetic()) ||
			(ltD.IsPointer() && rtD.IsPointer()) ||
			(ltD.IsPointer() && rtD.IsInteger()) ||
			(ltD.IsInteger() && rtD.IsPointer()) {
			return IntTy
		}
		return bad()
	case op.IsLogical():
		if ltD.IsScalar() && rtD.IsScalar() {
			return IntTy
		}
		return bad()
	}
	return IntTy
}

// compoundUnderlying maps a compound assignment to its arithmetic op.
func compoundUnderlying(op BinOp) BinOp {
	switch op {
	case BinMulAssign:
		return BinMul
	case BinDivAssign:
		return BinDiv
	case BinRemAssign:
		return BinRem
	case BinAddAssign:
		return BinAdd
	case BinSubAssign:
		return BinSub
	case BinShlAssign:
		return BinShl
	case BinShrAssign:
		return BinShr
	case BinAndAssign:
		return BinAnd
	case BinXorAssign:
		return BinXor
	case BinOrAssign:
		return BinOr
	}
	return op
}

func (s *sema) checkCall(x *CallExpr) QualType {
	// Direct calls to possibly-undeclared functions get an implicit
	// declaration (C89 semantics, still common in compiler test suites).
	if dr, ok := x.Fn.(*DeclRefExpr); ok {
		if _, found := s.lookup(dr.Name); !found {
			fd := s.implicitly[dr.Name]
			if fd == nil {
				if s.arena != nil {
					fd = s.arena.functionDecls.get()
					fd.Name, fd.Ret, fd.Variadic = dr.Name, IntTy, true
				} else {
					fd = &FunctionDecl{Name: dr.Name, Ret: IntTy, Variadic: true}
				}
				s.implicitly[dr.Name] = fd
				s.scopes[0][dr.Name] = fd
			}
		}
	}
	ft := s.calleeType(x)
	for _, a := range x.Args {
		s.checkExpr(a)
		if at := a.Type(); !at.IsNil() && at.IsVoid() {
			s.errorf(a, "passing void expression as call argument")
		}
	}
	if ft == nil {
		x.SetType(IntTy)
		return IntTy
	}
	if !ft.Variadic && len(ft.Params) > 0 && len(x.Args) != len(ft.Params) {
		s.errorf(x, "call supplies %d arguments, callee expects %d",
			len(x.Args), len(ft.Params))
	}
	if !ft.Variadic {
		for i, a := range x.Args {
			if i >= len(ft.Params) {
				break
			}
			if at := a.Type(); !at.IsNil() && !s.assignCompatible(ft.Params[i], at) {
				s.errorf(a, "argument %d has incompatible type %s (expected %s)",
					i+1, at.CString(), ft.Params[i].CString())
			}
		}
	}
	x.SetType(ft.Ret)
	return ft.Ret
}

func (s *sema) calleeType(x *CallExpr) *FuncType {
	t := s.checkExpr(x.Fn)
	if dr, ok := x.Fn.(*DeclRefExpr); ok {
		if fd, ok := dr.Ref.(*FunctionDecl); ok {
			x.Callee = fd
		}
	}
	switch ct := t.Canonical().T.(type) {
	case *FuncType:
		return ct
	case *PointerType:
		if ft, ok := ct.Elem.Canonical().T.(*FuncType); ok {
			return ft
		}
	case nil:
		return nil
	}
	if !t.IsNil() {
		s.errorf(x, "called object type %s is not a function or function pointer",
			t.CString())
	}
	return nil
}

func (s *sema) checkSubscript(x *ArraySubscriptExpr) QualType {
	bt := s.checkExpr(x.Base)
	it := s.checkExpr(x.Index)
	// C allows the commuted form i[a]: one operand must be a pointer (or
	// array), the other an integer, in either order.
	if !s.decay(bt).IsPointer() && s.decay(it).IsPointer() {
		bt, it = it, bt
	}
	if !it.IsNil() && !s.decay(it).IsInteger() {
		s.errorf(x.Index, "array subscript is not an integer (%s)", it.CString())
	}
	pt, ok := s.decay(bt).PointeeType()
	if !ok {
		if !bt.IsNil() {
			s.errorf(x, "subscripted value %s is not an array or pointer", bt.CString())
		}
		x.SetType(IntTy)
		return IntTy
	}
	x.SetType(pt)
	return pt
}

func (s *sema) checkMember(x *MemberExpr) QualType {
	bt := s.checkExpr(x.Base)
	if bt.IsNil() {
		x.SetType(IntTy)
		return IntTy
	}
	target := bt
	if x.IsArrow {
		pt, ok := s.decay(bt).PointeeType()
		if !ok {
			s.errorf(x, "member reference type %s is not a pointer", bt.CString())
			x.SetType(IntTy)
			return IntTy
		}
		target = pt
	} else if bt.IsPointer() {
		s.errorf(x, "member reference type %s is a pointer; did you mean ->?",
			bt.CString())
		x.SetType(IntTy)
		return IntTy
	}
	rt, ok := target.Canonical().T.(*RecordType)
	if !ok {
		s.errorf(x, "member reference base type %s is not a structure or union",
			target.CString())
		x.SetType(IntTy)
		return IntTy
	}
	if !rt.Decl.Complete {
		s.errorf(x, "incomplete type %s used in member access", target.CString())
		x.SetType(IntTy)
		return IntTy
	}
	for _, f := range rt.Decl.Fields {
		if f.Name == x.Field {
			x.FieldDecl = f
			x.SetType(f.Ty)
			return f.Ty
		}
	}
	s.errorf(x, "no member named %q in %s", x.Field, target.CString())
	x.SetType(IntTy)
	return IntTy
}

// nullProbe anchors probe-mode diagnostics without allocating a node per
// probe. It is never mutated.
var nullProbe Node = &NullStmt{}

// CheckBinopTypes reports whether op may be applied to operands of the
// given types without a diagnostic. It is the engine behind the μAST
// checkBinop API. It allocates nothing (probe mode).
func CheckBinopTypes(op BinOp, lt, rt QualType) bool {
	var s sema
	s.probeOnly = true
	s.binaryResultType(nullProbe, op, lt, rt)
	return s.errCount == 0
}

// CheckAssignmentTypes reports whether a value of type from may be
// assigned to an lvalue of type to. It allocates nothing unless from is
// an array/function type (decay).
func CheckAssignmentTypes(to, from QualType) bool {
	var s sema
	s.probeOnly = true
	return s.assignCompatible(to, from) && !to.IsArray() && to.Q&QualConst == 0
}
