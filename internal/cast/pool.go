package cast

import "sync"

// tokenPool recycles the token slices Parse lexes into. Every compile
// of every mutant lexes a fresh token stream (compilersim parses each
// mutant, the fuzzers parse each pool program), and nothing retains the
// slice after parsing — AST nodes copy the strings they need — so the
// buffers recycle cleanly across parses and goroutines.
var tokenPool = sync.Pool{
	New: func() any {
		s := make([]Token, 0, 512)
		return &s
	},
}

// lexInto lexes src appending into buf (reusing its capacity).
func lexInto(src string, buf []Token) ([]Token, error) {
	lx := NewLexer(src)
	for {
		t, err := lx.Next()
		if err != nil {
			return buf, err
		}
		buf = append(buf, t)
		if t.Kind == TokEOF {
			return buf, nil
		}
	}
}

// editPool recycles the Rewriter's sorted-edit scratch used by
// Rewritten (one per mutant render on the fuzzing hot path).
var editPool = sync.Pool{
	New: func() any {
		s := make([]edit, 0, 32)
		return &s
	},
}
