package cast

// Visitor is called for each node during a Walk. Returning false stops
// descent into the node's children (the walk continues with siblings).
type Visitor func(n Node) bool

// Walk traverses the AST rooted at n in source order, calling v for every
// node (pre-order). Traversal allocates nothing: children are visited via
// eachChild's type switch instead of materializing a slice per node.
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	eachChild(n, func(c Node) { Walk(c, v) })
}

// isNilNode guards against typed-nil interface values.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *TranslationUnit:
		return x == nil
	case *FunctionDecl:
		return x == nil
	case *VarDecl:
		return x == nil
	case *ParmVarDecl:
		return x == nil
	case *FieldDecl:
		return x == nil
	case *RecordDecl:
		return x == nil
	case *EnumDecl:
		return x == nil
	case *EnumConstantDecl:
		return x == nil
	case *TypedefDecl:
		return x == nil
	case *CompoundStmt:
		return x == nil
	case *DeclStmt:
		return x == nil
	case *ExprStmt:
		return x == nil
	case *IfStmt:
		return x == nil
	case *WhileStmt:
		return x == nil
	case *DoStmt:
		return x == nil
	case *ForStmt:
		return x == nil
	case *SwitchStmt:
		return x == nil
	case *CaseStmt:
		return x == nil
	case *DefaultStmt:
		return x == nil
	case *BreakStmt:
		return x == nil
	case *ContinueStmt:
		return x == nil
	case *ReturnStmt:
		return x == nil
	case *GotoStmt:
		return x == nil
	case *LabelStmt:
		return x == nil
	case *NullStmt:
		return x == nil
	case *IntegerLiteral:
		return x == nil
	case *FloatingLiteral:
		return x == nil
	case *CharLiteral:
		return x == nil
	case *StringLiteral:
		return x == nil
	case *DeclRefExpr:
		return x == nil
	case *BinaryOperator:
		return x == nil
	case *UnaryOperator:
		return x == nil
	case *CallExpr:
		return x == nil
	case *ArraySubscriptExpr:
		return x == nil
	case *MemberExpr:
		return x == nil
	case *CastExpr:
		return x == nil
	case *ConditionalExpr:
		return x == nil
	case *ParenExpr:
		return x == nil
	case *SizeofExpr:
		return x == nil
	case *InitListExpr:
		return x == nil
	case *CompoundLiteralExpr:
		return x == nil
	case *CommaExpr:
		return x == nil
	}
	return false
}

// eachChild calls f for each direct AST child of n, in source order,
// skipping nil (including typed-nil) children. This is the single source
// of truth for child order; Walk, Children and the parent-map builders
// all delegate to it. f must not be retained (callers pass stack-scoped
// closures so the traversal stays allocation-free).
func eachChild(n Node, f func(Node)) {
	emit := func(c Node) {
		if c != nil && !isNilNode(c) {
			f(c)
		}
	}
	switch x := n.(type) {
	case *TranslationUnit:
		for _, d := range x.Decls {
			emit(d)
		}
	case *FunctionDecl:
		for _, pv := range x.Params {
			emit(pv)
		}
		if x.Body != nil {
			emit(x.Body)
		}
	case *VarDecl:
		if x.Init != nil {
			emit(x.Init)
		}
	case *RecordDecl:
		for _, fd := range x.Fields {
			emit(fd)
		}
	case *EnumDecl:
		for _, c := range x.Constants {
			emit(c)
		}
	case *EnumConstantDecl:
		if x.Value != nil {
			emit(x.Value)
		}
	case *CompoundStmt:
		for _, s := range x.Stmts {
			emit(s)
		}
	case *DeclStmt:
		for _, d := range x.Decls {
			emit(d)
		}
	case *ExprStmt:
		emit(x.X)
	case *IfStmt:
		emit(x.Cond)
		emit(x.Then)
		if x.Else != nil {
			emit(x.Else)
		}
	case *WhileStmt:
		emit(x.Cond)
		emit(x.Body)
	case *DoStmt:
		emit(x.Body)
		emit(x.Cond)
	case *ForStmt:
		if x.Init != nil {
			emit(x.Init)
		}
		if x.Cond != nil {
			emit(x.Cond)
		}
		if x.Post != nil {
			emit(x.Post)
		}
		emit(x.Body)
	case *SwitchStmt:
		emit(x.Cond)
		emit(x.Body)
	case *CaseStmt:
		emit(x.Value)
		if x.Body != nil {
			emit(x.Body)
		}
	case *DefaultStmt:
		if x.Body != nil {
			emit(x.Body)
		}
	case *ReturnStmt:
		if x.Value != nil {
			emit(x.Value)
		}
	case *LabelStmt:
		if x.Body != nil {
			emit(x.Body)
		}
	case *BinaryOperator:
		emit(x.LHS)
		emit(x.RHS)
	case *UnaryOperator:
		emit(x.X)
	case *CallExpr:
		emit(x.Fn)
		for _, a := range x.Args {
			emit(a)
		}
	case *ArraySubscriptExpr:
		emit(x.Base)
		emit(x.Index)
	case *MemberExpr:
		emit(x.Base)
	case *CastExpr:
		emit(x.X)
	case *ConditionalExpr:
		emit(x.Cond)
		emit(x.Then)
		emit(x.Else)
	case *ParenExpr:
		emit(x.X)
	case *SizeofExpr:
		if x.X != nil {
			emit(x.X)
		}
	case *InitListExpr:
		for _, e := range x.Inits {
			emit(e)
		}
	case *CompoundLiteralExpr:
		emit(x.Init)
	case *CommaExpr:
		emit(x.LHS)
		emit(x.RHS)
	}
}

// Children returns a node's direct AST children in source order. Nil
// children are omitted. Hot paths should prefer eachChild/Walk, which do
// not allocate the slice.
func Children(n Node) []Node {
	var out []Node
	eachChild(n, func(c Node) { out = append(out, c) })
	return out
}

// CollectKind returns all nodes of the given kind under root, in source
// order.
func CollectKind(root Node, k NodeKind) []Node {
	var out []Node
	Walk(root, func(n Node) bool {
		if n.Kind() == k {
			out = append(out, n)
		}
		return true
	})
	return out
}

// CountNodes returns the total number of AST nodes under root.
func CountNodes(root Node) int {
	n := 0
	Walk(root, func(Node) bool { n++; return true })
	return n
}

// ParentMap maps each node to its parent, built with BuildParentMap.
type ParentMap map[Node]Node

// BuildParentMap computes the parent of every node under root.
func BuildParentMap(root Node) ParentMap {
	return BuildParentMapInto(nil, root)
}

// BuildParentMapInto fills pm (allocating it when nil) with the parent of
// every node under root and returns it. Hot loops pass a cleared map to
// reuse its buckets across mutants.
func BuildParentMapInto(pm ParentMap, root Node) ParentMap {
	if pm == nil {
		pm = ParentMap{}
	}
	buildParents(pm, root)
	return pm
}

func buildParents(pm ParentMap, n Node) {
	eachChild(n, func(c Node) {
		pm[c] = n
		buildParents(pm, c)
	})
}

// EnclosingFunction returns the FunctionDecl that lexically contains n, or
// nil when n is at file scope.
func (pm ParentMap) EnclosingFunction(n Node) *FunctionDecl {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		if fd, ok := cur.(*FunctionDecl); ok {
			return fd
		}
	}
	return nil
}

// EnclosingStmt returns the nearest enclosing statement of n (or n itself
// if it is a statement).
func (pm ParentMap) EnclosingStmt(n Node) Stmt {
	for cur := n; cur != nil; cur = pm[cur] {
		if s, ok := cur.(Stmt); ok {
			return s
		}
	}
	return nil
}

// EnclosingLoop returns the nearest enclosing loop statement of n, or nil.
func (pm ParentMap) EnclosingLoop(n Node) Stmt {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		switch cur.(type) {
		case *WhileStmt, *DoStmt, *ForStmt:
			return cur.(Stmt)
		}
	}
	return nil
}
