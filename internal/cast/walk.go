package cast

// Visitor is called for each node during a Walk. Returning false stops
// descent into the node's children (the walk continues with siblings).
type Visitor func(n Node) bool

// Walk traverses the AST rooted at n in source order, calling v for every
// node (pre-order).
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, v)
	}
}

// isNilNode guards against typed-nil interface values.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *TranslationUnit:
		return x == nil
	case *FunctionDecl:
		return x == nil
	case *VarDecl:
		return x == nil
	case *ParmVarDecl:
		return x == nil
	case *FieldDecl:
		return x == nil
	case *RecordDecl:
		return x == nil
	case *EnumDecl:
		return x == nil
	case *EnumConstantDecl:
		return x == nil
	case *TypedefDecl:
		return x == nil
	case *CompoundStmt:
		return x == nil
	case *DeclStmt:
		return x == nil
	case *ExprStmt:
		return x == nil
	case *IfStmt:
		return x == nil
	case *WhileStmt:
		return x == nil
	case *DoStmt:
		return x == nil
	case *ForStmt:
		return x == nil
	case *SwitchStmt:
		return x == nil
	case *CaseStmt:
		return x == nil
	case *DefaultStmt:
		return x == nil
	case *BreakStmt:
		return x == nil
	case *ContinueStmt:
		return x == nil
	case *ReturnStmt:
		return x == nil
	case *GotoStmt:
		return x == nil
	case *LabelStmt:
		return x == nil
	case *NullStmt:
		return x == nil
	case *IntegerLiteral:
		return x == nil
	case *FloatingLiteral:
		return x == nil
	case *CharLiteral:
		return x == nil
	case *StringLiteral:
		return x == nil
	case *DeclRefExpr:
		return x == nil
	case *BinaryOperator:
		return x == nil
	case *UnaryOperator:
		return x == nil
	case *CallExpr:
		return x == nil
	case *ArraySubscriptExpr:
		return x == nil
	case *MemberExpr:
		return x == nil
	case *CastExpr:
		return x == nil
	case *ConditionalExpr:
		return x == nil
	case *ParenExpr:
		return x == nil
	case *SizeofExpr:
		return x == nil
	case *InitListExpr:
		return x == nil
	case *CompoundLiteralExpr:
		return x == nil
	case *CommaExpr:
		return x == nil
	}
	return false
}

// Children returns a node's direct AST children in source order. Nil
// children are omitted.
func Children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		if c != nil && !isNilNode(c) {
			out = append(out, c)
		}
	}
	switch x := n.(type) {
	case *TranslationUnit:
		for _, d := range x.Decls {
			add(d)
		}
	case *FunctionDecl:
		for _, pv := range x.Params {
			add(pv)
		}
		if x.Body != nil {
			add(x.Body)
		}
	case *VarDecl:
		if x.Init != nil {
			add(x.Init)
		}
	case *RecordDecl:
		for _, f := range x.Fields {
			add(f)
		}
	case *EnumDecl:
		for _, c := range x.Constants {
			add(c)
		}
	case *EnumConstantDecl:
		if x.Value != nil {
			add(x.Value)
		}
	case *CompoundStmt:
		for _, s := range x.Stmts {
			add(s)
		}
	case *DeclStmt:
		for _, d := range x.Decls {
			add(d)
		}
	case *ExprStmt:
		add(x.X)
	case *IfStmt:
		add(x.Cond)
		add(x.Then)
		if x.Else != nil {
			add(x.Else)
		}
	case *WhileStmt:
		add(x.Cond)
		add(x.Body)
	case *DoStmt:
		add(x.Body)
		add(x.Cond)
	case *ForStmt:
		if x.Init != nil {
			add(x.Init)
		}
		if x.Cond != nil {
			add(x.Cond)
		}
		if x.Post != nil {
			add(x.Post)
		}
		add(x.Body)
	case *SwitchStmt:
		add(x.Cond)
		add(x.Body)
	case *CaseStmt:
		add(x.Value)
		if x.Body != nil {
			add(x.Body)
		}
	case *DefaultStmt:
		if x.Body != nil {
			add(x.Body)
		}
	case *ReturnStmt:
		if x.Value != nil {
			add(x.Value)
		}
	case *LabelStmt:
		if x.Body != nil {
			add(x.Body)
		}
	case *BinaryOperator:
		add(x.LHS)
		add(x.RHS)
	case *UnaryOperator:
		add(x.X)
	case *CallExpr:
		add(x.Fn)
		for _, a := range x.Args {
			add(a)
		}
	case *ArraySubscriptExpr:
		add(x.Base)
		add(x.Index)
	case *MemberExpr:
		add(x.Base)
	case *CastExpr:
		add(x.X)
	case *ConditionalExpr:
		add(x.Cond)
		add(x.Then)
		add(x.Else)
	case *ParenExpr:
		add(x.X)
	case *SizeofExpr:
		if x.X != nil {
			add(x.X)
		}
	case *InitListExpr:
		for _, e := range x.Inits {
			add(e)
		}
	case *CompoundLiteralExpr:
		add(x.Init)
	case *CommaExpr:
		add(x.LHS)
		add(x.RHS)
	}
	return out
}

// CollectKind returns all nodes of the given kind under root, in source
// order.
func CollectKind(root Node, k NodeKind) []Node {
	var out []Node
	Walk(root, func(n Node) bool {
		if n.Kind() == k {
			out = append(out, n)
		}
		return true
	})
	return out
}

// CountNodes returns the total number of AST nodes under root.
func CountNodes(root Node) int {
	n := 0
	Walk(root, func(Node) bool { n++; return true })
	return n
}

// ParentMap maps each node to its parent, built with BuildParentMap.
type ParentMap map[Node]Node

// BuildParentMap computes the parent of every node under root.
func BuildParentMap(root Node) ParentMap {
	pm := ParentMap{}
	var rec func(n Node)
	rec = func(n Node) {
		for _, c := range Children(n) {
			pm[c] = n
			rec(c)
		}
	}
	rec(root)
	return pm
}

// EnclosingFunction returns the FunctionDecl that lexically contains n, or
// nil when n is at file scope.
func (pm ParentMap) EnclosingFunction(n Node) *FunctionDecl {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		if fd, ok := cur.(*FunctionDecl); ok {
			return fd
		}
	}
	return nil
}

// EnclosingStmt returns the nearest enclosing statement of n (or n itself
// if it is a statement).
func (pm ParentMap) EnclosingStmt(n Node) Stmt {
	for cur := n; cur != nil; cur = pm[cur] {
		if s, ok := cur.(Stmt); ok {
			return s
		}
	}
	return nil
}

// EnclosingLoop returns the nearest enclosing loop statement of n, or nil.
func (pm ParentMap) EnclosingLoop(n Node) Stmt {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		switch cur.(type) {
		case *WhileStmt, *DoStmt, *ForStmt:
			return cur.(Stmt)
		}
	}
	return nil
}
