package cast

import (
	"strings"
	"testing"
)

const sample = `
#include <stdio.h>
typedef unsigned long size_t;
static char buffer[32];
int g = 42;

struct point { int x; int y; };
enum color { RED, GREEN = 5, BLUE };

int add(int a, int b) { return a + b; }

unsigned foo(int x[64], int y[64]) {
    int i;
    unsigned acc = 0;
    for (i = 0; i < 64; i++) {
        acc += (unsigned)(x[i] * y[i]);
    }
    if (acc > 100) goto big;
    while (acc < 10) { acc <<= 1; }
    switch (acc & 3) {
    case 0: acc++; break;
    case 1: acc--; break;
    default: acc ^= 0x5a;
    }
big:
    return acc;
}

int main(void) {
    struct point p = {1, 2};
    int *q = &p.x;
    double d = 3.14;
    char c = 'a';
    const char *s = "hello" " world";
    long long big = 0x123456789abcdefLL;
    p.y = add(p.x, *q);
    d = d > 1.0 ? d * 2.0 : d / 2.0;
    printf("%d %f %c %s %lld\n", p.y, d, c, s, big);
    return 0;
}
`

func mustParse(t *testing.T, src string) *TranslationUnit {
	t.Helper()
	tu, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tu
}

func mustCheck(t *testing.T, src string) *TranslationUnit {
	t.Helper()
	tu, err := ParseAndCheck(src)
	if err != nil {
		t.Fatalf("ParseAndCheck: %v", err)
	}
	return tu
}

func TestParseSample(t *testing.T) {
	tu := mustCheck(t, sample)
	var fns, vars int
	for _, d := range tu.Decls {
		switch d.(type) {
		case *FunctionDecl:
			fns++
		case *VarDecl:
			vars++
		}
	}
	if fns != 3 {
		t.Errorf("functions = %d, want 3", fns)
	}
	if vars != 2 {
		t.Errorf("globals = %d, want 2", vars)
	}
}

func TestNodeRangesAreOrdered(t *testing.T) {
	tu := mustParse(t, sample)
	Walk(tu, func(n Node) bool {
		r := n.Range()
		if r.Begin > r.End {
			t.Errorf("%s has inverted range %v", n.Kind(), r)
		}
		if r.Begin < 0 || r.End > len(sample) {
			t.Errorf("%s range %v outside source", n.Kind(), r)
		}
		return true
	})
}

func TestChildrenContainedInParent(t *testing.T) {
	tu := mustParse(t, sample)
	Walk(tu, func(n Node) bool {
		for _, c := range Children(n) {
			// DeclStmt re-spans its decls; allow equality not strict.
			if c.Range().Begin < n.Range().Begin || c.Range().End > n.Range().End {
				t.Errorf("%s child %s range %v escapes parent %v",
					n.Kind(), c.Kind(), c.Range(), n.Range())
			}
		}
		return true
	})
}

func TestPrintRoundTrip(t *testing.T) {
	tu := mustCheck(t, sample)
	printed := Print(tu)
	tu2, err := ParseAndCheck(printed)
	if err != nil {
		t.Fatalf("reparse printed source: %v\n--- printed ---\n%s", err, printed)
	}
	// A second print must be a fixed point.
	printed2 := Print(tu2)
	if printed != printed2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s",
			printed, printed2)
	}
}

func TestTypesResolved(t *testing.T) {
	tu := mustCheck(t, sample)
	missing := 0
	Walk(tu, func(n Node) bool {
		if e, ok := n.(Expr); ok {
			if _, isInit := n.(*InitListExpr); isInit {
				return true
			}
			if e.Type().IsNil() {
				missing++
				t.Errorf("%s %q has no type", n.Kind(), snippetOf(tu.Source, n))
			}
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%d expressions missing types", missing)
	}
}

func snippetOf(src string, n Node) string {
	r := n.Range()
	if r.Begin < 0 || r.End > len(src) || r.Begin > r.End {
		return "<bad range>"
	}
	s := src[r.Begin:r.End]
	if len(s) > 40 {
		s = s[:40] + "..."
	}
	return s
}

func TestDeclRefResolution(t *testing.T) {
	tu := mustCheck(t, sample)
	Walk(tu, func(n Node) bool {
		if dr, ok := n.(*DeclRefExpr); ok {
			if dr.Ref == nil {
				t.Errorf("unresolved reference %q", dr.Name)
			}
		}
		return true
	})
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( {",
		"int x = ;",
		"void g() { if }",
		"int a[; ",
		"struct { int",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", "int f(void) { return undeclared_var; }", "undeclared identifier"},
		{"void-assign", "void g(void); int f(void) { int x = g(); return x; }", "incompatible type"},
		{"void-return", "void f(void) { return 1; }", "should not return a value"},
		{"bad-member", "struct s { int a; }; int f(void) { struct s v; return v.b; }", "no member named"},
		{"member-nonstruct", "int f(void) { int x; return x.a; }", "not a structure"},
		{"call-nonfunc", "int f(void) { int x; return x(1); }", "not a function"},
		{"arity", "int g(int a); int f(void) { return g(1, 2); }", "expects"},
		{"const-assign", "int f(void) { const int c = 1; c = 2; return c; }", "const"},
		{"array-assign", "int f(void) { int a[4]; int b[4]; a = b; return 0; }", "not assignable"},
		{"bad-binop", "struct s { int a; }; int f(void) { struct s v; return v + 1; }", "invalid operands"},
		{"ptr-mul", "int f(int *p, int *q) { return p * q; }", "invalid operands"},
		{"float-mod", "int f(void) { double d = 1.5; return d % 2; }", "invalid operands"},
		{"missing-label", "int f(void) { goto nowhere; return 0; }", "undeclared label"},
		{"deref-nonptr", "int f(void) { int x = 1; return *x; }", "indirection requires pointer"},
		{"break-outside", "int f(void) { break; return 0; }", "outside of loop"},
		{"case-outside", "int f(void) { case 1:; return 0; }", "not within a switch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tu, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse error (want sema error): %v", err)
			}
			err = Check(tu)
			if err == nil {
				t.Fatalf("Check passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSemaAccepts(t *testing.T) {
	good := []string{
		"int f(void) { int a = 5; return a << 2; }",
		"int f(int *p) { return p[3]; }",
		"int f(void) { char *s = \"x\"; return s[0]; }",
		"double f(double a, double b) { return a > b ? a : b; }",
		"int f(void) { return printf(\"hi %d\", 3); }",   // builtin
		"int f(void) { undeclared_fn(1, 2); return 0; }", // implicit decl
		"struct s; struct s *f(struct s *p) { return p; }",
		"typedef int myint; myint f(myint m) { return m + 1; }",
		"int f(void) { enum e { A, B }; return A + B; }",
		"int f(void) { int a[2][3]; a[1][2] = 5; return a[1][2]; }",
		"void f(int n) { switch (n) { case 1: break; default: break; } }",
		"int f(void) { int i, sum = 0; for (i = 0; i < 10; ++i) sum += i; return sum; }",
		"unsigned f(unsigned x) { return x >> 3 | x << 29; }",
		"int f(void) { struct p { int x; } v = {1}; return v.x; }",
		"long f(void) { return sizeof(int) + sizeof(long long); }",
		"int f(int c) { return c ? 1 : 0; }",
		"_Complex double x; int f(void) { return 0; }",
		"int f(void) { int x = (int){ 7 }; return x; }",
		"void f(void) { l: goto l; }",
	}
	for _, src := range good {
		if _, err := ParseAndCheck(src); err != nil {
			t.Errorf("ParseAndCheck(%q): %v", src, err)
		}
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	src := "int apply(int (*fn)(int, int), int a, int b) { return fn(a, b); }"
	tu := mustCheck(t, src)
	fd := tu.Decls[0].(*FunctionDecl)
	if len(fd.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(fd.Params))
	}
	pt, ok := fd.Params[0].Ty.Canonical().T.(*PointerType)
	if !ok {
		t.Fatalf("param 0 type = %s, want pointer", fd.Params[0].Ty.CString())
	}
	if _, ok := pt.Elem.Canonical().T.(*FuncType); !ok {
		t.Fatalf("param 0 pointee = %s, want function", pt.Elem.CString())
	}
}

func TestMultiDimArrayType(t *testing.T) {
	tu := mustCheck(t, "int a[2][3];")
	vd := tu.Decls[0].(*VarDecl)
	at, ok := vd.Ty.T.(*ArrayType)
	if !ok || at.Size != 2 {
		t.Fatalf("outer = %s, want [2]", vd.Ty.CString())
	}
	in, ok := at.Elem.T.(*ArrayType)
	if !ok || in.Size != 3 {
		t.Fatalf("inner = %s, want [3]", at.Elem.CString())
	}
	if vd.Ty.Size() != 24 {
		t.Errorf("size = %d, want 24", vd.Ty.Size())
	}
}

func TestRejectsTwoDataTypes(t *testing.T) {
	bad := []string{
		"int double x;",
		"char float y;",
		"void int f(void) { }",
		"float char z;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted two data types", src)
		}
	}
	good := []string{
		"short int a;", "int short b;", "long int c;", "long long int d;",
		"long double e;", "unsigned int f;", "signed char g;",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestFunctionDefinitionRangeIncludesSpecifiers(t *testing.T) {
	src := "static int f(void) { return 1; }"
	tu := mustParse(t, src)
	fd := tu.Decls[0].(*FunctionDecl)
	if fd.Range().Begin != 0 {
		t.Errorf("definition begins at %d, want 0 (the specifiers)", fd.Range().Begin)
	}
}
