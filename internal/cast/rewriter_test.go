package cast

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestRewriterBasics(t *testing.T) {
	rw := NewRewriter("int x = 42;")
	if !rw.ReplaceText(SourceRange{8, 10}, "7") {
		t.Fatal("replace failed")
	}
	if got := rw.Rewritten(); got != "int x = 7;" {
		t.Fatalf("got %q", got)
	}
	rw.Reset()
	if rw.HasEdits() {
		t.Fatal("reset did not clear edits")
	}
	if got := rw.Rewritten(); got != "int x = 42;" {
		t.Fatalf("after reset got %q", got)
	}
}

func TestRewriterInsertions(t *testing.T) {
	rw := NewRewriter("abc")
	rw.InsertTextBefore(0, "<")
	rw.InsertTextAfter(SourceRange{0, 3}, ">")
	rw.InsertTextBefore(1, "|")
	if got := rw.Rewritten(); got != "<a|bc>" {
		t.Fatalf("got %q", got)
	}
}

func TestRewriterOverlapRejected(t *testing.T) {
	rw := NewRewriter("0123456789")
	if !rw.ReplaceText(SourceRange{2, 6}, "X") {
		t.Fatal("first replace failed")
	}
	if rw.ReplaceText(SourceRange{4, 8}, "Y") {
		t.Fatal("overlapping replace accepted")
	}
	if rw.ReplaceText(SourceRange{5, 5}, "") == false {
		// Zero-length inside a replacement is allowed as an edit but
		// dropped at materialization; either is acceptable, but the call
		// itself must not corrupt state.
		t.Log("insertion inside replacement rejected")
	}
	if !rw.ReplaceText(SourceRange{6, 8}, "Z") {
		t.Fatal("adjacent replace rejected")
	}
	if got := rw.Rewritten(); got != "01XZ89" {
		t.Fatalf("got %q", got)
	}
}

func TestRewriterOutOfBounds(t *testing.T) {
	rw := NewRewriter("abc")
	if rw.ReplaceText(SourceRange{-1, 2}, "x") {
		t.Error("negative begin accepted")
	}
	if rw.ReplaceText(SourceRange{0, 4}, "x") {
		t.Error("end beyond buffer accepted")
	}
	if rw.ReplaceText(SourceRange{2, 1}, "x") {
		t.Error("inverted range accepted")
	}
}

func TestFindBracesRange(t *testing.T) {
	src := "int f() { if (x) { y(); } return 0; }"
	rw := NewRewriter(src)
	r, ok := rw.FindBracesRange(0)
	if !ok {
		t.Fatal("braces not found")
	}
	if src[r.Begin] != '{' || src[r.End-1] != '}' || r.End != len(src) {
		t.Fatalf("outer braces range %v => %q", r, src[r.Begin:r.End])
	}
	inner, ok := rw.FindBracesRange(r.Begin + 1)
	if !ok || src[inner.Begin:inner.End] != "{ y(); }" {
		t.Fatalf("inner braces %v => %q", inner, src[inner.Begin:inner.End])
	}
	if _, ok := rw.FindBracesRange(len(src)); ok {
		t.Error("found braces past EOF")
	}
}

func TestFindStrLocFrom(t *testing.T) {
	rw := NewRewriter("foo bar foo")
	if got := rw.FindStrLocFrom(0, "foo"); got != 0 {
		t.Errorf("first foo at %d", got)
	}
	if got := rw.FindStrLocFrom(1, "foo"); got != 8 {
		t.Errorf("second foo at %d", got)
	}
	if got := rw.FindStrLocFrom(9, "foo"); got != -1 {
		t.Errorf("missing foo found at %d", got)
	}
	if got := rw.FindStrLocFrom(-1, "foo"); got != -1 {
		t.Errorf("negative loc returned %d", got)
	}
}

// TestQuickRewriterComposition: applying random non-overlapping
// replacements through the rewriter equals composing them by hand
// right-to-left.
func TestQuickRewriterComposition(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 10
		src := strings.Repeat("x", n)
		// Build disjoint ranges.
		type ed struct {
			begin, end int
			text       string
		}
		var edits []ed
		pos := 0
		for pos < n-2 && len(edits) < 6 {
			begin := pos + rng.Intn(3)
			if begin >= n {
				break
			}
			end := begin + rng.Intn(3)
			if end > n {
				end = n
			}
			edits = append(edits, ed{begin, end,
				strings.Repeat("Y", rng.Intn(3))})
			pos = end + 1
		}
		rw := NewRewriter(src)
		for _, e := range edits {
			if !rw.ReplaceText(SourceRange{e.begin, e.end}, e.text) {
				t.Logf("edit rejected: %+v", e)
				return false
			}
		}
		got := rw.Rewritten()
		// Manual composition right-to-left keeps offsets valid.
		want := src
		sorted := append([]ed(nil), edits...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].begin > sorted[j].begin })
		for _, e := range sorted {
			want = want[:e.begin] + e.text + want[e.end:]
		}
		if got != want {
			t.Logf("composition mismatch: got %q want %q (edits %+v)",
				got, want, edits)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   QualType
		want int64
	}{
		{IntTy, 4}, {CharTy, 1}, {ShortTy, 2}, {LongTy, 8},
		{DoubleTy, 8}, {FloatTy, 4}, {LongDoubleTy, 16},
		{ComplexDoubleTy, 16},
		{PointerTo(IntTy), 8},
		{ArrayOf(IntTy, 10), 40},
		{ArrayOf(ArrayOf(CharTy, 3), 2), 6},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.want {
			t.Errorf("Size(%s) = %d, want %d", c.ty.CString(), got, c.want)
		}
	}
}

func TestStructLayoutSize(t *testing.T) {
	tu := mustCheck(t, `
struct padded { char c; int i; char d; };
struct packed2 { short a; short b; };
union u { int i; char c[7]; };
struct padded gp; struct packed2 gq; union u gu;
`)
	byName := map[string]QualType{}
	for _, d := range tu.Decls {
		if vd, ok := d.(*VarDecl); ok {
			byName[vd.Name] = vd.Ty
		}
	}
	if got := byName["gp"].Size(); got != 12 {
		t.Errorf("padded size = %d, want 12", got)
	}
	if got := byName["gq"].Size(); got != 4 {
		t.Errorf("packed2 size = %d, want 4", got)
	}
	if got := byName["gu"].Size(); got != 8 {
		t.Errorf("union size = %d, want 8 (7 rounded to int align)", got)
	}
}

func TestUsualArithmeticConversion(t *testing.T) {
	cases := []struct {
		a, b, want QualType
	}{
		{IntTy, IntTy, IntTy},
		{CharTy, IntTy, IntTy},
		{IntTy, LongTy, LongTy},
		{UIntTy, IntTy, UIntTy},
		{IntTy, DoubleTy, DoubleTy},
		{FloatTy, LongTy, FloatTy}, // rank model: float > integer kinds
		{DoubleTy, ComplexDoubleTy, ComplexDoubleTy},
		{ShortTy, CharTy, IntTy}, // integer promotion
	}
	for _, c := range cases {
		got := UsualArithmeticConversion(c.a, c.b)
		if !SameType(got, c.want) {
			t.Errorf("UAC(%s, %s) = %s, want %s",
				c.a.CString(), c.b.CString(), got.CString(), c.want.CString())
		}
	}
}

func TestCheckBinopTypes(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r QualType
		want bool
	}{
		{BinAdd, IntTy, IntTy, true},
		{BinAdd, PointerTo(IntTy), IntTy, true},
		{BinAdd, PointerTo(IntTy), PointerTo(IntTy), false},
		{BinSub, PointerTo(IntTy), PointerTo(IntTy), true},
		{BinMul, PointerTo(IntTy), IntTy, false},
		{BinRem, DoubleTy, IntTy, false},
		{BinRem, IntTy, IntTy, true},
		{BinShl, DoubleTy, IntTy, false},
		{BinLAnd, PointerTo(IntTy), IntTy, true},
		{BinLT, IntTy, DoubleTy, true},
	}
	for _, c := range cases {
		if got := CheckBinopTypes(c.op, c.l, c.r); got != c.want {
			t.Errorf("CheckBinopTypes(%s, %s, %s) = %v, want %v",
				c.op, c.l.CString(), c.r.CString(), got, c.want)
		}
	}
}

func TestCheckAssignmentTypes(t *testing.T) {
	if !CheckAssignmentTypes(IntTy, DoubleTy) {
		t.Error("int = double should be allowed")
	}
	if CheckAssignmentTypes(ArrayOf(IntTy, 3), ArrayOf(IntTy, 3)) {
		t.Error("array assignment should be rejected")
	}
	if CheckAssignmentTypes(IntTy.WithQuals(QualConst), IntTy) {
		t.Error("assignment to const should be rejected")
	}
	if CheckAssignmentTypes(IntTy, VoidTy) {
		t.Error("assignment from void should be rejected")
	}
}

func TestDefaultValueExpr(t *testing.T) {
	cases := map[string]QualType{
		"0":   IntTy,
		"0.0": DoubleTy,
		"":    VoidTy,
	}
	for want, ty := range cases {
		if got := DefaultValueExpr(ty); got != want {
			t.Errorf("DefaultValueExpr(%s) = %q, want %q", ty.CString(), got, want)
		}
	}
	if got := DefaultValueExpr(PointerTo(IntTy)); got != "0" {
		t.Errorf("pointer default = %q", got)
	}
	if got := DefaultValueExpr(ArrayOf(IntTy, 2)); got != "{0}" {
		t.Errorf("array default = %q", got)
	}
}
