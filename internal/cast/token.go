// Package cast implements a C front-end for compiler fuzzing: a lexer, a
// recursive-descent parser for a large C subset, a typed AST with source
// locations, semantic analysis, a Clang-style source rewriter, and a
// pretty-printer.
//
// The package is the substrate under the μAST mutation API
// (internal/muast) and under the simulated compiler (internal/compilersim).
package cast

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Punctuation kinds are named after their spelling.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit

	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokColon    // :
	TokQuestion // ?
	TokEllipsis // ...

	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokAmp        // &
	TokPipe       // |
	TokCaret      // ^
	TokTilde      // ~
	TokBang       // !
	TokLess       // <
	TokGreater    // >
	TokAssign     // =
	TokDot        // .
	TokArrow      // ->
	TokPlusPlus   // ++
	TokMinusMinus // --
	TokShl        // <<
	TokShr        // >>
	TokLessEq     // <=
	TokGreaterEq  // >=
	TokEqEq       // ==
	TokNotEq      // !=
	TokAmpAmp     // &&
	TokPipePipe   // ||
	TokPlusEq     // +=
	TokMinusEq    // -=
	TokStarEq     // *=
	TokSlashEq    // /=
	TokPercentEq  // %=
	TokAmpEq      // &=
	TokPipeEq     // |=
	TokCaretEq    // ^=
	TokShlEq      // <<=
	TokShrEq      // >>=
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokKeyword: "keyword",
	TokIntLit: "integer literal", TokFloatLit: "float literal",
	TokCharLit: "char literal", TokStringLit: "string literal",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokColon: ":", TokQuestion: "?", TokEllipsis: "...",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^",
	TokTilde: "~", TokBang: "!", TokLess: "<", TokGreater: ">",
	TokAssign: "=", TokDot: ".", TokArrow: "->", TokPlusPlus: "++",
	TokMinusMinus: "--", TokShl: "<<", TokShr: ">>", TokLessEq: "<=",
	TokGreaterEq: ">=", TokEqEq: "==", TokNotEq: "!=", TokAmpAmp: "&&",
	TokPipePipe: "||", TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokSlashEq: "/=", TokPercentEq: "%=", TokAmpEq: "&=", TokPipeEq: "|=",
	TokCaretEq: "^=", TokShlEq: "<<=", TokShrEq: ">>=",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source extent.
type Token struct {
	Kind TokenKind
	Text string // exact source spelling
	Pos  int    // byte offset of the first character
	End  int    // byte offset one past the last character
	Line int    // 1-based line of Pos
	Col  int    // 1-based column of Pos
}

// Is reports whether the token is the keyword kw.
func (t Token) Is(kw string) bool {
	return t.Kind == TokKeyword && t.Text == kw
}

// keywords recognized by the lexer. GNU-style extension spellings that
// appear in compiler test suites are included so seeds lex cleanly.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "extern": true,
	"float": true, "for": true, "goto": true, "if": true,
	"inline": true, "int": true, "long": true, "register": true,
	"restrict": true, "return": true, "short": true, "signed": true,
	"sizeof": true, "static": true, "struct": true, "switch": true,
	"typedef": true, "union": true, "unsigned": true, "void": true,
	"volatile": true, "while": true,
	"_Bool": true, "_Complex": true, "_Imaginary": true,
	"__restrict": true, "__inline": true, "__volatile__": true,
	"__const": true, "__signed__": true, "__extension__": true,
}

// IsKeyword reports whether s is a reserved word of the supported C subset.
func IsKeyword(s string) bool { return keywords[s] }
