package cast

// Arena is a reset-and-reuse allocator for everything one parse+check
// produces: AST nodes, type objects, and the exact-size child lists that
// hang off them. It extends the token/edit pools in pool.go to the whole
// tree, so re-parsing a mutant on the fuzzing hot path costs zero
// steady-state heap allocations once the arena has grown to the working
// set.
//
// Ownership rules (see docs/PERFORMANCE.md and docs/ARCHITECTURE.md):
//
//   - Everything reachable from a TranslationUnit returned by
//     ParseWithArena/ParseAndCheckArena is owned by the arena and is
//     valid only until the next Reset.
//   - Reset is the caller's statement that no node from the previous
//     parse is referenced anymore. Per-stream compile contexts reset at
//     the top of each compile; nothing may hold a node across that
//     boundary (retain the *source text*, not the tree).
//   - An Arena is not safe for concurrent use. One arena per stream —
//     the same discipline as the stream RNG and the scheduler posterior.
//   - Parse/ParseAndCheck (no arena argument) allocate a private arena
//     that is never reset, so their TUs remain safe to retain and share
//     (the parse cache depends on this).
type Arena struct {
	// Node slabs, one per concrete AST node type.
	translationUnits slab[TranslationUnit]
	functionDecls    slab[FunctionDecl]
	varDecls         slab[VarDecl]
	parmVarDecls     slab[ParmVarDecl]
	fieldDecls       slab[FieldDecl]
	recordDecls      slab[RecordDecl]
	enumDecls        slab[EnumDecl]
	enumConstants    slab[EnumConstantDecl]
	typedefDecls     slab[TypedefDecl]

	compoundStmts slab[CompoundStmt]
	declStmts     slab[DeclStmt]
	exprStmts     slab[ExprStmt]
	ifStmts       slab[IfStmt]
	whileStmts    slab[WhileStmt]
	doStmts       slab[DoStmt]
	forStmts      slab[ForStmt]
	switchStmts   slab[SwitchStmt]
	caseStmts     slab[CaseStmt]
	defaultStmts  slab[DefaultStmt]
	breakStmts    slab[BreakStmt]
	continueStmts slab[ContinueStmt]
	returnStmts   slab[ReturnStmt]
	gotoStmts     slab[GotoStmt]
	labelStmts    slab[LabelStmt]
	nullStmts     slab[NullStmt]

	intLits      slab[IntegerLiteral]
	floatLits    slab[FloatingLiteral]
	charLits     slab[CharLiteral]
	stringLits   slab[StringLiteral]
	declRefs     slab[DeclRefExpr]
	binaryOps    slab[BinaryOperator]
	unaryOps     slab[UnaryOperator]
	callExprs    slab[CallExpr]
	subscripts   slab[ArraySubscriptExpr]
	memberExprs  slab[MemberExpr]
	castExprs    slab[CastExpr]
	condExprs    slab[ConditionalExpr]
	parenExprs   slab[ParenExpr]
	sizeofExprs  slab[SizeofExpr]
	initLists    slab[InitListExpr]
	compoundLits slab[CompoundLiteralExpr]
	commaExprs   slab[CommaExpr]

	// Type-object slabs (BasicType instances are interned globally in
	// types.go and never arena-allocated).
	pointerTypes slab[PointerType]
	arrayTypes   slab[ArrayType]
	funcTypes    slab[FuncType]
	typedefTypes slab[TypedefType]
	recordTypes  slab[RecordType]
	enumTypes    slab[EnumType]

	// Child-list arenas: exact-size slices cut from the scratch stacks.
	declLists  listArena[Decl]
	stmtLists  listArena[Stmt]
	exprLists  listArena[Expr]
	parmLists  listArena[*ParmVarDecl]
	fieldLists listArena[*FieldDecl]
	enumLists  listArena[*EnumConstantDecl]
	qtLists    listArena[QualType]

	// Scratch stacks for building child lists with mark/cut discipline
	// (recursive productions push onto the shared stack and cut only
	// their own tail, so nesting composes).
	scDecls  []Decl
	scStmts  []Stmt
	scExprs  []Expr
	scParms  []*ParmVarDecl
	scFields []*FieldDecl
	scEnums  []*EnumConstantDecl
	scQTs    []QualType

	// strMemo caches decoded string-literal bodies keyed by their source
	// spelling. It survives Reset: entries are plain strings derived only
	// from the spelling, and mutants of one seed share most literals.
	strMemo map[string]string

	// ptrMemo dedups pointer types created during Check (array/function
	// decay, address-of). Values are arena-owned, so Reset clears it.
	ptrMemo map[QualType]*PointerType
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset recycles the arena for the next parse. Every node, type and
// child list handed out since the last Reset becomes invalid.
func (a *Arena) Reset() {
	a.translationUnits.reset()
	a.functionDecls.reset()
	a.varDecls.reset()
	a.parmVarDecls.reset()
	a.fieldDecls.reset()
	a.recordDecls.reset()
	a.enumDecls.reset()
	a.enumConstants.reset()
	a.typedefDecls.reset()
	a.compoundStmts.reset()
	a.declStmts.reset()
	a.exprStmts.reset()
	a.ifStmts.reset()
	a.whileStmts.reset()
	a.doStmts.reset()
	a.forStmts.reset()
	a.switchStmts.reset()
	a.caseStmts.reset()
	a.defaultStmts.reset()
	a.breakStmts.reset()
	a.continueStmts.reset()
	a.returnStmts.reset()
	a.gotoStmts.reset()
	a.labelStmts.reset()
	a.nullStmts.reset()
	a.intLits.reset()
	a.floatLits.reset()
	a.charLits.reset()
	a.stringLits.reset()
	a.declRefs.reset()
	a.binaryOps.reset()
	a.unaryOps.reset()
	a.callExprs.reset()
	a.subscripts.reset()
	a.memberExprs.reset()
	a.castExprs.reset()
	a.condExprs.reset()
	a.parenExprs.reset()
	a.sizeofExprs.reset()
	a.initLists.reset()
	a.compoundLits.reset()
	a.commaExprs.reset()
	a.pointerTypes.reset()
	a.arrayTypes.reset()
	a.funcTypes.reset()
	a.typedefTypes.reset()
	a.recordTypes.reset()
	a.enumTypes.reset()
	a.declLists.reset()
	a.stmtLists.reset()
	a.exprLists.reset()
	a.parmLists.reset()
	a.fieldLists.reset()
	a.enumLists.reset()
	a.qtLists.reset()
	a.scDecls = a.scDecls[:0]
	a.scStmts = a.scStmts[:0]
	a.scExprs = a.scExprs[:0]
	a.scParms = a.scParms[:0]
	a.scFields = a.scFields[:0]
	a.scEnums = a.scEnums[:0]
	a.scQTs = a.scQTs[:0]
	if a.ptrMemo != nil {
		clear(a.ptrMemo)
	}
	// strMemo deliberately survives: values are independent strings.
}

// decodeString returns the decoded body of a string-literal spelling,
// memoized so repeated parses of the same literal stop allocating.
func (a *Arena) decodeString(text string) string {
	if a.strMemo == nil {
		a.strMemo = make(map[string]string, 16)
	}
	if v, ok := a.strMemo[text]; ok {
		return v
	}
	if len(a.strMemo) >= strMemoCap {
		return decodeStringLit(text) // memo full: decode without caching
	}
	v := decodeStringLit(text)
	a.strMemo[text] = v
	return v
}

// strMemoCap bounds the string memo so pathological campaigns cannot
// grow it without limit.
const strMemoCap = 4096

// pointerTo returns an arena-owned pointer type to elem, deduped so the
// checker's decay/address-of paths stop allocating per expression.
func (a *Arena) pointerTo(elem QualType) *PointerType {
	if a.ptrMemo == nil {
		a.ptrMemo = make(map[QualType]*PointerType, 8)
	}
	if pt, ok := a.ptrMemo[elem]; ok {
		return pt
	}
	pt := a.pointerTypes.get()
	pt.Elem = elem
	a.ptrMemo[elem] = pt
	return pt
}

// decay mirrors QualType.Decay with arena-owned (and deduped) pointer
// types, for the parser's parameter adjustment and the checker's
// lvalue-conversion paths.
func (a *Arena) decay(qt QualType) QualType {
	switch t := qt.Canonical().T.(type) {
	case *ArrayType:
		return QualType{T: a.pointerTo(t.Elem)}
	case *FuncType:
		return QualType{T: a.pointerTo(QualType{T: t})}
	}
	return qt
}

// ---------------------------------------------------------------------
// slab: typed bump allocator with geometric chunk growth
// ---------------------------------------------------------------------

// slabBaseChunk is the first chunk's element count; chunks double up to
// slabMaxChunk, so small one-shot parses waste little while reused
// arenas converge on large chunks.
const (
	slabBaseChunk = 8
	slabMaxChunk  = 1024
)

type slab[T any] struct {
	chunks [][]T
	ci     int // index of the chunk currently being bumped
	off    int // next free slot in chunks[ci]
}

// get returns a zeroed *T owned by the slab.
func (s *slab[T]) get() *T {
	for {
		if s.ci == len(s.chunks) {
			n := slabBaseChunk << s.ci
			if n > slabMaxChunk || n <= 0 {
				n = slabMaxChunk
			}
			s.chunks = append(s.chunks, make([]T, n))
		}
		if c := s.chunks[s.ci]; s.off < len(c) {
			p := &c[s.off]
			s.off++
			var zero T
			*p = zero
			return p
		}
		s.ci++
		s.off = 0
	}
}

func (s *slab[T]) reset() { s.ci, s.off = 0, 0 }

// ---------------------------------------------------------------------
// listArena: exact-size slice storage
// ---------------------------------------------------------------------

const (
	listBaseChunk = 32
	listMaxChunk  = 1024
	// listDedicated is the length above which a list gets its own heap
	// slice instead of arena space (rare; keeps chunks dense).
	listDedicated = 512
)

type listArena[T any] struct {
	chunks [][]T
	ci     int
	off    int
}

// save copies src into arena-owned storage, returning a full-capacity
// slice (append never bleeds into a neighbor).
func (a *listArena[T]) save(src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if n > listDedicated {
		out := make([]T, n)
		copy(out, src)
		return out
	}
	for {
		if a.ci == len(a.chunks) {
			sz := listBaseChunk << a.ci
			if sz > listMaxChunk || sz <= 0 {
				sz = listMaxChunk
			}
			if sz < n {
				sz = n
			}
			a.chunks = append(a.chunks, make([]T, sz))
		}
		if c := a.chunks[a.ci]; a.off+n <= len(c) {
			out := c[a.off : a.off+n : a.off+n]
			a.off += n
			copy(out, src)
			return out
		}
		a.ci++
		a.off = 0
	}
}

func (a *listArena[T]) reset() { a.ci, a.off = 0, 0 }

// cutList copies the tail of a scratch stack (everything past mark) into
// arena storage and truncates the stack back to mark — the finish step
// of the mark/push/cut list-building discipline.
func cutList[T any](la *listArena[T], buf *[]T, mark int) []T {
	out := la.save((*buf)[mark:])
	*buf = (*buf)[:mark]
	return out
}
