package cast

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExprTree builds a random well-typed integer expression tree over the
// variables a, b, c (all int), with the given depth budget.
func genExprTree(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			lit := &IntegerLiteral{Value: int64(rng.Intn(100))}
			lit.SetType(IntTy)
			return lit
		case 1:
			dr := &DeclRefExpr{Name: string(rune('a' + rng.Intn(3)))}
			dr.SetType(IntTy)
			return dr
		default:
			cl := &CharLiteral{Value: byte('a' + rng.Intn(26))}
			cl.SetType(IntTy)
			return cl
		}
	}
	switch rng.Intn(8) {
	case 0, 1, 2, 3:
		ops := []BinOp{BinAdd, BinSub, BinMul, BinDiv, BinRem, BinShl,
			BinShr, BinAnd, BinOr, BinXor, BinLT, BinGT, BinLE, BinGE,
			BinEQ, BinNE, BinLAnd, BinLOr}
		bo := &BinaryOperator{
			Op:  ops[rng.Intn(len(ops))],
			LHS: genExprTree(rng, depth-1),
			RHS: genExprTree(rng, depth-1),
		}
		bo.SetType(IntTy)
		return bo
	case 4:
		ops := []UnOp{UnMinus, UnNot, UnLNot, UnPlus}
		uo := &UnaryOperator{Op: ops[rng.Intn(len(ops))], X: genExprTree(rng, depth-1)}
		uo.SetType(IntTy)
		return uo
	case 5:
		ce := &ConditionalExpr{
			Cond: genExprTree(rng, depth-1),
			Then: genExprTree(rng, depth-1),
			Else: genExprTree(rng, depth-1),
		}
		ce.SetType(IntTy)
		return ce
	case 6:
		pe := &ParenExpr{X: genExprTree(rng, depth-1)}
		pe.SetType(IntTy)
		return pe
	default:
		cx := &CommaExpr{LHS: genExprTree(rng, depth-1), RHS: genExprTree(rng, depth-1)}
		cx.SetType(IntTy)
		return cx
	}
}

// normalize renders an expression to a canonical structural string,
// ignoring ParenExpr wrappers (which the printer may legitimately drop or
// add).
func normalize(e Expr) string {
	switch x := e.(type) {
	case *ParenExpr:
		return normalize(x.X)
	case *IntegerLiteral:
		return fmt.Sprintf("%d", x.Value)
	case *CharLiteral:
		// Char literals evaluate to ints; the printer may keep either
		// spelling, so normalize to the value.
		return fmt.Sprintf("%d", x.Value)
	case *DeclRefExpr:
		return x.Name
	case *BinaryOperator:
		return fmt.Sprintf("(%s %s %s)", normalize(x.LHS), x.Op, normalize(x.RHS))
	case *UnaryOperator:
		if x.Op.IsPostfix() {
			return fmt.Sprintf("(%s %s-post)", normalize(x.X), x.Op)
		}
		return fmt.Sprintf("(%s-pre %s)", x.Op, normalize(x.X))
	case *ConditionalExpr:
		return fmt.Sprintf("(%s ? %s : %s)", normalize(x.Cond),
			normalize(x.Then), normalize(x.Else))
	case *CommaExpr:
		return fmt.Sprintf("(%s , %s)", normalize(x.LHS), normalize(x.RHS))
	}
	return "?"
}

// TestQuickExprPrintParseRoundTrip: printing a random expression tree and
// re-parsing it yields a structurally identical expression. This is the
// key correctness property of the precedence-aware printer.
func TestQuickExprPrintParseRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := genExprTree(rng, 4)
		// Char literals print by value only if Text is empty; our
		// generated nodes have no Text, so ExprString uses '%c' form.
		printed := ExprString(tree)
		src := fmt.Sprintf("int f(int a, int b, int c) { return %s; }", printed)
		tu, err := Parse(src)
		if err != nil {
			t.Logf("printed %q failed to parse: %v", printed, err)
			return false
		}
		fd := tu.Decls[0].(*FunctionDecl)
		ret := fd.Body.Stmts[0].(*ReturnStmt)
		got := normalize(ret.Value)
		want := normalize(tree)
		if got != want {
			t.Logf("tree mismatch:\n  printed: %s\n  want: %s\n  got:  %s",
				printed, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLexerNeverPanics: the lexer terminates without panicking on
// arbitrary byte strings (it may return errors).
func TestQuickLexerNeverPanics(t *testing.T) {
	check := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("lexer panicked on %q: %v", data, r)
			}
		}()
		toks, err := Lex(string(data))
		if err == nil && len(toks) == 0 {
			return false // must at least produce EOF
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanics: the parser terminates without panicking on
// arbitrary byte strings.
func TestQuickParserNeverPanics(t *testing.T) {
	check := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", data, r)
			}
		}()
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickTokenPositionsCoverInput: token extents are monotonically
// non-overlapping and within bounds.
func TestQuickTokenPositionsCoverInput(t *testing.T) {
	check := func(data []byte) bool {
		toks, err := Lex(string(data))
		if err != nil {
			return true
		}
		prevEnd := 0
		for _, tok := range toks {
			if tok.Pos < prevEnd || tok.End < tok.Pos || tok.End > len(data) {
				t.Logf("bad token extent %v in %q", tok, data)
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFormatAsDeclParsesBack: FormatAsDecl output re-parses to the
// same type for randomly composed types.
func TestQuickFormatAsDeclParsesBack(t *testing.T) {
	genType := func(rng *rand.Rand) QualType {
		base := []QualType{IntTy, CharTy, LongTy, DoubleTy, UIntTy,
			ShortTy, FloatTy, ULongLongTy}[rng.Intn(8)]
		ty := base
		for i := 0; i < rng.Intn(3); i++ {
			switch rng.Intn(2) {
			case 0:
				ty = PointerTo(ty)
			case 1:
				// Arrays of pointers are fine; pointers to arrays need
				// parens that FormatAsDecl must emit correctly.
				ty = ArrayOf(ty, int64(rng.Intn(9)+1))
			}
		}
		return ty
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := genType(rng)
		decl := FormatAsDecl(ty, "x") + ";"
		tu, err := Parse(decl)
		if err != nil {
			t.Logf("decl %q does not parse: %v", decl, err)
			return false
		}
		vd, ok := tu.Decls[0].(*VarDecl)
		if !ok {
			t.Logf("decl %q did not yield a VarDecl", decl)
			return false
		}
		if !SameType(vd.Ty, ty) {
			t.Logf("decl %q re-parses as %s, want %s", decl,
				vd.Ty.CString(), ty.CString())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickWalkVisitsEveryChildOnce: Children() and Walk() agree on node
// counts.
func TestQuickWalkVisitsEveryChildOnce(t *testing.T) {
	srcs := []string{sample,
		"int f(int n) { while (n) { n--; } return n; }",
		"struct s { int a; }; int g(struct s *p) { return p->a; }",
	}
	for _, src := range srcs {
		tu := mustParse(t, src)
		visited := map[Node]int{}
		Walk(tu, func(n Node) bool {
			visited[n]++
			return true
		})
		for n, count := range visited {
			if count != 1 {
				t.Errorf("node %s visited %d times", n.Kind(), count)
			}
		}
		var countChildren func(n Node) int
		countChildren = func(n Node) int {
			total := 1
			for _, c := range Children(n) {
				total += countChildren(c)
			}
			return total
		}
		if got := countChildren(tu); got != len(visited) {
			t.Errorf("Children-count %d != Walk-count %d", got, len(visited))
		}
	}
}

var _ = reflect.DeepEqual
