package cast

import (
	"sort"
	"strings"
)

// Rewriter applies textual edits to the original source buffer, in the
// style of Clang's Rewriter: mutators record replacements/insertions
// against original byte offsets and the final text is produced once.
//
// Edits never see each other: all offsets refer to the ORIGINAL buffer.
// Overlapping replacements are rejected (the second edit returns false),
// which mirrors how careless Clang rewrites silently corrupt output — our
// mutators are expected to avoid overlaps.
type Rewriter struct {
	src   string
	edits []edit
}

type edit struct {
	begin, end int    // original-buffer range being replaced
	text       string // replacement text
	seq        int    // tie-break: stable order for same-point insertions
}

// NewRewriter returns a rewriter over src.
func NewRewriter(src string) *Rewriter { return &Rewriter{src: src} }

// Source returns the original, unedited buffer.
func (rw *Rewriter) Source() string { return rw.src }

// HasEdits reports whether any edit has been recorded.
func (rw *Rewriter) HasEdits() bool { return len(rw.edits) > 0 }

// EditCount returns the number of recorded edits.
func (rw *Rewriter) EditCount() int { return len(rw.edits) }

func (rw *Rewriter) validRange(begin, end int) bool {
	return begin >= 0 && begin <= end && end <= len(rw.src)
}

// overlaps reports whether [begin,end) overlaps an existing replacement.
// Pure insertions (begin == end) never conflict.
func (rw *Rewriter) overlaps(begin, end int) bool {
	if begin == end {
		return false
	}
	for _, e := range rw.edits {
		if e.begin == e.end {
			continue
		}
		if begin < e.end && e.begin < end {
			return true
		}
	}
	return false
}

// ReplaceText replaces the original text in r with text.
func (rw *Rewriter) ReplaceText(r SourceRange, text string) bool {
	return rw.replace(r.Begin, r.End, text)
}

// ReplaceNode replaces the full source extent of node n with text.
func (rw *Rewriter) ReplaceNode(n Node, text string) bool {
	r := n.Range()
	return rw.replace(r.Begin, r.End, text)
}

// RemoveText deletes the original text in r.
func (rw *Rewriter) RemoveText(r SourceRange) bool {
	return rw.replace(r.Begin, r.End, "")
}

// RemoveNode deletes the full source extent of node n.
func (rw *Rewriter) RemoveNode(n Node) bool {
	return rw.ReplaceNode(n, "")
}

// InsertTextBefore inserts text immediately before offset pos.
func (rw *Rewriter) InsertTextBefore(pos int, text string) bool {
	return rw.replace(pos, pos, text)
}

// InsertTextAfter inserts text immediately after the range r.
func (rw *Rewriter) InsertTextAfter(r SourceRange, text string) bool {
	return rw.replace(r.End, r.End, text)
}

func (rw *Rewriter) replace(begin, end int, text string) bool {
	if !rw.validRange(begin, end) || rw.overlaps(begin, end) {
		return false
	}
	rw.edits = append(rw.edits, edit{begin: begin, end: end, text: text,
		seq: len(rw.edits)})
	return true
}

// Rewritten materializes the edited buffer.
func (rw *Rewriter) Rewritten() string {
	if len(rw.edits) == 0 {
		return rw.src
	}
	bufp := editPool.Get().(*[]edit)
	edits := append((*bufp)[:0], rw.edits...)
	defer func() {
		*bufp = edits[:0]
		editPool.Put(bufp)
	}()
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].begin != edits[j].begin {
			return edits[i].begin < edits[j].begin
		}
		// Replacements at the same point run after insertions so that an
		// insert-before lands before the replaced text.
		li, lj := edits[i].begin == edits[i].end, edits[j].begin == edits[j].end
		if li != lj {
			return li
		}
		return edits[i].seq < edits[j].seq
	})
	var sb strings.Builder
	sb.Grow(len(rw.src) + 64)
	cur := 0
	for _, e := range edits {
		if e.begin < cur {
			// Insertion inside an earlier replacement; drop it.
			continue
		}
		sb.WriteString(rw.src[cur:e.begin])
		sb.WriteString(e.text)
		cur = e.end
	}
	sb.WriteString(rw.src[cur:])
	return sb.String()
}

// Reset discards all recorded edits.
func (rw *Rewriter) Reset() { rw.edits = rw.edits[:0] }

// GetSourceText extracts the original text of a range.
func (rw *Rewriter) GetSourceText(r SourceRange) string {
	if !rw.validRange(r.Begin, r.End) {
		return ""
	}
	return rw.src[r.Begin:r.End]
}

// FindStrLocFrom locates target in the original buffer at or after loc,
// returning its offset or -1. Mirrors the μAST findStrLocFrom API.
func (rw *Rewriter) FindStrLocFrom(loc int, target string) int {
	if loc < 0 || loc > len(rw.src) {
		return -1
	}
	i := strings.Index(rw.src[loc:], target)
	if i < 0 {
		return -1
	}
	return loc + i
}

// FindBracesRange identifies the extent of the first brace pair that opens
// at or after from, including the braces. Mirrors μAST findBracesRange.
func (rw *Rewriter) FindBracesRange(from int) (SourceRange, bool) {
	open := rw.FindStrLocFrom(from, "{")
	if open < 0 {
		return SourceRange{}, false
	}
	depth := 0
	for i := open; i < len(rw.src); i++ {
		switch rw.src[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return SourceRange{open, i + 1}, true
			}
		}
	}
	return SourceRange{}, false
}
