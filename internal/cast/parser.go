package cast

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ParseError describes a syntax error.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: syntax error: %s", e.Line, e.Col, e.Msg)
}

// Parser turns a token stream into a TranslationUnit. Parsers are pooled
// and every node they produce comes from the Arena passed to
// ParseWithArena; the zero value is not usable directly — go through
// Parse/ParseWithArena.
type Parser struct {
	src  string
	toks []Token
	pos  int

	// arena owns every node, type and child list this parse creates.
	arena *Arena

	// scopes tracks typedef names (value true) so declarations can be
	// disambiguated from expressions, plus struct/union/enum tags. The
	// slices (and the maps retained in their spare capacity) are reused
	// across pooled parses.
	typedefScopes []map[string]QualType
	tagScopes     []map[string]Decl

	// scSuffixes is the mark/cut scratch stack for declarator suffixes
	// (see parseDeclSuffixes); reused across pooled parses.
	scSuffixes []declSuffix

	// lastParams holds the parameter declarations of the most recently
	// parsed function declarator, consumed by parseFunctionDefinition.
	lastParams []*ParmVarDecl

	err *ParseError
}

var parserPool = sync.Pool{New: func() any { return &Parser{} }}

// Parse lexes and parses src, returning the AST. Parsing is
// best-effort-strict: any syntax error aborts with a non-nil error.
// The returned unit owns a private arena that is never reset, so it is
// safe to retain and share (the parse cache depends on this).
func Parse(src string) (*TranslationUnit, error) {
	return ParseWithArena(src, NewArena())
}

// ParseWithArena parses src with every node allocated from a. Callers
// that reuse a across parses (the fuzzing hot loop) must Reset it first
// and must not retain any node from a previous parse; see Arena.
func ParseWithArena(src string, a *Arena) (*TranslationUnit, error) {
	bufp := tokenPool.Get().(*[]Token)
	toks, lexErr := lexInto(src, (*bufp)[:0])
	defer func() {
		*bufp = toks[:0]
		tokenPool.Put(bufp)
	}()
	if lexErr != nil {
		return nil, lexErr
	}
	return ParseTokens(src, toks, a)
}

// ParseTokens parses an already-lexed token stream (as produced by
// Lex/lexInto, terminated by a TokEOF token) over a caller-owned arena.
// Callers that lex once and reuse the tokens — the compile hot loop
// walks the stream for lexical coverage before parsing — avoid
// tokenizing the same source twice. toks is only read and may be reused
// by the caller after ParseTokens returns; src must be the exact text
// the tokens were lexed from (node source ranges index into it).
func ParseTokens(src string, toks []Token, a *Arena) (*TranslationUnit, error) {
	p := parserPool.Get().(*Parser)
	p.src, p.toks, p.pos, p.err = src, toks, 0, nil
	p.arena = a
	p.typedefScopes = p.typedefScopes[:0]
	p.tagScopes = p.tagScopes[:0]
	p.scSuffixes = p.scSuffixes[:0]
	p.pushScope()
	tu := p.parseTranslationUnit()
	err := p.err
	p.src, p.toks, p.arena, p.err, p.lastParams = "", nil, nil, nil, nil
	parserPool.Put(p)
	if err != nil {
		return nil, err
	}
	tu.Source = src
	tu.arena = a
	return tu, nil
}

// ParseAndCheck parses src and runs semantic analysis.
func ParseAndCheck(src string) (*TranslationUnit, error) {
	tu, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(tu); err != nil {
		return nil, err
	}
	return tu, nil
}

// ParseAndCheckArena is ParseAndCheck over a caller-owned arena; the
// checker draws its own allocations (implicit decls, derived types) from
// the same arena.
func ParseAndCheckArena(src string, a *Arena) (*TranslationUnit, error) {
	tu, err := ParseWithArena(src, a)
	if err != nil {
		return nil, err
	}
	if err := Check(tu); err != nil {
		return nil, err
	}
	return tu, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) atKw(kw string) bool { return p.cur().Is(kw) }

func (p *Parser) accept(k TokenKind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.fail("expected %s, found %q", k, p.cur().Text)
	return p.cur()
}

// fail records the first error and fast-forwards to EOF so parsing
// unwinds without panics.
func (p *Parser) fail(format string, args ...any) {
	if p.err == nil {
		t := p.cur()
		p.err = &ParseError{Line: t.Line, Col: t.Col,
			Msg: fmt.Sprintf(format, args...)}
	}
	p.pos = len(p.toks) - 1
}

// pushScopeMap grows s by one scope, reusing (and clearing) a map
// retained in the slice's spare capacity from an earlier pooled parse.
func pushScopeMap[V any](s []map[string]V) []map[string]V {
	n := len(s)
	if n < cap(s) {
		s = s[:n+1]
		if s[n] == nil {
			s[n] = map[string]V{}
		} else {
			clear(s[n])
		}
		return s
	}
	return append(s, map[string]V{})
}

func (p *Parser) pushScope() {
	p.typedefScopes = pushScopeMap(p.typedefScopes)
	p.tagScopes = pushScopeMap(p.tagScopes)
}

func (p *Parser) popScope() {
	p.typedefScopes = p.typedefScopes[:len(p.typedefScopes)-1]
	p.tagScopes = p.tagScopes[:len(p.tagScopes)-1]
}

func (p *Parser) defineTypedef(name string, ty QualType) {
	p.typedefScopes[len(p.typedefScopes)-1][name] = ty
}

func (p *Parser) lookupTypedef(name string) (QualType, bool) {
	for i := len(p.typedefScopes) - 1; i >= 0; i-- {
		if ty, ok := p.typedefScopes[i][name]; ok {
			return ty, true
		}
	}
	return QualType{}, false
}

func (p *Parser) defineTag(name string, d Decl) {
	p.tagScopes[len(p.tagScopes)-1][name] = d
}

func (p *Parser) lookupTag(name string) (Decl, bool) {
	for i := len(p.tagScopes) - 1; i >= 0; i-- {
		if d, ok := p.tagScopes[i][name]; ok {
			return d, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

func (p *Parser) parseTranslationUnit() *TranslationUnit {
	a := p.arena
	tu := a.translationUnits.get()
	start := p.cur().Pos
	mark := len(a.scDecls)
	for !p.at(TokEOF) && p.err == nil {
		if _, ok := p.accept(TokSemi); ok {
			continue
		}
		p.parseExternalDeclaration()
	}
	tu.Decls = cutList(&a.declLists, &a.scDecls, mark)
	tu.SetRange(start, p.cur().End)
	return tu
}

// typeSpecKeywords are keywords that can begin declaration specifiers.
var typeSpecKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"_Bool": true, "_Complex": true, "struct": true, "union": true,
	"enum": true, "const": true, "volatile": true, "restrict": true,
	"static": true, "extern": true, "typedef": true, "register": true,
	"auto": true, "inline": true, "__restrict": true, "__inline": true,
	"__const": true, "__signed__": true, "__extension__": true,
	"__volatile__": true,
}

// startsDecl reports whether the current token begins a declaration.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if t.Kind == TokKeyword && typeSpecKeywords[t.Text] {
		return true
	}
	if t.Kind == TokIdent {
		if _, ok := p.lookupTypedef(t.Text); ok {
			// "T * x;" is a declaration; "T * x" as expression would
			// need T to be a variable, which typedef shadows here.
			return true
		}
	}
	return false
}

// parseExternalDeclaration pushes the parsed declarations onto the
// arena's decl scratch stack (the caller cuts the whole top-level run
// once, into tu.Decls).
func (p *Parser) parseExternalDeclaration() {
	a := p.arena
	specs := p.parseDeclSpecs()
	if p.err != nil {
		return
	}
	// "struct s { ... };" with no declarator.
	if p.at(TokSemi) {
		p.advance()
		if specs.ownedTag != nil {
			a.scDecls = append(a.scDecls, specs.ownedTag)
		}
		return
	}
	if specs.ownedTag != nil {
		a.scDecls = append(a.scDecls, specs.ownedTag)
	}
	for {
		name, ty, nameRng, declStart := p.parseDeclarator(specs.base)
		if p.err != nil {
			return
		}
		if ft, ok := ty.T.(*FuncType); ok && p.at(TokLBrace) {
			fd := p.parseFunctionDefinition(name, ft, specs, declStart, nameRng)
			a.scDecls = append(a.scDecls, fd)
			return
		}
		d := p.finishInitDeclarator(name, ty, specs, nameRng, declStart, true)
		if d != nil {
			a.scDecls = append(a.scDecls, d)
		}
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.expect(TokSemi)
}

// declSpecs carries the parsed declaration specifiers.
type declSpecs struct {
	base    QualType
	storage StorageClass
	inline  bool
	// ownedTag is a RecordDecl/EnumDecl defined inline in the specifiers,
	// which must be emitted as a declaration of its own.
	ownedTag Decl
	// start is the byte offset where the specifiers began.
	start int
	end   int
}

func (p *Parser) parseDeclSpecs() declSpecs {
	ds := declSpecs{start: p.cur().Pos}
	var (
		quals    Qualifiers
		sawType  bool
		longs    int
		unsigned bool
		signed_  bool
		baseKind = Int
		sawBase  bool
		complex_ bool
		result   QualType
	)
	// setBase records a base type-specifier keyword, rejecting illegal
	// combinations like "int double" ("two or more data types in
	// declaration specifiers"). "short int"/"int short" are the only
	// legal pairings among the base keywords (long is counted apart).
	setBase := func(k BasicKind) {
		if sawBase {
			okPair := (baseKind == Short && k == Int) ||
				(baseKind == Int && k == Short)
			if !okPair && baseKind != k {
				p.fail("two or more data types in declaration specifiers")
				return
			}
			if baseKind == Int && k == Short {
				baseKind = Short
			}
			sawType = true
			return
		}
		sawBase, sawType = true, true
		baseKind = k
	}
	for {
		t := p.cur()
		switch {
		case t.Is("const") || t.Is("__const"):
			quals |= QualConst
			p.advance()
		case t.Is("volatile") || t.Is("__volatile__"):
			quals |= QualVolatile
			p.advance()
		case t.Is("restrict") || t.Is("__restrict"):
			quals |= QualRestrict
			p.advance()
		case t.Is("__extension__"):
			p.advance()
		case t.Is("static"):
			ds.storage = StorageStatic
			p.advance()
		case t.Is("extern"):
			ds.storage = StorageExtern
			p.advance()
		case t.Is("typedef"):
			ds.storage = StorageTypedef
			p.advance()
		case t.Is("register"):
			ds.storage = StorageRegister
			p.advance()
		case t.Is("auto"):
			ds.storage = StorageAuto
			p.advance()
		case t.Is("inline") || t.Is("__inline"):
			ds.inline = true
			p.advance()
		case t.Is("void"):
			setBase(Void)
			p.advance()
		case t.Is("_Bool"):
			setBase(Bool)
			p.advance()
		case t.Is("char"):
			setBase(Char)
			p.advance()
		case t.Is("short"):
			setBase(Short)
			p.advance()
		case t.Is("int"):
			if longs == 0 {
				setBase(Int)
			} else {
				sawType = true
			}
			p.advance()
		case t.Is("long"):
			sawType = true
			longs++
			p.advance()
		case t.Is("float"):
			setBase(Float)
			p.advance()
		case t.Is("double"):
			setBase(Double)
			p.advance()
		case t.Is("signed") || t.Is("__signed__"):
			sawType, signed_ = true, true
			p.advance()
		case t.Is("unsigned"):
			sawType, unsigned = true, true
			p.advance()
		case t.Is("_Complex"):
			sawType, complex_ = true, true
			p.advance()
		case t.Is("struct") || t.Is("union"):
			result = p.parseRecordSpecifier(&ds)
			sawType = true
		case t.Is("enum"):
			result = p.parseEnumSpecifier(&ds)
			sawType = true
		case t.Kind == TokIdent && !sawType && result.IsNil():
			if ty, ok := p.lookupTypedef(t.Text); ok {
				tt := p.arena.typedefTypes.get()
				tt.Name, tt.Underlying = t.Text, ty
				result = QualType{T: tt}
				sawType = true
				p.advance()
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	if result.IsNil() {
		if !sawType {
			// Implicit int (K&R style, appears in compiler test suites).
			baseKind = Int
		}
		result = basicTy(p.combineBasic(baseKind, longs, unsigned, signed_, complex_))
	}
	ds.base = result.WithQuals(quals)
	ds.end = p.cur().Pos
	return ds
}

func (p *Parser) combineBasic(k BasicKind, longs int, unsigned, signed_, complex_ bool) BasicKind {
	if complex_ {
		return ComplexDouble
	}
	switch k {
	case Char:
		if unsigned {
			return UChar
		}
		if signed_ {
			return SChar
		}
		return Char
	case Short:
		if unsigned {
			return UShort
		}
		return Short
	case Double:
		if longs > 0 {
			return LongDouble
		}
		return Double
	case Int:
		switch {
		case longs >= 2:
			if unsigned {
				return ULongLong
			}
			return LongLong
		case longs == 1:
			if unsigned {
				return ULong
			}
			return Long
		case unsigned:
			return UInt
		}
		return Int
	}
	return k
}

func (p *Parser) parseRecordSpecifier(ds *declSpecs) QualType {
	a := p.arena
	kw := p.next() // struct or union
	isUnion := kw.Text == "union"
	name := ""
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
	}
	var rd *RecordDecl
	if name != "" {
		if d, ok := p.lookupTag(name); ok {
			rd, _ = d.(*RecordDecl)
		}
	}
	if rd == nil {
		rd = a.recordDecls.get()
		rd.Name, rd.IsUnion = name, isUnion
		rd.SetRange(kw.Pos, p.cur().End)
		if name != "" {
			p.defineTag(name, rd)
		}
	}
	if p.at(TokLBrace) {
		p.advance()
		rd.Complete = true
		fmark := len(a.scFields)
		for !p.at(TokRBrace) && p.err == nil {
			fieldSpecs := p.parseDeclSpecs()
			for {
				fname, fty, fnameRng, fstart := p.parseDeclarator(fieldSpecs.base)
				// Bitfields: parse and ignore the width.
				if _, ok := p.accept(TokColon); ok {
					p.parseConditionalExpr()
				}
				fd := a.fieldDecls.get()
				fd.Name, fd.Ty = fname, fty
				fd.SetRange(fstart, p.cur().Pos)
				_ = fnameRng
				a.scFields = append(a.scFields, fd)
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			p.expect(TokSemi)
		}
		rbrace := p.expect(TokRBrace)
		flds := cutList(&a.fieldLists, &a.scFields, fmark)
		if rd.Fields == nil {
			rd.Fields = flds
		} else {
			// Tag redefinition: keep the historical append semantics.
			rd.Fields = append(rd.Fields[:len(rd.Fields):len(rd.Fields)], flds...)
		}
		rd.SetRange(kw.Pos, rbrace.End)
		ds.ownedTag = rd
	}
	rt := a.recordTypes.get()
	rt.Decl = rd
	return QualType{T: rt}
}

func (p *Parser) parseEnumSpecifier(ds *declSpecs) QualType {
	a := p.arena
	kw := p.next() // enum
	name := ""
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
	}
	var ed *EnumDecl
	if name != "" {
		if d, ok := p.lookupTag(name); ok {
			ed, _ = d.(*EnumDecl)
		}
	}
	if ed == nil {
		ed = a.enumDecls.get()
		ed.Name = name
		ed.SetRange(kw.Pos, p.cur().End)
		if name != "" {
			p.defineTag(name, ed)
		}
	}
	if p.at(TokLBrace) {
		p.advance()
		next := int64(0)
		emark := len(a.scEnums)
		for !p.at(TokRBrace) && p.err == nil {
			ct := p.expect(TokIdent)
			ec := a.enumConstants.get()
			ec.Name = ct.Text
			ec.SetRange(ct.Pos, ct.End)
			if _, ok := p.accept(TokAssign); ok {
				ec.Value = p.parseConditionalExpr()
				if v, ok := constIntValue(ec.Value); ok {
					next = v
				}
				ec.SetRange(ct.Pos, p.cur().Pos)
			}
			ec.Num = next
			next++
			a.scEnums = append(a.scEnums, ec)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		rbrace := p.expect(TokRBrace)
		consts := cutList(&a.enumLists, &a.scEnums, emark)
		if ed.Constants == nil {
			ed.Constants = consts
		} else {
			ed.Constants = append(ed.Constants[:len(ed.Constants):len(ed.Constants)], consts...)
		}
		ed.SetRange(kw.Pos, rbrace.End)
		ds.ownedTag = ed
	}
	et := a.enumTypes.get()
	et.Decl = ed
	return QualType{T: et}
}

// ConstIntValue evaluates trivially constant integer expressions (as used
// in enum values and array dimensions): literals and pure arithmetic over
// them. ok is false for anything it cannot fold.
func ConstIntValue(e Expr) (int64, bool) { return constIntValue(e) }

// constIntValue evaluates trivially constant integer expressions used in
// enum values and array dimensions.
func constIntValue(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntegerLiteral:
		return x.Value, true
	case *CharLiteral:
		return int64(x.Value), true
	case *ParenExpr:
		return constIntValue(x.X)
	case *UnaryOperator:
		v, ok := constIntValue(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case UnMinus:
			return -v, true
		case UnPlus:
			return v, true
		case UnNot:
			return ^v, true
		case UnLNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *BinaryOperator:
		l, lok := constIntValue(x.LHS)
		r, rok := constIntValue(x.RHS)
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case BinAdd:
			return l + r, true
		case BinSub:
			return l - r, true
		case BinMul:
			return l * r, true
		case BinDiv:
			if r != 0 {
				return l / r, true
			}
		case BinRem:
			if r != 0 {
				return l % r, true
			}
		case BinShl:
			if r >= 0 && r < 64 {
				return l << uint(r), true
			}
		case BinShr:
			if r >= 0 && r < 64 {
				return l >> uint(r), true
			}
		case BinAnd:
			return l & r, true
		case BinOr:
			return l | r, true
		case BinXor:
			return l ^ r, true
		}
	}
	return 0, false
}

// parseDeclarator parses pointers, the declarator core, and array/function
// suffixes, producing the declared name and full type. declStart is the
// offset where the enclosing declaration began (the specifiers).
func (p *Parser) parseDeclarator(baseTy QualType) (name string, ty QualType, nameRng SourceRange, declStart int) {
	declStart = p.cur().Pos
	ty = p.parsePointers(baseTy)
	name, ty, nameRng = p.parseDirectDeclarator(ty)
	return name, ty, nameRng, declStart
}

func (p *Parser) parsePointers(ty QualType) QualType {
	for p.at(TokStar) {
		p.advance()
		var q Qualifiers
		for {
			switch {
			case p.acceptKw("const") || p.acceptKw("__const"):
				q |= QualConst
			case p.acceptKw("volatile") || p.acceptKw("__volatile__"):
				q |= QualVolatile
			case p.acceptKw("restrict") || p.acceptKw("__restrict"):
				q |= QualRestrict
			default:
				pt := p.arena.pointerTypes.get()
				pt.Elem = ty
				ty = QualType{T: pt, Q: q}
				goto next
			}
		}
	next:
	}
	return ty
}

// parseDirectDeclarator handles "(declarator)", the identifier, and
// array/function suffixes. Parenthesized declarators are supported by
// recording suffixes and re-applying them inside-out.
func (p *Parser) parseDirectDeclarator(ty QualType) (string, QualType, SourceRange) {
	// Parenthesized declarator, e.g. int (*fp)(int).
	if p.at(TokLParen) && p.isAbstractParen() {
		p.advance()
		// Parse the inner declarator against a placeholder, then wrap.
		innerStart := p.pos
		// Skip to matching ')' to find suffixes first.
		depth := 1
		for depth > 0 && !p.at(TokEOF) {
			if p.at(TokLParen) {
				depth++
			} else if p.at(TokRParen) {
				depth--
				if depth == 0 {
					break
				}
			}
			p.advance()
		}
		p.expect(TokRParen)
		// Parse suffixes that apply to the inner declarator.
		ty = p.parseDeclSuffixes(ty)
		// Now re-parse the inner declarator with the suffixed type.
		save := p.pos
		p.pos = innerStart
		innerTy := p.parsePointers(ty)
		name, innerTy, nameRng := p.parseDirectDeclarator(innerTy)
		p.pos = save
		return name, innerTy, nameRng
	}
	var name string
	var nameRng SourceRange
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
		nameRng = SourceRange{t.Pos, t.End}
	}
	ty = p.parseDeclSuffixes(ty)
	return name, ty, nameRng
}

// isAbstractParen distinguishes "(*...)" / "(ident...)" declarators from a
// function parameter list "(int x)".
func (p *Parser) isAbstractParen() bool {
	t := p.peek(1)
	if t.Kind == TokStar {
		return true
	}
	if t.Kind == TokIdent {
		_, isTypedef := p.lookupTypedef(t.Text)
		return !isTypedef
	}
	return false
}

// declSuffix is one array/function declarator suffix, collected
// left-to-right on the parser's scratch stack and folded right-to-left.
type declSuffix struct {
	isArray  bool
	size     int64
	params   []*ParmVarDecl
	variadic bool
}

func (p *Parser) parseDeclSuffixes(ty QualType) QualType {
	// Collect suffixes left-to-right, then fold right-to-left so that
	// "int a[2][3]" becomes array(2, array(3, int)). The stack nests
	// (parameter declarators recurse here), so only our own tail — past
	// mark — is folded and truncated.
	a := p.arena
	mark := len(p.scSuffixes)
	for {
		switch {
		case p.at(TokLBracket):
			p.advance()
			sz := int64(-1)
			if !p.at(TokRBracket) {
				e := p.parseAssignExpr()
				if v, ok := constIntValue(e); ok {
					sz = v
				} else {
					sz = 1 // VLA-ish; treat as size-1 for layout
				}
			}
			p.expect(TokRBracket)
			p.scSuffixes = append(p.scSuffixes, declSuffix{isArray: true, size: sz})
		case p.at(TokLParen):
			p.advance()
			params, variadic := p.parseParamList()
			p.expect(TokRParen)
			p.scSuffixes = append(p.scSuffixes, declSuffix{params: params, variadic: variadic})
		default:
			goto fold
		}
	}
fold:
	for i := len(p.scSuffixes) - 1; i >= mark; i-- {
		s := p.scSuffixes[i]
		if s.isArray {
			at := a.arrayTypes.get()
			at.Elem, at.Size = ty, s.size
			ty = QualType{T: at}
		} else {
			ft := a.funcTypes.get()
			ft.Ret, ft.Variadic = ty, s.variadic
			qmark := len(a.scQTs)
			for _, pv := range s.params {
				a.scQTs = append(a.scQTs, pv.Ty)
			}
			ft.Params = cutList(&a.qtLists, &a.scQTs, qmark)
			ty = QualType{T: ft}
			// Stash the decls so parseFunctionDefinition can reuse them.
			p.lastParams = s.params
		}
	}
	p.scSuffixes = p.scSuffixes[:mark]
	return ty
}

func (p *Parser) parseParamList() ([]*ParmVarDecl, bool) {
	a := p.arena
	mark := len(a.scParms)
	variadic := false
	if p.at(TokRParen) {
		return nil, false
	}
	// "(void)" means no parameters.
	if p.atKw("void") && p.peek(1).Kind == TokRParen {
		p.advance()
		return nil, false
	}
	idx := 0
	for {
		if p.at(TokEllipsis) {
			p.advance()
			variadic = true
			break
		}
		if !p.startsDecl() {
			// K&R identifier list: treat each as int parameter.
			if t, ok := p.accept(TokIdent); ok {
				pv := a.parmVarDecls.get()
				pv.Name, pv.Ty, pv.Index = t.Text, IntTy, idx
				pv.SetRange(t.Pos, t.End)
				a.scParms = append(a.scParms, pv)
				idx++
				if _, ok := p.accept(TokComma); ok {
					continue
				}
			}
			break
		}
		specs := p.parseDeclSpecs()
		start := p.cur().Pos
		pname, pty, _, _ := p.parseDeclarator(specs.base)
		pty = a.decay(pty) // arrays/functions decay in parameter position
		pv := a.parmVarDecls.get()
		pv.Name, pv.Ty, pv.Index = pname, pty, idx
		pv.SetRange(min(specs.start, start), p.cur().Pos)
		a.scParms = append(a.scParms, pv)
		idx++
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	return cutList(&a.parmLists, &a.scParms, mark), variadic
}

func (p *Parser) parseFunctionDefinition(name string, ft *FuncType,
	specs declSpecs, declStart int, nameRng SourceRange) *FunctionDecl {
	fd := p.arena.functionDecls.get()
	fd.Name = name
	fd.Ret = ft.Ret
	fd.Params = p.lastParams
	fd.Storage = specs.storage
	fd.Inline = specs.inline
	fd.Variadic = ft.Variadic
	fd.RetTypeRange = SourceRange{specs.start, specs.end}
	fd.NameRange = nameRng
	p.pushScope()
	fd.Body = p.parseCompoundStmt()
	p.popScope()
	// The definition's extent starts at its declaration specifiers, not
	// at the declarator — insertions before the function must land
	// before the return type.
	begin := declStart
	if specs.start < begin {
		begin = specs.start
	}
	fd.SetRange(begin, fd.Body.Range().End)
	return fd
}

func (p *Parser) finishInitDeclarator(name string, ty QualType,
	specs declSpecs, nameRng SourceRange, declStart int, global bool) Decl {
	a := p.arena
	if specs.storage == StorageTypedef {
		p.defineTypedef(name, ty)
		td := a.typedefDecls.get()
		td.Name, td.Ty = name, ty
		td.SetRange(specs.start, p.cur().End)
		return td
	}
	if ty.IsFunc() {
		// Function prototype.
		ft := ty.Canonical().T.(*FuncType)
		fd := a.functionDecls.get()
		fd.Name, fd.Ret, fd.Params = name, ft.Ret, p.lastParams
		fd.Storage, fd.Variadic = specs.storage, ft.Variadic
		fd.RetTypeRange = SourceRange{specs.start, specs.end}
		fd.NameRange = nameRng
		fd.SetRange(specs.start, p.cur().End)
		return fd
	}
	vd := a.varDecls.get()
	vd.Name, vd.Ty, vd.Storage, vd.IsGlobal = name, ty, specs.storage, global
	vd.NameRange = nameRng
	vd.TypeRange = SourceRange{specs.start, specs.end}
	if _, ok := p.accept(TokAssign); ok {
		initStart := p.cur().Pos
		vd.Init = p.parseInitializer()
		vd.InitRange = SourceRange{initStart, p.cur().Pos}
		if vd.Init != nil {
			vd.InitRange = vd.Init.Range()
		}
	}
	vd.SetRange(specs.start, p.cur().Pos)
	return vd
}

func (p *Parser) parseInitializer() Expr {
	if p.at(TokLBrace) {
		return p.parseInitList()
	}
	return p.parseAssignExpr()
}

func (p *Parser) parseInitList() *InitListExpr {
	a := p.arena
	lb := p.expect(TokLBrace)
	il := a.initLists.get()
	mark := len(a.scExprs)
	for !p.at(TokRBrace) && p.err == nil {
		// Designators: ".field =" / "[idx] =" — parse and discard.
		for p.at(TokDot) || p.at(TokLBracket) {
			if p.at(TokDot) {
				p.advance()
				p.expect(TokIdent)
			} else {
				p.advance()
				p.parseConditionalExpr()
				p.expect(TokRBracket)
			}
		}
		p.accept(TokAssign)
		a.scExprs = append(a.scExprs, p.parseInitializer())
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	rb := p.expect(TokRBrace)
	il.Inits = cutList(&a.exprLists, &a.scExprs, mark)
	il.SetRange(lb.Pos, rb.End)
	return il
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

func (p *Parser) parseCompoundStmt() *CompoundStmt {
	a := p.arena
	lb := p.expect(TokLBrace)
	cs := a.compoundStmts.get()
	p.pushScope()
	mark := len(a.scStmts)
	for !p.at(TokRBrace) && !p.at(TokEOF) && p.err == nil {
		a.scStmts = append(a.scStmts, p.parseStmt())
	}
	cs.Stmts = cutList(&a.stmtLists, &a.scStmts, mark)
	p.popScope()
	rb := p.expect(TokRBrace)
	cs.SetRange(lb.Pos, rb.End)
	return cs
}

func (p *Parser) parseStmt() Stmt {
	a := p.arena
	t := p.cur()
	switch {
	case p.at(TokLBrace):
		return p.parseCompoundStmt()
	case p.at(TokSemi):
		p.advance()
		ns := a.nullStmts.get()
		ns.SetRange(t.Pos, t.End)
		return ns
	case t.Is("if"):
		return p.parseIfStmt()
	case t.Is("while"):
		return p.parseWhileStmt()
	case t.Is("do"):
		return p.parseDoStmt()
	case t.Is("for"):
		return p.parseForStmt()
	case t.Is("switch"):
		return p.parseSwitchStmt()
	case t.Is("case"):
		p.advance()
		v := p.parseConditionalExpr()
		// GNU case ranges: case 1 ... 5:
		if p.at(TokEllipsis) {
			p.advance()
			p.parseConditionalExpr()
		}
		p.expect(TokColon)
		cs := a.caseStmts.get()
		cs.Value = v
		if !p.at(TokRBrace) {
			cs.Body = p.parseStmt()
		}
		end := t.End
		if cs.Body != nil {
			end = cs.Body.Range().End
		}
		cs.SetRange(t.Pos, end)
		return cs
	case t.Is("default"):
		p.advance()
		p.expect(TokColon)
		dst := a.defaultStmts.get()
		if !p.at(TokRBrace) {
			dst.Body = p.parseStmt()
		}
		end := t.End
		if dst.Body != nil {
			end = dst.Body.Range().End
		}
		dst.SetRange(t.Pos, end)
		return dst
	case t.Is("break"):
		p.advance()
		semi := p.expect(TokSemi)
		bs := a.breakStmts.get()
		bs.SetRange(t.Pos, semi.End)
		return bs
	case t.Is("continue"):
		p.advance()
		semi := p.expect(TokSemi)
		cs := a.continueStmts.get()
		cs.SetRange(t.Pos, semi.End)
		return cs
	case t.Is("return"):
		p.advance()
		rs := a.returnStmts.get()
		if !p.at(TokSemi) {
			rs.Value = p.parseExpr()
		}
		semi := p.expect(TokSemi)
		rs.SetRange(t.Pos, semi.End)
		return rs
	case t.Is("goto"):
		p.advance()
		lbl := p.expect(TokIdent)
		semi := p.expect(TokSemi)
		gs := a.gotoStmts.get()
		gs.Label = lbl.Text
		gs.SetRange(t.Pos, semi.End)
		return gs
	case t.Kind == TokIdent && p.peek(1).Kind == TokColon:
		p.advance()
		p.advance()
		ls := a.labelStmts.get()
		ls.Name = t.Text
		if !p.at(TokRBrace) {
			ls.Body = p.parseStmt()
		}
		end := t.End
		if ls.Body != nil {
			end = ls.Body.Range().End
		}
		ls.SetRange(t.Pos, end)
		return ls
	case p.startsDecl():
		return p.parseDeclStmt()
	default:
		e := p.parseExpr()
		semi := p.expect(TokSemi)
		es := a.exprStmts.get()
		es.X = e
		es.SetRange(t.Pos, semi.End)
		return es
	}
}

func (p *Parser) parseDeclStmt() Stmt {
	a := p.arena
	start := p.cur().Pos
	specs := p.parseDeclSpecs()
	ds := a.declStmts.get()
	mark := len(a.scDecls)
	if specs.ownedTag != nil {
		a.scDecls = append(a.scDecls, specs.ownedTag)
	}
	if !p.at(TokSemi) {
		for {
			name, ty, nameRng, declStart := p.parseDeclarator(specs.base)
			d := p.finishInitDeclarator(name, ty, specs, nameRng, declStart, false)
			if d != nil {
				a.scDecls = append(a.scDecls, d)
			}
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	semi := p.expect(TokSemi)
	ds.Decls = cutList(&a.declLists, &a.scDecls, mark)
	ds.SetRange(start, semi.End)
	return ds
}

func (p *Parser) parseIfStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	is := p.arena.ifStmts.get()
	is.Cond = cond
	is.Then = p.parseStmt()
	end := is.Then.Range().End
	if p.acceptKw("else") {
		is.Else = p.parseStmt()
		end = is.Else.Range().End
	}
	is.SetRange(kw.Pos, end)
	return is
}

func (p *Parser) parseWhileStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	ws := p.arena.whileStmts.get()
	ws.Cond = cond
	ws.Body = p.parseStmt()
	ws.SetRange(kw.Pos, ws.Body.Range().End)
	return ws
}

func (p *Parser) parseDoStmt() Stmt {
	kw := p.next()
	dsw := p.arena.doStmts.get()
	dsw.Body = p.parseStmt()
	if !p.acceptKw("while") {
		p.fail("expected 'while' after do body")
		return dsw
	}
	p.expect(TokLParen)
	dsw.Cond = p.parseExpr()
	p.expect(TokRParen)
	semi := p.expect(TokSemi)
	dsw.SetRange(kw.Pos, semi.End)
	return dsw
}

func (p *Parser) parseForStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	fs := p.arena.forStmts.get()
	p.pushScope()
	if !p.at(TokSemi) {
		if p.startsDecl() {
			fs.Init = p.parseDeclStmt()
		} else {
			start := p.cur().Pos
			e := p.parseExpr()
			semi := p.expect(TokSemi)
			es := p.arena.exprStmts.get()
			es.X = e
			es.SetRange(start, semi.End)
			fs.Init = es
		}
	} else {
		p.advance()
	}
	if !p.at(TokSemi) {
		fs.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if !p.at(TokRParen) {
		fs.Post = p.parseExpr()
	}
	p.expect(TokRParen)
	fs.Body = p.parseStmt()
	p.popScope()
	fs.SetRange(kw.Pos, fs.Body.Range().End)
	return fs
}

func (p *Parser) parseSwitchStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	ss := p.arena.switchStmts.get()
	ss.Cond = cond
	ss.Body = p.parseStmt()
	ss.SetRange(kw.Pos, ss.Body.Range().End)
	return ss
}

// ---------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() Expr {
	e := p.parseAssignExpr()
	for p.at(TokComma) {
		p.advance()
		rhs := p.parseAssignExpr()
		ce := p.arena.commaExprs.get()
		ce.LHS, ce.RHS = e, rhs
		ce.SetRange(e.Range().Begin, rhs.Range().End)
		e = ce
	}
	return e
}

var assignOps = map[TokenKind]BinOp{
	TokAssign: BinAssign, TokPlusEq: BinAddAssign, TokMinusEq: BinSubAssign,
	TokStarEq: BinMulAssign, TokSlashEq: BinDivAssign,
	TokPercentEq: BinRemAssign, TokAmpEq: BinAndAssign,
	TokPipeEq: BinOrAssign, TokCaretEq: BinXorAssign,
	TokShlEq: BinShlAssign, TokShrEq: BinShrAssign,
}

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseConditionalExpr()
	if op, ok := assignOps[p.cur().Kind]; ok {
		opTok := p.next()
		rhs := p.parseAssignExpr()
		bo := p.arena.binaryOps.get()
		bo.Op, bo.LHS, bo.RHS = op, lhs, rhs
		bo.OpRange = SourceRange{opTok.Pos, opTok.End}
		bo.SetRange(lhs.Range().Begin, rhs.Range().End)
		return bo
	}
	return lhs
}

func (p *Parser) parseConditionalExpr() Expr {
	cond := p.parseBinaryExpr(0)
	if !p.at(TokQuestion) {
		return cond
	}
	p.advance()
	then := p.parseExpr()
	p.expect(TokColon)
	els := p.parseConditionalExpr()
	ce := p.arena.condExprs.get()
	ce.Cond, ce.Then, ce.Else = cond, then, els
	ce.SetRange(cond.Range().Begin, els.Range().End)
	return ce
}

// binPrec maps token kinds to (binary operator, precedence); higher binds
// tighter.
type binPrecEntry struct {
	op   BinOp
	prec int
}

var binPrec = map[TokenKind]binPrecEntry{
	TokStar: {BinMul, 10}, TokSlash: {BinDiv, 10}, TokPercent: {BinRem, 10},
	TokPlus: {BinAdd, 9}, TokMinus: {BinSub, 9},
	TokShl: {BinShl, 8}, TokShr: {BinShr, 8},
	TokLess: {BinLT, 7}, TokGreater: {BinGT, 7},
	TokLessEq: {BinLE, 7}, TokGreaterEq: {BinGE, 7},
	TokEqEq: {BinEQ, 6}, TokNotEq: {BinNE, 6},
	TokAmp: {BinAnd, 5}, TokCaret: {BinXor, 4}, TokPipe: {BinOr, 3},
	TokAmpAmp: {BinLAnd, 2}, TokPipePipe: {BinLOr, 1},
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	lhs := p.parseCastExpr()
	for {
		ent, ok := binPrec[p.cur().Kind]
		if !ok || ent.prec < minPrec {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinaryExpr(ent.prec + 1)
		bo := p.arena.binaryOps.get()
		bo.Op, bo.LHS, bo.RHS = ent.op, lhs, rhs
		bo.OpRange = SourceRange{opTok.Pos, opTok.End}
		bo.SetRange(lhs.Range().Begin, rhs.Range().End)
		lhs = bo
	}
}

// startsTypeName reports whether the token after a '(' begins a type name.
func (p *Parser) startsTypeNameAt(n int) bool {
	t := p.peek(n)
	if t.Kind == TokKeyword && typeSpecKeywords[t.Text] &&
		t.Text != "static" && t.Text != "extern" && t.Text != "typedef" &&
		t.Text != "register" && t.Text != "auto" {
		return true
	}
	if t.Kind == TokIdent {
		_, ok := p.lookupTypedef(t.Text)
		return ok
	}
	return false
}

func (p *Parser) parseCastExpr() Expr {
	if p.at(TokLParen) && p.startsTypeNameAt(1) {
		lp := p.next()
		ty := p.parseTypeName()
		rp := p.expect(TokRParen)
		if p.at(TokLBrace) {
			// Compound literal.
			il := p.parseInitList()
			cl := p.arena.compoundLits.get()
			cl.To, cl.Init = ty, il
			cl.SetRange(lp.Pos, il.Range().End)
			return cl
		}
		x := p.parseCastExpr()
		ce := p.arena.castExprs.get()
		ce.To, ce.X = ty, x
		ce.TypeRange = SourceRange{lp.Pos, rp.End}
		ce.SetRange(lp.Pos, x.Range().End)
		return ce
	}
	return p.parseUnaryExpr()
}

// parseTypeName parses a type-name (specifiers + abstract declarator).
func (p *Parser) parseTypeName() QualType {
	specs := p.parseDeclSpecs()
	ty := p.parsePointers(specs.base)
	// Abstract array/function suffixes.
	_, ty, _ = p.parseDirectDeclarator(ty)
	return ty
}

var unaryOps = map[TokenKind]UnOp{
	TokPlus: UnPlus, TokMinus: UnMinus, TokTilde: UnNot, TokBang: UnLNot,
	TokStar: UnDeref, TokAmp: UnAddr,
}

func (p *Parser) parseUnaryExpr() Expr {
	t := p.cur()
	switch {
	case p.at(TokPlusPlus) || p.at(TokMinusMinus):
		p.advance()
		x := p.parseUnaryExpr()
		op := UnPreInc
		if t.Kind == TokMinusMinus {
			op = UnPreDec
		}
		ue := p.arena.unaryOps.get()
		ue.Op, ue.X = op, x
		ue.SetRange(t.Pos, x.Range().End)
		return ue
	case t.Is("sizeof"):
		p.advance()
		se := p.arena.sizeofExprs.get()
		if p.at(TokLParen) && p.startsTypeNameAt(1) {
			p.advance()
			se.OfType = p.parseTypeName()
			rp := p.expect(TokRParen)
			se.SetRange(t.Pos, rp.End)
			return se
		}
		se.X = p.parseUnaryExpr()
		se.SetRange(t.Pos, se.X.Range().End)
		return se
	default:
		if op, ok := unaryOps[t.Kind]; ok {
			p.advance()
			x := p.parseCastExpr()
			ue := p.arena.unaryOps.get()
			ue.Op, ue.X = op, x
			ue.SetRange(t.Pos, x.Range().End)
			return ue
		}
		return p.parsePostfixExpr()
	}
}

func (p *Parser) parsePostfixExpr() Expr {
	a := p.arena
	e := p.parsePrimaryExpr()
	for p.err == nil {
		t := p.cur()
		switch t.Kind {
		case TokLBracket:
			p.advance()
			idx := p.parseExpr()
			rb := p.expect(TokRBracket)
			ae := a.subscripts.get()
			ae.Base, ae.Index = e, idx
			ae.SetRange(e.Range().Begin, rb.End)
			e = ae
		case TokLParen:
			p.advance()
			call := a.callExprs.get()
			call.Fn = e
			mark := len(a.scExprs)
			for !p.at(TokRParen) && p.err == nil {
				a.scExprs = append(a.scExprs, p.parseAssignExpr())
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			rp := p.expect(TokRParen)
			call.Args = cutList(&a.exprLists, &a.scExprs, mark)
			call.SetRange(e.Range().Begin, rp.End)
			e = call
		case TokDot, TokArrow:
			p.advance()
			fld := p.expect(TokIdent)
			me := a.memberExprs.get()
			me.Base, me.Field, me.IsArrow = e, fld.Text, t.Kind == TokArrow
			me.SetRange(e.Range().Begin, fld.End)
			e = me
		case TokPlusPlus, TokMinusMinus:
			p.advance()
			op := UnPostInc
			if t.Kind == TokMinusMinus {
				op = UnPostDec
			}
			ue := a.unaryOps.get()
			ue.Op, ue.X = op, e
			ue.SetRange(e.Range().Begin, t.End)
			e = ue
		default:
			return e
		}
	}
	return e
}

func (p *Parser) parsePrimaryExpr() Expr {
	a := p.arena
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.advance()
		il := a.intLits.get()
		il.Value, il.Text = parseIntLit(t.Text), t.Text
		il.SetRange(t.Pos, t.End)
		return il
	case TokFloatLit:
		p.advance()
		txt := strings.TrimRight(t.Text, "fFlL")
		v, _ := strconv.ParseFloat(txt, 64)
		fl := a.floatLits.get()
		fl.Value, fl.Text = v, t.Text
		fl.SetRange(t.Pos, t.End)
		return fl
	case TokCharLit:
		p.advance()
		cl := a.charLits.get()
		cl.Value, cl.Text = decodeCharLit(t.Text), t.Text
		cl.SetRange(t.Pos, t.End)
		return cl
	case TokStringLit:
		p.advance()
		sl := a.stringLits.get()
		sl.Value, sl.Text = a.decodeString(t.Text), t.Text
		sl.SetRange(t.Pos, t.End)
		// Adjacent string literal concatenation.
		for p.at(TokStringLit) {
			t2 := p.next()
			sl.Value += a.decodeString(t2.Text)
			sl.Text = p.src[sl.Range().Begin:t2.End]
			sl.SetRange(sl.Range().Begin, t2.End)
		}
		return sl
	case TokIdent:
		p.advance()
		dr := a.declRefs.get()
		dr.Name = t.Text
		dr.SetRange(t.Pos, t.End)
		return dr
	case TokLParen:
		p.advance()
		e := p.parseExpr()
		rp := p.expect(TokRParen)
		pe := a.parenExprs.get()
		pe.X = e
		pe.SetRange(t.Pos, rp.End)
		return pe
	}
	p.fail("expected expression, found %q", t.Text)
	// Return a placeholder so callers do not crash while unwinding.
	il := a.intLits.get()
	il.Value, il.Text = 0, "0"
	il.SetRange(t.Pos, t.End)
	return il
}

func parseIntLit(text string) int64 {
	s := strings.TrimRight(text, "uUlL")
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case len(s) > 1 && s[0] == '0':
		v, err = strconv.ParseUint(s[1:], 8, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0
	}
	return int64(v)
}

func decodeCharLit(text string) byte {
	body := strings.Trim(text, "'")
	if body == "" {
		return 0
	}
	if body[0] != '\\' {
		return body[0]
	}
	if len(body) < 2 {
		return '\\'
	}
	switch body[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case 'x':
		if v, err := strconv.ParseUint(body[2:], 16, 8); err == nil {
			return byte(v)
		}
	}
	return body[1]
}

func decodeStringLit(text string) string {
	if len(text) < 2 {
		return ""
	}
	body := text[1 : len(text)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch body[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case '0':
			sb.WriteByte(0)
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case '\'':
			sb.WriteByte('\'')
		default:
			sb.WriteByte(body[i])
		}
	}
	return sb.String()
}
