package cast

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: syntax error: %s", e.Line, e.Col, e.Msg)
}

// Parser turns a token stream into a TranslationUnit.
type Parser struct {
	src  string
	toks []Token
	pos  int

	// scopes tracks typedef names (value true) so declarations can be
	// disambiguated from expressions, plus struct/union/enum tags.
	typedefScopes []map[string]QualType
	tagScopes     []map[string]Decl

	// lastParams holds the parameter declarations of the most recently
	// parsed function declarator, consumed by parseFunctionDefinition.
	lastParams []*ParmVarDecl

	err *ParseError
}

// Parse lexes and parses src, returning the AST. Parsing is
// best-effort-strict: any syntax error aborts with a non-nil error.
// The token buffer is pooled: nothing retains it past the parse (AST
// nodes copy the strings they need), so the per-mutant lex allocation
// on the fuzzing hot path recycles instead.
func Parse(src string) (*TranslationUnit, error) {
	bufp := tokenPool.Get().(*[]Token)
	toks, err := lexInto(src, (*bufp)[:0])
	defer func() {
		*bufp = toks[:0]
		tokenPool.Put(bufp)
	}()
	if err != nil {
		return nil, err
	}
	p := &Parser{
		src:           src,
		toks:          toks,
		typedefScopes: []map[string]QualType{{}},
		tagScopes:     []map[string]Decl{{}},
	}
	tu := p.parseTranslationUnit()
	if p.err != nil {
		return nil, p.err
	}
	tu.Source = src
	return tu, nil
}

// ParseAndCheck parses src and runs semantic analysis.
func ParseAndCheck(src string) (*TranslationUnit, error) {
	tu, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(tu); err != nil {
		return nil, err
	}
	return tu, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) atKw(kw string) bool { return p.cur().Is(kw) }

func (p *Parser) accept(k TokenKind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.fail("expected %s, found %q", k, p.cur().Text)
	return p.cur()
}

// fail records the first error and fast-forwards to EOF so parsing
// unwinds without panics.
func (p *Parser) fail(format string, args ...any) {
	if p.err == nil {
		t := p.cur()
		p.err = &ParseError{Line: t.Line, Col: t.Col,
			Msg: fmt.Sprintf(format, args...)}
	}
	p.pos = len(p.toks) - 1
}

func (p *Parser) pushScope() {
	p.typedefScopes = append(p.typedefScopes, map[string]QualType{})
	p.tagScopes = append(p.tagScopes, map[string]Decl{})
}

func (p *Parser) popScope() {
	p.typedefScopes = p.typedefScopes[:len(p.typedefScopes)-1]
	p.tagScopes = p.tagScopes[:len(p.tagScopes)-1]
}

func (p *Parser) defineTypedef(name string, ty QualType) {
	p.typedefScopes[len(p.typedefScopes)-1][name] = ty
}

func (p *Parser) lookupTypedef(name string) (QualType, bool) {
	for i := len(p.typedefScopes) - 1; i >= 0; i-- {
		if ty, ok := p.typedefScopes[i][name]; ok {
			return ty, true
		}
	}
	return QualType{}, false
}

func (p *Parser) defineTag(name string, d Decl) {
	p.tagScopes[len(p.tagScopes)-1][name] = d
}

func (p *Parser) lookupTag(name string) (Decl, bool) {
	for i := len(p.tagScopes) - 1; i >= 0; i-- {
		if d, ok := p.tagScopes[i][name]; ok {
			return d, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

func (p *Parser) parseTranslationUnit() *TranslationUnit {
	tu := &TranslationUnit{}
	start := p.cur().Pos
	for !p.at(TokEOF) && p.err == nil {
		if _, ok := p.accept(TokSemi); ok {
			continue
		}
		decls := p.parseExternalDeclaration()
		tu.Decls = append(tu.Decls, decls...)
	}
	tu.SetRange(start, p.cur().End)
	return tu
}

// typeSpecKeywords are keywords that can begin declaration specifiers.
var typeSpecKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"_Bool": true, "_Complex": true, "struct": true, "union": true,
	"enum": true, "const": true, "volatile": true, "restrict": true,
	"static": true, "extern": true, "typedef": true, "register": true,
	"auto": true, "inline": true, "__restrict": true, "__inline": true,
	"__const": true, "__signed__": true, "__extension__": true,
	"__volatile__": true,
}

// startsDecl reports whether the current token begins a declaration.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if t.Kind == TokKeyword && typeSpecKeywords[t.Text] {
		return true
	}
	if t.Kind == TokIdent {
		if _, ok := p.lookupTypedef(t.Text); ok {
			// "T * x;" is a declaration; "T * x" as expression would
			// need T to be a variable, which typedef shadows here.
			return true
		}
	}
	return false
}

func (p *Parser) parseExternalDeclaration() []Decl {
	specs := p.parseDeclSpecs()
	if p.err != nil {
		return nil
	}
	// "struct s { ... };" with no declarator.
	if p.at(TokSemi) {
		p.advance()
		if specs.ownedTag != nil {
			return []Decl{specs.ownedTag}
		}
		return nil
	}
	var decls []Decl
	if specs.ownedTag != nil {
		decls = append(decls, specs.ownedTag)
	}
	for {
		name, ty, nameRng, declStart := p.parseDeclarator(specs.base)
		if p.err != nil {
			return decls
		}
		if ft, ok := ty.T.(*FuncType); ok && p.at(TokLBrace) {
			fd := p.parseFunctionDefinition(name, ft, specs, declStart, nameRng)
			decls = append(decls, fd)
			return decls
		}
		d := p.finishInitDeclarator(name, ty, specs, nameRng, declStart, true)
		if d != nil {
			decls = append(decls, d)
		}
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.expect(TokSemi)
	return decls
}

// declSpecs carries the parsed declaration specifiers.
type declSpecs struct {
	base    QualType
	storage StorageClass
	inline  bool
	// ownedTag is a RecordDecl/EnumDecl defined inline in the specifiers,
	// which must be emitted as a declaration of its own.
	ownedTag Decl
	// start is the byte offset where the specifiers began.
	start int
	end   int
}

func (p *Parser) parseDeclSpecs() declSpecs {
	ds := declSpecs{start: p.cur().Pos}
	var (
		quals    Qualifiers
		sawType  bool
		longs    int
		unsigned bool
		signed_  bool
		baseKind = Int
		sawBase  bool
		complex_ bool
		result   QualType
	)
	// setBase records a base type-specifier keyword, rejecting illegal
	// combinations like "int double" ("two or more data types in
	// declaration specifiers"). "short int"/"int short" are the only
	// legal pairings among the base keywords (long is counted apart).
	setBase := func(k BasicKind) {
		if sawBase {
			okPair := (baseKind == Short && k == Int) ||
				(baseKind == Int && k == Short)
			if !okPair && baseKind != k {
				p.fail("two or more data types in declaration specifiers")
				return
			}
			if baseKind == Int && k == Short {
				baseKind = Short
			}
			sawType = true
			return
		}
		sawBase, sawType = true, true
		baseKind = k
	}
	for {
		t := p.cur()
		switch {
		case t.Is("const") || t.Is("__const"):
			quals |= QualConst
			p.advance()
		case t.Is("volatile") || t.Is("__volatile__"):
			quals |= QualVolatile
			p.advance()
		case t.Is("restrict") || t.Is("__restrict"):
			quals |= QualRestrict
			p.advance()
		case t.Is("__extension__"):
			p.advance()
		case t.Is("static"):
			ds.storage = StorageStatic
			p.advance()
		case t.Is("extern"):
			ds.storage = StorageExtern
			p.advance()
		case t.Is("typedef"):
			ds.storage = StorageTypedef
			p.advance()
		case t.Is("register"):
			ds.storage = StorageRegister
			p.advance()
		case t.Is("auto"):
			ds.storage = StorageAuto
			p.advance()
		case t.Is("inline") || t.Is("__inline"):
			ds.inline = true
			p.advance()
		case t.Is("void"):
			setBase(Void)
			p.advance()
		case t.Is("_Bool"):
			setBase(Bool)
			p.advance()
		case t.Is("char"):
			setBase(Char)
			p.advance()
		case t.Is("short"):
			setBase(Short)
			p.advance()
		case t.Is("int"):
			if longs == 0 {
				setBase(Int)
			} else {
				sawType = true
			}
			p.advance()
		case t.Is("long"):
			sawType = true
			longs++
			p.advance()
		case t.Is("float"):
			setBase(Float)
			p.advance()
		case t.Is("double"):
			setBase(Double)
			p.advance()
		case t.Is("signed") || t.Is("__signed__"):
			sawType, signed_ = true, true
			p.advance()
		case t.Is("unsigned"):
			sawType, unsigned = true, true
			p.advance()
		case t.Is("_Complex"):
			sawType, complex_ = true, true
			p.advance()
		case t.Is("struct") || t.Is("union"):
			result = p.parseRecordSpecifier(&ds)
			sawType = true
		case t.Is("enum"):
			result = p.parseEnumSpecifier(&ds)
			sawType = true
		case t.Kind == TokIdent && !sawType && result.IsNil():
			if ty, ok := p.lookupTypedef(t.Text); ok {
				result = QualType{T: &TypedefType{Name: t.Text, Underlying: ty}}
				sawType = true
				p.advance()
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	if result.IsNil() {
		if !sawType {
			// Implicit int (K&R style, appears in compiler test suites).
			baseKind = Int
		}
		result = QualType{T: &BasicType{K: p.combineBasic(baseKind, longs, unsigned, signed_, complex_)}}
	}
	ds.base = result.WithQuals(quals)
	ds.end = p.cur().Pos
	return ds
}

func (p *Parser) combineBasic(k BasicKind, longs int, unsigned, signed_, complex_ bool) BasicKind {
	if complex_ {
		return ComplexDouble
	}
	switch k {
	case Char:
		if unsigned {
			return UChar
		}
		if signed_ {
			return SChar
		}
		return Char
	case Short:
		if unsigned {
			return UShort
		}
		return Short
	case Double:
		if longs > 0 {
			return LongDouble
		}
		return Double
	case Int:
		switch {
		case longs >= 2:
			if unsigned {
				return ULongLong
			}
			return LongLong
		case longs == 1:
			if unsigned {
				return ULong
			}
			return Long
		case unsigned:
			return UInt
		}
		return Int
	}
	return k
}

func (p *Parser) parseRecordSpecifier(ds *declSpecs) QualType {
	kw := p.next() // struct or union
	isUnion := kw.Text == "union"
	name := ""
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
	}
	var rd *RecordDecl
	if name != "" {
		if d, ok := p.lookupTag(name); ok {
			rd, _ = d.(*RecordDecl)
		}
	}
	if rd == nil {
		rd = &RecordDecl{Name: name, IsUnion: isUnion}
		rd.SetRange(kw.Pos, p.cur().End)
		if name != "" {
			p.defineTag(name, rd)
		}
	}
	if p.at(TokLBrace) {
		p.advance()
		rd.Complete = true
		for !p.at(TokRBrace) && p.err == nil {
			fieldSpecs := p.parseDeclSpecs()
			for {
				fname, fty, fnameRng, fstart := p.parseDeclarator(fieldSpecs.base)
				// Bitfields: parse and ignore the width.
				if _, ok := p.accept(TokColon); ok {
					p.parseConditionalExpr()
				}
				fd := &FieldDecl{Name: fname, Ty: fty}
				fd.SetRange(fstart, p.cur().Pos)
				_ = fnameRng
				rd.Fields = append(rd.Fields, fd)
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			p.expect(TokSemi)
		}
		rbrace := p.expect(TokRBrace)
		rd.SetRange(kw.Pos, rbrace.End)
		ds.ownedTag = rd
	}
	return QualType{T: &RecordType{Decl: rd}}
}

func (p *Parser) parseEnumSpecifier(ds *declSpecs) QualType {
	kw := p.next() // enum
	name := ""
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
	}
	var ed *EnumDecl
	if name != "" {
		if d, ok := p.lookupTag(name); ok {
			ed, _ = d.(*EnumDecl)
		}
	}
	if ed == nil {
		ed = &EnumDecl{Name: name}
		ed.SetRange(kw.Pos, p.cur().End)
		if name != "" {
			p.defineTag(name, ed)
		}
	}
	if p.at(TokLBrace) {
		p.advance()
		next := int64(0)
		for !p.at(TokRBrace) && p.err == nil {
			ct := p.expect(TokIdent)
			ec := &EnumConstantDecl{Name: ct.Text}
			ec.SetRange(ct.Pos, ct.End)
			if _, ok := p.accept(TokAssign); ok {
				ec.Value = p.parseConditionalExpr()
				if v, ok := constIntValue(ec.Value); ok {
					next = v
				}
				ec.SetRange(ct.Pos, p.cur().Pos)
			}
			ec.Num = next
			next++
			ed.Constants = append(ed.Constants, ec)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		rbrace := p.expect(TokRBrace)
		ed.SetRange(kw.Pos, rbrace.End)
		ds.ownedTag = ed
	}
	return QualType{T: &EnumType{Decl: ed}}
}

// ConstIntValue evaluates trivially constant integer expressions (as used
// in enum values and array dimensions): literals and pure arithmetic over
// them. ok is false for anything it cannot fold.
func ConstIntValue(e Expr) (int64, bool) { return constIntValue(e) }

// constIntValue evaluates trivially constant integer expressions used in
// enum values and array dimensions.
func constIntValue(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntegerLiteral:
		return x.Value, true
	case *CharLiteral:
		return int64(x.Value), true
	case *ParenExpr:
		return constIntValue(x.X)
	case *UnaryOperator:
		v, ok := constIntValue(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case UnMinus:
			return -v, true
		case UnPlus:
			return v, true
		case UnNot:
			return ^v, true
		case UnLNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *BinaryOperator:
		l, lok := constIntValue(x.LHS)
		r, rok := constIntValue(x.RHS)
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case BinAdd:
			return l + r, true
		case BinSub:
			return l - r, true
		case BinMul:
			return l * r, true
		case BinDiv:
			if r != 0 {
				return l / r, true
			}
		case BinRem:
			if r != 0 {
				return l % r, true
			}
		case BinShl:
			if r >= 0 && r < 64 {
				return l << uint(r), true
			}
		case BinShr:
			if r >= 0 && r < 64 {
				return l >> uint(r), true
			}
		case BinAnd:
			return l & r, true
		case BinOr:
			return l | r, true
		case BinXor:
			return l ^ r, true
		}
	}
	return 0, false
}

// parseDeclarator parses pointers, the declarator core, and array/function
// suffixes, producing the declared name and full type. declStart is the
// offset where the enclosing declaration began (the specifiers).
func (p *Parser) parseDeclarator(baseTy QualType) (name string, ty QualType, nameRng SourceRange, declStart int) {
	declStart = p.cur().Pos
	ty = p.parsePointers(baseTy)
	name, ty, nameRng = p.parseDirectDeclarator(ty)
	return name, ty, nameRng, declStart
}

func (p *Parser) parsePointers(ty QualType) QualType {
	for p.at(TokStar) {
		p.advance()
		var q Qualifiers
		for {
			switch {
			case p.acceptKw("const") || p.acceptKw("__const"):
				q |= QualConst
			case p.acceptKw("volatile") || p.acceptKw("__volatile__"):
				q |= QualVolatile
			case p.acceptKw("restrict") || p.acceptKw("__restrict"):
				q |= QualRestrict
			default:
				ty = QualType{T: &PointerType{Elem: ty}, Q: q}
				goto next
			}
		}
	next:
	}
	return ty
}

// parseDirectDeclarator handles "(declarator)", the identifier, and
// array/function suffixes. Parenthesized declarators are supported by
// recording suffixes and re-applying them inside-out.
func (p *Parser) parseDirectDeclarator(ty QualType) (string, QualType, SourceRange) {
	// Parenthesized declarator, e.g. int (*fp)(int).
	if p.at(TokLParen) && p.isAbstractParen() {
		p.advance()
		// Parse the inner declarator against a placeholder, then wrap.
		innerStart := p.pos
		// Skip to matching ')' to find suffixes first.
		depth := 1
		for depth > 0 && !p.at(TokEOF) {
			if p.at(TokLParen) {
				depth++
			} else if p.at(TokRParen) {
				depth--
				if depth == 0 {
					break
				}
			}
			p.advance()
		}
		p.expect(TokRParen)
		// Parse suffixes that apply to the inner declarator.
		ty = p.parseDeclSuffixes(ty)
		// Now re-parse the inner declarator with the suffixed type.
		save := p.pos
		p.pos = innerStart
		innerTy := p.parsePointers(ty)
		name, innerTy, nameRng := p.parseDirectDeclarator(innerTy)
		p.pos = save
		return name, innerTy, nameRng
	}
	var name string
	var nameRng SourceRange
	if t, ok := p.accept(TokIdent); ok {
		name = t.Text
		nameRng = SourceRange{t.Pos, t.End}
	}
	ty = p.parseDeclSuffixes(ty)
	return name, ty, nameRng
}

// isAbstractParen distinguishes "(*...)" / "(ident...)" declarators from a
// function parameter list "(int x)".
func (p *Parser) isAbstractParen() bool {
	t := p.peek(1)
	if t.Kind == TokStar {
		return true
	}
	if t.Kind == TokIdent {
		_, isTypedef := p.lookupTypedef(t.Text)
		return !isTypedef
	}
	return false
}

func (p *Parser) parseDeclSuffixes(ty QualType) QualType {
	// Collect suffixes left-to-right, then fold right-to-left so that
	// "int a[2][3]" becomes array(2, array(3, int)).
	type suffix struct {
		isArray  bool
		size     int64
		params   []*ParmVarDecl
		variadic bool
	}
	var suffixes []suffix
	for {
		switch {
		case p.at(TokLBracket):
			p.advance()
			sz := int64(-1)
			if !p.at(TokRBracket) {
				e := p.parseAssignExpr()
				if v, ok := constIntValue(e); ok {
					sz = v
				} else {
					sz = 1 // VLA-ish; treat as size-1 for layout
				}
			}
			p.expect(TokRBracket)
			suffixes = append(suffixes, suffix{isArray: true, size: sz})
		case p.at(TokLParen):
			p.advance()
			params, variadic := p.parseParamList()
			p.expect(TokRParen)
			suffixes = append(suffixes, suffix{params: params, variadic: variadic})
		default:
			goto fold
		}
	}
fold:
	for i := len(suffixes) - 1; i >= 0; i-- {
		s := suffixes[i]
		if s.isArray {
			ty = QualType{T: &ArrayType{Elem: ty, Size: s.size}}
		} else {
			ft := &FuncType{Ret: ty, Variadic: s.variadic}
			for _, pv := range s.params {
				ft.Params = append(ft.Params, pv.Ty)
			}
			ty = QualType{T: ft}
			// Stash the decls so parseFunctionDefinition can reuse them.
			p.lastParams = s.params
		}
	}
	return ty
}

func (p *Parser) parseParamList() ([]*ParmVarDecl, bool) {
	var params []*ParmVarDecl
	variadic := false
	if p.at(TokRParen) {
		return params, false
	}
	// "(void)" means no parameters.
	if p.atKw("void") && p.peek(1).Kind == TokRParen {
		p.advance()
		return params, false
	}
	idx := 0
	for {
		if p.at(TokEllipsis) {
			p.advance()
			variadic = true
			break
		}
		if !p.startsDecl() {
			// K&R identifier list: treat each as int parameter.
			if t, ok := p.accept(TokIdent); ok {
				pv := &ParmVarDecl{Name: t.Text, Ty: IntTy, Index: idx}
				pv.SetRange(t.Pos, t.End)
				params = append(params, pv)
				idx++
				if _, ok := p.accept(TokComma); ok {
					continue
				}
			}
			break
		}
		specs := p.parseDeclSpecs()
		start := p.cur().Pos
		pname, pty, _, _ := p.parseDeclarator(specs.base)
		pty = pty.Decay() // arrays/functions decay in parameter position
		pv := &ParmVarDecl{Name: pname, Ty: pty, Index: idx}
		pv.SetRange(min(specs.start, start), p.cur().Pos)
		params = append(params, pv)
		idx++
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	return params, variadic
}

func (p *Parser) parseFunctionDefinition(name string, ft *FuncType,
	specs declSpecs, declStart int, nameRng SourceRange) *FunctionDecl {
	fd := &FunctionDecl{
		Name:         name,
		Ret:          ft.Ret,
		Params:       p.lastParams,
		Storage:      specs.storage,
		Inline:       specs.inline,
		Variadic:     ft.Variadic,
		RetTypeRange: SourceRange{specs.start, specs.end},
		NameRange:    nameRng,
	}
	p.pushScope()
	fd.Body = p.parseCompoundStmt()
	p.popScope()
	// The definition's extent starts at its declaration specifiers, not
	// at the declarator — insertions before the function must land
	// before the return type.
	begin := declStart
	if specs.start < begin {
		begin = specs.start
	}
	fd.SetRange(begin, fd.Body.Range().End)
	return fd
}

func (p *Parser) finishInitDeclarator(name string, ty QualType,
	specs declSpecs, nameRng SourceRange, declStart int, global bool) Decl {
	if specs.storage == StorageTypedef {
		p.defineTypedef(name, ty)
		td := &TypedefDecl{Name: name, Ty: ty}
		td.SetRange(specs.start, p.cur().End)
		return td
	}
	if ty.IsFunc() {
		// Function prototype.
		ft := ty.Canonical().T.(*FuncType)
		fd := &FunctionDecl{
			Name: name, Ret: ft.Ret, Params: p.lastParams,
			Storage: specs.storage, Variadic: ft.Variadic,
			RetTypeRange: SourceRange{specs.start, specs.end},
			NameRange:    nameRng,
		}
		fd.SetRange(specs.start, p.cur().End)
		return fd
	}
	vd := &VarDecl{
		Name: name, Ty: ty, Storage: specs.storage, IsGlobal: global,
		NameRange: nameRng,
		TypeRange: SourceRange{specs.start, specs.end},
	}
	if _, ok := p.accept(TokAssign); ok {
		initStart := p.cur().Pos
		vd.Init = p.parseInitializer()
		vd.InitRange = SourceRange{initStart, p.cur().Pos}
		if vd.Init != nil {
			vd.InitRange = vd.Init.Range()
		}
	}
	vd.SetRange(specs.start, p.cur().Pos)
	return vd
}

func (p *Parser) parseInitializer() Expr {
	if p.at(TokLBrace) {
		return p.parseInitList()
	}
	return p.parseAssignExpr()
}

func (p *Parser) parseInitList() *InitListExpr {
	lb := p.expect(TokLBrace)
	il := &InitListExpr{}
	for !p.at(TokRBrace) && p.err == nil {
		// Designators: ".field =" / "[idx] =" — parse and discard.
		for p.at(TokDot) || p.at(TokLBracket) {
			if p.at(TokDot) {
				p.advance()
				p.expect(TokIdent)
			} else {
				p.advance()
				p.parseConditionalExpr()
				p.expect(TokRBracket)
			}
		}
		p.accept(TokAssign)
		il.Inits = append(il.Inits, p.parseInitializer())
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	rb := p.expect(TokRBrace)
	il.SetRange(lb.Pos, rb.End)
	return il
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

func (p *Parser) parseCompoundStmt() *CompoundStmt {
	lb := p.expect(TokLBrace)
	cs := &CompoundStmt{}
	p.pushScope()
	for !p.at(TokRBrace) && !p.at(TokEOF) && p.err == nil {
		cs.Stmts = append(cs.Stmts, p.parseStmt())
	}
	p.popScope()
	rb := p.expect(TokRBrace)
	cs.SetRange(lb.Pos, rb.End)
	return cs
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case p.at(TokLBrace):
		return p.parseCompoundStmt()
	case p.at(TokSemi):
		p.advance()
		ns := &NullStmt{}
		ns.SetRange(t.Pos, t.End)
		return ns
	case t.Is("if"):
		return p.parseIfStmt()
	case t.Is("while"):
		return p.parseWhileStmt()
	case t.Is("do"):
		return p.parseDoStmt()
	case t.Is("for"):
		return p.parseForStmt()
	case t.Is("switch"):
		return p.parseSwitchStmt()
	case t.Is("case"):
		p.advance()
		v := p.parseConditionalExpr()
		// GNU case ranges: case 1 ... 5:
		if p.at(TokEllipsis) {
			p.advance()
			p.parseConditionalExpr()
		}
		p.expect(TokColon)
		cs := &CaseStmt{Value: v}
		if !p.at(TokRBrace) {
			cs.Body = p.parseStmt()
		}
		end := t.End
		if cs.Body != nil {
			end = cs.Body.Range().End
		}
		cs.SetRange(t.Pos, end)
		return cs
	case t.Is("default"):
		p.advance()
		p.expect(TokColon)
		dst := &DefaultStmt{}
		if !p.at(TokRBrace) {
			dst.Body = p.parseStmt()
		}
		end := t.End
		if dst.Body != nil {
			end = dst.Body.Range().End
		}
		dst.SetRange(t.Pos, end)
		return dst
	case t.Is("break"):
		p.advance()
		semi := p.expect(TokSemi)
		bs := &BreakStmt{}
		bs.SetRange(t.Pos, semi.End)
		return bs
	case t.Is("continue"):
		p.advance()
		semi := p.expect(TokSemi)
		cs := &ContinueStmt{}
		cs.SetRange(t.Pos, semi.End)
		return cs
	case t.Is("return"):
		p.advance()
		rs := &ReturnStmt{}
		if !p.at(TokSemi) {
			rs.Value = p.parseExpr()
		}
		semi := p.expect(TokSemi)
		rs.SetRange(t.Pos, semi.End)
		return rs
	case t.Is("goto"):
		p.advance()
		lbl := p.expect(TokIdent)
		semi := p.expect(TokSemi)
		gs := &GotoStmt{Label: lbl.Text}
		gs.SetRange(t.Pos, semi.End)
		return gs
	case t.Kind == TokIdent && p.peek(1).Kind == TokColon:
		p.advance()
		p.advance()
		ls := &LabelStmt{Name: t.Text}
		if !p.at(TokRBrace) {
			ls.Body = p.parseStmt()
		}
		end := t.End
		if ls.Body != nil {
			end = ls.Body.Range().End
		}
		ls.SetRange(t.Pos, end)
		return ls
	case p.startsDecl():
		return p.parseDeclStmt()
	default:
		e := p.parseExpr()
		semi := p.expect(TokSemi)
		es := &ExprStmt{X: e}
		es.SetRange(t.Pos, semi.End)
		return es
	}
}

func (p *Parser) parseDeclStmt() Stmt {
	start := p.cur().Pos
	specs := p.parseDeclSpecs()
	ds := &DeclStmt{}
	if specs.ownedTag != nil {
		ds.Decls = append(ds.Decls, specs.ownedTag)
	}
	if !p.at(TokSemi) {
		for {
			name, ty, nameRng, declStart := p.parseDeclarator(specs.base)
			d := p.finishInitDeclarator(name, ty, specs, nameRng, declStart, false)
			if d != nil {
				ds.Decls = append(ds.Decls, d)
			}
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	semi := p.expect(TokSemi)
	ds.SetRange(start, semi.End)
	return ds
}

func (p *Parser) parseIfStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	is := &IfStmt{Cond: cond}
	is.Then = p.parseStmt()
	end := is.Then.Range().End
	if p.acceptKw("else") {
		is.Else = p.parseStmt()
		end = is.Else.Range().End
	}
	is.SetRange(kw.Pos, end)
	return is
}

func (p *Parser) parseWhileStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	ws := &WhileStmt{Cond: cond}
	ws.Body = p.parseStmt()
	ws.SetRange(kw.Pos, ws.Body.Range().End)
	return ws
}

func (p *Parser) parseDoStmt() Stmt {
	kw := p.next()
	dsw := &DoStmt{}
	dsw.Body = p.parseStmt()
	if !p.acceptKw("while") {
		p.fail("expected 'while' after do body")
		return dsw
	}
	p.expect(TokLParen)
	dsw.Cond = p.parseExpr()
	p.expect(TokRParen)
	semi := p.expect(TokSemi)
	dsw.SetRange(kw.Pos, semi.End)
	return dsw
}

func (p *Parser) parseForStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	fs := &ForStmt{}
	p.pushScope()
	if !p.at(TokSemi) {
		if p.startsDecl() {
			fs.Init = p.parseDeclStmt()
		} else {
			start := p.cur().Pos
			e := p.parseExpr()
			semi := p.expect(TokSemi)
			es := &ExprStmt{X: e}
			es.SetRange(start, semi.End)
			fs.Init = es
		}
	} else {
		p.advance()
	}
	if !p.at(TokSemi) {
		fs.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if !p.at(TokRParen) {
		fs.Post = p.parseExpr()
	}
	p.expect(TokRParen)
	fs.Body = p.parseStmt()
	p.popScope()
	fs.SetRange(kw.Pos, fs.Body.Range().End)
	return fs
}

func (p *Parser) parseSwitchStmt() Stmt {
	kw := p.next()
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	ss := &SwitchStmt{Cond: cond}
	ss.Body = p.parseStmt()
	ss.SetRange(kw.Pos, ss.Body.Range().End)
	return ss
}

// ---------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() Expr {
	e := p.parseAssignExpr()
	for p.at(TokComma) {
		p.advance()
		rhs := p.parseAssignExpr()
		ce := &CommaExpr{LHS: e, RHS: rhs}
		ce.SetRange(e.Range().Begin, rhs.Range().End)
		e = ce
	}
	return e
}

var assignOps = map[TokenKind]BinOp{
	TokAssign: BinAssign, TokPlusEq: BinAddAssign, TokMinusEq: BinSubAssign,
	TokStarEq: BinMulAssign, TokSlashEq: BinDivAssign,
	TokPercentEq: BinRemAssign, TokAmpEq: BinAndAssign,
	TokPipeEq: BinOrAssign, TokCaretEq: BinXorAssign,
	TokShlEq: BinShlAssign, TokShrEq: BinShrAssign,
}

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseConditionalExpr()
	if op, ok := assignOps[p.cur().Kind]; ok {
		opTok := p.next()
		rhs := p.parseAssignExpr()
		bo := &BinaryOperator{Op: op, LHS: lhs, RHS: rhs,
			OpRange: SourceRange{opTok.Pos, opTok.End}}
		bo.SetRange(lhs.Range().Begin, rhs.Range().End)
		return bo
	}
	return lhs
}

func (p *Parser) parseConditionalExpr() Expr {
	cond := p.parseBinaryExpr(0)
	if !p.at(TokQuestion) {
		return cond
	}
	p.advance()
	then := p.parseExpr()
	p.expect(TokColon)
	els := p.parseConditionalExpr()
	ce := &ConditionalExpr{Cond: cond, Then: then, Else: els}
	ce.SetRange(cond.Range().Begin, els.Range().End)
	return ce
}

// binPrec maps token kinds to (binary operator, precedence); higher binds
// tighter.
type binPrecEntry struct {
	op   BinOp
	prec int
}

var binPrec = map[TokenKind]binPrecEntry{
	TokStar: {BinMul, 10}, TokSlash: {BinDiv, 10}, TokPercent: {BinRem, 10},
	TokPlus: {BinAdd, 9}, TokMinus: {BinSub, 9},
	TokShl: {BinShl, 8}, TokShr: {BinShr, 8},
	TokLess: {BinLT, 7}, TokGreater: {BinGT, 7},
	TokLessEq: {BinLE, 7}, TokGreaterEq: {BinGE, 7},
	TokEqEq: {BinEQ, 6}, TokNotEq: {BinNE, 6},
	TokAmp: {BinAnd, 5}, TokCaret: {BinXor, 4}, TokPipe: {BinOr, 3},
	TokAmpAmp: {BinLAnd, 2}, TokPipePipe: {BinLOr, 1},
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	lhs := p.parseCastExpr()
	for {
		ent, ok := binPrec[p.cur().Kind]
		if !ok || ent.prec < minPrec {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinaryExpr(ent.prec + 1)
		bo := &BinaryOperator{Op: ent.op, LHS: lhs, RHS: rhs,
			OpRange: SourceRange{opTok.Pos, opTok.End}}
		bo.SetRange(lhs.Range().Begin, rhs.Range().End)
		lhs = bo
	}
}

// startsTypeName reports whether the token after a '(' begins a type name.
func (p *Parser) startsTypeNameAt(n int) bool {
	t := p.peek(n)
	if t.Kind == TokKeyword && typeSpecKeywords[t.Text] &&
		t.Text != "static" && t.Text != "extern" && t.Text != "typedef" &&
		t.Text != "register" && t.Text != "auto" {
		return true
	}
	if t.Kind == TokIdent {
		_, ok := p.lookupTypedef(t.Text)
		return ok
	}
	return false
}

func (p *Parser) parseCastExpr() Expr {
	if p.at(TokLParen) && p.startsTypeNameAt(1) {
		lp := p.next()
		ty := p.parseTypeName()
		rp := p.expect(TokRParen)
		if p.at(TokLBrace) {
			// Compound literal.
			il := p.parseInitList()
			cl := &CompoundLiteralExpr{To: ty, Init: il}
			cl.SetRange(lp.Pos, il.Range().End)
			return cl
		}
		x := p.parseCastExpr()
		ce := &CastExpr{To: ty, X: x, TypeRange: SourceRange{lp.Pos, rp.End}}
		ce.SetRange(lp.Pos, x.Range().End)
		return ce
	}
	return p.parseUnaryExpr()
}

// parseTypeName parses a type-name (specifiers + abstract declarator).
func (p *Parser) parseTypeName() QualType {
	specs := p.parseDeclSpecs()
	ty := p.parsePointers(specs.base)
	// Abstract array/function suffixes.
	_, ty, _ = p.parseDirectDeclarator(ty)
	return ty
}

var unaryOps = map[TokenKind]UnOp{
	TokPlus: UnPlus, TokMinus: UnMinus, TokTilde: UnNot, TokBang: UnLNot,
	TokStar: UnDeref, TokAmp: UnAddr,
}

func (p *Parser) parseUnaryExpr() Expr {
	t := p.cur()
	switch {
	case p.at(TokPlusPlus) || p.at(TokMinusMinus):
		p.advance()
		x := p.parseUnaryExpr()
		op := UnPreInc
		if t.Kind == TokMinusMinus {
			op = UnPreDec
		}
		ue := &UnaryOperator{Op: op, X: x}
		ue.SetRange(t.Pos, x.Range().End)
		return ue
	case t.Is("sizeof"):
		p.advance()
		se := &SizeofExpr{}
		if p.at(TokLParen) && p.startsTypeNameAt(1) {
			p.advance()
			se.OfType = p.parseTypeName()
			rp := p.expect(TokRParen)
			se.SetRange(t.Pos, rp.End)
			return se
		}
		se.X = p.parseUnaryExpr()
		se.SetRange(t.Pos, se.X.Range().End)
		return se
	default:
		if op, ok := unaryOps[t.Kind]; ok {
			p.advance()
			x := p.parseCastExpr()
			ue := &UnaryOperator{Op: op, X: x}
			ue.SetRange(t.Pos, x.Range().End)
			return ue
		}
		return p.parsePostfixExpr()
	}
}

func (p *Parser) parsePostfixExpr() Expr {
	e := p.parsePrimaryExpr()
	for p.err == nil {
		t := p.cur()
		switch t.Kind {
		case TokLBracket:
			p.advance()
			idx := p.parseExpr()
			rb := p.expect(TokRBracket)
			ae := &ArraySubscriptExpr{Base: e, Index: idx}
			ae.SetRange(e.Range().Begin, rb.End)
			e = ae
		case TokLParen:
			p.advance()
			call := &CallExpr{Fn: e}
			for !p.at(TokRParen) && p.err == nil {
				call.Args = append(call.Args, p.parseAssignExpr())
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			rp := p.expect(TokRParen)
			call.SetRange(e.Range().Begin, rp.End)
			e = call
		case TokDot, TokArrow:
			p.advance()
			fld := p.expect(TokIdent)
			me := &MemberExpr{Base: e, Field: fld.Text, IsArrow: t.Kind == TokArrow}
			me.SetRange(e.Range().Begin, fld.End)
			e = me
		case TokPlusPlus, TokMinusMinus:
			p.advance()
			op := UnPostInc
			if t.Kind == TokMinusMinus {
				op = UnPostDec
			}
			ue := &UnaryOperator{Op: op, X: e}
			ue.SetRange(e.Range().Begin, t.End)
			e = ue
		default:
			return e
		}
	}
	return e
}

func (p *Parser) parsePrimaryExpr() Expr {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.advance()
		v := parseIntLit(t.Text)
		il := &IntegerLiteral{Value: v, Text: t.Text}
		il.SetRange(t.Pos, t.End)
		return il
	case TokFloatLit:
		p.advance()
		txt := strings.TrimRight(t.Text, "fFlL")
		v, _ := strconv.ParseFloat(txt, 64)
		fl := &FloatingLiteral{Value: v, Text: t.Text}
		fl.SetRange(t.Pos, t.End)
		return fl
	case TokCharLit:
		p.advance()
		cl := &CharLiteral{Value: decodeCharLit(t.Text), Text: t.Text}
		cl.SetRange(t.Pos, t.End)
		return cl
	case TokStringLit:
		p.advance()
		sl := &StringLiteral{Value: decodeStringLit(t.Text), Text: t.Text}
		sl.SetRange(t.Pos, t.End)
		// Adjacent string literal concatenation.
		for p.at(TokStringLit) {
			t2 := p.next()
			sl.Value += decodeStringLit(t2.Text)
			sl.Text = p.src[sl.Range().Begin:t2.End]
			sl.SetRange(sl.Range().Begin, t2.End)
		}
		return sl
	case TokIdent:
		p.advance()
		dr := &DeclRefExpr{Name: t.Text}
		dr.SetRange(t.Pos, t.End)
		return dr
	case TokLParen:
		p.advance()
		e := p.parseExpr()
		rp := p.expect(TokRParen)
		pe := &ParenExpr{X: e}
		pe.SetRange(t.Pos, rp.End)
		return pe
	}
	p.fail("expected expression, found %q", t.Text)
	// Return a placeholder so callers do not crash while unwinding.
	il := &IntegerLiteral{Value: 0, Text: "0"}
	il.SetRange(t.Pos, t.End)
	return il
}

func parseIntLit(text string) int64 {
	s := strings.TrimRight(text, "uUlL")
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case len(s) > 1 && s[0] == '0':
		v, err = strconv.ParseUint(s[1:], 8, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0
	}
	return int64(v)
}

func decodeCharLit(text string) byte {
	body := strings.Trim(text, "'")
	if body == "" {
		return 0
	}
	if body[0] != '\\' {
		return body[0]
	}
	if len(body) < 2 {
		return '\\'
	}
	switch body[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case 'x':
		if v, err := strconv.ParseUint(body[2:], 16, 8); err == nil {
			return byte(v)
		}
	}
	return body[1]
}

func decodeStringLit(text string) string {
	if len(text) < 2 {
		return ""
	}
	body := text[1 : len(text)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch body[i] {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case '0':
			sb.WriteByte(0)
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case '\'':
			sb.WriteByte('\'')
		default:
			sb.WriteByte(body[i])
		}
	}
	return sb.String()
}
