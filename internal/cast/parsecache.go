package cast

import (
	"sync"
	"sync/atomic"
)

// parseCacheCap bounds the memoized-parse table. Entries are whole
// translation units, so the cap trades memory for re-parse work; 1024
// comfortably covers a fuzzing pool while staying tens of megabytes.
const parseCacheCap = 1024

// parseCache memoizes successful ParseAndCheck results keyed by the
// exact source text. Safe for concurrent use: the engine's worker
// goroutines share it. Cached TranslationUnits are immutable after
// Check — every caller (muast managers, the fuzzers) only reads them —
// so handing the same *TranslationUnit to many goroutines is safe.
//
// Eviction is FIFO over a ring of keys: simple, O(1), and only a
// performance concern — a miss merely re-parses.
type parseCacheT struct {
	mu   sync.RWMutex
	m    map[string]*TranslationUnit
	ring []string // insertion-ordered keys; head is the next eviction
	head int

	hits, misses atomic.Int64
}

var parseCache = &parseCacheT{
	m:    make(map[string]*TranslationUnit, parseCacheCap),
	ring: make([]string, 0, parseCacheCap),
}

// ParseAndCheckCached is ParseAndCheck with memoization over identical
// sources. The fuzzers' hot loop parses the same pool program once per
// mutator try (μCFuzz: up to 8 per tick), so the cache turns the
// parse→check front half of the mutation pipeline into a map lookup.
// Only successes are cached; errors re-parse (pool programs are always
// valid, so misses on garbage cost nothing extra in practice).
func ParseAndCheckCached(src string) (*TranslationUnit, error) {
	pc := parseCache
	pc.mu.RLock()
	tu, ok := pc.m[src]
	pc.mu.RUnlock()
	if ok {
		pc.hits.Add(1)
		return tu, nil
	}
	tu, err := ParseAndCheck(src)
	if err != nil {
		return nil, err
	}
	pc.misses.Add(1)
	pc.mu.Lock()
	if _, dup := pc.m[src]; !dup {
		if len(pc.ring)-pc.head >= parseCacheCap {
			delete(pc.m, pc.ring[pc.head])
			pc.ring[pc.head] = "" // release the evicted key's string
			pc.head++
			if pc.head == len(pc.ring) {
				pc.ring = pc.ring[:0]
				pc.head = 0
			} else if pc.head > parseCacheCap {
				// Compact the consumed prefix so the ring's backing
				// array stays bounded.
				n := copy(pc.ring, pc.ring[pc.head:])
				pc.ring = pc.ring[:n]
				pc.head = 0
			}
		}
		pc.m[src] = tu
		pc.ring = append(pc.ring, src)
	}
	pc.mu.Unlock()
	return tu, nil
}

// ParseCacheStats returns the cumulative hit and miss counts of the
// memoized-parse table (process-wide; the bench harness reads deltas).
func ParseCacheStats() (hits, misses int64) {
	return parseCache.hits.Load(), parseCache.misses.Load()
}
