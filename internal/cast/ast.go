package cast

// NodeKind discriminates AST node types without reflection. The kinds
// double as the "[Program Structure]" vocabulary of the MetaMut invention
// prompt.
type NodeKind int

// Node kinds, grouped by syntactic class.
const (
	KindTranslationUnit NodeKind = iota

	// Declarations.
	KindFunctionDecl
	KindVarDecl
	KindParmVarDecl
	KindFieldDecl
	KindRecordDecl
	KindEnumDecl
	KindEnumConstantDecl
	KindTypedefDecl

	// Statements.
	KindCompoundStmt
	KindDeclStmt
	KindExprStmt
	KindIfStmt
	KindWhileStmt
	KindDoStmt
	KindForStmt
	KindSwitchStmt
	KindCaseStmt
	KindDefaultStmt
	KindBreakStmt
	KindContinueStmt
	KindReturnStmt
	KindGotoStmt
	KindLabelStmt
	KindNullStmt

	// Expressions.
	KindIntegerLiteral
	KindFloatingLiteral
	KindCharLiteral
	KindStringLiteral
	KindDeclRefExpr
	KindBinaryOperator
	KindUnaryOperator
	KindCallExpr
	KindArraySubscriptExpr
	KindMemberExpr
	KindCastExpr
	KindConditionalExpr
	KindParenExpr
	KindSizeofExpr
	KindInitListExpr
	KindCompoundLiteralExpr
	KindCommaExpr
)

var kindNames = [...]string{
	KindTranslationUnit: "TranslationUnit",
	KindFunctionDecl:    "FunctionDecl", KindVarDecl: "VarDecl",
	KindParmVarDecl: "ParmVarDecl", KindFieldDecl: "FieldDecl",
	KindRecordDecl: "RecordDecl", KindEnumDecl: "EnumDecl",
	KindEnumConstantDecl: "EnumConstantDecl", KindTypedefDecl: "TypedefDecl",
	KindCompoundStmt: "CompoundStmt", KindDeclStmt: "DeclStmt",
	KindExprStmt: "ExprStmt", KindIfStmt: "IfStmt",
	KindWhileStmt: "WhileStmt", KindDoStmt: "DoStmt", KindForStmt: "ForStmt",
	KindSwitchStmt: "SwitchStmt", KindCaseStmt: "CaseStmt",
	KindDefaultStmt: "DefaultStmt", KindBreakStmt: "BreakStmt",
	KindContinueStmt: "ContinueStmt", KindReturnStmt: "ReturnStmt",
	KindGotoStmt: "GotoStmt", KindLabelStmt: "LabelStmt",
	KindNullStmt:       "NullStmt",
	KindIntegerLiteral: "IntegerLiteral", KindFloatingLiteral: "FloatingLiteral",
	KindCharLiteral: "CharLiteral", KindStringLiteral: "StringLiteral",
	KindDeclRefExpr: "DeclRefExpr", KindBinaryOperator: "BinaryOperator",
	KindUnaryOperator: "UnaryOperator", KindCallExpr: "CallExpr",
	KindArraySubscriptExpr: "ArraySubscriptExpr", KindMemberExpr: "MemberExpr",
	KindCastExpr: "CastExpr", KindConditionalExpr: "ConditionalExpr",
	KindParenExpr: "ParenExpr", KindSizeofExpr: "SizeofExpr",
	KindInitListExpr: "InitListExpr", KindCompoundLiteralExpr: "CompoundLiteralExpr",
	KindCommaExpr: "CommaExpr",
}

// String returns the Clang-style node-kind name.
func (k NodeKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "UnknownNode"
}

// SourceRange is a half-open byte-offset range [Begin, End) into the
// original source buffer.
type SourceRange struct {
	Begin int
	End   int
}

// Len returns the number of bytes covered by the range.
func (r SourceRange) Len() int { return r.End - r.Begin }

// Contains reports whether r fully contains other.
func (r SourceRange) Contains(other SourceRange) bool {
	return r.Begin <= other.Begin && other.End <= r.End
}

// Node is the interface implemented by every AST node.
type Node interface {
	Kind() NodeKind
	Range() SourceRange
}

// Expr is implemented by expression nodes; Type returns the node's
// semantic type (nil before Sema runs).
type Expr interface {
	Node
	Type() QualType
	exprNode()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by declaration nodes.
type Decl interface {
	Node
	DeclName() string
	declNode()
}

// base carries the source extent shared by all nodes.
type base struct{ Rng SourceRange }

func (b *base) Range() SourceRange { return b.Rng }

// SetRange updates a node's source extent (used by the parser).
func (b *base) SetRange(begin, end int) { b.Rng = SourceRange{begin, end} }

type exprBase struct {
	base
	Ty QualType
}

func (e *exprBase) Type() QualType { return e.Ty }

// SetType annotates the expression with its semantic type.
func (e *exprBase) SetType(t QualType) { e.Ty = t }

func (e *exprBase) exprNode() {}

type stmtBase struct{ base }

func (s *stmtBase) stmtNode() {}

type declBase struct{ base }

func (d *declBase) declNode() {}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

// TranslationUnit is the root of a parsed file.
type TranslationUnit struct {
	base
	Decls []Decl
	// Source is the original text the ranges index into.
	Source string
	// arena owns every node reachable from this unit when it was built
	// by ParseWithArena; nil for units assembled by hand. See Arena for
	// the ownership rules.
	arena *Arena
}

// Arena returns the arena that owns this unit's nodes, or nil when the
// unit was not arena-parsed.
func (tu *TranslationUnit) Arena() *Arena { return tu.arena }

func (*TranslationUnit) Kind() NodeKind { return KindTranslationUnit }

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

// StorageClass is the declaration storage-class specifier.
type StorageClass int

// Storage classes.
const (
	StorageNone StorageClass = iota
	StorageStatic
	StorageExtern
	StorageTypedef
	StorageRegister
	StorageAuto
)

func (s StorageClass) String() string {
	switch s {
	case StorageStatic:
		return "static"
	case StorageExtern:
		return "extern"
	case StorageTypedef:
		return "typedef"
	case StorageRegister:
		return "register"
	case StorageAuto:
		return "auto"
	}
	return ""
}

// FunctionDecl is a function definition or prototype.
type FunctionDecl struct {
	declBase
	Name    string
	Ret     QualType
	Params  []*ParmVarDecl
	Body    *CompoundStmt // nil for prototypes
	Storage StorageClass
	Inline  bool
	// Variadic is true for prototypes ending in "...".
	Variadic bool
	// RetTypeRange is the extent of the return-type spelling, for
	// Rewriter-based return-type mutations.
	RetTypeRange SourceRange
	// NameRange is the extent of the declared name.
	NameRange SourceRange
	// cachedType memoizes the FuncType the checker derives from this
	// declaration so DeclRef checking stops rebuilding it per reference.
	// Builtin declarations precompute it at init; arena-parsed decls fill
	// it lazily (single-goroutine by the arena contract).
	cachedType *FuncType
}

func (*FunctionDecl) Kind() NodeKind       { return KindFunctionDecl }
func (d *FunctionDecl) DeclName() string   { return d.Name }
func (d *FunctionDecl) IsDefinition() bool { return d.Body != nil }

// VarDecl is a global or local variable declaration.
type VarDecl struct {
	declBase
	Name    string
	Ty      QualType
	Init    Expr // nil when absent
	Storage StorageClass
	// IsGlobal is true for file-scope variables.
	IsGlobal bool
	// NameRange is the extent of the declared name.
	NameRange SourceRange
	// InitRange is the extent of the initializer expression, when present.
	InitRange SourceRange
	// TypeRange is the extent of the declaration-specifier spelling.
	TypeRange SourceRange
}

func (*VarDecl) Kind() NodeKind     { return KindVarDecl }
func (d *VarDecl) DeclName() string { return d.Name }

// ParmVarDecl is a function parameter.
type ParmVarDecl struct {
	declBase
	Name string // may be empty in prototypes
	Ty   QualType
	// Index is the zero-based parameter position.
	Index int
}

func (*ParmVarDecl) Kind() NodeKind     { return KindParmVarDecl }
func (d *ParmVarDecl) DeclName() string { return d.Name }

// FieldDecl is a struct or union member.
type FieldDecl struct {
	declBase
	Name string
	Ty   QualType
}

func (*FieldDecl) Kind() NodeKind     { return KindFieldDecl }
func (d *FieldDecl) DeclName() string { return d.Name }

// RecordDecl declares a struct or union type.
type RecordDecl struct {
	declBase
	Name    string // tag; may be empty for anonymous records
	IsUnion bool
	Fields  []*FieldDecl
	// Complete is false for forward declarations.
	Complete bool
}

func (*RecordDecl) Kind() NodeKind     { return KindRecordDecl }
func (d *RecordDecl) DeclName() string { return d.Name }

// EnumDecl declares an enum type.
type EnumDecl struct {
	declBase
	Name      string
	Constants []*EnumConstantDecl
}

func (*EnumDecl) Kind() NodeKind     { return KindEnumDecl }
func (d *EnumDecl) DeclName() string { return d.Name }

// EnumConstantDecl is a single enumerator.
type EnumConstantDecl struct {
	declBase
	Name  string
	Value Expr // explicit value, or nil
	// Num is the resolved constant value (set by Sema).
	Num int64
}

func (*EnumConstantDecl) Kind() NodeKind     { return KindEnumConstantDecl }
func (d *EnumConstantDecl) DeclName() string { return d.Name }

// TypedefDecl introduces a type alias.
type TypedefDecl struct {
	declBase
	Name string
	Ty   QualType
}

func (*TypedefDecl) Kind() NodeKind     { return KindTypedefDecl }
func (d *TypedefDecl) DeclName() string { return d.Name }

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

// CompoundStmt is a brace-enclosed block.
type CompoundStmt struct {
	stmtBase
	Stmts []Stmt
}

func (*CompoundStmt) Kind() NodeKind { return KindCompoundStmt }

// DeclStmt wraps one or more local declarations that share a specifier.
type DeclStmt struct {
	stmtBase
	Decls []Decl
}

func (*DeclStmt) Kind() NodeKind { return KindDeclStmt }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

func (*ExprStmt) Kind() NodeKind { return KindExprStmt }

// IfStmt is an if/else statement.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

func (*IfStmt) Kind() NodeKind { return KindIfStmt }

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

func (*WhileStmt) Kind() NodeKind { return KindWhileStmt }

// DoStmt is a do/while loop.
type DoStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

func (*DoStmt) Kind() NodeKind { return KindDoStmt }

// ForStmt is a for loop. Init may be a DeclStmt or ExprStmt; any of the
// three clauses may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

func (*ForStmt) Kind() NodeKind { return KindForStmt }

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	stmtBase
	Cond Expr
	Body Stmt // usually a CompoundStmt containing Case/Default stmts
}

func (*SwitchStmt) Kind() NodeKind { return KindSwitchStmt }

// CaseStmt is a case label and its immediately following statement.
type CaseStmt struct {
	stmtBase
	Value Expr
	Body  Stmt // may be nil for stacked labels
}

func (*CaseStmt) Kind() NodeKind { return KindCaseStmt }

// DefaultStmt is a default label.
type DefaultStmt struct {
	stmtBase
	Body Stmt
}

func (*DefaultStmt) Kind() NodeKind { return KindDefaultStmt }

// BreakStmt is a break statement.
type BreakStmt struct{ stmtBase }

func (*BreakStmt) Kind() NodeKind { return KindBreakStmt }

// ContinueStmt is a continue statement.
type ContinueStmt struct{ stmtBase }

func (*ContinueStmt) Kind() NodeKind { return KindContinueStmt }

// ReturnStmt is a return statement with an optional value.
type ReturnStmt struct {
	stmtBase
	Value Expr // nil for bare "return;"
}

func (*ReturnStmt) Kind() NodeKind { return KindReturnStmt }

// GotoStmt is a goto to a named label.
type GotoStmt struct {
	stmtBase
	Label string
}

func (*GotoStmt) Kind() NodeKind { return KindGotoStmt }

// LabelStmt is a named label and its following statement.
type LabelStmt struct {
	stmtBase
	Name string
	Body Stmt
}

func (*LabelStmt) Kind() NodeKind { return KindLabelStmt }

// NullStmt is a lone semicolon.
type NullStmt struct{ stmtBase }

func (*NullStmt) Kind() NodeKind { return KindNullStmt }

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

// IntegerLiteral is an integer constant. Value holds the parsed value.
type IntegerLiteral struct {
	exprBase
	Value int64
	Text  string // original spelling (keeps hex/suffixes)
}

func (*IntegerLiteral) Kind() NodeKind { return KindIntegerLiteral }

// FloatingLiteral is a floating constant.
type FloatingLiteral struct {
	exprBase
	Value float64
	Text  string
}

func (*FloatingLiteral) Kind() NodeKind { return KindFloatingLiteral }

// CharLiteral is a character constant.
type CharLiteral struct {
	exprBase
	Value byte
	Text  string
}

func (*CharLiteral) Kind() NodeKind { return KindCharLiteral }

// StringLiteral is a string constant.
type StringLiteral struct {
	exprBase
	Value string // decoded content (without quotes)
	Text  string // original spelling (with quotes)
}

func (*StringLiteral) Kind() NodeKind { return KindStringLiteral }

// DeclRefExpr is a use of a declared name. Ref is resolved by Sema and may
// be a *VarDecl, *ParmVarDecl, *FunctionDecl or *EnumConstantDecl.
type DeclRefExpr struct {
	exprBase
	Name string
	Ref  Decl
}

func (*DeclRefExpr) Kind() NodeKind { return KindDeclRefExpr }

// BinOp enumerates binary (and compound-assignment) operators.
type BinOp int

// Binary operators, ordered roughly by precedence group.
const (
	BinMul BinOp = iota
	BinDiv
	BinRem
	BinAdd
	BinSub
	BinShl
	BinShr
	BinLT
	BinGT
	BinLE
	BinGE
	BinEQ
	BinNE
	BinAnd
	BinXor
	BinOr
	BinLAnd
	BinLOr
	BinAssign
	BinMulAssign
	BinDivAssign
	BinRemAssign
	BinAddAssign
	BinSubAssign
	BinShlAssign
	BinShrAssign
	BinAndAssign
	BinXorAssign
	BinOrAssign
)

var binOpSpellings = [...]string{
	BinMul: "*", BinDiv: "/", BinRem: "%", BinAdd: "+", BinSub: "-",
	BinShl: "<<", BinShr: ">>", BinLT: "<", BinGT: ">", BinLE: "<=",
	BinGE: ">=", BinEQ: "==", BinNE: "!=", BinAnd: "&", BinXor: "^",
	BinOr: "|", BinLAnd: "&&", BinLOr: "||", BinAssign: "=",
	BinMulAssign: "*=", BinDivAssign: "/=", BinRemAssign: "%=",
	BinAddAssign: "+=", BinSubAssign: "-=", BinShlAssign: "<<=",
	BinShrAssign: ">>=", BinAndAssign: "&=", BinXorAssign: "^=",
	BinOrAssign: "|=",
}

// String returns the operator's source spelling.
func (op BinOp) String() string { return binOpSpellings[op] }

// IsAssignment reports whether op is "=" or a compound assignment.
func (op BinOp) IsAssignment() bool { return op >= BinAssign }

// IsComparison reports whether op is a relational or equality operator.
func (op BinOp) IsComparison() bool { return op >= BinLT && op <= BinNE }

// IsLogical reports whether op is && or ||.
func (op BinOp) IsLogical() bool { return op == BinLAnd || op == BinLOr }

// IsBitwise reports whether op is a bitwise or shift operator.
func (op BinOp) IsBitwise() bool {
	switch op {
	case BinAnd, BinOr, BinXor, BinShl, BinShr:
		return true
	}
	return false
}

// IsArithmetic reports whether op is + - * / %.
func (op BinOp) IsArithmetic() bool { return op <= BinSub }

// BinaryOperator is a binary or assignment expression.
type BinaryOperator struct {
	exprBase
	Op  BinOp
	LHS Expr
	RHS Expr
	// OpRange is the extent of the operator token.
	OpRange SourceRange
}

func (*BinaryOperator) Kind() NodeKind { return KindBinaryOperator }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators. Post variants are the suffix forms.
const (
	UnPlus UnOp = iota
	UnMinus
	UnNot   // ~
	UnLNot  // !
	UnDeref // *
	UnAddr  // &
	UnPreInc
	UnPreDec
	UnPostInc
	UnPostDec
)

var unOpSpellings = [...]string{
	UnPlus: "+", UnMinus: "-", UnNot: "~", UnLNot: "!", UnDeref: "*",
	UnAddr: "&", UnPreInc: "++", UnPreDec: "--", UnPostInc: "++",
	UnPostDec: "--",
}

// String returns the operator's source spelling.
func (op UnOp) String() string { return unOpSpellings[op] }

// IsPostfix reports whether the operator is written after its operand.
func (op UnOp) IsPostfix() bool { return op == UnPostInc || op == UnPostDec }

// UnaryOperator is a unary expression.
type UnaryOperator struct {
	exprBase
	Op UnOp
	X  Expr
}

func (*UnaryOperator) Kind() NodeKind { return KindUnaryOperator }

// CallExpr is a function call.
type CallExpr struct {
	exprBase
	Fn   Expr
	Args []Expr
	// Callee is the resolved function, when Fn is a direct reference.
	Callee *FunctionDecl
}

func (*CallExpr) Kind() NodeKind { return KindCallExpr }

// ArraySubscriptExpr is base[index].
type ArraySubscriptExpr struct {
	exprBase
	Base  Expr
	Index Expr
}

func (*ArraySubscriptExpr) Kind() NodeKind { return KindArraySubscriptExpr }

// MemberExpr is base.field or base->field.
type MemberExpr struct {
	exprBase
	Base    Expr
	Field   string
	IsArrow bool
	// FieldDecl is resolved by Sema when the record type is known.
	FieldDecl *FieldDecl
}

func (*MemberExpr) Kind() NodeKind { return KindMemberExpr }

// CastExpr is an explicit C cast "(T)x".
type CastExpr struct {
	exprBase
	To QualType
	X  Expr
	// TypeRange covers the parenthesized type spelling.
	TypeRange SourceRange
}

func (*CastExpr) Kind() NodeKind { return KindCastExpr }

// ConditionalExpr is cond ? then : else.
type ConditionalExpr struct {
	exprBase
	Cond Expr
	Then Expr
	Else Expr
}

func (*ConditionalExpr) Kind() NodeKind { return KindConditionalExpr }

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	exprBase
	X Expr
}

func (*ParenExpr) Kind() NodeKind { return KindParenExpr }

// SizeofExpr is sizeof(expr) or sizeof(type).
type SizeofExpr struct {
	exprBase
	X      Expr     // nil when OfType is set
	OfType QualType // zero when X is set
}

func (*SizeofExpr) Kind() NodeKind { return KindSizeofExpr }

// InitListExpr is a brace initializer list.
type InitListExpr struct {
	exprBase
	Inits []Expr
}

func (*InitListExpr) Kind() NodeKind { return KindInitListExpr }

// CompoundLiteralExpr is "(T){...}".
type CompoundLiteralExpr struct {
	exprBase
	To   QualType
	Init *InitListExpr
}

func (*CompoundLiteralExpr) Kind() NodeKind { return KindCompoundLiteralExpr }

// CommaExpr is "lhs, rhs".
type CommaExpr struct {
	exprBase
	LHS Expr
	RHS Expr
}

func (*CommaExpr) Kind() NodeKind { return KindCommaExpr }
