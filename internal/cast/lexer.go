package cast

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error at a source position.
type LexError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%d:%d: lex error: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes C source text. Preprocessor directives are skipped
// line-wise (seeds are expected to be preprocessed or directive-free);
// comments are skipped.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Reset rewinds the lexer onto new source text, equivalent to (but
// cheaper than) allocating a fresh lexer — the compile hot loop lexes
// one mutant per iteration and reuses a single Lexer per stream.
func (lx *Lexer) Reset(src string) {
	lx.src, lx.off, lx.line, lx.col = src, 0, 1, 1
}

// Lex tokenizes the whole input, returning the token stream terminated by
// a TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(format string, args ...any) error {
	return &LexError{Pos: lx.off, Line: lx.line, Col: lx.col,
		Msg: fmt.Sprintf(format, args...)}
}

// skipTrivia consumes whitespace, comments and preprocessor lines.
func (lx *Lexer) skipTrivia() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf("unterminated block comment")
			}
		case c == '#' && lx.atLineStart():
			// Skip the directive, honoring backslash continuations.
			for lx.off < len(lx.src) {
				if lx.peek() == '\\' && lx.peekAt(1) == '\n' {
					lx.advance()
					lx.advance()
					continue
				}
				if lx.peek() == '\n' {
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) atLineStart() bool {
	for i := lx.off - 1; i >= 0; i-- {
		switch lx.src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipTrivia(); err != nil {
		return Token{}, err
	}
	start, line, col := lx.off, lx.line, lx.col
	mk := func(k TokenKind) Token {
		return Token{Kind: k, Text: lx.src[start:lx.off], Pos: start,
			End: lx.off, Line: line, Col: col}
	}
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start, End: start, Line: line, Col: col}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		t := mk(TokIdent)
		if IsKeyword(t.Text) {
			t.Kind = TokKeyword
		}
		return t, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(mk)
	case c == '\'':
		return lx.lexCharLit(mk)
	case c == '"':
		return lx.lexStringLit(mk)
	}
	return lx.lexPunct(mk)
}

func (lx *Lexer) lexNumber(mk func(TokenKind) Token) (Token, error) {
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' || lx.peek() == 'p' || lx.peek() == 'P' {
			// Hex float.
			isFloat = true
			for lx.off < len(lx.src) &&
				(isHexDigit(lx.peek()) || lx.peek() == '.' || lx.peek() == 'p' ||
					lx.peek() == 'P' || lx.peek() == '+' || lx.peek() == '-') {
				lx.advance()
			}
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if lx.peek() == '+' || lx.peek() == '-' {
					lx.advance()
				}
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Suffixes (u, l, f combinations).
	for lx.off < len(lx.src) && strings.ContainsRune("uUlLfF", rune(lx.peek())) {
		if lx.peek() == 'f' || lx.peek() == 'F' {
			isFloat = true
		}
		lx.advance()
	}
	if isFloat {
		return mk(TokFloatLit), nil
	}
	return mk(TokIntLit), nil
}

func (lx *Lexer) lexCharLit(mk func(TokenKind) Token) (Token, error) {
	lx.advance() // opening quote
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '\\' {
			lx.advance()
			if lx.off < len(lx.src) {
				lx.advance()
			}
			continue
		}
		if c == '\'' {
			lx.advance()
			return mk(TokCharLit), nil
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	return Token{}, lx.errorf("unterminated character literal")
}

func (lx *Lexer) lexStringLit(mk func(TokenKind) Token) (Token, error) {
	lx.advance() // opening quote
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == '\\' {
			lx.advance()
			if lx.off < len(lx.src) {
				lx.advance()
			}
			continue
		}
		if c == '"' {
			lx.advance()
			return mk(TokStringLit), nil
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	return Token{}, lx.errorf("unterminated string literal")
}

// punct3, punct2, punct1 map spellings to kinds, longest match first.
var punct3 = map[string]TokenKind{"<<=": TokShlEq, ">>=": TokShrEq, "...": TokEllipsis}

var punct2 = map[string]TokenKind{
	"->": TokArrow, "++": TokPlusPlus, "--": TokMinusMinus,
	"<<": TokShl, ">>": TokShr, "<=": TokLessEq, ">=": TokGreaterEq,
	"==": TokEqEq, "!=": TokNotEq, "&&": TokAmpAmp, "||": TokPipePipe,
	"+=": TokPlusEq, "-=": TokMinusEq, "*=": TokStarEq, "/=": TokSlashEq,
	"%=": TokPercentEq, "&=": TokAmpEq, "|=": TokPipeEq, "^=": TokCaretEq,
}

var punct1 = map[byte]TokenKind{
	'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
	'[': TokLBracket, ']': TokRBracket, ';': TokSemi, ',': TokComma,
	':': TokColon, '?': TokQuestion, '+': TokPlus, '-': TokMinus,
	'*': TokStar, '/': TokSlash, '%': TokPercent, '&': TokAmp,
	'|': TokPipe, '^': TokCaret, '~': TokTilde, '!': TokBang,
	'<': TokLess, '>': TokGreater, '=': TokAssign, '.': TokDot,
}

func (lx *Lexer) lexPunct(mk func(TokenKind) Token) (Token, error) {
	if lx.off+3 <= len(lx.src) {
		if k, ok := punct3[lx.src[lx.off:lx.off+3]]; ok {
			lx.advance()
			lx.advance()
			lx.advance()
			return mk(k), nil
		}
	}
	if lx.off+2 <= len(lx.src) {
		if k, ok := punct2[lx.src[lx.off:lx.off+2]]; ok {
			lx.advance()
			lx.advance()
			return mk(k), nil
		}
	}
	if k, ok := punct1[lx.peek()]; ok {
		lx.advance()
		return mk(k), nil
	}
	c := lx.peek()
	lx.advance()
	return Token{}, lx.errorf("unexpected character %q", string(rune(c)))
}
