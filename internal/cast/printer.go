package cast

import (
	"fmt"
	"strings"
)

// Print renders the AST back to compilable C source. The output is not
// byte-identical to the input (whitespace and redundant parentheses are
// normalized) but parses to an equivalent tree.
func Print(n Node) string {
	var p printer
	p.node(n)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) node(n Node) {
	switch x := n.(type) {
	case *TranslationUnit:
		for _, d := range x.Decls {
			p.decl(d)
			p.sb.WriteString("\n")
		}
	case Decl:
		p.decl(x)
	case Stmt:
		p.stmt(x)
	case Expr:
		p.sb.WriteString(ExprString(x))
	}
}

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *FunctionDecl:
		p.ws()
		if x.Storage != StorageNone {
			p.printf("%s ", x.Storage)
		}
		if x.Inline {
			p.sb.WriteString("inline ")
		}
		var params []string
		for _, pv := range x.Params {
			params = append(params, FormatAsDecl(pv.Ty, pv.Name))
		}
		if x.Variadic {
			params = append(params, "...")
		}
		if len(params) == 0 {
			params = []string{"void"}
		}
		p.printf("%s(%s)", FormatAsDecl(x.Ret, x.Name), strings.Join(params, ", "))
		if x.Body == nil {
			p.sb.WriteString(";")
			return
		}
		p.sb.WriteString(" ")
		p.stmt(x.Body)
	case *VarDecl:
		p.ws()
		if x.Storage != StorageNone {
			p.printf("%s ", x.Storage)
		}
		p.sb.WriteString(FormatAsDecl(x.Ty, x.Name))
		if x.Init != nil {
			p.printf(" = %s", ExprString(x.Init))
		}
		p.sb.WriteString(";")
	case *ParmVarDecl:
		p.sb.WriteString(FormatAsDecl(x.Ty, x.Name))
	case *FieldDecl:
		p.ws()
		p.printf("%s;", FormatAsDecl(x.Ty, x.Name))
	case *RecordDecl:
		p.ws()
		kw := "struct"
		if x.IsUnion {
			kw = "union"
		}
		p.printf("%s %s", kw, x.Name)
		if x.Complete {
			p.sb.WriteString(" {\n")
			p.indent++
			for _, f := range x.Fields {
				p.decl(f)
				p.sb.WriteString("\n")
			}
			p.indent--
			p.ws()
			p.sb.WriteString("}")
		}
		p.sb.WriteString(";")
	case *EnumDecl:
		p.ws()
		p.printf("enum %s {", x.Name)
		for i, c := range x.Constants {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.sb.WriteString(c.Name)
			if c.Value != nil {
				p.printf(" = %s", ExprString(c.Value))
			}
		}
		p.sb.WriteString("};")
	case *EnumConstantDecl:
		p.sb.WriteString(x.Name)
	case *TypedefDecl:
		p.ws()
		p.printf("typedef %s;", FormatAsDecl(x.Ty, x.Name))
	}
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *CompoundStmt:
		p.sb.WriteString("{\n")
		p.indent++
		for _, inner := range x.Stmts {
			p.stmtLine(inner)
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}")
	case *DeclStmt:
		for i, d := range x.Decls {
			if i > 0 {
				p.sb.WriteString("\n")
			}
			p.decl(d)
		}
	case *ExprStmt:
		p.ws()
		p.printf("%s;", ExprString(x.X))
	case *IfStmt:
		p.ws()
		p.printf("if (%s) ", ExprString(x.Cond))
		p.substmt(x.Then)
		if x.Else != nil {
			p.ws()
			p.sb.WriteString("else ")
			p.substmt(x.Else)
		}
	case *WhileStmt:
		p.ws()
		p.printf("while (%s) ", ExprString(x.Cond))
		p.substmt(x.Body)
	case *DoStmt:
		p.ws()
		p.sb.WriteString("do ")
		p.substmt(x.Body)
		p.ws()
		p.printf("while (%s);", ExprString(x.Cond))
	case *ForStmt:
		p.ws()
		p.sb.WriteString("for (")
		switch init := x.Init.(type) {
		case *DeclStmt:
			saved := p.indent
			p.indent = 0
			p.decl(init.Decls[len(init.Decls)-1])
			p.indent = saved
		case *ExprStmt:
			p.printf("%s;", ExprString(init.X))
		default:
			p.sb.WriteString(";")
		}
		p.sb.WriteString(" ")
		if x.Cond != nil {
			p.sb.WriteString(ExprString(x.Cond))
		}
		p.sb.WriteString("; ")
		if x.Post != nil {
			p.sb.WriteString(ExprString(x.Post))
		}
		p.sb.WriteString(") ")
		p.substmt(x.Body)
	case *SwitchStmt:
		p.ws()
		p.printf("switch (%s) ", ExprString(x.Cond))
		p.substmt(x.Body)
	case *CaseStmt:
		p.ws()
		p.printf("case %s:", ExprString(x.Value))
		if x.Body != nil {
			p.sb.WriteString("\n")
			p.indent++
			p.stmtLine(x.Body)
			p.indent--
			return
		}
	case *DefaultStmt:
		p.ws()
		p.sb.WriteString("default:")
		if x.Body != nil {
			p.sb.WriteString("\n")
			p.indent++
			p.stmtLine(x.Body)
			p.indent--
			return
		}
	case *BreakStmt:
		p.ws()
		p.sb.WriteString("break;")
	case *ContinueStmt:
		p.ws()
		p.sb.WriteString("continue;")
	case *ReturnStmt:
		p.ws()
		if x.Value != nil {
			p.printf("return %s;", ExprString(x.Value))
		} else {
			p.sb.WriteString("return;")
		}
	case *GotoStmt:
		p.ws()
		p.printf("goto %s;", x.Label)
	case *LabelStmt:
		p.ws()
		p.printf("%s:", x.Name)
		if x.Body != nil {
			p.sb.WriteString("\n")
			p.stmtLine(x.Body)
			return
		}
		p.sb.WriteString(";")
	case *NullStmt:
		p.ws()
		p.sb.WriteString(";")
	}
}

// stmtLine prints a statement followed by a newline.
func (p *printer) stmtLine(s Stmt) {
	p.stmt(s)
	p.sb.WriteString("\n")
}

// substmt prints the body of a control statement, inlining compound
// bodies on the same line.
func (p *printer) substmt(s Stmt) {
	if _, ok := s.(*CompoundStmt); ok {
		p.stmt(s)
		p.sb.WriteString("\n")
		return
	}
	p.sb.WriteString("\n")
	p.indent++
	p.stmtLine(s)
	p.indent--
}

// Expression precedence levels for the printer; higher binds tighter.
const (
	precComma = iota + 1
	precAssign
	precCond
	precLOr
	precLAnd
	precOr
	precXor
	precAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
	precPrimary
)

func binOpPrec(op BinOp) int {
	switch op {
	case BinMul, BinDiv, BinRem:
		return precMul
	case BinAdd, BinSub:
		return precAdd
	case BinShl, BinShr:
		return precShift
	case BinLT, BinGT, BinLE, BinGE:
		return precRel
	case BinEQ, BinNE:
		return precEq
	case BinAnd:
		return precAnd
	case BinXor:
		return precXor
	case BinOr:
		return precOr
	case BinLAnd:
		return precLAnd
	case BinLOr:
		return precLOr
	}
	return precAssign
}

func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryOperator:
		return binOpPrec(x.Op)
	case *ConditionalExpr:
		return precCond
	case *CommaExpr:
		return precComma
	case *UnaryOperator:
		if x.Op.IsPostfix() {
			return precPostfix
		}
		return precUnary
	case *CastExpr, *SizeofExpr:
		return precUnary
	case *CallExpr, *ArraySubscriptExpr, *MemberExpr, *CompoundLiteralExpr:
		return precPostfix
	}
	return precPrimary
}

// exprAt renders e, parenthesizing it if its precedence is below min.
func exprAt(e Expr, min int) string {
	s := ExprString(e)
	if exprPrec(e) < min {
		return "(" + s + ")"
	}
	return s
}

// ExprString renders a single expression to C syntax, inserting
// parentheses as required by operator precedence.
func ExprString(e Expr) string {
	if e == nil {
		return ""
	}
	switch x := e.(type) {
	case *IntegerLiteral:
		if x.Text != "" {
			return x.Text
		}
		return fmt.Sprintf("%d", x.Value)
	case *FloatingLiteral:
		if x.Text != "" {
			return x.Text
		}
		return fmt.Sprintf("%g", x.Value)
	case *CharLiteral:
		if x.Text != "" {
			return x.Text
		}
		return fmt.Sprintf("'%c'", x.Value)
	case *StringLiteral:
		if x.Text != "" {
			return x.Text
		}
		return fmt.Sprintf("%q", x.Value)
	case *DeclRefExpr:
		return x.Name
	case *ParenExpr:
		return "(" + ExprString(x.X) + ")"
	case *UnaryOperator:
		if x.Op.IsPostfix() {
			return exprAt(x.X, precPostfix) + x.Op.String()
		}
		inner := exprAt(x.X, precUnary)
		// Space avoids "- -x" gluing into "--x".
		if (x.Op == UnMinus || x.Op == UnPlus || x.Op == UnAddr) &&
			len(inner) > 0 && (inner[0] == '-' || inner[0] == '+' || inner[0] == '&') {
			inner = " " + inner
		}
		return x.Op.String() + inner
	case *BinaryOperator:
		p := binOpPrec(x.Op)
		if x.Op.IsAssignment() {
			// Right-associative; LHS must be unary-level.
			return fmt.Sprintf("%s %s %s",
				exprAt(x.LHS, precUnary), x.Op, exprAt(x.RHS, precAssign))
		}
		return fmt.Sprintf("%s %s %s",
			exprAt(x.LHS, p), x.Op, exprAt(x.RHS, p+1))
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprAt(a, precAssign))
		}
		return fmt.Sprintf("%s(%s)", exprAt(x.Fn, precPostfix),
			strings.Join(args, ", "))
	case *ArraySubscriptExpr:
		return fmt.Sprintf("%s[%s]", exprAt(x.Base, precPostfix),
			ExprString(x.Index))
	case *MemberExpr:
		sep := "."
		if x.IsArrow {
			sep = "->"
		}
		return exprAt(x.Base, precPostfix) + sep + x.Field
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", x.To.CString(), exprAt(x.X, precUnary))
	case *ConditionalExpr:
		return fmt.Sprintf("%s ? %s : %s", exprAt(x.Cond, precLOr),
			ExprString(x.Then), exprAt(x.Else, precCond))
	case *SizeofExpr:
		if x.X != nil {
			return "sizeof(" + ExprString(x.X) + ")"
		}
		return "sizeof(" + x.OfType.CString() + ")"
	case *InitListExpr:
		var parts []string
		for _, in := range x.Inits {
			parts = append(parts, exprAt(in, precAssign))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *CompoundLiteralExpr:
		return fmt.Sprintf("(%s)%s", x.To.CString(), ExprString(x.Init))
	case *CommaExpr:
		return fmt.Sprintf("%s, %s", exprAt(x.LHS, precAssign),
			exprAt(x.RHS, precAssign))
	}
	return ""
}
