package chaos

import (
	"fmt"
	"sync"
	"syscall"

	"github.com/icsnju/metamut-go/internal/resil"
)

// ServeConfig selects the service-layer faults a ServeInjector plants:
// slice-level panics (including a designated poison job that faults
// every slice), checkpoint ENOSPC, and torn ledger saves. A zero rate
// disables that fault class.
type ServeConfig struct {
	// Seed decorrelates fault sites between chaos runs.
	Seed int64
	// SlicePanicEvery makes roughly one in N (job, slice-attempt)
	// sites panic at the top of the slice, before the campaign has been
	// touched — the recoverable kind the daemon's supervision retries.
	// The hash covers the per-job attempt counter, so a retried slice
	// lands on a fresh site and replays clean.
	SlicePanicEvery int
	// PoisonJobSeq designates one job (by ledger sequence number) as
	// poison: every slice attempt from PoisonAfter on panics, so the
	// job exhausts its strike budget and must be quarantined (0 = no
	// poison job; sequence numbers start at 1).
	PoisonJobSeq int
	// PoisonAfter is the first slice attempt (0-based) at which the
	// poison job starts panicking (default 1, letting slice 0 run clean
	// so the quarantined job has partial artifacts to preserve).
	PoisonAfter int
	// CheckpointENOSPCEvery makes every N-th checkpoint write attempt —
	// counted across all jobs, single coordinator — fail with a wrapped
	// syscall.ENOSPC, exercising the engine's bounded write-retry loop
	// and the daemon's disk-pressure ladder. With N >= 2 at most one
	// attempt per checkpoint fails, so the engine's in-call retry
	// succeeds and journals stay byte-identical; N == 1 simulates a
	// sustained full disk.
	CheckpointENOSPCEvery int
	// LedgerTearEvery truncates every N-th ledger save to a third of
	// its bytes, exercising the .prev fallback on restart. Keep N >= 2:
	// two consecutive torn generations would defeat the fallback.
	LedgerTearEvery int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.PoisonAfter <= 0 {
		c.PoisonAfter = 1
	}
	return c
}

// ServeFaults counts what a ServeInjector actually did.
type ServeFaults struct {
	SlicePanics  int
	PoisonPanics int
	ENOSPCWrites int
	TornLedgers  int
}

// ServeInjector plugs into serve.Config's chaos hooks. Slice-panic
// decisions are stateless hashes of (seed, job sequence, attempt), so
// they are identical at any fleet size; checkpoint and ledger faults
// are counted against write sequences the daemon drives from its
// single coordinator goroutine.
type ServeInjector struct {
	cfg ServeConfig

	mu          sync.Mutex
	ckptWrites  int
	ledgerSaves int
	faults      ServeFaults
}

// NewServeInjector builds a ServeInjector for cfg.
func NewServeInjector(cfg ServeConfig) *ServeInjector {
	return &ServeInjector{cfg: cfg.withDefaults()}
}

// Faults returns a copy of the fault counts so far.
func (in *ServeInjector) Faults() ServeFaults {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// SliceStart panics — before the slice has touched its campaign — on
// hash-chosen (job, attempt) sites, and on every attempt >= PoisonAfter
// of the designated poison job.
func (in *ServeInjector) SliceStart(jobSeq, attempt int) {
	if in.cfg.PoisonJobSeq > 0 && jobSeq == in.cfg.PoisonJobSeq {
		if attempt >= in.cfg.PoisonAfter {
			in.mu.Lock()
			in.faults.PoisonPanics++
			in.mu.Unlock()
			panic(fmt.Sprintf("chaos: injected poison-job panic (job seq %d, slice %d)", jobSeq, attempt))
		}
		return
	}
	if in.cfg.SlicePanicEvery <= 0 {
		return
	}
	h := resil.Hash(in.cfg.Seed, int64(jobSeq), int64(attempt))
	if h%uint64(in.cfg.SlicePanicEvery) != 0 {
		return
	}
	in.mu.Lock()
	in.faults.SlicePanics++
	in.mu.Unlock()
	panic(fmt.Sprintf("chaos: injected slice panic (job seq %d, slice %d)", jobSeq, attempt))
}

// CheckpointTransform fails counted checkpoint write attempts with a
// wrapped syscall.ENOSPC; successful attempts pass the bytes through
// untouched.
func (in *ServeInjector) CheckpointTransform(data []byte) ([]byte, error) {
	if in.cfg.CheckpointENOSPCEvery <= 0 {
		return data, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ckptWrites++
	if in.ckptWrites%in.cfg.CheckpointENOSPCEvery == 0 {
		in.faults.ENOSPCWrites++
		return nil, fmt.Errorf("chaos: injected checkpoint ENOSPC (write %d): %w",
			in.ckptWrites, syscall.ENOSPC)
	}
	return data, nil
}

// LedgerTransform tears counted ledger saves to a third of their bytes.
func (in *ServeInjector) LedgerTransform(data []byte) ([]byte, error) {
	if in.cfg.LedgerTearEvery <= 0 {
		return data, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ledgerSaves++
	if in.ledgerSaves%in.cfg.LedgerTearEvery == 0 {
		in.faults.TornLedgers++
		return data[:len(data)/3], nil
	}
	return data, nil
}
