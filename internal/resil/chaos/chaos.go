// Package chaos is a deterministic fault-injection harness for the
// campaign engine and the LLM pipeline. Every fault is a pure function
// of (seed, site) — never of wall-clock time, goroutine interleaving, or
// shared RNG draws — so a chaos campaign is exactly reproducible, and a
// campaign subjected only to *recoverable* faults (pre-step worker
// panics, torn or failed checkpoint writes, throttle storms) must
// produce results byte-identical to a fault-free run at the same seed.
// The test suite in this package enforces that property.
package chaos

import (
	"fmt"
	"sync"

	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/mutdsl"
	"github.com/icsnju/metamut-go/internal/resil"
)

// Config selects which faults an Injector plants and how often. A zero
// rate disables that fault class.
type Config struct {
	// Seed decorrelates fault sites between chaos runs without
	// coupling them to the campaign's own RNG streams.
	Seed int64
	// StreamPanicEvery makes roughly one in N (epoch, stream) tasks
	// panic before its first step of the epoch — the recoverable kind
	// the engine re-dispatches.
	StreamPanicEvery int
	// CheckpointTearEvery truncates every N-th checkpoint write to a
	// third of its bytes: the write "succeeds" but fails integrity
	// verification on load, exercising the .prev fallback.
	CheckpointTearEvery int
	// CheckpointFailEvery makes every N-th checkpoint write attempt
	// return an error outright, exercising the engine's bounded
	// write-retry loop.
	CheckpointFailEvery int
}

// Faults counts what an Injector actually did.
type Faults struct {
	StreamPanics int
	TornWrites   int
	FailedWrites int
}

// Injector plugs into engine.Config's OnStreamStart and
// CheckpointTransform hooks. Stream-panic decisions are stateless
// (hash of seed/epoch/stream), so they are identical no matter which
// worker goroutine runs the task or in what order; checkpoint faults
// are counted against a write sequence, which the engine drives from a
// single goroutine.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	writes int
	faults Faults
}

// NewInjector builds an Injector for cfg.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Faults returns a copy of the fault counts so far.
func (in *Injector) Faults() Faults {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// OnStreamStart panics — before the stream has stepped — on hash-chosen
// (epoch, stream) sites, first attempt only, so every injected panic is
// recoverable by construction: the engine re-dispatches the task and the
// replay runs clean.
func (in *Injector) OnStreamStart(epoch, stream, attempt int) {
	if in.cfg.StreamPanicEvery <= 0 || attempt != 0 {
		return
	}
	h := resil.Hash(in.cfg.Seed, int64(epoch), int64(stream))
	if h%uint64(in.cfg.StreamPanicEvery) != 0 {
		return
	}
	in.mu.Lock()
	in.faults.StreamPanics++
	in.mu.Unlock()
	panic(fmt.Sprintf("chaos: injected worker panic (epoch %d, stream %d)", epoch, stream))
}

// CheckpointTransform fails or tears hash-independent counted write
// attempts. Tear and fail periods should be coprime-ish and > 1 so two
// consecutive generations are never both torn (which would defeat the
// .prev fallback).
func (in *Injector) CheckpointTransform(data []byte) ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	if in.cfg.CheckpointFailEvery > 0 && in.writes%in.cfg.CheckpointFailEvery == 0 {
		in.faults.FailedWrites++
		return nil, fmt.Errorf("chaos: injected checkpoint write failure (write %d)", in.writes)
	}
	if in.cfg.CheckpointTearEvery > 0 && in.writes%in.cfg.CheckpointTearEvery == 0 {
		in.faults.TornWrites++
		return data[:len(data)/3], nil
	}
	return data, nil
}

// Storm wraps an llm.Client and forces ErrThrottled — without consulting
// the inner client — for every call whose sequence number falls in
// [From, To). Behind an llm.Guarded it drives the breaker through a full
// open → half-open → closed cycle deterministically.
type Storm struct {
	Inner    llm.Client
	From, To int

	mu    sync.Mutex
	calls int
}

// Calls returns how many calls the storm has seen.
func (s *Storm) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// throttled advances the call sequence and reports whether this call is
// inside the storm window.
func (s *Storm) throttled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.calls
	s.calls++
	return n >= s.From && n < s.To
}

func (s *Storm) Invent(actions, structures, priorNames []string, p llm.Params) (llm.Invention, llm.Usage, error) {
	if s.throttled() {
		return llm.Invention{}, llm.Usage{}, llm.ErrThrottled
	}
	return s.Inner.Invent(actions, structures, priorNames, p)
}

func (s *Storm) Synthesize(inv llm.Invention, p llm.Params) (*mutdsl.Program, llm.Usage, error) {
	if s.throttled() {
		return nil, llm.Usage{}, llm.ErrThrottled
	}
	return s.Inner.Synthesize(inv, p)
}

func (s *Storm) GenerateTests(inv llm.Invention, n int, p llm.Params) ([]string, llm.Usage, error) {
	if s.throttled() {
		return nil, llm.Usage{}, llm.ErrThrottled
	}
	return s.Inner.GenerateTests(inv, n, p)
}

func (s *Storm) Fix(prog *mutdsl.Program, goal int, feedback string, p llm.Params) (*mutdsl.Program, llm.Usage, error) {
	if s.throttled() {
		return nil, llm.Usage{}, llm.ErrThrottled
	}
	return s.Inner.Fix(prog, goal, feedback, p)
}

// PanickyMutator returns an UNREGISTERED mutator that panics on every
// application — the misbehaving-operator stand-in for quarantine tests.
// Build one instance per stream: the fuzzer's supervision is per-stream,
// and an always-faulting mutator keeps the strike schedule a pure
// function of that stream's step sequence.
func PanickyMutator(name string) *muast.Mutator {
	return &muast.Mutator{Info: muast.Info{
		Name:        name,
		Description: "chaos: panics on every application",
		Fn: func(mgr *muast.Manager) bool {
			panic("chaos: injected mutator panic in " + name)
		},
	}}
}

// FuelBombMutator returns an UNREGISTERED mutator that shrinks its
// manager's fuel budget and then traverses until the watchdog cuts it
// off — a deterministic runaway-loop stand-in. The fuzzer's supervisor
// observes it as fuel exhaustion, not a generic panic.
func FuelBombMutator(name string) *muast.Mutator {
	return &muast.Mutator{Info: muast.Info{
		Name:        name,
		Description: "chaos: loops until its fuel budget is exhausted",
		Fn: func(mgr *muast.Manager) bool {
			mgr.SetFuel(64)
			for {
				mgr.Functions()
			}
		},
	}}
}
