package chaos_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/compilersim/cover"
	"github.com/icsnju/metamut-go/internal/core"
	"github.com/icsnju/metamut-go/internal/engine"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/llm"
	"github.com/icsnju/metamut-go/internal/muast"
	_ "github.com/icsnju/metamut-go/internal/mutators"
	"github.com/icsnju/metamut-go/internal/obs"
	"github.com/icsnju/metamut-go/internal/resil"
	"github.com/icsnju/metamut-go/internal/resil/chaos"
	"github.com/icsnju/metamut-go/internal/seeds"
)

// fingerprint condenses everything a campaign must reproduce exactly:
// the merged crash set (signature, tick, attribution, exact witness),
// coverage, and totals.
func fingerprint(c *engine.Campaign) string {
	st := c.MergedStats()
	lines := make([]string, 0, len(st.Crashes))
	for sig, ci := range st.Crashes {
		lines = append(lines, fmt.Sprintf("%s|%d|%s|%08x",
			sig, ci.FirstTick, ci.Via, cover.HashString(ci.Input)))
	}
	sort.Strings(lines)
	return fmt.Sprintf("crashes=%v cov=%d total=%d compilable=%d ticks=%d rejects=%d",
		lines, st.Coverage.Count(), st.Total, st.Compilable, st.Ticks, st.StaticRejects)
}

func macroFactory(comp *compilersim.Compiler, pool []string) engine.Factory {
	return func(stream int, rng *rand.Rand, cov fuzz.CoverageSink) engine.Worker {
		return fuzz.NewMacroFuzzer(fmt.Sprintf("s%d", stream), comp, muast.All(),
			pool, rng, cov, fuzz.DefaultMacroConfig())
	}
}

// TestRecoverableFaultsAreInvisible is the harness's headline property:
// a campaign bombarded with recoverable faults — pre-step worker panics,
// torn checkpoint generations, failed checkpoint writes — produces a
// merged crash set, coverage, and totals byte-identical to the same
// campaign run fault-free, and its final checkpoint is still loadable
// (through the .prev fallback if the last generation was torn).
func TestRecoverableFaultsAreInvisible(t *testing.T) {
	cfg := engine.Config{Streams: 4, Workers: 3, StepsPerEpoch: 10,
		TotalSteps: 400, Seed: 17}
	newCampaign := func(cfg engine.Config) *engine.Campaign {
		comp := compilersim.New("gcc", 14)
		pool := seeds.Generate(10, 1)
		return engine.New(cfg, macroFactory(comp, pool))
	}

	ref := newCampaign(cfg)
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	inj := chaos.NewInjector(chaos.Config{
		Seed:                99,
		StreamPanicEvery:    3,
		CheckpointTearEvery: 3,
		CheckpointFailEvery: 5,
	})
	ccfg := cfg
	ccfg.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	ccfg.Registry = obs.NewRegistry()
	ccfg.OnStreamStart = inj.OnStreamStart
	ccfg.CheckpointTransform = inj.CheckpointTransform
	c := newCampaign(ccfg)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	faults := inj.Faults()
	if faults.StreamPanics == 0 || faults.TornWrites == 0 || faults.FailedWrites == 0 {
		t.Fatalf("chaos injected nothing useful: %+v", faults)
	}
	if got := fingerprint(c); got != want {
		t.Errorf("recoverable faults changed the campaign:\nfault-free: %s\nchaos:      %s", want, got)
	}
	if n := len(c.Poisoned()); n != 0 {
		t.Errorf("%d streams poisoned by recoverable faults: %v", n, c.Poisoned())
	}
	if got := ccfg.Registry.Counter("engine_task_retries_total").With().Value(); got != int64(faults.StreamPanics) {
		t.Errorf("task retries = %d, want one per injected panic (%d)", got, faults.StreamPanics)
	}
	if got := ccfg.Registry.Counter("engine_checkpoint_failures_total").With().Value(); got != int64(faults.FailedWrites) {
		t.Errorf("checkpoint failures = %d, want %d", got, faults.FailedWrites)
	}

	// The final checkpoint (or its .prev generation) must survive. If
	// the very last write was torn, the fallback generation is the
	// previous epoch barrier — still a clean resume point.
	snap, used, err := engine.LoadWithFallback(ccfg.CheckpointPath)
	if err != nil {
		t.Fatalf("no loadable checkpoint generation: %v", err)
	}
	if used == ccfg.CheckpointPath && snap.Done != cfg.TotalSteps {
		t.Errorf("primary checkpoint done = %d, want %d", snap.Done, cfg.TotalSteps)
	}
	if snap.Done <= 0 || snap.Done > cfg.TotalSteps {
		t.Errorf("loaded generation (from %s) has done = %d, outside (0, %d]",
			used, snap.Done, cfg.TotalSteps)
	}
}

// TestChaosRunsAreReproducible: the injector itself must be a pure
// function of its seed — two identical chaos campaigns agree on both
// results and fault counts.
func TestChaosRunsAreReproducible(t *testing.T) {
	run := func() (string, chaos.Faults) {
		inj := chaos.NewInjector(chaos.Config{Seed: 7, StreamPanicEvery: 4})
		comp := compilersim.New("gcc", 14)
		pool := seeds.Generate(10, 1)
		c := engine.New(engine.Config{Streams: 3, Workers: 2, StepsPerEpoch: 8,
			TotalSteps: 240, Seed: 5, OnStreamStart: inj.OnStreamStart},
			macroFactory(comp, pool))
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fingerprint(c), inj.Faults()
	}
	fpA, fA := run()
	fpB, fB := run()
	if fpA != fpB {
		t.Errorf("chaos runs diverged:\n%s\n%s", fpA, fpB)
	}
	if fA != fB {
		t.Errorf("fault schedules diverged: %+v vs %+v", fA, fB)
	}
}

// TestThrottleStormDrivesBreakerCycle runs a supervised campaign through
// an LLM throttle storm behind the circuit breaker: retries burn down,
// the breaker opens, in-flight invocations defer and re-queue, a
// half-open probe closes the breaker, and every mutator still comes out
// Valid.
func TestThrottleStormDrivesBreakerCycle(t *testing.T) {
	reg := obs.NewRegistry()
	storm := &chaos.Storm{Inner: llm.NewSimClientWithRates(1, llm.FaultRates{}),
		From: 2, To: 5}
	b := resil.NewBreaker(resil.BreakerConfig{FailureThreshold: 3, Cooldown: 2}, reg)
	fw := core.New(llm.Guard(storm, b), 13)
	fw.Obs = reg

	target := muast.All()[:3]
	results := fw.RunSupervised(target)

	if len(results) != len(target) {
		t.Fatalf("got %d results, want %d", len(results), len(target))
	}
	for i, r := range results {
		if r.Outcome != core.Valid {
			t.Errorf("result %d outcome = %v, want Valid", i, r.Outcome)
		}
	}
	if b.State() != resil.Closed {
		t.Errorf("breaker state = %v after storm passed, want Closed", b.State())
	}
	if got := reg.Counter("resil_breaker_trips_total").With().Value(); got != 1 {
		t.Errorf("breaker trips = %d, want 1", got)
	}
	if got := reg.Counter("resil_deferred_total").With().Value(); got == 0 {
		t.Error("no calls were deferred during the storm")
	}
	retries := reg.Counter("resil_retries_total", "stage")
	total := retries.With(llm.StageImplementation).Value() +
		retries.With(llm.StageTestGen).Value() +
		retries.With(llm.StageBugFix).Value()
	if total == 0 {
		t.Error("no bounded retries recorded during the storm")
	}
}

// TestPanickyMutatorQuarantineAndParole: a mutator that panics on every
// application is struck out after StrikeLimit faults, sits out its
// parole period, is re-admitted, and the fuzzer keeps producing work the
// whole time. The schedule is deterministic.
func TestPanickyMutatorQuarantineAndParole(t *testing.T) {
	run := func() (*fuzz.MuCFuzz, string) {
		comp := compilersim.New("gcc", 14)
		pool := seeds.Generate(10, 1)
		mus := append([]*muast.Mutator{chaos.PanickyMutator("chaos.panic")},
			muast.All()[:4]...)
		f := fuzz.NewMuCFuzz("q", comp, mus, pool, rand.New(rand.NewSource(5)))
		// Short parole so the test sees a full quarantine → parole →
		// re-strike cycle within a small budget.
		f.Quarantine = resil.NewQuarantine(resil.QuarantineConfig{StrikeLimit: 3, Parole: 50}, nil)
		for i := 0; i < 400; i++ {
			f.Step()
		}
		st := f.Stats()
		return f, fmt.Sprintf("panics=%d total=%d crashes=%d", st.Panics, st.Total, len(st.Crashes))
	}
	f, fp := run()
	st := f.Stats()
	if st.Panics < 3 {
		t.Fatalf("panics = %d, want >= StrikeLimit (3)", st.Panics)
	}
	// More panics than one strike-out means the offender was paroled and
	// struck out again.
	if st.Panics < 6 {
		t.Errorf("panics = %d, want >= 6 (parole + re-strike cycle)", st.Panics)
	}
	if st.Total == 0 {
		t.Fatal("fuzzer made no progress around the quarantined mutator")
	}
	if _, fp2 := run(); fp != fp2 {
		t.Errorf("quarantine schedule not deterministic:\n%s\n%s", fp, fp2)
	}
}

// TestFuelBombIsCutAndQuarantined: a runaway-traversal mutator is cut by
// the μAST fuel watchdog, recorded as fuel exhaustion (not a generic
// panic), and quarantined like any other offender.
func TestFuelBombIsCutAndQuarantined(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	pool := seeds.Generate(10, 1)
	mus := append([]*muast.Mutator{chaos.FuelBombMutator("chaos.fuelbomb")},
		muast.All()[:4]...)
	f := fuzz.NewMuCFuzz("fb", comp, mus, pool, rand.New(rand.NewSource(9)))
	for i := 0; i < 200; i++ {
		f.Step()
	}
	st := f.Stats()
	if st.FuelExhausted == 0 {
		t.Fatal("fuel bomb never recorded as fuel exhaustion")
	}
	if st.Panics != 0 {
		t.Errorf("fuel exhaustion misclassified as %d generic panics", st.Panics)
	}
	if st.Total == 0 {
		t.Fatal("fuzzer made no progress around the fuel bomb")
	}
}
