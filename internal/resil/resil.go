// Package resil is the campaign-wide fault-tolerance layer: bounded
// deterministic retry with exponential backoff and seeded jitter, a
// call-count circuit breaker for throttle storms, a strike/parole
// quarantine for misbehaving mutators, and panic capture for supervised
// execution.
//
// The paper's headline result is an eight-month bug-hunting campaign —
// which only works if one flaky LLM call, one pathological mutator, or
// one torn checkpoint cannot take down the fleet. Everything here is
// deterministic by construction (jitter comes from a seeded generator,
// breaker and quarantine clocks count calls and ticks, never wall
// time), so a campaign under injected faults is as reproducible as a
// fault-free one.
//
// Metric families (all optional — a nil registry disables them):
//
//	resil_retries_total{stage}      granted retries per pipeline stage
//	resil_breaker_state             0 closed, 1 half-open, 2 open
//	resil_breaker_trips_total       closed→open transitions
//	resil_deferred_total            calls denied while the breaker was open
//	resil_quarantines_total{id}     quarantine admissions per offender
//	resil_paroles_total{id}         re-admissions after a clean parole
package resil

import (
	"fmt"
	"time"

	"github.com/icsnju/metamut-go/internal/obs"
)

// mix64 is the splitmix64 finalizer — the one-call hash behind every
// deterministic "random" decision in this package.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash folds ints into a uniform uint64 — exported for the chaos
// injector's interleaving-independent fault decisions.
func Hash(parts ...int64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = mix64(h ^ uint64(p))
	}
	return h
}

// Policy shapes a bounded retry loop: how many attempts a stage may
// spend and how long to back off between them. The zero value is usable
// and means "use the defaults" — see withDefaults.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 5). 1 means no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 250ms);
	// each further retry multiplies it by Multiplier (default 2), capped
	// at MaxDelay (default 30s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction (default 0.25),
	// drawn from the retrier's seed — deterministic, not clock-derived.
	Jitter float64
	// Registry receives resil_retries_total{stage} (nil disables it).
	Registry *obs.Registry
}

// DefaultPolicy returns the standard campaign policy.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: 250 * time.Millisecond,
		MaxDelay: 30 * time.Second, Multiplier: 2, Jitter: 0.25}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	return p
}

// Retrier tracks one stage's attempt budget. It is not safe for
// concurrent use; create one per retry loop.
type Retrier struct {
	p       Policy
	stage   string
	state   uint64
	retries int
	waited  time.Duration
}

// Retrier returns a fresh attempt budget for one stage. seed pins the
// jitter sequence: equal (policy, stage, seed) yield byte-identical
// backoff schedules.
func (p Policy) Retrier(stage string, seed int64) *Retrier {
	norm := p.withDefaults()
	norm.Registry = p.Registry
	return &Retrier{p: norm, stage: stage,
		state: Hash(seed) ^ Hash(int64(len(stage)))}
}

// Next reports whether the budget allows another attempt after a
// failure, and the backoff to observe before it. Once it returns false
// the caller must surface a terminal error instead of spinning.
func (r *Retrier) Next() (time.Duration, bool) {
	if r.retries >= r.p.MaxAttempts-1 {
		return 0, false
	}
	d := float64(r.p.BaseDelay)
	for i := 0; i < r.retries; i++ {
		d *= r.p.Multiplier
		if d >= float64(r.p.MaxDelay) {
			d = float64(r.p.MaxDelay)
			break
		}
	}
	r.state = mix64(r.state)
	// u in [0,1): 53 uniform bits, same construction as rand.Float64.
	u := float64(r.state>>11) / (1 << 53)
	d *= 1 + r.p.Jitter*(2*u-1)
	delay := time.Duration(d)
	r.retries++
	r.waited += delay
	if r.p.Registry != nil {
		r.p.Registry.Counter("resil_retries_total", "stage").With(r.stage).Inc()
	}
	return delay, true
}

// Retries returns the retries granted so far.
func (r *Retrier) Retries() int { return r.retries }

// Waited returns the total backoff handed out so far.
func (r *Retrier) Waited() time.Duration { return r.waited }

// PanicError wraps a recovered panic value so supervised execution can
// report it as an ordinary error.
type PanicError struct {
	Value any
	Stack []byte
}

// Error returns the panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Safely runs fn, converting a panic into a *PanicError instead of
// unwinding the caller — the supervision primitive wrapped around
// mutator application and worker steps.
func Safely(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	fn()
	return nil
}
