package resil

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/icsnju/metamut-go/internal/obs"
)

func TestRetrierBoundsAttempts(t *testing.T) {
	r := Policy{MaxAttempts: 4}.Retrier("stage", 1)
	granted := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		granted++
	}
	if granted != 3 { // 4 attempts total = 3 retries
		t.Fatalf("granted %d retries, want 3", granted)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("retrier granted a retry past its budget")
	}
}

func TestRetrierDeterministicJitter(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		r := DefaultPolicy().Retrier("impl", seed)
		var ds []time.Duration
		for {
			d, ok := r.Next()
			if !ok {
				return ds
			}
			ds = append(ds, d)
		}
	}
	a, b := delays(7), delays(7)
	if len(a) == 0 {
		t.Fatal("no delays")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := delays(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestRetrierBackoffEnvelope(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 800 * time.Millisecond, Multiplier: 2, Jitter: 0.25}
	r := p.Retrier("s", 3)
	want := []time.Duration{100, 200, 400, 800, 800, 800, 800, 800, 800}
	for i, base := range want {
		base *= time.Millisecond
		d, ok := r.Next()
		if !ok {
			t.Fatalf("budget exhausted early at %d", i)
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("retry %d delay %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	if r.Waited() <= 0 {
		t.Fatal("Waited not accumulated")
	}
}

func TestRetrierCountsRetriesInRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	p := Policy{MaxAttempts: 3, Registry: reg}
	r := p.Retrier("test-gen", 1)
	r.Next()
	r.Next()
	if got := reg.Counter("resil_retries_total", "stage").With("test-gen").Value(); got != 2 {
		t.Fatalf("resil_retries_total{test-gen} = %d, want 2", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 2}, reg)
	if b.State() != Closed {
		t.Fatal("new breaker not closed")
	}
	// Three consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	// Cooldown: the first denial counts, the second admits a probe.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if !b.Allow() {
		t.Fatal("breaker did not admit a half-open probe after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// Probe fails: reopen.
	b.Failure()
	if b.State() != Open {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// Next probe succeeds: close.
	b.Allow() // denial 1
	if !b.Allow() {
		t.Fatal("no second probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("successful probe did not close the breaker")
	}
	if got := reg.Counter("resil_breaker_trips_total").With().Value(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	if got := reg.Counter("resil_deferred_total").With().Value(); got != 2 {
		t.Fatalf("deferred = %d, want 2", got)
	}
	if got := reg.Gauge("resil_breaker_state").With().Value(); got != int64(Closed) {
		t.Fatalf("resil_breaker_state = %d, want %d", got, Closed)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 1}, nil)
	b.Allow()
	b.Failure() // open
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("probe success did not close")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 4, Cooldown: 4}, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	b.State() // must not race
}

func TestQuarantineStrikeAndParole(t *testing.T) {
	reg := obs.NewRegistry()
	q := NewQuarantine(QuarantineConfig{StrikeLimit: 2, Parole: 5}, reg)
	if !q.Allowed("bad") {
		t.Fatal("clean offender denied")
	}
	if q.Strike("bad") {
		t.Fatal("first strike quarantined")
	}
	if !q.Strike("bad") {
		t.Fatal("second strike did not quarantine")
	}
	if q.Allowed("bad") {
		t.Fatal("quarantined offender allowed")
	}
	if got := q.Quarantined(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("Quarantined() = %v", got)
	}
	for i := 0; i < 5; i++ {
		q.Tick()
	}
	if !q.Allowed("bad") {
		t.Fatal("offender not paroled after its period")
	}
	if q.Strikes("bad") != 0 {
		t.Fatal("parole did not clear the strike record")
	}
	if got := reg.Counter("resil_quarantines_total", "id").With("bad").Value(); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	if got := reg.Counter("resil_paroles_total", "id").With("bad").Value(); got != 1 {
		t.Fatalf("paroles = %d, want 1", got)
	}
}

func TestQuarantineNilReceiver(t *testing.T) {
	var q *Quarantine
	q.Tick()
	if !q.Allowed("x") {
		t.Fatal("nil quarantine denied")
	}
	if q.Strike("x") {
		t.Fatal("nil quarantine quarantined")
	}
	if q.Quarantined() != nil || q.Strikes("x") != 0 {
		t.Fatal("nil quarantine recorded state")
	}
}

func TestSafelyCapturesPanic(t *testing.T) {
	err := Safely(func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("Safely returned %v, want PanicError{boom}", err)
	}
	if err := Safely(func() {}); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Fatal("Hash not deterministic")
	}
	if Hash(1, 2, 3) == Hash(3, 2, 1) {
		t.Fatal("Hash ignores order")
	}
}
