package resil

import (
	"sort"

	"github.com/icsnju/metamut-go/internal/obs"
)

// QuarantineConfig tunes the strike/parole discipline. Ticks are the
// owner's logical clock (one fuzzer Step), never wall time.
type QuarantineConfig struct {
	// StrikeLimit is how many strikes (panics, fuel exhaustions) an
	// offender accumulates before quarantine (default 3).
	StrikeLimit int
	// Parole is how many clean ticks an offender sits out before being
	// re-admitted with a cleared record (default 512).
	Parole int
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.StrikeLimit <= 0 {
		c.StrikeLimit = 3
	}
	if c.Parole <= 0 {
		c.Parole = 512
	}
	return c
}

// offender is one misbehaving id's record.
type offender struct {
	strikes int
	until   int  // logical tick at which quarantine ends
	locked  bool // currently quarantined (until > clock)
}

// Quarantine tracks strikes per offender id and benches repeat
// offenders for a parole period. It is deliberately NOT concurrency-
// safe: each fuzzer stream owns a private instance, which keeps the
// strike/parole schedule deterministic under the epoch-barrier engine.
// All methods are safe on a nil receiver (everything allowed, nothing
// recorded), mirroring the obs convention.
type Quarantine struct {
	// OnEvent, when set, is called with ("quarantine", id) on each
	// admission and ("parole", id) on each re-admission — the flight
	// recorder's transition tap. It runs on the owner's goroutine at a
	// deterministic point in the tick sequence.
	OnEvent func(kind, id string)

	cfg     QuarantineConfig
	clock   int
	entries map[string]*offender

	mQuar   *obs.CounterVec
	mParole *obs.CounterVec
}

// NewQuarantine returns an empty quarantine. reg may be nil.
func NewQuarantine(cfg QuarantineConfig, reg *obs.Registry) *Quarantine {
	q := &Quarantine{cfg: cfg.withDefaults(), entries: map[string]*offender{}}
	if reg != nil {
		q.mQuar = reg.Counter("resil_quarantines_total", "id")
		q.mParole = reg.Counter("resil_paroles_total", "id")
	}
	return q
}

// Tick advances the logical clock by one; the owner calls it once per
// fuzzing step.
func (q *Quarantine) Tick() {
	if q != nil {
		q.clock++
	}
}

// Allowed reports whether id may run. An offender whose parole period
// has elapsed is re-admitted here with a cleared strike record.
func (q *Quarantine) Allowed(id string) bool {
	if q == nil {
		return true
	}
	e := q.entries[id]
	if e == nil || !e.locked {
		return true
	}
	if q.clock < e.until {
		return false
	}
	e.locked = false
	e.strikes = 0
	q.mParole.With(id).Inc()
	if q.OnEvent != nil {
		q.OnEvent("parole", id)
	}
	return true
}

// Strike records one offense for id and reports whether this strike
// pushed it into quarantine.
func (q *Quarantine) Strike(id string) bool {
	if q == nil {
		return false
	}
	e := q.entries[id]
	if e == nil {
		e = &offender{}
		q.entries[id] = e
	}
	e.strikes++
	if e.strikes < q.cfg.StrikeLimit {
		return false
	}
	e.locked = true
	e.until = q.clock + q.cfg.Parole
	q.mQuar.With(id).Inc()
	if q.OnEvent != nil {
		q.OnEvent("quarantine", id)
	}
	return true
}

// Strikes returns the current strike count for id.
func (q *Quarantine) Strikes(id string) int {
	if q == nil {
		return 0
	}
	if e := q.entries[id]; e != nil {
		return e.strikes
	}
	return 0
}

// Quarantined returns the ids currently benched, sorted.
func (q *Quarantine) Quarantined() []string {
	if q == nil {
		return nil
	}
	var ids []string
	for id, e := range q.entries {
		if e.locked && q.clock < e.until {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
