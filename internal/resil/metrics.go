package resil

import "github.com/icsnju/metamut-go/internal/obs"

// RegisterMetrics pre-registers the resilience families so they appear
// in snapshots (and the METRICS.md schema test) before the first trip,
// retry, or quarantine. Must stay in sync with the inline sites in
// breaker.go, resil.go and quarantine.go.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("resil_breaker_state")
	reg.Counter("resil_breaker_trips_total")
	reg.Counter("resil_deferred_total")
	reg.Counter("resil_retries_total", "stage")
	reg.Counter("resil_quarantines_total", "id")
	reg.Counter("resil_paroles_total", "id")
}
