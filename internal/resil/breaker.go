package resil

import (
	"errors"
	"sync"

	"github.com/icsnju/metamut-go/internal/obs"
)

// ErrOpen is returned in place of a real call while the breaker is
// open: the caller should defer the work and move on rather than treat
// it as a failure of the work itself.
var ErrOpen = errors.New("resil: circuit breaker open, call deferred")

// State is a circuit breaker state.
type State int

// Breaker states. The numeric values are what resil_breaker_state
// reports.
const (
	Closed   State = 0
	HalfOpen State = 1
	Open     State = 2
)

// String names the state for logs and tests.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerConfig tunes a Breaker. Both knobs count calls, never wall
// time, so breaker behavior is deterministic and independent of host
// speed.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the breaker open (default 5).
	FailureThreshold int
	// Cooldown is how many calls are denied while open before a single
	// half-open probe is admitted (default 8).
	Cooldown int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	return c
}

// Breaker is a call-count circuit breaker: consecutive failures trip it
// open, denied calls accumulate toward a cooldown, then one half-open
// probe decides whether to close again. Safe for concurrent use.
type Breaker struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	state   State
	fails   int  // consecutive failures while closed
	denied  int  // denials since the breaker opened
	probing bool // a half-open probe is in flight

	// onTransition, when set, is called after every state change with
	// (from, to) while b.mu is held — keep it fast and never call back
	// into the breaker.
	onTransition func(from, to State)

	mState    *obs.Gauge
	mTrips    *obs.Counter
	mDeferred *obs.Counter
}

// SetTransitionHook attaches a state-change tap (nil detaches): the
// flight recorder journals breaker open/close transitions through it.
// The hook runs with the breaker's lock held.
func (b *Breaker) SetTransitionHook(fn func(from, to State)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// NewBreaker returns a closed breaker. reg may be nil.
func NewBreaker(cfg BreakerConfig, reg *obs.Registry) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	if reg != nil {
		b.mState = reg.Gauge("resil_breaker_state").With()
		b.mTrips = reg.Counter("resil_breaker_trips_total").With()
		b.mDeferred = reg.Counter("resil_deferred_total").With()
	}
	return b
}

// Allow reports whether a call may proceed. While open it denies calls
// until the cooldown elapses, then admits exactly one probe; the probe's
// Success or Failure decides the next state. Every denial counts toward
// resil_deferred_total.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probing {
			b.mDeferred.Inc()
			return false
		}
		b.probing = true
		return true
	default: // Open
		b.denied++
		if b.denied >= b.cfg.Cooldown {
			b.setState(HalfOpen)
			b.probing = true
			return true
		}
		b.mDeferred.Inc()
		return false
	}
}

// Success reports a completed call; it closes the breaker if the call
// was the half-open probe and clears the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == HalfOpen {
		b.probing = false
		b.setState(Closed)
	}
}

// Failure reports a breaker-relevant failure (for the LLM guard, a
// throttled call). Enough consecutive failures trip the breaker; a
// failed half-open probe reopens it for a fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		b.trip()
	default: // Open: a straggler call admitted before the trip; no-op.
	}
}

// trip moves to Open and starts a fresh cooldown. Callers hold b.mu.
func (b *Breaker) trip() {
	b.fails = 0
	b.denied = 0
	b.setState(Open)
	b.mTrips.Inc()
}

// setState records the transition and the gauge. Callers hold b.mu.
func (b *Breaker) setState(s State) {
	from := b.state
	b.state = s
	b.mState.Set(int64(s))
	if b.onTransition != nil && from != s {
		b.onTransition(from, s)
	}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
