// Package baselines reimplements the search strategies of the four
// fuzzers the paper compares against (Section 5.1): the byte-level
// coverage-guided AFL++, the UB-avoiding program generator Csmith, the
// loop-optimization-focused generator YARPGen, and GrayC with its five
// semantic-aware mutators. Each implements fuzz.Fuzzer, so the RQ1
// harness treats all techniques uniformly.
package baselines

import (
	"math/rand"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
)

// AFL is a byte-level coverage-guided fuzzer in the style of AFL++:
// havoc-stacked binary mutations with no awareness of C syntax. Most of
// its offspring do not compile, which is exactly what drives its
// characteristic profile — high front-end (error-path) coverage, crashes
// concentrated in the front-end, and a ~3.5% compilable ratio (Table 5).
type AFL struct {
	comp  *compilersim.Compiler
	pool  []string
	rng   *rand.Rand
	stats *fuzz.Stats
	// HavocMax is the maximum number of stacked byte mutations.
	HavocMax int
}

// NewAFL builds the AFL++-style baseline over a seed pool.
func NewAFL(name string, comp *compilersim.Compiler, seedPool []string,
	rng *rand.Rand) *AFL {
	pool := make([]string, len(seedPool))
	copy(pool, seedPool)
	return &AFL{comp: comp, pool: pool, rng: rng,
		stats: fuzz.NewStats(name), HavocMax: 6}
}

// Name returns the fuzzer name.
func (a *AFL) Name() string { return a.stats.Name }

// Stats exposes accounting.
func (a *AFL) Stats() *fuzz.Stats { return a.stats }

// interestingBytes are AFL's classic interesting values.
var interestingBytes = []byte{0, 1, 0x7f, 0x80, 0xff, '(', ')', '{', '}',
	'"', '\'', ';', '#', '*', '&'}

// Step picks a pool entry, applies a havoc stack of byte mutations,
// compiles, and admits coverage-increasing offspring.
func (a *AFL) Step() {
	if len(a.pool) == 0 {
		return
	}
	src := []byte(a.pool[a.rng.Intn(len(a.pool))])
	// Power-schedule-like: some inputs get a single mutation, most get
	// deeper havoc stacks.
	n := 1
	if a.rng.Float64() < 0.75 {
		n += a.rng.Intn(a.HavocMax) + 1
	}
	for i := 0; i < n && len(src) > 0; i++ {
		switch a.rng.Intn(8) {
		case 0: // bit flip
			p := a.rng.Intn(len(src))
			src[p] ^= 1 << uint(a.rng.Intn(8))
		case 1: // interesting byte
			p := a.rng.Intn(len(src))
			src[p] = interestingBytes[a.rng.Intn(len(interestingBytes))]
		case 2: // delete span
			if len(src) > 4 {
				p := a.rng.Intn(len(src) - 2)
				l := 1 + a.rng.Intn(min(8, len(src)-p-1))
				src = append(src[:p], src[p+l:]...)
			}
		case 3: // duplicate span
			if len(src) > 4 && len(src) < 1<<15 {
				p := a.rng.Intn(len(src) - 2)
				l := 1 + a.rng.Intn(min(16, len(src)-p-1))
				chunk := append([]byte(nil), src[p:p+l]...)
				src = append(src[:p], append(chunk, src[p:]...)...)
			}
		case 4: // random byte
			p := a.rng.Intn(len(src))
			src[p] = byte(a.rng.Intn(256))
		case 5: // splice with another pool entry
			other := a.pool[a.rng.Intn(len(a.pool))]
			if len(other) > 2 && len(src) > 2 {
				cut1 := a.rng.Intn(len(src))
				cut2 := a.rng.Intn(len(other))
				src = append(src[:cut1], other[cut2:]...)
			}
		case 6: // arithmetic on a digit: frequently stays compilable
			p := a.rng.Intn(len(src))
			if src[p] >= '0' && src[p] <= '9' {
				src[p] = '0' + byte((int(src[p]-'0')+1+a.rng.Intn(8))%10)
			}
		case 7: // swap adjacent bytes
			if len(src) > 1 {
				p := a.rng.Intn(len(src) - 1)
				src[p], src[p+1] = src[p+1], src[p]
			}
		}
	}
	mutant := string(src)
	res := a.comp.Compile(mutant, compilersim.DefaultOptions())
	isNew := a.stats.Record(mutant, "havoc", res)
	if isNew {
		// AFL admits any coverage-increasing input, compilable or not —
		// error paths are coverage too.
		a.pool = append(a.pool, mutant)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
