package baselines

import (
	"fmt"
	"math/rand"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
	"github.com/icsnju/metamut-go/internal/muast"
)

// GrayC is the mutation-based baseline with exactly five hand-designed
// semantic-aware mutators (the paper verifies the count via
// `./grayc --list-mutations`): statement deletion, statement duplication,
// constant replacement, expression insertion, and control-flow injection.
// It is coverage-guided like μCFuzz but its tiny mutator set bounds the
// search space it can shape.
type GrayC struct {
	comp  *compilersim.Compiler
	pool  []string
	rng   *rand.Rand
	stats *fuzz.Stats
}

// grayCMutators builds the five GrayC mutators against the μAST API.
// They are deliberately NOT registered in the global muast registry —
// they belong to the baseline, not to the MetaMut sets.
func grayCMutators() []*muast.Mutator {
	mk := func(name, desc string, fn muast.MutateFunc) *muast.Mutator {
		return &muast.Mutator{Info: muast.Info{
			Name: name, Description: desc, Fn: fn,
		}}
	}
	return []*muast.Mutator{
		mk("GrayCDeleteStmt",
			"Delete a random expression statement.",
			grayCDeleteStmt),
		mk("GrayCDuplicateStmt",
			"Duplicate a random expression statement.",
			grayCDuplicateStmt),
		mk("GrayCReplaceConstant",
			"Replace an integer constant with a nearby value.",
			grayCReplaceConstant),
		mk("GrayCInsertExpr",
			"Insert a redundant computation over an existing variable.",
			grayCInsertExpr),
		mk("GrayCInjectControlFlow",
			"Wrap a statement in a fresh bounded loop with a guard.",
			grayCInjectControlFlow),
	}
}

func grayCExprStmts(m *muast.Manager) []cast.Stmt {
	var out []cast.Stmt
	for _, d := range m.TU.Decls {
		fd, ok := d.(*cast.FunctionDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cast.Walk(fd.Body, func(n cast.Node) bool {
			if cs, ok := n.(*cast.CompoundStmt); ok {
				for _, s := range cs.Stmts {
					if _, isExpr := s.(*cast.ExprStmt); isExpr {
						out = append(out, s)
					}
				}
			}
			return true
		})
	}
	return out
}

func grayCDeleteStmt(m *muast.Manager) bool {
	cands := grayCExprStmts(m)
	if len(cands) == 0 {
		return false
	}
	return m.ReplaceNode(muast.RandElement(m, cands), ";")
}

func grayCDuplicateStmt(m *muast.Manager) bool {
	cands := grayCExprStmts(m)
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	return m.InsertAfter(s, " "+m.GetSourceText(s))
}

func grayCReplaceConstant(m *muast.Manager) bool {
	var lits []*cast.IntegerLiteral
	for _, d := range m.TU.Decls {
		fd, ok := d.(*cast.FunctionDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cast.Walk(fd.Body, func(n cast.Node) bool {
			if _, isCase := n.(*cast.CaseStmt); isCase {
				return false
			}
			if il, ok := n.(*cast.IntegerLiteral); ok {
				lits = append(lits, il)
			}
			return true
		})
	}
	if len(lits) == 0 {
		return false
	}
	il := muast.RandElement(m, lits)
	return m.ReplaceNode(il, fmt.Sprintf("%d", il.Value+int64(m.Rand().Intn(5))-2))
}

func grayCInsertExpr(m *muast.Manager) bool {
	cands := grayCExprStmts(m)
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	// Find an integer variable in scope (a parameter of the enclosing
	// function) to compute over.
	fn := m.Parents().EnclosingFunction(s)
	if fn == nil {
		return false
	}
	var v string
	for _, pv := range fn.Params {
		if pv.Name != "" && pv.Ty.IsInteger() {
			v = pv.Name
			break
		}
	}
	if v == "" {
		return false
	}
	return m.InsertAfter(s, fmt.Sprintf(" %s = %s + 0;", v, v))
}

func grayCInjectControlFlow(m *muast.Manager) bool {
	cands := grayCExprStmts(m)
	if len(cands) == 0 {
		return false
	}
	s := muast.RandElement(m, cands)
	g := m.GenerateUniqueName("gc_i")
	return m.ReplaceNode(s, fmt.Sprintf(
		"{ int %s; for (%s = 0; %s < 2; %s++) { %s } }",
		g, g, g, g, m.GetSourceText(s)))
}

// NewGrayC builds the GrayC baseline over a seed pool.
func NewGrayC(name string, comp *compilersim.Compiler, seedPool []string,
	rng *rand.Rand) *GrayC {
	pool := make([]string, len(seedPool))
	copy(pool, seedPool)
	return &GrayC{comp: comp, pool: pool, rng: rng, stats: fuzz.NewStats(name)}
}

// Name returns the fuzzer name.
func (g *GrayC) Name() string { return g.stats.Name }

// Stats exposes accounting.
func (g *GrayC) Stats() *fuzz.Stats { return g.stats }

// MutatorCount reports the number of mutators (5, as the paper checks).
func (g *GrayC) MutatorCount() int { return len(grayCMutators()) }

// Step applies one random GrayC mutator to a pool program.
func (g *GrayC) Step() {
	if len(g.pool) == 0 {
		return
	}
	p := g.pool[g.rng.Intn(len(g.pool))]
	muts := grayCMutators()
	mu := muts[g.rng.Intn(len(muts))]
	mgr, err := muast.NewManager(p, g.rng)
	if err != nil {
		return
	}
	mutant, ok := mu.Apply(p, mgr)
	if !ok {
		return
	}
	res := g.comp.Compile(mutant, compilersim.DefaultOptions())
	isNew := g.stats.Record(mutant, mu.Name, res)
	if isNew && res.OK {
		g.pool = append(g.pool, mutant)
	}
}
