package baselines

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/fuzz"
)

// Csmith is a generation-based baseline in the style of Csmith: random
// programs expanded from a grammar with careful avoidance of undefined
// behaviour. Its guardedness is also its ceiling — the generated shapes
// are regular and conservative, so on heavily-tested production compilers
// it saturates without crashing (the paper measured 0 crashes and notes
// the saturation-point finding from YARPGen's authors).
type Csmith struct {
	comp  *compilersim.Compiler
	rng   *rand.Rand
	stats *fuzz.Stats
	seq   int
}

// NewCsmith builds the Csmith-style generator baseline (seedless).
func NewCsmith(name string, comp *compilersim.Compiler, rng *rand.Rand) *Csmith {
	return &Csmith{comp: comp, rng: rng, stats: fuzz.NewStats(name)}
}

// Name returns the fuzzer name.
func (c *Csmith) Name() string { return c.stats.Name }

// Stats exposes accounting.
func (c *Csmith) Stats() *fuzz.Stats { return c.stats }

// Step generates one program and compiles it.
func (c *Csmith) Step() {
	c.seq++
	src := c.generate()
	res := c.comp.Compile(src, compilersim.DefaultOptions())
	c.stats.Record(src, "csmith", res)
}

// generate emits a guarded random program. Every operation is wrapped in
// safe_* style guards (here: modest operand ranges and checked divides),
// which keeps the structural variety low by construction.
func (c *Csmith) generate() string {
	var sb strings.Builder
	nGlobals := 2 + c.rng.Intn(3)
	for i := 0; i < nGlobals; i++ {
		fmt.Fprintf(&sb, "static int g_%d_%d = %d;\n", c.seq, i, c.rng.Intn(100))
	}
	nFuncs := 1 + c.rng.Intn(3)
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&sb, "static int func_%d_%d(int p0, int p1) {\n", c.seq, i)
		fmt.Fprintf(&sb, "    int l0 = p0;\n    int l1 = p1;\n")
		nStmts := 2 + c.rng.Intn(4)
		for s := 0; s < nStmts; s++ {
			op := []string{"+", "-", "*", "&", "|", "^"}[c.rng.Intn(6)]
			fmt.Fprintf(&sb, "    l%d = (l0 %s l1) %s g_%d_%d;\n",
				s%2, op, []string{"+", "^"}[c.rng.Intn(2)],
				c.seq, c.rng.Intn(nGlobals))
		}
		// Checked division in the Csmith safe_div style.
		fmt.Fprintf(&sb, "    if (l1 != 0) l0 = l0 / l1;\n")
		fmt.Fprintf(&sb, "    return l0 + l1;\n}\n")
	}
	fmt.Fprintf(&sb, "int main(void) {\n    int r = 0;\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&sb, "    r += func_%d_%d(%d, %d);\n",
			c.seq, i, c.rng.Intn(50), c.rng.Intn(50)+1)
	}
	fmt.Fprintf(&sb, "    return r & 0xff;\n}\n")
	return sb.String()
}

// YARPGen is a generation-based baseline in the style of YARPGen v2: its
// generation policies target loop optimizations specifically, emitting
// counted loops over arrays that exercise the vectorizer and related
// passes — hence the occasional optimizer crash (the paper measured 2)
// and near-zero front-end findings.
type YARPGen struct {
	comp  *compilersim.Compiler
	rng   *rand.Rand
	stats *fuzz.Stats
	seq   int
}

// NewYARPGen builds the YARPGen-style generator baseline (seedless).
func NewYARPGen(name string, comp *compilersim.Compiler, rng *rand.Rand) *YARPGen {
	return &YARPGen{comp: comp, rng: rng, stats: fuzz.NewStats(name)}
}

// Name returns the fuzzer name.
func (y *YARPGen) Name() string { return y.stats.Name }

// Stats exposes accounting.
func (y *YARPGen) Stats() *fuzz.Stats { return y.stats }

// Step generates one loop-heavy program and compiles it.
func (y *YARPGen) Step() {
	y.seq++
	src := y.generate()
	res := y.comp.Compile(src, compilersim.DefaultOptions())
	y.stats.Record(src, "yarpgen", res)
}

func (y *YARPGen) generate() string {
	var sb strings.Builder
	n := 8 << uint(y.rng.Intn(3)) // 8, 16, 32
	arrays := 2 + y.rng.Intn(2)
	for i := 0; i < arrays; i++ {
		fmt.Fprintf(&sb, "int a_%d_%d[%d];\n", y.seq, i, n)
	}
	fmt.Fprintf(&sb, "void kernel_%d(int scale) {\n    int i;\n", y.seq)
	nLoops := 1 + y.rng.Intn(2)
	if y.rng.Intn(80) == 0 {
		// Rare stress shape: a long loop nest hammering the vectorizer.
		nLoops = 5 + y.rng.Intn(3)
	}
	for l := 0; l < nLoops; l++ {
		fmt.Fprintf(&sb, "    for (i = 0; i < %d; i++) {\n", n)
		nOps := 2 + y.rng.Intn(2)
		for o := 0; o < nOps; o++ {
			dst := y.rng.Intn(arrays)
			src1 := y.rng.Intn(arrays)
			src2 := y.rng.Intn(arrays)
			op := []string{"+", "*", "-"}[y.rng.Intn(3)]
			fmt.Fprintf(&sb, "        a_%d_%d[i] = a_%d_%d[i] %s a_%d_%d[i] %s scale;\n",
				y.seq, dst, y.seq, src1, op, y.seq, src2,
				[]string{"+", "*"}[y.rng.Intn(2)])
		}
		if y.rng.Intn(3) == 0 {
			// Constant-heavy statement for the folding passes.
			fmt.Fprintf(&sb, "        a_%d_0[i] += %d * %d + %d;\n",
				y.seq, y.rng.Intn(9)+1, y.rng.Intn(9)+1, y.rng.Intn(50))
		}
		fmt.Fprintf(&sb, "    }\n")
	}
	fmt.Fprintf(&sb, "}\n")
	fmt.Fprintf(&sb, "int main(void) {\n")
	fmt.Fprintf(&sb, "    kernel_%d(%d);\n", y.seq, y.rng.Intn(9)+1)
	fmt.Fprintf(&sb, "    return a_%d_0[0] & 0xff;\n}\n", y.seq)
	return sb.String()
}

var _ = compilersim.DefaultOptions
