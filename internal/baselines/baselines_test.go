package baselines

import (
	"math/rand"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/muast"
	"github.com/icsnju/metamut-go/internal/seeds"
)

func pool() []string { return seeds.Generate(30, 42) }

func TestGrayCHasExactlyFiveMutators(t *testing.T) {
	g := NewGrayC("g", compilersim.New("gcc", 14), pool(),
		rand.New(rand.NewSource(1)))
	// The paper verifies GrayC's count via --list-mutations: five.
	if got := g.MutatorCount(); got != 5 {
		t.Fatalf("GrayC mutators = %d, want 5", got)
	}
}

func TestGrayCStaysMostlyCompilable(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	g := NewGrayC("g", comp, pool(), rand.New(rand.NewSource(2)))
	for g.Stats().Ticks < 400 {
		g.Step()
	}
	if ratio := g.Stats().CompilableRatio(); ratio < 95 {
		t.Errorf("GrayC compilable = %.1f%%, want ~99%% (paper: 98.99)", ratio)
	}
}

func TestAFLMostlyNonCompilable(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	a := NewAFL("a", comp, pool(), rand.New(rand.NewSource(3)))
	for a.Stats().Ticks < 600 {
		a.Step()
	}
	ratio := a.Stats().CompilableRatio()
	if ratio > 15 {
		t.Errorf("AFL compilable = %.1f%%, want a few %% (paper: 3.53)", ratio)
	}
	if a.Stats().Coverage.Count() == 0 {
		t.Error("AFL collected no coverage")
	}
}

func TestGeneratorsAlwaysCompilable(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	cs := NewCsmith("c", comp, rand.New(rand.NewSource(4)))
	yg := NewYARPGen("y", comp, rand.New(rand.NewSource(5)))
	for i := 0; i < 200; i++ {
		cs.Step()
		yg.Step()
	}
	if ratio := cs.Stats().CompilableRatio(); ratio < 99 {
		t.Errorf("Csmith compilable = %.1f%%, want ~100%%", ratio)
	}
	// YARPGen may rarely crash the optimizer (those count non-compiled).
	if ratio := yg.Stats().CompilableRatio(); ratio < 95 {
		t.Errorf("YARPGen compilable = %.1f%%, want ~99%%", ratio)
	}
	if cs.Stats().UniqueCrashes() != 0 {
		t.Errorf("Csmith found %d crashes; the paper measured 0",
			cs.Stats().UniqueCrashes())
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	cs := NewCsmith("c", comp, rand.New(rand.NewSource(6)))
	yg := NewYARPGen("y", comp, rand.New(rand.NewSource(7)))
	for i := 0; i < 50; i++ {
		if _, err := cast.ParseAndCheck(cs.generate()); err != nil {
			t.Fatalf("csmith program invalid: %v", err)
		}
		yg.seq++
		if _, err := cast.ParseAndCheck(yg.generate()); err != nil {
			t.Fatalf("yarpgen program invalid: %v", err)
		}
		cs.seq++
	}
}

func TestGrayCMutantsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	muts := grayCMutators()
	for _, src := range pool()[:10] {
		for _, mu := range muts {
			mgr, err := newTestManager(src, rng)
			if err != nil {
				t.Fatalf("seed invalid: %v", err)
			}
			mutant, ok := mu.Apply(src, mgr)
			if !ok {
				continue
			}
			if _, err := cast.Parse(mutant); err != nil {
				t.Errorf("%s produced unparseable mutant: %v\n%s",
					mu.Name, err, mutant)
			}
		}
	}
}

// newTestManager adapts muast.NewManager for the tests above.
func newTestManager(src string, rng *rand.Rand) (*muast.Manager, error) {
	return muast.NewManager(src, rng)
}
