package mutdsl

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
)

const testSrc = `
int g0 = 4;
int add(int a, int b) { return a + b; }
int main(void) {
    int x = add(1, 2);
    int y = x * 3;
    if (x > y) { x = y; }
    while (y > 0) { y--; }
    return x + y + g0;
}
`

func compileOK(t *testing.T, p *Program) *Executable {
	t.Helper()
	exe, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return exe
}

func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want string
	}{
		{"syntax", Program{SyntaxErr: "boom", Name: "X",
			TargetKind: cast.KindIfStmt,
			Steps:      []Step{{Op: OpDeleteNode}}}, "boom"},
		{"noname", Program{TargetKind: cast.KindIfStmt,
			Steps: []Step{{Op: OpDeleteNode}}}, "no name"},
		{"nosteps", Program{Name: "X", TargetKind: cast.KindIfStmt}, "no rewrite steps"},
		{"emptytext", Program{Name: "X", TargetKind: cast.KindIfStmt,
			Steps: []Step{{Op: OpReplaceWithText}}}, "requires text"},
		{"emptywrap", Program{Name: "X", TargetKind: cast.KindIfStmt,
			Steps: []Step{{Op: OpWrapText}}}, "requires pre or post"},
		{"swap-tu", Program{Name: "X", TargetKind: cast.KindTranslationUnit,
			Steps: []Step{{Op: OpSwapWithSibling}}}, "requires a sibling"},
		{"copy-tu", Program{Name: "X", TargetKind: cast.KindTranslationUnit,
			Steps: []Step{{Op: OpReplaceWithCopy}}}, "requires a sibling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(&tc.prog)
			if err == nil {
				t.Fatal("compiled")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestEveryOpProducesParseableMutant(t *testing.T) {
	ops := []struct {
		name string
		kind cast.NodeKind
		step Step
	}{
		{"wrap-expr", cast.KindBinaryOperator, Step{Op: OpWrapText, Pre: "(", Post: " + 0)"}},
		{"wrap-stmt", cast.KindIfStmt, Step{Op: OpWrapText, Pre: "if (1) { ", Post: " }"}},
		{"replace-lit", cast.KindIntegerLiteral, Step{Op: OpReplaceWithText, Text: "7"}},
		{"delete-stmt", cast.KindWhileStmt, Step{Op: OpDeleteNode}},
		{"dup-expr", cast.KindIntegerLiteral, Step{Op: OpDuplicateAfter}},
		{"swap", cast.KindIntegerLiteral, Step{Op: OpSwapWithSibling}},
		{"copy", cast.KindIntegerLiteral, Step{Op: OpReplaceWithCopy}},
		{"insert-after-expr", cast.KindIntegerLiteral, Step{Op: OpInsertAfter, Text: " + 0"}},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			prog := &Program{Name: "T", Description: "d",
				TargetKind: op.kind, Steps: []Step{op.step}}
			exe := compileOK(t, prog)
			out := exe.Apply(testSrc, rand.New(rand.NewSource(3)))
			if !out.Wrote {
				t.Fatal("no output")
			}
			if _, err := cast.Parse(out.Output); err != nil {
				t.Fatalf("mutant unparseable: %v\n%s", err, out.Output)
			}
		})
	}
}

func TestDefectObservability(t *testing.T) {
	base := Program{Name: "T", Description: "d",
		TargetKind: cast.KindIfStmt,
		Steps:      []Step{{Op: OpWrapText, Pre: "if (1) { ", Post: " }"}}}
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }

	hang := base
	hang.HangBug = true
	if out := mustExe(t, &hang).Apply(testSrc, rng()); !out.FuelExhausted {
		t.Error("hang not observed as fuel exhaustion")
	}

	noOut := base
	noOut.NoOutputBug = true
	if out := mustExe(t, &noOut).Apply(testSrc, rng()); out.Wrote {
		t.Error("no-output bug produced output")
	}

	noRewrite := base
	noRewrite.NoRewriteBug = true
	if out := mustExe(t, &noRewrite).Apply(testSrc, rng()); !out.Wrote || out.Changed {
		t.Error("no-rewrite bug changed the program")
	}

	crash := base
	crash.CrashBug = true
	// Crash fires only when the instance vector is empty.
	noIfs := "int main(void) { return 1; }"
	if out := mustExe(t, &crash).Apply(noIfs, rng()); !out.Crash {
		t.Error("crash not observed on structure-free input")
	}
	if out := mustExe(t, &crash).Apply(testSrc, rng()); out.Crash {
		t.Error("crash observed although instances exist")
	}

	bad := base
	bad.BadMutantBug = true
	out := mustExe(t, &bad).Apply(testSrc, rng())
	if !out.Changed {
		t.Fatal("bad-mutant bug did not change the program")
	}
	if _, err := cast.ParseAndCheck(out.Output); err == nil {
		t.Error("bad-mutant output unexpectedly compiles")
	}
}

func mustExe(t *testing.T, p *Program) *Executable {
	t.Helper()
	pc := p.Clone()
	exe, err := Compile(pc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return exe
}

func TestSafeStepsAlwaysValid(t *testing.T) {
	kinds := []cast.NodeKind{
		cast.KindIfStmt, cast.KindWhileStmt, cast.KindForStmt,
		cast.KindReturnStmt, cast.KindFunctionDecl, cast.KindVarDecl,
		cast.KindBinaryOperator, cast.KindIntegerLiteral, cast.KindCallExpr,
		cast.KindCompoundStmt, cast.KindExprStmt,
	}
	for _, k := range kinds {
		prog := &Program{Name: "S", Description: "d", TargetKind: k,
			Steps: SafeStepsFor(k)}
		exe := compileOK(t, prog)
		for seed := int64(0); seed < 5; seed++ {
			out := exe.Apply(testSrc, rand.New(rand.NewSource(seed)))
			if !out.Changed {
				continue
			}
			if _, err := cast.ParseAndCheck(out.Output); err != nil {
				t.Errorf("SafeStepsFor(%s) mutant invalid: %v\n%s",
					k, err, out.Output)
			}
		}
	}
}

func TestApplyOnStructureFreeInputIsNoop(t *testing.T) {
	prog := &Program{Name: "T", Description: "d",
		TargetKind: cast.KindSwitchStmt,
		Steps:      []Step{{Op: OpDeleteNode}}}
	exe := compileOK(t, prog)
	out := exe.Apply("int main(void) { return 0; }", rand.New(rand.NewSource(1)))
	if !out.Wrote || out.Changed {
		t.Errorf("no-structure apply: wrote=%v changed=%v", out.Wrote, out.Changed)
	}
}

func TestApplyOnUnparseableInputReportsParseFailure(t *testing.T) {
	prog := &Program{Name: "T", Description: "d",
		TargetKind: cast.KindIfStmt,
		Steps:      []Step{{Op: OpDeleteNode}}}
	exe := compileOK(t, prog)
	out := exe.Apply("int main(void) { return 0 ", rand.New(rand.NewSource(1)))
	if !out.ParseFailed {
		t.Fatalf("expected ParseFailed, got %+v", out)
	}
	if out.Wrote || out.Changed || out.FuelExhausted || out.Crash {
		t.Errorf("a parse failure must not report any run outcome: %+v", out)
	}
}

func TestRenderMentionsTemplateParts(t *testing.T) {
	prog := &Program{Name: "MyMutator", Description: "does things",
		TargetKind: cast.KindIfStmt,
		Steps:      []Step{{Op: OpDeleteNode}}}
	r := prog.Render()
	for _, want := range []string{"class MyMutator", "VisitIfStmt",
		"RegisterMutator", "mutate() override"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q:\n%s", want, r)
		}
	}
}

func TestFuelBudget(t *testing.T) {
	prog := &Program{Name: "T", Description: "d",
		TargetKind: cast.KindIfStmt,
		Steps:      []Step{{Op: OpWrapText, Pre: "if (1) { ", Post: " }"}}}
	exe := compileOK(t, prog)

	if got := exe.Fuel(); got != DefaultFuel {
		t.Fatalf("default fuel = %d, want %d", got, DefaultFuel)
	}
	out := exe.Apply(testSrc, rand.New(rand.NewSource(1)))
	if out.FuelExhausted {
		t.Fatalf("well-behaved mutator exhausted default fuel: %+v", out)
	}
	if out.FuelUsed <= 0 || out.FuelUsed >= DefaultFuel {
		t.Errorf("FuelUsed = %d, want a small positive amount", out.FuelUsed)
	}

	// A starvation budget cuts the same mutator off deterministically.
	exe.SetFuel(1)
	starved := exe.Apply(testSrc, rand.New(rand.NewSource(1)))
	if !starved.FuelExhausted {
		t.Fatalf("starved run did not exhaust fuel: %+v", starved)
	}
	if starved.FuelUsed != 1 {
		t.Errorf("starved FuelUsed = %d, want the whole budget (1)", starved.FuelUsed)
	}

	// SetFuel(0) restores the default.
	exe.SetFuel(0)
	if got := exe.Fuel(); got != DefaultFuel {
		t.Errorf("fuel after reset = %d, want %d", got, DefaultFuel)
	}
}

// TestStepGuards pins the When predicate semantics: a matching guard
// lets the step run, a failing guard skips just that step, and a nil
// guard is always true.
func TestStepGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := "int main(void) { return 42; }"

	// Only one IntegerLiteral instance, so selection is forced; its
	// text is "42".
	match := compileOK(t, &Program{Name: "G", TargetKind: cast.KindIntegerLiteral,
		Steps: []Step{{Op: OpReplaceWithText, Text: "7",
			When: &Pred{Contains: "4", NotContains: "9"}}}})
	out := match.Apply(src, rng)
	if !out.Wrote || !out.Changed || !strings.Contains(out.Output, "7") {
		t.Errorf("matching guard should rewrite, got %+v", out)
	}

	skip := compileOK(t, &Program{Name: "G", TargetKind: cast.KindIntegerLiteral,
		Steps: []Step{{Op: OpReplaceWithText, Text: "7",
			When: &Pred{Contains: "9"}}}})
	out = skip.Apply(src, rng)
	if !out.Wrote || out.Changed {
		t.Errorf("failing guard should skip the step (no-op output), got %+v", out)
	}

	var nilPred *Pred
	if !nilPred.Matches("anything") {
		t.Error("nil predicate must match everything")
	}
	if (&Pred{NotContains: "x"}).Matches("axb") {
		t.Error("NotContains clause ignored")
	}
}

// TestCloneCopiesGuards: mutating a clone's predicate must not leak
// into the original.
func TestCloneCopiesGuards(t *testing.T) {
	p := &Program{Name: "G", TargetKind: cast.KindIntegerLiteral,
		Steps: []Step{{Op: OpReplaceWithText, Text: "7", When: &Pred{Contains: "4"}}}}
	cp := p.Clone()
	cp.Steps[0].When.Contains = "mutated"
	if p.Steps[0].When.Contains != "4" {
		t.Error("Clone shares Pred pointers with the original")
	}
}
