// Package mutdsl defines the small mutation language that the (simulated)
// LLM emits when MetaMut asks it to synthesize a mutator implementation.
// A mutdsl program is the Go-side analogue of the C++ mutator class the
// paper's template (Figure 2) produces: select nodes of a target kind,
// check applicability, and perform a rewrite built from μAST operations.
//
// The DSL has its own compiler (well-formedness checker) and interpreter,
// so MetaMut's validation goal #1 ("μ compiles") is a real check with
// real error messages, and goals #2-#6 are observed by actually running
// the synthesized mutator over test programs.
package mutdsl

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// OpKind enumerates the rewrite operations a synthesized mutator may
// perform on its selected node.
type OpKind int

// Rewrite operations.
const (
	OpReplaceWithText OpKind = iota // replace node with literal text
	OpWrapText                      // replace node with Pre + text + Post
	OpDeleteNode                    // delete the node's text
	OpInsertBefore                  // insert Text before the node
	OpInsertAfter                   // insert Text after the node
	OpDuplicateAfter                // insert a copy of the node after it
	OpSwapWithSibling               // swap text with another node of the same kind
	OpReplaceWithCopy               // replace with a copy of another same-kind node
)

var opKindNames = [...]string{
	"ReplaceWithText", "WrapText", "DeleteNode", "InsertBefore",
	"InsertAfter", "DuplicateAfter", "SwapWithSibling", "ReplaceWithCopy",
}

// String returns the op name.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Step is one rewrite action of a synthesized mutator.
type Step struct {
	Op OpKind
	// Pre/Post wrap the node's own text for OpWrapText; Text is the
	// literal payload for replace/insert ops.
	Pre, Post, Text string
	// When, if non-nil, guards the step: it runs only when the
	// selected node's source text satisfies the predicate. This is the
	// DSL analogue of the ad-hoc `if (text.find(...) ...)` conditions
	// real synthesized mutators wrap around individual rewrites.
	When *Pred
}

// Pred is a step's match predicate over the selected node's source
// text. An empty field deactivates that clause, so the zero value
// matches everything — a degenerate guard the mutcheck linter flags
// as constant-true.
type Pred struct {
	// Contains requires the node text to contain this substring.
	Contains string
	// NotContains requires the node text not to contain this one.
	NotContains string
}

// Matches evaluates the predicate (nil matches everything).
func (p *Pred) Matches(text string) bool {
	if p == nil {
		return true
	}
	if p.Contains != "" && !strings.Contains(text, p.Contains) {
		return false
	}
	if p.NotContains != "" && strings.Contains(text, p.NotContains) {
		return false
	}
	return true
}

// Program is a synthesized mutator implementation: collect all nodes of
// TargetKind (template Step 2), pick one at random (Step 3), verify
// applicability (Step 4), then run the rewrite steps (Step 5).
type Program struct {
	Name        string
	Description string
	// TargetKind is the node kind the visitor collects.
	TargetKind cast.NodeKind
	// RequireSideEffectFree gates the mutation on a semantic check.
	RequireSideEffectFree bool
	// Steps are applied to the selected node in order.
	Steps []Step

	// The following fields model the defect classes the validation-
	// refinement loop repairs (Table 1). They are set by the simulated
	// LLM's fault injection and cleared by successful repairs.

	// SyntaxErr, when non-empty, makes Compile fail with this message
	// (goal #1 violation).
	SyntaxErr string
	// HangBug makes the mutator loop forever on inputs containing the
	// target kind (goal #2).
	HangBug bool
	// CrashBug makes the mutator panic when the target list is empty
	// (goal #3: a missing emptiness check).
	CrashBug bool
	// NoOutputBug makes the mutator return without writing anything
	// (goal #4).
	NoOutputBug bool
	// NoRewriteBug makes the mutator "report success" without recording
	// any edit (goal #5).
	NoRewriteBug bool
	// BadMutantBug skips the applicability checks so emitted mutants
	// frequently fail to compile (goal #6).
	BadMutantBug bool
}

// Clone returns a deep copy (Steps shared copy-on-write is avoided).
func (p *Program) Clone() *Program {
	cp := *p
	cp.Steps = append([]Step(nil), p.Steps...)
	for i := range cp.Steps {
		if w := cp.Steps[i].When; w != nil {
			ww := *w
			cp.Steps[i].When = &ww
		}
	}
	return &cp
}

// CompileError is a DSL compilation diagnostic (validation goal #1).
type CompileError struct{ Msg string }

func (e *CompileError) Error() string { return "mutator compile error: " + e.Msg }

// Compile checks the program's well-formedness, mirroring "clang++ -c
// Mutator.cpp" in the paper's loop. It returns the executable mutator.
func Compile(p *Program) (*Executable, error) {
	if p.SyntaxErr != "" {
		return nil, &CompileError{Msg: p.SyntaxErr}
	}
	if p.Name == "" {
		return nil, &CompileError{Msg: "mutator class has no name"}
	}
	if p.TargetKind.String() == "UnknownNode" {
		return nil, &CompileError{Msg: "unknown AST node kind in visitor"}
	}
	if len(p.Steps) == 0 {
		return nil, &CompileError{Msg: "mutate() has no rewrite steps"}
	}
	for i, s := range p.Steps {
		switch s.Op {
		case OpReplaceWithText, OpInsertBefore, OpInsertAfter:
			if s.Text == "" {
				return nil, &CompileError{
					Msg: fmt.Sprintf("step %d: %s requires text", i, s.Op)}
			}
		case OpWrapText:
			if s.Pre == "" && s.Post == "" {
				return nil, &CompileError{
					Msg: fmt.Sprintf("step %d: WrapText requires pre or post", i)}
			}
		case OpSwapWithSibling, OpReplaceWithCopy:
			// A sibling-relative rewrite needs a second instance, and a
			// translation unit is necessarily unique in its file.
			if p.TargetKind == cast.KindTranslationUnit {
				return nil, &CompileError{
					Msg: fmt.Sprintf("step %d: %s requires a sibling, but a %s has none", i, s.Op, p.TargetKind)}
			}
		}
	}
	return &Executable{prog: p}, nil
}

// DefaultFuel is the interpreter work budget per application: every
// collected node and every rewrite step burns one unit, and an injected
// goal-#2 runaway loop drains whatever remains. Generous enough that no
// well-behaved mutator ever comes close.
const DefaultFuel = 4096

// Executable is a compiled DSL mutator.
type Executable struct {
	prog *Program
	fuel int
}

// SetFuel overrides the work budget for subsequent Apply calls; n <= 0
// restores DefaultFuel.
func (e *Executable) SetFuel(n int) { e.fuel = n }

// Fuel returns the configured budget (DefaultFuel when unset).
func (e *Executable) Fuel() int {
	if e.fuel <= 0 {
		return DefaultFuel
	}
	return e.fuel
}

// Outcome describes one application of a synthesized mutator to a test
// program, observed by the validation loop.
type Outcome struct {
	// FuelExhausted reports a goal #2 violation: the mutator burned its
	// whole fuel budget before finishing. Fuel is the sandbox's
	// deterministic stand-in for a wall-clock timeout, so an injected
	// infinite loop and a genuinely runaway traversal surface the same way.
	FuelExhausted bool
	// FuelUsed is the number of work units this application consumed.
	FuelUsed int
	// Crash reports a goal #3 violation (detected, not real).
	Crash bool
	// CrashMsg carries the simulated stack trace line.
	CrashMsg string
	// Output is the produced mutant; Wrote is false when the mutator
	// produced no output at all (goal #4).
	Output string
	Wrote  bool
	// Changed is true when Output differs from the input (goal #5).
	Changed bool
	// ParseFailed is true when the *input* program did not parse, so
	// the mutator never ran. Callers must not score such an application
	// against any validation goal.
	ParseFailed bool
}

// Apply runs the mutator over src. It never actually hangs or panics —
// injected defects are reported through the Outcome, the way MetaMut's
// sandboxed runner observes timeouts and crashes. Work is metered
// against the fuel budget (see DefaultFuel): collection charges one unit
// per node, each rewrite step charges one, and exhaustion ends the
// application with FuelExhausted instead of looping forever.
func (e *Executable) Apply(src string, rng *rand.Rand) Outcome {
	p := e.prog
	budget := e.Fuel()
	fuel := budget
	mgr, err := muast.NewManager(src, rng)
	if err != nil {
		// The test program itself is invalid — the mutator never ran.
		// Report that distinctly instead of faking a no-op "success".
		return Outcome{ParseFailed: true}
	}
	nodes := cast.CollectKind(mgr.TU, p.TargetKind)
	fuel -= len(nodes)
	if fuel <= 0 {
		return Outcome{FuelExhausted: true, FuelUsed: budget}
	}
	if p.HangBug && len(nodes) > 0 {
		// The injected goal-#2 defect is a visitor loop that never makes
		// progress; the fuel meter cuts it off deterministically.
		return Outcome{FuelExhausted: true, FuelUsed: budget}
	}
	if len(nodes) == 0 {
		if p.CrashBug {
			return Outcome{Crash: true,
				CrashMsg: "SIGSEGV in " + p.Name + "::mutate() (empty instance vector)"}
		}
		return Outcome{Wrote: true, Output: src, Changed: false}
	}
	if p.NoOutputBug {
		return Outcome{Wrote: false}
	}
	if p.NoRewriteBug {
		return Outcome{Wrote: true, Output: src, Changed: false}
	}
	// Select a mutation instance (template Step 3), honoring the
	// applicability checks (Step 4): like a real mutator, candidates that
	// fail the check are skipped, not fatal. BadMutantBug skips the
	// checks entirely.
	var node cast.Node
	for _, i := range rng.Perm(len(nodes)) {
		cand := nodes[i]
		if !p.BadMutantBug && p.RequireSideEffectFree {
			if expr, ok := cand.(cast.Expr); ok && !mgr.IsSideEffectFree(expr) {
				continue
			}
		}
		node = cand
		break
	}
	if node == nil {
		return Outcome{Wrote: true, Output: src, Changed: false}
	}
	for _, s := range p.Steps {
		fuel--
		if fuel <= 0 {
			return Outcome{FuelExhausted: true, FuelUsed: budget}
		}
		// A guarded step that does not match the selected node is
		// skipped, not fatal — like the applicability checks above.
		if !s.When.Matches(mgr.GetSourceText(node)) {
			continue
		}
		e.applyStep(mgr, node, nodes, s, rng)
	}
	if p.BadMutantBug {
		corruptNear(mgr, node)
	}
	out := mgr.Apply()
	return Outcome{Wrote: true, Output: out, Changed: out != src,
		FuelUsed: budget - fuel}
}

// corruptNear models the dominant real-world mutator defect ("creates
// compile-error mutants", Table 1 row #6): a rewrite with an off-by-one
// source range that eats an adjacent token. It deletes the first
// non-space character after the node.
func corruptNear(mgr *muast.Manager, node cast.Node) {
	src := mgr.RW.Source()
	for i := node.Range().End; i < len(src); i++ {
		c := src[i]
		if c == ' ' || c == '\t' || c == '\n' {
			continue
		}
		mgr.ReplaceRange(cast.SourceRange{Begin: i, End: i + 1}, "")
		return
	}
	// Node at EOF: eat the character before it instead.
	if b := node.Range().Begin; b > 0 {
		mgr.ReplaceRange(cast.SourceRange{Begin: b - 1, End: b}, "")
	}
}

func (e *Executable) applyStep(mgr *muast.Manager, node cast.Node,
	all []cast.Node, s Step, rng *rand.Rand) {
	txt := mgr.GetSourceText(node)
	switch s.Op {
	case OpReplaceWithText:
		mgr.ReplaceNode(node, s.Text)
	case OpWrapText:
		mgr.ReplaceNode(node, s.Pre+txt+s.Post)
	case OpDeleteNode:
		// Statements need a placeholder semicolon to stay parseable;
		// expressions are replaced by a neutral literal.
		if _, isStmt := node.(cast.Stmt); isStmt {
			mgr.ReplaceNode(node, ";")
		} else {
			mgr.ReplaceNode(node, "0")
		}
	case OpInsertBefore:
		mgr.InsertBefore(node, s.Text)
	case OpInsertAfter:
		mgr.InsertAfter(node, s.Text)
	case OpDuplicateAfter:
		if _, isStmt := node.(cast.Stmt); isStmt {
			mgr.InsertAfter(node, " "+txt)
		} else {
			mgr.ReplaceNode(node, "("+txt+" + "+txt+")")
		}
	case OpSwapWithSibling, OpReplaceWithCopy:
		var other cast.Node
		for _, cand := range all {
			if cand != node && !cand.Range().Contains(node.Range()) &&
				!node.Range().Contains(cand.Range()) {
				other = cand
				break
			}
		}
		if other == nil {
			return
		}
		otherTxt := mgr.GetSourceText(other)
		if s.Op == OpSwapWithSibling {
			mgr.ReplaceNode(node, otherTxt)
			mgr.ReplaceNode(other, txt)
		} else {
			mgr.ReplaceNode(node, otherTxt)
		}
	}
}

// SafeStepsFor returns a rewrite guaranteed to keep mutants of the given
// node kind compilable — the shape a correct implementation converges to.
func SafeStepsFor(k cast.NodeKind) []Step {
	switch k {
	case cast.KindCompoundStmt:
		// A compound statement may be a function body, where an if-wrap
		// would be invalid; an extra brace pair is always legal.
		return []Step{{Op: OpWrapText, Pre: "{ ", Post: " }"}}
	case cast.KindIfStmt, cast.KindWhileStmt,
		cast.KindDoStmt, cast.KindForStmt, cast.KindSwitchStmt,
		cast.KindReturnStmt, cast.KindGotoStmt, cast.KindLabelStmt,
		cast.KindCaseStmt, cast.KindExprStmt, cast.KindNullStmt,
		cast.KindDeclStmt, cast.KindBreakStmt, cast.KindContinueStmt,
		cast.KindDefaultStmt:
		return []Step{{Op: OpWrapText, Pre: "if (1) { ", Post: " }"}}
	case cast.KindFunctionDecl, cast.KindVarDecl, cast.KindParmVarDecl,
		cast.KindFieldDecl, cast.KindRecordDecl, cast.KindEnumDecl,
		cast.KindEnumConstantDecl, cast.KindTypedefDecl,
		cast.KindTranslationUnit, cast.KindInitListExpr:
		return []Step{{Op: OpInsertAfter, Text: " /* reviewed */"}}
	default:
		return []Step{{Op: OpWrapText, Pre: "(", Post: " + 0)"}}
	}
}

// Render prints the program as the C++-template instantiation it stands
// for — useful in logs and documentation.
func (p *Program) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class %s : public Mutator, public ASTVisitor {\n", p.Name)
	fmt.Fprintf(&sb, "  // %s\n", p.Description)
	fmt.Fprintf(&sb, "  bool Visit%s(%s *node); // collect instances\n",
		p.TargetKind, p.TargetKind)
	fmt.Fprintf(&sb, "  bool mutate() override; // %d rewrite step(s)\n",
		len(p.Steps))
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  //   step %d: %s\n", i+1, s.Op)
	}
	sb.WriteString("};\n")
	fmt.Fprintf(&sb, "static RegisterMutator<%s> M(\"%s\", \"%s\");\n",
		p.Name, p.Name, p.Description)
	return sb.String()
}
