// Package sched implements deterministic mutator scheduling for the
// fuzzers: the paper's Algorithm 1 picks mutators uniformly at random
// each tick, but its own Table 1 shows per-mutator validity and yield
// vary by an order of magnitude. The adaptive scheduler here is a
// UCB1-style multi-armed bandit over per-mutator reward (new coverage,
// crash bonus, compile-error penalty) with an epsilon floor so no
// mutator starves, following the feedback-weighted selection that
// Mut4All and FunFuzz report as where LLM-synthesized operators pay off.
//
// Determinism is the design constraint everything else bends around:
// a scheduler instance is private to one fuzzing stream, draws all of
// its randomness from that stream's RNG, and serializes its complete
// posterior into a State that rides the engine checkpoint — so a fixed
// seed produces byte-identical campaigns at any worker count, and
// checkpoint+resume equals an uninterrupted run.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/icsnju/metamut-go/internal/obs"
)

// Reward describes one observed mutant outcome for an arm. Fields are
// not mutually exclusive: a crashing mutant usually also covers new
// edges.
type Reward struct {
	// NewCoverage: the mutant covered previously-unseen edges.
	NewCoverage bool
	// Crash: the mutant crashed (or hung) the compiler.
	Crash bool
	// CompileError: the mutant was rejected, statically or by the
	// compiler front-end — the waste the paper's refinement loop fights.
	CompileError bool
	// Fault: the mutator itself panicked or exhausted its fuel budget.
	Fault bool
}

// Config tunes the adaptive policy. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// CoverageReward is credited per mutant covering new edges.
	CoverageReward float64
	// CrashBonus is credited per crashing mutant (on top of any
	// coverage credit).
	CrashBonus float64
	// CompileErrorPenalty is debited per rejected mutant.
	CompileErrorPenalty float64
	// FaultPenalty is debited per mutator panic or fuel exhaustion.
	FaultPenalty float64
	// Explore is the UCB exploration coefficient: score is
	// mean + Explore*sqrt(ln(t+1)/picks).
	Explore float64
	// Epsilon is the starvation floor: with this probability the
	// scheduler promotes a uniformly random allowed arm instead of the
	// exploit ranking, so every mutator keeps getting sampled.
	Epsilon float64
}

// DefaultConfig returns the calibrated policy: coverage is the base
// currency, crashes are worth a handful of coverage events, rejects
// cost a fraction, and a 10% epsilon floor keeps the tail alive.
func DefaultConfig() Config {
	return Config{
		CoverageReward:      1.0,
		CrashBonus:          4.0,
		CompileErrorPenalty: 0.25,
		FaultPenalty:        0.5,
		Explore:             0.7,
		Epsilon:             0.1,
	}
}

// value folds a Reward into its scalar credit.
func (c Config) value(r Reward) float64 {
	v := 0.0
	if r.NewCoverage {
		v += c.CoverageReward
	}
	if r.Crash {
		v += c.CrashBonus
	}
	if r.CompileError {
		v -= c.CompileErrorPenalty
	}
	if r.Fault {
		v -= c.FaultPenalty
	}
	return v
}

// Observer receives every Observe call after it lands in the
// posterior — the flight recorder's reward tap. Observers must be
// deterministic side channels: they may not touch the RNG or feed
// anything back into scheduling.
type Observer func(arm int, r Reward)

// Scheduler ranks mutator arms for one fuzzing stream. Implementations
// are deterministic functions of their own state and the RNG handed in;
// they are not safe for concurrent use (one instance per stream, like
// the quarantine).
type Scheduler interface {
	// Kind names the policy ("uniform" or "adaptive").
	Kind() string
	// Arms returns the arm count the scheduler was built for.
	Arms() int
	// Order returns a try-order over the arms for one μCFuzz tick.
	// allowed filters arms (nil allows all); the uniform policy ignores
	// it — matching Algorithm 1, where quarantined mutators are skipped
	// inline — while the adaptive policy excludes disallowed arms. The
	// returned slice is valid until the next Order call.
	Order(rng *rand.Rand, allowed func(int) bool) []int
	// Pick returns a single arm for one macro-fuzzer havoc round, or -1
	// when no arm is allowed.
	Pick(rng *rand.Rand, allowed func(int) bool) int
	// Observe books one mutant outcome against an arm.
	Observe(arm int, r Reward)
	// ObserveBatch books a run of outcomes for one arm, in order. It is
	// exactly equivalent to calling Observe once per reward in slice
	// order — batched fuzzers buffer rewards during a step and flush
	// them here, and the replay-in-order contract keeps the posterior
	// (including float reward sums) bit-identical to unbatched
	// operation.
	ObserveBatch(arm int, rs []Reward)
	// State serializes the complete posterior for checkpointing.
	State() *State
	// Restore replaces the posterior from a checkpoint; it rejects a
	// state of the wrong kind or arm count.
	Restore(st *State) error
	// Instrument attaches per-arm telemetry: sched_picks_total{mutator}
	// and sched_weight{mutator} (mean reward in milli-units). names must
	// have one entry per arm.
	Instrument(reg *obs.Registry, names []string)
	// SetObserver attaches a reward tap called on every Observe (nil
	// detaches). The observer never influences scheduling.
	SetObserver(fn Observer)
}

// State is the JSON-serializable posterior of a scheduler. float64
// reward sums round-trip exactly through encoding/json (shortest
// round-trip representation), so a restored scheduler is byte-identical
// to the checkpointed one.
type State struct {
	Kind    string    `json:"kind"`
	Arms    int       `json:"arms"`
	Ticks   int64     `json:"ticks,omitempty"`
	Picks   []int64   `json:"picks,omitempty"`
	Rewards []float64 `json:"rewards,omitempty"`
}

// New builds a scheduler of the given kind ("uniform" or "adaptive",
// the latter with DefaultConfig) over n arms.
func New(kind string, n int) (Scheduler, error) {
	switch kind {
	case "", "uniform":
		return NewUniform(n), nil
	case "adaptive":
		return NewAdaptive(n, DefaultConfig()), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want uniform or adaptive)", kind)
}

// ---------------------------------------------------------------------
// Uniform — the paper's Algorithm 1 policy
// ---------------------------------------------------------------------

// Uniform reproduces the pre-scheduler behavior exactly: Order is one
// rng.Perm and Pick is one rng.Intn, consuming the same RNG draws in
// the same sequence as the original shuffle-and-apply loop, so legacy
// seeds reproduce bit-for-bit.
type Uniform struct {
	n      int
	order  []int // Order scratch, reused across calls
	mPicks []*obs.Counter
	obsFn  Observer
}

// NewUniform returns the uniform policy over n arms.
func NewUniform(n int) *Uniform { return &Uniform{n: n} }

// Kind names the policy.
func (u *Uniform) Kind() string { return "uniform" }

// Arms returns the arm count.
func (u *Uniform) Arms() int { return u.n }

// Order returns a uniform permutation (exactly Algorithm 1's shuffle).
// The permutation is built into a reused scratch slice with the same
// inside-out construction — and therefore the exact same Intn draw
// sequence — as rand.Perm, so legacy seeds reproduce bit-for-bit
// without allocating per step. The slice is valid until the next Order
// call. allowed is deliberately ignored — the fuzzer skips benched
// arms inline, preserving the legacy draw sequence.
func (u *Uniform) Order(rng *rand.Rand, allowed func(int) bool) []int {
	m := u.order
	if cap(m) < u.n {
		m = make([]int, u.n)
	}
	m = m[:u.n]
	for i := 0; i < u.n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	u.order = m
	return m
}

// Pick returns a uniformly random arm (exactly the macro fuzzer's
// legacy rng.Intn draw); allowed is ignored as in Order.
func (u *Uniform) Pick(rng *rand.Rand, allowed func(int) bool) int {
	if u.n == 0 {
		return -1
	}
	return rng.Intn(u.n)
}

// Observe only feeds telemetry: the uniform policy has no posterior.
func (u *Uniform) Observe(arm int, r Reward) {
	if arm < 0 || arm >= u.n {
		return
	}
	if u.mPicks != nil {
		u.mPicks[arm].Inc()
	}
	if u.obsFn != nil {
		u.obsFn(arm, r)
	}
}

// ObserveBatch books a run of outcomes for one arm, equivalent to
// calling Observe once per reward in order.
func (u *Uniform) ObserveBatch(arm int, rs []Reward) {
	for _, r := range rs {
		u.Observe(arm, r)
	}
}

// SetObserver attaches the reward tap.
func (u *Uniform) SetObserver(fn Observer) { u.obsFn = fn }

// State serializes the (empty) posterior.
func (u *Uniform) State() *State { return &State{Kind: "uniform", Arms: u.n} }

// Restore validates the checkpointed state against this instance.
func (u *Uniform) Restore(st *State) error {
	if err := validate(st, "uniform", u.n); err != nil {
		return err
	}
	return nil
}

// Instrument attaches per-arm pick counters.
func (u *Uniform) Instrument(reg *obs.Registry, names []string) {
	u.mPicks = resolvePicks(reg, names, u.n)
}

// ---------------------------------------------------------------------
// Adaptive — UCB1 with an epsilon starvation floor
// ---------------------------------------------------------------------

// Adaptive is the bandit policy: each arm's score is its mean observed
// reward plus a UCB exploration bonus; untried arms score +Inf so every
// mutator is sampled before any is ranked, and the epsilon floor keeps
// promoting random arms forever so a converged leader can never starve
// the tail. All tie-breaks are by arm index, so the ranking is a pure
// function of the posterior.
type Adaptive struct {
	cfg     Config
	n       int
	ticks   int64
	picks   []int64
	rewards []float64

	// scratch buffers reused across calls (hot path: one Order per
	// μCFuzz tick, HavocMax Picks per macro step).
	order  []int
	scores []float64

	mPicks  []*obs.Counter
	mWeight []*obs.Gauge
	obsFn   Observer
}

// NewAdaptive returns the bandit policy over n arms.
func NewAdaptive(n int, cfg Config) *Adaptive {
	return &Adaptive{
		cfg:     cfg,
		n:       n,
		picks:   make([]int64, n),
		rewards: make([]float64, n),
		order:   make([]int, 0, n),
		scores:  make([]float64, n),
	}
}

// Kind names the policy.
func (a *Adaptive) Kind() string { return "adaptive" }

// Arms returns the arm count.
func (a *Adaptive) Arms() int { return a.n }

// score is the UCB1 index of one arm.
func (a *Adaptive) score(i int) float64 {
	if a.picks[i] == 0 {
		return math.Inf(1)
	}
	mean := a.rewards[i] / float64(a.picks[i])
	return mean + a.cfg.Explore*math.Sqrt(math.Log(float64(a.ticks+1))/float64(a.picks[i]))
}

// collectAllowed fills the scratch order buffer with the allowed arms
// in index order.
func (a *Adaptive) collectAllowed(allowed func(int) bool) {
	a.order = a.order[:0]
	for i := 0; i < a.n; i++ {
		if allowed != nil && !allowed(i) {
			continue
		}
		a.order = append(a.order, i)
	}
}

// Order ranks the allowed arms by UCB score (descending, ties by
// index), then — with probability Epsilon — promotes one uniformly
// random allowed arm to the front. The returned slice is a reused
// scratch buffer.
func (a *Adaptive) Order(rng *rand.Rand, allowed func(int) bool) []int {
	a.collectAllowed(allowed)
	for _, i := range a.order {
		a.scores[i] = a.score(i)
	}
	sort.SliceStable(a.order, func(x, y int) bool {
		ix, iy := a.order[x], a.order[y]
		if a.scores[ix] != a.scores[iy] {
			return a.scores[ix] > a.scores[iy]
		}
		return ix < iy
	})
	if a.cfg.Epsilon > 0 && len(a.order) > 1 && rng.Float64() < a.cfg.Epsilon {
		j := rng.Intn(len(a.order))
		promoted := a.order[j]
		copy(a.order[1:j+1], a.order[:j])
		a.order[0] = promoted
	}
	return a.order
}

// Pick returns the best-scoring allowed arm (epsilon-greedy: with
// probability Epsilon a uniformly random allowed arm instead), or -1
// when nothing is allowed.
func (a *Adaptive) Pick(rng *rand.Rand, allowed func(int) bool) int {
	a.collectAllowed(allowed)
	if len(a.order) == 0 {
		return -1
	}
	if a.cfg.Epsilon > 0 && rng.Float64() < a.cfg.Epsilon {
		return a.order[rng.Intn(len(a.order))]
	}
	best, bestScore := -1, math.Inf(-1)
	for _, i := range a.order {
		if s := a.score(i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Observe books one outcome into the posterior and telemetry.
func (a *Adaptive) Observe(arm int, r Reward) {
	if arm < 0 || arm >= a.n {
		return
	}
	a.ticks++
	a.picks[arm]++
	a.rewards[arm] += a.cfg.value(r)
	if a.mPicks != nil {
		a.mPicks[arm].Inc()
	}
	if a.mWeight != nil {
		a.mWeight[arm].Set(int64(1000 * a.rewards[arm] / float64(a.picks[arm])))
	}
	if a.obsFn != nil {
		a.obsFn(arm, r)
	}
}

// ObserveBatch books a run of outcomes for one arm by replaying the
// exact per-observe update (tick, pick count, float reward sum,
// telemetry, tap) once per reward in slice order. The replay — rather
// than a folded sum — keeps the posterior bit-identical to unbatched
// operation: float addition is not associative, so summing first would
// drift the reward accumulator.
func (a *Adaptive) ObserveBatch(arm int, rs []Reward) {
	for _, r := range rs {
		a.Observe(arm, r)
	}
}

// SetObserver attaches the reward tap.
func (a *Adaptive) SetObserver(fn Observer) { a.obsFn = fn }

// State serializes the full posterior.
func (a *Adaptive) State() *State {
	return &State{
		Kind:    "adaptive",
		Arms:    a.n,
		Ticks:   a.ticks,
		Picks:   append([]int64(nil), a.picks...),
		Rewards: append([]float64(nil), a.rewards...),
	}
}

// Restore replaces the posterior from a checkpoint.
func (a *Adaptive) Restore(st *State) error {
	if err := validate(st, "adaptive", a.n); err != nil {
		return err
	}
	if st.Ticks != 0 || st.Picks != nil || st.Rewards != nil {
		if len(st.Picks) != a.n || len(st.Rewards) != a.n {
			return fmt.Errorf("sched: state has %d/%d arm entries, want %d",
				len(st.Picks), len(st.Rewards), a.n)
		}
		a.ticks = st.Ticks
		copy(a.picks, st.Picks)
		copy(a.rewards, st.Rewards)
	} else {
		a.ticks = 0
		for i := range a.picks {
			a.picks[i], a.rewards[i] = 0, 0
		}
	}
	return nil
}

// Instrument attaches per-arm pick counters and mean-reward gauges
// (milli-units: the int64 gauge holds round(1000*mean)).
func (a *Adaptive) Instrument(reg *obs.Registry, names []string) {
	a.mPicks = resolvePicks(reg, names, a.n)
	if reg == nil || len(names) != a.n {
		return
	}
	weight := reg.Gauge("sched_weight", "mutator")
	a.mWeight = make([]*obs.Gauge, a.n)
	for i, name := range names {
		a.mWeight[i] = weight.With(name)
	}
}

// resolvePicks pre-resolves the per-arm sched_picks_total handles.
func resolvePicks(reg *obs.Registry, names []string, n int) []*obs.Counter {
	if reg == nil || len(names) != n {
		return nil
	}
	picks := reg.Counter("sched_picks_total", "mutator")
	out := make([]*obs.Counter, n)
	for i, name := range names {
		out[i] = picks.With(name)
	}
	return out
}

// validate checks a checkpointed state against an instance's identity.
func validate(st *State, kind string, n int) error {
	if st == nil {
		return fmt.Errorf("sched: nil state")
	}
	if st.Kind != kind {
		return fmt.Errorf("sched: checkpointed policy %q contradicts configured %q", st.Kind, kind)
	}
	if st.Arms != n {
		return fmt.Errorf("sched: checkpointed arm count %d contradicts mutator set size %d", st.Arms, n)
	}
	return nil
}

// RegisterMetrics pre-registers the scheduler metric families so
// snapshots and the METRICS.md reference include them even before the
// first observation.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("sched_picks_total", "mutator")
	reg.Gauge("sched_weight", "mutator")
}
