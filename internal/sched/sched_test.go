package sched

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"github.com/icsnju/metamut-go/internal/obs"
)

// drive runs n ticks of a synthetic campaign against s: each tick ranks
// the arms, "tries" the front arm, and feeds back a deterministic
// reward profile (arm 0 yields coverage, arm 1 crashes rarely, the rest
// mostly reject). Returns the pick sequence.
func drive(s Scheduler, rng *rand.Rand, n int) []int {
	seq := make([]int, 0, n)
	for t := 0; t < n; t++ {
		order := s.Order(rng, nil)
		arm := order[0]
		seq = append(seq, arm)
		r := Reward{}
		switch {
		case arm == 0:
			r.NewCoverage = t%3 == 0
		case arm == 1:
			r.Crash = t%17 == 0
		default:
			r.CompileError = t%2 == 0
		}
		s.Observe(arm, r)
	}
	return seq
}

func TestUniformMatchesLegacyDraws(t *testing.T) {
	// The uniform policy must consume the stream RNG exactly like the
	// pre-scheduler loop: one Perm per Order, one Intn per Pick.
	u := NewUniform(7)
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		got := u.Order(r1, nil)
		want := r2.Perm(7)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Order draw %d: got %v want %v", i, got, want)
		}
	}
	for i := 0; i < 50; i++ {
		if got, want := u.Pick(r1, nil), r2.Intn(7); got != want {
			t.Fatalf("Pick draw %d: got %d want %d", i, got, want)
		}
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	run := func() []int {
		a := NewAdaptive(6, DefaultConfig())
		return drive(a, rand.New(rand.NewSource(7)), 2000)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same seed produced different adaptive schedules")
	}
}

func TestAdaptivePrefersYieldingArm(t *testing.T) {
	a := NewAdaptive(6, DefaultConfig())
	seq := drive(a, rand.New(rand.NewSource(3)), 4000)
	counts := make([]int, 6)
	for _, arm := range seq {
		counts[arm]++
	}
	// Arm 0 (steady coverage) must dominate the rejecting arms 2..5.
	for i := 2; i < 6; i++ {
		if counts[0] <= counts[i] {
			t.Fatalf("coverage arm picked %d times, rejecting arm %d picked %d",
				counts[0], i, counts[i])
		}
	}
}

func TestEpsilonFloorPreventsStarvation(t *testing.T) {
	// Even with one overwhelmingly rewarding arm, the epsilon floor must
	// bring every allowed arm to the front of the ranking within a
	// bounded number of ticks.
	const arms, ticks = 8, 4000
	a := NewAdaptive(arms, DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	fronted := map[int]int{} // arm -> first tick at order[0]
	for tick := 0; tick < ticks; tick++ {
		order := a.Order(rng, nil)
		if _, seen := fronted[order[0]]; !seen {
			fronted[order[0]] = tick
		}
		// Arm 0 always wins big; everything else always loses.
		r := Reward{CompileError: true}
		if order[0] == 0 {
			r = Reward{NewCoverage: true, Crash: true}
		}
		a.Observe(order[0], r)
	}
	for arm := 0; arm < arms; arm++ {
		if _, ok := fronted[arm]; !ok {
			t.Fatalf("arm %d never reached the front in %d ticks (epsilon floor broken)", arm, ticks)
		}
	}
}

func TestAdaptiveHonorsAllowed(t *testing.T) {
	a := NewAdaptive(5, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	banned := map[int]bool{1: true, 3: true}
	allowed := func(i int) bool { return !banned[i] }
	for tick := 0; tick < 500; tick++ {
		for _, arm := range a.Order(rng, allowed) {
			if banned[arm] {
				t.Fatalf("Order ranked quarantined arm %d", arm)
			}
		}
		if arm := a.Pick(rng, allowed); banned[arm] {
			t.Fatalf("Pick chose quarantined arm %d", arm)
		}
	}
	if got := a.Pick(rng, func(int) bool { return false }); got != -1 {
		t.Fatalf("Pick with nothing allowed = %d, want -1", got)
	}
}

func TestStateRoundTripsThroughJSON(t *testing.T) {
	a := NewAdaptive(6, DefaultConfig())
	rng := rand.New(rand.NewSource(99))
	drive(a, rng, 1500)
	st := a.State()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	b := NewAdaptive(6, DefaultConfig())
	if err := b.Restore(&back); err != nil {
		t.Fatal(err)
	}
	// The restored posterior must continue bit-identically: clone the
	// RNG state by reseeding and replaying the same suffix.
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	s1 := drive(a, r1, 800)
	s2 := drive(b, r2, 800)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("restored scheduler diverged from original")
	}
}

func TestRestoreRejectsContradictions(t *testing.T) {
	a := NewAdaptive(4, DefaultConfig())
	if err := a.Restore(&State{Kind: "uniform", Arms: 4}); err == nil {
		t.Fatal("adaptive restored a uniform state")
	}
	if err := a.Restore(&State{Kind: "adaptive", Arms: 9}); err == nil {
		t.Fatal("restored a state with the wrong arm count")
	}
	u := NewUniform(4)
	if err := u.Restore(&State{Kind: "adaptive", Arms: 4}); err == nil {
		t.Fatal("uniform restored an adaptive state")
	}
	if err := u.Restore(&State{Kind: "uniform", Arms: 4}); err != nil {
		t.Fatalf("uniform rejected its own state: %v", err)
	}
}

func TestNewByKind(t *testing.T) {
	for kind, want := range map[string]string{"": "uniform", "uniform": "uniform", "adaptive": "adaptive"} {
		s, err := New(kind, 3)
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind() != want || s.Arms() != 3 {
			t.Fatalf("New(%q) = %s/%d", kind, s.Kind(), s.Arms())
		}
	}
	if _, err := New("thompson", 3); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestInstrumentCountsPicksAndWeights(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdaptive(2, DefaultConfig())
	a.Instrument(reg, []string{"m0", "m1"})
	a.Observe(0, Reward{NewCoverage: true})
	a.Observe(0, Reward{NewCoverage: true})
	a.Observe(1, Reward{CompileError: true})
	snap := reg.Snapshot()
	if got := snap.Counter("sched_picks_total", "m0"); got != 2 {
		t.Fatalf("sched_picks_total{m0} = %d, want 2", got)
	}
	if got := snap.Counter("sched_picks_total", "m1"); got != 1 {
		t.Fatalf("sched_picks_total{m1} = %d, want 1", got)
	}
	// Mean reward of m0 is 1.0 -> 1000 milli-units on the gauge.
	found := false
	for _, f := range snap.Gauges {
		if f.Name != "sched_weight" {
			continue
		}
		for _, s := range f.Series {
			if len(s.LabelValues) == 1 && s.LabelValues[0] == "m0" {
				found = true
				if s.Value != 1000 {
					t.Fatalf("sched_weight{m0} = %d, want 1000", s.Value)
				}
			}
		}
	}
	if !found {
		t.Fatal("sched_weight{m0} not exported")
	}
}

// TestObserveBatchEqualsObserveReplay pins the batching contract for
// both policies: feeding a reward sequence through ObserveBatch in
// contiguous same-arm runs must leave the scheduler in exactly the
// state a per-reward Observe loop produces — identical serialized
// posterior AND identical future ranking decisions. The equality is
// exact (not approximate) because ObserveBatch is defined as in-order
// replay, never as a folded sum: float addition is not associative, so
// any "optimized" accumulation would drift the posterior.
func TestObserveBatchEqualsObserveReplay(t *testing.T) {
	build := func(kind string) Scheduler {
		s, err := New(kind, 6)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// A reward tape with contiguous same-arm runs, mixed outcomes, and
	// enough volume for rounding drift to surface if replay ever turns
	// into summation.
	type obsEv struct {
		arm int
		r   Reward
	}
	rng := rand.New(rand.NewSource(42))
	var tape []obsEv
	for len(tape) < 4000 {
		arm := rng.Intn(6)
		run := 1 + rng.Intn(9)
		for i := 0; i < run; i++ {
			tape = append(tape, obsEv{arm, Reward{
				NewCoverage:  rng.Intn(3) == 0,
				Crash:        rng.Intn(50) == 0,
				CompileError: rng.Intn(2) == 0,
				Fault:        rng.Intn(100) == 0,
			}})
		}
	}
	for _, kind := range []string{"uniform", "adaptive"} {
		single, batched := build(kind), build(kind)
		for _, ev := range tape {
			single.Observe(ev.arm, ev.r)
		}
		var run []Reward
		for i := 0; i < len(tape); {
			j := i + 1
			for j < len(tape) && tape[j].arm == tape[i].arm {
				j++
			}
			run = run[:0]
			for _, ev := range tape[i:j] {
				run = append(run, ev.r)
			}
			batched.ObserveBatch(tape[i].arm, run)
			i = j
		}
		ss, err := json.Marshal(single.State())
		if err != nil {
			t.Fatal(err)
		}
		bs, err := json.Marshal(batched.State())
		if err != nil {
			t.Fatal(err)
		}
		if string(ss) != string(bs) {
			t.Errorf("%s: batched posterior diverged from per-reward replay\n single %s\nbatched %s",
				kind, ss, bs)
		}
		// The posteriors agree; so must every decision derived from them.
		r1, r2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			if a, b := single.Pick(r1, nil), batched.Pick(r2, nil); a != b {
				t.Fatalf("%s: pick %d diverged after batch replay: %d vs %d", kind, i, a, b)
			}
			if a, b := single.Order(r1, nil), batched.Order(r2, nil); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: order %d diverged after batch replay: %v vs %v", kind, i, a, b)
			}
		}
	}
}
