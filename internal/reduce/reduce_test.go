package reduce

import (
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
)

// crashingProgram triggers gcc's strlen-optimization defect and carries
// plenty of irrelevant baggage for the reducer to strip.
const crashingProgram = `
int unrelated_global_a = 5;
int unrelated_global_b = 6;
char const buffer[32];

int noise1(int x) { return x * 3 + 1; }
int noise2(int x, int y) {
    int t = x + y;
    if (t > 10) { t -= 5; } else { t += 5; }
    while (t > 100) { t /= 2; }
    return t;
}

int test4(void) { return sprintf(buffer, "%s", buffer); }

int main(void) {
    int a = noise1(3);
    int b = noise2(a, 4);
    if (test4() != 3) abort();
    return a + b;
}
`

func TestReduceCrashPreservingSignature(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	opts := compilersim.DefaultOptions()
	res := comp.Compile(crashingProgram, opts)
	if res.Crash == nil {
		t.Fatalf("fixture does not crash; feats=%v", compilersim.FeatureNames(res.Feats))
	}
	sig := res.Crash.Signature()
	oracle := CrashOracle(comp, opts, sig)

	out := Reduce(crashingProgram, oracle, DefaultConfig())
	if !oracle(out.Output) {
		t.Fatal("reduced program no longer crashes with the same signature")
	}
	if len(out.Output) >= len(crashingProgram) {
		t.Fatalf("no reduction achieved (%d -> %d bytes)",
			len(crashingProgram), len(out.Output))
	}
	if out.Ratio(crashingProgram) > 0.6 {
		t.Errorf("reduction ratio %.2f, want <= 0.6\n%s",
			out.Ratio(crashingProgram), out.Output)
	}
	// The noise functions must be gone; the essential sprintf must stay.
	if strings.Contains(out.Output, "noise2") {
		t.Errorf("irrelevant function survived:\n%s", out.Output)
	}
	if !strings.Contains(out.Output, "sprintf") {
		t.Errorf("essential call removed:\n%s", out.Output)
	}
	t.Logf("reduced %d -> %d bytes in %d passes (%d tried, %d kept):\n%s",
		len(crashingProgram), len(out.Output), out.Passes, out.Tried,
		out.Kept, out.Output)
}

func TestReduceRefusesNonCrashingInput(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	oracle := CrashOracle(comp, compilersim.DefaultOptions(), "nope|nope")
	src := "int main(void) { return 0; }"
	out := Reduce(src, oracle, DefaultConfig())
	if out.Output != src {
		t.Error("non-reproducing input was modified")
	}
	if out.Tried != 0 && out.Kept != 0 {
		t.Error("budget spent on a non-reproducing input")
	}
}

func TestReduceRespectsBudget(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	opts := compilersim.DefaultOptions()
	res := comp.Compile(crashingProgram, opts)
	if res.Crash == nil {
		t.Skip("fixture does not crash")
	}
	oracle := CrashOracle(comp, opts, res.Crash.Signature())
	cfg := Config{MaxOracleCalls: 5, MaxPasses: 2}
	out := Reduce(crashingProgram, oracle, cfg)
	if out.Tried > 5 {
		t.Errorf("oracle called %d times, budget 5", out.Tried)
	}
}

func TestReducedOutputStillParses(t *testing.T) {
	comp := compilersim.New("gcc", 14)
	opts := compilersim.DefaultOptions()
	res := comp.Compile(crashingProgram, opts)
	if res.Crash == nil {
		t.Skip("fixture does not crash")
	}
	oracle := CrashOracle(comp, opts, res.Crash.Signature())
	out := Reduce(crashingProgram, oracle, DefaultConfig())
	if _, err := cast.Parse(out.Output); err != nil {
		t.Errorf("reduced output does not parse: %v\n%s", err, out.Output)
	}
}
