// Package reduce implements test-case minimization for crashing inputs —
// the step between "the fuzzer found a crash" and "a reportable bug".
// The paper's case studies all present minimized mutants ("The test case
// has been minimized to include only the essential code and mutation
// sites necessary to trigger the bug", Section 5.3).
//
// The reducer is a structural delta debugger over the C AST: it
// repeatedly tries to delete top-level declarations, statements, and
// branches, and to simplify expressions, keeping any change under which
// the compiler still crashes with the SAME signature (top-2 stack
// frames). It terminates at a 1-minimal-ish fixpoint.
package reduce

import (
	"math/rand"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/compilersim"
	"github.com/icsnju/metamut-go/internal/muast"
)

// Oracle decides whether a candidate still reproduces the target
// behaviour.
type Oracle func(src string) bool

// CrashOracle returns an oracle that accepts candidates crashing comp
// with the same signature as the original report.
func CrashOracle(comp *compilersim.Compiler, opts compilersim.Options,
	signature string) Oracle {
	return func(src string) bool {
		res := comp.Compile(src, opts)
		return res.Crash != nil && res.Crash.Signature() == signature
	}
}

// Result summarizes one reduction.
type Result struct {
	Output string
	// Passes is the number of full fixpoint iterations.
	Passes int
	// Tried and Kept count oracle invocations and accepted reductions.
	Tried int
	Kept  int
}

// Reduction ratio (bytes kept / bytes in).
func (r Result) Ratio(input string) float64 {
	if len(input) == 0 {
		return 1
	}
	return float64(len(r.Output)) / float64(len(input))
}

// Config bounds the reduction work.
type Config struct {
	// MaxOracleCalls caps the total number of compile attempts.
	MaxOracleCalls int
	// MaxPasses caps fixpoint iterations.
	MaxPasses int
}

// DefaultConfig is suitable for crash triage.
func DefaultConfig() Config { return Config{MaxOracleCalls: 2000, MaxPasses: 12} }

// Reduce minimizes src while oracle(src) stays true. src itself must
// satisfy the oracle or Reduce returns it unchanged.
func Reduce(src string, oracle Oracle, cfg Config) Result {
	r := Result{Output: src}
	if !oracle(src) {
		return r
	}
	cur := src
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		r.Passes++
		next, changed := reduceOnce(cur, oracle, &r, cfg)
		if !changed {
			break
		}
		cur = next
	}
	r.Output = cur
	return r
}

// attempt runs one candidate through the oracle with budget accounting.
func attempt(cand string, oracle Oracle, r *Result, cfg Config) bool {
	if r.Tried >= cfg.MaxOracleCalls {
		return false
	}
	r.Tried++
	if oracle(cand) {
		r.Kept++
		return true
	}
	return false
}

// reduceOnce applies every reduction family once, returning the best
// program found this round.
func reduceOnce(src string, oracle Oracle, r *Result, cfg Config) (string, bool) {
	changed := false
	for _, family := range []func(string, Oracle, *Result, Config) (string, bool){
		dropTopLevelDecls,
		dropStatements,
		simplifyBranches,
		simplifyExpressions,
	} {
		next, ch := family(src, oracle, r, cfg)
		if ch {
			src = next
			changed = true
		}
	}
	return src, changed
}

// parseQuiet parses without sema (crashing inputs may be invalid).
func parseQuiet(src string) *cast.TranslationUnit {
	tu, err := cast.Parse(src)
	if err != nil {
		return nil
	}
	return tu
}

// dropTopLevelDecls tries removing each top-level declaration, largest
// first.
func dropTopLevelDecls(src string, oracle Oracle, r *Result, cfg Config) (string, bool) {
	changed := false
	for {
		tu := parseQuiet(src)
		if tu == nil {
			return src, changed
		}
		removedAny := false
		// Try larger declarations first: they pay off most.
		order := make([]cast.Decl, len(tu.Decls))
		copy(order, tu.Decls)
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if order[j].Range().Len() > order[i].Range().Len() {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, d := range order {
			rng := d.Range()
			cand := src[:rng.Begin] + src[rng.End:]
			if attempt(cand, oracle, r, cfg) {
				src = cand
				removedAny = true
				changed = true
				break // ranges are stale; reparse
			}
		}
		if !removedAny {
			return src, changed
		}
	}
}

// dropStatements tries deleting statements inside compound blocks.
func dropStatements(src string, oracle Oracle, r *Result, cfg Config) (string, bool) {
	changed := false
	for {
		tu := parseQuiet(src)
		if tu == nil {
			return src, changed
		}
		var stmts []cast.Stmt
		cast.Walk(tu, func(n cast.Node) bool {
			if cs, ok := n.(*cast.CompoundStmt); ok {
				stmts = append(stmts, cs.Stmts...)
			}
			return true
		})
		// Largest first.
		for i := 0; i < len(stmts); i++ {
			for j := i + 1; j < len(stmts); j++ {
				if stmts[j].Range().Len() > stmts[i].Range().Len() {
					stmts[i], stmts[j] = stmts[j], stmts[i]
				}
			}
		}
		removedAny := false
		for _, s := range stmts {
			rng := s.Range()
			cand := src[:rng.Begin] + ";" + src[rng.End:]
			if attempt(cand, oracle, r, cfg) {
				src = cand
				removedAny = true
				changed = true
				break
			}
		}
		if !removedAny {
			return src, changed
		}
	}
}

// simplifyBranches replaces if/loop statements with their bodies.
func simplifyBranches(src string, oracle Oracle, r *Result, cfg Config) (string, bool) {
	changed := false
	for {
		tu := parseQuiet(src)
		if tu == nil {
			return src, changed
		}
		type repl struct {
			rng  cast.SourceRange
			text string
		}
		var cands []repl
		cast.Walk(tu, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.IfStmt:
				cands = append(cands, repl{x.Range(), src[x.Then.Range().Begin:x.Then.Range().End]})
				if x.Else != nil {
					cands = append(cands, repl{x.Range(), src[x.Else.Range().Begin:x.Else.Range().End]})
				}
			case *cast.WhileStmt:
				cands = append(cands, repl{x.Range(), src[x.Body.Range().Begin:x.Body.Range().End]})
			case *cast.ForStmt:
				cands = append(cands, repl{x.Range(), src[x.Body.Range().Begin:x.Body.Range().End]})
			}
			return true
		})
		applied := false
		for _, c := range cands {
			cand := src[:c.rng.Begin] + c.text + src[c.rng.End:]
			if len(cand) >= len(src) {
				continue
			}
			if attempt(cand, oracle, r, cfg) {
				src = cand
				applied = true
				changed = true
				break
			}
		}
		if !applied {
			return src, changed
		}
	}
}

// simplifyExpressions replaces large expressions with "0".
func simplifyExpressions(src string, oracle Oracle, r *Result, cfg Config) (string, bool) {
	changed := false
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 3; round++ {
		mgr, err := muast.NewManager(src, rng)
		if err != nil {
			// Invalid programs still reduce via the textual families.
			return src, changed
		}
		var exprs []cast.Expr
		for _, e := range mgr.Exprs(nil, nil) {
			if e.Range().Len() > 3 {
				exprs = append(exprs, e)
			}
		}
		// Largest first.
		for i := 0; i < len(exprs); i++ {
			for j := i + 1; j < len(exprs); j++ {
				if exprs[j].Range().Len() > exprs[i].Range().Len() {
					exprs[i], exprs[j] = exprs[j], exprs[i]
				}
			}
		}
		applied := false
		for _, e := range exprs {
			er := e.Range()
			cand := src[:er.Begin] + "0" + src[er.End:]
			if attempt(cand, oracle, r, cfg) {
				src = cand
				applied = true
				changed = true
				break
			}
		}
		if !applied {
			return src, changed
		}
	}
	return src, changed
}
