package mutators

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// The 16 Variable mutators.
func init() {
	reg("RenameVariable",
		"This mutator selects a local variable and renames it, together with all of its uses, to a fresh unique identifier.",
		muast.CatVariable, muast.Supervised, false, renameVariable)

	reg("ChangeVarDeclQualifier",
		"This mutator adds or removes a const or volatile qualifier on a variable declaration, updating nothing else.",
		muast.CatVariable, muast.Supervised, false, changeVarDeclQualifier)

	reg("SwitchInitExpr",
		"This mutator randomly selects a VarDecl and swaps its init expression with the init expression of another randomly selected VarDecl in the same scope, while ensuring the types of the variables are compatible.",
		muast.CatVariable, muast.Supervised, false, switchInitExpr)

	reg("RemoveVarInitializer",
		"This mutator removes the initializer from a local variable declaration, leaving the variable uninitialized.",
		muast.CatVariable, muast.Supervised, false, removeVarInitializer)

	reg("DuplicateVarDecl",
		"This mutator duplicates a variable declaration under a fresh name, copying its type and initializer.",
		muast.CatVariable, muast.Supervised, false, duplicateVarDecl)

	reg("PromoteLocalToGlobal",
		"This mutator moves a local variable declaration to file scope, making it a global variable and keeping all uses intact.",
		muast.CatVariable, muast.Supervised, true, promoteLocalToGlobal)

	reg("DemoteGlobalToLocal",
		"This mutator copies a global scalar variable into a function as a shadowing local with the same name and type.",
		muast.CatVariable, muast.Unsupervised, true, demoteGlobalToLocal)

	reg("ChangeParamScope",
		"This mutator moves a function parameter from the parameter scope into the local scope of the function, initializing it with a default value.",
		muast.CatVariable, muast.Supervised, false, changeParamScope)

	reg("AggregateMemberToScalarVariable",
		"This mutator transforms an array subscript expression into a reference to a new scalar global variable, adding a declaration for it.",
		muast.CatVariable, muast.Supervised, false, aggregateMemberToScalarVariable)

	reg("CombineVariable",
		"This mutator combines a scalar global variable into a new long long variable and rewrites all references through pointer arithmetic on the combined storage.",
		muast.CatVariable, muast.Unsupervised, true, combineVariable)

	reg("SplitVarDecl",
		"This mutator splits an initialized local variable declaration into an uninitialized declaration followed by a separate assignment statement.",
		muast.CatVariable, muast.Unsupervised, false, splitVarDecl)

	reg("InitializeUninitializedVar",
		"This mutator finds an uninitialized local variable declaration and adds a default-value initializer to it.",
		muast.CatVariable, muast.Unsupervised, false, initializeUninitializedVar)

	reg("VarToArray",
		"This mutator turns a scalar local variable into a one-element array and rewrites every use into a subscript of element zero.",
		muast.CatVariable, muast.Supervised, true, varToArray)

	reg("ShadowVariableInBlock",
		"This mutator redeclares a visible variable inside a nested block, shadowing the outer declaration with a fresh initializer.",
		muast.CatVariable, muast.Supervised, false, shadowVariableInBlock)

	reg("AddStaticToLocal",
		"This mutator adds the static storage class to a local variable declaration, giving it static storage duration.",
		muast.CatVariable, muast.Supervised, false, addStaticToLocal)

	reg("SwapVarDeclOrder",
		"This mutator swaps two adjacent local declaration statements when the second does not depend on the first.",
		muast.CatVariable, muast.Supervised, false, swapVarDeclOrder)
}

func renameVariable(m *muast.Manager) bool {
	cands := localVarDecls(m, false)
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	uses := m.UsesOf(vd)
	fresh := m.GenerateUniqueName(vd.Name)
	if !m.ReplaceRange(vd.NameRange, fresh) {
		return false
	}
	for _, u := range uses {
		m.ReplaceNode(u, fresh)
	}
	return true
}

func changeVarDeclQualifier(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, vd := range append(m.GlobalVars(), m.LocalVars(nil)...) {
		if vd.NameRange.Len() > 0 {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	// Removing const from a var that is never written is always safe;
	// adding const to a var that is written would not compile. Check uses.
	written := false
	pm := m.Parents()
	for _, u := range m.UsesOf(vd) {
		if parentRequiresLvalue(pm, u) {
			written = true
			break
		}
	}
	switch {
	case vd.Ty.Q&cast.QualConst != 0:
		// Drop the const keyword.
		loc := m.FindStrLocFrom(vd.Range().Begin, "const")
		if loc < 0 || loc >= vd.NameRange.Begin {
			return false
		}
		return m.ReplaceRange(cast.SourceRange{Begin: loc, End: loc + len("const")}, "")
	case !written && vd.Init != nil:
		return m.InsertBefore(vd, "const ")
	default:
		// volatile is always safe to add.
		if vd.Ty.Q&cast.QualVolatile != 0 {
			return false
		}
		return m.InsertBefore(vd, "volatile ")
	}
}

func switchInitExpr(m *muast.Manager) bool {
	byFn := map[*cast.FunctionDecl][]*cast.VarDecl{}
	pm := m.Parents()
	for _, vd := range localVarDecls(m, true) {
		if fn := pm.EnclosingFunction(vd); fn != nil {
			byFn[fn] = append(byFn[fn], vd)
		}
	}
	var pairs [][2]*cast.VarDecl
	for _, vds := range byFn {
		for i := 0; i < len(vds); i++ {
			for j := i + 1; j < len(vds); j++ {
				a, b := vds[i], vds[j]
				first := a
				if b.Range().Begin < first.Range().Begin {
					first = b
				}
				// Both inits must only reference declarations visible
				// before the FIRST of the two decls, or the swap moves a
				// use above its declaration.
				if m.CheckAssignment(a.Ty, b.Init.Type()) &&
					m.CheckAssignment(b.Ty, a.Init.Type()) &&
					m.IsSideEffectFree(a.Init) && m.IsSideEffectFree(b.Init) &&
					initRefsVisibleBefore(a.Init, first) &&
					initRefsVisibleBefore(b.Init, first) {
					pairs = append(pairs, [2]*cast.VarDecl{a, b})
				}
			}
		}
	}
	if len(pairs) == 0 {
		return false
	}
	p := muast.RandElement(m, pairs)
	ta, tb := m.GetSourceText(p[0].Init), m.GetSourceText(p[1].Init)
	return m.ReplaceNode(p[0].Init, tb) && m.ReplaceNode(p[1].Init, ta)
}

// initRefsVisibleBefore reports whether every local variable referenced
// by e is declared strictly before decl's own position (globals,
// parameters and enum constants are always visible).
func initRefsVisibleBefore(e cast.Expr, decl *cast.VarDecl) bool {
	ok := true
	cast.Walk(e, func(n cast.Node) bool {
		dr, isRef := n.(*cast.DeclRefExpr)
		if !isRef {
			return ok
		}
		if vd, isVar := dr.Ref.(*cast.VarDecl); isVar && !vd.IsGlobal {
			if vd.Range().End > decl.Range().Begin {
				ok = false
			}
		}
		return ok
	})
	return ok
}

func removeVarInitializer(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	pm := m.Parents()
	for _, vd := range localVarDecls(m, true) {
		// Removing a const var's initializer leaves it unusable; skip.
		if vd.Ty.Q&cast.QualConst != 0 {
			continue
		}
		// Keep loop-init declarations intact ("for (int i = 0;...)").
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		cands = append(cands, vd)
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	r := cast.SourceRange{Begin: vd.NameRange.End, End: vd.InitRange.End}
	return m.ReplaceRange(r, "")
}

func duplicateVarDecl(m *muast.Manager) bool {
	cands := localVarDecls(m, true)
	var filtered []*cast.VarDecl
	pm := m.Parents()
	for _, vd := range cands {
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		if m.IsSideEffectFree(vd.Init) {
			filtered = append(filtered, vd)
		}
	}
	if len(filtered) == 0 {
		return false
	}
	vd := muast.RandElement(m, filtered)
	ds := declStmtFor(m, vd)
	if ds == nil {
		return false
	}
	fresh := m.GenerateUniqueName(vd.Name)
	decl := m.FormatAsDecl(vd.Ty, fresh) + " = " + m.GetSourceText(vd.Init) + ";"
	return m.InsertAfter(ds, "\n"+m.IndentOf(ds.Range().Begin)+decl)
}

func promoteLocalToGlobal(m *muast.Manager) bool {
	pm := m.Parents()
	var cands []*cast.VarDecl
	for _, vd := range localVarDecls(m, false) {
		if vd.Storage != cast.StorageNone {
			continue
		}
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		// Initializer must be a constant for file scope.
		if vd.Init != nil {
			if !isConstInit(vd.Init) {
				continue
			}
		}
		if !simpleScalar(vd.Ty) && !vd.Ty.IsArray() {
			continue
		}
		ds := declStmtFor(m, vd)
		if ds == nil || len(ds.Decls) != 1 {
			continue
		}
		// The name must not collide with an existing global.
		clash := false
		for _, g := range m.GlobalVars() {
			if g.Name == vd.Name {
				clash = true
				break
			}
		}
		if !clash {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	ds := declStmtFor(m, vd)
	text := m.GetSourceText(ds)
	if !m.ReplaceNode(ds, ";") {
		return false
	}
	fn := pm.EnclosingFunction(vd)
	return m.InsertBefore(fn, text+"\n")
}

// isConstInit reports whether e is a compile-time constant initializer.
func isConstInit(e cast.Expr) bool {
	ok := true
	cast.Walk(e, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.IntegerLiteral, *cast.FloatingLiteral, *cast.CharLiteral,
			*cast.StringLiteral, *cast.ParenExpr, *cast.UnaryOperator,
			*cast.BinaryOperator, *cast.InitListExpr, *cast.SizeofExpr:
			return true
		case *cast.DeclRefExpr:
			if _, isEnum := n.(*cast.DeclRefExpr).Ref.(*cast.EnumConstantDecl); isEnum {
				return true
			}
			ok = false
			return false
		default:
			ok = false
			return false
		}
	})
	return ok
}

func demoteGlobalToLocal(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, g := range m.GlobalVars() {
		if simpleScalar(g.Ty) && g.Ty.Q == 0 {
			cands = append(cands, g)
		}
	}
	fns := m.Functions()
	if len(cands) == 0 || len(fns) == 0 {
		return false
	}
	g := muast.RandElement(m, cands)
	fn := muast.RandElement(m, fns)
	if len(fn.Body.Stmts) == 0 {
		return false
	}
	decl := m.FormatAsDecl(g.Ty, g.Name) + " = " + m.DefaultValueExpr(g.Ty) + ";"
	first := fn.Body.Stmts[0]
	return m.InsertBefore(first, decl+"\n"+m.IndentOf(first.Range().Begin))
}

func changeParamScope(m *muast.Manager) bool {
	type inst struct {
		fn *cast.FunctionDecl
		pv *cast.ParmVarDecl
	}
	var cands []inst
	for _, fn := range m.Functions() {
		if len(m.CallsTo(fn)) > 0 {
			continue // callers would pass a now-removed argument
		}
		for _, pv := range fn.Params {
			if pv.Name != "" && simpleScalar(pv.Ty) {
				cands = append(cands, inst{fn, pv})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	if !m.RemoveParmFromFuncDecl(c.fn, c.pv) {
		return false
	}
	if len(c.fn.Body.Stmts) == 0 {
		return m.InsertBefore(c.fn.Body, fmt.Sprintf("{ %s = %s; }",
			m.FormatAsDecl(c.pv.Ty, c.pv.Name), m.DefaultValueExpr(c.pv.Ty)))
	}
	first := c.fn.Body.Stmts[0]
	decl := fmt.Sprintf("%s = %s;", m.FormatAsDecl(c.pv.Ty, c.pv.Name),
		m.DefaultValueExpr(c.pv.Ty))
	return m.InsertBefore(first, decl+"\n"+m.IndentOf(first.Range().Begin))
}

func aggregateMemberToScalarVariable(m *muast.Manager) bool {
	pm := m.Parents()
	var cands []*cast.ArraySubscriptExpr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ase, ok := n.(*cast.ArraySubscriptExpr)
			if !ok {
				return true
			}
			if !simpleScalar(ase.Type()) {
				return true
			}
			// Only direct global-array bases keep the rewrite well-typed.
			dr, ok := ase.Base.(*cast.DeclRefExpr)
			if !ok {
				return true
			}
			if vd, ok := dr.Ref.(*cast.VarDecl); !ok || !vd.IsGlobal {
				return true
			}
			cands = append(cands, ase)
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ase := muast.RandElement(m, cands)
	name := m.GenerateUniqueName(ase.Base.(*cast.DeclRefExpr).Name + "_elem")
	if !m.ReplaceNode(ase, name) {
		return false
	}
	fn := pm.EnclosingFunction(ase)
	decl := m.FormatAsDecl(ase.Type().Unqualified(), name) + ";"
	return m.InsertBefore(fn, decl+"\n")
}

func combineVariable(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, g := range m.GlobalVars() {
		if g.Init == nil && simpleScalar(g.Ty) && g.Ty.Q == 0 &&
			g.Ty.Size() > 0 && g.Ty.Size() <= 8 {
			cands = append(cands, g)
		}
	}
	if len(cands) == 0 {
		return false
	}
	g := muast.RandElement(m, cands)
	combined := m.GenerateUniqueName("combinedVar")
	uses := m.UsesOf(g)
	castTy := typeSpellingForCast(g.Ty)
	for _, u := range uses {
		repl := fmt.Sprintf("(*(%s *)((char *)&%s + 0))", castTy, combined)
		if !m.ReplaceNode(u, repl) {
			return false
		}
	}
	return m.ReplaceNode(g, "long long "+combined+";")
}

func splitVarDecl(m *muast.Manager) bool {
	pm := m.Parents()
	var cands []*cast.VarDecl
	for _, vd := range localVarDecls(m, true) {
		if vd.Ty.Q&cast.QualConst != 0 || vd.Ty.IsArray() || vd.Ty.IsRecord() {
			continue
		}
		if _, isList := vd.Init.(*cast.InitListExpr); isList {
			continue
		}
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		ds := declStmtFor(m, vd)
		if ds != nil && len(ds.Decls) == 1 {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	ds := declStmtFor(m, vd)
	initTxt := m.GetSourceText(vd.Init)
	decl := m.FormatAsDecl(vd.Ty, vd.Name) + ";"
	assign := fmt.Sprintf("%s = %s;", vd.Name, initTxt)
	return m.ReplaceNode(ds, decl+"\n"+m.IndentOf(ds.Range().Begin)+assign)
}

func initializeUninitializedVar(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, vd := range localVarDecls(m, false) {
		if vd.Init == nil && simpleScalar(vd.Ty) && vd.NameRange.Len() > 0 {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	return m.InsertAfter(nodeRange(vd.NameRange), " = "+m.DefaultValueExpr(vd.Ty))
}

// nodeRange adapts a bare SourceRange to the Node interface for the
// Insert* helpers.
type rangeNode struct{ r cast.SourceRange }

func (rn rangeNode) Kind() cast.NodeKind     { return cast.KindTranslationUnit }
func (rn rangeNode) Range() cast.SourceRange { return rn.r }
func nodeRange(r cast.SourceRange) cast.Node { return rangeNode{r} }

func varToArray(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	pm := m.Parents()
	for _, vd := range localVarDecls(m, false) {
		if !simpleScalar(vd.Ty) || vd.Ty.Q != 0 || vd.NameRange.Len() == 0 {
			continue
		}
		if vd.Init != nil {
			if _, isList := vd.Init.(*cast.InitListExpr); isList {
				continue
			}
		}
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		cands = append(cands, vd)
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	if !m.InsertAfter(nodeRange(vd.NameRange), "[1]") {
		return false
	}
	if vd.Init != nil {
		if !m.InsertBefore(vd.Init, "{ ") || !m.InsertAfter(vd.Init, " }") {
			return false
		}
	}
	for _, u := range m.UsesOf(vd) {
		if !m.InsertAfter(u, "[0]") {
			return false
		}
	}
	return true
}

func shadowVariableInBlock(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		vd    *cast.VarDecl
		block *cast.CompoundStmt
	}
	var cands []inst
	for _, vd := range localVarDecls(m, false) {
		if !simpleScalar(vd.Ty) || vd.Ty.Q != 0 {
			continue
		}
		// Find compound blocks nested inside the var's scope.
		fn := pm.EnclosingFunction(vd)
		if fn == nil {
			continue
		}
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if cs, ok := n.(*cast.CompoundStmt); ok && cs != fn.Body &&
				cs.Range().Begin > vd.Range().End && len(cs.Stmts) > 0 {
				cands = append(cands, inst{vd, cs})
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	first := c.block.Stmts[0]
	decl := fmt.Sprintf("%s = %s;", m.FormatAsDecl(c.vd.Ty, c.vd.Name),
		m.DefaultValueExpr(c.vd.Ty))
	return m.InsertBefore(first, decl+"\n"+m.IndentOf(first.Range().Begin))
}

func addStaticToLocal(m *muast.Manager) bool {
	pm := m.Parents()
	var cands []*cast.VarDecl
	for _, vd := range localVarDecls(m, false) {
		if vd.Storage != cast.StorageNone {
			continue
		}
		if vd.Init != nil && !isConstInit(vd.Init) {
			continue // static initializers must be constant
		}
		if _, inFor := pm[pm[vd]].(*cast.ForStmt); inFor {
			continue
		}
		cands = append(cands, vd)
	}
	if len(cands) == 0 {
		return false
	}
	return m.InsertBefore(muast.RandElement(m, cands), "static ")
}

func swapVarDeclOrder(m *muast.Manager) bool {
	type pair struct{ a, b cast.Stmt }
	var cands []pair
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			cs, ok := n.(*cast.CompoundStmt)
			if !ok {
				return true
			}
			for i := 0; i+1 < len(cs.Stmts); i++ {
				d1, ok1 := cs.Stmts[i].(*cast.DeclStmt)
				d2, ok2 := cs.Stmts[i+1].(*cast.DeclStmt)
				if !ok1 || !ok2 {
					continue
				}
				if declStmtDependsOn(d2, d1) || declStmtDependsOn(d1, d2) {
					continue
				}
				cands = append(cands, pair{d1, d2})
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	p := muast.RandElement(m, cands)
	ta, tb := m.GetSourceText(p.a), m.GetSourceText(p.b)
	return m.ReplaceNode(p.a, tb) && m.ReplaceNode(p.b, ta)
}

// declStmtDependsOn reports whether any initializer in a references a
// declaration in b.
func declStmtDependsOn(a, b *cast.DeclStmt) bool {
	decls := map[cast.Decl]bool{}
	for _, d := range b.Decls {
		decls[d] = true
	}
	dep := false
	cast.Walk(a, func(n cast.Node) bool {
		if dr, ok := n.(*cast.DeclRefExpr); ok && dr.Ref != nil && decls[dr.Ref] {
			dep = true
		}
		return !dep
	})
	return dep
}
