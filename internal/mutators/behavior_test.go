package mutators

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// applyOn applies the named mutator to src with the given seed and
// returns the mutant; it fails the test when the mutator does not apply.
func applyOn(t *testing.T, name, src string, seed int64) string {
	t.Helper()
	mu, ok := muast.Lookup(name)
	if !ok {
		t.Fatalf("mutator %s not registered", name)
	}
	mgr, err := muast.NewManager(src, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	mutant, applied := mu.Apply(src, mgr)
	if !applied {
		t.Fatalf("%s did not apply to fixture", name)
	}
	return mutant
}

// tryApply is applyOn without the must-apply requirement.
func tryApply(t *testing.T, name, src string, seed int64) (string, bool) {
	t.Helper()
	mu, ok := muast.Lookup(name)
	if !ok {
		t.Fatalf("mutator %s not registered", name)
	}
	mgr, err := muast.NewManager(src, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return mu.Apply(src, mgr)
}

// TestRet2VBehavior replays the paper's Figure 3-5 walkthrough: the
// return type becomes void, the return statements disappear, and the
// call-site use is replaced by a constant.
func TestRet2VBehavior(t *testing.T) {
	src := `
unsigned foo(int x, int y) {
    if (x > y) goto gt;
    return 0x01234567;
gt:
    return 0x12345678;
}
int main(void) {
    int r = (int)foo(1, 2);
    return r;
}
`
	out := applyOn(t, "ModifyFunctionReturnTypeToVoid", src, 1)
	if !strings.Contains(out, "void foo") {
		t.Errorf("return type not rewritten to void:\n%s", out)
	}
	if strings.Contains(out, "return 0x01234567") ||
		strings.Contains(out, "return 0x12345678") {
		t.Errorf("return statements survived:\n%s", out)
	}
	if strings.Contains(out, "foo(1, 2)") && !strings.Contains(out, "= 0") {
		t.Errorf("call-site result use not replaced:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("Ret2V mutant invalid: %v\n%s", err, out)
	}
}

func TestSwitchInitExprSwapsInits(t *testing.T) {
	src := `
int main(void) {
    int a = 11;
    int b = 22;
    return a + b;
}
`
	out := applyOn(t, "SwitchInitExpr", src, 1)
	if !strings.Contains(out, "a = 22") || !strings.Contains(out, "b = 11") {
		t.Errorf("initializers not swapped:\n%s", out)
	}
}

func TestInverseUnaryOperatorForms(t *testing.T) {
	src := `
int main(void) {
    int a = 5;
    int m = -a;
    return m;
}
`
	out := applyOn(t, "InverseUnaryOperator", src, 1)
	if !strings.Contains(out, "-(-(") {
		t.Errorf("-a not inverted to -(-a):\n%s", out)
	}
	src2 := `
int main(void) {
    int a = 5;
    int n = !a;
    return n;
}
`
	out2 := applyOn(t, "InverseUnaryOperator", src2, 1)
	if !strings.Contains(out2, "!!") {
		t.Errorf("!a not inverted to !!a:\n%s", out2)
	}
}

func TestDuplicateBranchCopiesOneArm(t *testing.T) {
	src := `
int main(void) {
    int x = 3;
    if (x > 1) { x = 100; } else { x = 200; }
    return x;
}
`
	out := applyOn(t, "DuplicateBranch", src, 1)
	c100 := strings.Count(out, "x = 100")
	c200 := strings.Count(out, "x = 200")
	if !(c100 == 2 && c200 == 0) && !(c100 == 0 && c200 == 2) {
		t.Errorf("branches not duplicated (100s=%d, 200s=%d):\n%s", c100, c200, out)
	}
}

func TestTransformSwitchToIfElse(t *testing.T) {
	src := `
int classify(int v) {
    int out = 0;
    switch (v) {
    case 0: out = 10; break;
    case 1: out = 20; break;
    default: out = 30; break;
    }
    return out;
}
int main(void) { return classify(1); }
`
	out := applyOn(t, "TransformSwitchToIfElse", src, 1)
	if strings.Contains(out, "switch") {
		t.Errorf("switch survived:\n%s", out)
	}
	if strings.Count(out, "if (") < 2 || !strings.Contains(out, "else") {
		t.Errorf("no if-else chain emitted:\n%s", out)
	}
	for _, frag := range []string{"out = 10", "out = 20", "out = 30"} {
		if !strings.Contains(out, frag) {
			t.Errorf("arm %q lost:\n%s", frag, out)
		}
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("if-else mutant invalid: %v\n%s", err, out)
	}
}

func TestExpandCompoundAssignment(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    a += 5;
    return a;
}
`
	out := applyOn(t, "ExpandCompoundAssignment", src, 1)
	if !strings.Contains(out, "a = a + (5)") {
		t.Errorf("a += 5 not expanded:\n%s", out)
	}
}

func TestContractToCompoundAssignment(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    a = a + 5;
    return a;
}
`
	out := applyOn(t, "ContractToCompoundAssignment", src, 1)
	if !strings.Contains(out, "a += 5") {
		t.Errorf("a = a + 5 not contracted:\n%s", out)
	}
}

func TestApplyDeMorgan(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    int b = 0;
    if (a && b) { return 1; }
    return 0;
}
`
	out := applyOn(t, "ApplyDeMorgan", src, 1)
	if !strings.Contains(out, "!(!(") || !strings.Contains(out, "||") {
		t.Errorf("De Morgan not applied:\n%s", out)
	}
}

func TestStrengthReduceMul(t *testing.T) {
	src := `
int main(void) {
    int x = 3;
    int y = x * 8;
    return y;
}
`
	out := applyOn(t, "StrengthReduceMul", src, 1)
	if !strings.Contains(out, "<< 3") {
		t.Errorf("x * 8 not reduced to shift:\n%s", out)
	}
}

func TestReplaceSubscriptWithDeref(t *testing.T) {
	src := `
int a[4];
int main(void) {
    a[2] = 7;
    return a[2];
}
`
	out := applyOn(t, "ReplaceSubscriptWithDeref", src, 1)
	if !strings.Contains(out, "*((a) + (2))") {
		t.Errorf("subscript not rewritten:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("deref mutant invalid: %v\n%s", err, out)
	}
}

func TestSwapSubscriptBaseStaysValid(t *testing.T) {
	src := `
int a[4];
int main(void) {
    return a[2];
}
`
	out := applyOn(t, "SwapSubscriptBase", src, 1)
	if !strings.Contains(out, "(2)[a]") {
		t.Errorf("a[2] not commuted to 2[a]:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("commuted subscript invalid: %v\n%s", err, out)
	}
}

func TestRemoveFunctionParameterUpdatesCallSites(t *testing.T) {
	src := `
int f(int used, int unused) { return used; }
int main(void) { return f(1, 2); }
`
	out := applyOn(t, "RemoveFunctionParameter", src, 1)
	if strings.Contains(out, "unused") {
		t.Errorf("unused parameter survived:\n%s", out)
	}
	if !strings.Contains(out, "f(1)") {
		t.Errorf("call site not updated:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestAddFunctionParameterUpdatesCallSites(t *testing.T) {
	src := `
int f(int a) { return a; }
int main(void) { return f(1) + f(2); }
`
	out := applyOn(t, "AddFunctionParameter", src, 1)
	re := regexp.MustCompile(`f\(1, 0\)`)
	if !re.MatchString(out) {
		t.Errorf("call sites not extended with default arg:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestRenameFunctionRenamesUses(t *testing.T) {
	src := `
int helper(int a) { return a; }
int main(void) { return helper(1) + helper(2); }
`
	out := applyOn(t, "RenameFunction", src, 1)
	if strings.Contains(out, "helper(1)") {
		t.Errorf("call sites kept the old name:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestChangeParamScopeMovesParameter(t *testing.T) {
	src := `
void f(int n) {
    while (n > 0) { n--; }
}
int main(void) { return 0; }
`
	out := applyOn(t, "ChangeParamScope", src, 1)
	if !strings.Contains(out, "f(void)") && !strings.Contains(out, "f()") {
		t.Errorf("parameter not removed from signature:\n%s", out)
	}
	if !strings.Contains(out, "int n = 0;") {
		t.Errorf("local declaration with default init missing:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestDecaySmallStruct(t *testing.T) {
	src := `
struct s2 { int a; int b; };
int main(void) {
    struct s2 v;
    v.a = 1;
    v.b = 2;
    return v.a + v.b;
}
`
	out := applyOn(t, "DecaySmallStruct", src, 1)
	if !strings.Contains(out, "long long combinedVar") {
		t.Errorf("combined storage missing:\n%s", out)
	}
	if !strings.Contains(out, "(char *)&combinedVar") {
		t.Errorf("member access not rewritten to pointer arithmetic:\n%s", out)
	}
	if !strings.Contains(out, "+ 4") {
		t.Errorf("second field's offset missing:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestStructToIntRequiresUnusedVar(t *testing.T) {
	used := `
struct s { int a; };
int main(void) {
    struct s v;
    v.a = 1;
    return v.a;
}
`
	if _, ok := tryApply(t, "StructToInt", used, 1); ok {
		t.Error("StructToInt applied to a used struct variable")
	}
	unused := `
struct s { int a; };
int main(void) {
    struct s v;
    return 0;
}
`
	out, ok := tryApply(t, "StructToInt", unused, 1)
	if !ok {
		t.Fatal("StructToInt did not apply to unused struct variable")
	}
	if !strings.Contains(out, "int v;") {
		t.Errorf("type not rewritten:\n%s", out)
	}
}

func TestSimpleUninlinerOutlinesStatement(t *testing.T) {
	src := `
int g0;
int seven(void) { return 7; }
int main(void) {
    g0 = seven();
    return g0;
}
`
	out := applyOn(t, "SimpleUninliner", src, 1)
	if !strings.Contains(out, "static void uninlined") {
		t.Errorf("no helper emitted:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestForToWhilePreservesPieces(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 5; i++) { s += i; }
    return s;
}
`
	out := applyOn(t, "ForToWhile", src, 1)
	if strings.Contains(out, "for (") {
		t.Errorf("for loop survived:\n%s", out)
	}
	for _, frag := range []string{"while (i < 5)", "i = 0", "i++", "s += i"} {
		if !strings.Contains(out, frag) {
			t.Errorf("piece %q lost:\n%s", frag, out)
		}
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestMergeNestedIf(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    int b = 2;
    if (a > 0) { if (b > 1) { return 9; } }
    return 0;
}
`
	out := applyOn(t, "MergeNestedIf", src, 1)
	if !strings.Contains(out, "&&") {
		t.Errorf("conditions not conjoined:\n%s", out)
	}
	if strings.Count(out, "if (") != 1 {
		t.Errorf("nested ifs survived:\n%s", out)
	}
}

func TestCaseFallthroughToggleRemovesBreak(t *testing.T) {
	src := `
int main(void) {
    int x = 1;
    switch (x) {
    case 0: x = 10; break;
    case 1: x = 20; break;
    default: x = 30; break;
    }
    return x;
}
`
	out := applyOn(t, "CaseFallthroughToggle", src, 1)
	if strings.Count(out, "break;") >= strings.Count(src, "break;") {
		t.Errorf("no break removed:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestConditionAlwaysFalseNeutralizesBranch(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    if (a > 0) { a = 2; }
    return a;
}
`
	out := applyOn(t, "ConditionAlwaysFalse", src, 1)
	if !strings.Contains(out, "&& 0") {
		t.Errorf("condition not strengthened:\n%s", out)
	}
}

func TestMakeParamsConstOnlyReadOnly(t *testing.T) {
	src := `
int f(int readOnly, int mutated) {
    mutated = mutated + 1;
    return readOnly + mutated;
}
int main(void) { return f(1, 2); }
`
	out := applyOn(t, "MakeParamsConst", src, 1)
	if !strings.Contains(out, "const int readOnly") {
		t.Errorf("read-only parameter not const-qualified:\n%s", out)
	}
	if strings.Contains(out, "const int mutated") {
		t.Errorf("written parameter const-qualified:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestVarToArrayRewritesUses(t *testing.T) {
	src := `
int main(void) {
    int v = 5;
    v = v + 1;
    return v;
}
`
	out := applyOn(t, "VarToArray", src, 1)
	if !strings.Contains(out, "v[1]") || !strings.Contains(out, "v[0]") {
		t.Errorf("array conversion incomplete:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestInsertForwardGotoIsWellFormed(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    a = a + 1;
    return a;
}
`
	out := applyOn(t, "InsertForwardGoto", src, 1)
	if !strings.Contains(out, "goto skip") || !strings.Contains(out, "skip_") {
		t.Errorf("forward goto not inserted:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestChangeBinaryOperatorTypeSafety(t *testing.T) {
	// With doubles in play, only float-compatible replacements may be
	// chosen — never % or shifts.
	src := `
int main(void) {
    double d = 1.5;
    double e = d + 2.5;
    return (int)e;
}
`
	for seed := int64(0); seed < 20; seed++ {
		out, ok := tryApply(t, "ChangeBinaryOperator", src, seed)
		if !ok {
			continue
		}
		if _, err := cast.ParseAndCheck(out); err != nil {
			t.Fatalf("seed %d produced invalid operator swap: %v\n%s",
				seed, err, out)
		}
	}
}

func TestRemoveElseBranch(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    if (a > 0) { a = 2; } else { a = 3; }
    return a;
}
`
	out := applyOn(t, "RemoveElseBranch", src, 1)
	if strings.Contains(out, "else") || strings.Contains(out, "a = 3") {
		t.Errorf("else branch survived:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestCombineVariableRewritesAllUses(t *testing.T) {
	src := `
int gx;
int main(void) {
    gx = 4;
    return gx + 1;
}
`
	out := applyOn(t, "CombineVariable", src, 1)
	if !strings.Contains(out, "long long combinedVar") {
		t.Errorf("combined variable missing:\n%s", out)
	}
	if regexp.MustCompile(`\bgx\b`).MatchString(out) {
		t.Errorf("raw reference to combined variable survived:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}

func TestHoistDeclToTop(t *testing.T) {
	src := `
int main(void) {
    int a = 1;
    a = a + 1;
    int late = a * 2;
    return late;
}
`
	out := applyOn(t, "HoistDeclToTop", src, 1)
	declPos := strings.Index(out, "int late;")
	assignPos := strings.Index(out, "late = a * 2;")
	if declPos < 0 || assignPos < 0 || declPos > assignPos {
		t.Errorf("declaration not hoisted above its assignment:\n%s", out)
	}
	if _, err := cast.ParseAndCheck(out); err != nil {
		t.Fatalf("mutant invalid: %v\n%s", err, out)
	}
}
