// Package mutators contains the 118 semantic-aware mutation operators the
// paper reports (Section 4.1): 68 supervised (M_s) and 50 unsupervised
// (M_u), split by target structure into Variable (16), Expression (50),
// Statement (27), Function (19) and Type (6) mutators. Each mutator is
// implemented against the μAST API (internal/muast) exactly as the
// LLM-synthesized C++ implementations are written against the paper's
// Mutator class: traverse, collect instances, select one at random, check
// validity, rewrite.
//
// Importing this package (often blank-imported) populates the muast
// registry.
package mutators

import (
	"fmt"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// Counts per category as reported in the paper; verified by tests.
const (
	WantVariable   = 16
	WantExpression = 50
	WantStatement  = 27
	WantFunction   = 19
	WantType       = 6
	WantSupervised = 68
	WantTotal      = 118
)

// reg is shorthand for registration within this package.
func reg(name, desc string, cat muast.Category, set muast.Set, creative bool, fn muast.MutateFunc) {
	muast.Register(muast.Info{
		Name: name, Description: desc, Category: cat, Set: set,
		Creative: creative, Fn: fn,
	})
}

// ---------------------------------------------------------------------
// Shared collection helpers
// ---------------------------------------------------------------------

// mutableIntExprs returns side-effect-free integer-typed expressions that
// sit in ordinary expression positions (excluding case labels, global
// initializers and array dimensions, which require constant expressions).
func mutableIntExprs(m *muast.Manager) []cast.Expr {
	pm := m.Parents()
	var out []cast.Expr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			// Do not descend into contexts requiring constants.
			switch n.(type) {
			case *cast.CaseStmt:
				return false
			}
			e, ok := n.(cast.Expr)
			if !ok {
				return true
			}
			if !e.Type().IsInteger() || !m.IsSideEffectFree(e) {
				return true
			}
			// Skip lvalues in assignment/&-operand position.
			if parentRequiresLvalue(pm, e) {
				return true
			}
			out = append(out, e)
			return true
		})
	}
	return out
}

// parentRequiresLvalue reports whether e is used in a position that needs
// an lvalue (assignment LHS, ++/--, address-of).
func parentRequiresLvalue(pm cast.ParentMap, e cast.Expr) bool {
	parent := pm[e]
	switch p := parent.(type) {
	case *cast.BinaryOperator:
		return p.Op.IsAssignment() && p.LHS == e
	case *cast.UnaryOperator:
		switch p.Op {
		case cast.UnAddr, cast.UnPreInc, cast.UnPreDec, cast.UnPostInc, cast.UnPostDec:
			return true
		}
	case *cast.ParenExpr:
		return parentRequiresLvalue(pm, p)
	}
	return false
}

// intLiterals returns integer literals outside constant-only contexts.
func intLiterals(m *muast.Manager) []*cast.IntegerLiteral {
	pm := m.Parents()
	var out []*cast.IntegerLiteral
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if _, isCase := n.(*cast.CaseStmt); isCase {
				return false
			}
			if il, ok := n.(*cast.IntegerLiteral); ok {
				if !inConstantContext(pm, il) {
					out = append(out, il)
				}
			}
			return true
		})
	}
	return out
}

// inConstantContext reports whether n sits where C requires an
// integer-constant expression (case labels, enum values, array bounds).
func inConstantContext(pm cast.ParentMap, n cast.Node) bool {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		switch cur.(type) {
		case *cast.CaseStmt, *cast.EnumConstantDecl:
			return true
		case *cast.CompoundStmt, *cast.FunctionDecl:
			return false
		}
	}
	return false
}

// binaryOps returns binary operators under function bodies matching pred.
func binaryOps(m *muast.Manager, pred func(*cast.BinaryOperator) bool) []*cast.BinaryOperator {
	var out []*cast.BinaryOperator
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if bo, ok := n.(*cast.BinaryOperator); ok && (pred == nil || pred(bo)) {
				out = append(out, bo)
			}
			return true
		})
	}
	return out
}

// localVarDecls returns local variable declarations with simple scalar
// types, optionally requiring an initializer.
func localVarDecls(m *muast.Manager, needInit bool) []*cast.VarDecl {
	var out []*cast.VarDecl
	for _, vd := range m.LocalVars(nil) {
		if vd.Name == "" {
			continue
		}
		if needInit && vd.Init == nil {
			continue
		}
		out = append(out, vd)
	}
	return out
}

// declStmtFor finds the DeclStmt containing vd.
func declStmtFor(m *muast.Manager, vd *cast.VarDecl) *cast.DeclStmt {
	pm := m.Parents()
	if ds, ok := pm[vd].(*cast.DeclStmt); ok {
		return ds
	}
	return nil
}

// bodyStmts returns statements directly inside compound blocks of all
// functions (not nested expressions), matching pred.
func bodyStmts(m *muast.Manager, pred func(cast.Stmt) bool) []cast.Stmt {
	var out []cast.Stmt
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if cs, ok := n.(*cast.CompoundStmt); ok {
				for _, s := range cs.Stmts {
					if pred == nil || pred(s) {
						out = append(out, s)
					}
				}
			}
			return true
		})
	}
	return out
}

// fmtStmt renders text for insertion next to an existing statement.
func fmtStmt(m *muast.Manager, anchor cast.Node, text string) string {
	return text + "\n" + m.IndentOf(anchor.Range().Begin)
}

// typeSpellingForCast renders a type usable inside a cast expression.
func typeSpellingForCast(t cast.QualType) string {
	return t.Unqualified().CString()
}

// simpleScalar reports whether t is a basic arithmetic (non-complex,
// non-void) type.
func simpleScalar(t cast.QualType) bool {
	k, ok := t.Basic()
	return ok && k != cast.Void && k != cast.ComplexDouble
}

// sameScalarType matches canonical basic kinds.
func sameScalarType(a, b cast.QualType) bool {
	ka, oka := a.Basic()
	kb, okb := b.Basic()
	return oka && okb && ka == kb
}

var _ = fmt.Sprintf
var _ = strings.Contains
