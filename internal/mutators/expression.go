package mutators

import (
	"fmt"
	"strings"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// The 50 Expression mutators.
func init() {
	reg("ModifyIntegerLiteral",
		"This mutator selects an IntegerLiteral and modifies its value by a small random delta.",
		muast.CatExpression, muast.Supervised, false, modifyIntegerLiteral)

	reg("ReplaceLiteralWithRandomValue",
		"This mutator replaces a randomly selected literal with a new random value of the same kind.",
		muast.CatExpression, muast.Unsupervised, false, replaceLiteralWithRandomValue)

	reg("NegateIntegerLiteral",
		"This mutator negates the value of a randomly selected integer literal.",
		muast.CatExpression, muast.Unsupervised, false, negateIntegerLiteral)

	reg("ReplaceIntegerLiteralWithBoundary",
		"This mutator replaces an integer literal with a type boundary value such as INT_MAX, INT_MIN, 0 or -1.",
		muast.CatExpression, muast.Supervised, false, replaceIntegerLiteralWithBoundary)

	reg("ModifyFloatLiteral",
		"This mutator perturbs a floating-point literal by scaling or offsetting its value.",
		muast.CatExpression, muast.Unsupervised, false, modifyFloatLiteral)

	reg("ChangeBinaryOperator",
		"This mutator replaces a binary operator with another operator that is applicable to the same operand types, verified via semantic checks.",
		muast.CatExpression, muast.Supervised, false, changeBinaryOperator)

	reg("SwapBinaryOperands",
		"This mutator swaps the left and right operands of a binary operator when both operands are side-effect free.",
		muast.CatExpression, muast.Supervised, false, swapBinaryOperands)

	reg("InverseUnaryOperator",
		"This mutator selects a unary operation (like unary minus or logical not) and inverses it. For instance, -a would become -(-a) and !a would become !!a.",
		muast.CatExpression, muast.Supervised, false, inverseUnaryOperator)

	reg("ChangeUnaryOperator",
		"This mutator replaces a prefix unary operator with a different applicable unary operator.",
		muast.CatExpression, muast.Unsupervised, false, changeUnaryOperator)

	reg("DuplicateConditionWithAnd",
		"This mutator duplicates a branch condition, combining the two copies with a logical AND.",
		muast.CatExpression, muast.Unsupervised, false, duplicateConditionWithAnd)

	reg("ExpandCompoundAssignment",
		"This mutator expands a compound assignment such as a += b into the equivalent a = a + b form.",
		muast.CatExpression, muast.Supervised, false, expandCompoundAssignment)

	reg("ContractToCompoundAssignment",
		"This mutator rewrites a = a + b into the compound assignment a += b.",
		muast.CatExpression, muast.Unsupervised, false, contractToCompoundAssignment)

	reg("AddIdentityOperation",
		"This mutator wraps an integer expression with an identity arithmetic operation such as + 0 or * 1.",
		muast.CatExpression, muast.Supervised, false, addIdentityOperation)

	reg("ApplyDeMorgan",
		"This mutator applies De Morgan's law to a logical expression, rewriting a && b into !(!a || !b) and a || b into !(!a && !b).",
		muast.CatExpression, muast.Supervised, false, applyDeMorgan)

	reg("NegateCondition",
		"This mutator negates the condition of an if statement or loop by wrapping it in a logical not.",
		muast.CatExpression, muast.Supervised, false, negateCondition)

	reg("CopyExpr",
		"This mutator replaces an expression with a copy of another type-compatible expression taken from elsewhere in the program.",
		muast.CatExpression, muast.Supervised, false, copyExpr)

	reg("ReplaceCallWithConstant",
		"This mutator replaces a function call expression with a default constant of the call's result type.",
		muast.CatExpression, muast.Unsupervised, false, replaceCallWithConstant)

	reg("WrapExprInConditional",
		"This mutator wraps an expression e into the conditional expression (1 ? e : e).",
		muast.CatExpression, muast.Supervised, false, wrapExprInConditional)

	reg("WrapExprInComma",
		"This mutator wraps an expression e into a comma expression (0, e), preserving its value.",
		muast.CatExpression, muast.Unsupervised, false, wrapExprInComma)

	reg("CastExprToSameType",
		"This mutator inserts a redundant cast of an expression to its own type.",
		muast.CatExpression, muast.Unsupervised, false, castExprToSameType)

	reg("CastExprToWiderType",
		"This mutator casts an integer expression to a wider integer type such as long long.",
		muast.CatExpression, muast.Supervised, false, castExprToWiderType)

	reg("StrengthReduceMul",
		"This mutator rewrites a multiplication by a power of two into an equivalent left shift.",
		muast.CatExpression, muast.Supervised, true, strengthReduceMul)

	reg("StrengthExpandShift",
		"This mutator rewrites a left shift by a constant into an equivalent multiplication.",
		muast.CatExpression, muast.Unsupervised, true, strengthExpandShift)

	reg("ReassociateArithmetic",
		"This mutator changes the association of a chain of additions or multiplications by inserting parentheses.",
		muast.CatExpression, muast.Supervised, false, reassociateArithmetic)

	reg("DistributeMultiplication",
		"This mutator distributes a multiplication over an addition, rewriting a * (b + c) into (a * b + a * c).",
		muast.CatExpression, muast.Unsupervised, false, distributeMultiplication)

	reg("ReplaceSubscriptWithDeref",
		"This mutator rewrites an array subscript a[i] into the equivalent pointer dereference *(a + (i)).",
		muast.CatExpression, muast.Supervised, false, replaceSubscriptWithDeref)

	reg("ReplaceDerefWithSubscript",
		"This mutator rewrites a pointer dereference *p into the equivalent subscript p[0].",
		muast.CatExpression, muast.Unsupervised, false, replaceDerefWithSubscript)

	reg("SwapSubscriptBase",
		"This mutator swaps the base and index of an array subscript, rewriting a[i] into i[a], which is valid C.",
		muast.CatExpression, muast.Unsupervised, true, swapSubscriptBase)

	reg("IncrementToAddAssign",
		"This mutator rewrites an increment or decrement statement into the equivalent compound assignment.",
		muast.CatExpression, muast.Unsupervised, false, incrementToAddAssign)

	reg("PreToPostIncrement",
		"This mutator converts a pre-increment or pre-decrement in statement position into its postfix form.",
		muast.CatExpression, muast.Unsupervised, false, preToPostIncrement)

	reg("FlattenConditionalExpr",
		"This mutator flattens a conditional expression by replacing one of its arms with the other.",
		muast.CatExpression, muast.Supervised, false, flattenConditionalExpr)

	reg("ReplaceArgWithDefault",
		"This mutator replaces one argument of a function call with a default value of the parameter's type.",
		muast.CatExpression, muast.Unsupervised, false, replaceArgWithDefault)

	reg("SwapCallArguments",
		"This mutator swaps two type-compatible arguments of a function call.",
		muast.CatExpression, muast.Supervised, false, swapCallArguments)

	reg("ExpandLogicalToBitwise",
		"This mutator rewrites a logical AND/OR of integer comparisons into a bitwise AND/OR of their normalized values.",
		muast.CatExpression, muast.Supervised, false, expandLogicalToBitwise)

	reg("BitwiseToLogical",
		"This mutator replaces a bitwise AND/OR of integer operands with the corresponding logical operator.",
		muast.CatExpression, muast.Unsupervised, false, bitwiseToLogical)

	reg("AddBitwiseNotTwice",
		"This mutator wraps an integer expression with a double bitwise negation ~~e.",
		muast.CatExpression, muast.Unsupervised, false, addBitwiseNotTwice)

	reg("AddNegationTwice",
		"This mutator wraps an arithmetic expression with a double arithmetic negation -(-e).",
		muast.CatExpression, muast.Supervised, false, addNegationTwice)

	reg("ComparisonToSubtraction",
		"This mutator rewrites an integer comparison a < b into the subtraction form (a - b) < 0.",
		muast.CatExpression, muast.Unsupervised, true, comparisonToSubtraction)

	reg("ExpandEqualityToRelational",
		"This mutator rewrites an equality a == b into the conjunction a <= b && a >= b.",
		muast.CatExpression, muast.Unsupervised, false, expandEqualityToRelational)

	reg("LiteralToCharLiteral",
		"This mutator replaces a small integer literal with an equivalent character literal.",
		muast.CatExpression, muast.Unsupervised, false, literalToCharLiteral)

	reg("IntLiteralToHex",
		"This mutator rewrites a decimal integer literal into its hexadecimal spelling.",
		muast.CatExpression, muast.Unsupervised, false, intLiteralToHex)

	reg("AddSizeofTerm",
		"This mutator adds a vanishing sizeof-based term, rewriting e into e + 0 * (int)sizeof(int).",
		muast.CatExpression, muast.Unsupervised, true, addSizeofTerm)

	reg("ReplaceWithSameScopeVariable",
		"This mutator replaces a variable reference with another type-compatible variable visible in the same function.",
		muast.CatExpression, muast.Unsupervised, false, replaceWithSameScopeVariable)

	reg("StringLiteralShrink",
		"This mutator truncates a string literal, shortening the data the program carries.",
		muast.CatExpression, muast.Unsupervised, false, stringLiteralShrink)

	reg("ConstantFoldExpr",
		"This mutator folds a constant integer subexpression into its computed value.",
		muast.CatExpression, muast.Unsupervised, true, constantFoldExpr)

	reg("UnfoldConstant",
		"This mutator unfolds an integer literal N into an equivalent expression (N - k + k) for a random k.",
		muast.CatExpression, muast.Unsupervised, true, unfoldConstant)

	reg("ConditionAlwaysTrue",
		"This mutator weakens a branch condition by appending a logical OR with 1, making the branch always taken.",
		muast.CatExpression, muast.Unsupervised, false, conditionAlwaysTrue)

	reg("ConditionAlwaysFalse",
		"This mutator strengthens a branch condition by appending a logical AND with 0, making the branch never taken.",
		muast.CatExpression, muast.Supervised, false, conditionAlwaysFalse)

	reg("ModifyArrayIndex",
		"This mutator offsets the index expression of an array subscript by a small constant.",
		muast.CatExpression, muast.Supervised, false, modifyArrayIndex)

	reg("ReplaceMemberWithOtherField",
		"This mutator replaces a struct member access with an access to a different field of the same type.",
		muast.CatExpression, muast.Supervised, false, replaceMemberWithOtherField)
}

func modifyIntegerLiteral(m *muast.Manager) bool {
	lits := intLiterals(m)
	if len(lits) == 0 {
		return false
	}
	il := muast.RandElement(m, lits)
	delta := int64(m.Rand().Intn(7) + 1)
	if m.RandBool(0.5) {
		delta = -delta
	}
	return m.ReplaceNode(il, fmt.Sprintf("%d", il.Value+delta))
}

func replaceLiteralWithRandomValue(m *muast.Manager) bool {
	lits := intLiterals(m)
	if len(lits) == 0 {
		return false
	}
	il := muast.RandElement(m, lits)
	return m.ReplaceNode(il, fmt.Sprintf("%d", m.Rand().Int63n(1<<16)-(1<<15)))
}

func negateIntegerLiteral(m *muast.Manager) bool {
	var nonZero []*cast.IntegerLiteral
	for _, il := range intLiterals(m) {
		if il.Value != 0 {
			nonZero = append(nonZero, il)
		}
	}
	if len(nonZero) == 0 {
		return false
	}
	il := muast.RandElement(m, nonZero)
	return m.ReplaceNode(il, fmt.Sprintf("(-%s)", il.Text))
}

func replaceIntegerLiteralWithBoundary(m *muast.Manager) bool {
	lits := intLiterals(m)
	if len(lits) == 0 {
		return false
	}
	il := muast.RandElement(m, lits)
	boundaries := []string{"2147483647", "(-2147483647 - 1)", "0", "(-1)",
		"65535", "255", "4294967295U"}
	repl := muast.RandElement(m, boundaries)
	if repl == il.Text {
		repl = "2147483647" // avoid a no-op replacement
	}
	return m.ReplaceNode(il, repl)
}

func modifyFloatLiteral(m *muast.Manager) bool {
	var lits []*cast.FloatingLiteral
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if fl, ok := n.(*cast.FloatingLiteral); ok {
				lits = append(lits, fl)
			}
			return true
		})
	}
	if len(lits) == 0 {
		return false
	}
	fl := muast.RandElement(m, lits)
	v := fl.Value*(1.0+m.Rand().Float64()) + 0.5
	return m.ReplaceNode(fl, fmt.Sprintf("%g", v))
}

// compatibleBinOps lists replacement candidates by operator family.
func compatibleBinOps(op cast.BinOp) []cast.BinOp {
	switch {
	case op.IsArithmetic():
		return []cast.BinOp{cast.BinAdd, cast.BinSub, cast.BinMul, cast.BinDiv, cast.BinRem}
	case op.IsComparison():
		return []cast.BinOp{cast.BinLT, cast.BinGT, cast.BinLE, cast.BinGE, cast.BinEQ, cast.BinNE}
	case op.IsBitwise():
		return []cast.BinOp{cast.BinAnd, cast.BinOr, cast.BinXor, cast.BinShl, cast.BinShr}
	case op.IsLogical():
		return []cast.BinOp{cast.BinLAnd, cast.BinLOr}
	}
	return nil
}

func changeBinaryOperator(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return !bo.Op.IsAssignment() && len(compatibleBinOps(bo.Op)) > 1
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	cands := compatibleBinOps(bo.Op)
	// Step 4: check mutation validity with the semantic checker.
	var valid []cast.BinOp
	for _, op := range cands {
		if op != bo.Op && m.CheckBinop(op, bo.LHS, bo.RHS) {
			valid = append(valid, op)
		}
	}
	if len(valid) == 0 {
		return false
	}
	op := muast.RandElement(m, valid)
	return m.ReplaceRange(bo.OpRange, op.String())
}

func swapBinaryOperands(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return !bo.Op.IsAssignment() &&
			m.IsSideEffectFree(bo.LHS) && m.IsSideEffectFree(bo.RHS) &&
			cast.CheckBinopTypes(bo.Op, bo.RHS.Type(), bo.LHS.Type())
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	lt, rt := m.GetSourceText(bo.LHS), m.GetSourceText(bo.RHS)
	return m.ReplaceNode(bo.LHS, "("+rt+")") && m.ReplaceNode(bo.RHS, "("+lt+")")
}

func inverseUnaryOperator(m *muast.Manager) bool {
	var cands []*cast.UnaryOperator
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if uo, ok := n.(*cast.UnaryOperator); ok {
				if uo.Op == cast.UnMinus || uo.Op == cast.UnLNot {
					cands = append(cands, uo)
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	uo := muast.RandElement(m, cands)
	txt := m.GetSourceText(uo)
	switch uo.Op {
	case cast.UnMinus:
		return m.ReplaceNode(uo, "-(-("+txt+"))")
	default: // UnLNot
		return m.ReplaceNode(uo, "!!("+txt+")")
	}
}

func changeUnaryOperator(m *muast.Manager) bool {
	var cands []*cast.UnaryOperator
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if uo, ok := n.(*cast.UnaryOperator); ok {
				switch uo.Op {
				case cast.UnMinus, cast.UnNot, cast.UnLNot:
					if uo.X.Type().IsInteger() {
						cands = append(cands, uo)
					}
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	uo := muast.RandElement(m, cands)
	repl := map[cast.UnOp][]string{
		cast.UnMinus: {"~", "!"},
		cast.UnNot:   {"-", "!"},
		cast.UnLNot:  {"-", "~"},
	}[uo.Op]
	inner := m.GetSourceText(uo.X)
	return m.ReplaceNode(uo, muast.RandElement(m, repl)+"("+inner+")")
}

// conditions returns the scalar condition expressions of ifs and loops.
func conditions(m *muast.Manager) []cast.Expr {
	var out []cast.Expr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			switch s := n.(type) {
			case *cast.IfStmt:
				out = append(out, s.Cond)
			case *cast.WhileStmt:
				out = append(out, s.Cond)
			case *cast.DoStmt:
				out = append(out, s.Cond)
			case *cast.ForStmt:
				if s.Cond != nil {
					out = append(out, s.Cond)
				}
			}
			return true
		})
	}
	return out
}

func duplicateConditionWithAnd(m *muast.Manager) bool {
	var cands []cast.Expr
	for _, c := range conditions(m) {
		if m.IsSideEffectFree(c) {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	txt := m.GetSourceText(c)
	return m.ReplaceNode(c, fmt.Sprintf("(%s) && (%s)", txt, txt))
}

func expandCompoundAssignment(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return bo.Op.IsAssignment() && bo.Op != cast.BinAssign &&
			m.IsSideEffectFree(bo.LHS)
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	lhs := m.GetSourceText(bo.LHS)
	rhs := m.GetSourceText(bo.RHS)
	base := strings.TrimSuffix(bo.Op.String(), "=")
	return m.ReplaceNode(bo, fmt.Sprintf("%s = %s %s (%s)", lhs, lhs, base, rhs))
}

func contractToCompoundAssignment(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op != cast.BinAssign {
			return false
		}
		rhs, ok := bo.RHS.(*cast.BinaryOperator)
		if !ok || !(rhs.Op.IsArithmetic() || rhs.Op.IsBitwise()) {
			return false
		}
		lhsRef, ok := bo.LHS.(*cast.DeclRefExpr)
		if !ok {
			return false
		}
		innerRef, ok := rhs.LHS.(*cast.DeclRefExpr)
		return ok && innerRef.Ref == lhsRef.Ref
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	rhs := bo.RHS.(*cast.BinaryOperator)
	return m.ReplaceNode(bo, fmt.Sprintf("%s %s= %s",
		m.GetSourceText(bo.LHS), rhs.Op, m.GetSourceText(rhs.RHS)))
}

func addIdentityOperation(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	txt := m.GetSourceText(e)
	forms := []string{"((%s) + 0)", "((%s) * 1)", "((%s) - 0)", "((%s) | 0)",
		"((%s) ^ 0)", "((%s) >> 0)"}
	return m.ReplaceNode(e, fmt.Sprintf(muast.RandElement(m, forms), txt))
}

func applyDeMorgan(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return bo.Op.IsLogical()
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	l, r := m.GetSourceText(bo.LHS), m.GetSourceText(bo.RHS)
	if bo.Op == cast.BinLAnd {
		return m.ReplaceNode(bo, fmt.Sprintf("!(!(%s) || !(%s))", l, r))
	}
	return m.ReplaceNode(bo, fmt.Sprintf("!(!(%s) && !(%s))", l, r))
}

func negateCondition(m *muast.Manager) bool {
	conds := conditions(m)
	if len(conds) == 0 {
		return false
	}
	c := muast.RandElement(m, conds)
	return m.ReplaceNode(c, "!("+m.GetSourceText(c)+")")
}

func copyExpr(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) < 2 {
		return false
	}
	dst := muast.RandElement(m, exprs)
	var srcs []cast.Expr
	pm := m.Parents()
	for _, e := range exprs {
		if e == dst {
			continue
		}
		// Source and destination must live in the same function so that
		// the copied text's references stay in scope.
		fn := pm.EnclosingFunction(e)
		if fn == nil || fn != pm.EnclosingFunction(dst) {
			continue
		}
		if !m.CheckAssignment(dst.Type(), e.Type()) {
			continue
		}
		// Every local the source references must be declared at the
		// function body's top level, before the destination — otherwise
		// the copy could move a use out of its scope.
		if !localsVisibleAt(m, fn, e, dst.Range().Begin) {
			continue
		}
		// Do not copy an enclosing expression into its own child.
		if e.Range().Contains(dst.Range()) || dst.Range().Contains(e.Range()) {
			continue
		}
		srcs = append(srcs, e)
	}
	if len(srcs) == 0 {
		return false
	}
	src := muast.RandElement(m, srcs)
	return m.ReplaceNode(dst, "("+m.GetSourceText(src)+")")
}

func replaceCallWithConstant(m *muast.Manager) bool {
	var cands []*cast.CallExpr
	pm := m.Parents()
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ce, ok := n.(*cast.CallExpr); ok {
				t := ce.Type()
				if !t.IsNil() && !t.IsVoid() && simpleScalar(t) {
					cands = append(cands, ce)
				} else if t.IsVoid() {
					// A void call in statement position can become a no-op.
					if _, isStmt := pm[ce].(*cast.ExprStmt); isStmt {
						cands = append(cands, ce)
					}
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ce := muast.RandElement(m, cands)
	if ce.Type().IsVoid() {
		return m.ReplaceNode(ce, "(void)0")
	}
	return m.ReplaceNode(ce, m.DefaultValueExpr(ce.Type()))
}

func wrapExprInConditional(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	txt := m.GetSourceText(e)
	return m.ReplaceNode(e, fmt.Sprintf("(1 ? (%s) : (%s))", txt, txt))
}

func wrapExprInComma(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	return m.ReplaceNode(e, fmt.Sprintf("((0, (%s)))", m.GetSourceText(e)))
}

func castExprToSameType(m *muast.Manager) bool {
	var cands []cast.Expr
	for _, e := range mutableIntExprs(m) {
		if simpleScalar(e.Type()) {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return false
	}
	e := muast.RandElement(m, cands)
	return m.ReplaceNode(e, fmt.Sprintf("((%s)(%s))",
		typeSpellingForCast(e.Type()), m.GetSourceText(e)))
}

func castExprToWiderType(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	wider := []string{"long", "long long", "unsigned long long"}
	return m.ReplaceNode(e, fmt.Sprintf("((%s)(%s))",
		muast.RandElement(m, wider), m.GetSourceText(e)))
}

func strengthReduceMul(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op != cast.BinMul || !bo.Type().IsInteger() {
			return false
		}
		il, ok := bo.RHS.(*cast.IntegerLiteral)
		return ok && il.Value > 0 && il.Value&(il.Value-1) == 0
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	il := bo.RHS.(*cast.IntegerLiteral)
	shift := 0
	for v := il.Value; v > 1; v >>= 1 {
		shift++
	}
	return m.ReplaceNode(bo, fmt.Sprintf("((%s) << %d)",
		m.GetSourceText(bo.LHS), shift))
}

func strengthExpandShift(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op != cast.BinShl {
			return false
		}
		il, ok := bo.RHS.(*cast.IntegerLiteral)
		return ok && il.Value >= 0 && il.Value < 31
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	il := bo.RHS.(*cast.IntegerLiteral)
	return m.ReplaceNode(bo, fmt.Sprintf("((%s) * %d)",
		m.GetSourceText(bo.LHS), int64(1)<<uint(il.Value)))
}

func reassociateArithmetic(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op != cast.BinAdd && bo.Op != cast.BinMul {
			return false
		}
		inner, ok := bo.LHS.(*cast.BinaryOperator)
		return ok && inner.Op == bo.Op && m.IsSideEffectFree(bo)
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	inner := bo.LHS.(*cast.BinaryOperator)
	a := m.GetSourceText(inner.LHS)
	b := m.GetSourceText(inner.RHS)
	c := m.GetSourceText(bo.RHS)
	op := bo.Op.String()
	return m.ReplaceNode(bo, fmt.Sprintf("(%s %s (%s %s %s))", a, op, b, op, c))
}

func distributeMultiplication(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op != cast.BinMul || !m.IsSideEffectFree(bo) {
			return false
		}
		rhs := stripParens(bo.RHS)
		inner, ok := rhs.(*cast.BinaryOperator)
		return ok && (inner.Op == cast.BinAdd || inner.Op == cast.BinSub)
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	inner := stripParens(bo.RHS).(*cast.BinaryOperator)
	a := m.GetSourceText(bo.LHS)
	b := m.GetSourceText(inner.LHS)
	c := m.GetSourceText(inner.RHS)
	return m.ReplaceNode(bo, fmt.Sprintf("((%s) * (%s) %s (%s) * (%s))",
		a, b, inner.Op, a, c))
}

// localsVisibleAt reports whether every local variable referenced by e is
// declared directly in fn's top-level block before byte offset at (such
// locals are in scope for the rest of the function body).
func localsVisibleAt(m *muast.Manager, fn *cast.FunctionDecl, e cast.Expr, at int) bool {
	topLevel := map[cast.Decl]bool{}
	for _, s := range fn.Body.Stmts {
		if ds, ok := s.(*cast.DeclStmt); ok {
			for _, d := range ds.Decls {
				topLevel[d] = true
			}
		}
	}
	ok := true
	cast.Walk(e, func(n cast.Node) bool {
		dr, isRef := n.(*cast.DeclRefExpr)
		if !isRef {
			return ok
		}
		if vd, isVar := dr.Ref.(*cast.VarDecl); isVar && !vd.IsGlobal {
			if !topLevel[vd] || vd.Range().End > at {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// stripParens unwraps nested ParenExpr nodes.
func stripParens(e cast.Expr) cast.Expr {
	for {
		pe, ok := e.(*cast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func subscripts(m *muast.Manager) []*cast.ArraySubscriptExpr {
	var out []*cast.ArraySubscriptExpr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ase, ok := n.(*cast.ArraySubscriptExpr); ok {
				out = append(out, ase)
			}
			return true
		})
	}
	return out
}

func replaceSubscriptWithDeref(m *muast.Manager) bool {
	subs := subscripts(m)
	if len(subs) == 0 {
		return false
	}
	ase := muast.RandElement(m, subs)
	return m.ReplaceNode(ase, fmt.Sprintf("(*((%s) + (%s)))",
		m.GetSourceText(ase.Base), m.GetSourceText(ase.Index)))
}

func replaceDerefWithSubscript(m *muast.Manager) bool {
	var cands []*cast.UnaryOperator
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if uo, ok := n.(*cast.UnaryOperator); ok && uo.Op == cast.UnDeref {
				cands = append(cands, uo)
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	uo := muast.RandElement(m, cands)
	return m.ReplaceNode(uo, fmt.Sprintf("((%s)[0])", m.GetSourceText(uo.X)))
}

func swapSubscriptBase(m *muast.Manager) bool {
	var cands []*cast.ArraySubscriptExpr
	for _, ase := range subscripts(m) {
		// i[a] requires i integer and a pointer/array; both already hold
		// for a well-typed a[i], but keep plain-ref bases for readability.
		if ase.Index.Type().IsInteger() {
			cands = append(cands, ase)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ase := muast.RandElement(m, cands)
	return m.ReplaceNode(ase, fmt.Sprintf("(%s)[%s]",
		m.GetSourceText(ase.Index), m.GetSourceText(ase.Base)))
}

// incDecStmts returns ++/-- expressions in statement position.
func incDecStmts(m *muast.Manager) []*cast.UnaryOperator {
	pm := m.Parents()
	var out []*cast.UnaryOperator
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			uo, ok := n.(*cast.UnaryOperator)
			if !ok {
				return true
			}
			switch uo.Op {
			case cast.UnPreInc, cast.UnPreDec, cast.UnPostInc, cast.UnPostDec:
				if _, isStmt := pm[uo].(*cast.ExprStmt); isStmt {
					out = append(out, uo)
				}
			}
			return true
		})
	}
	return out
}

func incrementToAddAssign(m *muast.Manager) bool {
	cands := incDecStmts(m)
	if len(cands) == 0 {
		return false
	}
	uo := muast.RandElement(m, cands)
	op := "+="
	if uo.Op == cast.UnPreDec || uo.Op == cast.UnPostDec {
		op = "-="
	}
	return m.ReplaceNode(uo, fmt.Sprintf("%s %s 1", m.GetSourceText(uo.X), op))
}

func preToPostIncrement(m *muast.Manager) bool {
	var cands []*cast.UnaryOperator
	for _, uo := range incDecStmts(m) {
		if uo.Op == cast.UnPreInc || uo.Op == cast.UnPreDec {
			cands = append(cands, uo)
		}
	}
	if len(cands) == 0 {
		return false
	}
	uo := muast.RandElement(m, cands)
	return m.ReplaceNode(uo, m.GetSourceText(uo.X)+uo.Op.String())
}

func flattenConditionalExpr(m *muast.Manager) bool {
	var cands []*cast.ConditionalExpr
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if ce, ok := n.(*cast.ConditionalExpr); ok && m.IsSideEffectFree(ce.Cond) {
				cands = append(cands, ce)
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	ce := muast.RandElement(m, cands)
	keep := ce.Then
	if m.RandBool(0.5) {
		keep = ce.Else
	}
	return m.ReplaceNode(ce, fmt.Sprintf("(%s ? (%s) : (%s))",
		m.GetSourceText(ce.Cond), m.GetSourceText(keep), m.GetSourceText(keep)))
}

func replaceArgWithDefault(m *muast.Manager) bool {
	type inst struct {
		arg cast.Expr
	}
	var cands []inst
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ce, ok := n.(*cast.CallExpr)
			if !ok {
				return true
			}
			for _, a := range ce.Args {
				if simpleScalar(a.Type()) {
					cands = append(cands, inst{a})
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	return m.ReplaceNode(c.arg, m.DefaultValueExpr(c.arg.Type()))
}

func swapCallArguments(m *muast.Manager) bool {
	type pair struct{ a, b cast.Expr }
	var cands []pair
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			ce, ok := n.(*cast.CallExpr)
			if !ok || len(ce.Args) < 2 {
				return true
			}
			for i := 0; i < len(ce.Args); i++ {
				for j := i + 1; j < len(ce.Args); j++ {
					if sameScalarType(ce.Args[i].Type(), ce.Args[j].Type()) {
						cands = append(cands, pair{ce.Args[i], ce.Args[j]})
					}
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	p := muast.RandElement(m, cands)
	ta, tb := m.GetSourceText(p.a), m.GetSourceText(p.b)
	return m.ReplaceNode(p.a, tb) && m.ReplaceNode(p.b, ta)
}

func expandLogicalToBitwise(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return bo.Op.IsLogical() &&
			m.IsSideEffectFree(bo.LHS) && m.IsSideEffectFree(bo.RHS) &&
			bo.LHS.Type().Decay().IsScalar() && bo.RHS.Type().Decay().IsScalar()
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	bitop := "&"
	if bo.Op == cast.BinLOr {
		bitop = "|"
	}
	return m.ReplaceNode(bo, fmt.Sprintf("(((%s) != 0) %s ((%s) != 0))",
		m.GetSourceText(bo.LHS), bitop, m.GetSourceText(bo.RHS)))
}

func bitwiseToLogical(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return (bo.Op == cast.BinAnd || bo.Op == cast.BinOr) &&
			bo.LHS.Type().IsInteger() && bo.RHS.Type().IsInteger()
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	logop := "&&"
	if bo.Op == cast.BinOr {
		logop = "||"
	}
	return m.ReplaceNode(bo, fmt.Sprintf("((%s) %s (%s))",
		m.GetSourceText(bo.LHS), logop, m.GetSourceText(bo.RHS)))
}

func addBitwiseNotTwice(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	return m.ReplaceNode(e, "(~~("+m.GetSourceText(e)+"))")
}

func addNegationTwice(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	return m.ReplaceNode(e, "(-(-("+m.GetSourceText(e)+")))")
}

func comparisonToSubtraction(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		switch bo.Op {
		case cast.BinLT, cast.BinGT, cast.BinLE, cast.BinGE:
			return bo.LHS.Type().IsInteger() && bo.RHS.Type().IsInteger()
		}
		return false
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	return m.ReplaceNode(bo, fmt.Sprintf("(((%s) - (%s)) %s 0)",
		m.GetSourceText(bo.LHS), m.GetSourceText(bo.RHS), bo.Op))
}

func expandEqualityToRelational(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		return bo.Op == cast.BinEQ &&
			bo.LHS.Type().IsInteger() && bo.RHS.Type().IsInteger() &&
			m.IsSideEffectFree(bo.LHS) && m.IsSideEffectFree(bo.RHS)
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	l, r := m.GetSourceText(bo.LHS), m.GetSourceText(bo.RHS)
	return m.ReplaceNode(bo, fmt.Sprintf("(((%s) <= (%s)) && ((%s) >= (%s)))",
		l, r, l, r))
}

func literalToCharLiteral(m *muast.Manager) bool {
	var cands []*cast.IntegerLiteral
	for _, il := range intLiterals(m) {
		if il.Value >= 32 && il.Value < 127 && il.Value != '\'' && il.Value != '\\' {
			cands = append(cands, il)
		}
	}
	if len(cands) == 0 {
		return false
	}
	il := muast.RandElement(m, cands)
	return m.ReplaceNode(il, fmt.Sprintf("'%c'", byte(il.Value)))
}

func intLiteralToHex(m *muast.Manager) bool {
	var cands []*cast.IntegerLiteral
	for _, il := range intLiterals(m) {
		if !strings.HasPrefix(il.Text, "0x") && !strings.HasPrefix(il.Text, "0X") &&
			il.Value >= 0 {
			cands = append(cands, il)
		}
	}
	if len(cands) == 0 {
		return false
	}
	il := muast.RandElement(m, cands)
	return m.ReplaceNode(il, fmt.Sprintf("0x%x", il.Value))
}

func addSizeofTerm(m *muast.Manager) bool {
	exprs := mutableIntExprs(m)
	if len(exprs) == 0 {
		return false
	}
	e := muast.RandElement(m, exprs)
	return m.ReplaceNode(e, fmt.Sprintf("((%s) + 0 * (int)sizeof(int))",
		m.GetSourceText(e)))
}

func replaceWithSameScopeVariable(m *muast.Manager) bool {
	pm := m.Parents()
	type vis struct {
		nm string
		d  cast.Decl
		ty cast.QualType
	}
	type inst struct {
		use *cast.DeclRefExpr
		nm  string
	}
	var cands []inst
	for _, fn := range m.Functions() {
		// Variables visible through the whole function: params + globals
		// (kept in declaration order for determinism).
		var visible []vis
		for _, g := range m.GlobalVars() {
			visible = append(visible, vis{g.Name, g, g.Ty})
		}
		for _, pv := range fn.Params {
			if pv.Name != "" {
				visible = append(visible, vis{pv.Name, pv, pv.Ty})
			}
		}
		cast.Walk(fn.Body, func(n cast.Node) bool {
			dr, ok := n.(*cast.DeclRefExpr)
			if !ok || parentRequiresLvalue(pm, dr) {
				return true
			}
			if !simpleScalar(dr.Type()) {
				return true
			}
			for _, v := range visible {
				if v.d != dr.Ref && sameScalarType(v.ty, dr.Type()) {
					cands = append(cands, inst{dr, v.nm})
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	return m.ReplaceNode(c.use, c.nm)
}

func stringLiteralShrink(m *muast.Manager) bool {
	var cands []*cast.StringLiteral
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			if sl, ok := n.(*cast.StringLiteral); ok && len(sl.Value) > 1 &&
				!strings.Contains(sl.Value, "%") {
				cands = append(cands, sl)
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	sl := muast.RandElement(m, cands)
	keep := m.Rand().Intn(len(sl.Value))
	return m.ReplaceNode(sl, fmt.Sprintf("%q", sl.Value[:keep]))
}

func constantFoldExpr(m *muast.Manager) bool {
	ops := binaryOps(m, func(bo *cast.BinaryOperator) bool {
		if bo.Op.IsAssignment() {
			return false
		}
		_, lok := stripParens(bo.LHS).(*cast.IntegerLiteral)
		_, rok := stripParens(bo.RHS).(*cast.IntegerLiteral)
		return lok && rok
	})
	if len(ops) == 0 {
		return false
	}
	bo := muast.RandElement(m, ops)
	v, ok := cast.ConstIntValue(bo)
	if !ok {
		return false
	}
	return m.ReplaceNode(bo, fmt.Sprintf("%d", v))
}

func unfoldConstant(m *muast.Manager) bool {
	lits := intLiterals(m)
	if len(lits) == 0 {
		return false
	}
	il := muast.RandElement(m, lits)
	k := int64(m.Rand().Intn(100) + 1)
	return m.ReplaceNode(il, fmt.Sprintf("(%d - %d + %d)", il.Value-0, k, k))
}

func conditionAlwaysTrue(m *muast.Manager) bool {
	conds := conditions(m)
	var cands []cast.Expr
	pm := m.Parents()
	for _, c := range conds {
		// Forcing a while/for condition true would hang; restrict to if.
		if _, isIf := pm[c].(*cast.IfStmt); isIf {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	return m.ReplaceNode(c, "(("+m.GetSourceText(c)+") || 1)")
}

func conditionAlwaysFalse(m *muast.Manager) bool {
	conds := conditions(m)
	if len(conds) == 0 {
		return false
	}
	c := muast.RandElement(m, conds)
	return m.ReplaceNode(c, "(("+m.GetSourceText(c)+") && 0)")
}

func modifyArrayIndex(m *muast.Manager) bool {
	var cands []*cast.ArraySubscriptExpr
	for _, ase := range subscripts(m) {
		if ase.Index.Type().IsInteger() {
			cands = append(cands, ase)
		}
	}
	if len(cands) == 0 {
		return false
	}
	ase := muast.RandElement(m, cands)
	delta := m.Rand().Intn(2) + 1
	op := "+"
	if m.RandBool(0.5) {
		op = "-"
	}
	return m.ReplaceNode(ase.Index, fmt.Sprintf("(%s) %s %d",
		m.GetSourceText(ase.Index), op, delta))
}

func replaceMemberWithOtherField(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		me *cast.MemberExpr
		nm string
	}
	var cands []inst
	for _, fn := range m.Functions() {
		cast.Walk(fn.Body, func(n cast.Node) bool {
			me, ok := n.(*cast.MemberExpr)
			if !ok || me.FieldDecl == nil || parentRequiresLvalue(pm, me) {
				return true
			}
			target := me.Base.Type()
			if me.IsArrow {
				pt, ok := target.Decay().PointeeType()
				if !ok {
					return true
				}
				target = pt
			}
			rt, ok := target.Canonical().T.(*cast.RecordType)
			if !ok {
				return true
			}
			for _, f := range rt.Decl.Fields {
				if f.Name != me.Field && sameScalarType(f.Ty, me.FieldDecl.Ty) {
					cands = append(cands, inst{me, f.Name})
				}
			}
			return true
		})
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	sep := "."
	if c.me.IsArrow {
		sep = "->"
	}
	return m.ReplaceNode(c.me, m.GetSourceText(c.me.Base)+sep+c.nm)
}
