package mutators

import (
	"fmt"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// The 6 Type mutators.
func init() {
	reg("StructToInt",
		"This mutator changes the type of a struct-typed variable declaration to int, exercising the compiler's handling of mismatched aggregate types.",
		muast.CatType, muast.Unsupervised, false, structToInt)

	reg("WidenIntegerType",
		"This mutator widens the declared integer type of a variable, for example from int to long long.",
		muast.CatType, muast.Supervised, false, widenIntegerType)

	reg("NarrowIntegerType",
		"This mutator narrows the declared integer type of a variable, for example from long to short.",
		muast.CatType, muast.Unsupervised, false, narrowIntegerType)

	reg("SignednessFlip",
		"This mutator flips the signedness of a variable's integer type, for example from int to unsigned int.",
		muast.CatType, muast.Supervised, false, signednessFlip)

	reg("IntToFloatType",
		"This mutator changes an integer variable's declared type to double.",
		muast.CatType, muast.Unsupervised, false, intToFloatType)

	reg("DecaySmallStruct",
		"This mutator casts a small struct variable into a long long variable and changes all member references into pointer arithmetic between the long long variable and field offsets.",
		muast.CatType, muast.Supervised, true, decaySmallStruct)
}

// retypeableLocals returns local scalar VarDecls whose type spelling can
// be substituted wholesale: single-declarator DeclStmt, basic type, and
// whose uses stay well-typed under any arithmetic retyping.
func retypeableLocals(m *muast.Manager) []*cast.VarDecl {
	pm := m.Parents()
	var out []*cast.VarDecl
	for _, vd := range m.LocalVars(nil) {
		if vd.Name == "" || vd.Ty.Q != 0 || vd.Storage != cast.StorageNone {
			continue
		}
		if _, ok := vd.Ty.T.(*cast.BasicType); !ok {
			continue
		}
		ds, ok := pm[vd].(*cast.DeclStmt)
		if !ok || len(ds.Decls) != 1 {
			continue
		}
		// Address-taken variables pin their type via pointers.
		addressed := false
		for _, u := range m.UsesOf(vd) {
			if uo, ok := pm[u].(*cast.UnaryOperator); ok && uo.Op == cast.UnAddr {
				addressed = true
				break
			}
		}
		if !addressed {
			out = append(out, vd)
		}
	}
	return out
}

// retypeLocal rewrites vd's declaration-specifier region to newTy.
func retypeLocal(m *muast.Manager, vd *cast.VarDecl, newTy string) bool {
	r := cast.SourceRange{Begin: vd.TypeRange.Begin, End: vd.NameRange.Begin}
	return m.ReplaceRange(r, newTy+" ")
}

// usedInShiftOrMod reports whether the variable is used where a floating
// type would not compile (%, <<, >>, ~, array index, switch condition,
// case label).
func usedInShiftOrMod(m *muast.Manager, vd *cast.VarDecl) bool {
	pm := m.Parents()
	for _, u := range m.UsesOf(vd) {
		for cur := cast.Node(u); cur != nil; cur = pm[cur] {
			switch p := cur.(type) {
			case *cast.BinaryOperator:
				switch p.Op {
				case cast.BinRem, cast.BinShl, cast.BinShr, cast.BinAnd,
					cast.BinOr, cast.BinXor, cast.BinRemAssign,
					cast.BinShlAssign, cast.BinShrAssign, cast.BinAndAssign,
					cast.BinOrAssign, cast.BinXorAssign:
					return true
				}
			case *cast.UnaryOperator:
				if p.Op == cast.UnNot {
					return true
				}
			case *cast.ArraySubscriptExpr:
				return true
			case *cast.SwitchStmt:
				if containsNode(p.Cond, u) {
					return true
				}
			case *cast.CompoundStmt, *cast.FunctionDecl:
				cur = nil
			}
			if cur == nil {
				break
			}
		}
	}
	return false
}

func containsNode(root cast.Node, target cast.Node) bool {
	found := false
	cast.Walk(root, func(n cast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func structToInt(m *muast.Manager) bool {
	pm := m.Parents()
	var cands []*cast.VarDecl
	for _, vd := range m.LocalVars(nil) {
		if !vd.Ty.IsRecord() || vd.Init != nil {
			continue
		}
		if len(m.UsesOf(vd)) > 0 {
			continue // any member access would break
		}
		ds, ok := pm[vd].(*cast.DeclStmt)
		if !ok || len(ds.Decls) != 1 {
			continue
		}
		cands = append(cands, vd)
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	return retypeLocal(m, vd, "int")
}

func widenIntegerType(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, vd := range retypeableLocals(m) {
		if k, _ := vd.Ty.Basic(); k >= cast.Char && k <= cast.UInt {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	wide := []string{"long", "long long"}
	if vd.Ty.IsUnsigned() {
		wide = []string{"unsigned long", "unsigned long long"}
	}
	return retypeLocal(m, vd, muast.RandElement(m, wide))
}

func narrowIntegerType(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, vd := range retypeableLocals(m) {
		if k, _ := vd.Ty.Basic(); k >= cast.Int && k <= cast.ULongLong {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	narrow := []string{"short", "signed char"}
	if vd.Ty.IsUnsigned() {
		narrow = []string{"unsigned short", "unsigned char"}
	}
	return retypeLocal(m, vd, muast.RandElement(m, narrow))
}

func signednessFlip(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	flip := map[cast.BasicKind]string{
		cast.Int: "unsigned int", cast.UInt: "int",
		cast.Long: "unsigned long", cast.ULong: "long",
		cast.Short: "unsigned short", cast.UShort: "short",
		cast.LongLong: "unsigned long long", cast.ULongLong: "long long",
		cast.Char: "unsigned char", cast.UChar: "signed char",
	}
	for _, vd := range retypeableLocals(m) {
		if k, _ := vd.Ty.Basic(); flip[k] != "" {
			cands = append(cands, vd)
		}
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	k, _ := vd.Ty.Basic()
	return retypeLocal(m, vd, flip[k])
}

func intToFloatType(m *muast.Manager) bool {
	var cands []*cast.VarDecl
	for _, vd := range retypeableLocals(m) {
		if !vd.Ty.IsInteger() {
			continue
		}
		if usedInShiftOrMod(m, vd) {
			continue
		}
		cands = append(cands, vd)
	}
	if len(cands) == 0 {
		return false
	}
	vd := muast.RandElement(m, cands)
	return retypeLocal(m, vd, "double")
}

// decaySmallStruct follows the paper's GCC #111819 mutator: a small
// struct variable's storage is replaced by a long long, and every member
// reference becomes pointer arithmetic over the combined storage.
func decaySmallStruct(m *muast.Manager) bool {
	pm := m.Parents()
	type inst struct {
		vd *cast.VarDecl
		rd *cast.RecordDecl
	}
	var cands []inst
	for _, vd := range m.LocalVars(nil) {
		rt, ok := vd.Ty.Canonical().T.(*cast.RecordType)
		if !ok || !rt.Decl.Complete || rt.Decl.IsUnion || vd.Init != nil {
			continue
		}
		if vd.Ty.Size() <= 0 || vd.Ty.Size() > 8 {
			continue
		}
		ds, ok := pm[vd].(*cast.DeclStmt)
		if !ok || len(ds.Decls) != 1 {
			continue
		}
		// All uses must be direct member accesses (x.f).
		allMembers := true
		for _, u := range m.UsesOf(vd) {
			me, ok := pm[u].(*cast.MemberExpr)
			if !ok || me.IsArrow || me.Base != cast.Expr(u) {
				allMembers = false
				break
			}
		}
		if allMembers {
			cands = append(cands, inst{vd, rt.Decl})
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := muast.RandElement(m, cands)
	combined := m.GenerateUniqueName("combinedVar")
	// Field byte offsets under the same LP64 layout Size() uses.
	offsets := map[string]int64{}
	var off int64
	for _, f := range c.rd.Fields {
		sz := f.Ty.Size()
		if sz <= 0 {
			return false
		}
		al := sz
		if al > 8 {
			al = 8
		}
		off = (off + al - 1) / al * al
		offsets[f.Name] = off
		off += sz
	}
	// Rewrite each member access.
	for _, u := range m.UsesOf(c.vd) {
		me := pm[u].(*cast.MemberExpr)
		if me.FieldDecl == nil {
			return false
		}
		repl := fmt.Sprintf("(*(%s *)((char *)&%s + %d))",
			me.FieldDecl.Ty.Unqualified().CString(), combined, offsets[me.Field])
		if !m.ReplaceNode(me, repl) {
			return false
		}
	}
	ds := pm[c.vd].(*cast.DeclStmt)
	return m.ReplaceNode(ds, "long long "+combined+" = 0;")
}
