package mutators

import (
	"math/rand"
	"testing"

	"github.com/icsnju/metamut-go/internal/cast"
	"github.com/icsnju/metamut-go/internal/muast"
)

// testSeeds is a corpus rich in every structure the mutators target.
var testSeeds = []string{
	`
static char buffer[32];
int g0;
int g1 = 7;
const int cg = 9;

struct pair { int a; int b; };
enum mode { OFF, ON = 3, AUTO };

int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int seven(void) { return 7; }

unsigned foo(int x, int y) {
    int i;
    unsigned acc = 0;
    int tmp = 5;
    int other = 9;
    for (i = 0; i < 64; i++) {
        acc += (unsigned)(x * y + i);
    }
    if (acc > 100) { acc -= 50; } else { acc += 50; }
    while (acc < 10) { acc <<= 1; }
    switch ((int)(acc & 3)) {
    case 0: acc++; break;
    case 1: acc--; break;
    default: acc ^= 90; break;
    }
    tmp = tmp * 2 + other;
    return acc + (unsigned)tmp;
}

int bar(int n) {
    struct pair p;
    int arr[8];
    int k = 0;
    p.a = n; p.b = n + 1;
    do { k++; } while (k < 3);
    arr[0] = p.a; arr[1] = p.b;
    if (n > 0 && k < 10) { k = add(n, k); }
    g0 = seven();
    return arr[0] + arr[1] + k + (n ? 1 : 2);
}

int main(void) {
    int r = bar(5);
    r += (int)foo(2, 3);
    return r & 0xff;
}
`,
	`
int data[16];
double scale = 1.5;

double mix(double a, double b, int w) {
    double out = 0.0;
    if (w % 2 == 0) out = a * 2.0; else out = b / 2.0;
    return out + a - -b;
}

void fill(int start) {
    int j = start;
    int stop = 16;
    while (j < stop) {
        data[j] = j * j - 3;
        j = j + 1;
    }
}

int sum(void) {
    int t = 0;
    int i2;
    for (i2 = 0; i2 < 16; i2 += 1) { t += data[i2]; }
    l1:
    if (t < 0) goto l1;
    return t;
}
`,
	`
int ga = 3;
int gb = 12;
struct rec { int f0; int f1; };

static int helper0(int unused, int used) { return used * 2; }

static int twist(int v) {
    int w = v << 2;
    int folded = 3 + 4;
    int prod = v * (w + 2);
    int neg = -v;
    int flip = ~v;
    int not0 = !v;
    if (v > 0) {
        if (w > 1) { w = w - 1; }
    }
    ++w;
    return w + folded + prod + neg + flip + not0 + ga + gb;
}

int pointers(int *p, char *s) {
    struct rec unusedRec;
    int first = *p;
    char c = s[0];
    const char *msg = "hello world";
    switch (first & 1) {
    case 0: first += 2; break;
    case 1: first -= 2; break;
    }
    return first + c + msg[1] + helper0(9, twist(first));
}
`,
}

func TestRegistryCounts(t *testing.T) {
	all := muast.All()
	if len(all) != WantTotal {
		t.Fatalf("registered mutators = %d, want %d", len(all), WantTotal)
	}
	byCat := map[muast.Category]int{}
	bySet := map[muast.Set]int{}
	creative := 0
	for _, mu := range all {
		byCat[mu.Category]++
		bySet[mu.Set]++
		if mu.Creative {
			creative++
		}
	}
	want := map[muast.Category]int{
		muast.CatVariable:   WantVariable,
		muast.CatExpression: WantExpression,
		muast.CatStatement:  WantStatement,
		muast.CatFunction:   WantFunction,
		muast.CatType:       WantType,
	}
	for cat, n := range want {
		if byCat[cat] != n {
			t.Errorf("%s mutators = %d, want %d", cat, byCat[cat], n)
		}
	}
	if bySet[muast.Supervised] != WantSupervised {
		t.Errorf("supervised = %d, want %d", bySet[muast.Supervised], WantSupervised)
	}
	if bySet[muast.Unsupervised] != WantTotal-WantSupervised {
		t.Errorf("unsupervised = %d, want %d",
			bySet[muast.Unsupervised], WantTotal-WantSupervised)
	}
	if creative == 0 {
		t.Error("no creative mutators marked")
	}
}

// TestEveryMutatorProducesValidMutants applies each mutator many times to
// the corpus. For every mutator we require (a) it applies at least once
// somewhere, and (b) every produced mutant re-parses, and the vast
// majority re-check semantically (the paper reports >70% compilable
// mutants; our hand-written library mutators should do much better).
func TestEveryMutatorProducesValidMutants(t *testing.T) {
	const trials = 12
	for _, mu := range muast.All() {
		mu := mu
		t.Run(mu.Name, func(t *testing.T) {
			applied, parseFail, checkFail := 0, 0, 0
			for si, seed := range testSeeds {
				for trial := 0; trial < trials; trial++ {
					rng := rand.New(rand.NewSource(int64(si*1000 + trial)))
					mgr, err := muast.NewManager(seed, rng)
					if err != nil {
						t.Fatalf("seed %d does not check: %v", si, err)
					}
					mutant, ok := mu.Apply(seed, mgr)
					if !ok {
						continue
					}
					applied++
					if mutant == seed {
						t.Errorf("mutator reported change but output equals input")
						continue
					}
					tu, err := cast.Parse(mutant)
					if err != nil {
						parseFail++
						t.Logf("parse fail:\n%s\nerr: %v", mutant, err)
						continue
					}
					if err := cast.Check(tu); err != nil {
						checkFail++
						t.Logf("check fail:\n%s\nerr: %v", mutant, err)
					}
				}
			}
			if applied == 0 {
				t.Fatalf("mutator never applied on the corpus")
			}
			if parseFail > 0 {
				t.Errorf("%d/%d mutants failed to parse", parseFail, applied)
			}
			if checkFail*10 > applied {
				t.Errorf("%d/%d mutants failed semantic check (>10%%)",
					checkFail, applied)
			}
		})
	}
}

// TestMutatorDeterminism verifies that the same seed + same RNG state
// yields the same mutant (required for fuzzer reproducibility).
func TestMutatorDeterminism(t *testing.T) {
	for _, mu := range muast.All() {
		m1, _ := muast.NewManager(testSeeds[0], rand.New(rand.NewSource(1)))
		m2, _ := muast.NewManager(testSeeds[0], rand.New(rand.NewSource(1)))
		out1, ok1 := mu.Apply(testSeeds[0], m1)
		out2, ok2 := mu.Apply(testSeeds[0], m2)
		if ok1 != ok2 || out1 != out2 {
			t.Errorf("%s: nondeterministic output", mu.Name)
		}
	}
}
